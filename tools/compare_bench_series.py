#!/usr/bin/env python3
"""Compare two directories of google-benchmark JSON outputs by *series*.

Usage: compare_bench_series.py <dir_a> <dir_b> [glob]

For every file matching `glob` (default BENCH_QUICK_*.json) in <dir_a>,
the file of the same name must exist in <dir_b> and carry the identical
measured series: same benchmark names in the same order, and exactly
equal values for every user counter (sim_seconds, procs, level, ...).

Host-dependent fields — real_time, cpu_time, the run context, iteration
counts — are ignored: they measure the machine, not the simulation.  The
simulator's determinism contract (docs/ARCHITECTURE.md) promises the
*counters* are bit-identical across engine widths and hierarchy
construction widths, and CI uses this script to hold benches to it.

Exits 0 when every series matches, 1 with a per-mismatch report else.
"""

import json
import sys
from pathlib import Path

IGNORED_FIELDS = {
    "real_time",
    "cpu_time",
    "iterations",
    "time_unit",
    "run_name",
    "run_type",
    "repetitions",
    "repetition_index",
    "threads",
    "family_index",
    "per_family_instance_index",
    # Host-rate fields (SetItemsProcessed / SetBytesProcessed): wall-time
    # derived, used by the engine micro benches.
    "items_per_second",
    "bytes_per_second",
}


def series_of(path):
    """[(benchmark name, {measured field: value})] of one JSON file."""
    with open(path) as f:
        data = json.load(f)
    out = []
    for bench in data.get("benchmarks", []):
        fields = {
            k: v
            for k, v in bench.items()
            if k != "name" and k not in IGNORED_FIELDS
        }
        out.append((bench["name"], fields))
    return out


def main(argv):
    if len(argv) not in (3, 4):
        print(__doc__, file=sys.stderr)
        return 2
    dir_a, dir_b = Path(argv[1]), Path(argv[2])
    pattern = argv[3] if len(argv) == 4 else "BENCH_QUICK_*.json"
    files = sorted(dir_a.glob(pattern))
    if not files:
        print(f"error: no {pattern} files under {dir_a}", file=sys.stderr)
        return 1
    failures = 0
    for file_a in files:
        file_b = dir_b / file_a.name
        if not file_b.exists():
            print(f"MISSING  {file_b}")
            failures += 1
            continue
        a, b = series_of(file_a), series_of(file_b)
        names_a = [n for n, _ in a]
        names_b = [n for n, _ in b]
        if names_a != names_b:
            print(f"DIFFER   {file_a.name}: benchmark set/order mismatch")
            print(f"  only in a: {sorted(set(names_a) - set(names_b))}")
            print(f"  only in b: {sorted(set(names_b) - set(names_a))}")
            failures += 1
            continue
        mismatches = []
        for (name, fa), (_, fb) in zip(a, b):
            if fa != fb:
                keys = sorted(
                    k
                    for k in set(fa) | set(fb)
                    if fa.get(k) != fb.get(k)
                )
                mismatches.append((name, keys, fa, fb))
        if mismatches:
            print(f"DIFFER   {file_a.name}: {len(mismatches)} benchmark(s)")
            for name, keys, fa, fb in mismatches[:8]:
                for k in keys:
                    print(f"  {name}.{k}: {fa.get(k)!r} != {fb.get(k)!r}")
            failures += 1
        else:
            print(f"match    {file_a.name} ({len(a)} benchmarks)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
