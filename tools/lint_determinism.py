#!/usr/bin/env python3
"""Determinism lint: machine-checked rules for the ARCHITECTURE.md contract.

The repo's headline guarantee is a bit-identical simulated schedule at any
sim/build thread width.  The determinism contract that guarantees it
(docs/ARCHITECTURE.md, "Determinism contract") has three rules a grep can
enforce mechanically; this linter makes violating them a build failure
(`cmake --build build --target lint`, and the `lint` CI job):

  unordered-container
      No `std::unordered_map` / `std::unordered_set` (or their multi-
      variants) in the schedule-affecting layers (src/simmpi, src/mpix,
      src/patterns).  Hash-bucket iteration order is libstdc++-version-
      and seed-dependent; one loop over such a container in a layer that
      emits messages or builds plans silently breaks the width contract.
      Use util::FlatMap (sorted, deterministic) instead.

  wall-clock
      No wall-clock or CPU-clock reads (`steady_clock`, `system_clock`,
      `high_resolution_clock`, `clock_gettime`, `gettimeofday`, `::time`)
      anywhere in src/ outside the harness layer: simulated time comes
      from the cost model only.  Host timing belongs to harness
      measurement code and the bench binaries.

  nondeterministic-random
      No `std::random_device`, `rand()`, or `srand()` anywhere in src/:
      every generator in the codebase derives from fixed seeds
      (counter-mode splitmix64 in the patterns layer), so any run is
      reproducible from its parameters alone.

  naked-new
      No naked `new` / `delete` expressions in the engine hot-path files
      guarded by the PR 5 zero-allocation test (src/simmpi/engine.*,
      src/simmpi/task.hpp, src/util/arena.*, and the fault-injection /
      reliable-delivery paths src/simmpi/fault.*, src/mpix/reliable.*
      that run inside faulted steady state).  Steady-state allocations
      there must go through the arena or the frame pool; a stray `new`
      defeats the zero-allocation guarantee the EngineAlloc suite pins.

Escapes: a line (or its predecessor) containing `lint:allow(<rule>)` in a
comment suppresses that rule for that line; every allow should carry a
justification comment.  Comments and string literals are stripped before
matching, so prose about these constructs never trips the linter.

Self-test: `--self-test` runs the linter against seeded violations (one
per rule, plus allow-escape and comment-immunity cases) and fails loudly
if any rule has gone blind — proof the lint target still has teeth.

Exit status: 0 clean, 1 violations found, 2 self-test failure.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys
import tempfile

# rule name -> (compiled pattern, [path prefixes], explanation)
RULES = {
    "unordered-container": (
        re.compile(r"\bunordered_(?:multi)?(?:map|set)\b"),
        ["src/simmpi", "src/mpix", "src/patterns"],
        "hash-bucket order is nondeterministic; use util::FlatMap "
        "(or justify identity-only use with lint:allow)",
    ),
    "wall-clock": (
        re.compile(
            r"\b(?:steady_clock|system_clock|high_resolution_clock"
            r"|clock_gettime|gettimeofday)\b"
            r"|::time\s*\("
        ),
        ["src/simmpi", "src/mpix", "src/patterns", "src/sparse", "src/amg",
         "src/model", "src/util"],
        "simulated layers must not read host clocks; timing belongs to "
        "harness/bench code",
    ),
    "nondeterministic-random": (
        re.compile(
            r"\bstd::random_device\b|(?<![\w:])s?rand\s*\("
        ),
        ["src"],
        "all randomness must derive from fixed seeds (splitmix64)",
    ),
    "naked-new": (
        re.compile(
            r"(?<![\w_])new\s+[A-Za-z_:(]"   # new-expressions
            r"|(?<![\w_])delete(?:\s*\[\s*\])?\s+[A-Za-z_:(*]"
        ),
        ["src/simmpi/engine.cpp", "src/simmpi/engine.hpp",
         "src/simmpi/task.hpp", "src/util/arena.cpp", "src/util/arena.hpp",
         "src/simmpi/fault.cpp", "src/simmpi/fault.hpp",
         "src/mpix/reliable.cpp", "src/mpix/reliable.hpp"],
        "engine hot-path files are guarded by the zero-allocation test; "
        "allocate via the arena or frame pool",
    ),
}

ALLOW = re.compile(r"lint:allow\(([a-z-]+)\)")
SOURCE_SUFFIXES = {".cpp", ".hpp", ".cc", ".hh", ".h"}


def strip_code(text: str) -> list[str]:
    """Return per-line code with comments and string/char literals blanked.

    Replaced regions keep their line structure (newlines survive) so
    reported line numbers match the file.  A deliberately small scanner:
    handles //, /* */, "..." and '...' with backslash escapes — the only
    forms the codebase uses (no raw strings in linted layers).
    """
    out = []
    i, n = 0, len(text)
    mode = "code"  # code | line_comment | block_comment | dq | sq
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if mode == "code":
            if c == "/" and nxt == "/":
                mode = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                mode = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                mode = "dq"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                mode = "sq"
                out.append(" ")
                i += 1
                continue
            out.append(c)
        elif mode == "line_comment":
            if c == "\n":
                mode = "code"
                out.append("\n")
            else:
                out.append(" ")
        elif mode == "block_comment":
            if c == "*" and nxt == "/":
                mode = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        else:  # dq / sq string or char literal
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if (mode == "dq" and c == '"') or (mode == "sq" and c == "'"):
                mode = "code"
                out.append(" ")
            else:
                out.append("\n" if c == "\n" else " ")
        i += 1
    return "".join(out).split("\n")


def allowed_rules(raw_lines: list[str], lineno: int) -> set[str]:
    """lint:allow(...) escapes covering `lineno` (1-based): same line or
    any immediately preceding comment-only lines."""
    allows: set[str] = set()
    allows.update(ALLOW.findall(raw_lines[lineno - 1]))
    j = lineno - 2
    while j >= 0 and raw_lines[j].lstrip().startswith("//"):
        allows.update(ALLOW.findall(raw_lines[j]))
        j -= 1
    return allows


def lint_file(path: pathlib.Path, rel: str) -> list[tuple[str, int, str, str]]:
    """Return (rule, line, text, why) violations for one file."""
    try:
        text = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as e:
        return [("unreadable", 0, str(e), "linted files must be UTF-8")]
    raw_lines = text.split("\n")
    code_lines = strip_code(text)
    findings = []
    for rule, (pattern, prefixes, why) in RULES.items():
        # A prefix is either a directory (scope: everything under it) or an
        # exact file path (the naked-new hot-path list).
        if not any(rel == p or rel.startswith(p + "/") for p in prefixes):
            continue
        for lineno, code in enumerate(code_lines, start=1):
            if not pattern.search(code):
                continue
            if rule in allowed_rules(raw_lines, lineno):
                continue
            findings.append((rule, lineno, raw_lines[lineno - 1].strip(), why))
    return findings


def lint_tree(root: pathlib.Path) -> int:
    files = []
    for prefix in {p for _, ps, _ in RULES.values() for p in ps}:
        base = root / prefix
        if base.is_file():
            files.append(base)
        elif base.is_dir():
            files.extend(
                p for p in sorted(base.rglob("*")) if p.suffix in
                SOURCE_SUFFIXES)
    nfail = 0
    for path in sorted(set(files)):
        rel = path.relative_to(root).as_posix()
        for rule, lineno, line, why in lint_file(path, rel):
            nfail += 1
            print(f"{rel}:{lineno}: [{rule}] {line}\n    ({why}; "
                  f"suppress with // lint:allow({rule}) + justification)")
    if nfail:
        print(f"lint_determinism: {nfail} violation(s)", file=sys.stderr)
        return 1
    print("lint_determinism: clean")
    return 0


# ---- self-test -------------------------------------------------------

SEEDED = [
    # (relative path, contents, expected rule or None)
    ("src/simmpi/bad_map.cpp",
     "#include <unordered_map>\nstd::unordered_map<int,int> m;\n",
     "unordered-container"),
    ("src/mpix/bad_set.hpp",
     "auto x = std::unordered_set<long>{};\n",
     "unordered-container"),
    ("src/patterns/bad_clock.cpp",
     "auto t = std::chrono::steady_clock::now();\n",
     "wall-clock"),
    ("src/sparse/bad_rand.cpp",
     "int f() { return rand(); }\n",
     "nondeterministic-random"),
    ("src/amg/bad_device.cpp",
     "std::random_device rd;\n",
     "nondeterministic-random"),
    ("src/simmpi/engine.cpp",
     "void* p = new char[64];\n",
     "naked-new"),
    ("src/simmpi/task.hpp",
     "struct T { ~T() { delete ptr; } int* ptr; };\n",
     "naked-new"),
    # Escapes and immunity: none of these may fire.
    ("src/simmpi/allowed_map.hpp",
     "// identity-only cache, never iterated\n"
     "// lint:allow(unordered-container)\n"
     "std::unordered_map<int,int> cache;\n",
     None),
    ("src/util/arena.cpp",
     "int* p = new int;  // lint:allow(naked-new) leak on purpose\n",
     None),
    ("src/simmpi/comment_only.cpp",
     "// unordered_map in prose must not fire, nor rand() in a string:\n"
     "const char* s = \"call rand() on an unordered_map\";\n",
     None),
    ("src/harness/out_of_scope.cpp",
     "std::unordered_map<int,int> host_side_ok;\n",
     None),
]


def self_test() -> int:
    failures = []
    with tempfile.TemporaryDirectory(prefix="lint-selftest-") as td:
        root = pathlib.Path(td)
        for rel, contents, _ in SEEDED:
            p = root / rel
            p.parent.mkdir(parents=True, exist_ok=True)
            p.write_text(contents, encoding="utf-8")
        for rel, _, expected in SEEDED:
            findings = lint_file(root / rel, rel)
            rules = {r for r, *_ in findings}
            if expected is None and rules:
                failures.append(f"{rel}: expected clean, got {sorted(rules)}")
            elif expected is not None and expected not in rules:
                failures.append(
                    f"{rel}: expected [{expected}] to fire, got "
                    f"{sorted(rules) or 'nothing'}")
        # The seeded tree as a whole must fail the full run.
        if lint_tree(root) == 0:
            failures.append("seeded tree passed lint_tree — linter is blind")
    if failures:
        for f in failures:
            print(f"self-test FAIL: {f}", file=sys.stderr)
        return 2
    print("lint_determinism: self-test passed "
          f"({sum(1 for *_, e in SEEDED if e)} seeded violations caught, "
          f"{sum(1 for *_, e in SEEDED if e is None)} escapes honored)")
    return 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", type=pathlib.Path,
                    default=pathlib.Path(__file__).resolve().parent.parent,
                    help="repo root to lint (default: this script's repo)")
    ap.add_argument("--self-test", action="store_true",
                    help="verify the linter catches seeded violations")
    args = ap.parse_args()
    if args.self_test:
        return self_test()
    return lint_tree(args.root.resolve())


if __name__ == "__main__":
    sys.exit(main())
