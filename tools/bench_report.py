#!/usr/bin/env python3
"""Diff two directories of google-benchmark JSON outputs.

Usage: bench_report.py <before_dir> <after_dir> [glob]

For every file matching `glob` (default BENCH_*.json, which also matches
BENCH_QUICK_*.json) present in *both* directories, prints a per-benchmark
table of host wall time (real_time) before/after with the relative delta,
plus any user counters whose values changed.

This is the informational companion of compare_bench_series.py: that
script *gates* on the deterministic simulated counters; this one reports
the host-side cost of computing them, which is exactly what a perf PR
changes.  Wall times are noisy — treat small deltas as noise and look for
consistent signs across many benchmarks.

Exit status: 0 unless no input files could be paired (2 on usage error).
"""

import json
import sys
from pathlib import Path

# Time fields are host measurements; everything else under a benchmark
# entry apart from bookkeeping is a user counter.
BOOKKEEPING = {
    "name",
    "real_time",
    "cpu_time",
    "iterations",
    "time_unit",
    "run_name",
    "run_type",
    "repetitions",
    "repetition_index",
    "threads",
    "family_index",
    "per_family_instance_index",
    "items_per_second",
    "bytes_per_second",
}


def load(path):
    """{benchmark name: entry dict} of one JSON file (insertion-ordered)."""
    with open(path) as f:
        data = json.load(f)
    return {b["name"]: b for b in data.get("benchmarks", [])}


def to_ms(entry):
    t = entry.get("real_time")
    if t is None:
        return None
    unit = entry.get("time_unit", "ns")
    scale = {"ns": 1e-6, "us": 1e-3, "ms": 1.0, "s": 1e3}.get(unit, 1e-6)
    return t * scale


def fmt_delta(before, after):
    if not before:
        return "   n/a"
    pct = 100.0 * (after - before) / before
    return f"{pct:+6.1f}%"


def main(argv):
    if len(argv) not in (3, 4):
        print(__doc__, file=sys.stderr)
        return 2
    dir_a, dir_b = Path(argv[1]), Path(argv[2])
    pattern = argv[3] if len(argv) == 4 else "BENCH_*.json"
    paired = [
        (f, dir_b / f.name) for f in sorted(dir_a.glob(pattern))
        if (dir_b / f.name).exists()
    ]
    if not paired:
        print(f"error: no {pattern} files present in both {dir_a} and {dir_b}",
              file=sys.stderr)
        return 1
    wall_a = wall_b = 0.0
    for file_a, file_b in paired:
        a, b = load(file_a), load(file_b)
        common = [n for n in a if n in b]
        if not common:
            continue
        print(f"\n{file_a.name}")
        print(f"  {'benchmark':44} {'before':>10} {'after':>10}   delta")
        for name in common:
            ta, tb = to_ms(a[name]), to_ms(b[name])
            if ta is None or tb is None:
                continue
            wall_a += ta
            wall_b += tb
            print(f"  {name[:44]:44} {ta:8.2f}ms {tb:8.2f}ms {fmt_delta(ta, tb)}")
            changed = sorted(
                k for k in set(a[name]) | set(b[name])
                if k not in BOOKKEEPING and a[name].get(k) != b[name].get(k)
            )
            for k in changed:
                print(f"    counter {k}: {a[name].get(k)!r} -> "
                      f"{b[name].get(k)!r}")
        only_a = [n for n in a if n not in b]
        only_b = [n for n in b if n not in a]
        if only_a:
            print(f"  (only before: {len(only_a)} benchmarks)")
        if only_b:
            print(f"  (only after:  {len(only_b)} benchmarks)")
    print(f"\ntotal benchmark wall time: {wall_a:.0f}ms -> {wall_b:.0f}ms "
          f"({fmt_delta(wall_a, wall_b).strip()})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
