# Validates the [[path]] / [[path#anchor]] cross-references used by the
# markdown under docs/ (and README.md).  Run as a script:
#
#   cmake -DREPO_ROOT=<repo> -P cmake/CheckDocLinks.cmake
#
# A cross-reference target is a path relative to the repository root; it
# must contain a '/' or '.' (bare bracketed words such as C++ attribute
# spellings quoted inside code are not references).  For a target
# "<file>.md#<anchor>" the anchor must match a heading of that file under
# GitHub's slug rules (lowercase, punctuation stripped, spaces to dashes).
#
# The `docs` CMake target and the docs CI job run this and fail on any
# broken reference.

if(NOT DEFINED REPO_ROOT)
  message(FATAL_ERROR "CheckDocLinks: pass -DREPO_ROOT=<repo root>")
endif()

file(GLOB _doc_files "${REPO_ROOT}/docs/*.md")
list(APPEND _doc_files "${REPO_ROOT}/README.md")

function(_slugify text out_var)
  string(TOLOWER "${text}" text)
  string(STRIP "${text}" text)
  # Drop everything but letters, digits, spaces and dashes, then dash-join.
  string(REGEX REPLACE "[^a-z0-9 -]" "" text "${text}")
  string(REPLACE " " "-" text "${text}")
  set(${out_var} "${text}" PARENT_SCOPE)
endfunction()

set(_checked 0)
set(_broken "")
foreach(_doc IN LISTS _doc_files)
  file(READ "${_doc}" _content)
  string(REGEX MATCHALL "\\[\\[[^]\n]+\\]\\]" _refs "${_content}")
  foreach(_ref IN LISTS _refs)
    string(REGEX REPLACE "^\\[\\[(.*)\\]\\]$" "\\1" _target "${_ref}")
    if(NOT _target MATCHES "[/.]" OR NOT _target MATCHES "[A-Za-z0-9]")
      # Not a cross-reference: quoted attribute syntax ([[nodiscard]]),
      # the literal [[...]] placeholder in prose, etc.
      continue()
    endif()
    math(EXPR _checked "${_checked} + 1")
    set(_anchor "")
    if(_target MATCHES "^([^#]+)#(.+)$")
      set(_target "${CMAKE_MATCH_1}")
      set(_anchor "${CMAKE_MATCH_2}")
    endif()
    cmake_path(GET _doc FILENAME _doc_name)
    if(NOT EXISTS "${REPO_ROOT}/${_target}")
      list(APPEND _broken "${_doc_name}: [[${_target}]] — no such file")
      continue()
    endif()
    if(_anchor)
      if(NOT _target MATCHES "\\.md$")
        list(APPEND _broken
             "${_doc_name}: [[${_target}#${_anchor}]] — anchors only resolve in .md files")
        continue()
      endif()
      file(STRINGS "${REPO_ROOT}/${_target}" _headings REGEX "^#+ ")
      set(_found FALSE)
      foreach(_h IN LISTS _headings)
        string(REGEX REPLACE "^#+ +" "" _h "${_h}")
        _slugify("${_h}" _slug)
        if(_slug STREQUAL _anchor)
          set(_found TRUE)
        endif()
      endforeach()
      if(NOT _found)
        list(APPEND _broken
             "${_doc_name}: [[${_target}#${_anchor}]] — no heading slugs to '${_anchor}'")
      endif()
    endif()
  endforeach()
endforeach()

if(_broken)
  list(JOIN _broken "\n  " _msg)
  message(FATAL_ERROR "broken doc cross-references:\n  ${_msg}")
endif()
message(STATUS "CheckDocLinks: ${_checked} cross-reference(s) OK")
