# The `docs` target: validate the [[...]] cross-references in docs/*.md,
# then (when doxygen is available) build the warning-clean API reference
# into <build>/docs/html.  CI runs this target with doxygen installed;
# locally it degrades to the link check alone.

find_package(Doxygen QUIET)

add_custom_target(check_doc_links
  COMMAND ${CMAKE_COMMAND} -DREPO_ROOT=${CMAKE_SOURCE_DIR}
          -P ${CMAKE_SOURCE_DIR}/cmake/CheckDocLinks.cmake
  COMMENT "Checking docs/*.md cross-references"
  VERBATIM)

if(DOXYGEN_FOUND)
  set(DOXYGEN_OUTPUT_DIR ${CMAKE_BINARY_DIR}/docs)
  set(DOXYGEN_STRIP_PATH ${CMAKE_SOURCE_DIR})
  set(DOXYGEN_INPUT "${CMAKE_SOURCE_DIR}/src ${CMAKE_SOURCE_DIR}/docs ${CMAKE_SOURCE_DIR}/README.md")
  set(DOXYGEN_MAINPAGE ${CMAKE_SOURCE_DIR}/README.md)
  configure_file(${CMAKE_SOURCE_DIR}/docs/Doxyfile.in
                 ${CMAKE_BINARY_DIR}/Doxyfile @ONLY)
  add_custom_target(docs
    COMMAND Doxygen::doxygen ${CMAKE_BINARY_DIR}/Doxyfile
    DEPENDS check_doc_links
    WORKING_DIRECTORY ${CMAKE_BINARY_DIR}
    COMMENT "Building API reference (doxygen) -> docs/html"
    VERBATIM)
else()
  add_custom_target(docs
    COMMAND ${CMAKE_COMMAND} -E echo
            "doxygen not found: built the link check only"
    DEPENDS check_doc_links
    COMMENT "doxygen unavailable; docs = cross-reference check"
    VERBATIM)
endif()
