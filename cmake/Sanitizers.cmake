# -DSANITIZE=address|undefined|address,undefined
# Applied globally (compile + link) so the whole tree, tests, and benches
# run instrumented; invalid values fail at configure time.
set(SANITIZE "" CACHE STRING "Enable sanitizers: address, undefined, or address,undefined")
if(SANITIZE)
  string(REPLACE "," ";" _san_list "${SANITIZE}")
  foreach(_san IN LISTS _san_list)
    if(NOT _san MATCHES "^(address|undefined)$")
      message(FATAL_ERROR "SANITIZE must be address, undefined, or address,undefined; got '${SANITIZE}'")
    endif()
    add_compile_options(-fsanitize=${_san} -fno-omit-frame-pointer)
    add_link_options(-fsanitize=${_san})
  endforeach()
endif()
