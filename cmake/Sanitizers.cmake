# -DSANITIZE=address|undefined|thread, comma-combinable where the
# runtimes can coexist:
#   address,undefined — the long-standing memory/UB config
#   thread[,undefined] — ThreadSanitizer (data-race) config
#   address,thread — rejected: the two runtimes intercept the same
#   allocator entry points and cannot be linked into one binary.
# Applied globally (compile + link) so the whole tree, tests, and benches
# run instrumented; invalid values or combinations fail at configure time.
set(SANITIZE "" CACHE STRING
    "Enable sanitizers: address, undefined, thread, or a valid comma list")
if(SANITIZE)
  string(REPLACE "," ";" _san_list "${SANITIZE}")
  foreach(_san IN LISTS _san_list)
    if(NOT _san MATCHES "^(address|undefined|thread)$")
      message(FATAL_ERROR "SANITIZE must combine address, undefined, thread; got '${SANITIZE}'")
    endif()
  endforeach()
  if("address" IN_LIST _san_list AND "thread" IN_LIST _san_list)
    message(FATAL_ERROR "SANITIZE=address,thread is invalid: AddressSanitizer and ThreadSanitizer cannot be combined in one binary")
  endif()
  foreach(_san IN LISTS _san_list)
    add_compile_options(-fsanitize=${_san} -fno-omit-frame-pointer)
    add_link_options(-fsanitize=${_san})
  endforeach()
  # Tests carry tier-based CTest timeouts tuned for uninstrumented builds;
  # TSan's shadow-state instrumentation slows hot loops ~5-15x, so scale
  # them (consumed by tests/CMakeLists.txt).
  if("thread" IN_LIST _san_list)
    set(COLLOM_TEST_TIMEOUT_SCALE 5)
  endif()
endif()
if(NOT DEFINED COLLOM_TEST_TIMEOUT_SCALE)
  set(COLLOM_TEST_TIMEOUT_SCALE 1)
endif()
