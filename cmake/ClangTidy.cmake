# Opt-in clang-tidy integration: configure with -DCOLLOM_CLANG_TIDY=ON to
# run the repo's .clang-tidy baseline (bugprone/concurrency/performance +
# curated modernize, WarningsAsErrors on everything enabled) on every
# compile.  Off by default — tidy roughly doubles compile time and needs a
# clang toolchain; the `lint` CI job runs it over src/util and src/harness
# (the cross-thread-shared layers) via run-clang-tidy instead, which works
# from any compiler's compile_commands.json.
option(COLLOM_CLANG_TIDY "Run clang-tidy on every compiled file" OFF)

if(COLLOM_CLANG_TIDY)
  find_program(COLLOM_CLANG_TIDY_EXE NAMES clang-tidy)
  if(NOT COLLOM_CLANG_TIDY_EXE)
    message(FATAL_ERROR "COLLOM_CLANG_TIDY=ON but clang-tidy was not found")
  endif()
  set(CMAKE_CXX_CLANG_TIDY "${COLLOM_CLANG_TIDY_EXE}")
  message(STATUS "clang-tidy enabled: ${COLLOM_CLANG_TIDY_EXE}")
endif()
