# `lint` target: the determinism linter (tools/lint_determinism.py) run as
# a build step — self-test first (proof the rules still catch seeded
# violations), then the real tree.  Pure Python 3, no third-party deps, a
# couple of seconds; CI runs the same two commands in the `lint` job.
#
#   cmake --build build --target lint
find_package(Python3 COMPONENTS Interpreter QUIET)

if(Python3_Interpreter_FOUND)
  add_custom_target(lint
    COMMAND ${Python3_EXECUTABLE}
            ${CMAKE_SOURCE_DIR}/tools/lint_determinism.py --self-test
    COMMAND ${Python3_EXECUTABLE}
            ${CMAKE_SOURCE_DIR}/tools/lint_determinism.py
            --root ${CMAKE_SOURCE_DIR}
    COMMENT "Determinism lint (tools/lint_determinism.py)"
    VERBATIM)
else()
  message(STATUS "Python3 not found: `lint` target unavailable")
endif()
