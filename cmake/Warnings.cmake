# Hygiene flags applied to every target in the repo (not to imported deps):
# link collom_warnings PRIVATE from each target.
add_library(collom_warnings INTERFACE)
target_compile_options(collom_warnings INTERFACE -Wall -Wextra)
