# Hygiene flags applied to every target in the repo (not to imported deps):
# link collom_warnings PRIVATE from each target.
add_library(collom_warnings INTERFACE)
target_compile_options(collom_warnings INTERFACE -Wall -Wextra)

# Clang statically checks the CAPABILITY/GUARDED_BY/REQUIRES annotations in
# src/util/thread_annotations.hpp (no-op attributes under gcc).  The CI
# thread-safety job promotes the group to an error with
# -Werror=thread-safety; locally it is an ordinary warning.
if(CMAKE_CXX_COMPILER_ID MATCHES "Clang")
  target_compile_options(collom_warnings INTERFACE -Wthread-safety)
endif()
