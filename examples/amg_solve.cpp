/// \file amg_solve.cpp
/// \brief The paper's end-to-end scenario: a BoomerAMG-style solve of the
/// rotated anisotropic diffusion problem, with every SpMV halo exchange —
/// fine/coarse operators, restriction, prolongation — routed through a
/// chosen neighborhood-collective protocol on the simulated cluster.
///
/// Usage: ./examples/amg_solve [nx ny ranks protocol]
///   protocol: hypre | standard | partial | full   (default: full)

#include <cstdio>
#include <cstring>
#include <random>

#include "harness/dist_solve.hpp"
#include "sparse/stencil.hpp"

using harness::Protocol;

int main(int argc, char** argv) {
  int nx = 64, ny = 64, ranks = 16;
  Protocol proto = Protocol::neighbor_full;
  if (argc >= 3) {
    nx = std::atoi(argv[1]);
    ny = std::atoi(argv[2]);
  }
  if (argc >= 4) ranks = std::atoi(argv[3]);
  if (argc >= 5) {
    if (!std::strcmp(argv[4], "hypre")) proto = Protocol::hypre;
    else if (!std::strcmp(argv[4], "standard"))
      proto = Protocol::neighbor_standard;
    else if (!std::strcmp(argv[4], "partial"))
      proto = Protocol::neighbor_partial;
    else if (!std::strcmp(argv[4], "full")) proto = Protocol::neighbor_full;
    else {
      std::fprintf(stderr, "unknown protocol '%s'\n", argv[4]);
      return 1;
    }
  }

  std::printf("problem: rotated anisotropic diffusion (theta=45deg, "
              "eps=0.001), %dx%d grid, %d simulated ranks\n",
              nx, ny, ranks);
  amg::Hierarchy h = amg::Hierarchy::build(sparse::paper_problem(nx, ny));
  std::printf("hierarchy: %d levels, operator complexity %.2f\n",
              h.num_levels(), h.operator_complexity());
  amg::DistHierarchy dh = amg::distribute_hierarchy(h, ranks);

  std::mt19937_64 rng(1);
  std::uniform_real_distribution<double> d(-1, 1);
  std::vector<double> b(static_cast<std::size_t>(nx) * ny);
  for (auto& v : b) v = d(rng);

  harness::MeasureConfig cfg;
  cfg.ranks_per_region = std::min(16, ranks);
  auto res = harness::run_distributed_amg(dh, proto, b, 1e-8, 60, cfg);

  std::printf("protocol: %s\n", harness::to_string(proto));
  for (std::size_t it = 0; it < res.residual_history.size(); ++it)
    std::printf("  iter %2zu  rel residual %.3e\n", it,
                res.residual_history[it]);
  std::printf("%s after %zu V-cycles; simulated solve time %.4e s\n",
              res.converged ? "converged" : "NOT converged",
              res.residual_history.size() - 1, res.solve_seconds);
  return res.converged ? 0 : 2;
}
