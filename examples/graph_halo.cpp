/// \file graph_halo.cpp
/// \brief Non-AMG use of the collectives: halo exchange of a particle/graph
/// application.  Each rank owns a slab of "sites"; every site references a
/// random set of remote sites (heavy-tailed, as in contact detection or
/// graph analytics), and the same remote site is typically referenced by
/// several ranks of a node — exactly the duplication the dedup extension
/// removes.
///
/// Usage: ./examples/graph_halo [ranks sites_per_rank refs_per_rank seed]

#include <algorithm>
#include <cstdio>
#include <map>
#include <random>
#include <set>

#include "mpix/neighbor.hpp"
#include "simmpi/dist_graph.hpp"

using namespace simmpi;

int main(int argc, char** argv) {
  int ranks = 64, sites = 512, refs = 96;
  unsigned seed = 7;
  if (argc >= 2) ranks = std::atoi(argv[1]);
  if (argc >= 3) sites = std::atoi(argv[2]);
  if (argc >= 4) refs = std::atoi(argv[3]);
  if (argc >= 5) seed = static_cast<unsigned>(std::atoi(argv[4]));

  // Global pattern: which remote sites each rank references.  Spatially
  // clustered (nearby ranks see overlapping site sets) plus a pool of
  // "hub" sites referenced by many ranks — the heavy tail of real graph
  // workloads, and exactly what the dedup extension exploits.
  std::vector<std::set<long>> needs(ranks);
  std::mt19937 rng(seed);
  const long total_sites = static_cast<long>(ranks) * sites;
  std::vector<long> hubs;
  std::uniform_int_distribution<long> any(0, total_sites - 1);
  for (int h = 0; h < 32; ++h) hubs.push_back(any(rng));
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  std::uniform_int_distribution<std::size_t> pick_hub(0, hubs.size() - 1);
  for (int r = 0; r < ranks; ++r) {
    std::normal_distribution<double> around(r * static_cast<double>(sites),
                                            0.9 * sites);
    while (static_cast<int>(needs[r].size()) < refs) {
      const long g =
          coin(rng) < 0.4 ? hubs[pick_hub(rng)] : std::lround(around(rng));
      if (g < 0 || g >= total_sites) continue;
      if (g / sites == r) continue;  // own slab, no halo needed
      needs[r].insert(g);
    }
  }

  Engine eng(Machine::with_region_size(ranks, std::min(16, ranks)),
             CostParams::lassen());
  std::vector<mpix::NeighborStats> stats[3];
  for (auto& s : stats) s.resize(ranks);
  // Per-(protocol, rank) elapsed times: rank programs execute concurrently,
  // so shared accumulation (a max across ranks) is done after the run.
  std::vector<double> elapsed(3 * ranks, 0.0);

  eng.run([&](Context& ctx) -> Task<> {
    const int r = ctx.rank();
    // Receive side from my needs, grouped by owner.
    std::vector<int> srcs, recvcounts, rdispls;
    std::vector<mpix::gidx> recv_idx;
    for (long g : needs[r]) {  // std::set => ascending => grouped by owner
      const int owner = static_cast<int>(g / sites);
      if (srcs.empty() || srcs.back() != owner) {
        srcs.push_back(owner);
        rdispls.push_back(static_cast<int>(recv_idx.size()));
        recvcounts.push_back(0);
      }
      ++recvcounts.back();
      recv_idx.push_back(g);
    }
    // Send side by inverting the global table.
    std::vector<int> dests, sendcounts, sdispls;
    std::vector<mpix::gidx> send_idx;
    for (int q = 0; q < ranks; ++q) {
      if (q == r) continue;
      std::vector<long> mine;
      for (long g : needs[q])
        if (g / sites == r) mine.push_back(g);
      if (mine.empty()) continue;
      dests.push_back(q);
      sdispls.push_back(static_cast<int>(send_idx.size()));
      sendcounts.push_back(static_cast<int>(mine.size()));
      for (long g : mine) send_idx.push_back(g);
    }
    std::vector<double> sendbuf(send_idx.size()), recvbuf(recv_idx.size());
    for (std::size_t k = 0; k < sendbuf.size(); ++k)
      sendbuf[k] = 0.125 * static_cast<double>(send_idx[k]);

    DistGraph graph = co_await dist_graph_create_adjacent(
        ctx, ctx.world(), srcs, dests, GraphAlgo::handshake);
    mpix::AlltoallvArgsT<double> args{.sendbuf = sendbuf,
                                      .sendcounts = sendcounts,
                                      .sdispls = sdispls,
                                      .recvbuf = recvbuf,
                                      .recvcounts = recvcounts,
                                      .rdispls = rdispls,
                                      .send_idx = send_idx,
                                      .recv_idx = recv_idx};
    std::unique_ptr<mpix::NeighborAlltoallv> protos[3];
    for (int p = 0; p < 3; ++p)
      protos[p] = co_await mpix::neighbor_alltoallv_init(
          ctx, graph, args, mpix::kAllMethods[p]);
    for (int p = 0; p < 3; ++p) {
      std::fill(recvbuf.begin(), recvbuf.end(), 0.0);
      co_await ctx.engine().sync_reset(ctx);
      co_await protos[p]->start(ctx);
      co_await protos[p]->wait(ctx);
      elapsed[p * ranks + r] = ctx.now();
      stats[p][r] = protos[p]->stats();
      for (std::size_t k = 0; k < recvbuf.size(); ++k)
        if (recvbuf[k] != 0.125 * static_cast<double>(recv_idx[k]))
          throw SimError("graph_halo: wrong payload delivered");
    }
    co_return;
  });

  std::printf("irregular graph halo on %d ranks (%d sites/rank, %d remote "
              "refs/rank):\n\n%-16s %-12s %-14s %-14s %s\n",
              ranks, sites, refs, "protocol", "net msgs", "net values",
              "max msg", "sim time");
  const char* names[3] = {"standard", "locality-aware", "locality+dedup"};
  for (int p = 0; p < 3; ++p) {
    const double time_p = *std::max_element(elapsed.begin() + p * ranks,
                                            elapsed.begin() + (p + 1) * ranks);
    long msgs = 0, vals = 0, mx = 0;
    for (const auto& s : stats[p]) {
      msgs += s.global_msgs;
      vals += s.global_values;
      mx = std::max(mx, s.max_global_msg_values);
    }
    std::printf("%-16s %-12ld %-14ld %-14ld %.3e s\n", names[p], msgs, vals,
                mx, time_p);
  }
  return 0;
}
