/// \file protocol_selection.cpp
/// \brief The paper's proposed future-work extension, implemented: a
/// performance model inside the collective dynamically selects the best
/// protocol per communication pattern (per AMG level), instead of the
/// offline best-of selection used in Figures 12/13.
///
/// For each level we (a) measure all four protocols on the simulator,
/// (b) ask the analytic model to pick one from the message statistics
/// alone, and (c) report how close the model-driven selection comes to the
/// measured-optimal selection.
///
/// Usage: ./examples/protocol_selection [rows ranks]

#include <cstdio>

#include "harness/measure.hpp"
#include "model/perf_model.hpp"

using harness::Protocol;

int main(int argc, char** argv) {
  long rows = 65536;
  int ranks = 256;
  if (argc >= 2) rows = std::atol(argv[1]);
  if (argc >= 3) ranks = std::atoi(argv[2]);

  const auto& dh = harness::paper_dist_hierarchy(rows, ranks);
  harness::MeasureConfig cfg;
  cfg.ranks_per_region = std::min(16, ranks);

  std::vector<std::vector<harness::LevelMeasurement>> m;
  for (Protocol p : harness::kAllProtocols)
    m.push_back(harness::measure_protocol(dh, p, cfg));

  simmpi::CostModel cm(cfg.cost);
  const int nlevels = static_cast<int>(m[0].size());
  double t_hypre = 0, t_best = 0, t_model = 0;
  std::printf("%-6s %-10s %-28s %-28s\n", "level", "rows",
              "model picks", "measured best");
  for (int l = 0; l < nlevels; ++l) {
    // Model input: the per-level aggregate message statistics.
    std::vector<std::vector<mpix::NeighborStats>> cand;
    for (int p = 0; p < 4; ++p)
      cand.push_back({mpix::NeighborStats{
          .local_msgs = m[p][l].max_local_msgs,
          .global_msgs = m[p][l].max_global_msgs,
          .local_values = m[p][l].max_local_values,
          .global_values = m[p][l].max_global_values,
          .max_global_msg_values = m[p][l].max_global_msg_values}});
    const int pick = model::select_protocol(cm, cand);
    int best = 0;
    for (int p = 1; p < 4; ++p)
      if (m[p][l].start_wait_seconds < m[best][l].start_wait_seconds)
        best = p;
    std::printf("%-6d %-10ld %-28s %-28s\n", l, m[0][l].rows,
                harness::to_string(static_cast<Protocol>(pick)),
                harness::to_string(static_cast<Protocol>(best)));
    t_hypre += m[0][l].start_wait_seconds;
    t_best += m[best][l].start_wait_seconds;
    t_model += m[pick][l].start_wait_seconds;
  }
  std::printf("\ntotals over the hierarchy:\n");
  std::printf("  always Standard Hypre : %.4e s\n", t_hypre);
  std::printf("  model-driven selection: %.4e s (%.2fx vs Hypre)\n", t_model,
              t_hypre / t_model);
  std::printf("  measured-optimal      : %.4e s (%.2fx vs Hypre)\n", t_best,
              t_hypre / t_best);
  std::printf("  model achieves %.0f%% of the optimal selection's gain\n",
              100.0 * (t_hypre - t_model) / (t_hypre - t_best));
  return 0;
}
