/// \file quickstart.cpp
/// \brief Smallest end-to-end use of the library: the paper's Example 2.1.
///
/// Eight ranks in two regions of four.  Each rank of region 0 owns two
/// values (circle/square) that must reach shaded subsets of region 1.  We
/// run the exchange three ways — standard persistent neighbor collective,
/// locality-aware aggregation, aggregation + dedup — and print the
/// inter-region traffic each one generates (Figures 3-5 of the paper).
///
/// Build & run:  ./examples/quickstart

#include <algorithm>
#include <cstdio>
#include <map>

#include "mpix/neighbor.hpp"
#include "simmpi/dist_graph.hpp"

using namespace simmpi;

namespace {

/// value id -> destination ranks (paper Example 2.1; values 2r / 2r+1 are
/// rank r's circle / square).
const std::map<int, std::vector<int>>& shading() {
  static const std::map<int, std::vector<int>> s{
      {0, {5, 6}},    {1, {4, 5, 7}},  // P0
      {2, {4, 6}},    {3, {5, 6, 7}},  // P1
      {4, {4, 7}},    {5, {4, 5, 6}},  // P2
      {6, {7}},       {7, {4, 6}},     // P3
  };
  return s;
}

}  // namespace

int main() {
  // Two regions ("CPUs") of four ranks each.
  Engine eng(Machine({.num_nodes = 2, .regions_per_node = 1,
                      .ranks_per_region = 4}),
             CostParams::lassen());

  std::vector<mpix::NeighborStats> stats[3];
  for (auto& s : stats) s.resize(8);
  // Per-(protocol, rank) elapsed times: rank programs execute concurrently,
  // so shared accumulation (a max across ranks) is done after the run.
  std::vector<double> elapsed(3 * 8, 0.0);

  eng.run([&](Context& ctx) -> Task<> {
    const int r = ctx.rank();

    // Build this rank's send/recv lists from the global shading table.
    std::vector<int> dests, sendcounts, sdispls;
    std::vector<double> sendbuf;
    std::vector<mpix::gidx> send_idx;
    std::map<int, std::vector<int>> to;  // dst -> value ids
    for (const auto& [gid, dsts] : shading())
      if (gid / 2 == r)
        for (int d : dsts) to[d].push_back(gid);
    for (const auto& [d, gids] : to) {
      dests.push_back(d);
      sdispls.push_back(static_cast<int>(sendbuf.size()));
      sendcounts.push_back(static_cast<int>(gids.size()));
      for (int g : gids) {
        sendbuf.push_back(10.0 + g);  // the value itself
        send_idx.push_back(g);
      }
    }
    std::vector<int> srcs, recvcounts, rdispls;
    std::vector<mpix::gidx> recv_idx;
    for (const auto& [gid, dsts] : shading())
      for (int d : dsts)
        if (d == r) {
          const int src = gid / 2;
          if (srcs.empty() || srcs.back() != src) {
            srcs.push_back(src);
            rdispls.push_back(static_cast<int>(recv_idx.size()));
            recvcounts.push_back(0);
          }
          ++recvcounts.back();
          recv_idx.push_back(gid);
        }
    std::vector<double> recvbuf(recv_idx.size());

    DistGraph graph = co_await dist_graph_create_adjacent(
        ctx, ctx.world(), srcs, dests, GraphAlgo::handshake);
    mpix::AlltoallvArgsT<double> args{.sendbuf = sendbuf,
                                      .sendcounts = sendcounts,
                                      .sdispls = sdispls,
                                      .recvbuf = recvbuf,
                                      .recvcounts = recvcounts,
                                      .rdispls = rdispls,
                                      .send_idx = send_idx,
                                      .recv_idx = recv_idx};

    std::unique_ptr<mpix::NeighborAlltoallv> protos[3];
    for (int p = 0; p < 3; ++p)
      protos[p] = co_await mpix::neighbor_alltoallv_init(
          ctx, graph, args, mpix::kAllMethods[p]);

    for (int p = 0; p < 3; ++p) {
      std::fill(recvbuf.begin(), recvbuf.end(), 0.0);
      co_await ctx.engine().sync_reset(ctx);
      co_await protos[p]->start(ctx);
      co_await protos[p]->wait(ctx);
      elapsed[p * 8 + r] = ctx.now();
      stats[p][r] = protos[p]->stats();
      for (std::size_t k = 0; k < recvbuf.size(); ++k)
        if (recvbuf[k] != 10.0 + recv_idx[k])
          throw SimError("quickstart: wrong payload delivered");
    }
    co_return;
  });

  const char* names[3] = {"standard", "locality-aware", "locality+dedup"};
  std::printf("Example 2.1 on 2 regions x 4 ranks (values delivered and "
              "verified):\n\n%-16s %-18s %-18s %s\n", "protocol",
              "inter-region msgs", "inter-region vals", "sim time");
  for (int p = 0; p < 3; ++p) {
    const double time_p = *std::max_element(elapsed.begin() + p * 8,
                                            elapsed.begin() + (p + 1) * 8);
    long msgs = 0, vals = 0;
    for (const auto& s : stats[p]) {
      msgs += s.global_msgs;
      vals += s.global_values;
    }
    std::printf("%-16s %-18ld %-18ld %.2e s\n", names[p], msgs, vals,
                time_p);
  }
  std::printf("\npaper: 15 standard messages collapse to 1 aggregated "
              "message; dedup cuts the 18 transferred copies to 8 unique "
              "values (Figures 3-5).\n");
  return 0;
}
