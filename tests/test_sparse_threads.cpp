/// \file test_sparse_threads.cpp
/// \brief The determinism contract of the two-phase sparse kernels and of
/// hierarchy construction: every `sparse::Threads` width produces
/// byte-identical output — rowptr/colind/vals of each kernel, deep-equal
/// hierarchies, and identical HierarchyCache files (see
/// docs/ARCHITECTURE.md, "Parallel construction").

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <vector>

#include "amg/coarsen.hpp"
#include "amg/distribute.hpp"
#include "amg/hierarchy.hpp"
#include "amg/interp.hpp"
#include "amg/strength.hpp"
#include "harness/hierarchy_cache.hpp"
#include "sparse/csr.hpp"
#include "sparse/stencil.hpp"

namespace fs = std::filesystem;
using sparse::Csr;
using sparse::Threads;

namespace {

constexpr int kWidths[] = {2, 4, 7};

/// Byte-level equality of the three CSR arrays (EXPECT_EQ on Csr would
/// also pass for equal values that were re-derived; memcmp pins the exact
/// bytes the determinism contract promises).
void expect_bytes_identical(const Csr& a, const Csr& b, const char* what,
                            int width) {
  ASSERT_EQ(a.rows(), b.rows()) << what << " width " << width;
  ASSERT_EQ(a.cols(), b.cols()) << what << " width " << width;
  ASSERT_EQ(a.nnz(), b.nnz()) << what << " width " << width;
  EXPECT_EQ(std::memcmp(a.rowptr().data(), b.rowptr().data(),
                        a.rowptr().size_bytes()),
            0)
      << what << ": rowptr bytes diverged at width " << width;
  EXPECT_EQ(std::memcmp(a.colind().data(), b.colind().data(),
                        a.colind().size_bytes()),
            0)
      << what << ": colind bytes diverged at width " << width;
  EXPECT_EQ(std::memcmp(a.values().data(), b.values().data(),
                        a.values().size_bytes()),
            0)
      << what << ": vals bytes diverged at width " << width;
}

/// An irregular non-symmetric test operator: the paper problem with a few
/// rows knocked out of pattern via pruning-resistant perturbation.
Csr test_matrix() {
  Csr a = sparse::paper_problem(48, 32);
  auto vals = a.values();
  for (std::size_t k = 0; k < vals.size(); k += 7) vals[k] *= 1.0 + 1e-3 * k;
  return a;
}

}  // namespace

TEST(SparseThreads, MultiplyBitIdenticalAcrossWidths) {
  const Csr a = test_matrix();
  const Csr base = a.multiply(a, Threads{1});
  for (int w : kWidths)
    expect_bytes_identical(base, a.multiply(a, Threads{w}), "multiply", w);
}

TEST(SparseThreads, TransposeBitIdenticalAcrossWidths) {
  const Csr a = test_matrix();
  const Csr base = a.transpose(Threads{1});
  for (int w : kWidths)
    expect_bytes_identical(base, a.transpose(Threads{w}), "transpose", w);
}

TEST(SparseThreads, PrunedBitIdenticalAcrossWidths) {
  const Csr a = test_matrix();
  const Csr base = a.pruned(1e-3, Threads{1});
  for (int w : kWidths)
    expect_bytes_identical(base, a.pruned(1e-3, Threads{w}), "pruned", w);
}

TEST(SparseThreads, SelectRowsAndPermutedBitIdenticalAcrossWidths) {
  const Csr a = test_matrix();
  std::vector<int> rows;
  for (int r = 0; r < a.rows(); r += 3) rows.push_back(r);
  std::vector<int> perm(a.rows());
  for (int i = 0; i < a.rows(); ++i)
    perm[i] = (i * 977 + 13) % a.rows();  // 977 coprime to 48*32
  const Csr sel1 = a.select_rows(rows, Threads{1});
  const Csr perm1 = a.permuted(perm, perm, Threads{1});
  for (int w : kWidths) {
    expect_bytes_identical(sel1, a.select_rows(rows, Threads{w}),
                           "select_rows", w);
    expect_bytes_identical(perm1, a.permuted(perm, perm, Threads{w}),
                           "permuted", w);
  }
}

TEST(SparseThreads, StrengthAndInterpBitIdenticalAcrossWidths) {
  const Csr a = test_matrix();
  const Csr s1 = amg::strength(a, 0.25, Threads{1});
  const std::vector<amg::CF> cf = amg::coarsen(s1, amg::CoarsenAlgo::rs);
  const Csr p1 = amg::direct_interpolation(a, s1, cf, 4, Threads{1});
  for (int w : kWidths) {
    const Csr sw = amg::strength(a, 0.25, Threads{w});
    expect_bytes_identical(s1, sw, "strength", w);
    expect_bytes_identical(
        p1, amg::direct_interpolation(a, sw, cf, 4, Threads{w}), "interp", w);
  }
}

TEST(SparseThreads, GalerkinProductBitIdenticalAcrossWidths) {
  const Csr a = test_matrix();
  const Csr s = amg::strength(a, 0.25, Threads{1});
  const std::vector<amg::CF> cf = amg::coarsen(s, amg::CoarsenAlgo::rs);
  const Csr p = amg::direct_interpolation(a, s, cf, 4, Threads{1});
  const Csr r = p.transpose(Threads{1});
  const Csr base = sparse::galerkin_product(r, a, p, Threads{1});
  for (int w : kWidths)
    expect_bytes_identical(base, sparse::galerkin_product(r, a, p, Threads{w}),
                           "galerkin", w);
}

TEST(SparseThreads, HierarchyBuildDeepEqualAcrossWidths) {
  const Csr a = sparse::paper_problem(64, 32);
  amg::Options opts;
  opts.threads = 1;
  const amg::Hierarchy base = amg::Hierarchy::build(a, opts);
  EXPECT_GE(base.num_levels(), 3) << "problem too small to exercise levels";
  for (int w : kWidths) {
    amg::Options wide = opts;
    wide.threads = w;
    const amg::Hierarchy h = amg::Hierarchy::build(a, wide);
    // Deep equality over every level: operators, transfer operators, CF
    // splits, coarse-point lists.  (Options differ in the threads knob by
    // construction, so compare levels, not the whole struct.)
    EXPECT_EQ(h.levels, base.levels) << "hierarchy diverged at width " << w;
  }
}

TEST(SparseThreads, HierarchyCacheFilesIdenticalAcrossWidths) {
  // The strongest end-to-end form of the contract: build + distribute +
  // serialize at every width and compare the cache files byte-for-byte
  // (the stored payload checksum is part of the file, so matching files
  // imply matching checksums).
  const Csr a = sparse::paper_problem(32, 16);
  const harness::HierarchyCache::Key key{a.rows(), 4, amg::Options{}};
  auto file_bytes = [&](int width) {
    amg::Options opts;
    opts.threads = width;
    const amg::DistHierarchy dh =
        amg::distribute_hierarchy(amg::Hierarchy::build(a, opts), 4);
    const fs::path dir = fs::temp_directory_path() /
                         ("sparse-threads-cache-" + std::to_string(::getpid()) +
                          "-w" + std::to_string(width));
    fs::create_directories(dir);
    harness::HierarchyCache cache(dir);
    EXPECT_TRUE(cache.store(key, dh));
    std::ifstream in(cache.path_of(key), std::ios::binary);
    std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    std::error_code ec;
    fs::remove_all(dir, ec);
    return bytes;
  };
  const std::vector<char> base = file_bytes(1);
  ASSERT_FALSE(base.empty());
  for (int w : kWidths)
    EXPECT_EQ(file_bytes(w), base)
        << "cache file (checksummed payload) diverged at width " << w;
}
