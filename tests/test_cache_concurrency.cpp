/// \file test_cache_concurrency.cpp
/// \brief Concurrency battery for the shared caches and pools — the state
/// the ROADMAP's concurrent-sweep batch driver will share across
/// simultaneous simulations.
///
/// Every test here is written to be *raced*: N host threads hammer one
/// shared `harness::PlanCache` (colliding and distinct keys), one shared
/// `harness::HierarchyCache` (same-key load/store, two-writer same-key
/// stores, eviction around in-flight temp files), the process-wide
/// coroutine-frame reservoir (`util::frame_alloc`/`frame_free` with
/// cross-thread block migration), a cross-thread `util::Arena`
/// produce/consume pipeline, and `util::WorkerPool` exception rethrow
/// under contention.  The assertions pin functional correctness; the real
/// teeth are the `-DSANITIZE=thread` CI job, where ThreadSanitizer turns
/// any unsynchronized access these workloads reach into a test failure
/// (see docs/ARCHITECTURE.md, "Thread-safety contract").

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <deque>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "harness/exchange.hpp"
#include "harness/hierarchy_cache.hpp"
#include "mpix/neighbor.hpp"
#include "sparse/stencil.hpp"
#include "util/arena.hpp"
#include "util/worker_pool.hpp"

namespace fs = std::filesystem;
using harness::HierarchyCache;
using harness::PlanCache;

namespace {

/// Fresh scratch directory per test, removed on destruction.
struct TempDir {
  fs::path path;
  TempDir() {
    static std::atomic<int> counter{0};
    path = fs::temp_directory_path() /
           ("cache-conc-test-" + std::to_string(::getpid()) + "-" +
            std::to_string(counter.fetch_add(1)));
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

/// Minimal concrete plan kind: the cache stores any PlanBase.
struct TestPlan : mpix::PlanBase {
  explicit TestPlan(std::uint64_t tag) : payload(64, tag) {}
  std::vector<std::uint64_t> payload;
};

/// Launch `n` threads running `fn(thread_index)` and join them all.
template <class Fn>
void run_threads(int n, Fn fn) {
  std::vector<std::thread> threads;
  threads.reserve(n);
  for (int t = 0; t < n; ++t) threads.emplace_back(fn, t);
  for (auto& th : threads) th.join();
}

amg::DistHierarchy build_small(long rows = 256, int nranks = 4) {
  int nx = 0, ny = 0;
  sparse::factor_grid(rows, nx, ny);
  return amg::distribute_hierarchy(
      amg::Hierarchy::build(sparse::paper_problem(nx, ny)), nranks);
}

}  // namespace

// ---- PlanCache ------------------------------------------------------

// N threads hammer one shared cache with finds and inserts on a small
// colliding key set (every thread touches every key) *and* on per-thread
// distinct keys.  Correctness: a find never observes a torn entry (every
// retrieved plan's payload is internally consistent), the accounting adds
// up, and the final size is exactly the distinct (key, rank) set.
TEST(PlanCacheConcurrency, ConcurrentFindAndInsert) {
  constexpr int kThreads = 8;
  constexpr int kIters = 400;
  constexpr int kSharedKeys = 4;
  PlanCache cache;
  std::atomic<long> finds{0};

  run_threads(kThreads, [&](int t) {
    for (int i = 0; i < kIters; ++i) {
      // Colliding half: all threads race find/put on (key in [0,4), rank 0).
      const std::uint64_t shared_key =
          static_cast<std::uint64_t>(i % kSharedKeys);
      auto found = cache.find<TestPlan>(shared_key, /*rank=*/0);
      finds.fetch_add(1, std::memory_order_relaxed);
      if (found) {
        // Whoever put it, the entry must be whole: one uniform payload.
        ASSERT_EQ(found->payload.size(), 64u);
        for (std::uint64_t v : found->payload)
          ASSERT_EQ(v, found->payload[0]);
        ASSERT_EQ(found->payload[0] % kSharedKeys, shared_key);
      } else {
        cache.put(shared_key, 0, std::make_shared<const TestPlan>(
                                     shared_key + kSharedKeys * 1000));
      }
      // Distinct half: per-thread rank slot, no key collisions across
      // threads (the per-rank keying the engine's rank coroutines use).
      const std::uint64_t own_key = 1000 + static_cast<std::uint64_t>(t);
      if (auto own = cache.find<TestPlan>(own_key, t)) {
        ASSERT_EQ(own->payload[0], static_cast<std::uint64_t>(t));
      } else {
        cache.put(own_key, t, std::make_shared<const TestPlan>(t));
      }
      finds.fetch_add(1, std::memory_order_relaxed);
    }
  });

  EXPECT_EQ(cache.hits() + cache.misses(), finds.load());
  // Exactly the distinct (key, rank) pairs: 4 shared + one per thread.
  EXPECT_EQ(cache.size(), static_cast<std::size_t>(kSharedKeys + kThreads));
  // Every shared key was missed at least once and hit many times.
  EXPECT_GE(cache.misses(), kSharedKeys + kThreads);
  EXPECT_GT(cache.hits(), 0);
}

// find<P> on a key holding another kind must read as null under the same
// contention (the dynamic_cast miss path is part of the API contract).
TEST(PlanCacheConcurrency, WrongKindReadsNullUnderContention) {
  PlanCache cache;
  cache.put(7, 0, std::make_shared<const TestPlan>(7));
  run_threads(4, [&](int) {
    for (int i = 0; i < 200; ++i) {
      auto as_locality = cache.find<mpix::LocalityPlan>(7, 0);
      EXPECT_EQ(as_locality, nullptr);
      auto as_test = cache.find<TestPlan>(7, 0);
      ASSERT_NE(as_test, nullptr);
      EXPECT_EQ(as_test->payload[0], 7u);
    }
  });
  EXPECT_EQ(cache.size(), 1u);
}

// ---- HierarchyCache -------------------------------------------------

// Concurrent load/store of the *same key* on one shared cache instance:
// every successful load must deep-equal the stored hierarchy (the atomic
// rename publishes candidates whole), and the counters must add up.
TEST(HierarchyCacheConcurrency, ConcurrentLoadStoreSameKey) {
  TempDir tmp;
  HierarchyCache cache(tmp.path);
  const amg::DistHierarchy dh = build_small();
  const HierarchyCache::Key key{256, 4, amg::Options{}};

  constexpr int kThreads = 6;
  constexpr int kIters = 6;
  std::atomic<long> loads{0}, good_loads{0};
  run_threads(kThreads, [&](int t) {
    for (int i = 0; i < kIters; ++i) {
      if (t % 2 == 0) {
        EXPECT_TRUE(cache.store(key, dh));
      }
      auto loaded = cache.load(key);
      loads.fetch_add(1, std::memory_order_relaxed);
      if (loaded) {
        good_loads.fetch_add(1, std::memory_order_relaxed);
        EXPECT_EQ(*loaded, dh);
      }
    }
  });

  EXPECT_EQ(cache.hits() + cache.misses(), loads.load());
  EXPECT_EQ(cache.hits(), good_loads.load());
  // After the dust settles the entry is present and loads cleanly.
  auto final_load = cache.load(key);
  ASSERT_TRUE(final_load.has_value());
  EXPECT_EQ(*final_load, dh);
}

// Satellite regression: two threads storing the same key used to share one
// pid-derived temp path and interleave writes in it.  Now each writer owns
// a unique temp file, so a concurrent reader can only ever observe nothing
// or a complete, checksum-clean hierarchy — and no temp litter survives.
TEST(HierarchyCacheConcurrency, TwoWritersSameKeyPublishWholeFiles) {
  TempDir tmp;
  HierarchyCache cache(tmp.path);
  const amg::DistHierarchy dh = build_small();
  const HierarchyCache::Key key{256, 4, amg::Options{}};

  constexpr int kStores = 8;
  std::atomic<bool> writers_done{false};
  std::atomic<long> torn{0};
  std::thread reader([&] {
    while (!writers_done.load(std::memory_order_acquire)) {
      if (auto loaded = cache.load(key); loaded && !(*loaded == dh))
        torn.fetch_add(1, std::memory_order_relaxed);
    }
  });
  run_threads(2, [&](int) {
    for (int i = 0; i < kStores; ++i) EXPECT_TRUE(cache.store(key, dh));
  });
  writers_done.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(torn.load(), 0);
  auto loaded = cache.load(key);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, dh);
  // Every temp file was either renamed into place or cleaned up.
  int chc = 0, tmps = 0;
  for (const auto& de : fs::directory_iterator(tmp.path)) {
    if (de.path().extension() == ".chc")
      ++chc;
    else
      ++tmps;
  }
  EXPECT_EQ(chc, 1);
  EXPECT_EQ(tmps, 0);
}

// Eviction must only consider completed `.chc` entries: an in-flight
// `.tmp-*` file (here: a stale one faked in by hand) is never deleted and
// never counted against the cap.
TEST(HierarchyCacheConcurrency, EvictionSkipsTempFiles) {
  TempDir tmp;
  const amg::DistHierarchy dh = build_small();
  const HierarchyCache::Key key_a{256, 4, amg::Options{}};
  amg::Options opts_b;
  opts_b.max_levels = 2;  // distinct key -> distinct content address
  const HierarchyCache::Key key_b{256, 4, opts_b};

  // Size one entry, then cap the cache below two of them.
  std::uintmax_t one_entry = 0;
  {
    HierarchyCache sizer(tmp.path);
    ASSERT_TRUE(sizer.store(key_a, dh));
    one_entry = fs::file_size(sizer.path_of(key_a));
    fs::remove(sizer.path_of(key_a));
  }
  HierarchyCache cache(tmp.path, one_entry + one_entry / 2);

  ASSERT_TRUE(cache.store(key_a, dh));
  const fs::path fake_tmp =
      cache.path_of(key_a).string() + ".tmp-99999-0";
  {
    std::ofstream out(fake_tmp, std::ios::binary);
    out << "half-written by a crashed process";
  }
  ASSERT_TRUE(cache.store(key_b, dh));  // over cap: must evict key_a only

  EXPECT_FALSE(fs::exists(cache.path_of(key_a)));  // evicted (oldest)
  EXPECT_TRUE(fs::exists(cache.path_of(key_b)));   // just written: kept
  EXPECT_TRUE(fs::exists(fake_tmp));               // temp: never touched
  // The stale temp is inert for loads, too.
  EXPECT_FALSE(cache.load(key_a).has_value());
  EXPECT_TRUE(cache.load(key_b).has_value());
}

// ---- coroutine-frame pool / Arena ----------------------------------

// Frame-pool churn across threads: producers allocate and write blocks,
// hand them through a mutex-guarded queue, and consumers free them — so
// blocks migrate between per-thread caches through the process-wide
// reservoir, exactly like coroutine frames surviving the engine's per-run
// worker threads.  The pool must reuse blocks (that is its contract) and
// TSan must see clean handoffs.
TEST(FramePoolConcurrency, CrossThreadChurnReusesBlocks) {
  struct Block {
    void* p;
    std::size_t n;
  };
  std::mutex mu;
  std::deque<Block> queue;
  std::atomic<bool> done{false};
  constexpr int kBlocks = 2000;
  const std::size_t sizes[] = {64, 192, 448, 1024, 4096, 32 * 1024};

  const std::uint64_t reuses_before = util::frame_pool_reuses();

  std::thread consumer([&] {
    for (;;) {
      Block b{nullptr, 0};
      {
        std::lock_guard<std::mutex> lk(mu);
        if (!queue.empty()) {
          b = queue.front();
          queue.pop_front();
        } else if (done.load(std::memory_order_acquire)) {
          return;
        }
      }
      if (b.p) {
        // Read what the producer wrote: a handoff TSan can check.
        EXPECT_EQ(static_cast<unsigned char*>(b.p)[0],
                  static_cast<unsigned char>(b.n & 0xff));
        util::frame_free(b.p, b.n);
      }
    }
  });

  run_threads(3, [&](int t) {
    for (int i = 0; i < kBlocks; ++i) {
      const std::size_t n = sizes[(i + t) % std::size(sizes)];
      void* p = util::frame_alloc(n);
      ASSERT_NE(p, nullptr);
      std::memset(p, static_cast<int>(n & 0xff), 8);
      if (i % 2 == 0) {
        std::lock_guard<std::mutex> lk(mu);
        queue.push_back({p, n});
      } else {
        util::frame_free(p, n);  // same-thread fast path interleaved
      }
    }
  });
  done.store(true, std::memory_order_release);
  consumer.join();

  // Churn at this volume must recycle: the whole point of the pool.
  EXPECT_GT(util::frame_pool_reuses(), reuses_before);
}

// Arena produce/consume across threads: one producer bumps its own arena
// (the engine's one-bumper-per-arena contract) while consumer threads read
// the payload bytes and release the blocks from their side.  Once all
// consumers finished, every chunk must be fully released and the arena
// recycles instead of growing.
TEST(ArenaConcurrency, CrossThreadReleaseRecycles) {
  util::Arena arena(4 * 1024);
  struct Item {
    util::Arena::Alloc a;
    std::size_t n;
  };
  std::mutex mu;
  std::deque<Item> queue;
  std::atomic<bool> done{false};
  constexpr int kItems = 4000;

  std::vector<std::thread> consumers;
  for (int c = 0; c < 2; ++c) {
    consumers.emplace_back([&] {
      for (;;) {
        Item it{{}, 0};
        {
          std::lock_guard<std::mutex> lk(mu);
          if (!queue.empty()) {
            it = queue.front();
            queue.pop_front();
          } else if (done.load(std::memory_order_acquire)) {
            return;
          }
        }
        if (it.a.data) {
          for (std::size_t k = 0; k < it.n; ++k)
            EXPECT_EQ(it.a.data[k], std::byte{0x5a});
          util::Arena::release(it.a.chunk);
        }
      }
    });
  }

  // Single bumper: sizes cross the chunk boundary and the oversized-spill
  // path, so recycling covers both chunk shapes.  The queue is bounded so
  // the producer cannot outrun the consumers — a stable working set is
  // what makes recycling (rather than growth) the expected behavior.
  for (int i = 0; i < kItems; ++i) {
    const std::size_t n = (i % 7 == 0) ? 8 * 1024 : 256;
    for (;;) {
      bool backlogged;
      {
        std::lock_guard<std::mutex> lk(mu);
        backlogged = queue.size() >= 64;
      }
      if (!backlogged) break;
      std::this_thread::yield();
    }
    util::Arena::Alloc a = arena.allocate(n);
    std::memset(a.data, 0x5a, n);
    std::lock_guard<std::mutex> lk(mu);
    queue.push_back({a, n});
  }
  done.store(true, std::memory_order_release);
  for (auto& t : consumers) t.join();

  EXPECT_TRUE(arena.clean());
  EXPECT_GT(arena.stats().recycles, 0u);
  // The steady working set is a handful of chunks, not thousands.
  EXPECT_LT(arena.stats().chunks, 64u);
}

// ---- WorkerPool -----------------------------------------------------

// Exception rethrow under contention: many chunks, several of which throw
// concurrently.  The pool must (a) run every chunk to completion, (b)
// rethrow exactly the first-in-block-order exception, and (c) stay usable
// for clean runs afterwards — including reuse of the same pool object.
TEST(WorkerPoolConcurrency, ExceptionRethrowUnderContention) {
  util::WorkerPool pool(4);
  constexpr std::size_t kN = 4096;
  constexpr std::size_t kChunk = 16;

  for (int round = 0; round < 10; ++round) {
    std::vector<int> touched(kN, 0);
    const std::size_t first_bad_chunk = 3 + static_cast<std::size_t>(round);
    try {
      pool.run(kN, kChunk, [&](std::size_t b, std::size_t e, int) {
        for (std::size_t i = b; i < e; ++i) touched[i] = 1;
        const std::size_t chunk_idx = b / kChunk;
        if (chunk_idx >= first_bad_chunk && chunk_idx % 7 == 0)
          throw std::runtime_error("chunk " + std::to_string(chunk_idx));
      });
      FAIL() << "expected a rethrow";
    } catch (const std::runtime_error& e) {
      // First throwing chunk in *block order*, independent of which worker
      // ran it or finished last.
      std::size_t expect = first_bad_chunk;
      while (expect % 7 != 0) ++expect;
      EXPECT_EQ(std::string(e.what()), "chunk " + std::to_string(expect));
    }
    // Every chunk ran despite the exceptions.
    for (std::size_t i = 0; i < kN; ++i) ASSERT_EQ(touched[i], 1);

    // The pool is clean for the next (non-throwing) invocation.
    std::atomic<long> sum{0};
    pool.run(kN, kChunk, [&](std::size_t b, std::size_t e, int) {
      sum.fetch_add(static_cast<long>(e - b), std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), static_cast<long>(kN));
  }
}

// Concurrent chunks of one pool invocation hammering the shared PlanCache:
// the engine resumes rank coroutines on this pool, and those coroutines
// find/put plans — this is the exact contention shape of a concurrent
// sweep, minus the engine.
TEST(WorkerPoolConcurrency, WorkersShareOnePlanCache) {
  util::WorkerPool pool(4);
  PlanCache cache;
  constexpr std::size_t kRanks = 512;

  for (int round = 0; round < 3; ++round) {
    pool.run(kRanks, 8, [&](std::size_t b, std::size_t e, int) {
      for (std::size_t r = b; r < e; ++r) {
        const std::uint64_t key = r % 16;
        if (auto p = cache.find<TestPlan>(key, static_cast<int>(r))) {
          ASSERT_EQ(p->payload[0], key);
        } else {
          cache.put(key, static_cast<int>(r),
                    std::make_shared<const TestPlan>(key));
        }
      }
    });
  }
  EXPECT_EQ(cache.size(), kRanks);  // one entry per (key, rank) pair
  EXPECT_EQ(cache.hits() + cache.misses(),
            static_cast<long>(3 * kRanks));
  EXPECT_EQ(cache.misses(), static_cast<long>(kRanks));
}
