/// \file test_machine.cpp
/// \brief Topology mapping and locality classification.

#include <gtest/gtest.h>

#include <string>

#include "simmpi/engine.hpp"
#include "simmpi/machine.hpp"

using simmpi::Locality;
using simmpi::Machine;
using simmpi::MachineConfig;

TEST(Machine, RankCounts) {
  Machine m({.num_nodes = 4, .regions_per_node = 2, .ranks_per_region = 16});
  EXPECT_EQ(m.num_ranks(), 128);
  EXPECT_EQ(m.num_nodes(), 4);
  EXPECT_EQ(m.num_regions(), 8);
  EXPECT_EQ(m.ranks_per_region(), 16);
  EXPECT_EQ(m.ranks_per_node(), 32);
}

TEST(Machine, RankMappingIsBlockedNodeMajor) {
  Machine m({.num_nodes = 2, .regions_per_node = 2, .ranks_per_region = 4});
  // ranks 0..3 region 0 node 0; 4..7 region 1 node 0; 8..11 region 2 node 1.
  EXPECT_EQ(m.node_of(0), 0);
  EXPECT_EQ(m.node_of(7), 0);
  EXPECT_EQ(m.node_of(8), 1);
  EXPECT_EQ(m.region_of(3), 0);
  EXPECT_EQ(m.region_of(4), 1);
  EXPECT_EQ(m.region_of(11), 2);
  EXPECT_EQ(m.core_of(5), 1);
  EXPECT_EQ(m.region_root(2), 8);
}

TEST(Machine, LocalityClassification) {
  Machine m({.num_nodes = 2, .regions_per_node = 2, .ranks_per_region = 4});
  EXPECT_EQ(m.classify(3, 3), Locality::self);
  EXPECT_EQ(m.classify(0, 3), Locality::region);
  EXPECT_EQ(m.classify(0, 4), Locality::node);
  EXPECT_EQ(m.classify(0, 8), Locality::network);
  EXPECT_EQ(m.classify(8, 0), Locality::network);
}

TEST(Machine, ClassificationIsSymmetric) {
  Machine m({.num_nodes = 3, .regions_per_node = 2, .ranks_per_region = 3});
  for (int a = 0; a < m.num_ranks(); ++a)
    for (int b = 0; b < m.num_ranks(); ++b)
      EXPECT_EQ(m.classify(a, b), m.classify(b, a)) << a << " vs " << b;
}

TEST(Machine, WithRegionSizeBuildsOneRegionPerNode) {
  Machine m = Machine::with_region_size(2048, 16);
  EXPECT_EQ(m.num_ranks(), 2048);
  EXPECT_EQ(m.num_regions(), 128);
  EXPECT_EQ(m.ranks_per_region(), 16);
  EXPECT_EQ(m.config().regions_per_node, 1);
}

TEST(Machine, WithRegionSizeSmallRun) {
  // Fewer ranks than a region: one partially filled region.
  Machine m = Machine::with_region_size(5, 16);
  EXPECT_EQ(m.num_ranks(), 5);
  EXPECT_EQ(m.num_regions(), 1);
}

TEST(Machine, WithRegionSizeRejectsNonMultiple) {
  EXPECT_THROW(Machine::with_region_size(33, 16), simmpi::SimError);
}

TEST(Machine, RejectsBadConfig) {
  EXPECT_THROW(Machine({.num_nodes = 0, .regions_per_node = 1,
                        .ranks_per_region = 1}),
               simmpi::SimError);
  EXPECT_THROW(Machine({.num_nodes = 1, .regions_per_node = -1,
                        .ranks_per_region = 1}),
               simmpi::SimError);
}

TEST(Machine, RejectionNamesTheOffendingField) {
  // Every dimension is validated independently, and the message names the
  // field and echoes the value so a miswired caller can be diagnosed from
  // the exception alone.
  auto message_of = [](MachineConfig cfg) -> std::string {
    try {
      Machine m(cfg);
    } catch (const simmpi::SimError& e) {
      return e.what();
    }
    return "";
  };
  EXPECT_NE(message_of({.num_nodes = 0, .regions_per_node = 2,
                        .ranks_per_region = 2})
                .find("num_nodes"),
            std::string::npos);
  EXPECT_NE(message_of({.num_nodes = 2, .regions_per_node = 0,
                        .ranks_per_region = 2})
                .find("regions_per_node"),
            std::string::npos);
  EXPECT_NE(message_of({.num_nodes = 2, .regions_per_node = 2,
                        .ranks_per_region = -3})
                .find("-3"),
            std::string::npos);
}

TEST(Machine, FlatMachineHasNoLinkTiers) {
  Machine m({.num_nodes = 4, .regions_per_node = 1, .ranks_per_region = 2,
             .switch_levels = {}});
  EXPECT_EQ(m.num_switch_levels(), 0);
  EXPECT_EQ(m.num_link_tiers(), 0);
  // Flat answer: distinct nodes "meet at the leaf" — nothing to charge.
  EXPECT_EQ(m.node_lca_level(0, 0), -1);
  EXPECT_EQ(m.node_lca_level(0, 3), 0);
}

TEST(Machine, LcaLevelAtSubtreeBoundaries) {
  // 8 nodes -> 4 leaf switches -> 2 -> 1 root: pairs join exactly where
  // their subtree paths first share a switch.
  Machine m({.num_nodes = 8, .regions_per_node = 1, .ranks_per_region = 2,
             .switch_levels = {{.radix = 2, .taper = 2.0},
                               {.radix = 2, .taper = 2.0},
                               {.radix = 2, .taper = 1.0}}});
  EXPECT_EQ(m.num_switch_levels(), 3);
  EXPECT_EQ(m.num_link_tiers(), 2);
  EXPECT_EQ(m.switches_at(0), 4);
  EXPECT_EQ(m.switches_at(1), 2);
  EXPECT_EQ(m.switches_at(2), 1);
  EXPECT_EQ(m.node_lca_level(3, 3), -1);  // same node
  EXPECT_EQ(m.node_lca_level(0, 1), 0);   // same leaf switch
  EXPECT_EQ(m.node_lca_level(1, 2), 1);   // leaf boundary (nodes 1|2)
  EXPECT_EQ(m.node_lca_level(3, 4), 2);   // mid-tree boundary (nodes 3|4)
  EXPECT_EQ(m.node_lca_level(0, 7), 2);   // opposite halves
  // Rank-level helper maps through node_of.
  EXPECT_EQ(m.lca_level(0, 1), -1);       // ranks 0,1 share node 0
  EXPECT_EQ(m.lca_level(0, 15), 2);       // rank 15 lives on node 7
  // Symmetry, exhaustively.
  for (int a = 0; a < m.num_nodes(); ++a)
    for (int b = 0; b < m.num_nodes(); ++b)
      EXPECT_EQ(m.node_lca_level(a, b), m.node_lca_level(b, a))
          << a << " vs " << b;
}

TEST(Machine, SwitchLevelsMustCascadeEvenly) {
  // Radix 4 does not divide 6 nodes.
  EXPECT_THROW(Machine({.num_nodes = 6, .regions_per_node = 1,
                        .ranks_per_region = 1,
                        .switch_levels = {{.radix = 4, .taper = 1.0},
                                          {.radix = 2, .taper = 1.0}}}),
               simmpi::SimError);
  // Cascades evenly but leaves 2 switches at the top: no single root.
  EXPECT_THROW(Machine({.num_nodes = 8, .regions_per_node = 1,
                        .ranks_per_region = 1,
                        .switch_levels = {{.radix = 2, .taper = 1.0},
                                          {.radix = 2, .taper = 1.0}}}),
               simmpi::SimError);
}

TEST(Machine, SwitchLevelRejectionNamesTheOffendingField) {
  auto message_of = [](MachineConfig cfg) -> std::string {
    try {
      Machine m(cfg);
    } catch (const simmpi::SimError& e) {
      return e.what();
    }
    return "";
  };
  EXPECT_NE(message_of({.num_nodes = 4, .regions_per_node = 1,
                        .ranks_per_region = 1,
                        .switch_levels = {{.radix = 0, .taper = 1.0}}})
                .find("switch_levels[0].radix"),
            std::string::npos);
  EXPECT_NE(message_of({.num_nodes = 4, .regions_per_node = 1,
                        .ranks_per_region = 1,
                        .switch_levels = {{.radix = 4, .taper = 1.0},
                                          {.radix = 1, .taper = -2.0}}})
                .find("switch_levels[1].taper"),
            std::string::npos);
  EXPECT_NE(message_of({.num_nodes = 6, .regions_per_node = 1,
                        .ranks_per_region = 1,
                        .switch_levels = {{.radix = 4, .taper = 1.0}}})
                .find("radix"),
            std::string::npos);
  EXPECT_NE(message_of({.num_nodes = 8, .regions_per_node = 1,
                        .ranks_per_region = 1,
                        .switch_levels = {{.radix = 2, .taper = 1.0},
                                          {.radix = 2, .taper = 1.0}}})
                .find("root"),
            std::string::npos);
}

TEST(Machine, EngineRejectsBadLinkRatesNamingTheField) {
  // Link parameters are used (hence validated) only by an engine with the
  // link cap enabled; the message must name the field and echo the value.
  const MachineConfig tree{.num_nodes = 4, .regions_per_node = 1,
                           .ranks_per_region = 1,
                           .switch_levels = {{.radix = 2, .taper = 1.0},
                                             {.radix = 2, .taper = 1.0}}};
  auto message_of = [&](simmpi::CostParams p) -> std::string {
    p.use_link_cap = true;
    try {
      simmpi::Engine eng{Machine(tree), p};
    } catch (const simmpi::SimError& e) {
      return e.what();
    }
    return "";
  };
  simmpi::CostParams bad_rate;
  bad_rate.link_rate = 0.0;
  EXPECT_NE(message_of(bad_rate).find("link_rate"), std::string::npos);
  simmpi::CostParams wrong_arity;
  wrong_arity.link_rates = {1.0, 1.0, 1.0};  // machine has 1 tier
  EXPECT_NE(message_of(wrong_arity).find("link_rates"), std::string::npos);
  simmpi::CostParams negative_entry;
  negative_entry.link_rates = {-5.0};
  EXPECT_NE(message_of(negative_entry).find("link_rates[0]"),
            std::string::npos);
  EXPECT_NE(message_of(negative_entry).find("-5"), std::string::npos);
  // With the cap off the same parameters are inert: construction succeeds.
  simmpi::CostParams off;
  off.link_rate = 0.0;
  EXPECT_NO_THROW(simmpi::Engine(Machine(tree), off));
}

TEST(Machine, RejectsRankCountOverflow) {
  // 1e6 nodes x 1e5 regions x 16 ranks would overflow the int rank count;
  // validation must catch it before MachineConfig::num_ranks() multiplies.
  EXPECT_THROW(Machine({.num_nodes = 1000000, .regions_per_node = 100000,
                        .ranks_per_region = 16}),
               simmpi::SimError);
  EXPECT_THROW(Machine({.num_nodes = 2000000000, .regions_per_node = 2,
                        .ranks_per_region = 1}),
               simmpi::SimError);
}
