/// \file test_machine.cpp
/// \brief Topology mapping and locality classification.

#include <gtest/gtest.h>

#include <string>

#include "simmpi/machine.hpp"

using simmpi::Locality;
using simmpi::Machine;
using simmpi::MachineConfig;

TEST(Machine, RankCounts) {
  Machine m({.num_nodes = 4, .regions_per_node = 2, .ranks_per_region = 16});
  EXPECT_EQ(m.num_ranks(), 128);
  EXPECT_EQ(m.num_nodes(), 4);
  EXPECT_EQ(m.num_regions(), 8);
  EXPECT_EQ(m.ranks_per_region(), 16);
  EXPECT_EQ(m.ranks_per_node(), 32);
}

TEST(Machine, RankMappingIsBlockedNodeMajor) {
  Machine m({.num_nodes = 2, .regions_per_node = 2, .ranks_per_region = 4});
  // ranks 0..3 region 0 node 0; 4..7 region 1 node 0; 8..11 region 2 node 1.
  EXPECT_EQ(m.node_of(0), 0);
  EXPECT_EQ(m.node_of(7), 0);
  EXPECT_EQ(m.node_of(8), 1);
  EXPECT_EQ(m.region_of(3), 0);
  EXPECT_EQ(m.region_of(4), 1);
  EXPECT_EQ(m.region_of(11), 2);
  EXPECT_EQ(m.core_of(5), 1);
  EXPECT_EQ(m.region_root(2), 8);
}

TEST(Machine, LocalityClassification) {
  Machine m({.num_nodes = 2, .regions_per_node = 2, .ranks_per_region = 4});
  EXPECT_EQ(m.classify(3, 3), Locality::self);
  EXPECT_EQ(m.classify(0, 3), Locality::region);
  EXPECT_EQ(m.classify(0, 4), Locality::node);
  EXPECT_EQ(m.classify(0, 8), Locality::network);
  EXPECT_EQ(m.classify(8, 0), Locality::network);
}

TEST(Machine, ClassificationIsSymmetric) {
  Machine m({.num_nodes = 3, .regions_per_node = 2, .ranks_per_region = 3});
  for (int a = 0; a < m.num_ranks(); ++a)
    for (int b = 0; b < m.num_ranks(); ++b)
      EXPECT_EQ(m.classify(a, b), m.classify(b, a)) << a << " vs " << b;
}

TEST(Machine, WithRegionSizeBuildsOneRegionPerNode) {
  Machine m = Machine::with_region_size(2048, 16);
  EXPECT_EQ(m.num_ranks(), 2048);
  EXPECT_EQ(m.num_regions(), 128);
  EXPECT_EQ(m.ranks_per_region(), 16);
  EXPECT_EQ(m.config().regions_per_node, 1);
}

TEST(Machine, WithRegionSizeSmallRun) {
  // Fewer ranks than a region: one partially filled region.
  Machine m = Machine::with_region_size(5, 16);
  EXPECT_EQ(m.num_ranks(), 5);
  EXPECT_EQ(m.num_regions(), 1);
}

TEST(Machine, WithRegionSizeRejectsNonMultiple) {
  EXPECT_THROW(Machine::with_region_size(33, 16), simmpi::SimError);
}

TEST(Machine, RejectsBadConfig) {
  EXPECT_THROW(Machine({.num_nodes = 0, .regions_per_node = 1,
                        .ranks_per_region = 1}),
               simmpi::SimError);
  EXPECT_THROW(Machine({.num_nodes = 1, .regions_per_node = -1,
                        .ranks_per_region = 1}),
               simmpi::SimError);
}

TEST(Machine, RejectionNamesTheOffendingField) {
  // Every dimension is validated independently, and the message names the
  // field and echoes the value so a miswired caller can be diagnosed from
  // the exception alone.
  auto message_of = [](MachineConfig cfg) -> std::string {
    try {
      Machine m(cfg);
    } catch (const simmpi::SimError& e) {
      return e.what();
    }
    return "";
  };
  EXPECT_NE(message_of({.num_nodes = 0, .regions_per_node = 2,
                        .ranks_per_region = 2})
                .find("num_nodes"),
            std::string::npos);
  EXPECT_NE(message_of({.num_nodes = 2, .regions_per_node = 0,
                        .ranks_per_region = 2})
                .find("regions_per_node"),
            std::string::npos);
  EXPECT_NE(message_of({.num_nodes = 2, .regions_per_node = 2,
                        .ranks_per_region = -3})
                .find("-3"),
            std::string::npos);
}

TEST(Machine, RejectsRankCountOverflow) {
  // 1e6 nodes x 1e5 regions x 16 ranks would overflow the int rank count;
  // validation must catch it before MachineConfig::num_ranks() multiplies.
  EXPECT_THROW(Machine({.num_nodes = 1000000, .regions_per_node = 100000,
                        .ranks_per_region = 16}),
               simmpi::SimError);
  EXPECT_THROW(Machine({.num_nodes = 2000000000, .regions_per_node = 2,
                        .ranks_per_region = 1}),
               simmpi::SimError);
}
