/// \file test_neighbor_typed.cpp
/// \brief Datatype-generic payloads and plan reuse: the collectives must
/// move any trivially copyable element type (int halos, struct payloads)
/// byte-identically to a scalar reference, and re-initializing on a cached
/// LocalityPlan must perform zero setup communication.

#include <gtest/gtest.h>

#include <cstring>

#include "pattern_util.hpp"
#include "simmpi/dist_graph.hpp"

using namespace simmpi;
using namespace mpix;
using pattern::GlobalPattern;
using pattern::RankArgs;

namespace {

/// A non-power-of-two, non-double element (12 bytes).
struct Particle {
  float x = 0, y = 0;
  int tag = 0;
  bool operator==(const Particle&) const = default;
};
static_assert(sizeof(Particle) == 12);

int int_value_of(gidx gid, int iter) {
  return static_cast<int>(gid) * 13 + 1000 * iter + 7;
}

Particle particle_value_of(gidx gid, int iter) {
  return {0.5f * static_cast<float>(gid), static_cast<float>(iter),
          static_cast<int>(gid) + iter};
}

/// Exchange `T` payloads derived from the pattern's gids through `method`
/// and compare byte-for-byte against the scalar (host-computed) reference.
template <class T, class ValueOf>
void verify_typed(int nodes, int rpn, const GlobalPattern& pat, Method method,
                  ValueOf value_of) {
  Engine eng(Machine({.num_nodes = nodes, .regions_per_node = 1,
                      .ranks_per_region = rpn}),
             CostParams::lassen());
  eng.run([&](Context& ctx) -> Task<> {
    const int r = ctx.rank();
    RankArgs a = pattern::rank_args(pat, r);  // reuse the pattern metadata
    std::vector<T> sendbuf(a.send_idx.size());
    std::vector<T> recvbuf(a.recv_idx.size());
    std::vector<T> expected(a.recv_idx.size());
    DistGraph g = co_await dist_graph_create_adjacent(
        ctx, ctx.world(), a.sources, a.destinations, GraphAlgo::handshake);
    // Build the typed arguments in a helper returning a prvalue — never as
    // a braced temporary inline in the co_await'd call, which g++ 12
    // miscompiles (see the neighbor.hpp warning).
    auto targs = [&] {
      return AlltoallvArgsT<T>{.sendbuf = sendbuf,
                               .sendcounts = a.sendcounts,
                               .sdispls = a.sdispls,
                               .recvbuf = recvbuf,
                               .recvcounts = a.recvcounts,
                               .rdispls = a.rdispls,
                               .send_idx = a.send_idx,
                               .recv_idx = a.recv_idx};
    };
    auto proto = co_await neighbor_alltoallv_init(ctx, g, targs(), method);
    for (int it = 0; it < 3; ++it) {
      for (std::size_t k = 0; k < sendbuf.size(); ++k)
        sendbuf[k] = value_of(a.send_idx[k], it);
      for (std::size_t k = 0; k < expected.size(); ++k)
        expected[k] = value_of(a.recv_idx[k], it);
      std::fill(recvbuf.begin(), recvbuf.end(), value_of(-12345, 99));
      co_await proto->start(ctx);
      co_await proto->wait(ctx);
      EXPECT_TRUE(recvbuf.empty() ||
                  std::memcmp(recvbuf.data(), expected.data(),
                              recvbuf.size() * sizeof(T)) == 0)
          << proto->name() << " rank " << r << " iter " << it;
    }
    co_return;
  });
}

}  // namespace

TEST(TypedPayload, IntHaloThroughEveryMethod) {
  for (unsigned seed : {1u, 4u}) {
    GlobalPattern pat = pattern::random_pattern(16, seed);
    for (Method m : kAllMethods)
      verify_typed<int>(4, 4, pat, m, int_value_of);
  }
}

TEST(TypedPayload, TwelveByteStructThroughEveryMethod) {
  GlobalPattern pat = pattern::random_pattern(12, 5);
  for (Method m : kAllMethods)
    verify_typed<Particle>(3, 4, pat, m, particle_value_of);
}

TEST(TypedPayload, GidxPayloadMatchesIndices) {
  // Send each value's own index: what arrives must equal recv_idx itself.
  GlobalPattern pat = pattern::random_pattern(8, 9);
  verify_typed<gidx>(2, 4, pat, Method::locality_dedup,
                     [](gidx g, int) { return g; });
}

TEST(TypedPayload, MixedElementSizesShareOnePlan) {
  // The plan is element-size-free: build it once (via a double exchange),
  // then bind an int exchange on the same pattern to the same plan.
  GlobalPattern pat = pattern::random_pattern(8, 6);
  Engine eng(Machine({.num_nodes = 2, .regions_per_node = 1,
                      .ranks_per_region = 4}),
             CostParams::lassen());
  eng.run([&](Context& ctx) -> Task<> {
    const int r = ctx.rank();
    RankArgs a = pattern::rank_args(pat, r);
    std::vector<int> isend(a.send_idx.size()), irecv(a.recv_idx.size());
    DistGraph g = co_await dist_graph_create_adjacent(
        ctx, ctx.world(), a.sources, a.destinations, GraphAlgo::handshake);
    auto dbl = co_await neighbor_alltoallv_init(ctx, g, a.view(),
                                                Method::locality_dedup);
    auto iargs = [&] {
      return AlltoallvArgsT<int>{.sendbuf = isend,
                                 .sendcounts = a.sendcounts,
                                 .sdispls = a.sdispls,
                                 .recvbuf = irecv,
                                 .recvcounts = a.recvcounts,
                                 .rdispls = a.rdispls,
                                 .send_idx = a.send_idx,
                                 .recv_idx = a.recv_idx};
    };
    const auto shared = dbl->plan();
    auto ints = co_await neighbor_alltoallv_init(
        ctx, g, iargs(), Method::locality_dedup, {.plan = shared.get()});
    EXPECT_EQ(ints->plan(), dbl->plan());
    a.fill(1);
    for (std::size_t k = 0; k < isend.size(); ++k)
      isend[k] = int_value_of(a.send_idx[k], 1);
    co_await dbl->start(ctx);
    co_await ints->start(ctx);
    co_await ints->wait(ctx);
    co_await dbl->wait(ctx);
    for (std::size_t k = 0; k < irecv.size(); ++k) {
      EXPECT_DOUBLE_EQ(a.recvbuf[k], a.expected[k]) << "rank " << r;
      EXPECT_EQ(irecv[k], int_value_of(a.recv_idx[k], 1)) << "rank " << r;
    }
    co_return;
  });
}

TEST(PlanReuse, RebindPerformsZeroSetupCommunication) {
  GlobalPattern pat = pattern::random_pattern(16, 21);
  Engine eng(Machine({.num_nodes = 4, .regions_per_node = 1,
                      .ranks_per_region = 4}),
             CostParams::lassen());
  std::vector<std::uint64_t> cold(pat.nranks, 0), warm(pat.nranks, 0);
  eng.run([&](Context& ctx) -> Task<> {
    const int r = ctx.rank();
    RankArgs a = pattern::rank_args(pat, r);
    DistGraph g = co_await dist_graph_create_adjacent(
        ctx, ctx.world(), a.sources, a.destinations, GraphAlgo::handshake);

    co_await ctx.engine().sync_reset(ctx);
    auto p1 = co_await neighbor_alltoallv_init(ctx, g, a.view(),
                                               Method::locality_dedup);
    cold[r] = ctx.engine().stats(r).total_msgs();

    co_await ctx.engine().sync_reset(ctx);
    const auto shared = p1->plan();
    auto p2 = co_await neighbor_alltoallv_init(
        ctx, g, a.view(), Method::locality_dedup, {.plan = shared.get()});
    warm[r] = ctx.engine().stats(r).total_msgs();
    EXPECT_EQ(p2->plan(), p1->plan());

    // The rebound collective still delivers correctly.
    a.fill(2);
    std::fill(a.recvbuf.begin(), a.recvbuf.end(), -1.0);
    co_await p2->start(ctx);
    co_await p2->wait(ctx);
    for (std::size_t k = 0; k < a.recvbuf.size(); ++k)
      EXPECT_DOUBLE_EQ(a.recvbuf[k], a.expected[k]) << "rank " << r;
    co_return;
  });
  std::uint64_t cold_total = 0, warm_total = 0;
  for (int r = 0; r < pat.nranks; ++r) {
    cold_total += cold[r];
    warm_total += warm[r];
  }
  EXPECT_GT(cold_total, 0u);   // plan construction communicates...
  EXPECT_EQ(warm_total, 0u);   // ...rebinding a cached plan never does
}

TEST(PlanReuse, MismatchedPatternRejected) {
  GlobalPattern pat = pattern::random_pattern(8, 3);
  Engine eng(Machine({.num_nodes = 2, .regions_per_node = 1,
                      .ranks_per_region = 4}),
             CostParams::lassen());
  EXPECT_THROW(
      eng.run([&](Context& ctx) -> Task<> {
        RankArgs a = pattern::rank_args(pat, ctx.rank());
        DistGraph g = co_await dist_graph_create_adjacent(
            ctx, ctx.world(), a.sources, a.destinations,
            GraphAlgo::handshake);
        auto p1 =
            co_await neighbor_alltoallv_init(ctx, g, a.view(),
                                             Method::locality);
        auto args = a.view();
        if (!args.sendcounts.empty()) --args.sendcounts[0];  // shrink segment
        const auto shared = p1->plan();
        co_await neighbor_alltoallv_init(ctx, g, args, Method::locality,
                                         {.plan = shared.get()});
      }),
      SimError);
}

TEST(PlanReuse, DifferentMachineShapeRejected) {
  // Same ranks, same adjacency, different region layout: the plan's peer
  // resolution is stale, and binding must say so instead of misrouting.
  GlobalPattern pat = pattern::random_pattern(16, 17);
  std::vector<std::shared_ptr<const LocalityPlan>> plans(pat.nranks);
  {
    Engine eng(Machine({.num_nodes = 4, .regions_per_node = 1,
                        .ranks_per_region = 4}),
               CostParams::lassen());
    eng.run([&](Context& ctx) -> Task<> {
      RankArgs a = pattern::rank_args(pat, ctx.rank());
      DistGraph g = co_await dist_graph_create_adjacent(
          ctx, ctx.world(), a.sources, a.destinations, GraphAlgo::handshake);
      auto p =
          co_await neighbor_alltoallv_init(ctx, g, a.view(), Method::locality);
      plans[ctx.rank()] = p->plan();
      co_return;
    });
  }
  Engine eng2(Machine({.num_nodes = 2, .regions_per_node = 1,
                       .ranks_per_region = 8}),
              CostParams::lassen());
  EXPECT_THROW(
      eng2.run([&](Context& ctx) -> Task<> {
        RankArgs a = pattern::rank_args(pat, ctx.rank());
        DistGraph g = co_await dist_graph_create_adjacent(
            ctx, ctx.world(), a.sources, a.destinations,
            GraphAlgo::handshake);
        const auto shared = plans[ctx.rank()];
        co_await neighbor_alltoallv_init(ctx, g, a.view(), Method::locality,
                                         {.plan = shared.get()});
      }),
      SimError);
}

TEST(PlanReuse, MethodMismatchRejected) {
  GlobalPattern pat = pattern::random_pattern(8, 3);
  Engine eng(Machine({.num_nodes = 2, .regions_per_node = 1,
                      .ranks_per_region = 4}),
             CostParams::lassen());
  EXPECT_THROW(
      eng.run([&](Context& ctx) -> Task<> {
        RankArgs a = pattern::rank_args(pat, ctx.rank());
        DistGraph g = co_await dist_graph_create_adjacent(
            ctx, ctx.world(), a.sources, a.destinations,
            GraphAlgo::handshake);
        auto p1 =
            co_await neighbor_alltoallv_init(ctx, g, a.view(),
                                             Method::locality);
        // A locality plan cannot serve the dedup method.
        const auto shared = p1->plan();
        co_await neighbor_alltoallv_init(ctx, g, a.view(),
                                         Method::locality_dedup,
                                         {.plan = shared.get()});
      }),
      SimError);
}
