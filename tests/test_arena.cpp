/// \file test_arena.cpp
/// \brief Unit tests for the util memory layer: refcounted bump-arena
/// chunk recycling and the pooled coroutine-frame allocator
/// (util/arena.hpp), plus the FlatMap the engine interns its
/// channel/counter tables with (util/flat_map.hpp).

#include <gtest/gtest.h>

#include <cstring>
#include <deque>
#include <thread>
#include <vector>

#include "util/arena.hpp"
#include "util/flat_map.hpp"

namespace {

TEST(Arena, BumpsWithinOneChunk) {
  util::Arena a(1024);
  auto a1 = a.allocate(100);
  auto a2 = a.allocate(100);
  ASSERT_NE(a1.data, nullptr);
  ASSERT_NE(a2.data, nullptr);
  EXPECT_EQ(a1.chunk, a2.chunk);
  // Second allocation bumps within the same chunk, 8-byte aligned.
  EXPECT_EQ(a2.data - a1.data, 104);
  EXPECT_EQ(a.stats().chunks, 1u);
  EXPECT_EQ(a.stats().allocs, 2u);
}

TEST(Arena, RecyclesFullyReleasedChunks) {
  util::Arena a(1024);
  auto a1 = a.allocate(600);
  auto a2 = a.allocate(600);  // 1200 > 1024: forces a second chunk
  EXPECT_NE(a1.chunk, a2.chunk);
  EXPECT_EQ(a.stats().chunks, 2u);
  util::Arena::release(a1.chunk);
  // The released chunk is reused instead of growing the arena.
  auto a3 = a.allocate(600);
  EXPECT_EQ(a3.chunk, a1.chunk);
  EXPECT_EQ(a3.data, a1.data);
  EXPECT_EQ(a.stats().chunks, 2u);
  EXPECT_EQ(a.stats().recycles, 1u);
}

TEST(Arena, LiveChunksAreNeverRecycled) {
  util::Arena a(256);
  auto p = a.allocate(200);
  std::memset(p.data, 0x5A, 200);
  std::vector<util::Arena::Alloc> held;
  for (int i = 0; i < 64; ++i) held.push_back(a.allocate(200));
  // Unreleased blocks stay intact while the arena grows around them.
  for (int i = 0; i < 200; ++i) EXPECT_EQ(p.data[i], std::byte{0x5A});
  EXPECT_EQ(a.stats().recycles, 0u);
}

TEST(Arena, OversizedPayloadSpillsIntoDedicatedChunk) {
  util::Arena a(256);
  auto small = a.allocate(64);
  auto big = a.allocate(10000);  // > chunk size: dedicated chunk
  ASSERT_NE(big.data, nullptr);
  EXPECT_NE(big.chunk, small.chunk);
  std::memset(big.data, 1, 10000);
  EXPECT_EQ(a.stats().chunks, 2u);
  EXPECT_GE(a.stats().capacity_bytes, 10000u + 256u);
  // Once released, the spill chunk recycles like any other.
  util::Arena::release(big.chunk);
  auto big2 = a.allocate(10000);
  EXPECT_EQ(big2.data, big.data);
  EXPECT_EQ(a.stats().chunks, 2u);
}

TEST(Arena, SteadySendReceivePipelineStopsGrowing) {
  // The engine's shape: every iteration allocates payloads and releases
  // the previous iteration's.  Chunk count must stabilize after warm-up.
  util::Arena a(1024);
  std::deque<util::Arena::Alloc> inflight;
  auto iteration = [&] {
    for (int m = 0; m < 7; ++m) inflight.push_back(a.allocate(100 + 40 * m));
    while (inflight.size() > 7) {
      util::Arena::release(inflight.front().chunk);
      inflight.pop_front();
    }
  };
  // Warm-up long enough for block placement to settle into its cycle
  // (recycled chunks restart their bump, so placement drifts for a few
  // rounds before repeating).
  for (int i = 0; i < 20; ++i) iteration();
  const auto chunks = a.stats().chunks;
  for (int i = 0; i < 200; ++i) iteration();
  EXPECT_EQ(a.stats().chunks, chunks) << "steady pipeline must not grow";
  EXPECT_GT(a.stats().recycles, 0u);
}

TEST(Arena, HardResetRewindsEverything) {
  util::Arena a(1024);
  auto p = a.allocate(600);
  a.allocate(600);
  EXPECT_FALSE(a.clean());
  a.reset();
  EXPECT_TRUE(a.clean());
  EXPECT_EQ(a.allocate(600).data, p.data);
  EXPECT_EQ(a.stats().chunks, 2u);
}

TEST(Arena, ReleaseFromAnotherThreadEnablesRecycling) {
  util::Arena a(256);
  auto p = a.allocate(200);
  std::thread t([&] { util::Arena::release(p.chunk); });
  t.join();
  auto q = a.allocate(200);  // 408 > 256 would need a chunk; recycled instead
  EXPECT_EQ(q.chunk, p.chunk);
  EXPECT_EQ(a.stats().chunks, 1u);
}

TEST(FramePool, ReusesFreedBlocks) {
  // Warm one block of an uncommon size, then cycle it: mallocs must not
  // advance after the warm-up.
  constexpr std::size_t kSize = 333;
  void* p = util::frame_alloc(kSize);
  util::frame_free(p, kSize);
  const auto mallocs = util::frame_pool_mallocs();
  const auto reuses = util::frame_pool_reuses();
  for (int i = 0; i < 100; ++i) {
    void* q = util::frame_alloc(kSize);
    EXPECT_EQ(q, p) << "same bucketed block must come back";
    util::frame_free(q, kSize);
  }
  EXPECT_EQ(util::frame_pool_mallocs(), mallocs);
  EXPECT_EQ(util::frame_pool_reuses(), reuses + 100);
}

TEST(FramePool, BlocksSurviveThreadExit) {
  // A block freed by a dying thread drains to the process-wide reservoir
  // and must be reusable from this thread without a new malloc.
  constexpr std::size_t kSize = 777;
  void* from_thread = nullptr;
  std::thread t([&] { from_thread = util::frame_alloc(kSize); });
  t.join();
  ASSERT_NE(from_thread, nullptr);
  std::thread t2([&] { util::frame_free(from_thread, kSize); });
  t2.join();
  const auto mallocs = util::frame_pool_mallocs();
  void* p = util::frame_alloc(kSize);
  EXPECT_EQ(util::frame_pool_mallocs(), mallocs)
      << "reservoir refill, not malloc";
  util::frame_free(p, kSize);
}

TEST(FramePool, OversizedFallsBackToPlainNew) {
  void* p = util::frame_alloc(1 << 20);
  ASSERT_NE(p, nullptr);
  std::memset(p, 0, 1 << 20);
  util::frame_free(p, 1 << 20);
}

TEST(FlatMap, InsertsSortedAndFinds) {
  util::FlatMap<int, int> m;
  for (int k : {5, 1, 9, 3, 7}) m[k] = k * 10;
  EXPECT_EQ(m.size(), 5u);
  int prev = -1;
  for (const auto& [k, v] : m) {
    EXPECT_GT(k, prev);  // iteration is sorted
    EXPECT_EQ(v, k * 10);
    prev = k;
  }
  EXPECT_EQ(*m.find(7), 70);
  EXPECT_EQ(m.find(8), nullptr);
  // operator[] default-inserts exactly once.
  EXPECT_EQ(m[8], 0);
  m[8]++;
  EXPECT_EQ(m[8], 1);
  EXPECT_EQ(m.size(), 6u);
}

}  // namespace
