/// \file test_link_contention.cpp
/// \brief Shared-link (fat-tree) contention model, pinned by closed forms.
///
/// With every other cost term zeroed, the store-and-forward link queues
/// have an exact analytical solution: K equal messages funneling through
/// one up/down link pair arrive at (K+1) * u, where u = bytes * taper /
/// link_rate is the per-link occupancy.  The tests assert that solution
/// bit-exactly (including the taper-2-vs-taper-1 ratio of exactly 2.0 —
/// power-of-two rate scaling is FP-exact), that traffic below a link's
/// LCA never touches it, and that the whole subsystem is inert while
/// `CostParams::use_link_cap` is off: every registry pattern's clocks on
/// a tree-shaped machine match the flat machine bit for bit.

#include <gtest/gtest.h>

#include <span>
#include <vector>

#include "harness/measure.hpp"
#include "patterns/pattern.hpp"
#include "simmpi/engine.hpp"

using namespace simmpi;

namespace {

/// All host and endpoint costs zeroed: the shared links are the only
/// resource that advances any clock.
CostParams network_only(double link_rate, double link_msg_bytes = 0.0) {
  CostParams p = CostParams::flat(0.0, 0.0);
  p.send_overhead = 0.0;
  p.recv_overhead = 0.0;
  p.queue_search = 0.0;
  p.use_injection_cap = false;
  p.use_link_cap = true;
  p.link_rate = link_rate;
  p.link_msg_bytes = link_msg_bytes;
  return p;
}

/// 2-node machine whose per-node leaf switches (radix 1) meet at one root:
/// exactly one shared up/down link tier, tapered.
Machine two_node_tree(double taper) {
  return Machine({.num_nodes = 2, .regions_per_node = 1,
                  .ranks_per_region = 4,
                  .switch_levels = {{.radix = 1, .taper = taper},
                                    {.radix = 2, .taper = 1.0}}});
}

struct IncastResult {
  double sink_clock = 0.0;         ///< last arrival at the receiving rank
  double total_link_seconds = 0.0; ///< tier-0 occupancy summed over ranks
};

/// Ranks 0..3 (node 0) each send one `int` to rank 4 (node 1); all other
/// costs are zero, so the sink's clock is exactly the last link arrival.
IncastResult run_incast(double taper, double link_rate) {
  Engine eng(two_node_tree(taper), network_only(link_rate));
  eng.run([&](Context& ctx) -> Task<> {
    const int r = ctx.rank();
    if (r < 4) {
      int v = r;
      auto s = Request::send(
          ctx.world(), std::as_bytes(std::span<const int>(&v, 1)), 4, 0);
      s.start(ctx);
      co_await ctx.wait(s);
    } else if (r == 4) {
      for (int src = 0; src < 4; ++src) {
        int v = -1;
        auto rq = Request::recv(
            ctx.world(), std::as_writable_bytes(std::span<int>(&v, 1)), src,
            0);
        rq.start(ctx);
        co_await ctx.wait(rq);
        EXPECT_EQ(v, src);
      }
    }
  });
  return {eng.clock(4), eng.total_link_seconds(0)};
}

}  // namespace

// With u = bytes * taper / link_rate, message k (delivered in rank order)
// leaves the up-link at (k+1)u and the down-link at (k+2)u; the last of
// K = 4 messages therefore arrives at (K+1)u.  Integer-valued u makes the
// arithmetic FP-exact, so the comparison is ==, not near.
TEST(LinkContention, IncastMatchesClosedForm) {
  const double u = 4.0;  // 4 bytes at rate 1, taper 1
  const IncastResult r = run_incast(1.0, 1.0);
  EXPECT_EQ(r.sink_clock, 5.0 * u);
  // Each message occupies the up-link and the down-link for u apiece.
  EXPECT_EQ(r.total_link_seconds, 8.0 * u);
}

// A 2:1 taper halves the link rate, so the same incast completes exactly
// 2x slower — bit-exactly, because dividing the rate by a power of two
// scales every occupancy without rounding.
TEST(LinkContention, TaperTwoIsExactlyTwiceSlower) {
  const IncastResult full = run_incast(1.0, 1.0);
  const IncastResult tapered = run_incast(2.0, 1.0);
  EXPECT_EQ(tapered.sink_clock, 2.0 * full.sink_clock);
  EXPECT_EQ(tapered.total_link_seconds, 2.0 * full.total_link_seconds);
}

// Framing: link_msg_bytes adds to every message's occupancy, so the
// closed form shifts by the same recurrence with u' = (bytes + framing) *
// taper / rate.  This is the term that penalizes many-small-messages.
TEST(LinkContention, FramingChargesPerMessage) {
  Engine eng(two_node_tree(1.0), network_only(1.0, /*link_msg_bytes=*/12.0));
  eng.run([&](Context& ctx) -> Task<> {
    if (ctx.rank() == 0) {
      int v = 7;
      auto s = Request::send(
          ctx.world(), std::as_bytes(std::span<const int>(&v, 1)), 4, 0);
      s.start(ctx);
      co_await ctx.wait(s);
    } else if (ctx.rank() == 4) {
      int v = 0;
      auto rq = Request::recv(
          ctx.world(), std::as_writable_bytes(std::span<int>(&v, 1)), 0, 0);
      rq.start(ctx);
      co_await ctx.wait(rq);
    }
  });
  // One message, (4 + 12) bytes effective, up + down: 2 * 16 seconds.
  EXPECT_EQ(eng.clock(4), 32.0);
}

// Traffic that never reaches a link tier's LCA must never be charged to
// it: intra-node messages are not network traffic at all, and messages
// between nodes under the same leaf switch meet at the leaf (the
// node<->leaf links are the NIC, not a shared tier).
TEST(LinkContention, IntraNodeAndIntraLeafNeverTouchSpineLinks) {
  // 4 nodes, 2 per leaf switch, one root: nodes {0,1} and {2,3} each
  // share a leaf; only pairs crossing the leaf boundary use tier 0.
  const Machine m({.num_nodes = 4, .regions_per_node = 1,
                   .ranks_per_region = 2,
                   .switch_levels = {{.radix = 2, .taper = 2.0},
                                     {.radix = 2, .taper = 1.0}}});
  ASSERT_EQ(m.num_link_tiers(), 1);
  auto run_pair = [&](int dst) {
    Engine eng(m, network_only(1.0));
    eng.run([&](Context& ctx) -> Task<> {
      if (ctx.rank() == 0) {
        int v = 1;
        auto s = Request::send(
            ctx.world(), std::as_bytes(std::span<const int>(&v, 1)), dst, 0);
        s.start(ctx);
        co_await ctx.wait(s);
      } else if (ctx.rank() == dst) {
        int v = 0;
        auto rq = Request::recv(
            ctx.world(), std::as_writable_bytes(std::span<int>(&v, 1)), 0, 0);
        rq.start(ctx);
        co_await ctx.wait(rq);
      }
    });
    return eng.total_link_seconds(0);
  };
  EXPECT_EQ(run_pair(1), 0.0);  // same node (ranks 0,1 on node 0)
  EXPECT_EQ(run_pair(2), 0.0);  // node 0 -> node 1: same leaf switch
  EXPECT_GT(run_pair(4), 0.0);  // node 0 -> node 2: crosses the spine
}

// Deeper tree: a pair's path charges exactly the tiers below its LCA —
// tier 0 only for a leaf-boundary crossing, both tiers for a pair that
// meets at the root.
TEST(LinkContention, ChargesExactlyTheTiersBelowTheLca) {
  const Machine m({.num_nodes = 8, .regions_per_node = 1,
                   .ranks_per_region = 1,
                   .switch_levels = {{.radix = 2, .taper = 2.0},
                                     {.radix = 2, .taper = 2.0},
                                     {.radix = 2, .taper = 1.0}}});
  ASSERT_EQ(m.num_link_tiers(), 2);
  auto run_pair = [&](int dst) {
    Engine eng(m, network_only(1.0));
    eng.run([&](Context& ctx) -> Task<> {
      if (ctx.rank() == 0) {
        int v = 1;
        auto s = Request::send(
            ctx.world(), std::as_bytes(std::span<const int>(&v, 1)), dst, 0);
        s.start(ctx);
        co_await ctx.wait(s);
      } else if (ctx.rank() == dst) {
        int v = 0;
        auto rq = Request::recv(
            ctx.world(), std::as_writable_bytes(std::span<int>(&v, 1)), 0, 0);
        rq.start(ctx);
        co_await ctx.wait(rq);
      }
    });
    return std::pair{eng.total_link_seconds(0), eng.total_link_seconds(1)};
  };
  const auto leaf_cross = run_pair(2);   // LCA level 1
  EXPECT_GT(leaf_cross.first, 0.0);
  EXPECT_EQ(leaf_cross.second, 0.0);
  const auto root_cross = run_pair(4);   // LCA level 2
  EXPECT_GT(root_cross.first, 0.0);
  EXPECT_GT(root_cross.second, 0.0);
}

// Kill switch: with use_link_cap off, a tree-shaped machine measures
// bit-identically to the flat machine on every registry pattern — the
// hierarchy description alone must change nothing (that is what keeps
// every pre-existing sweep byte-stable).
TEST(LinkContention, CapOffReproducesFlatClocksOnEveryPattern) {
  const Machine flat({.num_nodes = 4, .regions_per_node = 1,
                      .ranks_per_region = 4, .switch_levels = {}});
  for (const auto& spec : patterns::registry()) {
    const patterns::Workload wl =
        spec.make(flat, patterns::PatternParams{.values = 6, .seed = 9});
    for (mpix::Method method : {mpix::Method::standard,
                                mpix::Method::locality}) {
      harness::MeasureConfig base;
      base.ranks_per_region = 4;
      const harness::PatternMeasurement ref =
          harness::measure_pattern(wl, method, base);

      harness::MeasureConfig tree = base;
      tree.switch_levels = {{.radix = 2, .taper = 4.0},
                            {.radix = 2, .taper = 1.0}};
      ASSERT_FALSE(tree.cost.use_link_cap);
      const harness::PatternMeasurement got =
          harness::measure_pattern(wl, method, tree);

      EXPECT_EQ(ref.init_seconds, got.init_seconds) << spec.name;
      EXPECT_EQ(ref.blocking_seconds, got.blocking_seconds) << spec.name;
      EXPECT_EQ(ref.overlapped_seconds, got.overlapped_seconds) << spec.name;
      EXPECT_EQ(ref.overlap_seconds, got.overlap_seconds) << spec.name;
      EXPECT_EQ(ref.sum_local_msgs, got.sum_local_msgs) << spec.name;
      EXPECT_EQ(ref.sum_global_msgs, got.sum_global_msgs) << spec.name;
      EXPECT_EQ(ref.sum_local_values, got.sum_local_values) << spec.name;
      EXPECT_EQ(ref.sum_global_values, got.sum_global_values) << spec.name;
      // The cap being off means no link is ever *charged* ...
      for (double v : got.link_seconds) EXPECT_EQ(v, 0.0) << spec.name;
      for (double v : got.max_link_backlog_seconds)
        EXPECT_EQ(v, 0.0) << spec.name;
      // ... though crossings are still *counted* (a plan property).
      long crossings = 0;
      for (long v : got.sum_link_msgs) crossings += v;
      if (ref.sum_global_msgs > 0 && method == mpix::Method::standard) {
        EXPECT_GT(crossings, 0) << spec.name;
      }
    }
  }
}
