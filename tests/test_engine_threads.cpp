/// \file test_engine_threads.cpp
/// \brief The determinism contract of the phase-parallel engine: any
/// `Engine::Options::threads` produces the bit-identical simulated schedule
/// — virtual clocks, tier statistics, neighbor statistics and solve
/// iterates (see docs/ARCHITECTURE.md, "Determinism contract").

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "harness/dist_solve.hpp"
#include "harness/measure.hpp"
#include "simmpi/coll.hpp"
#include "pattern_util.hpp"
#include "simmpi/engine.hpp"
#include "sparse/stencil.hpp"

using namespace simmpi;

namespace {

/// A deliberately irregular stress program: shifting p2p ring with mixed
/// payload sizes (crossing every locality tier and exercising the NIC
/// queue), interleaved collectives, a mid-run sync_reset, and self-sends.
Task<> stress_program(Context& ctx) {
  const int p = ctx.world().size();
  const int r = ctx.rank();
  for (int round = 0; round < 4; ++round) {
    const int shift = 1 + (round * 5) % (p - 1);
    const int dst = (r + shift) % p;
    const int src = (r - shift + p) % p;
    // Payload size varies per (sender, round): short/eager/rendezvous mix.
    auto size_of = [&](int sender) {
      return static_cast<std::size_t>(1 + (sender * 37 + round * 101) % 3000);
    };
    std::vector<double> out(size_of(r), r + 0.25 * round);
    std::vector<double> in(size_of(src));
    auto s = Request::send(
        ctx.world(),
        std::as_bytes(std::span<const double>(out.data(), out.size())), dst,
        round);
    auto rr = Request::recv(
        ctx.world(),
        std::as_writable_bytes(std::span<double>(in.data(), in.size())), src,
        round);
    s.start(ctx);
    rr.start(ctx);
    co_await ctx.wait(s);
    co_await ctx.wait(rr);
    EXPECT_DOUBLE_EQ(in[0], src + 0.25 * round);

    ctx.compute(1e-7 * ((r + round) % 5));
    const long sum = co_await coll::allreduce<long>(
        ctx, ctx.world(), static_cast<long>(r + round),
        [](long a, long b) { return a + b; });
    EXPECT_EQ(sum, static_cast<long>(p) * (p - 1) / 2 +
                       static_cast<long>(p) * round);
    if (round == 1) co_await ctx.engine().sync_reset(ctx);
    if (round == 2) {
      // Self-send (Locality::self path).
      double v = 3.5 + r, got = 0.0;
      auto ss = Request::send(
          ctx.world(), std::as_bytes(std::span<const double>(&v, 1)), r, 99);
      auto sr = Request::recv(
          ctx.world(), std::as_writable_bytes(std::span<double>(&got, 1)), r,
          99);
      ss.start(ctx);
      sr.start(ctx);
      co_await ctx.wait(ss);
      co_await ctx.wait(sr);
      EXPECT_DOUBLE_EQ(got, v);
    }
  }
  co_await coll::barrier(ctx, ctx.world());
}

struct Trace {
  std::vector<double> clocks;
  std::vector<Engine::RankStats> stats;
  double max_clock = 0.0;
};

Trace run_stress(int threads) {
  Engine eng(Machine({.num_nodes = 4, .regions_per_node = 2,
                      .ranks_per_region = 4}),
             CostParams::lassen(), Engine::Options{.threads = threads});
  EXPECT_EQ(eng.threads(), threads);
  eng.run(stress_program);
  Trace t;
  for (int r = 0; r < eng.machine().num_ranks(); ++r) {
    t.clocks.push_back(eng.clock(r));
    t.stats.push_back(eng.stats(r));
  }
  t.max_clock = eng.max_clock();
  return t;
}

}  // namespace

TEST(EngineThreads, StressScheduleBitIdenticalAcrossWidths) {
  const Trace base = run_stress(1);
  for (int threads : {2, 4, 7}) {
    const Trace t = run_stress(threads);
    // Bit-identical, not just approximately equal: the virtual schedule
    // must not depend on the worker count.
    ASSERT_EQ(t.clocks.size(), base.clocks.size());
    for (std::size_t r = 0; r < base.clocks.size(); ++r) {
      EXPECT_EQ(std::memcmp(&t.clocks[r], &base.clocks[r], sizeof(double)), 0)
          << "clock of rank " << r << " diverged at threads=" << threads;
      EXPECT_EQ(t.stats[r], base.stats[r])
          << "stats of rank " << r << " diverged at threads=" << threads;
    }
    EXPECT_EQ(t.max_clock, base.max_clock);
  }
}

TEST(EngineThreads, NeighborStatsBitIdenticalAcrossWidths) {
  // Per-rank sender-side NeighborStats of every mpix method on a random
  // irregular pattern, engines of width 1 vs 4.
  const auto pat = pattern::random_pattern(24, /*seed=*/7);
  auto run_once = [&](mpix::Method method, int threads) {
    Engine eng(Machine({.num_nodes = 3, .regions_per_node = 1,
                        .ranks_per_region = 8}),
               CostParams::lassen(), Engine::Options{.threads = threads});
    struct Out {
      std::vector<mpix::NeighborStats> stats;
      std::vector<std::vector<double>> recv;
      std::vector<double> clocks;
    } out;
    out.stats.resize(pat.nranks);
    out.recv.resize(pat.nranks);
    eng.run([&](Context& ctx) -> Task<> {
      const int r = ctx.rank();
      pattern::RankArgs a = pattern::rank_args(pat, r);
      simmpi::DistGraph g = co_await simmpi::dist_graph_create_adjacent(
          ctx, ctx.world(), a.sources, a.destinations,
          simmpi::GraphAlgo::handshake);
      auto coll =
          co_await mpix::neighbor_alltoallv_init(ctx, g, a.view(), method);
      out.stats[r] = coll->stats();
      a.fill(0);
      co_await coll->start(ctx);
      co_await coll->wait(ctx);
      out.recv[r] = a.recvbuf;
      co_return;
    });
    for (int r = 0; r < pat.nranks; ++r) out.clocks.push_back(eng.clock(r));
    return out;
  };
  for (mpix::Method method : mpix::kAllMethods) {
    const auto base = run_once(method, 1);
    const auto wide = run_once(method, 4);
    for (int r = 0; r < pat.nranks; ++r) {
      EXPECT_EQ(base.stats[r].local_msgs, wide.stats[r].local_msgs);
      EXPECT_EQ(base.stats[r].global_msgs, wide.stats[r].global_msgs);
      EXPECT_EQ(base.stats[r].local_values, wide.stats[r].local_values);
      EXPECT_EQ(base.stats[r].global_values, wide.stats[r].global_values);
      EXPECT_EQ(base.stats[r].max_global_msg_values,
                wide.stats[r].max_global_msg_values);
      EXPECT_EQ(base.recv[r], wide.recv[r]);
      EXPECT_EQ(std::memcmp(&base.clocks[r], &wide.clocks[r], sizeof(double)),
                0)
          << "rank " << r << " clock diverged";
    }
  }
}

TEST(EngineThreads, MeasurementsBitIdenticalAcrossWidths) {
  // The full measurement pipeline (hierarchy levels, all four protocols)
  // through engines of different widths.
  const auto& dh = harness::paper_dist_hierarchy(2048, 16);
  for (harness::Protocol proto : harness::kAllProtocols) {
    harness::MeasureConfig c1;
    c1.threads = 1;
    harness::MeasureConfig c4 = c1;
    c4.threads = 4;
    const auto m1 = harness::measure_protocol(dh, proto, c1);
    const auto m4 = harness::measure_protocol(dh, proto, c4);
    ASSERT_EQ(m1.size(), m4.size());
    for (std::size_t l = 0; l < m1.size(); ++l) {
      EXPECT_EQ(m1[l].init_seconds, m4[l].init_seconds);
      EXPECT_EQ(m1[l].start_wait_seconds, m4[l].start_wait_seconds);
      EXPECT_EQ(m1[l].max_local_msgs, m4[l].max_local_msgs);
      EXPECT_EQ(m1[l].max_global_msgs, m4[l].max_global_msgs);
      EXPECT_EQ(m1[l].max_global_msg_values, m4[l].max_global_msg_values);
      EXPECT_EQ(m1[l].max_local_values, m4[l].max_local_values);
      EXPECT_EQ(m1[l].max_global_values, m4[l].max_global_values);
    }
  }
}

TEST(EngineThreads, SolveIteratesBitIdenticalAcrossWidths) {
  const auto& dh = harness::paper_dist_hierarchy(2048, 16);
  std::vector<double> b(2048);
  for (std::size_t i = 0; i < b.size(); ++i)
    b[i] = 1.0 + 0.001 * static_cast<double>(i % 17);

  harness::MeasureConfig c1;
  c1.threads = 1;
  harness::MeasureConfig c4 = c1;
  c4.threads = 4;
  const auto r1 = harness::run_distributed_amg(
      dh, harness::Protocol::neighbor_full, b, 1e-8, 40, c1);
  const auto r4 = harness::run_distributed_amg(
      dh, harness::Protocol::neighbor_full, b, 1e-8, 40, c4);

  EXPECT_EQ(r1.converged, r4.converged);
  EXPECT_EQ(r1.solve_seconds, r4.solve_seconds);
  ASSERT_EQ(r1.residual_history.size(), r4.residual_history.size());
  for (std::size_t i = 0; i < r1.residual_history.size(); ++i)
    EXPECT_EQ(std::memcmp(&r1.residual_history[i], &r4.residual_history[i],
                          sizeof(double)),
              0);
  ASSERT_EQ(r1.solution.size(), r4.solution.size());
  EXPECT_EQ(std::memcmp(r1.solution.data(), r4.solution.data(),
                        r1.solution.size() * sizeof(double)),
            0);
}

TEST(EngineThreads, AutoWidthHonorsEnvironment) {
  ::setenv("COLLOM_SIM_THREADS", "3", 1);
  Engine eng(Machine({.num_nodes = 1, .regions_per_node = 1,
                      .ranks_per_region = 4}),
             CostParams::lassen());
  ::unsetenv("COLLOM_SIM_THREADS");
  EXPECT_EQ(eng.threads(), 3);
}
