/// \file test_neighbor_stress.cpp
/// \brief Heavier property and failure-injection tests for the persistent
/// neighbor collectives: larger machines, adversarial patterns, persistent
/// reuse, protocol-state misuse, and determinism.

#include <gtest/gtest.h>

#include "pattern_util.hpp"
#include "simmpi/dist_graph.hpp"

using namespace simmpi;
using namespace mpix;
using pattern::GlobalPattern;
using pattern::RankArgs;

namespace {

Engine engine_of(int nodes, int rpn) {
  return Engine(Machine({.num_nodes = nodes, .regions_per_node = 1,
                         .ranks_per_region = rpn}),
                CostParams::lassen());
}

/// All-to-all pattern: every rank sends `k` values to every other rank,
/// drawn from a pool of `pool` distinct values.
GlobalPattern dense_pattern(int nranks, int k, int pool) {
  GlobalPattern p;
  p.nranks = nranks;
  p.sends.resize(nranks);
  for (int s = 0; s < nranks; ++s)
    for (int d = 0; d < nranks; ++d) {
      if (d == s) continue;
      for (int i = 0; i < k; ++i)
        p.sends[s][d].push_back(static_cast<gidx>(s) * 100 +
                                (s + d + i) % pool);
    }
  return p;
}

/// Fan-in: every rank sends its values to the ranks of region 0 only.
GlobalPattern fanin_pattern(int nranks, int rpn) {
  GlobalPattern p;
  p.nranks = nranks;
  p.sends.resize(nranks);
  for (int s = rpn; s < nranks; ++s)
    for (int d = 0; d < rpn; ++d)
      p.sends[s][d] = {static_cast<gidx>(s) * 100,
                       static_cast<gidx>(s) * 100 + 1};
  return p;
}

/// Run one method over several iterations and verify payloads (`which`
/// indexes mpix::kAllMethods).
void verify_protocol(Engine& eng, const GlobalPattern& pat, int which,
                     bool lpt = true) {
  eng.run([&](Context& ctx) -> Task<> {
    RankArgs a = pattern::rank_args(pat, ctx.rank());
    DistGraph g = co_await dist_graph_create_adjacent(
        ctx, ctx.world(), a.sources, a.destinations, GraphAlgo::handshake);
    std::unique_ptr<NeighborAlltoallv> proto = co_await neighbor_alltoallv_init(
        ctx, g, a.view(), kAllMethods[which], {.lpt_balance = lpt});
    pattern::verify_stats(
        proto->stats(),
        which == 0 ? static_cast<long>(a.sendbuf.size()) : -1);
    for (int it = 0; it < 4; ++it) {
      a.fill(it);
      std::fill(a.recvbuf.begin(), a.recvbuf.end(), -7.0);
      co_await proto->start(ctx);
      co_await proto->wait(ctx);
      for (std::size_t k = 0; k < a.recvbuf.size(); ++k)
        EXPECT_DOUBLE_EQ(a.recvbuf[k], a.expected[k])
            << "proto " << which << " rank " << ctx.rank() << " it " << it;
    }
    co_return;
  });
}

}  // namespace

class DensePattern : public ::testing::TestWithParam<std::tuple<int, int>> {};
INSTANTIATE_TEST_SUITE_P(Shapes, DensePattern,
                         ::testing::Values(std::make_tuple(4, 8),
                                           std::make_tuple(8, 4),
                                           std::make_tuple(8, 16),
                                           std::make_tuple(16, 8)));

TEST_P(DensePattern, AllProtocolsSurviveAllToAllTraffic) {
  const auto [nodes, rpn] = GetParam();
  GlobalPattern pat = dense_pattern(nodes * rpn, 2, 3);
  for (int which : {0, 1, 2}) {
    Engine eng = engine_of(nodes, rpn);
    verify_protocol(eng, pat, which);
  }
}

TEST(NeighborStress, FanInPatternConcentratesOnOneRegion) {
  const int nodes = 8, rpn = 8;
  GlobalPattern pat = fanin_pattern(nodes * rpn, rpn);
  for (int which : {0, 1, 2}) {
    Engine eng = engine_of(nodes, rpn);
    verify_protocol(eng, pat, which);
  }
}

TEST(NeighborStress, RoundRobinLeadersDeliverIdenticalPayloads) {
  // Correctness must not depend on the load-balancing strategy.
  GlobalPattern pat = pattern::random_pattern(32, 23);
  Engine eng1 = engine_of(4, 8);
  verify_protocol(eng1, pat, 1, /*lpt=*/false);
  Engine eng2 = engine_of(4, 8);
  verify_protocol(eng2, pat, 2, /*lpt=*/false);
}

TEST(NeighborStress, TwoCollectivesInterleavedOnOneGraph) {
  // Two independent persistent collectives on the same topology must not
  // cross channels even when their start/wait windows overlap.
  GlobalPattern pat = pattern::random_pattern(16, 31);
  Engine eng = engine_of(4, 4);
  eng.run([&](Context& ctx) -> Task<> {
    RankArgs a = pattern::rank_args(pat, ctx.rank());
    RankArgs b = pattern::rank_args(pat, ctx.rank());
    DistGraph g = co_await dist_graph_create_adjacent(
        ctx, ctx.world(), a.sources, a.destinations, GraphAlgo::handshake);
    auto p1 =
        co_await neighbor_alltoallv_init(ctx, g, a.view(), Method::locality);
    auto p2 = co_await neighbor_alltoallv_init(ctx, g, b.view(),
                                               Method::locality_dedup);
    a.fill(1);
    b.fill(2);
    co_await p1->start(ctx);
    co_await p2->start(ctx);  // overlapping windows
    co_await p2->wait(ctx);
    co_await p1->wait(ctx);
    for (std::size_t k = 0; k < a.recvbuf.size(); ++k) {
      EXPECT_DOUBLE_EQ(a.recvbuf[k], a.expected[k]);
      EXPECT_DOUBLE_EQ(b.recvbuf[k], b.expected[k]);
    }
    co_return;
  });
}

TEST(NeighborStress, WaitWithoutStartThrows) {
  GlobalPattern pat = pattern::random_pattern(8, 3);
  Engine eng = engine_of(2, 4);
  EXPECT_THROW(
      eng.run([&](Context& ctx) -> Task<> {
        RankArgs a = pattern::rank_args(pat, ctx.rank());
        DistGraph g = co_await dist_graph_create_adjacent(
            ctx, ctx.world(), a.sources, a.destinations,
            GraphAlgo::handshake);
        auto proto = co_await neighbor_alltoallv_init(ctx, g, a.view(),
                                                      Method::standard);
        co_await proto->wait(ctx);  // never started
      }),
      SimError);
}

TEST(NeighborStress, DoubleStartThrows) {
  GlobalPattern pat;
  pat.nranks = 8;
  pat.sends.resize(8);
  pat.sends[0][4] = {1, 2};  // ensure rank 0 has an active send request
  Engine eng = engine_of(2, 4);
  EXPECT_THROW(
      eng.run([&](Context& ctx) -> Task<> {
        RankArgs a = pattern::rank_args(pat, ctx.rank());
        DistGraph g = co_await dist_graph_create_adjacent(
            ctx, ctx.world(), a.sources, a.destinations,
            GraphAlgo::handshake);
        auto proto = co_await neighbor_alltoallv_init(ctx, g, a.view(),
                                                      Method::standard);
        co_await proto->start(ctx);
        co_await proto->start(ctx);  // start while active
        co_await proto->wait(ctx);
      }),
      SimError);
}

TEST(NeighborStress, SimulatedTimesAreDeterministic) {
  auto run_once = [] {
    GlobalPattern pat = pattern::random_pattern(32, 5);
    Engine eng = engine_of(4, 8);
    std::vector<double> clocks;
    eng.run([&](Context& ctx) -> Task<> {
      RankArgs a = pattern::rank_args(pat, ctx.rank());
      DistGraph g = co_await dist_graph_create_adjacent(
          ctx, ctx.world(), a.sources, a.destinations, GraphAlgo::handshake);
      auto proto = co_await neighbor_alltoallv_init(ctx, g, a.view(),
                                                    Method::locality_dedup);
      a.fill(0);
      co_await proto->start(ctx);
      co_await proto->wait(ctx);
      co_return;
    });
    for (int r = 0; r < 32; ++r) clocks.push_back(eng.clock(r));
    return clocks;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(NeighborStress, StatsAreStableAcrossIterations) {
  // Persistent semantics: message statistics are fixed at init; repeated
  // start/wait must not change them.
  GlobalPattern pat = pattern::random_pattern(16, 9);
  Engine eng = engine_of(4, 4);
  eng.run([&](Context& ctx) -> Task<> {
    RankArgs a = pattern::rank_args(pat, ctx.rank());
    DistGraph g = co_await dist_graph_create_adjacent(
        ctx, ctx.world(), a.sources, a.destinations, GraphAlgo::handshake);
    auto proto = co_await neighbor_alltoallv_init(ctx, g, a.view(),
                                                  Method::locality_dedup);
    const NeighborStats before = proto->stats();
    for (int it = 0; it < 3; ++it) {
      a.fill(it);
      co_await proto->start(ctx);
      co_await proto->wait(ctx);
    }
    const NeighborStats after = proto->stats();
    EXPECT_EQ(before.local_msgs, after.local_msgs);
    EXPECT_EQ(before.global_msgs, after.global_msgs);
    EXPECT_EQ(before.local_values, after.local_values);
    EXPECT_EQ(before.global_values, after.global_values);
    co_return;
  });
}

TEST(NeighborStress, SingleValueBroadcastLikePattern) {
  // One rank fans a single value out to every rank of every other region:
  // dedup should reduce each region pair's payload to exactly one value.
  const int nodes = 4, rpn = 4;
  GlobalPattern pat;
  pat.nranks = nodes * rpn;
  pat.sends.resize(pat.nranks);
  for (int d = rpn; d < pat.nranks; ++d) pat.sends[0][d] = {42};
  Engine eng = engine_of(nodes, rpn);
  std::vector<NeighborStats> stats(pat.nranks);
  eng.run([&](Context& ctx) -> Task<> {
    RankArgs a = pattern::rank_args(pat, ctx.rank());
    DistGraph g = co_await dist_graph_create_adjacent(
        ctx, ctx.world(), a.sources, a.destinations, GraphAlgo::handshake);
    auto proto = co_await neighbor_alltoallv_init(ctx, g, a.view(),
                                                  Method::locality_dedup);
    a.fill(3);
    co_await proto->start(ctx);
    co_await proto->wait(ctx);
    for (std::size_t k = 0; k < a.recvbuf.size(); ++k)
      EXPECT_DOUBLE_EQ(a.recvbuf[k], a.expected[k]);
    stats[ctx.rank()] = proto->stats();
    co_return;
  });
  long global_values = 0;
  for (const auto& s : stats) global_values += s.global_values;
  EXPECT_EQ(global_values, nodes - 1);  // one value per destination region
}
