/// \file test_stencil.cpp
/// \brief Problem generators: stencil structure and coefficient identities.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <random>

#include "sparse/stencil.hpp"

using namespace sparse;

TEST(Stencil, Laplace5ptInteriorRow) {
  Csr a = laplacian_5pt(5, 5);
  const int c = grid_index(5, 2, 2);
  EXPECT_DOUBLE_EQ(a.at(c, c), 4.0);
  EXPECT_DOUBLE_EQ(a.at(c, grid_index(5, 1, 2)), -1.0);
  EXPECT_DOUBLE_EQ(a.at(c, grid_index(5, 3, 2)), -1.0);
  EXPECT_DOUBLE_EQ(a.at(c, grid_index(5, 2, 1)), -1.0);
  EXPECT_DOUBLE_EQ(a.at(c, grid_index(5, 2, 3)), -1.0);
  EXPECT_EQ(a.row_cols(c).size(), 5u);
}

TEST(Stencil, Laplace5ptCornerHasThreeEntries) {
  Csr a = laplacian_5pt(4, 4);
  EXPECT_EQ(a.row_cols(grid_index(4, 0, 0)).size(), 3u);
}

TEST(Stencil, Laplace5ptSymmetric) {
  Csr a = laplacian_5pt(6, 4);
  EXPECT_EQ(a.transpose(), a);
}

TEST(Stencil, Laplace9ptInteriorRowSumZero) {
  Csr a = laplacian_9pt(7, 7);
  const int c = grid_index(7, 3, 3);
  double sum = 0;
  for (double v : a.row_vals(c)) sum += v;
  EXPECT_NEAR(sum, 0.0, 1e-14);
  EXPECT_EQ(a.row_cols(c).size(), 9u);
}

TEST(Stencil, Laplace27ptStructure) {
  Csr a = laplacian_27pt(4, 4, 4);
  EXPECT_EQ(a.rows(), 64);
  // interior point has 27 entries
  const int c = (1 * 4 + 1) * 4 + 1;
  EXPECT_EQ(a.row_cols(c).size(), 27u);
  EXPECT_DOUBLE_EQ(a.at(c, c), 26.0);
  EXPECT_EQ(a.transpose(), a);
}

TEST(Stencil, Rotated7ptPaperCoefficients) {
  // theta = 45deg, eps = 0.001: cx = cy = 0.5005, cxy = 0.999.
  Csr a = paper_problem(8, 8);
  const int nx = 8;
  const int c = grid_index(nx, 4, 4);
  EXPECT_EQ(a.row_cols(c).size(), 7u);
  EXPECT_NEAR(a.at(c, c), 2 * 0.5005 + 2 * 0.5005 - 0.999, 1e-12);
  EXPECT_NEAR(a.at(c, grid_index(nx, 5, 4)), -0.5005 + 0.999 / 2, 1e-12);
  EXPECT_NEAR(a.at(c, grid_index(nx, 4, 5)), -0.5005 + 0.999 / 2, 1e-12);
  // strong couplings on the NE/SW diagonal
  EXPECT_NEAR(a.at(c, grid_index(nx, 5, 5)), -0.4995, 1e-12);
  EXPECT_NEAR(a.at(c, grid_index(nx, 3, 3)), -0.4995, 1e-12);
  // no coupling on the NW/SE diagonal (7-point, not 9-point)
  EXPECT_DOUBLE_EQ(a.at(c, grid_index(nx, 3, 5)), 0.0);
  EXPECT_DOUBLE_EQ(a.at(c, grid_index(nx, 5, 3)), 0.0);
}

TEST(Stencil, Rotated7ptInteriorRowSumZero) {
  Csr a = paper_problem(10, 10);
  const int c = grid_index(10, 5, 5);
  double sum = 0;
  for (double v : a.row_vals(c)) sum += v;
  EXPECT_NEAR(sum, 0.0, 1e-12);
}

TEST(Stencil, Rotated7ptSymmetric) {
  Csr a = rotated_aniso_7pt(9, 6, 0.7, 0.01);
  EXPECT_EQ(a.transpose(), a);
}

TEST(Stencil, Rotated7ptZeroAngleIsAxisAnisotropy) {
  // theta = 0: cxy = 0, stencil degenerates to a 5-point anisotropic one.
  Csr a = rotated_aniso_7pt(8, 8, 0.0, 0.1);
  const int c = grid_index(8, 4, 4);
  EXPECT_EQ(a.row_cols(c).size(), 5u);
  EXPECT_NEAR(a.at(c, grid_index(8, 5, 4)), -1.0, 1e-12);
  EXPECT_NEAR(a.at(c, grid_index(8, 4, 5)), -0.1, 1e-12);
}

TEST(Stencil, Rotated7ptPositiveDefiniteSmall) {
  // x^T A x > 0 for a few random vectors (A is SPD with Dirichlet BCs).
  Csr a = paper_problem(6, 6);
  std::mt19937_64 rng(3);
  std::uniform_real_distribution<double> d(-1, 1);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<double> x(a.rows());
    for (auto& v : x) v = d(rng);
    std::vector<double> ax(a.rows());
    a.spmv(x, ax);
    const double xtax = std::inner_product(x.begin(), x.end(), ax.begin(),
                                           0.0);
    EXPECT_GT(xtax, 0.0);
  }
}

TEST(Stencil, FactorGridProducesPaperGrid) {
  int nx = 0, ny = 0;
  factor_grid(524288, nx, ny);
  EXPECT_EQ(static_cast<long>(nx) * ny, 524288L);
  EXPECT_EQ(nx, 1024);
  EXPECT_EQ(ny, 512);
}

TEST(Stencil, FactorGridWeakScalingSizes) {
  for (int p : {32, 64, 128, 256, 512, 1024, 2048}) {
    int nx = 0, ny = 0;
    factor_grid(256L * p, nx, ny);
    EXPECT_EQ(static_cast<long>(nx) * ny, 256L * p) << p;
    EXPECT_GE(nx, ny);
    EXPECT_LE(nx / ny, 2) << "aspect ratio stays near square";
  }
}

TEST(Stencil, RejectsDegenerateGrids) {
  EXPECT_THROW(laplacian_5pt(0, 3), Error);
  EXPECT_THROW(rotated_aniso_7pt(-1, 3, 0.0, 1.0), Error);
  EXPECT_THROW(laplacian_27pt(2, 0, 2), Error);
}
