/// \file test_coll_stress.cpp
/// \brief Additional collective-layer coverage: payload sweeps, struct
/// payloads, repeated/nested communicator splits, timing semantics.

#include <gtest/gtest.h>

#include <numeric>

#include "simmpi/coll.hpp"
#include "simmpi/engine.hpp"

using namespace simmpi;

namespace {
Engine grid_engine(int nodes, int rpn) {
  return Engine(Machine({.num_nodes = nodes, .regions_per_node = 1,
                         .ranks_per_region = rpn}),
                CostParams::lassen());
}
}  // namespace

/// Payload sizes crossing the short/eager/rendezvous regime boundaries.
class BcastSizes : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Sizes, BcastSizes,
                         ::testing::Values(0, 1, 63, 64, 65, 1024, 8192,
                                           100000));

TEST_P(BcastSizes, PayloadIntactAcrossRegimes) {
  const int n = GetParam();
  Engine eng = grid_engine(3, 4);
  eng.run([&](Context& ctx) -> Task<> {
    std::vector<double> data;
    if (ctx.rank() == 5) {
      data.resize(n);
      for (int i = 0; i < n; ++i) data[i] = 1.5 * i - 7;
    }
    co_await coll::bcast(ctx, ctx.world(), data, 5);
    EXPECT_EQ(static_cast<int>(data.size()), n);
    for (int i = 0; i < n; ++i) EXPECT_DOUBLE_EQ(data[i], 1.5 * i - 7);
  });
}

TEST_P(BcastSizes, LargerPayloadsTakeLonger) {
  const int n = GetParam();
  if (n == 0) GTEST_SKIP();
  auto elapsed = [](int count) {
    Engine eng = grid_engine(2, 1);
    eng.run([&](Context& ctx) -> Task<> {
      std::vector<double> data(ctx.rank() == 0 ? count : 0, 1.0);
      co_await coll::bcast(ctx, ctx.world(), data, 0);
    });
    return eng.max_clock();
  };
  EXPECT_LT(elapsed(n), elapsed(n + 100000));
}

TEST(CollStress, AllreduceStructPayload) {
  struct MinMax {
    double lo, hi;
  };
  Engine eng = grid_engine(4, 4);
  eng.run([&](Context& ctx) -> Task<> {
    MinMax v{static_cast<double>(ctx.rank()),
             static_cast<double>(ctx.rank())};
    MinMax r = co_await coll::allreduce<MinMax>(
        ctx, ctx.world(), v, [](MinMax a, MinMax b) {
          return MinMax{std::min(a.lo, b.lo), std::max(a.hi, b.hi)};
        });
    EXPECT_DOUBLE_EQ(r.lo, 0.0);
    EXPECT_DOUBLE_EQ(r.hi, 15.0);
  });
}

TEST(CollStress, RepeatedSplitsYieldConsistentSubcomms) {
  Engine eng = grid_engine(4, 4);
  eng.run([&](Context& ctx) -> Task<> {
    // Split twice by the same color: must land in identically-shaped comms.
    Comm a = co_await coll::comm_split(ctx, ctx.world(), ctx.rank() % 2,
                                       ctx.rank());
    Comm b = co_await coll::comm_split(ctx, ctx.world(), ctx.rank() % 2,
                                       ctx.rank());
    EXPECT_EQ(a.size(), b.size());
    EXPECT_EQ(a.rank(), b.rank());
    EXPECT_NE(a.id(), b.id());  // distinct contexts, isolated channels
    // Nested split: halves of halves.
    Comm c = co_await coll::comm_split(ctx, a, a.rank() % 2, a.rank());
    EXPECT_EQ(c.size(), a.size() / 2);
    long sum = co_await coll::allreduce<long>(
        ctx, c, 1L, [](long x, long y) { return x + y; });
    EXPECT_EQ(sum, c.size());
    co_return;
  });
}

TEST(CollStress, ManySequentialCollectivesKeepChannelsClean) {
  Engine eng = grid_engine(2, 4);
  eng.run([&](Context& ctx) -> Task<> {
    for (int round = 0; round < 25; ++round) {
      long v = co_await coll::allreduce<long>(
          ctx, ctx.world(), static_cast<long>(ctx.rank() + round),
          [](long a, long b) { return a + b; });
      long expected = 0;
      for (int r = 0; r < 8; ++r) expected += r + round;
      EXPECT_EQ(v, expected);
      auto all = co_await coll::allgather<int>(ctx, ctx.world(),
                                               round * 100 + ctx.rank());
      EXPECT_EQ(all[3], round * 100 + 3);
    }
    co_return;
  });
}

TEST(CollStress, AllgathervEmptyContributions) {
  // Some ranks contribute nothing at all.
  Engine eng = grid_engine(2, 4);
  eng.run([&](Context& ctx) -> Task<> {
    std::vector<int> mine;
    if (ctx.rank() % 3 == 0) mine = {ctx.rank(), -ctx.rank()};
    std::vector<int> counts;
    auto all = co_await coll::allgatherv<int>(ctx, ctx.world(),
                                              std::move(mine), &counts);
    long total = 0;
    for (int r = 0; r < 8; ++r) {
      EXPECT_EQ(counts[r], r % 3 == 0 ? 2 : 0);
      total += counts[r];
    }
    EXPECT_EQ(static_cast<long>(all.size()), total);
    EXPECT_EQ(all[0], 0);
    EXPECT_EQ(all[2], 3);  // rank 3's first value
  });
}

TEST(CollStress, ExscanNonUniformValues) {
  Engine eng = grid_engine(3, 3);
  eng.run([&](Context& ctx) -> Task<> {
    const long mine = (ctx.rank() * 7) % 5;
    long v = co_await coll::exscan<long>(
        ctx, ctx.world(), mine, [](long a, long b) { return a + b; }, 0L);
    long expected = 0;
    for (int r = 0; r < ctx.rank(); ++r) expected += (r * 7) % 5;
    EXPECT_EQ(v, expected);
  });
}

TEST(CollStress, CollectiveTimeGrowsWithCommunicatorSize) {
  auto barrier_time = [](int nodes) {
    Engine eng = grid_engine(nodes, 4);
    eng.run([&](Context& ctx) -> Task<> {
      co_await coll::barrier(ctx, ctx.world());
    });
    return eng.max_clock();
  };
  EXPECT_LT(barrier_time(2), barrier_time(16));
}

TEST(CollStress, AllreduceOnRegionCommIsCheaperThanWorld) {
  // The premise of hierarchical algorithms: collectives over a region cost
  // less than over the machine.
  Engine eng = grid_engine(8, 8);
  double region_t = 0, world_t = 0;
  eng.run([&](Context& ctx) -> Task<> {
    Comm region = co_await coll::split_by_region(ctx, ctx.world());
    co_await ctx.engine().sync_reset(ctx);
    (void)co_await coll::allreduce<double>(
        ctx, region, 1.0, [](double a, double b) { return a + b; });
    region_t = std::max(region_t, ctx.now());
    co_await ctx.engine().sync_reset(ctx);
    (void)co_await coll::allreduce<double>(
        ctx, ctx.world(), 1.0, [](double a, double b) { return a + b; });
    world_t = std::max(world_t, ctx.now());
    co_return;
  });
  EXPECT_LT(region_t, world_t);
}
