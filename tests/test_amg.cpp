/// \file test_amg.cpp
/// \brief AMG components: strength, coarsening, interpolation, hierarchy,
/// and solver convergence.

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "amg/hierarchy.hpp"
#include "amg/interp.hpp"
#include "amg/solve.hpp"
#include "amg/strength.hpp"
#include "sparse/stencil.hpp"

using namespace amg;
using sparse::Csr;

namespace {
std::vector<double> random_vec(int n, unsigned seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> d(-1, 1);
  std::vector<double> v(n);
  for (auto& x : v) x = d(rng);
  return v;
}
}  // namespace

TEST(Strength, LaplaceAllNeighborsStrong) {
  Csr a = sparse::laplacian_5pt(5, 5);
  Csr s = strength(a, 0.25);
  const int c = sparse::grid_index(5, 2, 2);
  EXPECT_EQ(s.row_cols(c).size(), 4u);  // all four neighbors equal => strong
  // No self connections.
  for (int i = 0; i < s.rows(); ++i)
    for (int j : s.row_cols(i)) EXPECT_NE(j, i);
}

TEST(Strength, RotatedAnisoStrongOnlyOnDiagonal) {
  // theta=45, eps=0.001: |NE/SW| = 0.4995 >> |E/W/N/S| = 0.001, so with
  // theta_strength = 0.25 only the NE/SW couplings are strong.
  Csr a = sparse::paper_problem(8, 8);
  Csr s = strength(a, 0.25);
  const int c = sparse::grid_index(8, 4, 4);
  auto cols = s.row_cols(c);
  EXPECT_EQ(cols.size(), 2u);
  EXPECT_EQ(cols[0], sparse::grid_index(8, 3, 3));
  EXPECT_EQ(cols[1], sparse::grid_index(8, 5, 5));
}

TEST(Strength, ThetaOneKeepsOnlyMaxima) {
  Csr a = sparse::rotated_aniso_7pt(6, 6, 0.0, 0.1);
  Csr s = strength(a, 1.0);
  const int c = sparse::grid_index(6, 3, 3);
  // Only the E/W couplings (magnitude 1.0) survive theta = 1.
  auto cols = s.row_cols(c);
  EXPECT_EQ(cols.size(), 2u);
}

TEST(Strength, RejectsBadArguments) {
  Csr a(3, 4);
  EXPECT_THROW(strength(a, 0.25), sparse::Error);
  Csr b = sparse::laplacian_5pt(3, 3);
  EXPECT_THROW(strength(b, -0.1), sparse::Error);
  EXPECT_THROW(strength(b, 1.5), sparse::Error);
}

class CoarsenBoth : public ::testing::TestWithParam<CoarsenAlgo> {};
INSTANTIATE_TEST_SUITE_P(Algos, CoarsenBoth,
                         ::testing::Values(CoarsenAlgo::rs,
                                           CoarsenAlgo::pmis));

TEST_P(CoarsenBoth, SplittingCoversAllPoints) {
  Csr a = sparse::laplacian_5pt(10, 10);
  Csr s = strength(a, 0.25);
  auto cf = coarsen(s, GetParam());
  EXPECT_EQ(cf.size(), 100u);
  int nc = static_cast<int>(coarse_points(cf).size());
  EXPECT_GT(nc, 0);
  EXPECT_LT(nc, 100);
}

TEST_P(CoarsenBoth, EveryFinePointHasAStrongCoarseNeighborOnLaplace) {
  // The essential RS/PMIS property on nicely-connected graphs: F points
  // see at least one C point among their strong neighbors.
  Csr a = sparse::laplacian_5pt(12, 12);
  Csr s = strength(a, 0.25);
  auto cf = coarsen(s, GetParam());
  for (int i = 0; i < s.rows(); ++i) {
    if (cf[i] == CF::coarse) continue;
    bool has_c = false;
    for (int j : s.row_cols(i)) has_c = has_c || cf[j] == CF::coarse;
    EXPECT_TRUE(has_c) << "F point " << i << " has no strong C neighbor";
  }
}

TEST_P(CoarsenBoth, IsolatedPointsBecomeCoarse) {
  // A diagonal matrix has no strong connections at all.
  Csr a = Csr::identity(5);
  Csr s = strength(a, 0.25);
  auto cf = coarsen(s, GetParam());
  for (auto m : cf) EXPECT_EQ(m, CF::coarse);
}

TEST(CoarsenRs, AnisotropicCoarsensAlongStrongDirection) {
  // Strong couplings only along NE/SW diagonals: RS should alternate C/F
  // along each diagonal line, roughly halving the grid.
  Csr a = sparse::paper_problem(16, 16);
  Csr s = strength(a, 0.25);
  auto cf = coarsen_rs(s);
  const int nc = static_cast<int>(coarse_points(cf).size());
  EXPECT_GT(nc, 256 / 3);
  EXPECT_LT(nc, 2 * 256 / 3);
}

TEST(CoarsenPmis, DeterministicAcrossCalls) {
  Csr a = sparse::laplacian_9pt(9, 9);
  Csr s = strength(a, 0.25);
  auto cf1 = coarsen_pmis(s, 3);
  auto cf2 = coarsen_pmis(s, 3);
  EXPECT_TRUE(cf1 == cf2);
}

TEST(Interp, CoarsePointsInterpolateExactly) {
  Csr a = sparse::laplacian_5pt(8, 8);
  Csr s = strength(a, 0.25);
  auto cf = coarsen_rs(s);
  Csr p = direct_interpolation(a, s, cf);
  auto cpts = coarse_points(cf);
  EXPECT_EQ(p.cols(), static_cast<int>(cpts.size()));
  for (std::size_t j = 0; j < cpts.size(); ++j) {
    EXPECT_EQ(p.row_cols(cpts[j]).size(), 1u);
    EXPECT_DOUBLE_EQ(p.at(cpts[j], static_cast<int>(j)), 1.0);
  }
}

TEST(Interp, ReproducesConstantsInInterior) {
  // For zero-row-sum operators (interior of Laplace), direct interpolation
  // must reproduce the constant vector: P * 1 = 1 on F rows whose full
  // stencil is interior.
  const int nx = 12;
  Csr a = sparse::laplacian_5pt(nx, nx);
  Csr s = strength(a, 0.25);
  auto cf = coarsen_rs(s);
  Csr p = direct_interpolation(a, s, cf, /*max_elements=*/8);
  std::vector<double> ones(p.cols(), 1.0), px(p.rows());
  p.spmv(ones, px);
  for (int y = 2; y < nx - 2; ++y)
    for (int x = 2; x < nx - 2; ++x) {
      const int i = sparse::grid_index(nx, x, y);
      // Interior rows of the 5-pt Laplacian have zero row sum.
      double row_sum = 0;
      for (double v : a.row_vals(i)) row_sum += v;
      if (std::abs(row_sum) < 1e-12) {
        EXPECT_NEAR(px[i], 1.0, 1e-10) << i;
      }
    }
}

TEST(Interp, TruncationLimitsRowLengthAndPreservesRowSum) {
  Csr a = sparse::laplacian_9pt(10, 10);
  Csr s = strength(a, 0.25);
  auto cf = coarsen_rs(s);
  Csr full = direct_interpolation(a, s, cf, 100);
  Csr trunc = direct_interpolation(a, s, cf, 2);
  for (int i = 0; i < trunc.rows(); ++i) {
    EXPECT_LE(trunc.row_cols(i).size(), 2u);
    double sf = 0, st = 0;
    for (double v : full.row_vals(i)) sf += v;
    for (double v : trunc.row_vals(i)) st += v;
    EXPECT_NEAR(sf, st, 1e-12) << "row sum changed by truncation at " << i;
  }
}

TEST(Hierarchy, BuildsMultipleLevelsOnPaperProblem) {
  Csr a = sparse::paper_problem(64, 64);
  Hierarchy h = Hierarchy::build(std::move(a));
  EXPECT_GE(h.num_levels(), 5);
  // Sizes strictly decrease.
  for (int l = 1; l < h.num_levels(); ++l)
    EXPECT_LT(h.levels[l].n(), h.levels[l - 1].n());
  // Galerkin dimensions are consistent.
  for (int l = 0; l + 1 < h.num_levels(); ++l) {
    EXPECT_EQ(h.levels[l].P.rows(), h.levels[l].n());
    EXPECT_EQ(h.levels[l].P.cols(), h.levels[l + 1].n());
    EXPECT_EQ(h.levels[l].R.rows(), h.levels[l + 1].n());
  }
  EXPECT_LT(h.operator_complexity(), 5.0);
  EXPECT_LT(h.grid_complexity(), 3.0);
}

TEST(Hierarchy, CoarseOperatorIsGalerkin) {
  Csr a = sparse::laplacian_5pt(10, 10);
  Hierarchy h = Hierarchy::build(a);
  const auto& l0 = h.levels[0];
  Csr expect = sparse::galerkin_product(l0.R, l0.A, l0.P)
                   .pruned(h.options.galerkin_prune_tol);
  EXPECT_EQ(h.levels[1].A, expect);
}

TEST(Hierarchy, CoarseOperatorStaysSymmetric) {
  Csr a = sparse::paper_problem(24, 24);
  Hierarchy h = Hierarchy::build(std::move(a));
  for (const auto& lvl : h.levels) {
    Csr t = lvl.A.transpose();
    for (int i = 0; i < lvl.A.rows(); ++i) {
      auto cv = lvl.A.row_vals(i);
      auto tv = t.row_vals(i);
      ASSERT_EQ(cv.size(), tv.size());
      for (std::size_t k = 0; k < cv.size(); ++k)
        EXPECT_NEAR(cv[k], tv[k], 1e-10);
    }
  }
}

TEST(Hierarchy, DeepHierarchyOnAnisotropicProblem) {
  // The paper's rot-aniso problem coarsens slowly (essentially 1D along the
  // strong diagonal), yielding a deep hierarchy like Figs. 8-11.
  Csr a = sparse::paper_problem(64, 64);
  Hierarchy h = Hierarchy::build(std::move(a));
  EXPECT_GE(h.num_levels(), 7);
}

TEST(Solve, JacobiReducesResidual) {
  Csr a = sparse::laplacian_5pt(10, 10);
  auto b = random_vec(a.rows(), 1);
  std::vector<double> x(a.rows(), 0.0);
  double prev = residual_norm(a, b, x);
  for (int s = 0; s < 5; ++s) {
    jacobi(a, b, x);
    const double cur = residual_norm(a, b, x);
    EXPECT_LT(cur, prev);
    prev = cur;
  }
}

TEST(Solve, DenseSolveExactOnSmallSystem) {
  Csr a = sparse::laplacian_5pt(4, 3);
  auto xref = random_vec(a.rows(), 2);
  std::vector<double> b(a.rows());
  a.spmv(xref, b);
  std::vector<double> x(a.rows(), 0.0);
  dense_solve(a, b, x);
  for (int i = 0; i < a.rows(); ++i) EXPECT_NEAR(x[i], xref[i], 1e-10);
}

TEST(Solve, DenseSolveRejectsSingular) {
  Csr a(2, 2);  // zero matrix
  std::vector<double> b{1, 1}, x(2);
  EXPECT_THROW(dense_solve(a, b, x), sparse::Error);
}

TEST(Solve, VCycleConvergesOnLaplace) {
  Csr a = sparse::laplacian_5pt(32, 32);
  Hierarchy h = Hierarchy::build(a);
  auto b = random_vec(a.rows(), 3);
  std::vector<double> x(a.rows(), 0.0);
  auto res = amg_solve(h, b, x, 1e-8, 60);
  EXPECT_TRUE(res.converged) << "residual " << res.final_residual;
  EXPECT_LT(res.iterations, 40);
}

TEST(Solve, AmgPcgConvergesOnPaperProblem) {
  Csr a = sparse::paper_problem(48, 48);
  Hierarchy h = Hierarchy::build(a);
  auto b = random_vec(a.rows(), 4);
  std::vector<double> x(a.rows(), 0.0);
  auto res = amg_pcg(h, b, x, 1e-8, 200);
  EXPECT_TRUE(res.converged) << "residual " << res.final_residual;
  EXPECT_LT(residual_norm(a, b, x) / residual_norm(a, b, std::vector<double>(a.rows(), 0.0)), 1e-7);
}

TEST(Solve, AmgPcgConvergesWithPmisCoarsening) {
  Csr a = sparse::paper_problem(32, 32);
  Options opts;
  opts.coarsen_algo = CoarsenAlgo::pmis;
  Hierarchy h = Hierarchy::build(a, opts);
  auto b = random_vec(a.rows(), 5);
  std::vector<double> x(a.rows(), 0.0);
  auto res = amg_pcg(h, b, x, 1e-8, 300);
  EXPECT_TRUE(res.converged) << "residual " << res.final_residual;
}

TEST(Solve, SolutionMatchesDenseReference) {
  Csr a = sparse::laplacian_5pt(8, 8);
  Hierarchy h = Hierarchy::build(a);
  auto b = random_vec(a.rows(), 6);
  std::vector<double> x(a.rows(), 0.0), xd(a.rows(), 0.0);
  amg_pcg(h, b, x, 1e-12, 500);
  dense_solve(a, b, xd);
  for (int i = 0; i < a.rows(); ++i) EXPECT_NEAR(x[i], xd[i], 1e-8);
}
