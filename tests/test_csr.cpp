/// \file test_csr.cpp
/// \brief CSR construction and kernels, checked against dense references.

#include <gtest/gtest.h>

#include <random>

#include "sparse/csr.hpp"

using namespace sparse;

namespace {

/// Random sparse matrix with ~`density` fill, deterministic by seed.
Csr random_csr(int rows, int cols, double density, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> val(-2.0, 2.0);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  std::vector<Triplet> tr;
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c)
      if (coin(rng) < density) tr.push_back({r, c, val(rng)});
  return Csr::from_triplets(rows, cols, std::move(tr));
}

std::vector<std::vector<double>> to_dense(const Csr& a) {
  std::vector<std::vector<double>> d(a.rows(),
                                     std::vector<double>(a.cols(), 0.0));
  for (int r = 0; r < a.rows(); ++r) {
    auto c = a.row_cols(r);
    auto v = a.row_vals(r);
    for (std::size_t k = 0; k < c.size(); ++k) d[r][c[k]] = v[k];
  }
  return d;
}

}  // namespace

TEST(Csr, FromTripletsSumsDuplicatesAndSorts) {
  Csr a = Csr::from_triplets(2, 3, {{0, 2, 1.0}, {0, 0, 2.0}, {0, 2, 0.5},
                                    {1, 1, -1.0}});
  EXPECT_EQ(a.nnz(), 3);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(a.at(0, 2), 1.5);
  EXPECT_DOUBLE_EQ(a.at(1, 1), -1.0);
  EXPECT_DOUBLE_EQ(a.at(1, 0), 0.0);
  // columns strictly ascending within each row
  for (int r = 0; r < a.rows(); ++r) {
    auto c = a.row_cols(r);
    for (std::size_t k = 1; k < c.size(); ++k) EXPECT_LT(c[k - 1], c[k]);
  }
}

TEST(Csr, FromTripletsRejectsOutOfRange) {
  EXPECT_THROW(Csr::from_triplets(2, 2, {{2, 0, 1.0}}), Error);
  EXPECT_THROW(Csr::from_triplets(2, 2, {{0, -1, 1.0}}), Error);
}

TEST(Csr, FromRawValidates) {
  EXPECT_NO_THROW(Csr::from_raw(2, 2, {0, 1, 2}, {0, 1}, {1.0, 2.0}));
  EXPECT_THROW(Csr::from_raw(2, 2, {0, 2, 1}, {0, 1}, {1.0, 2.0}), Error);
  EXPECT_THROW(Csr::from_raw(2, 2, {0, 2, 2}, {1, 0}, {1.0, 2.0}), Error);
  EXPECT_THROW(Csr::from_raw(2, 2, {0, 1, 2}, {0, 5}, {1.0, 2.0}), Error);
}

TEST(Csr, IdentitySpmvIsIdentity) {
  Csr i = Csr::identity(5);
  std::vector<double> x{1, 2, 3, 4, 5}, y(5);
  i.spmv(x, y);
  EXPECT_EQ(x, y);
}

TEST(Csr, SpmvMatchesDenseReference) {
  for (unsigned seed : {1u, 2u, 3u}) {
    Csr a = random_csr(17, 23, 0.2, seed);
    std::mt19937 rng(seed + 100);
    std::uniform_real_distribution<double> d(-1, 1);
    std::vector<double> x(23);
    for (auto& v : x) v = d(rng);
    std::vector<double> y(17);
    a.spmv(x, y);
    auto ref = dense_spmv(a, x);
    for (int r = 0; r < 17; ++r) EXPECT_NEAR(y[r], ref[r], 1e-12);
  }
}

TEST(Csr, SpmvAddAccumulates) {
  Csr a = random_csr(5, 5, 0.5, 42);
  std::vector<double> x{1, -1, 2, 0.5, 3};
  std::vector<double> y(5, 10.0);
  a.spmv_add(x, y);
  auto ref = dense_spmv(a, x);
  for (int r = 0; r < 5; ++r) EXPECT_NEAR(y[r], 10.0 + ref[r], 1e-12);
}

TEST(Csr, SpmvRejectsWrongSizes) {
  Csr a(3, 4);
  std::vector<double> x(3), y(3);
  EXPECT_THROW(a.spmv(x, y), Error);
}

TEST(Csr, TransposeInvolution) {
  Csr a = random_csr(13, 9, 0.3, 7);
  EXPECT_EQ(a.transpose().transpose(), a);
}

TEST(Csr, TransposeMatchesDense) {
  Csr a = random_csr(8, 6, 0.4, 11);
  Csr t = a.transpose();
  auto da = to_dense(a);
  auto dt = to_dense(t);
  for (int r = 0; r < 8; ++r)
    for (int c = 0; c < 6; ++c) EXPECT_DOUBLE_EQ(da[r][c], dt[c][r]);
}

TEST(Csr, MultiplyMatchesDense) {
  for (unsigned seed : {5u, 6u}) {
    Csr a = random_csr(7, 11, 0.3, seed);
    Csr b = random_csr(11, 5, 0.3, seed + 50);
    Csr c = a.multiply(b);
    auto da = to_dense(a);
    auto db = to_dense(b);
    auto dc = to_dense(c);
    for (int i = 0; i < 7; ++i)
      for (int j = 0; j < 5; ++j) {
        double ref = 0;
        for (int k = 0; k < 11; ++k) ref += da[i][k] * db[k][j];
        EXPECT_NEAR(dc[i][j], ref, 1e-12) << i << "," << j;
      }
  }
}

TEST(Csr, MultiplyDimensionCheck) {
  Csr a(3, 4), b(5, 2);
  EXPECT_THROW(a.multiply(b), Error);
}

TEST(Csr, MultiplyByIdentityIsNoop) {
  Csr a = random_csr(9, 9, 0.3, 3);
  EXPECT_EQ(a.multiply(Csr::identity(9)), a);
  EXPECT_EQ(Csr::identity(9).multiply(a), a);
}

TEST(Csr, GalerkinProductAssociativityShape) {
  Csr a = random_csr(10, 10, 0.3, 21);
  Csr p = random_csr(10, 4, 0.4, 22);
  Csr r = p.transpose();
  Csr coarse = galerkin_product(r, a, p);
  EXPECT_EQ(coarse.rows(), 4);
  EXPECT_EQ(coarse.cols(), 4);
  // (P^T A) P == P^T (A P)
  Csr left = r.multiply(a).multiply(p);
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 4; ++j)
      EXPECT_NEAR(left.at(i, j), coarse.at(i, j), 1e-12);
}

TEST(Csr, SelectRowsExtractsSubmatrix) {
  Csr a = random_csr(10, 6, 0.5, 9);
  std::vector<int> rows{7, 2, 2};
  Csr s = a.select_rows(rows);
  EXPECT_EQ(s.rows(), 3);
  for (int c = 0; c < 6; ++c) {
    EXPECT_DOUBLE_EQ(s.at(0, c), a.at(7, c));
    EXPECT_DOUBLE_EQ(s.at(1, c), a.at(2, c));
    EXPECT_DOUBLE_EQ(s.at(2, c), a.at(2, c));
  }
}

TEST(Csr, PermutedRelabelsEntries) {
  Csr a = Csr::from_triplets(3, 3, {{0, 1, 5.0}, {2, 2, 7.0}});
  std::vector<int> rp{2, 0, 1};  // old row r -> new row rp[r]
  std::vector<int> cp{1, 2, 0};
  Csr b = a.permuted(rp, cp);
  EXPECT_DOUBLE_EQ(b.at(2, 2), 5.0);  // (0,1) -> (2,2)
  EXPECT_DOUBLE_EQ(b.at(1, 0), 7.0);  // (2,2) -> (1,0)
  EXPECT_EQ(b.nnz(), 2);
}

TEST(Csr, PermutedRejectsNonPermutations) {
  // Regression: duplicate targets used to be silently summed by the
  // triplet assembly path, corrupting the matrix instead of failing.
  Csr a = random_csr(4, 4, 0.6, 11);
  const std::vector<int> id{0, 1, 2, 3};
  const std::vector<int> dup_row{0, 1, 2, 2};
  const std::vector<int> dup_col{3, 3, 1, 0};
  const std::vector<int> oor{0, 1, 2, 4};
  const std::vector<int> neg{-1, 1, 2, 3};
  EXPECT_THROW(a.permuted(dup_row, id), Error);  // duplicate row target
  EXPECT_THROW(a.permuted(id, dup_col), Error);  // duplicate col target
  EXPECT_THROW(a.permuted(oor, id), Error);      // out of range
  EXPECT_THROW(a.permuted(id, neg), Error);
  EXPECT_NO_THROW(a.permuted(id, id));
}

TEST(Csr, PermutedRoundTripsThroughInverse) {
  Csr a = random_csr(8, 5, 0.4, 12);
  const std::vector<int> rp{3, 7, 0, 5, 1, 6, 2, 4};
  const std::vector<int> cp{4, 0, 3, 1, 2};
  std::vector<int> rp_inv(rp.size()), cp_inv(cp.size());
  for (std::size_t i = 0; i < rp.size(); ++i) rp_inv[rp[i]] = i;
  for (std::size_t i = 0; i < cp.size(); ++i) cp_inv[cp[i]] = i;
  EXPECT_EQ(a.permuted(rp, cp).permuted(rp_inv, cp_inv), a);
}

TEST(Csr, PrunedDropsSmallOffDiagonals) {
  Csr a = Csr::from_triplets(
      2, 2, {{0, 0, 1e-14}, {0, 1, 0.5}, {1, 0, 1e-14}, {1, 1, 2.0}});
  Csr b = a.pruned(1e-10);
  EXPECT_DOUBLE_EQ(b.at(0, 0), 1e-14);  // diagonal kept
  EXPECT_DOUBLE_EQ(b.at(0, 1), 0.5);
  EXPECT_DOUBLE_EQ(b.at(1, 0), 0.0);  // off-diagonal dropped
  EXPECT_EQ(b.nnz(), 3);
}

TEST(Csr, DiagonalExtraction) {
  Csr a = Csr::from_triplets(3, 3, {{0, 0, 4.0}, {1, 2, 1.0}, {2, 2, -3.0}});
  auto d = a.diagonal();
  EXPECT_DOUBLE_EQ(d[0], 4.0);
  EXPECT_DOUBLE_EQ(d[1], 0.0);
  EXPECT_DOUBLE_EQ(d[2], -3.0);
}

/// Property sweep: transpose/multiply consistency, (AB)^T == B^T A^T.
class CsrProperty : public ::testing::TestWithParam<unsigned> {};
INSTANTIATE_TEST_SUITE_P(Seeds, CsrProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

TEST_P(CsrProperty, TransposeOfProduct) {
  const unsigned seed = GetParam();
  Csr a = random_csr(6 + seed % 5, 8, 0.35, seed);
  Csr b = random_csr(8, 5 + seed % 3, 0.35, seed + 1000);
  Csr lhs = a.multiply(b).transpose();
  Csr rhs = b.transpose().multiply(a.transpose());
  EXPECT_EQ(lhs.rows(), rhs.rows());
  EXPECT_EQ(lhs.cols(), rhs.cols());
  for (int r = 0; r < lhs.rows(); ++r)
    for (int c = 0; c < lhs.cols(); ++c)
      EXPECT_NEAR(lhs.at(r, c), rhs.at(r, c), 1e-12);
}

TEST_P(CsrProperty, SpmvLinearity) {
  const unsigned seed = GetParam();
  Csr a = random_csr(12, 12, 0.3, seed);
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> d(-1, 1);
  std::vector<double> x(12), y(12);
  for (auto& v : x) v = d(rng);
  for (auto& v : y) v = d(rng);
  std::vector<double> ax(12), ay(12), axy(12), xy(12);
  for (int i = 0; i < 12; ++i) xy[i] = 2.0 * x[i] - 3.0 * y[i];
  a.spmv(x, ax);
  a.spmv(y, ay);
  a.spmv(xy, axy);
  for (int i = 0; i < 12; ++i)
    EXPECT_NEAR(axy[i], 2.0 * ax[i] - 3.0 * ay[i], 1e-11);
}
