/// \file test_par_csr.cpp
/// \brief Distributed matrix layout, halo patterns, partitions.

#include <gtest/gtest.h>

#include <random>

#include "sparse/par_csr.hpp"
#include "sparse/stencil.hpp"

using namespace sparse;

TEST(Partition, BlockPartitionCoversEvenly) {
  auto p = block_partition(10, 3);
  EXPECT_EQ(p, (std::vector<long>{0, 4, 7, 10}));
  EXPECT_EQ(owner_of(p, 0), 0);
  EXPECT_EQ(owner_of(p, 3), 0);
  EXPECT_EQ(owner_of(p, 4), 1);
  EXPECT_EQ(owner_of(p, 9), 2);
  EXPECT_THROW(owner_of(p, 10), Error);
  EXPECT_THROW(owner_of(p, -1), Error);
}

TEST(Partition, MoreRanksThanRows) {
  auto p = block_partition(2, 4);
  EXPECT_EQ(p, (std::vector<long>{0, 1, 2, 2, 2}));
  EXPECT_EQ(local_size(p, 2), 0);
}

TEST(Partition, FromCounts) {
  std::vector<int> counts{3, 0, 2};
  auto p = partition_from_counts(counts);
  EXPECT_EQ(p, (std::vector<long>{0, 3, 3, 5}));
}

TEST(ParCsr, DistributeGatherRoundTrip) {
  Csr a = paper_problem(12, 8);
  for (int p : {1, 2, 3, 7}) {
    auto part = block_partition(a.rows(), p);
    ParCsr par = ParCsr::distribute(a, part, part);
    EXPECT_EQ(par.gather(), a) << "p=" << p;
  }
}

TEST(ParCsr, DiagOffdSplitIsDisjointAndComplete) {
  Csr a = laplacian_9pt(8, 8);
  auto part = block_partition(a.rows(), 4);
  ParCsr par = ParCsr::distribute(a, part, part);
  long diag_nnz = 0, offd_nnz = 0;
  for (const auto& slice : par.ranks) {
    diag_nnz += slice.diag.nnz();
    offd_nnz += slice.offd.nnz();
    // col_map_offd is sorted, unique, and disjoint from the local range.
    for (std::size_t i = 0; i < slice.col_map_offd.size(); ++i) {
      const long gid = slice.col_map_offd[i];
      if (i > 0) {
        EXPECT_LT(slice.col_map_offd[i - 1], gid);
      }
      EXPECT_TRUE(gid < slice.first_col ||
                  gid >= slice.first_col + slice.local_cols());
    }
  }
  EXPECT_EQ(diag_nnz + offd_nnz, a.nnz());
}

TEST(ParCsr, SingleRankHasEmptyOffd) {
  Csr a = paper_problem(6, 6);
  auto part = block_partition(a.rows(), 1);
  ParCsr par = ParCsr::distribute(a, part, part);
  EXPECT_EQ(par.ranks[0].offd.nnz(), 0);
  EXPECT_TRUE(par.ranks[0].col_map_offd.empty());
}

TEST(Halo, SendRecvListsAreConsistent) {
  Csr a = paper_problem(16, 16);
  auto part = block_partition(a.rows(), 8);
  ParCsr par = ParCsr::distribute(a, part, part);
  Halo h = Halo::build(par);

  // Every recv entry must have a matching send entry and vice versa.
  long total_send = 0, total_recv = 0;
  for (int q = 0; q < 8; ++q) {
    total_send += h.ranks[q].total_send();
    total_recv += h.ranks[q].total_recv();
  }
  EXPECT_EQ(total_send, total_recv);

  for (int q = 0; q < 8; ++q) {
    const RankHalo& hq = h.ranks[q];
    for (std::size_t i = 0; i < hq.recv_ranks.size(); ++i) {
      const int s = hq.recv_ranks[i];
      const RankHalo& hs = h.ranks[s];
      auto it = std::find(hs.send_ranks.begin(), hs.send_ranks.end(), q);
      ASSERT_NE(it, hs.send_ranks.end()) << s << "->" << q;
      const std::size_t j = it - hs.send_ranks.begin();
      EXPECT_EQ(hs.send_counts[j], hq.recv_counts[i]);
    }
  }
}

TEST(Halo, SendGidsMatchRecvGids) {
  Csr a = paper_problem(16, 8);
  auto part = block_partition(a.rows(), 4);
  ParCsr par = ParCsr::distribute(a, part, part);
  Halo h = Halo::build(par);
  for (int s = 0; s < 4; ++s) {
    const RankHalo& hs = h.ranks[s];
    long pos = 0;
    for (std::size_t j = 0; j < hs.send_ranks.size(); ++j) {
      const int q = hs.send_ranks[j];
      const RankHalo& hq = h.ranks[q];
      // Collect the gids q expects from s.
      std::vector<long> expect;
      long rpos = 0;
      for (std::size_t i = 0; i < hq.recv_ranks.size(); ++i) {
        if (hq.recv_ranks[i] == s)
          expect.assign(hq.recv_gids.begin() + rpos,
                        hq.recv_gids.begin() + rpos + hq.recv_counts[i]);
        rpos += hq.recv_counts[i];
      }
      std::vector<long> got(hs.send_gids.begin() + pos,
                            hs.send_gids.begin() + pos + hs.send_counts[j]);
      EXPECT_EQ(got, expect) << s << "->" << q;
      pos += hs.send_counts[j];
    }
  }
}

TEST(Halo, SendIdxAreLocalIndicesOfGids) {
  Csr a = paper_problem(12, 12);
  auto part = block_partition(a.rows(), 6);
  ParCsr par = ParCsr::distribute(a, part, part);
  Halo h = Halo::build(par);
  for (int s = 0; s < 6; ++s) {
    const RankHalo& hs = h.ranks[s];
    for (std::size_t k = 0; k < hs.send_idx.size(); ++k) {
      EXPECT_EQ(hs.send_gids[k] - par.col_part[s], hs.send_idx[k]);
      EXPECT_GE(hs.send_idx[k], 0);
      EXPECT_LT(hs.send_idx[k], local_size(par.col_part, s));
    }
  }
}

TEST(Halo, RecvOrderMatchesColMapOffd) {
  Csr a = laplacian_9pt(10, 10);
  auto part = block_partition(a.rows(), 5);
  ParCsr par = ParCsr::distribute(a, part, part);
  Halo h = Halo::build(par);
  for (int q = 0; q < 5; ++q)
    EXPECT_EQ(h.ranks[q].recv_gids, par.ranks[q].col_map_offd);
}

TEST(Halo, ManualSpmvThroughHaloMatchesGlobal) {
  // Emulate the halo exchange by direct copy (no simulator) and verify the
  // distributed SpMV matches the sequential one.
  Csr a = paper_problem(16, 16);
  const int p = 8;
  auto part = block_partition(a.rows(), p);
  ParCsr par = ParCsr::distribute(a, part, part);
  Halo h = Halo::build(par);

  std::mt19937_64 rng(5);
  std::uniform_real_distribution<double> d(-1, 1);
  std::vector<double> x(a.rows());
  for (auto& v : x) v = d(rng);
  auto xs = split_vector(x, part);

  std::vector<std::vector<double>> ys(p);
  for (int q = 0; q < p; ++q) {
    // Fill x_ext by "receiving": values ordered by col_map_offd.
    std::vector<double> x_ext(par.ranks[q].col_map_offd.size());
    for (std::size_t i = 0; i < x_ext.size(); ++i)
      x_ext[i] = x[par.ranks[q].col_map_offd[i]];
    ys[q].resize(local_size(part, q));
    spmv_local(par.ranks[q], xs[q], x_ext, ys[q]);
  }
  auto y = join_vector(ys);
  std::vector<double> ref(a.rows());
  a.spmv(x, ref);
  for (int i = 0; i < a.rows(); ++i) EXPECT_NEAR(y[i], ref[i], 1e-12);
}

TEST(Halo, SplitJoinRoundTrip) {
  std::vector<double> x{1, 2, 3, 4, 5, 6, 7};
  auto part = block_partition(7, 3);
  EXPECT_EQ(join_vector(split_vector(x, part)), x);
}
