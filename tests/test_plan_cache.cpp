/// \file test_plan_cache.cpp
/// \brief Locality-plan reuse in the harness: PlanCache bookkeeping, global
/// pattern fingerprints, and end-to-end plan reuse through
/// measure_protocol / run_distributed_amg — repeated setups on the same
/// hierarchy must hit the cache, perform fewer setup communications, and
/// change nothing about the delivered results.

#include <gtest/gtest.h>

#include "amg/solve.hpp"
#include "harness/dist_solve.hpp"
#include "harness/measure.hpp"
#include "sparse/stencil.hpp"

using namespace harness;

namespace {

amg::DistHierarchy small_dist(int nranks, int nx = 32, int ny = 32) {
  amg::Hierarchy h = amg::Hierarchy::build(sparse::paper_problem(nx, ny));
  return amg::distribute_hierarchy(h, nranks);
}

MeasureConfig cached_cfg(PlanCache* plans) {
  MeasureConfig cfg;
  cfg.ranks_per_region = 4;
  cfg.plans = plans;
  return cfg;
}

}  // namespace

TEST(PlanCache, CountsHitsAndMisses) {
  PlanCache cache;
  EXPECT_EQ(cache.find(1, 0), nullptr);
  EXPECT_EQ(cache.misses(), 1);
  EXPECT_EQ(cache.hits(), 0);

  auto plan = std::make_shared<mpix::LocalityPlan>();
  cache.put(1, 0, plan);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.find(1, 0), plan);
  EXPECT_EQ(cache.hits(), 1);
  // Same key, different rank; different key, same rank: both miss.
  EXPECT_EQ(cache.find(1, 1), nullptr);
  EXPECT_EQ(cache.find(2, 0), nullptr);
  EXPECT_EQ(cache.misses(), 3);

  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.find(1, 0), nullptr);
}

TEST(PlanCache, FingerprintIdentifiesGlobalPatterns) {
  auto halo_of = [](int nx, int ny, int p) {
    sparse::Csr a = sparse::paper_problem(nx, ny);
    auto part = sparse::block_partition(a.rows(), p);
    return sparse::Halo::build(sparse::ParCsr::distribute(a, part, part));
  };
  const auto h1 = halo_of(16, 16, 8);
  const auto h2 = halo_of(16, 16, 8);
  const auto h3 = halo_of(16, 16, 4);
  const auto h4 = halo_of(20, 16, 8);
  EXPECT_EQ(pattern_fingerprint(h1), pattern_fingerprint(h2));
  EXPECT_NE(pattern_fingerprint(h1), pattern_fingerprint(h3));
  EXPECT_NE(pattern_fingerprint(h1), pattern_fingerprint(h4));
}

TEST(PlanCache, MeasureProtocolReusesPlansAcrossRuns) {
  auto dh = small_dist(16);
  PlanCache cache;
  const auto cold = measure_protocol(dh, Protocol::neighbor_full,
                                     cached_cfg(&cache));
  EXPECT_EQ(cache.hits(), 0);
  EXPECT_GT(cache.misses(), 0);
  const long misses_after_cold = cache.misses();

  const auto warm = measure_protocol(dh, Protocol::neighbor_full,
                                     cached_cfg(&cache));
  EXPECT_GT(cache.hits(), 0);
  EXPECT_EQ(cache.misses(), misses_after_cold);  // every lookup hit

  ASSERT_EQ(warm.size(), cold.size());
  double cold_init = 0, warm_init = 0;
  for (std::size_t l = 0; l < cold.size(); ++l) {
    // Reuse must not change what the exchange does (measure_protocol also
    // verifies the delivered halo payload internally).  Exact virtual
    // times are not compared: the shorter init path perturbs coroutine
    // scheduling order, which legitimately shifts NIC queuing by a hair.
    EXPECT_EQ(warm[l].max_global_msgs, cold[l].max_global_msgs);
    EXPECT_EQ(warm[l].max_local_msgs, cold[l].max_local_msgs);
    EXPECT_EQ(warm[l].max_global_values, cold[l].max_global_values);
    EXPECT_EQ(warm[l].max_local_values, cold[l].max_local_values);
    EXPECT_EQ(warm[l].max_global_msg_values, cold[l].max_global_msg_values);
    cold_init += cold[l].init_seconds;
    warm_init += warm[l].init_seconds;
  }
  // The cached plans skip the metadata allgather, leader handshake and
  // broadcast: warm init must be decisively cheaper in aggregate.
  EXPECT_LT(warm_init, cold_init);
}

TEST(PlanCache, DistinctMethodsAndStrategiesDoNotCollide) {
  auto dh = small_dist(16);
  PlanCache cache;
  MeasureConfig cfg = cached_cfg(&cache);
  measure_protocol(dh, Protocol::neighbor_partial, cfg);
  const long misses_partial = cache.misses();
  // Same pattern, different method: must not reuse the partial plans.
  measure_protocol(dh, Protocol::neighbor_full, cfg);
  EXPECT_EQ(cache.hits(), 0);
  EXPECT_GT(cache.misses(), misses_partial);
  // Different leader strategy: again a distinct plan family.
  cfg.lpt_balance = false;
  measure_protocol(dh, Protocol::neighbor_partial, cfg);
  EXPECT_EQ(cache.hits(), 0);
}

TEST(PlanCache, DistSolveReusesPlansAndConvergesIdentically) {
  const int nx = 24, ny = 24;
  amg::Hierarchy h = amg::Hierarchy::build(sparse::paper_problem(nx, ny));
  amg::DistHierarchy dh = amg::distribute_hierarchy(h, 8);
  std::vector<double> b(static_cast<std::size_t>(nx) * ny, 1.0);

  MeasureConfig plain;
  plain.ranks_per_region = 4;
  auto ref = run_distributed_amg(dh, Protocol::neighbor_full, b, 1e-8, 40,
                                 plain);

  PlanCache cache;
  MeasureConfig cfg = cached_cfg(&cache);
  auto first = run_distributed_amg(dh, Protocol::neighbor_full, b, 1e-8, 40,
                                   cfg);
  const long hits_cold = cache.hits();
  EXPECT_GT(cache.misses(), 0);

  // A second solve on the same hierarchy re-binds every cached plan
  // without setup communication: the per-pattern setup is paid once, not
  // once per solve (the acceptance criterion's plan-cache hits).
  auto second = run_distributed_amg(dh, Protocol::neighbor_full, b, 1e-8, 40,
                                    cfg);
  EXPECT_GT(cache.hits(), hits_cold);
  EXPECT_GT(cache.hits(), 0);

  // Plan reuse changes setup cost only — iterates are bit-identical.
  // (Virtual solve times are not compared: the shorter setup perturbs
  // coroutine scheduling order, which shifts NIC queuing by a hair.)
  for (const auto* res : {&first, &second}) {
    EXPECT_EQ(res->converged, ref.converged);
    ASSERT_EQ(res->residual_history.size(), ref.residual_history.size());
    for (std::size_t i = 0; i < ref.residual_history.size(); ++i)
      EXPECT_DOUBLE_EQ(res->residual_history[i], ref.residual_history[i]);
    ASSERT_EQ(res->solution.size(), ref.solution.size());
    for (std::size_t i = 0; i < ref.solution.size(); ++i)
      EXPECT_DOUBLE_EQ(res->solution[i], ref.solution[i]);
  }
}

TEST(PlanCache, HypreAndStandardIgnoreTheCache) {
  auto dh = small_dist(8);
  PlanCache cache;
  measure_protocol(dh, Protocol::hypre, cached_cfg(&cache));
  measure_protocol(dh, Protocol::neighbor_standard, cached_cfg(&cache));
  EXPECT_EQ(cache.hits(), 0);
  EXPECT_EQ(cache.misses(), 0);
  EXPECT_EQ(cache.size(), 0u);
}
