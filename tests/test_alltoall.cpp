/// \file test_alltoall.cpp
/// \brief End-to-end verification of the dense persistent alltoall{,v}
/// collectives (mpix/alltoall.hpp): byte-exact delivery of all three
/// methods against a host-side reference on uniform and ragged patterns,
/// bit-identical results across engine widths, exact network message
/// counts, plan feedback/caching, and argument validation.

#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <utility>

#include "harness/exchange.hpp"
#include "mpix/alltoall.hpp"
#include "pattern_util.hpp"
#include "simmpi/coll.hpp"

using namespace simmpi;
using namespace mpix;

namespace {

/// A dense pattern, globally specified: counts[src][dst] values (of
/// `element_size` bytes each) from every src to every dst.
struct DenseSpec {
  int nranks = 0;
  std::size_t element_size = 8;
  std::vector<std::vector<int>> counts;
};

DenseSpec uniform_spec(int nranks, int count, std::size_t es) {
  DenseSpec s{nranks, es, {}};
  s.counts.assign(nranks, std::vector<int>(nranks, count));
  return s;
}

/// Ragged pattern: ~30% zero segments, the rest 1-4 values.
DenseSpec ragged_spec(int nranks, unsigned seed, std::size_t es) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> pct(0, 9);
  std::uniform_int_distribution<int> cnt(1, 4);
  DenseSpec s{nranks, es, {}};
  s.counts.assign(nranks, std::vector<int>(nranks, 0));
  for (int src = 0; src < nranks; ++src)
    for (int dst = 0; dst < nranks; ++dst)
      if (pct(rng) >= 3) s.counts[src][dst] = cnt(rng);
  return s;
}

/// Deterministic payload byte: byte `b` of value `k` of segment src->dst
/// at iteration `iter`.
std::byte pbyte(int src, int dst, long k, std::size_t b, int iter) {
  return static_cast<std::byte>((src * 163 + dst * 41 + k * 11 +
                                 static_cast<long>(b) * 3 + iter * 29) &
                                0xff);
}

/// Rank-local argument storage for one spec.
struct RankDense {
  std::vector<int> sendcounts, sdispls, recvcounts, rdispls;
  std::vector<std::byte> sendbuf, recvbuf, expected;

  RankDense(const DenseSpec& s, int r) {
    const int p = s.nranks;
    sendcounts.resize(p);
    sdispls.resize(p);
    recvcounts.resize(p);
    rdispls.resize(p);
    int sacc = 0, racc = 0;
    for (int q = 0; q < p; ++q) {
      sdispls[q] = sacc;
      sendcounts[q] = s.counts[r][q];
      sacc += sendcounts[q];
      rdispls[q] = racc;
      recvcounts[q] = s.counts[q][r];
      racc += recvcounts[q];
    }
    sendbuf.resize(static_cast<std::size_t>(sacc) * s.element_size);
    recvbuf.resize(static_cast<std::size_t>(racc) * s.element_size);
    expected.resize(recvbuf.size());
  }

  /// Refresh sendbuf and the expected recvbuf for an iteration number.
  void fill(const DenseSpec& s, int r, int iter) {
    const std::size_t es = s.element_size;
    for (int q = 0; q < s.nranks; ++q) {
      for (int k = 0; k < sendcounts[q]; ++k)
        for (std::size_t b = 0; b < es; ++b)
          sendbuf[(static_cast<std::size_t>(sdispls[q]) + k) * es + b] =
              pbyte(r, q, k, b, iter);
      for (int k = 0; k < recvcounts[q]; ++k)
        for (std::size_t b = 0; b < es; ++b)
          expected[(static_cast<std::size_t>(rdispls[q]) + k) * es + b] =
              pbyte(q, r, k, b, iter);
    }
  }

  AlltoallvArgs args(const DenseSpec& s) {
    AlltoallvArgs a;
    a.sendbuf = sendbuf;
    a.sendcounts = sendcounts;
    a.sdispls = sdispls;
    a.recvbuf = recvbuf;
    a.recvcounts = recvcounts;
    a.rdispls = rdispls;
    a.element_size = s.element_size;
    return a;
  }
};

struct DenseRun {
  std::vector<std::vector<std::byte>> recv;  ///< last-iteration recvbuf
  std::vector<NeighborStats> stats;
};

Machine machine_of(int nodes, int rpn) {
  return Machine(
      {.num_nodes = nodes, .regions_per_node = 1, .ranks_per_region = rpn});
}

/// Run one method over the full machine at the given engine width; verify
/// delivery against the host reference every iteration.
DenseRun run_dense(const DenseSpec& s, int nodes, int rpn,
                   AlltoallMethod method, int width, int iters = 2) {
  Engine eng(machine_of(nodes, rpn), CostParams::lassen(),
             Engine::Options{.threads = width});
  DenseRun out;
  out.recv.resize(s.nranks);
  out.stats.resize(s.nranks);
  eng.run([&](Context& ctx) -> Task<> {
    const int r = ctx.rank();
    RankDense a(s, r);
    AlltoallvArgs args = a.args(s);
    auto coll = co_await alltoallv_init(ctx, ctx.world(), args, method);
    out.stats[r] = coll->stats();
    pattern::verify_stats(out.stats[r]);
    for (int it = 0; it < iters; ++it) {
      a.fill(s, r, it);
      std::fill(a.recvbuf.begin(), a.recvbuf.end(), std::byte{0xee});
      co_await coll->start(ctx);
      co_await coll->wait(ctx);
      EXPECT_EQ(std::memcmp(a.recvbuf.data(), a.expected.data(),
                            a.recvbuf.size()),
                0)
          << coll->name() << " rank " << r << " iter " << it;
    }
    out.recv[r] = a.recvbuf;
    co_return;
  });
  return out;
}

using pattern::sum_global_msgs;
using pattern::sum_global_values;

}  // namespace

// ---------------------------------------------------------------------------
// Randomized property sweep: machines x seeds, int-sized and 12-byte
// elements.  Every method must deliver the reference bytes, widths 1 and 4
// must agree bit-for-bit, and the aggregated methods must not exceed the
// standard method's per-value network traffic invariants.
// ---------------------------------------------------------------------------
class DenseProperty
    : public ::testing::TestWithParam<
          std::tuple<std::pair<int, int>, unsigned>> {};

INSTANTIATE_TEST_SUITE_P(
    MachinesAndSeeds, DenseProperty,
    ::testing::Combine(::testing::Values(std::pair{1, 4}, std::pair{2, 4},
                                         std::pair{4, 2}, std::pair{3, 3}),
                       ::testing::Values(1u, 2u)),
    [](const auto& info) {
      return "n" + std::to_string(std::get<0>(info.param).first) + "r" +
             std::to_string(std::get<0>(info.param).second) + "s" +
             std::to_string(std::get<1>(info.param));
    });

TEST_P(DenseProperty, AllMethodsDeliverIdenticalPayloadsAtAllWidths) {
  const auto [shape, seed] = GetParam();
  const auto [nodes, rpn] = shape;
  const int nranks = nodes * rpn;
  for (std::size_t es : {std::size_t{4}, std::size_t{12}}) {
    DenseSpec s = ragged_spec(nranks, seed, es);
    DenseRun std1 = run_dense(s, nodes, rpn, AlltoallMethod::standard, 1);
    for (AlltoallMethod m :
         {AlltoallMethod::node_aggregated, AlltoallMethod::bruck}) {
      DenseRun w1 = run_dense(s, nodes, rpn, m, 1);
      DenseRun w4 = run_dense(s, nodes, rpn, m, 4);
      for (int r = 0; r < nranks; ++r) {
        EXPECT_EQ(w1.recv[r], std1.recv[r])
            << to_string(m) << " vs standard, rank " << r << " es " << es;
        EXPECT_EQ(w1.recv[r], w4.recv[r])
            << to_string(m) << " width 1 vs 4, rank " << r << " es " << es;
      }
      // Aggregation never moves more values across region boundaries than
      // exist (forwarding through intermediate regions may duplicate for
      // bruck, but node_aggregated must match standard exactly).
      if (m == AlltoallMethod::node_aggregated) {
        EXPECT_EQ(sum_global_values(w1.stats),
                  sum_global_values(std1.stats));
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Exact network message counts on uniform patterns (the crossover
// acceptance numbers): standard P^2 - sum |region|^2, node_aggregated
// R(R-1), bruck R * ceil(log2 R).
// ---------------------------------------------------------------------------
TEST(DenseCounts, TwoRegionsOfFour) {
  DenseSpec s = uniform_spec(8, 3, 8);
  EXPECT_EQ(sum_global_msgs(
                run_dense(s, 2, 4, AlltoallMethod::standard, 1).stats),
            32);  // 64 - 2*16
  EXPECT_EQ(sum_global_msgs(
                run_dense(s, 2, 4, AlltoallMethod::node_aggregated, 1).stats),
            2);  // R(R-1) = 2*1
  EXPECT_EQ(
      sum_global_msgs(run_dense(s, 2, 4, AlltoallMethod::bruck, 1).stats),
      2);  // R*ceil(log2 R) = 2*1
}

TEST(DenseCounts, FourRegionsOfTwo) {
  DenseSpec s = uniform_spec(8, 2, 8);
  EXPECT_EQ(sum_global_msgs(
                run_dense(s, 4, 2, AlltoallMethod::standard, 1).stats),
            48);  // 64 - 4*4
  EXPECT_EQ(sum_global_msgs(
                run_dense(s, 4, 2, AlltoallMethod::node_aggregated, 1).stats),
            12);  // R(R-1) = 4*3
  EXPECT_EQ(
      sum_global_msgs(run_dense(s, 4, 2, AlltoallMethod::bruck, 1).stats),
      8);  // R*ceil(log2 R) = 4*2
}

// ---------------------------------------------------------------------------
// Degenerate shapes.
// ---------------------------------------------------------------------------
TEST(DenseShapes, SelfOnlyTrafficCrossesNoRegionBoundary) {
  DenseSpec s{6, 8, {}};
  s.counts.assign(6, std::vector<int>(6, 0));
  for (int r = 0; r < 6; ++r) s.counts[r][r] = 2;
  for (AlltoallMethod m : kAllAlltoallMethods) {
    DenseRun run = run_dense(s, 2, 3, m, 1);
    EXPECT_EQ(sum_global_values(run.stats), 0) << to_string(m);
  }
}

TEST(DenseShapes, AllZeroCountsWork) {
  DenseSpec s{8, 8, {}};
  s.counts.assign(8, std::vector<int>(8, 0));
  for (AlltoallMethod m : kAllAlltoallMethods) {
    DenseRun run = run_dense(s, 2, 4, m, 1);
    EXPECT_EQ(sum_global_values(run.stats), 0) << to_string(m);
  }
}

TEST(DenseShapes, OneRankRegionsDegenerateGracefully) {
  // Region size 1: every rank is its own leader; the aggregated methods
  // must still deliver (bruck degenerates to pure log-P Bruck).
  DenseSpec s = ragged_spec(6, 5, 8);
  DenseRun std1 = run_dense(s, 6, 1, AlltoallMethod::standard, 1);
  for (AlltoallMethod m :
       {AlltoallMethod::node_aggregated, AlltoallMethod::bruck}) {
    DenseRun run = run_dense(s, 6, 1, m, 1);
    for (int r = 0; r < 6; ++r)
      EXPECT_EQ(run.recv[r], std1.recv[r]) << to_string(m) << " rank " << r;
  }
}

TEST(DenseShapes, SubcommunicatorWithUnevenRegions) {
  // 8-rank machine (2 regions of 4); the collective runs on a 7-rank
  // subcommunicator spanning region sizes {4, 3} — PPN does not divide
  // the communicator size.
  const DenseSpec s = ragged_spec(7, 9, 8);
  for (AlltoallMethod m : kAllAlltoallMethods) {
    for (int width : {1, 4}) {
      Engine eng(machine_of(2, 4), CostParams::lassen(),
                 Engine::Options{.threads = width});
      eng.run([&](Context& ctx) -> Task<> {
        const int wr = ctx.rank();
        Comm sub = co_await coll::comm_split(ctx, ctx.world(),
                                             wr < 7 ? 0 : 1, wr);
        if (wr >= 7) co_return;
        RankDense a(s, sub.rank());
        AlltoallvArgs args = a.args(s);
        auto coll = co_await alltoallv_init(ctx, sub, args, m);
        pattern::verify_stats(coll->stats());
        for (int it = 0; it < 2; ++it) {
          a.fill(s, sub.rank(), it);
          std::fill(a.recvbuf.begin(), a.recvbuf.end(), std::byte{0xee});
          co_await coll->start(ctx);
          co_await coll->wait(ctx);
          EXPECT_EQ(std::memcmp(a.recvbuf.data(), a.expected.data(),
                                a.recvbuf.size()),
                    0)
              << to_string(m) << " rank " << wr << " iter " << it;
        }
        co_return;
      });
    }
  }
}

// ---------------------------------------------------------------------------
// The uniform wrapper and the v-interface must agree.
// ---------------------------------------------------------------------------
TEST(DenseUniform, AlltoallMatchesAlltoallv) {
  const int p = 8, count = 2;
  const std::size_t es = 8;
  const DenseSpec s = uniform_spec(p, count, es);
  DenseRun ref = run_dense(s, 2, 4, AlltoallMethod::bruck, 1);

  Engine eng(machine_of(2, 4), CostParams::lassen());
  eng.run([&](Context& ctx) -> Task<> {
    const int r = ctx.rank();
    RankDense a(s, r);
    auto coll = co_await alltoall_init(
        ctx, ctx.world(), std::span<const std::byte>(a.sendbuf),
        std::span<std::byte>(a.recvbuf), count, es, AlltoallMethod::bruck);
    a.fill(s, r, /*iter=*/1);  // run_dense's last iteration
    co_await coll->start(ctx);
    co_await coll->wait(ctx);
    EXPECT_EQ(a.recvbuf, ref.recv[r]) << "rank " << r;
    co_return;
  });
}

TEST(DenseUniform, WrapperValidatesBufferSizes) {
  Engine eng(machine_of(1, 4), CostParams::lassen());
  EXPECT_THROW(
      eng.run([&](Context& ctx) -> Task<> {
        std::vector<std::byte> send(4 * 2 * 8), recv(4 * 2 * 8 - 8);
        co_await alltoall_init(ctx, ctx.world(),
                               std::span<const std::byte>(send),
                               std::span<std::byte>(recv), 2, 8,
                               AlltoallMethod::standard);
      }),
      SimError);
}

// ---------------------------------------------------------------------------
// Plan feedback and the shared PlanCache.
// ---------------------------------------------------------------------------
TEST(DensePlan, PlanFeedbackReproducesDelivery) {
  const DenseSpec s = ragged_spec(8, 3, 8);
  for (AlltoallMethod m :
       {AlltoallMethod::node_aggregated, AlltoallMethod::bruck}) {
    std::vector<std::shared_ptr<const PlanBase>> plans(8);
    std::vector<NeighborStats> cold(8);
    std::vector<std::vector<std::byte>> cold_recv(8);
    {
      Engine eng(machine_of(2, 4), CostParams::lassen());
      eng.run([&](Context& ctx) -> Task<> {
        const int r = ctx.rank();
        RankDense a(s, r);
        AlltoallvArgs args = a.args(s);
        auto coll = co_await alltoallv_init(ctx, ctx.world(), args, m);
        cold[r] = coll->stats();
        plans[r] = coll->plan_base();
        a.fill(s, r, 0);
        co_await coll->start(ctx);
        co_await coll->wait(ctx);
        cold_recv[r] = a.recvbuf;
        co_return;
      });
    }
    // Plans are engine-free: a fresh engine run binds them without any
    // setup communication and reproduces stats and delivery.
    Engine eng(machine_of(2, 4), CostParams::lassen());
    eng.run([&](Context& ctx) -> Task<> {
      const int r = ctx.rank();
      RankDense a(s, r);
      AlltoallvArgs args = a.args(s);
      Options mopts;
      mopts.plan = plans[r].get();
      auto coll = co_await alltoallv_init(ctx, ctx.world(), args, m, mopts);
      EXPECT_EQ(coll->stats().global_msgs, cold[r].global_msgs);
      EXPECT_EQ(coll->stats().global_values, cold[r].global_values);
      a.fill(s, r, 0);
      co_await coll->start(ctx);
      co_await coll->wait(ctx);
      EXPECT_EQ(a.recvbuf, cold_recv[r]) << to_string(m) << " rank " << r;
      co_return;
    });
  }
}

TEST(DensePlan, WrongPlanKindRejected) {
  const DenseSpec s = uniform_spec(4, 1, 8);
  // Build one plan of each kind, then feed each where it does not belong.
  std::shared_ptr<const PlanBase> agg, bru;
  {
    Engine eng(machine_of(2, 2), CostParams::lassen());
    eng.run([&](Context& ctx) -> Task<> {
      RankDense a(s, ctx.rank());
      AlltoallvArgs args = a.args(s);
      auto p1 = co_await make_alltoall_plan(ctx, ctx.world(), args,
                                            AlltoallMethod::node_aggregated);
      auto p2 = co_await make_alltoall_plan(ctx, ctx.world(), args,
                                            AlltoallMethod::bruck);
      if (ctx.rank() == 0) {
        agg = p1;
        bru = p2;
      }
      co_return;
    });
  }
  ASSERT_NE(agg, nullptr);
  ASSERT_NE(bru, nullptr);
  struct Case {
    const PlanBase* plan;
    AlltoallMethod method;
  };
  const Case cases[] = {
      {bru.get(), AlltoallMethod::node_aggregated},
      {agg.get(), AlltoallMethod::bruck},
      {agg.get(), AlltoallMethod::standard},
  };
  for (const Case& c : cases) {
    Engine eng(machine_of(2, 2), CostParams::lassen());
    EXPECT_THROW(eng.run([&](Context& ctx) -> Task<> {
                   RankDense a(s, ctx.rank());
                   AlltoallvArgs args = a.args(s);
                   Options mopts;
                   mopts.plan = c.plan;
                   co_await alltoallv_init(ctx, ctx.world(), args, c.method,
                                           mopts);
                 }),
                 SimError)
        << to_string(c.method);
  }
}

TEST(DensePlan, StandardHasNoPlan) {
  const DenseSpec s = uniform_spec(4, 1, 8);
  Engine eng(machine_of(2, 2), CostParams::lassen());
  EXPECT_THROW(eng.run([&](Context& ctx) -> Task<> {
                 RankDense a(s, ctx.rank());
                 AlltoallvArgs args = a.args(s);
                 co_await make_alltoall_plan(ctx, ctx.world(), args,
                                             AlltoallMethod::standard);
               }),
               SimError);
}

TEST(DensePlan, PlanCacheResolvesKinds) {
  const DenseSpec s = uniform_spec(4, 1, 8);
  std::shared_ptr<const PlanBase> agg, bru;
  {
    Engine eng(machine_of(2, 2), CostParams::lassen());
    eng.run([&](Context& ctx) -> Task<> {
      RankDense a(s, ctx.rank());
      AlltoallvArgs args = a.args(s);
      auto p1 = co_await make_alltoall_plan(ctx, ctx.world(), args,
                                            AlltoallMethod::node_aggregated);
      auto p2 = co_await make_alltoall_plan(ctx, ctx.world(), args,
                                            AlltoallMethod::bruck);
      if (ctx.rank() == 0) {
        agg = p1;
        bru = p2;
      }
      co_return;
    });
  }
  harness::PlanCache cache;
  cache.put(1, 0, agg);
  cache.put(2, 0, bru);
  EXPECT_NE(cache.find<LocalityPlan>(1, 0), nullptr);
  EXPECT_NE(cache.find<BruckPlan>(2, 0), nullptr);
  // Wrong kind reads as absent (find_base still counts the hit).
  EXPECT_EQ(cache.find<BruckPlan>(1, 0), nullptr);
  EXPECT_EQ(cache.find<LocalityPlan>(2, 0), nullptr);
  EXPECT_NE(cache.find_base(1, 0), nullptr);
  EXPECT_EQ(cache.hits(), 5);
}

// ---------------------------------------------------------------------------
// Validation on the dense path.
// ---------------------------------------------------------------------------
TEST(DenseValidation, RaggedPayloadBufferRejected) {
  Engine eng(machine_of(1, 4), CostParams::lassen());
  EXPECT_THROW(
      eng.run([&](Context& ctx) -> Task<> {
        const DenseSpec s = uniform_spec(4, 1, 8);
        RankDense a(s, ctx.rank());
        AlltoallvArgs args = a.args(s);
        // 4 values of 8 bytes, minus a trailing half-element.
        args.sendbuf = args.sendbuf.first(args.sendbuf.size() - 4);
        co_await alltoallv_init(ctx, ctx.world(), args,
                                AlltoallMethod::bruck);
      }),
      SimError);
}

TEST(DenseValidation, WrongCountArityRejected) {
  Engine eng(machine_of(1, 4), CostParams::lassen());
  for (AlltoallMethod m : kAllAlltoallMethods) {
    EXPECT_THROW(
        eng.run([&](Context& ctx) -> Task<> {
          const DenseSpec s = uniform_spec(4, 1, 8);
          RankDense a(s, ctx.rank());
          AlltoallvArgs args = a.args(s);
          args.sendcounts.pop_back();  // 3 entries for a 4-rank comm
          args.sdispls.pop_back();
          co_await alltoallv_init(ctx, ctx.world(), args, m);
        }),
        SimError)
        << to_string(m);
  }
}
