/// \file test_hierarchy_cache.cpp
/// \brief HierarchyCache round-trip fidelity and rejection of bad files
/// (corruption, truncation, version and key mismatches).

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <vector>

#include "harness/hierarchy_cache.hpp"
#include "harness/measure.hpp"
#include "sparse/stencil.hpp"

namespace fs = std::filesystem;
using harness::HierarchyCache;

namespace {

/// Fresh scratch directory per test, removed on destruction.
struct TempDir {
  fs::path path;
  TempDir() {
    path = fs::temp_directory_path() /
           ("hier-cache-test-" + std::to_string(::getpid()) + "-" +
            std::to_string(counter()++));
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  static int& counter() {
    static int c = 0;
    return c;
  }
};

amg::DistHierarchy build_small(long rows = 512, int nranks = 8) {
  int nx = 0, ny = 0;
  sparse::factor_grid(rows, nx, ny);
  return amg::distribute_hierarchy(
      amg::Hierarchy::build(sparse::paper_problem(nx, ny)), nranks);
}

HierarchyCache::Key key_of(long rows = 512, int nranks = 8) {
  return HierarchyCache::Key{rows, nranks, amg::Options{}};
}

std::vector<char> slurp(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  return std::vector<char>((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
}

void spit(const fs::path& p, const std::vector<char>& bytes) {
  std::ofstream out(p, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

}  // namespace

TEST(HierarchyCache, RoundTripIsByteFaithful) {
  TempDir tmp;
  HierarchyCache cache(tmp.path);
  const amg::DistHierarchy dh = build_small();
  const auto key = key_of();

  EXPECT_FALSE(cache.load(key).has_value());  // cold
  ASSERT_TRUE(cache.store(key, dh));
  ASSERT_TRUE(fs::exists(cache.path_of(key)));

  auto loaded = cache.load(key);
  ASSERT_TRUE(loaded.has_value());
  // Defaulted deep equality over every level: operators, halos, transfer
  // operators, permutations — all values restored exactly (raw IEEE
  // doubles, no text round-trip).
  EXPECT_EQ(*loaded, dh);
  EXPECT_EQ(cache.hits(), 1);
  EXPECT_EQ(cache.misses(), 1);
}

TEST(HierarchyCache, DistinctKeysGetDistinctFiles) {
  TempDir tmp;
  HierarchyCache cache(tmp.path);
  EXPECT_NE(cache.path_of(key_of(512, 8)), cache.path_of(key_of(512, 16)));
  EXPECT_NE(cache.path_of(key_of(512, 8)), cache.path_of(key_of(1024, 8)));
  auto opts = key_of();
  opts.opts.strength_theta = 0.5;
  EXPECT_NE(cache.path_of(key_of()), cache.path_of(opts));
}

TEST(HierarchyCache, CorruptPayloadIsRejected) {
  TempDir tmp;
  HierarchyCache cache(tmp.path);
  const auto key = key_of();
  ASSERT_TRUE(cache.store(key, build_small()));

  auto bytes = slurp(cache.path_of(key));
  ASSERT_GT(bytes.size(), 256u);
  bytes[bytes.size() / 2] ^= 0x40;  // flip one payload bit
  spit(cache.path_of(key), bytes);
  EXPECT_FALSE(cache.load(key).has_value())
      << "checksum must reject a corrupted payload";
}

TEST(HierarchyCache, TruncatedFileIsRejected) {
  TempDir tmp;
  HierarchyCache cache(tmp.path);
  const auto key = key_of();
  ASSERT_TRUE(cache.store(key, build_small()));

  auto bytes = slurp(cache.path_of(key));
  bytes.resize(bytes.size() / 2);
  spit(cache.path_of(key), bytes);
  EXPECT_FALSE(cache.load(key).has_value());

  spit(cache.path_of(key), {});  // zero-length file
  EXPECT_FALSE(cache.load(key).has_value());
}

TEST(HierarchyCache, VersionMismatchIsRejected) {
  TempDir tmp;
  HierarchyCache cache(tmp.path);
  const auto key = key_of();
  ASSERT_TRUE(cache.store(key, build_small()));

  auto bytes = slurp(cache.path_of(key));
  // The u32 format version sits right after the u64 magic.
  ASSERT_GE(bytes.size(), 12u);
  bytes[8] = static_cast<char>(HierarchyCache::kFormatVersion + 1);
  spit(cache.path_of(key), bytes);
  EXPECT_FALSE(cache.load(key).has_value());
}

TEST(HierarchyCache, KeyMismatchIsRejected) {
  TempDir tmp;
  HierarchyCache cache(tmp.path);
  const auto key = key_of();
  ASSERT_TRUE(cache.store(key, build_small()));

  // A file renamed onto another key's address must not satisfy that key:
  // the header carries the true key and is re-validated on load.
  const auto other = key_of(512, 16);
  fs::copy_file(cache.path_of(key), cache.path_of(other));
  EXPECT_FALSE(cache.load(other).has_value());
}

TEST(HierarchyCache, EvictionEnforcesMaxBytes) {
  TempDir tmp;
  const amg::DistHierarchy dh8 = build_small(512, 8);
  const amg::DistHierarchy dh16 = build_small(512, 16);

  // Probe one entry's on-disk size with an uncapped cache.
  HierarchyCache probe(tmp.path);
  ASSERT_TRUE(probe.store(key_of(512, 8), dh8));
  const auto entry_size = fs::file_size(probe.path_of(key_of(512, 8)));
  fs::remove(probe.path_of(key_of(512, 8)));

  // Cap below two entries: storing a second key must evict the oldest.
  HierarchyCache cache(tmp.path, entry_size + entry_size / 2);
  ASSERT_TRUE(cache.store(key_of(512, 8), dh8));
  ASSERT_TRUE(cache.store(key_of(512, 16), dh16));
  EXPECT_FALSE(fs::exists(cache.path_of(key_of(512, 8))))
      << "oldest entry must be evicted once the cap is exceeded";
  EXPECT_TRUE(fs::exists(cache.path_of(key_of(512, 16))));
  EXPECT_TRUE(cache.load(key_of(512, 16)).has_value());
}

TEST(HierarchyCache, EvictionNeverRemovesJustWrittenEntry) {
  TempDir tmp;
  const amg::DistHierarchy dh = build_small();
  // Cap below any single entry: the store must still land and survive its
  // own eviction pass (evicting the just-written file would make every
  // store a no-op and the caller would rebuild forever).
  HierarchyCache cache(tmp.path, 1);
  ASSERT_TRUE(cache.store(key_of(), dh));
  EXPECT_TRUE(fs::exists(cache.path_of(key_of())));
  auto loaded = cache.load(key_of());
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, dh);
}

TEST(HierarchyCache, PaperDistHierarchyPopulatesGlobalCache) {
  // The global() instance honors COLLOM_HIER_CACHE_DIR; exercised through
  // the paper_dist_hierarchy thin lookup only when this process has not
  // already resolved the global instance — so spawn the check here first.
  TempDir tmp;
  ::setenv("COLLOM_HIER_CACHE_DIR", tmp.path.c_str(), 1);
  HierarchyCache* global = HierarchyCache::global();
  ::unsetenv("COLLOM_HIER_CACHE_DIR");
  if (global == nullptr || global->dir() != tmp.path)
    GTEST_SKIP() << "global cache already resolved elsewhere in-process";

  (void)harness::paper_dist_hierarchy(512, 8);
  EXPECT_TRUE(fs::exists(global->path_of(key_of(512, 8))));
  // A fresh cache instance over the same directory loads what the memoized
  // build stored.
  HierarchyCache reader(tmp.path);
  auto loaded = reader.load(key_of(512, 8));
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, harness::paper_dist_hierarchy(512, 8));
}
