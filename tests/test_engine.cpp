/// \file test_engine.cpp
/// \brief Engine scheduling, p2p semantics, virtual clocks, determinism.

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "simmpi/engine.hpp"

using namespace simmpi;

namespace {

Engine make_engine(int nodes, int rpn, CostParams p = CostParams::lassen()) {
  return Engine(
      Machine({.num_nodes = nodes, .regions_per_node = 1,
               .ranks_per_region = rpn}),
      p);
}

template <class T>
std::span<const std::byte> bytes_of(const std::vector<T>& v) {
  return std::as_bytes(std::span<const T>(v.data(), v.size()));
}
template <class T>
std::span<std::byte> writable_bytes_of(std::vector<T>& v) {
  return std::as_writable_bytes(std::span<T>(v.data(), v.size()));
}

}  // namespace

TEST(Engine, PingPongDeliversPayload) {
  Engine eng = make_engine(2, 1);
  std::vector<double> got(3, 0.0);
  eng.run([&](Context& ctx) -> Task<> {
    if (ctx.rank() == 0) {
      std::vector<double> data{1.5, -2.0, 3.25};
      auto s = Request::send(ctx.world(), bytes_of(data), 1, 7);
      s.start(ctx);
      co_await ctx.wait(s);
    } else {
      auto r = Request::recv(ctx.world(), writable_bytes_of(got), 0, 7);
      r.start(ctx);
      co_await ctx.wait(r);
      EXPECT_EQ(r.received_bytes(), 3 * sizeof(double));
    }
  });
  EXPECT_DOUBLE_EQ(got[0], 1.5);
  EXPECT_DOUBLE_EQ(got[1], -2.0);
  EXPECT_DOUBLE_EQ(got[2], 3.25);
}

TEST(Engine, RecvBeforeSendParksAndWakes) {
  // Rank 1 waits before rank 0 sends: the scheduler must park rank 1 and
  // wake it when the message is posted.
  Engine eng = make_engine(2, 1);
  int value = 0;
  eng.run([&](Context& ctx) -> Task<> {
    if (ctx.rank() == 1) {
      auto r = Request::recv(
          ctx.world(),
          std::as_writable_bytes(std::span<int>(&value, 1)), 0, 0);
      r.start(ctx);
      co_await ctx.wait(r);
    } else {
      ctx.compute(1.0);  // rank 0 is "slow"
      int v = 42;
      auto s = Request::send(ctx.world(),
                             std::as_bytes(std::span<const int>(&v, 1)), 1, 0);
      s.start(ctx);
      co_await ctx.wait(s);
    }
  });
  EXPECT_EQ(value, 42);
  // Receiver clock must reflect the sender's late departure.
  EXPECT_GE(eng.clock(1), 1.0);
}

TEST(Engine, FifoOrderingPerChannel) {
  Engine eng = make_engine(2, 1);
  std::vector<int> got;
  eng.run([&](Context& ctx) -> Task<> {
    if (ctx.rank() == 0) {
      for (int i = 0; i < 5; ++i) {
        int v = i * 10;
        auto s = Request::send(
            ctx.world(), std::as_bytes(std::span<const int>(&v, 1)), 1, 3);
        s.start(ctx);
        co_await ctx.wait(s);
      }
    } else {
      for (int i = 0; i < 5; ++i) {
        int v = -1;
        auto r = Request::recv(
            ctx.world(), std::as_writable_bytes(std::span<int>(&v, 1)), 0, 3);
        r.start(ctx);
        co_await ctx.wait(r);
        got.push_back(v);
      }
    }
  });
  EXPECT_EQ(got, (std::vector<int>{0, 10, 20, 30, 40}));
}

TEST(Engine, TagsIsolateChannels) {
  Engine eng = make_engine(2, 1);
  int a = 0, b = 0;
  eng.run([&](Context& ctx) -> Task<> {
    if (ctx.rank() == 0) {
      int x = 1, y = 2;
      auto s1 = Request::send(ctx.world(),
                              std::as_bytes(std::span<const int>(&x, 1)), 1, 5);
      auto s2 = Request::send(ctx.world(),
                              std::as_bytes(std::span<const int>(&y, 1)), 1, 6);
      s1.start(ctx);
      s2.start(ctx);
      co_await ctx.wait(s1);
      co_await ctx.wait(s2);
    } else {
      // Receive in reverse tag order: matching must be by tag, not arrival.
      auto r2 = Request::recv(ctx.world(),
                              std::as_writable_bytes(std::span<int>(&b, 1)), 0,
                              6);
      r2.start(ctx);
      co_await ctx.wait(r2);
      auto r1 = Request::recv(ctx.world(),
                              std::as_writable_bytes(std::span<int>(&a, 1)), 0,
                              5);
      r1.start(ctx);
      co_await ctx.wait(r1);
    }
  });
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 2);
}

TEST(Engine, PersistentRequestRestart) {
  Engine eng = make_engine(2, 1);
  std::vector<int> got;
  eng.run([&](Context& ctx) -> Task<> {
    int buf = 0;
    if (ctx.rank() == 0) {
      auto s = Request::send(ctx.world(),
                             std::as_bytes(std::span<const int>(&buf, 1)), 1,
                             0);
      for (int i = 0; i < 4; ++i) {
        buf = i;  // persistent requests re-read the registered buffer
        s.start(ctx);
        co_await ctx.wait(s);
      }
    } else {
      auto r = Request::recv(ctx.world(),
                             std::as_writable_bytes(std::span<int>(&buf, 1)),
                             0, 0);
      for (int i = 0; i < 4; ++i) {
        r.start(ctx);
        co_await ctx.wait(r);
        got.push_back(buf);
      }
    }
  });
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3}));
}

TEST(Engine, StartOnActiveRequestThrows) {
  Engine eng = make_engine(2, 1);
  EXPECT_THROW(
      eng.run([&](Context& ctx) -> Task<> {
        if (ctx.rank() == 1) {
          auto r = Request::recv(ctx.world(), {}, 0, 0);
          r.start(ctx);
          r.start(ctx);  // error: already active
        } else {
          auto s = Request::send(ctx.world(), {}, 1, 0);
          s.start(ctx);
          co_await ctx.wait(s);
        }
        co_return;
      }),
      SimError);
}

TEST(Engine, DeadlockIsDetected) {
  Engine eng = make_engine(2, 1);
  EXPECT_THROW(eng.run([&](Context& ctx) -> Task<> {
                 // Both ranks wait for a message nobody sends.
                 auto r = Request::recv(ctx.world(), {}, 1 - ctx.rank(), 9);
                 r.start(ctx);
                 co_await ctx.wait(r);
               }),
               SimError);
}

TEST(Engine, UnreceivedMessageIsAnError) {
  Engine eng = make_engine(2, 1);
  EXPECT_THROW(eng.run([&](Context& ctx) -> Task<> {
                 if (ctx.rank() == 0) {
                   auto s = Request::send(ctx.world(), {}, 1, 0);
                   s.start(ctx);
                   co_await ctx.wait(s);
                 }
                 co_return;
               }),
               SimError);
}

TEST(Engine, TruncationIsAnError) {
  Engine eng = make_engine(2, 1);
  EXPECT_THROW(
      eng.run([&](Context& ctx) -> Task<> {
        if (ctx.rank() == 0) {
          std::vector<int> data{1, 2, 3, 4};
          auto s = Request::send(ctx.world(), bytes_of(data), 1, 0);
          s.start(ctx);
          co_await ctx.wait(s);
        } else {
          std::vector<int> small(1);
          auto r =
              Request::recv(ctx.world(), writable_bytes_of(small), 0, 0);
          r.start(ctx);
          co_await ctx.wait(r);
        }
      }),
      SimError);
}

TEST(Engine, RankExceptionPropagates) {
  Engine eng = make_engine(2, 1);
  EXPECT_THROW(eng.run([&](Context& ctx) -> Task<> {
                 if (ctx.rank() == 0)
                   throw std::runtime_error("rank failure");
                 co_return;
               }),
               std::runtime_error);
}

TEST(Engine, ClockAdvancesWithComputeAndMessages) {
  Engine eng = make_engine(2, 1);
  eng.run([&](Context& ctx) -> Task<> {
    EXPECT_DOUBLE_EQ(ctx.now(), 0.0);
    ctx.compute(0.5);
    EXPECT_DOUBLE_EQ(ctx.now(), 0.5);
    co_return;
  });
}

TEST(Engine, NetworkMessageSlowerThanRegionMessage) {
  // Same payload: network delivery must complete later than intra-region.
  auto elapsed = [](int nodes, int rpn) {
    Engine eng(Machine({.num_nodes = nodes, .regions_per_node = 1,
                        .ranks_per_region = rpn}),
               CostParams::lassen());
    eng.run([&](Context& ctx) -> Task<> {
      std::vector<double> buf(512);
      if (ctx.rank() == 0) {
        auto s = Request::send(
            ctx.world(),
            std::as_bytes(std::span<const double>(buf.data(), buf.size())), 1,
            0);
        s.start(ctx);
        co_await ctx.wait(s);
      } else if (ctx.rank() == 1) {
        auto r = Request::recv(
            ctx.world(),
            std::as_writable_bytes(std::span<double>(buf.data(), buf.size())),
            0, 0);
        r.start(ctx);
        co_await ctx.wait(r);
      }
      co_return;
    });
    return eng.clock(1);
  };
  const double intra = elapsed(1, 2);    // ranks 0,1 same region
  const double inter = elapsed(2, 1);    // ranks 0,1 different nodes
  EXPECT_LT(intra, inter);
}

TEST(Engine, InjectionCapSerializesSimultaneousSenders) {
  // 8 ranks on one node each send a large message to a different node.
  // With the cap, the last arrival is later than without.
  auto last_clock = [](bool cap) {
    CostParams p = CostParams::lassen();
    p.use_injection_cap = cap;
    Engine eng(Machine({.num_nodes = 2, .regions_per_node = 1,
                        .ranks_per_region = 8}),
               p);
    eng.run([&](Context& ctx) -> Task<> {
      const int half = 8;
      std::vector<double> buf(1 << 14);
      if (ctx.rank() < half) {
        auto s = Request::send(
            ctx.world(),
            std::as_bytes(std::span<const double>(buf.data(), buf.size())),
            ctx.rank() + half, 0);
        s.start(ctx);
        co_await ctx.wait(s);
      } else {
        auto r = Request::recv(
            ctx.world(),
            std::as_writable_bytes(std::span<double>(buf.data(), buf.size())),
            ctx.rank() - half, 0);
        r.start(ctx);
        co_await ctx.wait(r);
      }
    });
    return eng.max_clock();
  };
  EXPECT_GT(last_clock(true), last_clock(false));
}

TEST(Engine, StatsCountMessagesPerTier) {
  Engine eng(Machine({.num_nodes = 2, .regions_per_node = 1,
                      .ranks_per_region = 2}),
             CostParams::lassen());
  eng.run([&](Context& ctx) -> Task<> {
    // rank 0 sends to rank 1 (region) and rank 2 (network).
    if (ctx.rank() == 0) {
      std::vector<Request> reqs;
      reqs.push_back(Request::send(ctx.world(), {}, 1, 0));
      reqs.push_back(Request::send(ctx.world(), {}, 2, 0));
      for (auto& r : reqs) r.start(ctx);
      co_await ctx.wait_all(std::span<Request>(reqs));
    } else if (ctx.rank() <= 2) {
      auto r = Request::recv(ctx.world(), {}, 0, 0);
      r.start(ctx);
      co_await ctx.wait(r);
    }
  });
  const auto& s = eng.stats(0);
  EXPECT_EQ(s.tier[static_cast<int>(Locality::region)].msgs, 1u);
  EXPECT_EQ(s.tier[static_cast<int>(Locality::network)].msgs, 1u);
  EXPECT_EQ(s.total_msgs(), 2u);
  EXPECT_EQ(eng.max_msgs({Locality::region, Locality::network}), 2u);
}

TEST(Engine, DeterministicClocksAcrossRuns) {
  auto once = [] {
    Engine eng = make_engine(4, 4);
    eng.run([&](Context& ctx) -> Task<> {
      const int p = ctx.world().size();
      std::vector<double> v(64, ctx.rank());
      std::vector<double> in(64);
      const int dst = (ctx.rank() + 5) % p;
      const int src = (ctx.rank() - 5 + p) % p;
      auto s = Request::send(
          ctx.world(),
          std::as_bytes(std::span<const double>(v.data(), v.size())), dst, 1);
      auto r = Request::recv(
          ctx.world(),
          std::as_writable_bytes(std::span<double>(in.data(), in.size())), src,
          1);
      s.start(ctx);
      r.start(ctx);
      co_await ctx.wait(s);
      co_await ctx.wait(r);
      EXPECT_DOUBLE_EQ(in[0], src);
    });
    std::vector<double> clocks;
    for (int r = 0; r < eng.machine().num_ranks(); ++r)
      clocks.push_back(eng.clock(r));
    return clocks;
  };
  EXPECT_EQ(once(), once());
}

TEST(Engine, DynamicRecvCapturesPayload) {
  Engine eng = make_engine(2, 1);
  std::vector<int> got;
  eng.run([&](Context& ctx) -> Task<> {
    if (ctx.rank() == 0) {
      std::vector<int> data{7, 8, 9};
      auto s = Request::send(ctx.world(), bytes_of(data), 1, 0);
      s.start(ctx);
      co_await ctx.wait(s);
    } else {
      auto r = Request::recv_dyn(ctx.world(), 0, 0);
      r.start(ctx);
      co_await ctx.wait(r);
      auto payload = r.take_payload();
      got.resize(payload.size() / sizeof(int));
      std::memcpy(got.data(), payload.data(), payload.size());
    }
  });
  EXPECT_EQ(got, (std::vector<int>{7, 8, 9}));
}

TEST(Engine, SyncResetIsolatesMeasurementSections) {
  // Regression: heavy pre-reset network traffic (and the zero-byte barrier
  // messages of sync_reset itself, sent by ranks whose clocks are not yet
  // reset) must not leak into post-reset arrival times through the NIC
  // injection queue.
  Engine eng = make_engine(4, 4);
  std::vector<double> elapsed(16, 0.0);
  eng.run([&](Context& ctx) -> Task<> {
    const int p = ctx.world().size();
    std::vector<double> big(1 << 15);
    const int peer = (ctx.rank() + 5) % p;
    const int from = (ctx.rank() - 5 + p) % p;
    // Phase 1: heavy traffic, clocks end up ~milliseconds apart.
    auto s = Request::send(
        ctx.world(),
        std::as_bytes(std::span<const double>(big.data(), big.size())), peer,
        1);
    auto r = Request::recv(
        ctx.world(),
        std::as_writable_bytes(std::span<double>(big.data(), big.size())),
        from, 1);
    s.start(ctx);
    r.start(ctx);
    co_await ctx.wait(s);
    co_await ctx.wait(r);
    co_await ctx.engine().sync_reset(ctx);
    // Phase 2: a small exchange must now be microseconds, not inherit the
    // pre-reset queue state.
    std::vector<double> small(8);
    auto s2 = Request::send(
        ctx.world(),
        std::as_bytes(std::span<const double>(small.data(), small.size())),
        peer, 2);
    auto r2 = Request::recv(
        ctx.world(),
        std::as_writable_bytes(std::span<double>(small.data(), small.size())),
        from, 2);
    s2.start(ctx);
    r2.start(ctx);
    co_await ctx.wait(s2);
    co_await ctx.wait(r2);
    elapsed[ctx.rank()] = ctx.now();
    co_return;
  });
  for (double t : elapsed) {
    EXPECT_GT(t, 0.0);
    EXPECT_LT(t, 5e-5) << "stale NIC/clock state leaked across sync_reset";
  }
}

TEST(Engine, SyncResetZerosClocksAndStats) {
  Engine eng = make_engine(2, 2);
  eng.run([&](Context& ctx) -> Task<> {
    ctx.compute(1.0 + ctx.rank());
    co_await ctx.engine().sync_reset(ctx);
    EXPECT_DOUBLE_EQ(ctx.now(), 0.0);
    co_return;
  });
  for (int r = 0; r < 4; ++r) {
    EXPECT_DOUBLE_EQ(eng.clock(r), 0.0);
    EXPECT_EQ(eng.stats(r).total_msgs(), 0u);
  }
}
