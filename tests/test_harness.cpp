/// \file test_harness.cpp
/// \brief Integration tests: exchanges inside distributed SpMV, the
/// measurement runner's figure invariants, and the performance model.

#include <gtest/gtest.h>

#include <random>

#include "amg/solve.hpp"
#include "harness/dist_solve.hpp"
#include "harness/measure.hpp"
#include "model/perf_model.hpp"
#include "sparse/stencil.hpp"

using namespace harness;
using namespace simmpi;

namespace {

amg::DistHierarchy small_dist(int nranks, int nx = 32, int ny = 32) {
  static std::map<std::tuple<int, int, int>, amg::DistHierarchy> cache;
  auto key = std::make_tuple(nranks, nx, ny);
  auto it = cache.find(key);
  if (it == cache.end()) {
    amg::Hierarchy h = amg::Hierarchy::build(sparse::paper_problem(nx, ny));
    it = cache.emplace(key, amg::distribute_hierarchy(h, nranks)).first;
  }
  return it->second;
}

MeasureConfig small_cfg() {
  MeasureConfig cfg;
  cfg.ranks_per_region = 4;
  return cfg;
}

}  // namespace

class MeasureAllProtocols : public ::testing::TestWithParam<Protocol> {};
INSTANTIATE_TEST_SUITE_P(Protocols, MeasureAllProtocols,
                         ::testing::Values(Protocol::hypre,
                                           Protocol::neighbor_standard,
                                           Protocol::neighbor_partial,
                                           Protocol::neighbor_full),
                         [](const auto& info) {
                           switch (info.param) {
                             case Protocol::hypre: return "hypre";
                             case Protocol::neighbor_standard: return "std";
                             case Protocol::neighbor_partial: return "partial";
                             case Protocol::neighbor_full: return "full";
                           }
                           return "x";
                         });

TEST_P(MeasureAllProtocols, HaloPayloadVerifiedOnEveryLevel) {
  // measure_protocol internally throws if any delivered halo value is wrong.
  auto dh = small_dist(16);
  auto m = measure_protocol(dh, GetParam(), small_cfg());
  ASSERT_EQ(static_cast<int>(m.size()), dh.num_levels());
  for (const auto& lm : m) {
    EXPECT_GT(lm.rows, 0);
    EXPECT_GE(lm.start_wait_seconds, 0.0);
    EXPECT_GE(lm.init_seconds, 0.0);
  }
}

TEST(Measure, OptimizedReducesGlobalAndIncreasesLocalMessages) {
  // Figures 8/9 mechanism on a small machine.
  auto dh = small_dist(16);
  auto std_m = measure_protocol(dh, Protocol::neighbor_standard, small_cfg());
  auto opt_m = measure_protocol(dh, Protocol::neighbor_partial, small_cfg());
  long std_global = 0, opt_global = 0, std_local = 0, opt_local = 0;
  for (std::size_t l = 0; l < std_m.size(); ++l) {
    std_global += std_m[l].max_global_msgs;
    opt_global += opt_m[l].max_global_msgs;
    std_local += std_m[l].max_local_msgs;
    opt_local += opt_m[l].max_local_msgs;
    EXPECT_LE(opt_m[l].max_global_msgs,
              std::max<long>(std_m[l].max_global_msgs, 1))
        << "level " << l;
  }
  EXPECT_LT(opt_global, std_global);
  EXPECT_GT(opt_local, std_local);
}

TEST(Measure, DedupNeverIncreasesGlobalMessageSize) {
  // Figure 10 mechanism.
  auto dh = small_dist(16);
  auto partial = measure_protocol(dh, Protocol::neighbor_partial, small_cfg());
  auto full = measure_protocol(dh, Protocol::neighbor_full, small_cfg());
  bool strictly_smaller_somewhere = false;
  for (std::size_t l = 0; l < partial.size(); ++l) {
    EXPECT_LE(full[l].max_global_msg_values, partial[l].max_global_msg_values)
        << "level " << l;
    strictly_smaller_somewhere =
        strictly_smaller_somewhere ||
        full[l].max_global_msg_values < partial[l].max_global_msg_values;
  }
  EXPECT_TRUE(strictly_smaller_somewhere)
      << "dedup should shrink at least one level of the AMG hierarchy";
}

TEST(Measure, HypreAndStandardNeighborSendIdenticalMessages) {
  auto dh = small_dist(8);
  auto hyp = measure_protocol(dh, Protocol::hypre, small_cfg());
  auto stn = measure_protocol(dh, Protocol::neighbor_standard, small_cfg());
  for (std::size_t l = 0; l < hyp.size(); ++l) {
    EXPECT_EQ(hyp[l].max_global_msgs, stn[l].max_global_msgs);
    EXPECT_EQ(hyp[l].max_local_msgs, stn[l].max_local_msgs);
  }
}

TEST(Measure, GraphCreationHandshakeBeatsAllgather) {
  auto dh = small_dist(32);
  MeasureConfig cfg = small_cfg();
  const double heavy = measure_graph_creation(dh, GraphAlgo::allgather, cfg);
  const double light = measure_graph_creation(dh, GraphAlgo::handshake, cfg);
  EXPECT_LT(light, heavy);
  EXPECT_GT(light, 0.0);
}

TEST(Measure, CrossoverIterationsSolvesLinearInequality) {
  // opt: 10 + 1*k, base: 2 + 3*k  => equal at k=4, opt wins from k=5.
  EXPECT_EQ(crossover_iterations(2.0, 3.0, 10.0, 1.0), 5);
  // never crosses
  EXPECT_EQ(crossover_iterations(1.0, 1.0, 2.0, 2.0, 100), -1);
  // immediately cheaper
  EXPECT_EQ(crossover_iterations(5.0, 1.0, 1.0, 1.0), 0);
}

TEST(Measure, TotalTimeBestOfSelection) {
  std::vector<LevelMeasurement> a(3), b(3);
  a[0].start_wait_seconds = 1.0;
  a[1].start_wait_seconds = 5.0;
  a[2].start_wait_seconds = 2.0;
  b[0].start_wait_seconds = 2.0;
  b[1].start_wait_seconds = 1.0;
  b[2].start_wait_seconds = 2.0;
  EXPECT_DOUBLE_EQ(total_time(a), 8.0);
  EXPECT_DOUBLE_EQ(total_time(a, &b), 1.0 + 1.0 + 2.0);
}

TEST(Model, EstimateGrowsWithTraffic) {
  simmpi::CostModel cm(simmpi::CostParams::lassen());
  mpix::NeighborStats small{.local_msgs = 1,
                            .global_msgs = 1,
                            .local_values = 10,
                            .global_values = 10,
                            .max_global_msg_values = 10};
  mpix::NeighborStats big = small;
  big.global_msgs = 20;
  big.global_values = 500;
  EXPECT_LT(model::estimate_rank_time(cm, small),
            model::estimate_rank_time(cm, big));
}

TEST(Model, SelectorPrefersFewerGlobalMessages) {
  simmpi::CostModel cm(simmpi::CostParams::lassen());
  // Protocol 0: many tiny network messages.  Protocol 1: aggregated.
  std::vector<mpix::NeighborStats> noisy(4), agg(4);
  for (int r = 0; r < 4; ++r) {
    noisy[r] = {.local_msgs = 0,
                .global_msgs = 30,
                .local_values = 0,
                .global_values = 300,
                .max_global_msg_values = 10};
    agg[r] = {.local_msgs = 6,
              .global_msgs = 2,
              .local_values = 300,
              .global_values = 300,
              .max_global_msg_values = 150};
  }
  EXPECT_EQ(model::select_protocol(cm, {noisy, agg}), 1);
}

TEST(Model, EstimateCorrelatesWithMeasuredTimeAcrossLevels) {
  // For the standard protocol the postal estimate, fed the real per-level
  // message statistics, should rank levels roughly as the simulator does:
  // positive rank correlation across the hierarchy.
  auto dh = small_dist(32, 64, 64);
  MeasureConfig cfg = small_cfg();
  auto m = measure_protocol(dh, Protocol::neighbor_standard, cfg);
  simmpi::CostModel cm(cfg.cost);
  std::vector<double> measured, estimated;
  for (const auto& lm : m) {
    if (lm.max_global_msgs == 0) continue;  // noise-floor levels
    measured.push_back(lm.start_wait_seconds);
    estimated.push_back(model::estimate_rank_time(
        cm, mpix::NeighborStats{.local_msgs = lm.max_local_msgs,
                                .global_msgs = lm.max_global_msgs,
                                .local_values = lm.max_local_values,
                                .global_values = lm.max_global_values,
                                .max_global_msg_values =
                                    lm.max_global_msg_values}));
  }
  // Kendall-style concordance over all level pairs.
  int concordant = 0, discordant = 0;
  for (std::size_t a = 0; a < measured.size(); ++a)
    for (std::size_t b = a + 1; b < measured.size(); ++b) {
      const double dm = measured[a] - measured[b];
      const double de = estimated[a] - estimated[b];
      if (dm * de > 0) ++concordant;
      else if (dm * de < 0) ++discordant;
    }
  EXPECT_GT(concordant, discordant)
      << "model ordering disagrees with simulation on most level pairs";
}

TEST(DistSolve, MatchesSequentialAmgOnLaplaceLikeProblem) {
  const int nx = 24, ny = 24;
  amg::Hierarchy h = amg::Hierarchy::build(sparse::paper_problem(nx, ny));
  amg::DistHierarchy dh = amg::distribute_hierarchy(h, 8);

  std::mt19937_64 rng(17);
  std::uniform_real_distribution<double> d(-1, 1);
  std::vector<double> b(nx * ny);
  for (auto& v : b) v = d(rng);

  MeasureConfig cfg = small_cfg();
  auto dist = run_distributed_amg(dh, Protocol::neighbor_full, b, 1e-8, 60,
                                  cfg);
  EXPECT_TRUE(dist.converged);

  std::vector<double> x_seq(nx * ny, 0.0);
  auto seq = amg::amg_solve(h, b, x_seq, 1e-8, 60);
  EXPECT_TRUE(seq.converged);
  EXPECT_EQ(static_cast<int>(dist.residual_history.size()) - 1,
            seq.iterations);

  // Same arithmetic up to floating-point reassociation.
  for (std::size_t i = 0; i < x_seq.size(); ++i)
    EXPECT_NEAR(dist.solution[i], x_seq[i], 1e-6);
}

TEST(DistSolve, AllProtocolsProduceSameIterates) {
  const int nx = 16, ny = 16;
  amg::Hierarchy h = amg::Hierarchy::build(sparse::paper_problem(nx, ny));
  amg::DistHierarchy dh = amg::distribute_hierarchy(h, 4);
  std::vector<double> b(nx * ny, 1.0);
  MeasureConfig cfg = small_cfg();

  auto ref = run_distributed_amg(dh, Protocol::hypre, b, 1e-8, 40, cfg);
  for (Protocol p : {Protocol::neighbor_standard, Protocol::neighbor_partial,
                     Protocol::neighbor_full}) {
    auto res = run_distributed_amg(dh, p, b, 1e-8, 40, cfg);
    ASSERT_EQ(res.residual_history.size(), ref.residual_history.size())
        << to_string(p);
    for (std::size_t i = 0; i < res.solution.size(); ++i)
      EXPECT_DOUBLE_EQ(res.solution[i], ref.solution[i]) << to_string(p);
  }
}
