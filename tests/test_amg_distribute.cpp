/// \file test_amg_distribute.cpp
/// \brief Ownership-aware hierarchy distribution invariants.

#include <gtest/gtest.h>

#include <numeric>

#include "amg/distribute.hpp"
#include "sparse/stencil.hpp"

using namespace amg;
using sparse::Csr;

namespace {
Hierarchy paper_hierarchy(int nx, int ny) {
  return Hierarchy::build(sparse::paper_problem(nx, ny));
}
}  // namespace

TEST(Distribute, LevelZeroIsBlockPartitioned) {
  Hierarchy h = paper_hierarchy(16, 16);
  DistHierarchy dh = distribute_hierarchy(h, 4);
  EXPECT_EQ(dh.levels[0].A.row_part,
            sparse::block_partition(h.levels[0].n(), 4));
  // Identity permutation on the fine level.
  for (int i = 0; i < h.levels[0].n(); ++i)
    EXPECT_EQ(dh.levels[0].perm[i], i);
}

TEST(Distribute, PermutationsAreBijections) {
  Hierarchy h = paper_hierarchy(16, 16);
  DistHierarchy dh = distribute_hierarchy(h, 8);
  for (const auto& lvl : dh.levels) {
    std::vector<int> seen(lvl.perm.size(), 0);
    for (int p : lvl.perm) {
      ASSERT_GE(p, 0);
      ASSERT_LT(p, static_cast<int>(lvl.perm.size()));
      ++seen[p];
    }
    for (int s : seen) EXPECT_EQ(s, 1);
  }
}

TEST(Distribute, CoarseOwnersInheritedFromFine) {
  Hierarchy h = paper_hierarchy(16, 16);
  const int p = 4;
  DistHierarchy dh = distribute_hierarchy(h, p);
  for (int l = 0; l + 1 < dh.num_levels(); ++l) {
    const auto& fine = dh.levels[l];
    const auto& coarse = dh.levels[l + 1];
    const auto& cpts = h.levels[l].cpoints;
    for (std::size_t j = 0; j < cpts.size(); ++j) {
      const int fine_dist = fine.perm[cpts[j]];
      const int coarse_dist = coarse.perm[j];
      EXPECT_EQ(sparse::owner_of(fine.A.row_part, fine_dist),
                sparse::owner_of(coarse.A.row_part, coarse_dist))
          << "level " << l << " coarse point " << j;
    }
  }
}

TEST(Distribute, CoarseNumberingOrderedByFineWithinRank) {
  Hierarchy h = paper_hierarchy(16, 16);
  DistHierarchy dh = distribute_hierarchy(h, 4);
  for (int l = 0; l + 1 < dh.num_levels(); ++l) {
    const auto& fine = dh.levels[l];
    const auto& coarse = dh.levels[l + 1];
    const auto& cpts = h.levels[l].cpoints;
    // Sort coarse points by distributed id; their fine distributed ids must
    // then ascend within each owner block.
    std::vector<int> by_dist(cpts.size());
    for (std::size_t j = 0; j < cpts.size(); ++j)
      by_dist[coarse.perm[j]] = static_cast<int>(j);
    int prev_owner = -1, prev_fine = -1;
    for (std::size_t pos = 0; pos < by_dist.size(); ++pos) {
      const int j = by_dist[pos];
      const int fd = fine.perm[cpts[j]];
      const int owner = sparse::owner_of(fine.A.row_part, fd);
      if (owner == prev_owner) EXPECT_GT(fd, prev_fine);
      else EXPECT_GT(owner, prev_owner);
      prev_owner = owner;
      prev_fine = fd;
    }
  }
}

TEST(Distribute, DistributedOperatorsMatchCanonicalUpToPermutation) {
  Hierarchy h = paper_hierarchy(12, 12);
  DistHierarchy dh = distribute_hierarchy(h, 3);
  for (int l = 0; l < dh.num_levels(); ++l) {
    Csr gathered = dh.levels[l].A.gather();
    Csr expect = l == 0 ? h.levels[0].A
                        : h.levels[l].A.permuted(dh.levels[l].perm,
                                                 dh.levels[l].perm);
    EXPECT_EQ(gathered, expect) << "level " << l;
  }
}

TEST(Distribute, TransferOperatorsDistributedConsistently) {
  Hierarchy h = paper_hierarchy(12, 12);
  DistHierarchy dh = distribute_hierarchy(h, 4);
  for (int l = 0; l + 1 < dh.num_levels(); ++l) {
    const auto& dl = dh.levels[l];
    ASSERT_TRUE(dl.has_coarse());
    Csr gathered_p = dl.P.gather();
    Csr expect_p =
        h.levels[l].P.permuted(dl.perm, dh.levels[l + 1].perm);
    EXPECT_EQ(gathered_p, expect_p) << "P level " << l;
    Csr gathered_r = dl.R.gather();
    Csr expect_r =
        h.levels[l].R.permuted(dh.levels[l + 1].perm, dl.perm);
    EXPECT_EQ(gathered_r, expect_r) << "R level " << l;
  }
}

TEST(Distribute, HaloCountsShrinkOnCoarseLevels) {
  // Coarse levels have fewer rows, so eventually some ranks own nothing and
  // halos must stay internally consistent even then.
  Hierarchy h = paper_hierarchy(16, 16);
  DistHierarchy dh = distribute_hierarchy(h, 16);
  for (const auto& lvl : dh.levels) {
    long send = 0, recv = 0;
    for (const auto& rh : lvl.halo.ranks) {
      send += rh.total_send();
      recv += rh.total_recv();
    }
    EXPECT_EQ(send, recv);
  }
}

TEST(Distribute, SingleRankDegeneratesToSequential) {
  Hierarchy h = paper_hierarchy(8, 8);
  DistHierarchy dh = distribute_hierarchy(h, 1);
  for (int l = 0; l < dh.num_levels(); ++l) {
    EXPECT_EQ(dh.levels[l].A.gather(), h.levels[l].A);
    EXPECT_TRUE(dh.levels[l].halo.ranks[0].recv_gids.empty());
  }
}

TEST(Distribute, MoreRanksThanCoarseRows) {
  Hierarchy h = paper_hierarchy(8, 8);
  // 64 fine rows, coarsest level can have fewer rows than 32 ranks.
  DistHierarchy dh = distribute_hierarchy(h, 32);
  const auto& last = dh.levels.back();
  long covered = 0;
  for (const auto& slice : last.A.ranks) covered += slice.local_rows();
  EXPECT_EQ(covered, last.n());
}

TEST(Distribute, RejectsBadRankCount) {
  Hierarchy h = paper_hierarchy(4, 4);
  EXPECT_THROW(distribute_hierarchy(h, 0), sparse::Error);
}
