/// \file test_pattern_widths.cpp
/// \brief Determinism contract for the patterns subsystem: every
/// registered pattern's measurement — payload bytes, NeighborStats
/// aggregates and virtual clocks — is bit-identical at sim widths
/// {1, 2, 4, 7}, and delivered buffers match a host-side reference
/// computed without the engine.

#include <gtest/gtest.h>

#include <cstring>
#include <utility>
#include <vector>

#include "harness/measure.hpp"
#include "patterns/pattern.hpp"
#include "simmpi/dist_graph.hpp"
#include "simmpi/engine.hpp"

using harness::MeasureConfig;
using harness::PatternMeasurement;
using patterns::PatternParams;
using patterns::Workload;
using simmpi::Machine;

namespace {

constexpr int kWidths[] = {1, 2, 4, 7};

Machine test_machine() {
  return Machine({.num_nodes = 4, .regions_per_node = 1,
                  .ranks_per_region = 4, .switch_levels = {}});
}

/// Exact (bitwise) equality of two measurements; doubles compared with ==
/// on purpose — the contract is bit-identity, not tolerance.
void expect_identical(const PatternMeasurement& a, const PatternMeasurement& b,
                      const char* what) {
  EXPECT_EQ(a.init_seconds, b.init_seconds) << what;
  EXPECT_EQ(a.blocking_seconds, b.blocking_seconds) << what;
  EXPECT_EQ(a.overlapped_seconds, b.overlapped_seconds) << what;
  EXPECT_EQ(a.overlap_seconds, b.overlap_seconds) << what;
  EXPECT_EQ(a.sum_local_msgs, b.sum_local_msgs) << what;
  EXPECT_EQ(a.sum_global_msgs, b.sum_global_msgs) << what;
  EXPECT_EQ(a.sum_local_values, b.sum_local_values) << what;
  EXPECT_EQ(a.sum_global_values, b.sum_global_values) << what;
  EXPECT_EQ(a.max_global_msgs, b.max_global_msgs) << what;
  EXPECT_EQ(a.max_global_msg_values, b.max_global_msg_values) << what;
  EXPECT_EQ(a.link_seconds, b.link_seconds) << what;
  EXPECT_EQ(a.max_link_backlog_seconds, b.max_link_backlog_seconds) << what;
  EXPECT_EQ(a.sum_link_msgs, b.sum_link_msgs) << what;
}

/// 4:1-tapered two-leaf fat tree over the 4-node test machine, with the
/// shared-link queues charged: the contention arithmetic must be as
/// width-free as the rest of the model.
MeasureConfig link_capped_config() {
  MeasureConfig cfg;
  cfg.ranks_per_region = 4;
  cfg.switch_levels = {{.radix = 2, .taper = 4.0}, {.radix = 2, .taper = 1.0}};
  cfg.cost.use_link_cap = true;
  cfg.cost.link_msg_bytes = 256.0;
  return cfg;
}

}  // namespace

/// Every pattern, every sparse method, every width: one measurement.
/// verify_payload inside measure_pattern already byte-checks delivery, so
/// equal measurements at all widths close the contract for the subsystem.
TEST(PatternWidths, EveryPatternIsWidthIdentical) {
  const Machine m = test_machine();
  for (const auto& spec : patterns::registry()) {
    const Workload wl = spec.make(m, PatternParams{.values = 6, .seed = 9});
    for (mpix::Method method : mpix::kAllMethods) {
      MeasureConfig cfg;
      cfg.ranks_per_region = 4;
      cfg.cost.use_ejection_cap = true;  // new model term must also hold
      cfg.threads = 1;
      const PatternMeasurement ref =
          harness::measure_pattern(wl, method, cfg);
      for (int w : kWidths) {
        if (w == 1) continue;
        cfg.threads = w;
        const PatternMeasurement got =
            harness::measure_pattern(wl, method, cfg);
        expect_identical(ref, got, spec.name);
      }
    }
  }
}

/// The dense path at every width, for the patterns the dense methods care
/// about (incast is the all-to-many shape of the related benchmarks).
TEST(PatternWidths, DensePathIsWidthIdentical) {
  const Machine m = test_machine();
  const Workload wl =
      patterns::generate("incast", m, {.values = 16, .fan_in = 6});
  for (mpix::AlltoallMethod method : mpix::kAllAlltoallMethods) {
    MeasureConfig cfg;
    cfg.ranks_per_region = 4;
    cfg.threads = 1;
    const PatternMeasurement ref =
        harness::measure_pattern_dense(wl, method, cfg);
    for (int w : kWidths) {
      if (w == 1) continue;
      cfg.threads = w;
      expect_identical(ref, harness::measure_pattern_dense(wl, method, cfg),
                       mpix::to_string(method));
    }
  }
}

/// The shared-link queues are charged only in the single-threaded commit
/// step, so their clocks and counters must also be bit-identical at every
/// width — for every pattern, every sparse method, and the dense paths.
TEST(PatternWidths, LinkCapIsWidthIdentical) {
  const Machine m = test_machine();
  for (const auto& spec : patterns::registry()) {
    const Workload wl = spec.make(m, PatternParams{.values = 6, .seed = 9});
    for (mpix::Method method : mpix::kAllMethods) {
      MeasureConfig cfg = link_capped_config();
      cfg.threads = 1;
      const PatternMeasurement ref =
          harness::measure_pattern(wl, method, cfg);
      // The capped run must actually exercise the queues (every pattern
      // has at least one leaf-boundary crossing on this machine).
      double busy = 0.0;
      for (double v : ref.link_seconds) busy += v;
      EXPECT_GT(busy, 0.0) << spec.name;
      for (int w : kWidths) {
        if (w == 1) continue;
        cfg.threads = w;
        expect_identical(ref, harness::measure_pattern(wl, method, cfg),
                         spec.name);
      }
    }
    for (mpix::AlltoallMethod method : mpix::kAllAlltoallMethods) {
      MeasureConfig cfg = link_capped_config();
      cfg.threads = 1;
      const PatternMeasurement ref =
          harness::measure_pattern_dense(wl, method, cfg);
      for (int w : kWidths) {
        if (w == 1) continue;
        cfg.threads = w;
        expect_identical(ref,
                         harness::measure_pattern_dense(wl, method, cfg),
                         spec.name);
      }
    }
  }
}

/// Host-reference byte comparison: the engine-delivered receive buffers of
/// the incast and stencil patterns must equal buffers computed on the host
/// from the gid scheme alone, byte for byte, at every width.
TEST(PatternWidths, DeliveredBytesMatchHostReference) {
  const Machine m = test_machine();
  for (const char* name : {"incast", "stencil2d9", "stencil3d7"}) {
    const Workload wl = patterns::generate(name, m, {.values = 5, .seed = 11});
    const int p = wl.nranks;

    // Host reference: what every rank must receive, no engine involved.
    std::vector<std::vector<std::byte>> expected(p);
    for (int r = 0; r < p; ++r) {
      patterns::RankBuffers b = patterns::make_buffers(wl, r);
      expected[r].resize(b.recv_gids.size() * sizeof(double));
      for (std::size_t k = 0; k < b.recv_gids.size(); ++k)
        for (std::size_t i = 0; i < sizeof(double); ++i)
          expected[r][k * sizeof(double) + i] =
              patterns::payload_byte(b.recv_gids[k], i);
    }

    // Once on the flat machine, once through the 4:1-tapered tree with
    // link contention charged: queueing reorders arrival *times*, never
    // payload routing, so the delivered bytes must not change.
    simmpi::MachineConfig tree_cfg = test_machine().config();
    tree_cfg.switch_levels = {{.radix = 2, .taper = 4.0},
                              {.radix = 2, .taper = 1.0}};
    simmpi::CostParams capped = simmpi::CostParams::lassen();
    capped.use_link_cap = true;
    const std::pair<Machine, simmpi::CostParams> variants[] = {
        {test_machine(), simmpi::CostParams::lassen()},
        {Machine(tree_cfg), capped}};
    for (const auto& [machine, params] : variants)
    for (int w : kWidths) {
      simmpi::Engine eng(machine, params,
                         simmpi::Engine::Options{.threads = w});
      std::vector<std::vector<std::byte>> got(p);
      eng.run([&](simmpi::Context& ctx) -> simmpi::Task<> {
        const int r = ctx.rank();
        patterns::RankBuffers buf = patterns::make_buffers(wl, r);
        mpix::AlltoallvArgs args = patterns::args_view(wl, r, buf);
        const auto& ex = wl.ranks[r];
        simmpi::DistGraph g = co_await simmpi::dist_graph_create_adjacent(
            ctx, ctx.world(), ex.sources, ex.destinations,
            simmpi::GraphAlgo::handshake);
        auto coll = co_await mpix::neighbor_alltoallv_init(
            ctx, g, std::move(args), mpix::Method::locality);
        co_await coll->start(ctx);
        co_await coll->wait(ctx);
        got[r] = buf.recvbuf;
        co_return;
      });
      for (int r = 0; r < p; ++r) {
        ASSERT_EQ(got[r].size(), expected[r].size()) << name << " rank " << r;
        EXPECT_EQ(0, std::memcmp(got[r].data(), expected[r].data(),
                                 got[r].size()))
            << name << " width " << w << " rank " << r;
      }
    }
  }
}

/// Workload generation itself is width-free (pure host code), but the
/// fingerprint doubles as the plan-cache key — pin it against accidental
/// dependence on anything besides the pattern content.
TEST(PatternWidths, FingerprintIsStableAcrossCalls) {
  const Machine m = test_machine();
  for (const auto& spec : patterns::registry()) {
    const std::uint64_t a = spec.make(m, PatternParams{.seed = 3}).fingerprint();
    const std::uint64_t b = spec.make(m, PatternParams{.seed = 3}).fingerprint();
    EXPECT_EQ(a, b) << spec.name;
  }
}
