/// \file test_mpix_detail.cpp
/// \brief Pure helpers behind the locality-aware collectives.

#include <gtest/gtest.h>

#include <numeric>

#include "mpix/detail.hpp"

using namespace mpix;
using namespace mpix::detail;

TEST(AssignLeaders, RoundRobinCycles) {
  std::vector<std::pair<int, long>> loads{{2, 10}, {5, 1}, {7, 99}, {9, 5}};
  auto a = assign_leaders(loads, 3, /*lpt=*/false);
  EXPECT_EQ(a, (std::vector<int>{0, 1, 2, 0}));
}

TEST(AssignLeaders, LptPutsHeaviestOnDistinctCores) {
  std::vector<std::pair<int, long>> loads{{0, 100}, {1, 90}, {2, 10}, {3, 5}};
  auto a = assign_leaders(loads, 2, /*lpt=*/true);
  // 100 -> core 0, 90 -> core 1, 10 -> core 1 (load 90+10 later? no: 100 vs
  // 90 => least loaded is core 1), then 5 -> core 1 has 100? Recompute:
  // loads after 100->c0, 90->c1: c0=100,c1=90; 10->c1 (95? 90+10=100); 5 ->
  // tie 100/100 -> lowest core c0.
  EXPECT_EQ(a[0], 0);
  EXPECT_EQ(a[1], 1);
  EXPECT_EQ(a[2], 1);
  EXPECT_EQ(a[3], 0);
}

TEST(AssignLeaders, LptBalancesTotalLoad) {
  std::vector<std::pair<int, long>> loads;
  for (int i = 0; i < 40; ++i) loads.emplace_back(i, 1 + (i * 37) % 100);
  auto a = assign_leaders(loads, 4, true);
  std::vector<long> per_core(4, 0);
  long total = 0;
  for (std::size_t i = 0; i < loads.size(); ++i) {
    per_core[a[i]] += loads[i].second;
    total += loads[i].second;
  }
  for (long c : per_core) {
    EXPECT_GT(c, total / 4 - 110);
    EXPECT_LT(c, total / 4 + 110);
  }
}

TEST(AssignLeaders, DeterministicAcrossCalls) {
  std::vector<std::pair<int, long>> loads{{3, 7}, {8, 7}, {1, 7}};
  EXPECT_EQ(assign_leaders(loads, 2, true), assign_leaders(loads, 2, true));
}

TEST(AssignLeaders, SingleCoreTakesAll) {
  std::vector<std::pair<int, long>> loads{{0, 5}, {1, 6}};
  auto a = assign_leaders(loads, 1, true);
  EXPECT_EQ(a, (std::vector<int>{0, 0}));
}

TEST(UniqueSorted, RemovesDuplicatesAndSorts) {
  std::vector<gidx> g{5, 1, 5, 3, 1};
  EXPECT_EQ(unique_sorted(g), (std::vector<gidx>{1, 3, 5}));
  EXPECT_TRUE(unique_sorted(std::vector<gidx>{}).empty());
}

TEST(PairLayout, PartialSegmentsFollowEdgeOrder) {
  Edge e1{0, 4, 2, {}};
  Edge e2{0, 5, 3, {}};
  Edge e3{1, 4, 1, {}};
  std::vector<const Edge*> edges{&e1, &e2, &e3};
  PairLayout lay = pair_layout(edges, false);
  EXPECT_EQ(lay.total, 6);
  ASSERT_EQ(lay.segments.size(), 3u);
  EXPECT_EQ(lay.segments[0].offset, 0);
  EXPECT_EQ(lay.segments[1].offset, 2);
  EXPECT_EQ(lay.segments[2].offset, 5);
  EXPECT_TRUE(lay.src_blocks.empty());
}

TEST(PairLayout, DedupMergesPerSource) {
  Edge e1{0, 4, 2, {10, 11}};
  Edge e2{0, 5, 2, {11, 12}};
  Edge e3{1, 4, 2, {20, 21}};
  std::vector<const Edge*> edges{&e1, &e2, &e3};
  PairLayout lay = pair_layout(edges, true);
  // src 0 contributes unique {10,11,12}; src 1 contributes {20,21}.
  EXPECT_EQ(lay.total, 5);
  ASSERT_EQ(lay.src_blocks.size(), 2u);
  EXPECT_EQ(lay.src_blocks[0].src, 0);
  EXPECT_EQ(lay.src_blocks[0].gids, (std::vector<gidx>{10, 11, 12}));
  EXPECT_EQ(lay.src_blocks[0].offset, 0);
  EXPECT_EQ(lay.src_blocks[1].src, 1);
  EXPECT_EQ(lay.src_blocks[1].offset, 3);
  EXPECT_EQ(lay.find(0, 12), 2);
  EXPECT_EQ(lay.find(1, 20), 3);
  EXPECT_THROW(lay.find(0, 99), simmpi::SimError);
  EXPECT_THROW(lay.find(9, 10), simmpi::SimError);
}

TEST(PairLayout, DedupNeverLargerThanPartial) {
  Edge e1{0, 4, 3, {1, 2, 3}};
  Edge e2{0, 5, 3, {1, 2, 3}};
  Edge e3{2, 5, 1, {7}};
  std::vector<const Edge*> edges{&e1, &e2, &e3};
  EXPECT_LE(pair_layout(edges, true).total, pair_layout(edges, false).total);
  EXPECT_EQ(pair_layout(edges, true).total, 4);   // {1,2,3} + {7}
  EXPECT_EQ(pair_layout(edges, false).total, 7);  // all copies
}

TEST(EdgeOrdering, SortsBySrcThenDst) {
  std::vector<Edge> v;
  v.push_back(Edge{2, 1, 1, {}});
  v.push_back(Edge{1, 9, 1, {}});
  v.push_back(Edge{1, 2, 1, {}});
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v[0].src, 1);
  EXPECT_EQ(v[0].dst, 2);
  EXPECT_EQ(v[1].dst, 9);
  EXPECT_EQ(v[2].src, 2);
}
