/// \file test_mpix_detail.cpp
/// \brief Pure helpers behind the locality-aware collectives.

#include <gtest/gtest.h>

#include <numeric>

#include "mpix/detail.hpp"

using namespace mpix;
using namespace mpix::detail;

TEST(AssignLeaders, RoundRobinCycles) {
  std::vector<std::pair<int, long>> loads{{2, 10}, {5, 1}, {7, 99}, {9, 5}};
  auto a = assign_leaders(loads, 3, /*lpt=*/false);
  EXPECT_EQ(a, (std::vector<int>{0, 1, 2, 0}));
}

TEST(AssignLeaders, LptPutsHeaviestOnDistinctCores) {
  std::vector<std::pair<int, long>> loads{{0, 100}, {1, 90}, {2, 10}, {3, 5}};
  auto a = assign_leaders(loads, 2, /*lpt=*/true);
  // 100 -> core 0, 90 -> core 1, 10 -> core 1 (load 90+10 later? no: 100 vs
  // 90 => least loaded is core 1), then 5 -> core 1 has 100? Recompute:
  // loads after 100->c0, 90->c1: c0=100,c1=90; 10->c1 (95? 90+10=100); 5 ->
  // tie 100/100 -> lowest core c0.
  EXPECT_EQ(a[0], 0);
  EXPECT_EQ(a[1], 1);
  EXPECT_EQ(a[2], 1);
  EXPECT_EQ(a[3], 0);
}

TEST(AssignLeaders, LptBalancesTotalLoad) {
  std::vector<std::pair<int, long>> loads;
  for (int i = 0; i < 40; ++i) loads.emplace_back(i, 1 + (i * 37) % 100);
  auto a = assign_leaders(loads, 4, true);
  std::vector<long> per_core(4, 0);
  long total = 0;
  for (std::size_t i = 0; i < loads.size(); ++i) {
    per_core[a[i]] += loads[i].second;
    total += loads[i].second;
  }
  for (long c : per_core) {
    EXPECT_GT(c, total / 4 - 110);
    EXPECT_LT(c, total / 4 + 110);
  }
}

TEST(AssignLeaders, DeterministicAcrossCalls) {
  std::vector<std::pair<int, long>> loads{{3, 7}, {8, 7}, {1, 7}};
  EXPECT_EQ(assign_leaders(loads, 2, true), assign_leaders(loads, 2, true));
}

TEST(AssignLeaders, SingleCoreTakesAll) {
  std::vector<std::pair<int, long>> loads{{0, 5}, {1, 6}};
  auto a = assign_leaders(loads, 1, true);
  EXPECT_EQ(a, (std::vector<int>{0, 0}));
}

TEST(UniqueSorted, RemovesDuplicatesAndSorts) {
  std::vector<gidx> g{5, 1, 5, 3, 1};
  EXPECT_EQ(unique_sorted(g), (std::vector<gidx>{1, 3, 5}));
  EXPECT_TRUE(unique_sorted(std::vector<gidx>{}).empty());
}

TEST(PairLayout, PartialSegmentsFollowEdgeOrder) {
  Edge e1{0, 4, 2, {}};
  Edge e2{0, 5, 3, {}};
  Edge e3{1, 4, 1, {}};
  std::vector<const Edge*> edges{&e1, &e2, &e3};
  PairLayout lay = pair_layout(edges, false);
  EXPECT_EQ(lay.total, 6);
  ASSERT_EQ(lay.segments.size(), 3u);
  EXPECT_EQ(lay.segments[0].offset, 0);
  EXPECT_EQ(lay.segments[1].offset, 2);
  EXPECT_EQ(lay.segments[2].offset, 5);
  EXPECT_TRUE(lay.src_blocks.empty());
}

TEST(PairLayout, DedupMergesPerSource) {
  Edge e1{0, 4, 2, {10, 11}};
  Edge e2{0, 5, 2, {11, 12}};
  Edge e3{1, 4, 2, {20, 21}};
  std::vector<const Edge*> edges{&e1, &e2, &e3};
  PairLayout lay = pair_layout(edges, true);
  // src 0 contributes unique {10,11,12}; src 1 contributes {20,21}.
  EXPECT_EQ(lay.total, 5);
  ASSERT_EQ(lay.src_blocks.size(), 2u);
  EXPECT_EQ(lay.src_blocks[0].src, 0);
  EXPECT_EQ(lay.src_blocks[0].gids, (std::vector<gidx>{10, 11, 12}));
  EXPECT_EQ(lay.src_blocks[0].offset, 0);
  EXPECT_EQ(lay.src_blocks[1].src, 1);
  EXPECT_EQ(lay.src_blocks[1].offset, 3);
  EXPECT_EQ(lay.find(0, 12), 2);
  EXPECT_EQ(lay.find(1, 20), 3);
  EXPECT_THROW(lay.find(0, 99), simmpi::SimError);
  EXPECT_THROW(lay.find(9, 10), simmpi::SimError);
}

TEST(PairLayout, DedupNeverLargerThanPartial) {
  Edge e1{0, 4, 3, {1, 2, 3}};
  Edge e2{0, 5, 3, {1, 2, 3}};
  Edge e3{2, 5, 1, {7}};
  std::vector<const Edge*> edges{&e1, &e2, &e3};
  EXPECT_LE(pair_layout(edges, true).total, pair_layout(edges, false).total);
  EXPECT_EQ(pair_layout(edges, true).total, 4);   // {1,2,3} + {7}
  EXPECT_EQ(pair_layout(edges, false).total, 7);  // all copies
}

// ---------------------------------------------------------------------------
// validate_args error paths.  DistGraph is an aggregate and validate_args
// only reads adjacency sizes, so no engine is needed.
// ---------------------------------------------------------------------------
namespace {

/// One destination (2 values), one source (3 values), double payload.
struct ArgsFixture {
  simmpi::DistGraph graph;
  std::vector<double> sendbuf = std::vector<double>(2);
  std::vector<double> recvbuf = std::vector<double>(3);
  std::vector<gidx> send_idx{10, 11};
  std::vector<gidx> recv_idx{20, 21, 22};

  ArgsFixture() {
    graph.destinations = {1};
    graph.sources = {2};
  }

  AlltoallvArgs args() {
    return AlltoallvArgsT<double>{.sendbuf = sendbuf,
                                  .sendcounts = {2},
                                  .sdispls = {0},
                                  .recvbuf = recvbuf,
                                  .recvcounts = {3},
                                  .rdispls = {0},
                                  .send_idx = send_idx,
                                  .recv_idx = recv_idx};
  }
};

}  // namespace

TEST(ValidateArgs, AcceptsMatchingPattern) {
  ArgsFixture f;
  EXPECT_NO_THROW(validate_args(f.graph, f.args(), /*need_idx=*/false));
  EXPECT_NO_THROW(validate_args(f.graph, f.args(), /*need_idx=*/true));
}

TEST(ValidateArgs, RejectsCountAndDisplArityMismatch) {
  ArgsFixture f;
  auto a = f.args();
  a.sendcounts.push_back(1);
  EXPECT_THROW(validate_args(f.graph, a, false), simmpi::SimError);
  a = f.args();
  a.sdispls.clear();
  EXPECT_THROW(validate_args(f.graph, a, false), simmpi::SimError);
  a = f.args();
  a.recvcounts = {3, 1};
  EXPECT_THROW(validate_args(f.graph, a, false), simmpi::SimError);
  a = f.args();
  a.rdispls = {};
  EXPECT_THROW(validate_args(f.graph, a, false), simmpi::SimError);
}

TEST(ValidateArgs, RejectsNegativeCountsAndDispls) {
  ArgsFixture f;
  auto a = f.args();
  a.sendcounts[0] = -1;
  EXPECT_THROW(validate_args(f.graph, a, false), simmpi::SimError);
  a = f.args();
  a.sdispls[0] = -2;
  EXPECT_THROW(validate_args(f.graph, a, false), simmpi::SimError);
  a = f.args();
  a.recvcounts[0] = -3;
  EXPECT_THROW(validate_args(f.graph, a, false), simmpi::SimError);
  a = f.args();
  a.rdispls[0] = -1;
  EXPECT_THROW(validate_args(f.graph, a, false), simmpi::SimError);
}

TEST(ValidateArgs, RejectsSegmentsExceedingBuffers) {
  ArgsFixture f;
  auto a = f.args();
  a.sendcounts[0] = 3;  // only 2 values in sendbuf
  EXPECT_THROW(validate_args(f.graph, a, false), simmpi::SimError);
  a = f.args();
  a.sdispls[0] = 1;  // displ 1 + count 2 > 2 values
  EXPECT_THROW(validate_args(f.graph, a, false), simmpi::SimError);
  a = f.args();
  a.rdispls[0] = 1;  // displ 1 + count 3 > 3 values
  EXPECT_THROW(validate_args(f.graph, a, false), simmpi::SimError);
}

TEST(ValidateArgs, RejectsMismatchedElementSize) {
  ArgsFixture f;
  auto a = f.args();
  // Same byte buffers, but claimed element twice as wide: the declared
  // segments no longer fit.
  a.element_size = 2 * sizeof(double);
  EXPECT_THROW(validate_args(f.graph, a, false), simmpi::SimError);
  a = f.args();
  a.element_size = 0;
  EXPECT_THROW(validate_args(f.graph, a, false), simmpi::SimError);
  // Narrower elements over the same bytes are fine (buffer over-covers).
  a = f.args();
  a.element_size = sizeof(float);
  EXPECT_NO_THROW(validate_args(f.graph, a, false));
}

TEST(ValidateArgs, DedupModeRequiresCoveringIndices) {
  ArgsFixture f;
  auto a = f.args();
  a.send_idx = {};
  EXPECT_THROW(validate_args(f.graph, a, true), simmpi::SimError);
  EXPECT_NO_THROW(validate_args(f.graph, a, false));  // only dedup needs idx
  a = f.args();
  a.recv_idx = a.recv_idx.first(2);  // one value short of recvbuf
  EXPECT_THROW(validate_args(f.graph, a, true), simmpi::SimError);
}

TEST(ValidatePlanArgs, RejectsPatternDrift) {
  ArgsFixture f;
  // A plan carrying exactly the fixture's pattern.
  LocalityPlan plan;
  plan.destinations = f.graph.destinations;
  plan.sources = f.graph.sources;
  plan.sendcounts = {2};
  plan.sdispls = {0};
  plan.recvcounts = {3};
  plan.rdispls = {0};
  EXPECT_NO_THROW(validate_plan_args(plan, f.graph, f.args()));

  auto a = f.args();
  a.sendcounts = {1};  // fits the buffer, but not the plan
  EXPECT_THROW(validate_plan_args(plan, f.graph, a), simmpi::SimError);

  simmpi::DistGraph other = f.graph;
  other.destinations = {3};
  EXPECT_THROW(validate_plan_args(plan, other, f.args()), simmpi::SimError);

  // Dedup plans additionally pin the index annotations.
  plan.dedup = true;
  plan.send_idx = {10, 11};
  plan.recv_idx = {20, 21, 22};
  EXPECT_NO_THROW(validate_plan_args(plan, f.graph, f.args()));
  std::vector<gidx> drifted{10, 99};
  a = f.args();
  a.send_idx = drifted;
  EXPECT_THROW(validate_plan_args(plan, f.graph, a), simmpi::SimError);
}

TEST(ValidateArgs, RejectsRaggedPayloadBuffers) {
  // A trailing partial value (buffer bytes not a multiple of element_size)
  // would be silently dropped by the value-count arithmetic; validate_args
  // must reject it and name the remainder.
  ArgsFixture f;
  auto a = f.args();
  a.sendbuf = a.sendbuf.first(a.sendbuf.size() - 3);
  try {
    validate_args(f.graph, a, false);
    FAIL() << "ragged sendbuf accepted";
  } catch (const simmpi::SimError& e) {
    EXPECT_NE(std::string(e.what()).find("sendbuf"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("remainder 5"), std::string::npos);
  }
  a = f.args();
  a.recvbuf = a.recvbuf.first(a.recvbuf.size() - 7);
  try {
    validate_args(f.graph, a, false);
    FAIL() << "ragged recvbuf accepted";
  } catch (const simmpi::SimError& e) {
    EXPECT_NE(std::string(e.what()).find("recvbuf"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("remainder 1"), std::string::npos);
  }
}

TEST(RejectDuplicateEdges, AcceptsUniqueAdjacency) {
  simmpi::DistGraph g;
  g.destinations = {3, 1, 2};
  g.sources = {0, 5};
  EXPECT_NO_THROW(reject_duplicate_edges(g));
  simmpi::DistGraph empty;
  EXPECT_NO_THROW(reject_duplicate_edges(empty));
}

TEST(RejectDuplicateEdges, NamesTheDuplicatedRank) {
  simmpi::DistGraph g;
  g.destinations = {2, 4, 2};
  g.sources = {1};
  try {
    reject_duplicate_edges(g);
    FAIL() << "duplicate destination accepted";
  } catch (const simmpi::SimError& e) {
    EXPECT_NE(std::string(e.what()).find("rank 2"), std::string::npos);
  }
  g.destinations = {2, 4};
  g.sources = {7, 7};
  EXPECT_THROW(reject_duplicate_edges(g), simmpi::SimError);
}

TEST(EdgeOrdering, SortsBySrcThenDst) {
  std::vector<Edge> v;
  v.push_back(Edge{2, 1, 1, {}});
  v.push_back(Edge{1, 9, 1, {}});
  v.push_back(Edge{1, 2, 1, {}});
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v[0].src, 1);
  EXPECT_EQ(v[0].dst, 2);
  EXPECT_EQ(v[1].dst, 9);
  EXPECT_EQ(v[2].src, 2);
}
