#pragma once
/// \file pattern_util.hpp
/// \brief Shared test helper: random irregular communication patterns with
/// globally consistent send/recv argument construction.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <random>
#include <vector>

#include "mpix/neighbor.hpp"

namespace pattern {

/// Invariant checks over one rank's sender-side NeighborStats.  Values are
/// only ever counted alongside a message, so a rank with no messages of a
/// kind must report zero values of that kind, and no single inter-region
/// message can carry more values than the rank's inter-region total.  If
/// `total_sent_values` is non-negative it must equal the values counted
/// across all of the rank's messages (the standard protocol turns every
/// send segment into exactly one message, so there the total is simply the
/// send buffer size).
inline void verify_stats(const mpix::NeighborStats& s,
                         long total_sent_values = -1) {
  EXPECT_GE(s.local_msgs, 0);
  EXPECT_GE(s.global_msgs, 0);
  EXPECT_GE(s.local_values, 0);
  EXPECT_GE(s.global_values, 0);
  EXPECT_LE(s.max_global_msg_values, s.global_values);
  if (s.global_msgs == 0) {
    EXPECT_EQ(s.global_values, 0);
    EXPECT_EQ(s.max_global_msg_values, 0);
  } else {
    // The largest message carries at least the average share.
    EXPECT_GE(s.max_global_msg_values * s.global_msgs, s.global_values);
  }
  if (s.local_msgs == 0) {
    EXPECT_EQ(s.local_values, 0);
  }
  if (total_sent_values >= 0) {
    EXPECT_EQ(s.local_values + s.global_values, total_sent_values);
  }
}

/// Aggregations over per-rank stats used by the suites' balance assertions.
inline long sum_global_msgs(const std::vector<mpix::NeighborStats>& v) {
  long t = 0;
  for (const auto& s : v) t += s.global_msgs;
  return t;
}
inline long sum_global_values(const std::vector<mpix::NeighborStats>& v) {
  long t = 0;
  for (const auto& s : v) t += s.global_values;
  return t;
}
inline long max_global_values(const std::vector<mpix::NeighborStats>& v) {
  long m = 0;
  for (const auto& s : v) m = std::max(m, s.global_values);
  return m;
}

/// Deterministic value of a logical datum at a given iteration.  Equal gids
/// always produce equal values (the dedup precondition).
inline double value_of(mpix::gidx gid, int iter) {
  return 0.25 * static_cast<double>(gid) + 1000.0 * iter + 1.0;
}

/// A global view of an irregular pattern: sends[src][dst] = value-id list.
struct GlobalPattern {
  int nranks = 0;
  std::vector<std::map<int, std::vector<mpix::gidx>>> sends;

  /// Sorted source ranks of a destination.
  std::vector<int> sources_of(int dst) const {
    std::vector<int> s;
    for (int src = 0; src < nranks; ++src)
      if (sends[src].count(dst)) s.push_back(src);
    return s;
  }
};

/// Random pattern: each rank sends to a few (possibly zero) peers, each
/// segment 1-4 values drawn from a small per-source pool so the same value
/// is frequently bound for several destinations (exercising dedup).
inline GlobalPattern random_pattern(int nranks, unsigned seed,
                                    int value_pool = 3, int max_degree = 6,
                                    bool allow_self = true) {
  std::mt19937 rng(seed);
  GlobalPattern p;
  p.nranks = nranks;
  p.sends.resize(nranks);
  std::uniform_int_distribution<int> deg(0, std::min(nranks, max_degree));
  std::uniform_int_distribution<int> cnt(1, 4);
  std::uniform_int_distribution<int> pick(0, nranks - 1);
  std::uniform_int_distribution<int> pool(0, value_pool - 1);
  for (int src = 0; src < nranks; ++src) {
    const int ndst = deg(rng);
    for (int t = 0; t < ndst; ++t) {
      int dst = pick(rng);
      if (!allow_self && dst == src) dst = (dst + 1) % nranks;
      auto& seg = p.sends[src][dst];
      if (!seg.empty()) continue;  // already chosen this dst
      const int c = cnt(rng);
      for (int k = 0; k < c; ++k)
        seg.push_back(static_cast<mpix::gidx>(src) * 100 + pool(rng));
    }
  }
  return p;
}

/// Per-rank argument bundle with owning storage.
struct RankArgs {
  std::vector<int> destinations, sources;
  std::vector<int> sendcounts, sdispls, recvcounts, rdispls;
  std::vector<double> sendbuf, recvbuf, expected;
  std::vector<mpix::gidx> send_idx, recv_idx;

  /// Byte-based argument view through the typed wrapper (element_size ==
  /// sizeof(double)).
  mpix::AlltoallvArgs view() {
    return mpix::AlltoallvArgsT<double>{
        .sendbuf = sendbuf,
        .sendcounts = sendcounts,
        .sdispls = sdispls,
        .recvbuf = recvbuf,
        .recvcounts = recvcounts,
        .rdispls = rdispls,
        .send_idx = send_idx,
        .recv_idx = recv_idx,
    };
  }

  /// Refresh sendbuf and the expected recvbuf for an iteration number.
  void fill(int iter) {
    for (std::size_t k = 0; k < sendbuf.size(); ++k)
      sendbuf[k] = value_of(send_idx[k], iter);
    for (std::size_t k = 0; k < expected.size(); ++k)
      expected[k] = value_of(recv_idx[k], iter);
  }
};

/// Build rank r's arguments from the global pattern.
inline RankArgs rank_args(const GlobalPattern& p, int r) {
  RankArgs a;
  for (const auto& [dst, gids] : p.sends[r]) {
    a.destinations.push_back(dst);
    a.sdispls.push_back(static_cast<int>(a.send_idx.size()));
    a.sendcounts.push_back(static_cast<int>(gids.size()));
    for (auto g : gids) a.send_idx.push_back(g);
  }
  a.sendbuf.resize(a.send_idx.size());
  for (int src : p.sources_of(r)) {
    const auto& gids = p.sends[src].at(r);
    a.sources.push_back(src);
    a.rdispls.push_back(static_cast<int>(a.recv_idx.size()));
    a.recvcounts.push_back(static_cast<int>(gids.size()));
    for (auto g : gids) a.recv_idx.push_back(g);
  }
  a.recvbuf.assign(a.recv_idx.size(), 0.0);
  a.expected.resize(a.recv_idx.size());
  return a;
}

}  // namespace pattern
