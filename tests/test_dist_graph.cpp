/// \file test_dist_graph.cpp
/// \brief Distributed-graph topology creation: both algorithm variants.

#include <gtest/gtest.h>

#include <vector>

#include "simmpi/dist_graph.hpp"

using namespace simmpi;

namespace {
Engine ring_engine(int nranks) {
  const int rpn = (nranks % 4 == 0) ? std::min(nranks, 4) : 1;
  return Engine(Machine({.num_nodes = nranks / rpn,
                         .regions_per_node = 1,
                         .ranks_per_region = rpn}),
                CostParams::lassen());
}
}  // namespace

class DistGraphAlgo : public ::testing::TestWithParam<GraphAlgo> {};
INSTANTIATE_TEST_SUITE_P(Algos, DistGraphAlgo,
                         ::testing::Values(GraphAlgo::allgather,
                                           GraphAlgo::handshake));

TEST_P(DistGraphAlgo, RingTopology) {
  const int p = 8;
  Engine eng = ring_engine(p);
  eng.run([&](Context& ctx) -> Task<> {
    const int r = ctx.rank();
    std::vector<int> srcs{(r - 1 + p) % p};
    std::vector<int> dsts{(r + 1) % p};
    DistGraph g = co_await dist_graph_create_adjacent(ctx, ctx.world(), srcs,
                                                      dsts, GetParam());
    EXPECT_EQ(g.sources, srcs);
    EXPECT_EQ(g.destinations, dsts);
    EXPECT_NE(g.comm.id(), ctx.world().id());
    EXPECT_EQ(g.comm.size(), p);
  });
}

TEST_P(DistGraphAlgo, AsymmetricIrregularTopology) {
  // rank 0 sends to everyone; everyone sends to rank p-1.
  const int p = 6;
  Engine eng = ring_engine(p);
  eng.run([&](Context& ctx) -> Task<> {
    const int r = ctx.rank();
    std::vector<int> dsts, srcs;
    if (r == 0)
      for (int d = 1; d < p; ++d) dsts.push_back(d);
    if (r != p - 1) {
      if (r != 0 || p == 1) {
      }
      dsts.push_back(p - 1);
    }
    if (r != 0) srcs.push_back(0);
    if (r == p - 1)
      for (int s = 0; s < p - 1; ++s) srcs.push_back(s);
    // Deduplicate and sort to keep declared lists canonical.
    std::sort(dsts.begin(), dsts.end());
    dsts.erase(std::unique(dsts.begin(), dsts.end()), dsts.end());
    std::sort(srcs.begin(), srcs.end());
    srcs.erase(std::unique(srcs.begin(), srcs.end()), srcs.end());
    DistGraph g = co_await dist_graph_create_adjacent(ctx, ctx.world(), srcs,
                                                      dsts, GetParam());
    EXPECT_EQ(g.sources, srcs);
    EXPECT_EQ(g.destinations, dsts);
  });
}

TEST_P(DistGraphAlgo, EmptyNeighborhoodsAllowed) {
  Engine eng = ring_engine(4);
  eng.run([&](Context& ctx) -> Task<> {
    DistGraph g = co_await dist_graph_create_adjacent(
        ctx, ctx.world(), std::vector<int>{}, std::vector<int>{}, GetParam());
    EXPECT_TRUE(g.sources.empty());
    EXPECT_TRUE(g.destinations.empty());
  });
}

TEST(DistGraph, AllgatherDetectsInconsistentAdjacency) {
  // Rank 1 claims to receive from rank 0, but rank 0 declares no sends.
  Engine eng = ring_engine(2);
  EXPECT_THROW(
      eng.run([&](Context& ctx) -> Task<> {
        std::vector<int> srcs, dsts;
        if (ctx.rank() == 1) srcs.push_back(0);
        co_await dist_graph_create_adjacent(ctx, ctx.world(), srcs, dsts,
                                            GraphAlgo::allgather);
      }),
      SimError);
}

TEST(DistGraph, OutOfRangeNeighborRejected) {
  Engine eng = ring_engine(2);
  auto bad_run = [&] {
    eng.run([&](Context& ctx) -> Task<> {
      std::vector<int> srcs;
      std::vector<int> dsts{5};
      co_await dist_graph_create_adjacent(ctx, ctx.world(), srcs, dsts,
                                          GraphAlgo::handshake);
    });
  };
  EXPECT_THROW(bad_run(), SimError);
}

TEST(DistGraph, HandshakeIsCheaperThanAllgatherAtScale) {
  // The mechanism behind Figure 6: the allgather-based construction pays
  // O(P) while the handshake pays O(degree).
  auto creation_time = [](GraphAlgo algo) {
    Engine eng(Machine({.num_nodes = 16, .regions_per_node = 1,
                        .ranks_per_region = 4}),
               CostParams::lassen());
    eng.run([&](Context& ctx) -> Task<> {
      const int p = ctx.world().size();
      const int r = ctx.rank();
      std::vector<int> srcs{(r - 1 + p) % p}, dsts{(r + 1) % p};
      co_await ctx.engine().sync_reset(ctx);
      co_await dist_graph_create_adjacent(ctx, ctx.world(), srcs, dsts, algo);
    });
    return eng.max_clock();
  };
  EXPECT_LT(creation_time(GraphAlgo::handshake),
            creation_time(GraphAlgo::allgather));
}
