/// \file test_engine_alloc.cpp
/// \brief Allocation-regression suite for the engine hot path.
///
/// The contract (docs/ARCHITECTURE.md, "Memory management in the engine"):
/// once warmed, steady-state engine phases perform **zero heap
/// allocations** — payload bytes live in per-rank bump arenas, mailboxes
/// are flat interned tables, coroutine frames come from the frame pool,
/// and every per-phase vector retains its capacity.
///
/// Proof technique: a global `operator new` hook counts every allocation
/// (util/alloc_hook.hpp — this TU owns the definition for the binary).
/// The same warmed engine runs the same traffic pattern with 4 and with 64
/// iterations; if any allocation were per-phase or per-message, the longer
/// run would count more.  Equality pins the whole steady state to zero
/// heap traffic, without having to whitelist per-run scaffolding (task
/// vectors, pool bookkeeping) that is independent of iteration count.

#include "util/alloc_hook.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <span>
#include <vector>

#include "mpix/reliable.hpp"
#include "simmpi/coll.hpp"
#include "simmpi/engine.hpp"
#include "simmpi/fault.hpp"

using namespace simmpi;

namespace {

Machine test_machine() {
  return Machine({.num_nodes = 2, .regions_per_node = 2, .ranks_per_region = 4});
}

/// Representative steady traffic: persistent-style ring exchange with a
/// fixed tag (the shape of every halo-exchange Start+Wait), mixed payload
/// sizes crossing region/node/network tiers, completed with wait_all so a
/// pooled coroutine frame is created and destroyed every iteration.
Task<> ring_traffic(Context& ctx, int iters) {
  const int p = ctx.world().size();
  const int r = ctx.rank();
  std::vector<double> out(64 + 32 * (r % 3), r + 0.5);
  std::vector<double> in(64 + 32 * (((r - 1 + p) % p) % 3));
  std::vector<double> out2(16, r + 0.25);
  std::vector<double> in2(16);
  for (int it = 0; it < iters; ++it) {
    Request reqs[4] = {
        Request::send(ctx.world(),
                      std::as_bytes(std::span<const double>(out)), (r + 1) % p,
                      7),
        Request::recv(ctx.world(), std::as_writable_bytes(std::span<double>(in)),
                      (r - 1 + p) % p, 7),
        Request::send(ctx.world(),
                      std::as_bytes(std::span<const double>(out2)),
                      (r + p / 2) % p, 8),
        Request::recv(ctx.world(),
                      std::as_writable_bytes(std::span<double>(in2)),
                      (r + p / 2) % p, 8),
    };
    for (auto& q : reqs) q.start(ctx);
    co_await ctx.wait_all(std::span<Request>(reqs));
  }
}

std::uint64_t allocs_during(Engine& eng, int iters) {
  const std::uint64_t before = util::alloc_hook_count();
  eng.run([&](Context& ctx) -> Task<> { return ring_traffic(ctx, iters); });
  return util::alloc_hook_count() - before;
}

TEST(EngineAlloc, SteadyStatePhasesAllocationFreeWidth1) {
  Engine eng(test_machine(), CostParams::lassen(), Engine::Options{.threads = 1});
  // Warm-up at full length: arenas reach their peak chunk population,
  // channels intern, journals/frames size up.
  allocs_during(eng, 64);

  const std::uint64_t a4 = allocs_during(eng, 4);
  const std::uint64_t a64 = allocs_during(eng, 64);
  // 60 extra iterations × 16 ranks × 4 requests — any per-phase or
  // per-message allocation would separate these counts.
  EXPECT_EQ(a64, a4) << "steady-state phases allocated on the heap";
  // Deterministic: the warmed run has a fixed (per-run-scaffolding) count.
  EXPECT_EQ(allocs_during(eng, 64), a64);
}

TEST(EngineAlloc, ArenaAndFramePoolStableAcrossWarmRuns) {
  Engine eng(test_machine(), CostParams::lassen(), Engine::Options{.threads = 1});
  allocs_during(eng, 64);
  const auto arena_warm = eng.arena_stats();
  const auto frame_mallocs = util::frame_pool_mallocs();
  const auto slots = eng.channel_slots(0);
  allocs_during(eng, 8);
  allocs_during(eng, 64);
  const auto arena_after = eng.arena_stats();
  EXPECT_EQ(arena_after.chunks, arena_warm.chunks)
      << "arena grew after warm-up";
  EXPECT_GT(arena_after.recycles, arena_warm.recycles)
      << "chunks must recycle";
  EXPECT_EQ(util::frame_pool_mallocs(), frame_mallocs)
      << "frame pool missed after warm-up";
  EXPECT_EQ(eng.channel_count(0), 0u)
      << "drained channels must be erased";
  EXPECT_EQ(eng.channel_slots(0), slots)
      << "mailbox queue population must stay at its high-water mark";
}

TEST(EngineAlloc, SteadyStateBoundedWidth2) {
  // At width > 1 frame blocks drift between worker caches, so a handful of
  // reservoir refills (not mallocs) and per-run thread spawns are allowed;
  // what must not happen is per-message heap traffic.
  Engine eng(test_machine(), CostParams::lassen(), Engine::Options{.threads = 2});
  allocs_during(eng, 64);
  const std::uint64_t a4 = allocs_during(eng, 4);
  const std::uint64_t a64 = allocs_during(eng, 64);
  const std::uint64_t extra_msgs = 60ull * 16 * 2;  // sends of 60 extra iters
  EXPECT_LT(a64 - std::min(a64, a4), extra_msgs / 10)
      << "allocation count scales with message count";
}

TEST(EngineAlloc, OversizedPayloadSpillsAndRecycles) {
  // Payloads larger than an arena chunk take the spill path; the spill
  // chunk must be recycled across epochs instead of re-allocated.
  Engine eng(test_machine(), CostParams::lassen(), Engine::Options{.threads = 1});
  constexpr std::size_t kBig = 3 * 64 * 1024 / sizeof(double);
  auto program = [&](Context& ctx) -> Task<> {
    const int p = ctx.world().size();
    const int r = ctx.rank();
    std::vector<double> out(kBig, r + 1.0);
    std::vector<double> in(kBig);
    for (int it = 0; it < 6; ++it) {
      auto s = Request::send(ctx.world(),
                             std::as_bytes(std::span<const double>(out)),
                             (r + 1) % p, 3);
      auto rr = Request::recv(ctx.world(),
                              std::as_writable_bytes(std::span<double>(in)),
                              (r - 1 + p) % p, 3);
      s.start(ctx);
      rr.start(ctx);
      co_await ctx.wait(s);
      co_await ctx.wait(rr);
      if (in[0] != ((r - 1 + p) % p) + 1.0 || in[kBig - 1] != in[0])
        throw SimError("oversized payload corrupted");
    }
  };
  eng.run(program);
  const auto warm = eng.arena_stats();
  eng.run(program);
  const auto after = eng.arena_stats();
  EXPECT_EQ(after.chunks, warm.chunks) << "spill chunks must be reused";
  EXPECT_GT(after.recycles, warm.recycles);
}

/// The PR's zero-allocation guarantee must survive fault injection and the
/// reliability layer: drops, duplicates, timed parks, retransmissions and
/// debris draining all run on warmed structures (arena payload copies,
/// interned channels, pooled coroutine frames).  Same proof technique as
/// the fault-free test: iteration count must not move the allocation count
/// of a warmed engine.
TEST(EngineAlloc, FaultedSteadyStateAllocationFree) {
  Engine eng(test_machine(), CostParams::lassen(),
             Engine::Options{.threads = 1});
  eng.set_fault_plan(
      {.seed = 5,
       .events = {{.kind = FaultSpec::Kind::msg_drop, .rate = 0.2},
                  {.kind = FaultSpec::Kind::msg_dup, .rate = 0.2}}});
  const mpix::Reliability rel{.enabled = true, .timeout = 1e-4};

  // Cross-node pairing ((r + p/2) % p spans the node boundary on this
  // machine), so every data message is a drop/duplication candidate.
  auto faulted_ring = [&](Context& ctx, int iters) -> Task<> {
    const int p = ctx.world().size();
    const int r = ctx.rank();
    const int peer = (r + p / 2) % p;
    std::vector<double> out(32, r + 0.5);
    std::vector<double> in(32);
    mpix::impl::RelSend s(ctx.world(),
                          std::as_bytes(std::span<const double>(out)), peer, 7,
                          8);
    mpix::impl::RelRecv rv(ctx.world(),
                           std::as_writable_bytes(std::span<double>(in)), peer,
                           7, 8);
    for (int it = 0; it < iters; ++it) {
      s.start(ctx);
      rv.start(ctx);
      co_await mpix::impl::finish_channels(ctx, rel, {&rv, 1}, {&s, 1});
      if (in[0] != peer + 0.5) throw SimError("reliable payload corrupted");
    }
  };
  auto faulted_allocs = [&](int iters) {
    const std::uint64_t before = util::alloc_hook_count();
    eng.run([&](Context& ctx) -> Task<> { return faulted_ring(ctx, iters); });
    return util::alloc_hook_count() - before;
  };

  // Warm-up at the longest length used: the in-flight payload high-water
  // (retransmit copies, duplicate debris) grows with run length, so the
  // arena must see its peak before the measured runs.
  faulted_allocs(128);
  faulted_allocs(128);
  const auto arena_warm = eng.arena_stats();
  const auto frame_warm = util::frame_pool_mallocs();

  const std::uint64_t a64 = faulted_allocs(64);
  const std::uint64_t a128 = faulted_allocs(128);
  // 64 extra iterations × 16 ranks × (data + ack + retransmits) is >2000
  // messages; the counts differ only by a handful of per-run scaffolding
  // allocations (engine-run locals), never per message or per phase.
  const std::uint64_t diff = a128 > a64 ? a128 - a64 : a64 - a128;
  EXPECT_LT(diff, 16u) << "faulted allocation count scales with messages ("
                       << a64 << " vs " << a128 << ")";
  EXPECT_EQ(eng.arena_stats().chunks, arena_warm.chunks)
      << "arena grew after faulted warm-up";
  EXPECT_EQ(util::frame_pool_mallocs(), frame_warm)
      << "frame pool missed after faulted warm-up";
  // The fault machinery must actually have fired during the proof run.
  std::uint64_t drops = 0, dups = 0, retransmits = 0;
  for (int r = 0; r < test_machine().num_ranks(); ++r) {
    drops += eng.stats(r).faults.drops;
    dups += eng.stats(r).faults.dups;
    retransmits += eng.stats(r).faults.retransmits;
  }
  EXPECT_GT(drops, 0u);
  EXPECT_GT(dups, 0u);
  EXPECT_GT(retransmits, 0u);
}

TEST(EngineAlloc, ZeroByteMessagesNeverTouchTheArena) {
  Engine eng(test_machine(), CostParams::lassen(), Engine::Options{.threads = 1});
  eng.run([](Context& ctx) -> Task<> {
    for (int i = 0; i < 8; ++i) co_await coll::barrier(ctx, ctx.world());
  });
  EXPECT_EQ(eng.arena_stats().allocs, 0u);
  EXPECT_EQ(eng.arena_stats().chunks, 0u);
}

}  // namespace
