/// \file test_neighbor.cpp
/// \brief End-to-end verification of all three persistent neighbor
/// collectives: delivery correctness on arbitrary irregular patterns,
/// message-count invariants, and the paper's Example 2.1.

#include <gtest/gtest.h>

#include <tuple>

#include "pattern_util.hpp"
#include "simmpi/dist_graph.hpp"

using namespace simmpi;
using namespace mpix;
using pattern::GlobalPattern;
using pattern::RankArgs;

namespace {

struct Shape {
  int nodes;
  int rpn;  // one region per node
};

/// Per-rank recorded statistics for post-run assertions.
struct RunStats {
  std::vector<NeighborStats> standard_, partial_, full_;
  explicit RunStats(int n) : standard_(n), partial_(n), full_(n) {}
};

/// Run all three protocols on a pattern and verify delivered payloads.
RunStats run_all_protocols(const Shape& shape, const GlobalPattern& pat,
                           int iters = 3) {
  Engine eng(Machine({.num_nodes = shape.nodes, .regions_per_node = 1,
                      .ranks_per_region = shape.rpn}),
             CostParams::lassen());
  RunStats stats(pat.nranks);
  eng.run([&](Context& ctx) -> Task<> {
    const int r = ctx.rank();
    RankArgs a = pattern::rank_args(pat, r);
    DistGraph g = co_await dist_graph_create_adjacent(
        ctx, ctx.world(), a.sources, a.destinations, GraphAlgo::handshake);

    auto standard =
        co_await neighbor_alltoallv_init(ctx, g, a.view(), Method::standard);
    auto partial =
        co_await neighbor_alltoallv_init(ctx, g, a.view(), Method::locality);
    auto full = co_await neighbor_alltoallv_init(ctx, g, a.view(),
                                                 Method::locality_dedup);
    stats.standard_[r] = standard->stats();
    stats.partial_[r] = partial->stats();
    stats.full_[r] = full->stats();
    // Standard wraps every send segment in exactly one message, so its
    // counted values must sum to the send buffer size; the locality
    // variants re-route values through leaders, so only the internal
    // invariants apply.
    pattern::verify_stats(stats.standard_[r],
                          static_cast<long>(a.sendbuf.size()));
    pattern::verify_stats(stats.partial_[r]);
    pattern::verify_stats(stats.full_[r]);

    NeighborAlltoallv* protos[] = {standard.get(), partial.get(), full.get()};
    for (auto* proto : protos) {
      for (int it = 0; it < iters; ++it) {
        a.fill(100 * it + (proto == full.get() ? 7 : 0));
        std::fill(a.recvbuf.begin(), a.recvbuf.end(), -1.0);
        co_await proto->start(ctx);
        co_await proto->wait(ctx);
        for (std::size_t k = 0; k < a.recvbuf.size(); ++k)
          EXPECT_DOUBLE_EQ(a.recvbuf[k], a.expected[k])
              << proto->name() << " rank " << r << " pos " << k << " iter "
              << it;
      }
    }
    co_return;
  });
  return stats;
}

using pattern::sum_global_msgs;
using pattern::sum_global_values;

}  // namespace

/// Property sweep: machines x seeds.  Every protocol must deliver identical
/// payloads; aggregation must reduce inter-region message counts; dedup must
/// never increase inter-region values.
class NeighborProperty
    : public ::testing::TestWithParam<std::tuple<int, int, unsigned>> {};

INSTANTIATE_TEST_SUITE_P(
    MachinesAndSeeds, NeighborProperty,
    ::testing::Combine(::testing::Values(1, 2, 4),      // nodes (=regions)
                       ::testing::Values(1, 4, 8),      // ranks per region
                       ::testing::Values(1u, 2u, 3u)),  // pattern seed
    [](const auto& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "r" +
             std::to_string(std::get<1>(info.param)) + "s" +
             std::to_string(std::get<2>(info.param));
    });

TEST_P(NeighborProperty, AllProtocolsDeliverIdenticalPayloads) {
  const auto [nodes, rpn, seed] = GetParam();
  const int nranks = nodes * rpn;
  GlobalPattern pat = pattern::random_pattern(nranks, seed);
  RunStats stats = run_all_protocols({nodes, rpn}, pat);

  // Aggregation: at most one inter-region message per directed region pair.
  const long pairs_bound = static_cast<long>(nodes) * (nodes - 1);
  EXPECT_LE(sum_global_msgs(stats.partial_), pairs_bound);
  EXPECT_LE(sum_global_msgs(stats.full_), pairs_bound);
  // The standard protocol sends at least as many inter-region messages.
  EXPECT_GE(sum_global_msgs(stats.standard_), sum_global_msgs(stats.partial_));
  // Dedup sends the same number of messages but never more values.
  EXPECT_EQ(sum_global_msgs(stats.partial_), sum_global_msgs(stats.full_));
  EXPECT_LE(sum_global_values(stats.full_), sum_global_values(stats.partial_));
  // Partial aggregation reshuffles but does not change total values crossing
  // region boundaries.
  EXPECT_EQ(sum_global_values(stats.partial_),
            sum_global_values(stats.standard_));
}

TEST(Neighbor, EmptyPatternWorks) {
  GlobalPattern pat;
  pat.nranks = 8;
  pat.sends.resize(8);
  RunStats stats = run_all_protocols({2, 4}, pat, 2);
  EXPECT_EQ(sum_global_msgs(stats.standard_), 0);
  EXPECT_EQ(sum_global_msgs(stats.partial_), 0);
}

TEST(Neighbor, PurelyLocalPatternSendsNoGlobalMessages) {
  // All traffic within one region.
  GlobalPattern pat = pattern::random_pattern(8, 11);
  RunStats stats = run_all_protocols({1, 8}, pat);
  EXPECT_EQ(sum_global_msgs(stats.standard_), 0);
  EXPECT_EQ(sum_global_msgs(stats.partial_), 0);
  EXPECT_EQ(sum_global_msgs(stats.full_), 0);
}

TEST(Neighbor, OneRankPerRegionDegeneratesGracefully) {
  // Aggregation with region size 1 still must deliver correctly (the
  // "leader" is always the rank itself).
  GlobalPattern pat = pattern::random_pattern(6, 13);
  RunStats stats = run_all_protocols({6, 1}, pat);
  EXPECT_GE(sum_global_msgs(stats.standard_), 0);
}

TEST(Neighbor, SelfLoopsAreDelivered) {
  GlobalPattern pat;
  pat.nranks = 4;
  pat.sends.resize(4);
  pat.sends[2][2] = {201, 202};  // rank 2 sends to itself
  pat.sends[0][1] = {5};
  run_all_protocols({1, 4}, pat, 2);
}

TEST(Neighbor, DedupRequiresIndices) {
  Engine eng(Machine({.num_nodes = 2, .regions_per_node = 1,
                      .ranks_per_region = 2}),
             CostParams::lassen());
  EXPECT_THROW(
      eng.run([&](Context& ctx) -> Task<> {
        GlobalPattern pat = pattern::random_pattern(4, 1);
        RankArgs a = pattern::rank_args(pat, ctx.rank());
        DistGraph g = co_await dist_graph_create_adjacent(
            ctx, ctx.world(), a.sources, a.destinations,
            GraphAlgo::handshake);
        auto args = a.view();
        args.send_idx = {};  // strip the extension data
        co_await neighbor_alltoallv_init(ctx, g, args,
                                         Method::locality_dedup);
      }),
      SimError);
}

TEST(Neighbor, MismatchedCountsRejected) {
  Engine eng(Machine({.num_nodes = 1, .regions_per_node = 1,
                      .ranks_per_region = 2}),
             CostParams::lassen());
  EXPECT_THROW(
      eng.run([&](Context& ctx) -> Task<> {
        GlobalPattern pat = pattern::random_pattern(2, 2);
        RankArgs a = pattern::rank_args(pat, ctx.rank());
        DistGraph g = co_await dist_graph_create_adjacent(
            ctx, ctx.world(), a.sources, a.destinations,
            GraphAlgo::handshake);
        auto args = a.view();
        args.sendcounts.push_back(1);  // wrong arity
        co_await neighbor_alltoallv_init(ctx, g, args, Method::standard);
      }),
      SimError);
}

// ---------------------------------------------------------------------------
// Duplicate destinations/sources in the adjacency (legal in MPI dist
// graphs): the standard method must deliver them deterministically —
// sends and recvs of one (src, dst) channel match in segment order at
// every engine width — while the locality methods, whose aggregation maps
// are keyed by peer rank, must reject them loudly instead of silently
// merging segments.
// ---------------------------------------------------------------------------
TEST(Neighbor, DuplicateEdgesDeliverDeterministicallyWithStandard) {
  std::vector<double> recv_by_width[2];
  const int widths[] = {1, 4};
  for (int wi = 0; wi < 2; ++wi) {
    Engine eng(Machine({.num_nodes = 1, .regions_per_node = 1,
                        .ranks_per_region = 2}),
               CostParams::lassen(), Engine::Options{.threads = widths[wi]});
    std::vector<double>& got = recv_by_width[wi];
    eng.run([&](Context& ctx) -> Task<> {
      const int r = ctx.rank();
      std::vector<double> sendbuf, recvbuf;
      DistGraph g;
      g.comm = ctx.world();
      AlltoallvArgs args;
      if (r == 0) {
        // Two distinct segments toward the same destination.
        g.destinations = {1, 1};
        sendbuf = {1.0, 2.0, 10.0, 20.0, 30.0};
        args = AlltoallvArgsT<double>{.sendbuf = sendbuf,
                                      .sendcounts = {2, 3},
                                      .sdispls = {0, 2},
                                      .recvbuf = recvbuf,
                                      .recvcounts = {},
                                      .rdispls = {}};
      } else {
        g.sources = {0, 0};
        recvbuf.assign(5, -1.0);
        args = AlltoallvArgsT<double>{.sendbuf = sendbuf,
                                      .sendcounts = {},
                                      .sdispls = {},
                                      .recvbuf = recvbuf,
                                      .recvcounts = {2, 3},
                                      .rdispls = {0, 2}};
      }
      auto coll =
          co_await neighbor_alltoallv_init(ctx, g, args, Method::standard);
      co_await coll->start(ctx);
      co_await coll->wait(ctx);
      if (r == 1) {
        // FIFO per channel: segment i of the sender lands in recv slot i.
        EXPECT_EQ(recvbuf, (std::vector<double>{1, 2, 10, 20, 30}));
        got = recvbuf;
      }
      co_return;
    });
  }
  EXPECT_EQ(recv_by_width[0], recv_by_width[1]);
}

TEST(Neighbor, DuplicateEdgesRejectedByLocalityMethods) {
  for (Method m : {Method::locality, Method::locality_dedup}) {
    Engine eng(Machine({.num_nodes = 1, .regions_per_node = 1,
                        .ranks_per_region = 2}),
               CostParams::lassen());
    EXPECT_THROW(
        eng.run([&](Context& ctx) -> Task<> {
          const int r = ctx.rank();
          std::vector<double> sendbuf, recvbuf;
          std::vector<gidx> send_idx, recv_idx;
          DistGraph g;
          g.comm = ctx.world();
          AlltoallvArgs args;
          if (r == 0) {
            g.destinations = {1, 1};
            sendbuf = {1.0, 2.0};
            send_idx = {100, 101};
            args = AlltoallvArgsT<double>{.sendbuf = sendbuf,
                                          .sendcounts = {1, 1},
                                          .sdispls = {0, 1},
                                          .recvbuf = recvbuf,
                                          .recvcounts = {},
                                          .rdispls = {},
                                          .send_idx = send_idx};
          } else {
            g.sources = {0, 0};
            recvbuf.assign(2, -1.0);
            recv_idx = {100, 101};
            args = AlltoallvArgsT<double>{.sendbuf = sendbuf,
                                          .sendcounts = {},
                                          .sdispls = {},
                                          .recvbuf = recvbuf,
                                          .recvcounts = {1, 1},
                                          .rdispls = {0, 1},
                                          .recv_idx = recv_idx};
          }
          co_await neighbor_alltoallv_init(ctx, g, args, m);
        }),
        SimError)
        << static_cast<int>(m);
  }
}

// ---------------------------------------------------------------------------
// The paper's Example 2.1 (Figures 2-5): two regions of four ranks; region 0
// holds two values per rank (circle = gid 2r, square = gid 2r+1), shaded
// with the destination ranks in region 1.
// ---------------------------------------------------------------------------
namespace {
GlobalPattern example_2_1() {
  GlobalPattern p;
  p.nranks = 8;
  p.sends.resize(8);
  auto add = [&](int src, mpix::gidx gid, std::initializer_list<int> dsts) {
    for (int d : dsts) p.sends[src][d].push_back(gid);
  };
  // P0: circle(0) -> P5, P6 ; square(1) -> P4, P5, P7    (paper text)
  add(0, 0, {5, 6});
  add(0, 1, {4, 5, 7});
  // P2: circle(4) -> P4, P7 ; square(5) -> P4, P5, P6    (paper text)
  add(2, 4, {4, 7});
  add(2, 5, {4, 5, 6});
  // P1, P3: consistent completion to the paper's 15 total messages.
  add(1, 2, {4, 6});
  add(1, 3, {5, 6, 7});
  add(3, 6, {7});
  add(3, 7, {4, 6});
  for (auto& m : p.sends)
    for (auto& [d, gids] : m) std::sort(gids.begin(), gids.end());
  return p;
}
}  // namespace

TEST(Example21, StandardSendsFifteenInterRegionMessages) {
  GlobalPattern pat = example_2_1();
  RunStats stats = run_all_protocols({2, 4}, pat);
  EXPECT_EQ(sum_global_msgs(stats.standard_), 15);
  // P0 and P2 each send 4 inter-region messages (Figure 3).
  EXPECT_EQ(stats.standard_[0].global_msgs, 4);
  EXPECT_EQ(stats.standard_[2].global_msgs, 4);
}

TEST(Example21, AggregationSendsOneInterRegionMessage) {
  GlobalPattern pat = example_2_1();
  RunStats stats = run_all_protocols({2, 4}, pat);
  // One destination region => a single aggregated message (Figure 4).
  EXPECT_EQ(sum_global_msgs(stats.partial_), 1);
  EXPECT_EQ(sum_global_msgs(stats.full_), 1);
  // Partial aggregation still moves every copy (18 value copies across the
  // 15 standard messages: P0/P2 bundle two values toward P4/P5).
  EXPECT_EQ(sum_global_values(stats.partial_), 18);
}

TEST(Example21, DedupSendsEachValueOnce) {
  GlobalPattern pat = example_2_1();
  RunStats stats = run_all_protocols({2, 4}, pat);
  // Eight distinct values (2 per rank in region 0) cross once (Figure 5).
  EXPECT_EQ(sum_global_values(stats.full_), 8);
}
