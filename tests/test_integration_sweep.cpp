/// \file test_integration_sweep.cpp
/// \brief Cross-module integration sweeps: a distributed SpMV through every
/// protocol must equal the sequential SpMV for any (stencil, rank count,
/// region shape) combination, and the AMG pipeline must converge across
/// the problem family.

#include <gtest/gtest.h>

#include <random>

#include "amg/solve.hpp"
#include "harness/exchange.hpp"
#include "sparse/par_csr.hpp"
#include "sparse/stencil.hpp"

using namespace harness;
using namespace simmpi;
using sparse::Csr;

namespace {

enum class Problem { laplace5, laplace9, laplace27, rot_aniso, rot_mild };

Csr make_problem(Problem p) {
  switch (p) {
    case Problem::laplace5: return sparse::laplacian_5pt(20, 18);
    case Problem::laplace9: return sparse::laplacian_9pt(16, 16);
    case Problem::laplace27: return sparse::laplacian_27pt(7, 6, 6);
    case Problem::rot_aniso: return sparse::paper_problem(20, 20);
    case Problem::rot_mild: return sparse::rotated_aniso_7pt(18, 18, 0.9, 0.2);
  }
  return {};
}

const char* name_of(Problem p) {
  switch (p) {
    case Problem::laplace5: return "laplace5";
    case Problem::laplace9: return "laplace9";
    case Problem::laplace27: return "laplace27";
    case Problem::rot_aniso: return "rot_aniso";
    case Problem::rot_mild: return "rot_mild";
  }
  return "?";
}

/// Distributed SpMV y = A x through `protocol`, all ranks simulated.
std::vector<double> dist_spmv_all_protocols_check(const Csr& a, int nranks,
                                                  int rpn, Protocol protocol) {
  auto part = sparse::block_partition(a.rows(), nranks);
  sparse::ParCsr par = sparse::ParCsr::distribute(a, part, part);
  sparse::Halo halo = sparse::Halo::build(par);

  std::mt19937_64 rng(99);
  std::uniform_real_distribution<double> d(-1, 1);
  std::vector<double> x(a.rows());
  for (auto& v : x) v = d(rng);
  auto xs = sparse::split_vector(x, part);

  Engine eng(Machine::with_region_size(nranks, rpn), CostParams::lassen());
  std::vector<std::vector<double>> ys(nranks);
  eng.run([&](Context& ctx) -> Task<> {
    const int r = ctx.rank();
    auto ex = co_await make_halo_exchange(ctx, ctx.world(), protocol,
                                          halo.ranks[r]);
    ys[r].resize(sparse::local_size(part, r));
    co_await ex->start(ctx, xs[r]);
    co_await ex->wait(ctx);
    sparse::spmv_local(par.ranks[r], xs[r], ex->x_ext(), ys[r]);
    co_return;
  });
  std::vector<double> y = sparse::join_vector(ys);
  std::vector<double> ref(a.rows());
  a.spmv(x, ref);
  for (int i = 0; i < a.rows(); ++i)
    EXPECT_NEAR(y[i], ref[i], 1e-12) << "row " << i;
  return y;
}

}  // namespace

class SpmvSweep
    : public ::testing::TestWithParam<std::tuple<Problem, int, int>> {};

INSTANTIATE_TEST_SUITE_P(
    Grid, SpmvSweep,
    ::testing::Combine(::testing::Values(Problem::laplace5, Problem::laplace9,
                                         Problem::laplace27,
                                         Problem::rot_aniso,
                                         Problem::rot_mild),
                       ::testing::Values(4, 12, 32),  // ranks
                       ::testing::Values(1, 4)),      // ranks per region
    [](const auto& info) {
      return std::string(name_of(std::get<0>(info.param))) + "_p" +
             std::to_string(std::get<1>(info.param)) + "_r" +
             std::to_string(std::get<2>(info.param));
    });

TEST_P(SpmvSweep, DistributedSpmvMatchesSequentialThroughEveryProtocol) {
  const auto [prob, nranks, rpn] = GetParam();
  Csr a = make_problem(prob);
  for (Protocol p : kAllProtocols)
    dist_spmv_all_protocols_check(a, nranks, rpn, p);
}

class AmgSweep : public ::testing::TestWithParam<Problem> {};
INSTANTIATE_TEST_SUITE_P(Problems, AmgSweep,
                         ::testing::Values(Problem::laplace5,
                                           Problem::laplace9,
                                           Problem::rot_aniso,
                                           Problem::rot_mild),
                         [](const auto& info) { return name_of(info.param); });

TEST_P(AmgSweep, PcgWithAmgPreconditionerConverges) {
  Csr a = make_problem(GetParam());
  amg::Hierarchy h = amg::Hierarchy::build(a);
  std::mt19937_64 rng(4);
  std::uniform_real_distribution<double> d(-1, 1);
  std::vector<double> b(a.rows());
  for (auto& v : b) v = d(rng);
  std::vector<double> x(a.rows(), 0.0);
  auto res = amg::amg_pcg(h, b, x, 1e-8, 300);
  EXPECT_TRUE(res.converged)
      << name_of(GetParam()) << " residual " << res.final_residual;
}

TEST_P(AmgSweep, HierarchyInvariantsHold) {
  Csr a = make_problem(GetParam());
  amg::Hierarchy h = amg::Hierarchy::build(a);
  for (int l = 0; l + 1 < h.num_levels(); ++l) {
    const auto& lvl = h.levels[l];
    // Every C point maps to exactly one coarse column with weight 1.
    auto cpts = amg::coarse_points(lvl.cf);
    EXPECT_EQ(static_cast<int>(cpts.size()), h.levels[l + 1].n());
    // P has no row with more entries than the truncation limit (+C rows=1).
    for (int i = 0; i < lvl.P.rows(); ++i)
      EXPECT_LE(lvl.P.row_cols(i).size(),
                static_cast<std::size_t>(h.options.interp_max_elements));
  }
}

TEST(IntegrationSweep, WeakScalingFamilyHasConsistentHalos) {
  // The weak-scaling problem family used by Figure 13: every size must
  // produce globally consistent halos (send==recv totals, gid alignment).
  for (int p : {32, 64, 128}) {
    int nx = 0, ny = 0;
    sparse::factor_grid(256L * p, nx, ny);
    Csr a = sparse::paper_problem(nx, ny);
    auto part = sparse::block_partition(a.rows(), p);
    sparse::ParCsr par = sparse::ParCsr::distribute(a, part, part);
    sparse::Halo halo = sparse::Halo::build(par);
    long send = 0, recv = 0;
    for (const auto& rh : halo.ranks) {
      send += rh.total_send();
      recv += rh.total_recv();
      EXPECT_EQ(rh.send_idx.size(), rh.send_gids.size());
    }
    EXPECT_EQ(send, recv) << "p=" << p;
    EXPECT_GT(send, 0) << "p=" << p;
  }
}

TEST(IntegrationSweep, RegionShapeDoesNotChangeDeliveredData) {
  // Same matrix, same ranks, different machine shapes: the locality
  // protocol's routing changes but the delivered halo must not.
  Csr a = sparse::paper_problem(16, 16);
  auto y1 = dist_spmv_all_protocols_check(a, 16, 4,
                                          Protocol::neighbor_full);
  auto y2 = dist_spmv_all_protocols_check(a, 16, 8,
                                          Protocol::neighbor_full);
  auto y3 = dist_spmv_all_protocols_check(a, 16, 16,
                                          Protocol::neighbor_full);
  for (std::size_t i = 0; i < y1.size(); ++i) {
    EXPECT_DOUBLE_EQ(y1[i], y2[i]);
    EXPECT_DOUBLE_EQ(y1[i], y3[i]);
  }
}
