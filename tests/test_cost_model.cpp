/// \file test_cost_model.cpp
/// \brief Cost-model regimes, monotonicity and tier ordering.

#include <gtest/gtest.h>

#include "simmpi/cost_model.hpp"

using simmpi::CostModel;
using simmpi::CostParams;
using simmpi::Locality;

TEST(CostModel, RegimeSelection) {
  CostParams p = CostParams::lassen();
  const auto& net = p.tier[static_cast<int>(Locality::network)];
  EXPECT_EQ(&net.regime(1), &net.short_);
  EXPECT_EQ(&net.regime(net.short_max), &net.short_);
  EXPECT_EQ(&net.regime(net.short_max + 1), &net.eager);
  EXPECT_EQ(&net.regime(net.eager_max), &net.eager);
  EXPECT_EQ(&net.regime(net.eager_max + 1), &net.rend);
}

TEST(CostModel, TransferTimeIncreasesWithBytesWithinRegime) {
  CostModel m(CostParams::lassen());
  for (int tier = 0; tier < simmpi::kNumLocalities; ++tier) {
    auto loc = static_cast<Locality>(tier);
    EXPECT_LT(m.transfer_time(loc, 8), m.transfer_time(loc, 256));
    EXPECT_LT(m.transfer_time(loc, 1024), m.transfer_time(loc, 8000));
    EXPECT_LT(m.transfer_time(loc, 10000), m.transfer_time(loc, 1000000));
  }
}

TEST(CostModel, LatencyOrderingMatchesHierarchy) {
  // Small messages: self < region < node < network latency (the premise of
  // locality-aware aggregation for message-count-bound patterns).
  CostModel m(CostParams::lassen());
  const std::size_t b = 64;
  EXPECT_LT(m.transfer_time(Locality::self, b),
            m.transfer_time(Locality::region, b));
  EXPECT_LT(m.transfer_time(Locality::region, b),
            m.transfer_time(Locality::node, b));
  EXPECT_LT(m.transfer_time(Locality::node, b),
            m.transfer_time(Locality::network, b));
}

TEST(CostModel, LargeMessagesCrossNumaCostsMoreThanNetwork) {
  // Published Lassen behaviour: inter-CPU (node tier) large transfers are
  // more expensive than inter-node ones.
  CostModel m(CostParams::lassen());
  const std::size_t b = 1 << 20;
  EXPECT_GT(m.transfer_time(Locality::node, b),
            m.transfer_time(Locality::network, b));
}

TEST(CostModel, NicOccupancyOnlyWithInjectionCap) {
  CostParams p = CostParams::lassen();
  p.use_injection_cap = true;
  EXPECT_GT(CostModel(p).nic_occupancy(1 << 20), 0.0);
  p.use_injection_cap = false;
  EXPECT_EQ(CostModel(p).nic_occupancy(1 << 20), 0.0);
}

TEST(CostModel, EjectOccupancyOnlyWithEjectionCap) {
  // Off by default: a symmetric workload bottlenecks identically at either
  // end, so enabling it everywhere would only rescale the paper sweeps.
  CostParams p = CostParams::lassen();
  EXPECT_FALSE(p.use_ejection_cap);
  EXPECT_EQ(CostModel(p).eject_occupancy(1 << 20), 0.0);
  p.use_ejection_cap = true;
  CostModel m(p);
  EXPECT_GT(m.eject_occupancy(1 << 20), 0.0);
  EXPECT_DOUBLE_EQ(m.eject_occupancy(1 << 20),
                   static_cast<double>(1 << 20) / p.nic_eject_rate);
  // A slower receive side drains slower.
  p.nic_eject_rate /= 4;
  EXPECT_DOUBLE_EQ(CostModel(p).eject_occupancy(1 << 20),
                   4 * m.eject_occupancy(1 << 20));
}

TEST(CostModel, RecvOverheadGrowsWithQueueDepth) {
  CostModel m(CostParams::lassen());
  EXPECT_LT(m.recv_overhead(0), m.recv_overhead(10));
  EXPECT_DOUBLE_EQ(m.recv_overhead(10) - m.recv_overhead(0),
                   10 * m.params().queue_search);
}

TEST(CostModel, FlatModelIsLocalityBlind) {
  CostModel m(CostParams::flat());
  const std::size_t b = 4096;
  EXPECT_DOUBLE_EQ(m.transfer_time(Locality::self, b),
                   m.transfer_time(Locality::network, b));
  EXPECT_DOUBLE_EQ(m.transfer_time(Locality::region, b),
                   m.transfer_time(Locality::node, b));
}
