/// \file test_locality_options.cpp
/// \brief Locality-method knobs: LPT vs round-robin leader assignment must
/// not change delivered payloads (only the per-leader load balance), and
/// Method::locality vs Method::locality_dedup must deliver byte-identical
/// receive buffers on patterns whose send_idx contains duplicates.

#include <gtest/gtest.h>

#include <cstring>

#include "pattern_util.hpp"
#include "simmpi/dist_graph.hpp"

using namespace simmpi;
using namespace mpix;
using pattern::GlobalPattern;
using pattern::RankArgs;

namespace {

/// Per-rank receive buffers (after the last iteration) and statistics of
/// one locality-aware run.
struct RunResult {
  std::vector<std::vector<double>> recv;
  std::vector<NeighborStats> stats;
};

RunResult run_locality(int nodes, int rpn, const GlobalPattern& pat,
                       Method method, Options opts = {}, int iters = 2) {
  Engine eng(Machine({.num_nodes = nodes, .regions_per_node = 1,
                      .ranks_per_region = rpn}),
             CostParams::lassen());
  RunResult out;
  out.recv.resize(pat.nranks);
  out.stats.resize(pat.nranks);
  eng.run([&](Context& ctx) -> Task<> {
    const int r = ctx.rank();
    RankArgs a = pattern::rank_args(pat, r);
    DistGraph g = co_await dist_graph_create_adjacent(
        ctx, ctx.world(), a.sources, a.destinations, GraphAlgo::handshake);
    auto proto =
        co_await neighbor_alltoallv_init(ctx, g, a.view(), method, opts);
    out.stats[r] = proto->stats();
    pattern::verify_stats(out.stats[r]);
    for (int it = 0; it < iters; ++it) {
      a.fill(it);
      std::fill(a.recvbuf.begin(), a.recvbuf.end(), -3.0);
      co_await proto->start(ctx);
      co_await proto->wait(ctx);
      for (std::size_t k = 0; k < a.recvbuf.size(); ++k)
        EXPECT_DOUBLE_EQ(a.recvbuf[k], a.expected[k])
            << proto->name() << " rank " << r << " pos " << k << " iter "
            << it;
    }
    out.recv[r] = a.recvbuf;
    co_return;
  });
  return out;
}

bool bytes_equal(const std::vector<double>& x, const std::vector<double>& y) {
  return x.size() == y.size() &&
         (x.empty() ||
          std::memcmp(x.data(), y.data(), x.size() * sizeof(double)) == 0);
}

using pattern::max_global_values;
using pattern::sum_global_values;

/// Region 0 (two ranks) sends 1 / 2 / 3 values to regions 1 / 2 / 3.  With
/// two candidate leaders, round-robin assigns regions {1, 3} to core 0 and
/// {2} to core 1 (loads 4 / 2), while LPT yields the even 3 / 3 split.
GlobalPattern skewed_pattern() {
  GlobalPattern p;
  p.nranks = 8;
  p.sends.resize(8);
  p.sends[0][2] = {1001};
  p.sends[0][4] = {1002, 1003};
  p.sends[1][6] = {1004, 1005, 1006};
  return p;
}

/// Rank 0 sends the *same* two values (equal send_idx) to both ranks of
/// every other region: dedup must collapse each region pair's payload to
/// the unique values without changing what arrives.
GlobalPattern duplicate_heavy_pattern(int nodes, int rpn) {
  GlobalPattern p;
  p.nranks = nodes * rpn;
  p.sends.resize(p.nranks);
  for (int d = rpn; d < p.nranks; ++d) p.sends[0][d] = {7, 8};
  return p;
}

}  // namespace

TEST(LocalityOptions, LptAndRoundRobinDeliverIdenticalExchanges) {
  for (unsigned seed : {1u, 5u, 9u}) {
    GlobalPattern pat = pattern::random_pattern(24, seed);
    RunResult lpt =
        run_locality(3, 8, pat, Method::locality, {.lpt_balance = true});
    RunResult rr =
        run_locality(3, 8, pat, Method::locality, {.lpt_balance = false});
    for (int r = 0; r < pat.nranks; ++r)
      EXPECT_TRUE(bytes_equal(lpt.recv[r], rr.recv[r]))
          << "seed " << seed << " rank " << r;
    // Leader choice reshuffles who sends, not how much crosses in total.
    EXPECT_EQ(sum_global_values(lpt.stats), sum_global_values(rr.stats))
        << "seed " << seed;
  }
}

TEST(LocalityOptions, LptBalancesLeaderLoadBetterThanRoundRobin) {
  GlobalPattern pat = skewed_pattern();
  RunResult lpt =
      run_locality(4, 2, pat, Method::locality, {.lpt_balance = true});
  RunResult rr =
      run_locality(4, 2, pat, Method::locality, {.lpt_balance = false});
  // Identical totals, different per-leader balance.
  EXPECT_EQ(sum_global_values(lpt.stats), 6);
  EXPECT_EQ(sum_global_values(rr.stats), 6);
  EXPECT_EQ(max_global_values(lpt.stats), 3);  // {3, 3}
  EXPECT_EQ(max_global_values(rr.stats), 4);   // {4, 2}
  for (int r = 0; r < pat.nranks; ++r)
    EXPECT_TRUE(bytes_equal(lpt.recv[r], rr.recv[r])) << "rank " << r;
}

TEST(LocalityOptions, DedupOnOffDeliverByteIdenticalRecvbufs) {
  // random_pattern draws each rank's values from a pool of three, so
  // duplicate send_idx across destinations is the common case.
  for (unsigned seed : {2u, 4u, 8u}) {
    GlobalPattern pat = pattern::random_pattern(16, seed);
    RunResult plain =
        run_locality(4, 4, pat, Method::locality);
    RunResult dedup =
        run_locality(4, 4, pat, Method::locality_dedup);
    for (int r = 0; r < pat.nranks; ++r)
      EXPECT_TRUE(bytes_equal(plain.recv[r], dedup.recv[r]))
          << "seed " << seed << " rank " << r;
    EXPECT_LE(sum_global_values(dedup.stats),
              sum_global_values(plain.stats))
        << "seed " << seed;
  }
}

TEST(LocalityOptions, DedupStrictlyReducesDuplicateHeavyTraffic) {
  const int nodes = 4, rpn = 2;
  GlobalPattern pat = duplicate_heavy_pattern(nodes, rpn);
  RunResult plain =
      run_locality(nodes, rpn, pat, Method::locality);
  RunResult dedup =
      run_locality(nodes, rpn, pat, Method::locality_dedup);
  for (int r = 0; r < pat.nranks; ++r)
    EXPECT_TRUE(bytes_equal(plain.recv[r], dedup.recv[r])) << "rank " << r;
  // Two values copied to both ranks of each of the three remote regions:
  // 12 copies without dedup, 2 unique values per region pair with it.
  EXPECT_EQ(sum_global_values(plain.stats), 12);
  EXPECT_EQ(sum_global_values(dedup.stats), 6);
}
