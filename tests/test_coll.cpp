/// \file test_coll.cpp
/// \brief Collective algorithms: correctness over varied communicator sizes.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "simmpi/coll.hpp"
#include "simmpi/engine.hpp"

using namespace simmpi;

namespace {
Engine make_engine(int nranks) {
  // Small regions (4) so collectives cross several locality tiers; odd rank
  // counts fall back to one rank per region (all-network machine).
  const int rpn = (nranks % 4 == 0) ? 4 : 1;
  return Engine(Machine({.num_nodes = nranks / rpn, .regions_per_node = 1,
                         .ranks_per_region = rpn}),
                CostParams::lassen());
}
}  // namespace

/// Parameterized over communicator size, including non-powers of two.
class CollSize : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(Sizes, CollSize,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 12, 16, 23,
                                           32, 48));

TEST_P(CollSize, BarrierCompletes) {
  const int p = GetParam();
  Engine eng = make_engine(p);
  // Rank programs run concurrently (worker-pool engine): shared counters
  // must be atomic.
  std::atomic<int> count{0};
  eng.run([&](Context& ctx) -> Task<> {
    co_await coll::barrier(ctx, ctx.world());
    ++count;
  });
  EXPECT_EQ(count.load(), p);
}

TEST_P(CollSize, AllreduceSum) {
  const int p = GetParam();
  Engine eng = make_engine(p);
  eng.run([&](Context& ctx) -> Task<> {
    long v = co_await coll::allreduce<long>(
        ctx, ctx.world(), static_cast<long>(ctx.rank() + 1),
        [](long a, long b) { return a + b; });
    EXPECT_EQ(v, static_cast<long>(p) * (p + 1) / 2);
  });
}

TEST_P(CollSize, AllreduceMax) {
  const int p = GetParam();
  Engine eng = make_engine(p);
  eng.run([&](Context& ctx) -> Task<> {
    double v = co_await coll::allreduce<double>(
        ctx, ctx.world(), static_cast<double>((ctx.rank() * 7) % p),
        [](double a, double b) { return std::max(a, b); });
    double expected = 0;
    for (int r = 0; r < p; ++r)
      expected = std::max(expected, static_cast<double>((r * 7) % p));
    EXPECT_DOUBLE_EQ(v, expected);
  });
}

TEST_P(CollSize, AllgatherCollectsEveryRank) {
  const int p = GetParam();
  Engine eng = make_engine(p);
  eng.run([&](Context& ctx) -> Task<> {
    auto all = co_await coll::allgather<int>(ctx, ctx.world(),
                                             ctx.rank() * 3 + 1);
    EXPECT_EQ(static_cast<int>(all.size()), p);
    if (static_cast<int>(all.size()) != p) co_return;
    for (int r = 0; r < p; ++r) EXPECT_EQ(all[r], r * 3 + 1);
  });
}

TEST_P(CollSize, AllgathervVariableSizes) {
  const int p = GetParam();
  Engine eng = make_engine(p);
  eng.run([&](Context& ctx) -> Task<> {
    // rank r contributes r%3+1 values of value 100*r+i.
    std::vector<int> mine;
    for (int i = 0; i < ctx.rank() % 3 + 1; ++i)
      mine.push_back(100 * ctx.rank() + i);
    std::vector<int> counts;
    auto all = co_await coll::allgatherv<int>(ctx, ctx.world(),
                                              std::move(mine), &counts);
    EXPECT_EQ(static_cast<int>(counts.size()), p);
    if (static_cast<int>(counts.size()) != p) co_return;
    long pos = 0;
    for (int r = 0; r < p; ++r) {
      EXPECT_EQ(counts[r], r % 3 + 1);
      for (int i = 0; i < counts[r]; ++i)
        EXPECT_EQ(all[pos++], 100 * r + i);
    }
    EXPECT_EQ(pos, static_cast<long>(all.size()));
  });
}

TEST_P(CollSize, BcastFromEveryRoot) {
  const int p = GetParam();
  for (int root = 0; root < p; root = root * 2 + 1) {
    Engine eng = make_engine(p);
    eng.run([&](Context& ctx) -> Task<> {
      std::vector<double> data;
      if (ctx.rank() == root) data = {3.5, -1.0, static_cast<double>(root)};
      co_await coll::bcast(ctx, ctx.world(), data, root);
      EXPECT_EQ(data.size(), 3u);
      if (data.size() != 3u) co_return;
      EXPECT_DOUBLE_EQ(data[0], 3.5);
      EXPECT_DOUBLE_EQ(data[2], root);
    });
  }
}

TEST_P(CollSize, ExscanSum) {
  const int p = GetParam();
  Engine eng = make_engine(p);
  eng.run([&](Context& ctx) -> Task<> {
    long v = co_await coll::exscan<long>(
        ctx, ctx.world(), static_cast<long>(ctx.rank() + 1),
        [](long a, long b) { return a + b; }, 0L);
    // exscan of (r+1) = sum_{i<r} (i+1) = r(r+1)/2
    EXPECT_EQ(v, static_cast<long>(ctx.rank()) * (ctx.rank() + 1) / 2);
  });
}

TEST_P(CollSize, AlltoallvExchangesPersonalizedData) {
  const int p = GetParam();
  Engine eng = make_engine(p);
  eng.run([&](Context& ctx) -> Task<> {
    std::vector<std::vector<int>> sendto(p);
    for (int d = 0; d < p; ++d)
      for (int i = 0; i < (ctx.rank() + d) % 3; ++i)
        sendto[d].push_back(1000 * ctx.rank() + 10 * d + i);
    auto recv = co_await coll::alltoallv<int>(ctx, ctx.world(), sendto);
    EXPECT_EQ(static_cast<int>(recv.size()), p);
    if (static_cast<int>(recv.size()) != p) co_return;
    for (int s = 0; s < p; ++s) {
      EXPECT_EQ(static_cast<int>(recv[s].size()), (s + ctx.rank()) % 3);
      if (static_cast<int>(recv[s].size()) != (s + ctx.rank()) % 3) co_return;
      for (std::size_t i = 0; i < recv[s].size(); ++i)
        EXPECT_EQ(recv[s][i],
                  1000 * s + 10 * ctx.rank() + static_cast<int>(i));
    }
  });
}

TEST(Coll, CommSplitFormsOrderedGroups) {
  Engine eng = make_engine(12);
  eng.run([&](Context& ctx) -> Task<> {
    const int color = ctx.rank() % 3;
    Comm sub = co_await coll::comm_split(ctx, ctx.world(), color,
                                         -ctx.rank() /*reverse order*/);
    EXPECT_EQ(sub.size(), 4);
    // key = -rank sorts members in descending world rank.
    for (int i = 0; i + 1 < sub.size(); ++i)
      EXPECT_GT(sub.global(i), sub.global(i + 1));
    EXPECT_EQ(sub.global(sub.rank()), ctx.rank());
  });
}

TEST(Coll, SplitByRegionGroupsRegionRanks) {
  Engine eng(Machine({.num_nodes = 3, .regions_per_node = 2,
                      .ranks_per_region = 4}),
             CostParams::lassen());
  eng.run([&](Context& ctx) -> Task<> {
    Comm region = co_await coll::split_by_region(ctx, ctx.world());
    EXPECT_EQ(region.size(), 4);
    const auto& m = ctx.engine().machine();
    for (int i = 0; i < region.size(); ++i)
      EXPECT_EQ(m.region_of(region.global(i)), m.region_of(ctx.rank()));
    // Local rank order matches core order.
    EXPECT_EQ(region.rank(), m.core_of(ctx.rank()));
  });
}

TEST(Coll, SubCommunicatorCollectivesWork) {
  Engine eng = make_engine(16);
  eng.run([&](Context& ctx) -> Task<> {
    Comm region = co_await coll::split_by_region(ctx, ctx.world());
    long sum = co_await coll::allreduce<long>(
        ctx, region, static_cast<long>(ctx.rank()),
        [](long a, long b) { return a + b; });
    long expected = 0;
    for (int i = 0; i < region.size(); ++i) expected += region.global(i);
    EXPECT_EQ(sum, expected);
  });
}

TEST(Coll, BarrierSynchronizesClocks) {
  // After a barrier, no rank's clock may precede the latest entrant.
  Engine eng = make_engine(8);
  eng.run([&](Context& ctx) -> Task<> {
    ctx.compute(ctx.rank() == 3 ? 2.0 : 0.0);
    co_await coll::barrier(ctx, ctx.world());
    EXPECT_GE(ctx.now(), 2.0);
    co_return;
  });
}

TEST(Coll, ConcurrentCollectivesOnDifferentComms) {
  // Region comms run allreduce "concurrently"; tags/ctx ids must not clash.
  Engine eng(Machine({.num_nodes = 4, .regions_per_node = 1,
                      .ranks_per_region = 4}),
             CostParams::lassen());
  eng.run([&](Context& ctx) -> Task<> {
    Comm region = co_await coll::split_by_region(ctx, ctx.world());
    const auto& m = ctx.engine().machine();
    long v = co_await coll::allreduce<long>(
        ctx, region, 1L, [](long a, long b) { return a + b; });
    EXPECT_EQ(v, 4);
    long w = co_await coll::allreduce<long>(
        ctx, ctx.world(), static_cast<long>(m.region_of(ctx.rank())),
        [](long a, long b) { return a + b; });
    EXPECT_EQ(w, (0 + 1 + 2 + 3) * 4);
  });
}
