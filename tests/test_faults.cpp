/// \file test_faults.cpp
/// \brief Fault injection and reliable delivery: schedule validation,
/// counter-mode hash determinism, the quiescence watchdog, byte-inertness
/// of no-op plans, timeout/retransmit semantics, and the width-determinism
/// battery — every fault class, through every sparse method and the Bruck
/// dense path, bit-identical at sim widths {1, 2, 4, 7}.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "harness/measure.hpp"
#include "mpix/reliable.hpp"
#include "patterns/pattern.hpp"
#include "simmpi/engine.hpp"
#include "simmpi/fault.hpp"

using harness::MeasureConfig;
using harness::PatternMeasurement;
using patterns::Workload;
using simmpi::ChannelKey;
using simmpi::Context;
using simmpi::FaultPlan;
using simmpi::FaultSpec;
using simmpi::Machine;
using simmpi::SimError;
using simmpi::Task;
using Kind = simmpi::FaultSpec::Kind;

namespace {

constexpr int kWidths[] = {1, 2, 4, 7};

Machine test_machine() {
  return Machine({.num_nodes = 4, .regions_per_node = 1,
                  .ranks_per_region = 4, .switch_levels = {}});
}

/// 4:1-tapered two-leaf fat tree with both endpoint caps charged: the
/// shape every fault class can act on (brownouts need link tiers, NIC
/// slowdowns the injection cap).
MeasureConfig fault_config() {
  MeasureConfig cfg;
  cfg.ranks_per_region = 4;
  cfg.switch_levels = {{.radix = 2, .taper = 4.0}, {.radix = 2, .taper = 1.0}};
  cfg.cost.use_link_cap = true;
  cfg.cost.link_msg_bytes = 256.0;
  return cfg;
}

/// Run `f` and return the SimError message it must throw.
template <class F>
std::string error_of(F&& f) {
  try {
    std::forward<F>(f)();
  } catch (const SimError& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected SimError, nothing thrown";
  return {};
}

void expect_contains(const std::string& msg, const char* sub) {
  EXPECT_NE(msg.find(sub), std::string::npos)
      << "expected \"" << sub << "\" in: " << msg;
}

/// Exact (bitwise) equality of two measurements including the fault
/// counters; doubles compared with == on purpose — the contract is
/// bit-identity, not tolerance.
void expect_identical(const PatternMeasurement& a, const PatternMeasurement& b,
                      const std::string& what) {
  EXPECT_EQ(a.init_seconds, b.init_seconds) << what;
  EXPECT_EQ(a.blocking_seconds, b.blocking_seconds) << what;
  EXPECT_EQ(a.overlapped_seconds, b.overlapped_seconds) << what;
  EXPECT_EQ(a.overlap_seconds, b.overlap_seconds) << what;
  EXPECT_EQ(a.sum_local_msgs, b.sum_local_msgs) << what;
  EXPECT_EQ(a.sum_global_msgs, b.sum_global_msgs) << what;
  EXPECT_EQ(a.sum_local_values, b.sum_local_values) << what;
  EXPECT_EQ(a.sum_global_values, b.sum_global_values) << what;
  EXPECT_EQ(a.max_global_msgs, b.max_global_msgs) << what;
  EXPECT_EQ(a.max_global_msg_values, b.max_global_msg_values) << what;
  EXPECT_EQ(a.link_seconds, b.link_seconds) << what;
  EXPECT_EQ(a.max_link_backlog_seconds, b.max_link_backlog_seconds) << what;
  EXPECT_EQ(a.sum_link_msgs, b.sum_link_msgs) << what;
  EXPECT_EQ(a.drops, b.drops) << what;
  EXPECT_EQ(a.dups, b.dups) << what;
  EXPECT_EQ(a.retransmits, b.retransmits) << what;
  EXPECT_EQ(a.timeouts, b.timeouts) << what;
}

/// One entry per fault class of the width battery.  Drop/duplication run
/// with reliable delivery enabled — without it a drop deadlocks (that path
/// is the watchdog test) and a duplicate would linger across windows.
struct FaultCase {
  const char* name;
  FaultPlan plan;
  bool reliable;
};

std::vector<FaultCase> fault_cases() {
  return {
      {"msg_drop",
       {.seed = 42, .events = {{.kind = Kind::msg_drop, .rate = 0.25}}},
       true},
      {"msg_dup",
       {.seed = 7, .events = {{.kind = Kind::msg_dup, .rate = 0.25}}},
       true},
      {"link_brownout",
       {.events = {{.kind = Kind::link_brownout, .severity = 0.5}}},
       false},
      {"nic_slowdown",
       {.events = {{.kind = Kind::nic_slowdown, .severity = 0.5}}},
       false},
      {"compute_stall",
       {.events = {{.kind = Kind::compute_stall, .severity = 0.25}}},
       false},
  };
}

}  // namespace

// ---------------------------------------------------------------------------
// Schedule validation: every malformed field throws a SimError naming the
// field and the offending value.

TEST(FaultValidation, RejectsOutOfRangeFields) {
  const Machine m = test_machine();
  auto reject = [&](FaultSpec e) {
    return error_of([&] { validate_fault_plan({.events = {e}}, m); });
  };

  std::string msg = reject({.kind = Kind::msg_drop, .rate = -0.1});
  expect_contains(msg, "events[0].rate");
  expect_contains(msg, "in [0, 1]");
  expect_contains(msg, "-0.1");

  msg = reject({.kind = Kind::msg_dup, .rate = 1.5});
  expect_contains(msg, "events[0].rate");

  msg = reject({.kind = Kind::compute_stall, .severity = 0.0});
  expect_contains(msg, "events[0].severity");
  expect_contains(msg, "in (0, 1]");

  msg = reject({.kind = Kind::link_brownout, .severity = 2.0});
  expect_contains(msg, "events[0].severity");

  msg = reject({.kind = Kind::msg_drop, .t_begin = -1.0, .rate = 0.5});
  expect_contains(msg, "events[0].t_begin");
  expect_contains(msg, ">= 0");

  msg = reject(
      {.kind = Kind::msg_drop, .t_begin = 2.0, .t_end = 1.0, .rate = 0.5});
  expect_contains(msg, "events[0].t_end");
  expect_contains(msg, "inverted or empty");
}

TEST(FaultValidation, RejectsOutOfRangeTargets) {
  const Machine m = test_machine();  // 16 ranks, 4 nodes, no link tiers
  auto reject = [&](FaultSpec e) {
    return error_of([&] { validate_fault_plan({.events = {e}}, m); });
  };

  // The flat machine has zero link tiers, so any tier index is out of
  // range.
  std::string msg = reject({.kind = Kind::link_brownout, .tier = 0});
  expect_contains(msg, "events[0].tier");
  expect_contains(msg, "[0, 0)");

  msg = reject({.kind = Kind::nic_slowdown, .node = 4});
  expect_contains(msg, "events[0].node");
  expect_contains(msg, "[0, 4)");

  msg = reject({.kind = Kind::msg_drop, .rank = 16, .rate = 0.5});
  expect_contains(msg, "events[0].rank");
  expect_contains(msg, "[0, 16)");

  msg = reject({.kind = Kind::compute_stall, .rank = -2, .severity = 0.5});
  expect_contains(msg, "events[0].rank");
}

TEST(FaultValidation, RejectsOverlappingSameKindWindows) {
  const Machine m = test_machine();
  // Same target, intersecting windows.
  std::string msg = error_of([&] {
    validate_fault_plan(
        {.events = {{.kind = Kind::msg_drop, .t_begin = 0.0, .t_end = 2.0,
                     .rank = 3, .rate = 0.5},
                    {.kind = Kind::msg_drop, .t_begin = 1.0, .t_end = 3.0,
                     .rank = 3, .rate = 0.5}}},
        m);
  });
  expect_contains(msg, "events[0] and events[1]");
  expect_contains(msg, "overlapping msg_drop windows");

  // The -1 wildcard collides with every explicit target.
  msg = error_of([&] {
    validate_fault_plan(
        {.events = {{.kind = Kind::compute_stall, .t_begin = 0.0,
                     .t_end = 1.0, .rank = -1, .severity = 0.5},
                    {.kind = Kind::compute_stall, .t_begin = 0.5,
                     .t_end = 1.5, .rank = 2, .severity = 0.5}}},
        m);
  });
  expect_contains(msg, "overlapping compute_stall windows");
}

TEST(FaultValidation, AcceptsDisjointAndDistinctTargetWindows) {
  const Machine m = test_machine();
  // Adjacent half-open windows on the same target, same-window different
  // targets, and different kinds in the same window are all fine.
  EXPECT_NO_THROW(validate_fault_plan(
      {.events = {{.kind = Kind::msg_drop, .t_begin = 0.0, .t_end = 1.0,
                   .rate = 0.5},
                  {.kind = Kind::msg_drop, .t_begin = 1.0, .t_end = 2.0,
                   .rate = 0.2},
                  {.kind = Kind::compute_stall, .t_begin = 0.0, .t_end = 1.0,
                   .rank = 1, .severity = 0.5},
                  {.kind = Kind::compute_stall, .t_begin = 0.0, .t_end = 1.0,
                   .rank = 2, .severity = 0.25},
                  {.kind = Kind::msg_dup, .t_begin = 0.5, .t_end = 1.5,
                   .rate = 0.1}}},
      m));
}

TEST(FaultValidation, EngineRejectsEffectsTheCostModelWouldIgnore) {
  const Machine m = test_machine();  // flat: no link tiers
  simmpi::CostParams cost = simmpi::CostParams::lassen();

  simmpi::Engine flat(m, cost, {.threads = 1});
  std::string msg = error_of([&] {
    flat.set_fault_plan(
        {.events = {{.kind = Kind::link_brownout, .severity = 0.5}}});
  });
  expect_contains(msg, "link_brownout requires CostParams::use_link_cap");

  cost.use_injection_cap = false;
  simmpi::Engine nocap(m, cost, {.threads = 1});
  msg = error_of([&] {
    nocap.set_fault_plan(
        {.events = {{.kind = Kind::nic_slowdown, .severity = 0.5}}});
  });
  expect_contains(msg, "nic_slowdown requires CostParams::use_injection_cap");

  // Severity 1.0 is a no-op: accepted even without the caps.
  EXPECT_NO_THROW(flat.set_fault_plan(
      {.events = {{.kind = Kind::link_brownout, .severity = 1.0}}}));
}

TEST(FaultValidation, ReliabilityKnobsAreRangeChecked) {
  mpix::Reliability rel;
  rel.timeout = 0.0;
  expect_contains(error_of([&] { mpix::impl::validate_reliability(rel); }),
                  "Reliability::timeout must be > 0");
  rel = {};
  rel.backoff = 0.5;
  expect_contains(error_of([&] { mpix::impl::validate_reliability(rel); }),
                  "Reliability::backoff must be >= 1");
  rel = {};
  rel.max_retries = 0;
  expect_contains(error_of([&] { mpix::impl::validate_reliability(rel); }),
                  "Reliability::max_retries must be >= 1");
  EXPECT_NO_THROW(mpix::impl::validate_reliability({}));
}

// ---------------------------------------------------------------------------
// The counter-mode hash underlying drop/duplication decisions.

TEST(FaultUniform, PureInRangeAndSeedSensitive) {
  const ChannelKey key{.ctx = 3, .src = 1, .dst = 9, .tag = 17};
  double sum = 0.0;
  bool seed_differs = false;
  for (std::uint64_t seq = 0; seq < 1000; ++seq) {
    const double u = simmpi::fault_uniform(42, key, seq);
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    // Pure function: the same arguments reproduce the same draw.
    ASSERT_EQ(u, simmpi::fault_uniform(42, key, seq));
    seed_differs = seed_differs || u != simmpi::fault_uniform(43, key, seq);
    sum += u;
  }
  EXPECT_TRUE(seed_differs);
  // Loose uniformity sanity: the mean of 1000 draws is near 1/2.
  EXPECT_GT(sum / 1000.0, 0.4);
  EXPECT_LT(sum / 1000.0, 0.6);
}

// ---------------------------------------------------------------------------
// Quiescence watchdog: a swallowed message is a fast, actionable error.

TEST(FaultWatchdog, SwallowedMessageFailsFast) {
  // 2 nodes x 2 ranks: 0 -> 2 crosses the network, so the drop applies.
  const Machine m({.num_nodes = 2, .regions_per_node = 1,
                   .ranks_per_region = 2, .switch_levels = {}});
  simmpi::Engine eng(m, simmpi::CostParams::lassen(), {.threads = 1});
  eng.set_fault_plan(
      {.seed = 1, .events = {{.kind = Kind::msg_drop, .rank = 0, .rate = 1.0}}});

  const std::string msg = error_of([&] {
    eng.run([&](Context& ctx) -> Task<> {
      std::vector<std::byte> buf(32);
      if (ctx.rank() == 0) {
        auto s = simmpi::Request::send(ctx.world(), buf, 2, 17);
        s.start(ctx);
        co_await ctx.wait(s);  // sends complete locally; the drop is silent
      } else if (ctx.rank() == 2) {
        auto r = simmpi::Request::recv(ctx.world(), buf, 0, 17);
        r.start(ctx);
        co_await ctx.wait(r);  // never satisfied: would hang without the
                               // watchdog
      }
      co_return;
    });
  });
  expect_contains(msg, "deadlock");
  expect_contains(msg, "1 dropped in flight");
  expect_contains(msg, "rank 2");
  expect_contains(msg, "0->2 tag=17");
  expect_contains(msg, "sent=1 dropped=1");
  expect_contains(msg, "delivered=0");
}

// ---------------------------------------------------------------------------
// Byte-inertness: an engine with no plan, an empty plan, or a plan whose
// events are all no-ops executes the identical schedule — clocks, stats
// and delivered bytes.

TEST(FaultInertness, NoOpPlansAreByteInert) {
  const Machine m = test_machine();
  const int p = m.num_ranks();

  struct Run {
    std::vector<double> clocks;
    std::vector<std::vector<std::byte>> bufs;
    std::vector<simmpi::Engine::RankStats> stats;
  };
  auto run_once = [&](const FaultPlan* plan) {
    simmpi::Engine eng(m, simmpi::CostParams::lassen(), {.threads = 2});
    if (plan) eng.set_fault_plan(*plan);
    Run out;
    out.clocks.assign(p, 0.0);
    out.bufs.assign(p, {});
    eng.run([&](Context& ctx) -> Task<> {
      const int r = ctx.rank(), n = ctx.world().size();
      std::vector<std::byte> msg(64), got(64);
      for (std::size_t i = 0; i < msg.size(); ++i)
        msg[i] = static_cast<std::byte>(r + static_cast<int>(i));
      // r + 5 mod 16 crosses node boundaries for most ranks: the fault
      // gate is consulted (and must decline) for real network traffic.
      auto s = simmpi::Request::send(ctx.world(), msg, (r + 5) % n, 3);
      auto rr = simmpi::Request::recv(ctx.world(), got, (r + n - 5) % n, 3);
      rr.start(ctx);
      s.start(ctx);
      co_await ctx.wait(s);
      co_await ctx.wait(rr);
      ctx.compute(1e-6);
      out.clocks[r] = ctx.now();
      out.bufs[r] = got;
      co_return;
    });
    for (int r = 0; r < p; ++r) out.stats.push_back(eng.stats(r));
    return out;
  };

  const Run base = run_once(nullptr);
  const FaultPlan empty{};
  // Zero rates and unity severities: present in the plan, yet every event
  // is a no-op; the cached engine gates must all stay cold.
  const FaultPlan noop{
      .seed = 99,
      .events = {{.kind = Kind::msg_drop, .rate = 0.0},
                 {.kind = Kind::msg_dup, .rate = 0.0},
                 {.kind = Kind::link_brownout, .severity = 1.0},
                 {.kind = Kind::nic_slowdown, .severity = 1.0},
                 {.kind = Kind::compute_stall, .severity = 1.0}}};
  for (const FaultPlan* plan : {&empty, &noop}) {
    const Run got = run_once(plan);
    EXPECT_EQ(base.clocks, got.clocks);
    EXPECT_EQ(base.bufs, got.bufs);
    for (int r = 0; r < p; ++r)
      EXPECT_EQ(base.stats[r], got.stats[r]) << "rank " << r;
  }
}

// ---------------------------------------------------------------------------
// Timed parks: a wait_until deadline fires only under global quiescence,
// advances the clock to the deadline, and leaves the request armed.

TEST(FaultTimeout, DeadlineFiresUnderQuiescenceAndRequestStaysArmed) {
  const Machine m({.num_nodes = 1, .regions_per_node = 1,
                   .ranks_per_region = 2, .switch_levels = {}});
  simmpi::Engine eng(m, simmpi::CostParams::lassen(), {.threads = 1});
  eng.run([&](Context& ctx) -> Task<> {
    std::vector<std::byte> buf(8);
    if (ctx.rank() == 0) {
      auto r = simmpi::Request::recv(ctx.world(), buf, 1, 5);
      r.start(ctx);
      const double deadline = ctx.now() + 1e-3;
      // Rank 1 is parked on its own receive, so the system quiesces and
      // the deadline fires: false, clock at the deadline, request armed.
      const bool got = co_await ctx.wait_until(r, deadline);
      EXPECT_FALSE(got);
      EXPECT_GE(ctx.now(), deadline);
      // Unblock rank 1; its reply then satisfies the still-armed receive.
      auto s = simmpi::Request::send(ctx.world(), buf, 1, 6);
      s.start(ctx);
      co_await ctx.wait(s);
      const bool again = co_await ctx.wait_until(r, ctx.now() + 1.0);
      EXPECT_TRUE(again);
    } else {
      auto r = simmpi::Request::recv(ctx.world(), buf, 0, 6);
      r.start(ctx);
      co_await ctx.wait(r);
      auto s = simmpi::Request::send(ctx.world(), buf, 0, 5);
      s.start(ctx);
      co_await ctx.wait(s);
    }
    co_return;
  });
  EXPECT_EQ(eng.stats(0).faults.timeouts, 1u);
  EXPECT_EQ(eng.stats(1).faults.timeouts, 0u);
}

// ---------------------------------------------------------------------------
// Retry exhaustion: with every data transmission dropped, a reliable send
// gives up with an error naming the channel, not a hang.

TEST(FaultReliability, RetryExhaustionFailsWithDiagnostics) {
  const Machine m({.num_nodes = 2, .regions_per_node = 1,
                   .ranks_per_region = 2, .switch_levels = {}});
  simmpi::Engine eng(m, simmpi::CostParams::lassen(), {.threads = 1});
  eng.set_fault_plan(
      {.seed = 3, .events = {{.kind = Kind::msg_drop, .rate = 1.0}}});
  mpix::Reliability rel{
      .enabled = true, .timeout = 1e-4, .backoff = 2.0, .max_retries = 2};

  const std::string msg = error_of([&] {
    eng.run([&](Context& ctx) -> Task<> {
      std::vector<std::byte> buf(16);
      if (ctx.rank() == 0) {
        mpix::impl::RelSend s(ctx.world(), buf, 2, 11, 12);
        s.start(ctx);
        co_await mpix::impl::finish_channels(ctx, rel, {}, {&s, 1});
      } else if (ctx.rank() == 2) {
        mpix::impl::RelRecv r(ctx.world(), buf, 0, 11, 12);
        r.start(ctx);
        co_await mpix::impl::finish_channels(ctx, rel, {&r, 1}, {});
      }
      co_return;
    });
  });
  expect_contains(msg, "reliable send rank 0");
  expect_contains(msg, "no ack from peer 2");
  expect_contains(msg, "after 2 retransmits");
}

// ---------------------------------------------------------------------------
// Fault effects: each class observably perturbs a measurement (and the
// drop/duplication counters surface in PatternMeasurement), while
// verify_payload inside the runner keeps proving delivered bytes equal the
// fault-free truth.

TEST(FaultEffects, EachClassPerturbsTheMeasurement) {
  const Machine m = test_machine();
  const Workload wl = patterns::generate(
      "random_sparse", m, {.values = 6, .seed = 9, .overlap_seconds = 2e-5});

  MeasureConfig cfg = fault_config();
  cfg.threads = 1;
  const PatternMeasurement base =
      harness::measure_pattern(wl, mpix::Method::locality, cfg);
  EXPECT_EQ(base.drops + base.dups + base.retransmits + base.timeouts, 0);

  // The NIC slowdown needs its own flat baseline: under the tapered link
  // cap the link queues are the bottleneck and absorb injection delays
  // entirely (correct queueing — just not observable from the outside).
  MeasureConfig flat;
  flat.ranks_per_region = 4;
  flat.threads = 1;
  const PatternMeasurement base_flat =
      harness::measure_pattern(wl, mpix::Method::locality, flat);

  for (const FaultCase& fc : fault_cases()) {
    const bool nic = std::string(fc.name) == "nic_slowdown";
    MeasureConfig fcfg = nic ? flat : cfg;
    fcfg.faults = &fc.plan;
    if (fc.reliable) {
      fcfg.reliability.enabled = true;
      fcfg.reliability.timeout = 5e-4;
    }
    const PatternMeasurement got =
        harness::measure_pattern(wl, mpix::Method::locality, fcfg);
    if (std::string(fc.name) == "msg_drop") {
      EXPECT_GT(got.drops, 0) << fc.name;
      EXPECT_GT(got.retransmits, 0) << fc.name;
      EXPECT_GT(got.timeouts, 0) << fc.name;
      EXPECT_EQ(got.dups, 0) << fc.name;
    } else if (std::string(fc.name) == "msg_dup") {
      EXPECT_GT(got.dups, 0) << fc.name;
      EXPECT_EQ(got.drops, 0) << fc.name;
    } else {
      // Bandwidth/compute degradation: strictly slower blocking window.
      EXPECT_GT(got.blocking_seconds,
                (nic ? base_flat : base).blocking_seconds)
          << fc.name;
      EXPECT_EQ(got.drops + got.dups + got.retransmits + got.timeouts, 0)
          << fc.name;
    }
  }
}

// ---------------------------------------------------------------------------
// The width battery: every fault class, every sparse method, bit-identical
// measurements (clocks, counters, fault stats) at widths {1, 2, 4, 7}.
// verify_payload inside measure_pattern doubles as the proof that faulted
// runs still deliver the exact fault-free bytes.

TEST(FaultWidths, SparseMethodsAreWidthIdentical) {
  const Machine m = test_machine();
  const Workload wl = patterns::generate(
      "random_sparse", m, {.values = 6, .seed = 9, .overlap_seconds = 2e-5});
  for (const FaultCase& fc : fault_cases()) {
    for (mpix::Method method : mpix::kAllMethods) {
      MeasureConfig cfg = fault_config();
      cfg.faults = &fc.plan;
      if (fc.reliable) {
        cfg.reliability.enabled = true;
        cfg.reliability.timeout = 5e-4;
      }
      cfg.threads = 1;
      const std::string what =
          std::string(fc.name) + " / " + mpix::to_string(method);
      const PatternMeasurement ref = harness::measure_pattern(wl, method, cfg);
      for (int w : kWidths) {
        if (w == 1) continue;
        cfg.threads = w;
        expect_identical(ref, harness::measure_pattern(wl, method, cfg), what);
      }
    }
  }
}

/// The dense Bruck path wraps each rotation round's send and receive
/// independently — the most intricate reliable wiring, so it anchors the
/// dense half of the battery.
TEST(FaultWidths, DenseBruckIsWidthIdentical) {
  const Machine m = test_machine();
  const Workload wl = patterns::generate(
      "incast", m, {.values = 16, .seed = 9, .fan_in = 6});
  for (const FaultCase& fc : fault_cases()) {
    MeasureConfig cfg = fault_config();
    cfg.faults = &fc.plan;
    if (fc.reliable) {
      cfg.reliability.enabled = true;
      cfg.reliability.timeout = 5e-4;
    }
    cfg.threads = 1;
    const std::string what = std::string(fc.name) + " / bruck";
    const PatternMeasurement ref =
        harness::measure_pattern_dense(wl, mpix::AlltoallMethod::bruck, cfg);
    for (int w : kWidths) {
      if (w == 1) continue;
      cfg.threads = w;
      expect_identical(
          ref,
          harness::measure_pattern_dense(wl, mpix::AlltoallMethod::bruck, cfg),
          what);
    }
  }
}
