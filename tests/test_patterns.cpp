/// \file test_patterns.cpp
/// \brief The patterns workload-generator layer: registry, adjacency
/// consistency, payload delivery through every mpix method, endpoint
/// congestion (incast fan-in monotonicity) and overlap windows.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>

#include "harness/measure.hpp"
#include "patterns/pattern.hpp"
#include "simmpi/engine.hpp"

using harness::MeasureConfig;
using harness::PatternMeasurement;
using patterns::PatternParams;
using patterns::Workload;
using simmpi::Machine;

namespace {

Machine small_machine() {
  return Machine({.num_nodes = 4, .regions_per_node = 1,
                  .ranks_per_region = 4});
}

MeasureConfig small_cfg() {
  MeasureConfig cfg;
  cfg.ranks_per_region = 4;
  cfg.verify_payload = true;
  return cfg;
}

}  // namespace

TEST(Patterns, RegistryHasAtLeastFivePatterns) {
  const auto specs = patterns::registry();
  EXPECT_GE(specs.size(), 5u);
  std::set<std::string> names;
  for (const auto& s : specs) {
    EXPECT_NE(s.name, nullptr);
    EXPECT_NE(s.description, nullptr);
    EXPECT_NE(s.make, nullptr);
    names.insert(s.name);
    EXPECT_EQ(patterns::find(s.name), &s);
  }
  EXPECT_EQ(names.size(), specs.size()) << "duplicate pattern names";
  EXPECT_EQ(patterns::find("no_such_pattern"), nullptr);
  EXPECT_THROW(patterns::generate("no_such_pattern", small_machine()),
               simmpi::SimError);
}

/// Every pattern must emit globally consistent adjacency: ascending unique
/// neighbor lists, exclusive-prefix displacements, and matching send/recv
/// sides of every directed edge.
TEST(Patterns, AdjacencyIsConsistentAcrossRanks) {
  const Machine m = small_machine();
  for (const auto& spec : patterns::registry()) {
    const Workload wl = spec.make(m, PatternParams{});
    ASSERT_EQ(wl.nranks, m.num_ranks()) << spec.name;
    ASSERT_EQ(static_cast<int>(wl.ranks.size()), wl.nranks) << spec.name;
    long total_sent = 0, total_recv = 0, total_edges = 0;
    for (int r = 0; r < wl.nranks; ++r) {
      const auto& ex = wl.ranks[r];
      ASSERT_EQ(ex.destinations.size(), ex.sendcounts.size()) << spec.name;
      ASSERT_EQ(ex.destinations.size(), ex.sdispls.size()) << spec.name;
      ASSERT_EQ(ex.sources.size(), ex.recvcounts.size()) << spec.name;
      ASSERT_EQ(ex.sources.size(), ex.rdispls.size()) << spec.name;
      EXPECT_TRUE(std::is_sorted(ex.destinations.begin(),
                                 ex.destinations.end()))
          << spec.name;
      EXPECT_TRUE(std::is_sorted(ex.sources.begin(), ex.sources.end()))
          << spec.name;
      EXPECT_EQ(std::adjacent_find(ex.destinations.begin(),
                                   ex.destinations.end()),
                ex.destinations.end())
          << spec.name << ": duplicate destination on rank " << r;
      int off = 0;
      for (std::size_t i = 0; i < ex.destinations.size(); ++i) {
        EXPECT_GE(ex.destinations[i], 0) << spec.name;
        EXPECT_LT(ex.destinations[i], wl.nranks) << spec.name;
        EXPECT_GT(ex.sendcounts[i], 0) << spec.name;
        EXPECT_EQ(ex.sdispls[i], off) << spec.name;
        off += ex.sendcounts[i];
      }
      off = 0;
      for (std::size_t i = 0; i < ex.sources.size(); ++i) {
        EXPECT_GT(ex.recvcounts[i], 0) << spec.name;
        EXPECT_EQ(ex.rdispls[i], off) << spec.name;
        off += ex.recvcounts[i];
      }
      total_sent += ex.send_values();
      total_recv += ex.recv_values();
      total_edges += static_cast<long>(ex.destinations.size());

      // Each send segment has a matching recv segment on its destination.
      for (std::size_t i = 0; i < ex.destinations.size(); ++i) {
        const auto& dx = wl.ranks[ex.destinations[i]];
        const auto it =
            std::find(dx.sources.begin(), dx.sources.end(), r);
        ASSERT_NE(it, dx.sources.end())
            << spec.name << ": edge " << r << "->" << ex.destinations[i]
            << " missing on the receive side";
        const auto k = static_cast<std::size_t>(it - dx.sources.begin());
        EXPECT_EQ(dx.recvcounts[k], ex.sendcounts[i]) << spec.name;
      }
    }
    EXPECT_EQ(total_sent, total_recv) << spec.name;
    EXPECT_GT(total_edges, 0) << spec.name << ": empty workload";
  }
}

TEST(Patterns, GenerationIsDeterministicAndSeedSensitive) {
  const Machine m = small_machine();
  for (const auto& spec : patterns::registry()) {
    const Workload a = spec.make(m, PatternParams{.seed = 7});
    const Workload b = spec.make(m, PatternParams{.seed = 7});
    EXPECT_EQ(a.fingerprint(), b.fingerprint()) << spec.name;
  }
  // The random pattern must actually respond to the seed.
  const Workload s1 = patterns::generate("random_sparse", m, {.seed = 1});
  const Workload s2 = patterns::generate("random_sparse", m, {.seed = 2});
  EXPECT_NE(s1.fingerprint(), s2.fingerprint());
}

TEST(Patterns, LocalitySkewShiftsTrafficIntoRegions) {
  const Machine m = small_machine();
  auto region_edges = [&](double skew) {
    const Workload wl = patterns::generate(
        "random_sparse", m, {.values = 4, .seed = 3, .degree = 3,
                             .locality_skew = skew});
    long local = 0, total = 0;
    for (int r = 0; r < wl.nranks; ++r)
      for (int dst : wl.ranks[r].destinations) {
        ++total;
        if (m.region_of(dst) == m.region_of(r)) ++local;
      }
    EXPECT_GT(total, 0);
    return std::pair{local, total};
  };
  const auto [l0, t0] = region_edges(0.0);
  const auto [l1, t1] = region_edges(1.0);
  EXPECT_EQ(l1, t1) << "skew 1.0 must keep every edge in-region";
  EXPECT_LT(static_cast<double>(l0) / t0, 1.0);
}

/// Tentpole acceptance: every registered pattern runs through every sparse
/// neighbor method with byte-verified delivery (verify_payload throws on
/// the first bad byte).
TEST(Patterns, AllPatternsRunThroughAllNeighborMethods) {
  const Machine m = small_machine();
  MeasureConfig cfg = small_cfg();
  for (const auto& spec : patterns::registry()) {
    const Workload wl = spec.make(m, PatternParams{.values = 6, .seed = 5});
    for (mpix::Method method : mpix::kAllMethods) {
      const PatternMeasurement pm = harness::measure_pattern(wl, method, cfg);
      EXPECT_GT(pm.init_seconds, 0.0)
          << spec.name << " " << mpix::to_string(method);
      EXPECT_GT(pm.blocking_seconds, 0.0)
          << spec.name << " " << mpix::to_string(method);
      EXPECT_GT(pm.sum_local_msgs + pm.sum_global_msgs, 0)
          << spec.name << " " << mpix::to_string(method);
    }
  }
}

/// And through every dense alltoallv method (counts expanded per rank).
TEST(Patterns, PatternsRunThroughDenseMethods) {
  const Machine m = small_machine();
  MeasureConfig cfg = small_cfg();
  for (const char* name : {"incast", "stencil2d5", "bursty_io"}) {
    const Workload wl = patterns::generate(name, m, {.values = 4, .seed = 5});
    for (mpix::AlltoallMethod method : mpix::kAllAlltoallMethods) {
      const PatternMeasurement pm =
          harness::measure_pattern_dense(wl, method, cfg);
      EXPECT_GT(pm.blocking_seconds, 0.0)
          << name << " " << mpix::to_string(method);
    }
  }
}

/// Acceptance criterion: with the endpoint-congestion term enabled, incast
/// completion time is monotonically non-decreasing in the fan-in — and
/// strictly increasing once the extra senders are rendezvous-sized network
/// flows queueing at the sink's NIC.
TEST(Patterns, IncastCompletionMonotoneInFanIn) {
  const Machine m({.num_nodes = 16, .regions_per_node = 1,
                   .ranks_per_region = 2});
  MeasureConfig cfg;
  cfg.ranks_per_region = 2;
  cfg.cost.use_ejection_cap = true;
  cfg.cost.nic_eject_rate = 1.0e9;  // make the queue the bottleneck
  double prev = 0.0;
  double first = 0.0, last = 0.0;
  for (int fan_in : {1, 4, 8, 16, 31}) {
    const Workload wl = patterns::generate(
        "incast", m, {.values = 4096, .fan_in = fan_in, .sinks = 1});
    const PatternMeasurement pm =
        harness::measure_pattern(wl, mpix::Method::standard, cfg);
    EXPECT_GE(pm.blocking_seconds, prev) << "fan_in " << fan_in;
    prev = pm.blocking_seconds;
    if (fan_in == 1) first = pm.blocking_seconds;
    last = pm.blocking_seconds;
  }
  EXPECT_GT(last, first) << "31 senders must queue longer than 1";
}

/// The same incast without the ejection cap must complete no later than
/// with it — the term only ever delays arrivals.
TEST(Patterns, EjectionCapOnlyDelays) {
  const Machine m({.num_nodes = 16, .regions_per_node = 1,
                   .ranks_per_region = 2});
  const Workload wl = patterns::generate(
      "incast", m, {.values = 4096, .fan_in = 31, .sinks = 1});
  MeasureConfig cfg;
  cfg.ranks_per_region = 2;
  cfg.cost.use_ejection_cap = false;
  const double off =
      harness::measure_pattern(wl, mpix::Method::standard, cfg)
          .blocking_seconds;
  cfg.cost.use_ejection_cap = true;
  cfg.cost.nic_eject_rate = 1.0e9;
  const double on =
      harness::measure_pattern(wl, mpix::Method::standard, cfg)
          .blocking_seconds;
  EXPECT_GT(on, off);
}

/// Acceptance criterion: an overlap-window pattern shows overlapped <
/// blocking simulated wall time — the compute hides transfer time.
TEST(Patterns, OverlapWindowBeatsBlocking) {
  const Machine m = small_machine();
  MeasureConfig cfg = small_cfg();
  const Workload wl = patterns::generate(
      "ring_overlap", m, {.values = 8192, .overlap_seconds = 5.0e-5});
  ASSERT_DOUBLE_EQ(wl.overlap_seconds, 5.0e-5);
  for (mpix::Method method : mpix::kAllMethods) {
    const PatternMeasurement pm = harness::measure_pattern(wl, method, cfg);
    EXPECT_LT(pm.overlapped_seconds, pm.blocking_seconds)
        << mpix::to_string(method);
    // The blocking window serializes communication and compute, so it is
    // at least the window itself plus some communication time.
    EXPECT_GT(pm.blocking_seconds, wl.overlap_seconds);
    EXPECT_GE(pm.overlapped_seconds, wl.overlap_seconds);
  }
}

/// Patterns with no explicit window still default sensibly: ring_overlap
/// carries its own default, everything else runs with a zero window and
/// identical blocking/overlapped times.
TEST(Patterns, ZeroWindowMakesWindowsEqual) {
  const Machine m = small_machine();
  MeasureConfig cfg = small_cfg();
  const Workload wl =
      patterns::generate("stencil2d5", m, {.values = 16, .seed = 2});
  EXPECT_EQ(wl.overlap_seconds, 0.0);
  const PatternMeasurement pm =
      harness::measure_pattern(wl, mpix::Method::locality, cfg);
  // The two windows run the identical communication; they are only
  // near-equal (not bitwise) because the phase alignment entering each
  // window differs, which shifts the queue-search receive overheads.
  EXPECT_NEAR(pm.blocking_seconds, pm.overlapped_seconds,
              0.05 * pm.blocking_seconds);
}

/// Plan-cache integration: a second measurement of the same workload under
/// a locality method re-binds the cached plan (a hit per rank) and its
/// init pays no setup communication.
TEST(Patterns, PlanCacheMakesReinitCheaper) {
  const Machine m = small_machine();
  harness::PlanCache cache;
  MeasureConfig cfg = small_cfg();
  cfg.plans = &cache;
  const Workload wl =
      patterns::generate("stencil3d27", m, {.values = 8, .seed = 4});
  const PatternMeasurement cold =
      harness::measure_pattern(wl, mpix::Method::locality_dedup, cfg);
  EXPECT_EQ(cache.hits(), 0);
  EXPECT_GT(cache.size(), 0u);
  const PatternMeasurement warm =
      harness::measure_pattern(wl, mpix::Method::locality_dedup, cfg);
  EXPECT_EQ(cache.hits(), m.num_ranks());
  EXPECT_LT(warm.init_seconds, cold.init_seconds);
  // The steady-state exchange routes identically either way; only the
  // phase alignment entering the window (after a communication-free vs a
  // communicating init) shifts the queue-search overheads slightly.
  EXPECT_NEAR(warm.blocking_seconds, cold.blocking_seconds,
              0.05 * cold.blocking_seconds);
  EXPECT_EQ(warm.sum_global_msgs, cold.sum_global_msgs);
  EXPECT_EQ(warm.sum_global_values, cold.sum_global_values);
}

/// Engine-level compute accounting: Context::compute advances the clock
/// and the per-rank stats symmetrically, and sync_reset clears both.
TEST(Patterns, ComputeSecondsAreAccounted) {
  simmpi::Engine eng(small_machine(), simmpi::CostParams::lassen());
  eng.run([&](simmpi::Context& ctx) -> simmpi::Task<> {
    ctx.compute(1.25e-3);
    ctx.compute(0.75e-3);
    co_return;
  });
  for (int r = 0; r < eng.machine().num_ranks(); ++r) {
    EXPECT_DOUBLE_EQ(eng.stats(r).compute_seconds, 2.0e-3) << r;
    EXPECT_DOUBLE_EQ(eng.clock(r), 2.0e-3) << r;
  }
  eng.run([&](simmpi::Context& ctx) -> simmpi::Task<> {
    co_await ctx.engine().sync_reset(ctx);
    ctx.compute(1.0e-4);
    co_return;
  });
  for (int r = 0; r < eng.machine().num_ranks(); ++r)
    EXPECT_DOUBLE_EQ(eng.stats(r).compute_seconds, 1.0e-4) << r;
}

/// MeasureConfig::regions_per_node reaches the simulated machine: packing
/// two regions per node keeps ranks 1..7 on the sink's node, so only 8 of
/// the 15 incast flows queue at its NIC instead of 12 — the congested
/// completion time must drop accordingly.
TEST(Patterns, MultiRegionNodesDrainIncastFaster) {
  PatternParams p{.values = 4096, .fan_in = 0, .sinks = 1};
  MeasureConfig cfg;
  cfg.ranks_per_region = 4;
  cfg.cost.use_ejection_cap = true;
  cfg.cost.nic_eject_rate = 1.0e9;
  cfg.regions_per_node = 1;
  const Machine flat({.num_nodes = 4, .regions_per_node = 1,
                      .ranks_per_region = 4});
  const double wan =
      harness::measure_pattern(patterns::generate("incast", flat, p),
                               mpix::Method::standard, cfg)
          .blocking_seconds;
  cfg.regions_per_node = 2;
  const Machine fat({.num_nodes = 2, .regions_per_node = 2,
                     .ranks_per_region = 4});
  const double lan =
      harness::measure_pattern(patterns::generate("incast", fat, p),
                               mpix::Method::standard, cfg)
          .blocking_seconds;
  EXPECT_LT(lan, wan);
}

TEST(Patterns, MeasureRejectsIndivisibleMultiRegionShape) {
  MeasureConfig cfg;
  cfg.ranks_per_region = 4;
  cfg.regions_per_node = 2;
  const Machine m({.num_nodes = 3, .regions_per_node = 1,
                   .ranks_per_region = 4});  // 12 ranks, not % 8
  const Workload wl = patterns::generate("stencil2d5", m, {});
  EXPECT_THROW(harness::measure_pattern(wl, mpix::Method::standard, cfg),
               simmpi::SimError);
}
