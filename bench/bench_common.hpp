#pragma once
/// \file bench_common.hpp
/// \brief Shared scaffolding for the figure-reproduction benchmarks.
///
/// Every binary regenerates one figure of the paper: it computes the data
/// series on the simulated machine (cached across registered benchmarks),
/// exposes each point as a google-benchmark counter (`sim_seconds` etc. —
/// wall time of these benchmarks is meaningless; the simulator's virtual
/// seconds are the measurement), and prints a paper-style table.  See
/// docs/BENCHMARKS.md for the figure-by-figure map and how to read the
/// emitted BENCH_*.json.
///
/// Knobs (all leave the measured virtual times bit-identical):
///  * `COLLOM_BENCH_QUICK=1` (the `run_benches_quick` target / CI smoke
///    job) caps every sweep at 256 simulated ranks and shrinks the
///    fixed-size problems to match, so each binary finishes in seconds
///    while still exercising the full measurement pipeline;
///  * `--sim-threads=N` / `COLLOM_SIM_THREADS=N` sets the engine's worker
///    count (wall-time-only; the simulated schedule is deterministic);
///  * `--build-threads=N` / `COLLOM_BUILD_THREADS=N` sets the hierarchy
///    *construction* width (defaults from COLLOM_SIM_THREADS; built
///    hierarchies are bit-identical for every width);
///  * `--link-taper=T` / `COLLOM_LINK_TAPER=T` restricts the link-
///    contention benches (bench_link_taper) to the one taper ratio T
///    instead of their full {1, 2, 4} sweep (this one changes *which*
///    points are computed, not their values);
///  * the hierarchy disk cache (`COLLOM_HIER_CACHE[_DIR]`, plus the
///    `COLLOM_HIER_CACHE_MAX_BYTES` size cap — see harness::
///    HierarchyCache) lets the binaries share built hierarchies under
///    build/hier-cache instead of each re-running the coarsening.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "harness/dist_solve.hpp"
#include "harness/measure.hpp"
#include "harness/table.hpp"

namespace benchfig {

/// Bench argv handling: consumes `--sim-threads=N` (exported as
/// COLLOM_SIM_THREADS so every simmpi::Engine of the binary picks it up)
/// and `--build-threads=N` (exported as COLLOM_BUILD_THREADS so every
/// hierarchy construction picks it up; unset, construction defaults from
/// COLLOM_SIM_THREADS), then hands the remaining arguments to
/// google-benchmark.
inline void init(int* argc, char** argv) {
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--sim-threads=", 14) == 0) {
      ::setenv("COLLOM_SIM_THREADS", arg + 14, 1);
      continue;
    }
    if (std::strncmp(arg, "--build-threads=", 16) == 0) {
      ::setenv("COLLOM_BUILD_THREADS", arg + 16, 1);
      continue;
    }
    if (std::strncmp(arg, "--link-taper=", 13) == 0) {
      ::setenv("COLLOM_LINK_TAPER", arg + 13, 1);
      continue;
    }
    argv[out++] = argv[i];
  }
  *argc = out;
  benchmark::Initialize(argc, argv);
}

/// The paper's evaluation configuration (Section 4).
inline constexpr long kPaperRows = 524288;  // 1024 x 512 grid
inline constexpr int kPaperRanks = 2048;
inline constexpr int kRanksPerRegion = 16;  // one CPU of a Lassen node
inline constexpr long kWeakRowsPerRank = 256;  // 524288 rows at 2048 ranks

/// Rank cap of the `--quick` smoke mode (COLLOM_BENCH_QUICK=1).
inline constexpr int kQuickMaxRanks = 256;

inline bool quick_mode() {
  static const bool q = [] {
    const char* v = std::getenv("COLLOM_BENCH_QUICK");
    return v != nullptr && *v != '\0' && *v != '0';
  }();
  return q;
}

/// Rank count of the fixed-size (non-sweeping) figures.
inline int paper_ranks() { return quick_mode() ? kQuickMaxRanks : kPaperRanks; }

/// Taper restriction of the link-contention benches: `--link-taper=T` /
/// COLLOM_LINK_TAPER=T computes only the one ratio T; 0 (the default)
/// keeps the full sweep.
inline double link_taper_override() {
  static const double t = [] {
    const char* v = std::getenv("COLLOM_LINK_TAPER");
    return v != nullptr ? std::atof(v) : 0.0;
  }();
  return t;
}

/// Problem size of the fixed-size figures (weak-scaling-consistent in
/// quick mode, the paper's 524288 rows otherwise).
inline long paper_rows() {
  return quick_mode() ? kWeakRowsPerRank * paper_ranks() : kPaperRows;
}

/// Strong/weak scaling sweep (Figures 12/13).
inline const std::vector<int>& scaling_ranks() {
  static const std::vector<int> full{32, 64, 128, 256, 512, 1024, 2048};
  static const std::vector<int> quick{32, 64, 128, 256};
  return quick_mode() ? quick : full;
}

/// Graph-creation sweep (Figure 6).
inline const std::vector<int>& graph_ranks() {
  static const std::vector<int> full{16, 64, 256, 512, 1024, 2048};
  static const std::vector<int> quick{16, 64, 256};
  return quick_mode() ? quick : full;
}

/// Dense benchmark-argument range 0..n-1, sized at registration time to
/// the active sweep, so quick mode registers exactly the points its
/// shortened series computes (indexing past the series is UB and emitted
/// garbage counters before this existed).
inline std::vector<std::int64_t> index_range(std::size_t n) {
  return benchmark::CreateDenseRange(0, static_cast<int>(n) - 1, 1);
}

/// Locality plans reused across benchmark repetitions and protocols (the
/// per-pattern aggregation setup is paid once per sweep point, not once
/// per google-benchmark iteration).
inline harness::PlanCache& plan_cache() {
  static harness::PlanCache cache;
  return cache;
}

inline harness::MeasureConfig paper_config() {
  harness::MeasureConfig cfg;
  cfg.ranks_per_region = kRanksPerRegion;
  cfg.plans = &plan_cache();
  return cfg;
}

/// Measurements of all four protocols for one problem instance.
struct ProtocolSet {
  std::vector<harness::LevelMeasurement> per[4];  // indexed by Protocol
  const std::vector<harness::LevelMeasurement>& of(
      harness::Protocol p) const {
    return per[static_cast<int>(p)];
  }
};

inline ProtocolSet measure_all(long rows, int nranks) {
  // The plan cache would keep every sweep point's plans alive; clear it
  // when the instance changes (mirrors the single-entry memoization of
  // paper_dist_hierarchy).
  static long cached_rows = -1;
  static int cached_ranks = -1;
  if (rows != cached_rows || nranks != cached_ranks) {
    plan_cache().clear();
    cached_rows = rows;
    cached_ranks = nranks;
  }
  const auto cfg = paper_config();
  const auto& dh =
      harness::paper_dist_hierarchy(rows, nranks, cfg.build_threads);
  ProtocolSet s;
  for (harness::Protocol p : harness::kAllProtocols)
    s.per[static_cast<int>(p)] = harness::measure_protocol(dh, p, cfg);
  return s;
}

}  // namespace benchfig
