#pragma once
/// \file bench_common.hpp
/// \brief Shared scaffolding for the figure-reproduction benchmarks.
///
/// Every binary regenerates one figure of the paper: it computes the data
/// series on the simulated machine (cached across registered benchmarks),
/// exposes each point as a google-benchmark counter (`sim_seconds` etc. —
/// wall time of these benchmarks is meaningless; the simulator's virtual
/// seconds are the measurement), and prints a paper-style table.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "harness/dist_solve.hpp"
#include "harness/measure.hpp"
#include "harness/table.hpp"

namespace benchfig {

/// The paper's evaluation configuration (Section 4).
inline constexpr long kPaperRows = 524288;  // 1024 x 512 grid
inline constexpr int kPaperRanks = 2048;
inline constexpr int kRanksPerRegion = 16;  // one CPU of a Lassen node
inline constexpr long kWeakRowsPerRank = 256;  // 524288 rows at 2048 ranks

/// Strong/weak scaling sweep (Figures 12/13).
inline const std::vector<int>& scaling_ranks() {
  static const std::vector<int> v{32, 64, 128, 256, 512, 1024, 2048};
  return v;
}

/// Graph-creation sweep (Figure 6).
inline const std::vector<int>& graph_ranks() {
  static const std::vector<int> v{16, 64, 256, 512, 1024, 2048};
  return v;
}

inline harness::MeasureConfig paper_config() {
  harness::MeasureConfig cfg;
  cfg.ranks_per_region = kRanksPerRegion;
  return cfg;
}

/// Measurements of all four protocols for one problem instance.
struct ProtocolSet {
  std::vector<harness::LevelMeasurement> per[4];  // indexed by Protocol
  const std::vector<harness::LevelMeasurement>& of(
      harness::Protocol p) const {
    return per[static_cast<int>(p)];
  }
};

inline ProtocolSet measure_all(long rows, int nranks) {
  const auto& dh = harness::paper_dist_hierarchy(rows, nranks);
  ProtocolSet s;
  for (harness::Protocol p : harness::kAllProtocols)
    s.per[static_cast<int>(p)] =
        harness::measure_protocol(dh, p, paper_config());
  return s;
}

}  // namespace benchfig
