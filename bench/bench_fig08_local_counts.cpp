/// \file bench_fig08_local_counts.cpp
/// \brief Figure 8: maximum number of intra-region ("local") messages sent
/// by any process, per AMG level (524 288 rows, 2048 cores).  Locality-aware
/// aggregation trades extra local traffic for fewer global messages, so the
/// optimized line must sit well above the standard one.

#include "bench_common.hpp"

namespace {

using namespace benchfig;
using harness::Protocol;

struct Data {
  std::vector<double> levels, standard_local, optimized_local;
};

const Data& data() {
  static const Data d = [] {
    Data out;
    const auto& dh = harness::paper_dist_hierarchy(paper_rows(), paper_ranks());
    auto std_m = harness::measure_protocol(dh, Protocol::neighbor_standard,
                                           paper_config());
    auto opt_m = harness::measure_protocol(dh, Protocol::neighbor_partial,
                                           paper_config());
    for (std::size_t l = 0; l < std_m.size(); ++l) {
      out.levels.push_back(static_cast<double>(l));
      out.standard_local.push_back(std_m[l].max_local_msgs);
      out.optimized_local.push_back(opt_m[l].max_local_msgs);
    }
    return out;
  }();
  return d;
}

void BM_LocalMessages(benchmark::State& state) {
  const Data& d = data();
  const std::size_t l = static_cast<std::size_t>(state.range(0));
  const bool optimized = state.range(1) != 0;
  for (auto _ : state) benchmark::DoNotOptimize(l);
  if (l < d.levels.size()) {
    state.counters["level"] = d.levels[l];
    state.counters["max_local_msgs"] =
        optimized ? d.optimized_local[l] : d.standard_local[l];
  }
  state.SetLabel(optimized ? "Optimized Local" : "Standard Local");
}
BENCHMARK(BM_LocalMessages)
    ->ArgsProduct({benchmark::CreateDenseRange(0, 11, 1), {0, 1}})
    ->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  benchfig::init(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  const Data& d = data();
  harness::print_figure(std::cout,
                        "Figure 8: max intra-region messages per process, "
                        "per SpMV level (524288 rows, 2048 cores)",
                        "AMG level", d.levels,
                        {{"Standard Local", d.standard_local},
                         {"Optimized Local", d.optimized_local}});
  benchmark::Shutdown();
  return 0;
}
