/// \file bench_ablation_leaders.cpp
/// \brief Ablation: leader load balancing inside the aggregated collective.
///
/// The paper's init "load balances while determining which intra-region
/// process communicates with each region".  This bench compares the
/// longest-processing-time assignment (default) against naive round-robin
/// at 2048 ranks: LPT should lower (or match) the per-iteration time on the
/// communication-heavy levels by evening out per-leader message volume.

#include "bench_common.hpp"

namespace {

using namespace benchfig;
using harness::Protocol;

struct Data {
  std::vector<double> levels, lpt, round_robin;
  double total_lpt = 0.0, total_rr = 0.0;
};

const Data& data() {
  static const Data d = [] {
    Data out;
    const auto& dh = harness::paper_dist_hierarchy(paper_rows(), paper_ranks());
    harness::MeasureConfig cfg = paper_config();
    cfg.lpt_balance = true;
    auto lpt = harness::measure_protocol(dh, Protocol::neighbor_partial, cfg);
    cfg.lpt_balance = false;
    auto rr = harness::measure_protocol(dh, Protocol::neighbor_partial, cfg);
    for (std::size_t l = 0; l < lpt.size(); ++l) {
      out.levels.push_back(static_cast<double>(l));
      out.lpt.push_back(lpt[l].start_wait_seconds);
      out.round_robin.push_back(rr[l].start_wait_seconds);
      out.total_lpt += lpt[l].start_wait_seconds;
      out.total_rr += rr[l].start_wait_seconds;
    }
    return out;
  }();
  return d;
}

void BM_LeaderAssignment(benchmark::State& state) {
  const Data& d = data();
  const bool lpt = state.range(0) != 0;
  for (auto _ : state) benchmark::DoNotOptimize(d.total_lpt);
  state.counters["total_sim_seconds"] = lpt ? d.total_lpt : d.total_rr;
  state.SetLabel(lpt ? "lpt" : "round-robin");
}
BENCHMARK(BM_LeaderAssignment)->DenseRange(0, 1)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  benchfig::init(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  const Data& d = data();
  harness::print_figure(std::cout,
                        "Ablation: leader assignment strategy, partially "
                        "optimized collective (seconds per level)",
                        "AMG level", d.levels,
                        {{"LPT (default)", d.lpt},
                         {"Round-robin", d.round_robin}});
  std::printf("totals: LPT %.4e s, round-robin %.4e s (ratio %.2f)\n",
              d.total_lpt, d.total_rr, d.total_rr / d.total_lpt);
  benchmark::Shutdown();
  return 0;
}
