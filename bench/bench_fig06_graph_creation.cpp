/// \file bench_fig06_graph_creation.cpp
/// \brief Figure 6: cost of MPI_Dist_graph_create_adjacent, called once per
/// AMG level, strong-scaled 524 288-row rotated anisotropic diffusion.
/// Series: "spectrum-like" (allgather-based construction) vs "mvapich-like"
/// (sparse handshake).  Paper: MVAPICH 8.6x faster at 2048 processes and
/// better strong scaling.

#include "bench_common.hpp"

namespace {

using namespace benchfig;

struct Data {
  std::vector<double> procs, spectrum, mvapich;
};

const Data& data() {
  static const Data d = [] {
    Data out;
    for (int p : graph_ranks()) {
      const auto& dh = harness::paper_dist_hierarchy(paper_rows(), p);
      out.procs.push_back(p);
      out.spectrum.push_back(harness::measure_graph_creation(
          dh, simmpi::GraphAlgo::allgather, paper_config()));
      out.mvapich.push_back(harness::measure_graph_creation(
          dh, simmpi::GraphAlgo::handshake, paper_config()));
    }
    return out;
  }();
  return d;
}

void BM_GraphCreation(benchmark::State& state) {
  const Data& d = data();
  const std::size_t i = static_cast<std::size_t>(state.range(0));
  const bool spectrum = state.range(1) != 0;
  for (auto _ : state) benchmark::DoNotOptimize(i);
  state.counters["procs"] = d.procs[i];
  state.counters["sim_seconds"] = spectrum ? d.spectrum[i] : d.mvapich[i];
  state.SetLabel(spectrum ? "spectrum-like" : "mvapich-like");
}

BENCHMARK(BM_GraphCreation)
    ->ArgsProduct({index_range(graph_ranks().size()), {0, 1}})
    ->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  benchfig::init(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  const Data& d = data();
  harness::print_figure(std::cout,
                        "Figure 6: graph creation cost, once per AMG level "
                        "(seconds, strong-scaled 524288 rows)",
                        "Processes", d.procs,
                        {{"spectrum-like", d.spectrum},
                         {"mvapich-like", d.mvapich}});
  const double ratio = d.spectrum.back() / d.mvapich.back();
  std::printf("at %d processes: spectrum/mvapich ratio = %.1fx "
              "(paper: 8.6x)\n",
              graph_ranks().back(), ratio);
  benchmark::Shutdown();
  return 0;
}
