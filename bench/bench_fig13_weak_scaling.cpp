/// \file bench_fig13_weak_scaling.cpp
/// \brief Figure 13: total SpMV communication across every AMG level,
/// weakly scaled rotated anisotropic diffusion (256 rows per rank, reaching
/// 524 288 rows at 2048 processes), 32-2048 processes.  Optimized lines use
/// per-level best-of selection as in Figure 12.  Paper: 1.96x speedup from
/// locality-aware aggregation at 2048 cores, +0.21x more from dedup.

#include "bench_common.hpp"

namespace {

using namespace benchfig;
using harness::Protocol;

struct Data {
  std::vector<double> procs;
  std::vector<double> hypre, neighbor, partial, full;
};

const Data& data() {
  static const Data d = [] {
    Data out;
    for (int p : scaling_ranks()) {
      ProtocolSet s = measure_all(kWeakRowsPerRank * p, p);
      const auto& hyp = s.of(Protocol::hypre);
      out.procs.push_back(p);
      out.hypre.push_back(harness::total_time(hyp));
      out.neighbor.push_back(
          harness::total_time(s.of(Protocol::neighbor_standard)));
      out.partial.push_back(
          harness::total_time(s.of(Protocol::neighbor_partial), &hyp));
      out.full.push_back(
          harness::total_time(s.of(Protocol::neighbor_full), &hyp));
    }
    return out;
  }();
  return d;
}

void BM_WeakScaling(benchmark::State& state) {
  const Data& d = data();
  const std::size_t i = static_cast<std::size_t>(state.range(0));
  const int p = static_cast<int>(state.range(1));
  for (auto _ : state) benchmark::DoNotOptimize(i);
  state.counters["procs"] = d.procs[i];
  const std::vector<double>* series[4] = {&d.hypre, &d.neighbor, &d.partial,
                                          &d.full};
  state.counters["sim_seconds"] = (*series[p])[i];
  state.SetLabel(harness::to_string(static_cast<Protocol>(p)));
}
BENCHMARK(BM_WeakScaling)
    ->ArgsProduct({index_range(scaling_ranks().size()),
                   benchmark::CreateDenseRange(0, 3, 1)})
    ->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  benchfig::init(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  const Data& d = data();
  harness::print_figure(
      std::cout,
      "Figure 13: weak scaling of SpMV communication over all AMG levels "
      "(seconds, 256 rows/rank)",
      "Processes", d.procs,
      {{"Standard Hypre", d.hypre},
       {"Unoptimized Neighbor", d.neighbor},
       {"Partially Optimized", d.partial},
       {"Fully Optimized", d.full}});
  const double partial_speedup = d.hypre.back() / d.partial.back();
  const double full_speedup = d.hypre.back() / d.full.back();
  std::printf(
      "speedup vs Standard Hypre at %d: partial %.2fx (paper at 2048: "
      "1.96x), full %.2fx (paper: 2.17x)\n",
      scaling_ranks().back(), partial_speedup, full_speedup);
  benchmark::Shutdown();
  return 0;
}
