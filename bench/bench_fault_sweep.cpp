/// \file bench_fault_sweep.cpp
/// \brief Robustness sweep: goodput and completion-time inflation of the
/// three sparse neighbor methods and the three dense alltoallv engines
/// under a grid of message-drop rates x link-brownout severities
/// (simmpi::FaultPlan), with reliable delivery (mpix::Options::
/// reliability) carrying the dropped-message points.
///
/// Not a paper figure: this is the fault-tolerance ablation the
/// robustness PR adds on top of the paper's fault-free machine.  Per grid
/// point the counters expose
///  * `completion_x`   — blocking-window time over the fault-free
///    baseline of the same method (1.0 on the baseline row),
///  * `goodput_values_per_s` — delivered payload values per simulated
///    second of the blocking window (retransmits and duplicates move
///    time, never payload: verify_payload keeps proving delivered bytes
///    equal the fault-free truth),
///  * the engine's fault ledger (drops / dups / retransmits / timeouts).
///
/// The whole sweep is schedule-deterministic: CI byte-compares the quick
/// series at --sim-threads=1 vs 4 (.github/workflows/ci.yml, bench-smoke).

#include "bench_common.hpp"

#include "patterns/pattern.hpp"
#include "simmpi/fault.hpp"

namespace {

using namespace benchfig;

constexpr int kNumSparse = 3;  // mpix::kAllMethods
constexpr int kNumDense = 3;   // mpix::kAllAlltoallMethods
constexpr int kNumMethods = kNumSparse + kNumDense;

/// Drop-rate x brownout-severity grid; (0, 1.0) — fault-free — comes
/// first and is the completion_x baseline.  Severity multiplies the
/// bandwidth of every shared link tier (1.0 = healthy).
const std::vector<double>& drop_rates() {
  static const std::vector<double> full{0.0, 0.05, 0.15, 0.30};
  static const std::vector<double> quick{0.0, 0.15};
  return quick_mode() ? quick : full;
}
const std::vector<double>& severities() {
  static const std::vector<double> full{1.0, 0.5, 0.25};
  static const std::vector<double> quick{1.0, 0.5};
  return quick_mode() ? quick : full;
}

struct Shape {
  int nodes, rpn, rpr;
  int procs() const { return nodes * rpn * rpr; }
};
/// 8 nodes under a 2-level tapered fat tree (2 leaf switches, 1 root) —
/// the smallest shape where drops, brownouts and the shared-link queues
/// all act on distinct tiers.
Shape shape() { return quick_mode() ? Shape{8, 2, 4} : Shape{8, 2, 8}; }

simmpi::Machine sweep_machine() {
  const Shape sh = shape();
  return simmpi::Machine({.num_nodes = sh.nodes,
                          .regions_per_node = sh.rpn,
                          .ranks_per_region = sh.rpr});
}

harness::MeasureConfig sweep_config() {
  const Shape sh = shape();
  harness::MeasureConfig cfg;
  cfg.ranks_per_region = sh.rpr;
  cfg.regions_per_node = sh.rpn;
  cfg.switch_levels = {{.radix = 4, .taper = 2.0}, {.radix = 2, .taper = 1.0}};
  cfg.cost.use_link_cap = true;
  cfg.cost.link_msg_bytes = 256.0;
  cfg.plans = &plan_cache();
  return cfg;
}

struct Point {
  double drop;
  double severity;
  simmpi::FaultPlan plan;  // stable address: cfg.faults points here
  harness::PatternMeasurement m[kNumMethods];
};

const char* method_name(int mi) {
  return mi < kNumSparse
             ? mpix::to_string(mpix::kAllMethods[mi])
             : mpix::to_string(mpix::kAllAlltoallMethods[mi - kNumSparse]);
}

const std::vector<Point>& data() {
  static const std::vector<Point> d = [] {
    const simmpi::Machine machine = sweep_machine();
    // Sparse traffic: a seeded random sparse halo exchange; dense
    // traffic: every-rank incast onto 4 sinks spread across nodes (the
    // alltoallv engines expand it to full counts).  Sinks on distinct
    // nodes matter: a single-sink fan-in of a few ranks is all
    // intra-node, and intra-node messages are never dropped or browned
    // out — the sweep would be flat.
    const patterns::Workload sparse_wl = patterns::generate(
        "random_sparse", machine, {.values = 32, .seed = 9, .degree = 6});
    const patterns::Workload dense_wl = patterns::generate(
        "incast", machine, {.values = 16, .seed = 9, .fan_in = 0, .sinks = 4});

    std::vector<Point> out;
    for (double drop : drop_rates()) {
      for (double sev : severities()) {
        Point pt;
        pt.drop = drop;
        pt.severity = sev;
        pt.plan.seed = 42;
        if (drop > 0.0)
          pt.plan.events.push_back(
              {.kind = simmpi::FaultSpec::Kind::msg_drop, .rate = drop});
        if (sev < 1.0)
          pt.plan.events.push_back({.kind = simmpi::FaultSpec::Kind::link_brownout,
                                    .severity = sev});
        harness::MeasureConfig cfg = sweep_config();
        // The fault-free corner stays on the engine's byte-inert
        // no-plan hot path — it doubles as the baseline row.
        if (!pt.plan.events.empty()) cfg.faults = &pt.plan;
        if (drop > 0.0) {
          cfg.reliability.enabled = true;
          cfg.reliability.timeout = 5e-4;
        }
        for (int mi = 0; mi < kNumSparse; ++mi)
          pt.m[mi] =
              harness::measure_pattern(sparse_wl, mpix::kAllMethods[mi], cfg);
        for (int mi = 0; mi < kNumDense; ++mi)
          pt.m[kNumSparse + mi] = harness::measure_pattern_dense(
              dense_wl, mpix::kAllAlltoallMethods[mi], cfg);
        out.push_back(std::move(pt));
      }
    }
    return out;
  }();
  return d;
}

void BM_FaultSweep(benchmark::State& state) {
  const int pi = static_cast<int>(state.range(0));
  const int mi = static_cast<int>(state.range(1));
  const Point& pt = data()[pi];
  const harness::PatternMeasurement& m = pt.m[mi];
  const harness::PatternMeasurement& base = data()[0].m[mi];
  for (auto _ : state) benchmark::DoNotOptimize(m.blocking_seconds);
  state.counters["procs"] = shape().procs();
  state.counters["drop_rate"] = pt.drop;
  state.counters["brownout_severity"] = pt.severity;
  state.counters["blocking_sim_seconds"] = m.blocking_seconds;
  state.counters["completion_x"] = m.blocking_seconds / base.blocking_seconds;
  state.counters["goodput_values_per_s"] =
      static_cast<double>(m.sum_global_values) / m.blocking_seconds;
  state.counters["drops"] = static_cast<double>(m.drops);
  state.counters["dups"] = static_cast<double>(m.dups);
  state.counters["retransmits"] = static_cast<double>(m.retransmits);
  state.counters["timeouts"] = static_cast<double>(m.timeouts);
  state.SetLabel(std::string(mi < kNumSparse ? "sparse " : "dense ") +
                 method_name(mi) + " drop=" + std::to_string(pt.drop) +
                 " sev=" + std::to_string(pt.severity));
}

void register_benches() {
  auto* b = benchmark::RegisterBenchmark("BM_FaultSweep", BM_FaultSweep);
  b->ArgsProduct({index_range(data().size()),
                  benchmark::CreateDenseRange(0, kNumMethods - 1, 1)})
      ->Iterations(1);
}

}  // namespace

int main(int argc, char** argv) {
  benchfig::init(&argc, argv);
  register_benches();
  benchmark::RunSpecifiedBenchmarks();
  const auto& d = data();
  std::printf(
      "\nFault sweep (P=%d, tapered fat tree, link cap on; times are "
      "simulated seconds)\n"
      "%5s %5s | %-22s %12s %8s %14s %6s %5s %7s %6s\n",
      shape().procs(), "drop", "sev", "method", "blocking_s", "compl_x",
      "goodput_vals_s", "drops", "dups", "retrans", "tmouts");
  for (const Point& pt : d) {
    for (int mi = 0; mi < kNumMethods; ++mi) {
      const harness::PatternMeasurement& m = pt.m[mi];
      const harness::PatternMeasurement& base = d[0].m[mi];
      std::printf(
          "%5.2f %5.2f | %-22s %12.3e %8.2f %14.3e %6ld %5ld %7ld %6ld\n",
          pt.drop, pt.severity,
          (std::string(mi < kNumSparse ? "sparse/" : "dense/") +
           method_name(mi))
              .c_str(),
          m.blocking_seconds, m.blocking_seconds / base.blocking_seconds,
          static_cast<double>(m.sum_global_values) / m.blocking_seconds,
          m.drops, m.dups, m.retransmits, m.timeouts);
    }
  }
  benchmark::Shutdown();
  return 0;
}
