/// \file bench_fig12_strong_scaling.cpp
/// \brief Figure 12: total SpMV communication across every AMG level,
/// strong-scaled 524 288-row rotated anisotropic diffusion, 32-2048
/// processes.  As in the paper (Section 4.2), the optimized lines use the
/// cheaper of standard and optimized communication on each level ("maximum
/// possible improvement"; a per-pattern selection strategy achieves it —
/// see model::select_protocol).  Paper: 1.32x speedup for the partially
/// optimized collective at 2048 processes, +0.07x more for dedup.

#include "bench_common.hpp"

namespace {

using namespace benchfig;
using harness::Protocol;

struct Data {
  std::vector<double> procs;
  std::vector<double> hypre, neighbor, partial, full;
};

const Data& data() {
  static const Data d = [] {
    Data out;
    for (int p : scaling_ranks()) {
      ProtocolSet s = measure_all(paper_rows(), p);
      const auto& hyp = s.of(Protocol::hypre);
      out.procs.push_back(p);
      out.hypre.push_back(harness::total_time(hyp));
      out.neighbor.push_back(
          harness::total_time(s.of(Protocol::neighbor_standard)));
      // Best-of-per-level selection against the standard strategy.
      out.partial.push_back(
          harness::total_time(s.of(Protocol::neighbor_partial), &hyp));
      out.full.push_back(
          harness::total_time(s.of(Protocol::neighbor_full), &hyp));
    }
    return out;
  }();
  return d;
}

void BM_StrongScaling(benchmark::State& state) {
  const Data& d = data();
  const std::size_t i = static_cast<std::size_t>(state.range(0));
  const int p = static_cast<int>(state.range(1));
  for (auto _ : state) benchmark::DoNotOptimize(i);
  state.counters["procs"] = d.procs[i];
  const std::vector<double>* series[4] = {&d.hypre, &d.neighbor, &d.partial,
                                          &d.full};
  state.counters["sim_seconds"] = (*series[p])[i];
  state.SetLabel(harness::to_string(static_cast<Protocol>(p)));
}
BENCHMARK(BM_StrongScaling)
    ->ArgsProduct({index_range(scaling_ranks().size()),
                   benchmark::CreateDenseRange(0, 3, 1)})
    ->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  benchfig::init(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  const Data& d = data();
  harness::print_figure(
      std::cout,
      "Figure 12: strong scaling of SpMV communication over all AMG levels "
      "(seconds, 524288 rows)",
      "Processes", d.procs,
      {{"Standard Hypre", d.hypre},
       {"Unoptimized Neighbor", d.neighbor},
       {"Partially Optimized", d.partial},
       {"Fully Optimized", d.full}});
  const double partial_speedup = d.hypre.back() / d.partial.back();
  const double full_speedup = d.hypre.back() / d.full.back();
  std::printf(
      "speedup vs Standard Hypre at %d: partial %.2fx (paper at 2048: "
      "1.32x), full %.2fx (paper: 1.39x)\n",
      scaling_ranks().back(), partial_speedup, full_speedup);
  benchmark::Shutdown();
  return 0;
}
