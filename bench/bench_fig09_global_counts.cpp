/// \file bench_fig09_global_counts.cpp
/// \brief Figure 9: maximum number of inter-region ("global") messages sent
/// by any process, per AMG level (524 288 rows, 2048 cores).  Aggregation
/// caps a rank's global messages at its share of the region's destination
/// regions, flattening the standard protocol's coarse-level spike.

#include "bench_common.hpp"

namespace {

using namespace benchfig;
using harness::Protocol;

struct Data {
  std::vector<double> levels, standard_global, optimized_global;
};

const Data& data() {
  static const Data d = [] {
    Data out;
    const auto& dh = harness::paper_dist_hierarchy(paper_rows(), paper_ranks());
    auto std_m = harness::measure_protocol(dh, Protocol::neighbor_standard,
                                           paper_config());
    auto opt_m = harness::measure_protocol(dh, Protocol::neighbor_partial,
                                           paper_config());
    for (std::size_t l = 0; l < std_m.size(); ++l) {
      out.levels.push_back(static_cast<double>(l));
      out.standard_global.push_back(std_m[l].max_global_msgs);
      out.optimized_global.push_back(opt_m[l].max_global_msgs);
    }
    return out;
  }();
  return d;
}

void BM_GlobalMessages(benchmark::State& state) {
  const Data& d = data();
  const std::size_t l = static_cast<std::size_t>(state.range(0));
  const bool optimized = state.range(1) != 0;
  for (auto _ : state) benchmark::DoNotOptimize(l);
  if (l < d.levels.size()) {
    state.counters["level"] = d.levels[l];
    state.counters["max_global_msgs"] =
        optimized ? d.optimized_global[l] : d.standard_global[l];
  }
  state.SetLabel(optimized ? "Optimized Global" : "Standard Global");
}
BENCHMARK(BM_GlobalMessages)
    ->ArgsProduct({benchmark::CreateDenseRange(0, 11, 1), {0, 1}})
    ->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  benchfig::init(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  const Data& d = data();
  harness::print_figure(std::cout,
                        "Figure 9: max inter-region messages per process, "
                        "per SpMV level (524288 rows, 2048 cores)",
                        "AMG level", d.levels,
                        {{"Standard Global", d.standard_global},
                         {"Optimized Global", d.optimized_global}});
  benchmark::Shutdown();
  return 0;
}
