/// \file bench_link_taper.cpp
/// \brief Fat-tree taper sweep: selected patterns x taper ratios
/// {1:1, 2:1, 4:1} x the sparse neighbor methods and the dense alltoallv
/// methods, with shared-link contention charged (use_link_cap on).
///
/// The crossover story of the paper, given a physical cause in the model:
/// with a flat core (taper 1:1) aggregation pays mostly through endpoint
/// and message-rate effects, but as the core tapers, every message crossing
/// a leaf-switch boundary pays its framing (CostParams::link_msg_bytes)
/// at the tapered link rate — so the standard methods' many small
/// messages fall behind node_aggregated/bruck by a margin that *grows*
/// with the taper ratio.  The `blocking_vs_standard` counter exposes that
/// margin directly (>1 means the method beats standard at this taper).
///
/// The simulated tree is nodes -> 4 leaf switches -> 1 root (one shared
/// up/down link tier, tapered); `--link-taper=T` restricts the sweep to
/// one ratio.  Quick mode runs the 64-rank shape only.

#include "bench_common.hpp"

#include "patterns/pattern.hpp"

namespace {

using namespace benchfig;

constexpr int kNumSparse = 3;  // mpix::kAllMethods
constexpr int kNumDense = 3;   // mpix::kAllAlltoallMethods
constexpr int kNumMethods = kNumSparse + kNumDense;

struct Shape {
  int procs;
  int rpr;  // ranks per region (one region per node here)
};

const std::vector<Shape>& shapes() {
  static const std::vector<Shape> s = [] {
    std::vector<Shape> out{{64, 4}};  // 16 nodes -> 4 leaves -> 1 root
    if (!quick_mode()) out.push_back({256, 16});
    return out;
  }();
  return s;
}

const std::vector<double>& tapers() {
  static const std::vector<double> t = [] {
    const std::vector<double> all{1.0, 2.0, 4.0};
    const double only = link_taper_override();
    if (only <= 0.0) return all;
    return std::vector<double>{only};
  }();
  return t;
}

const std::vector<const char*>& pattern_names() {
  static const std::vector<const char*> p{"stencil3d27", "random_sparse",
                                          "incast"};
  return p;
}

/// Small per-edge payloads: the taper story is about *message-rate*
/// pressure on shared links (framing paid per message at the tapered
/// rate), which is exactly the fine-grained-halo regime the paper's
/// aggregation targets.  Large payloads converge every method to the same
/// bytes/rate bound and the margin flattens.
patterns::PatternParams params_for(const char* name) {
  patterns::PatternParams p;
  p.seed = 1;
  const std::string n = name;
  if (n == "incast") {
    p.values = 32;
    p.fan_in = 0;  // every other rank
  } else if (n == "random_sparse") {
    p.values = 8;
    p.degree = 6;
  } else {
    p.values = 16;  // stencil
  }
  return p;
}

const char* method_name(int mi) {
  return mi < kNumSparse
             ? mpix::to_string(mpix::kAllMethods[mi])
             : mpix::to_string(mpix::kAllAlltoallMethods[mi - kNumSparse]);
}

struct Point {
  int shape;      // into shapes()
  double taper;
  patterns::Workload wl;  // kept for labels/counters
  harness::PatternMeasurement m[kNumMethods];  // sparse 0..2, dense 3..5
};

const std::vector<Point>& data() {
  static const std::vector<Point> d = [] {
    std::vector<Point> out;
    for (std::size_t si = 0; si < shapes().size(); ++si) {
      const Shape& sh = shapes()[si];
      const simmpi::Machine machine =
          simmpi::Machine::with_region_size(sh.procs, sh.rpr);
      for (const char* pname : pattern_names()) {
        // One workload per (shape, pattern): tapers change link costs,
        // never the traffic, so plans and buffers sweep unchanged.
        patterns::Workload wl;
        for (const auto& spec : patterns::registry())
          if (std::string(spec.name) == pname)
            wl = spec.make(machine, params_for(pname));
        for (double taper : tapers()) {
          harness::MeasureConfig cfg;
          cfg.ranks_per_region = sh.rpr;
          cfg.switch_levels = {{.radix = 4, .taper = taper},
                               {.radix = machine.num_nodes() / 4,
                                .taper = 1.0}};
          cfg.cost.use_link_cap = true;
          cfg.cost.link_msg_bytes = 256.0;  // framing + rendezvous control
          // Low host overheads put every method's bottleneck on the
          // network, not the posting CPU: the dense standard method posts
          // O(P) requests per rank, and with Lassen-default overheads
          // that CPU time (especially the O(P) receive-queue search)
          // would hide the link contention this sweep is about.
          cfg.cost.send_overhead = 5.0e-8;
          cfg.cost.recv_overhead = 5.0e-8;
          cfg.cost.queue_search = 0.0;
          cfg.plans = &plan_cache();
          Point pt;
          pt.shape = static_cast<int>(si);
          pt.taper = taper;
          pt.wl = wl;
          for (int mi = 0; mi < kNumSparse; ++mi)
            pt.m[mi] = harness::measure_pattern(wl, mpix::kAllMethods[mi],
                                                cfg);
          for (int mi = 0; mi < kNumDense; ++mi)
            pt.m[kNumSparse + mi] = harness::measure_pattern_dense(
                wl, mpix::kAllAlltoallMethods[mi], cfg);
          out.push_back(std::move(pt));
        }
      }
    }
    return out;
  }();
  return d;
}

void BM_LinkTaper(benchmark::State& state) {
  const int pi = static_cast<int>(state.range(0));
  const int mi = static_cast<int>(state.range(1));
  const Point& pt = data()[pi];
  const harness::PatternMeasurement& m = pt.m[mi];
  // Margin over the standard method of the same family at this taper.
  const harness::PatternMeasurement& std_m =
      pt.m[mi < kNumSparse ? 0 : kNumSparse];
  const Shape& sh = shapes()[pt.shape];
  for (auto _ : state) benchmark::DoNotOptimize(m.blocking_seconds);
  state.counters["procs"] = sh.procs;
  state.counters["ppn"] = sh.rpr;
  state.counters["taper"] = pt.taper;
  state.counters["init_sim_seconds"] = m.init_seconds;
  state.counters["blocking_sim_seconds"] = m.blocking_seconds;
  state.counters["overlapped_sim_seconds"] = m.overlapped_seconds;
  state.counters["sum_global_msgs"] = static_cast<double>(m.sum_global_msgs);
  state.counters["sum_global_values"] =
      static_cast<double>(m.sum_global_values);
  double busy = 0.0, backlog = 0.0;
  long crossings = 0;
  for (double v : m.link_seconds) busy += v;
  for (double v : m.max_link_backlog_seconds) backlog = std::max(backlog, v);
  for (long v : m.sum_link_msgs) crossings += v;
  state.counters["link_busy_seconds"] = busy;
  state.counters["max_link_backlog_seconds"] = backlog;
  state.counters["sum_link_crossings"] = static_cast<double>(crossings);
  state.counters["blocking_vs_standard"] =
      m.blocking_seconds > 0.0 ? std_m.blocking_seconds / m.blocking_seconds
                               : 0.0;
  state.SetLabel(pt.wl.pattern + " " + std::string(method_name(mi)) +
                 (mi < kNumSparse ? " (sparse)" : " (dense)") +
                 " P=" + std::to_string(sh.procs) +
                 " taper=" + std::to_string(static_cast<int>(pt.taper)) +
                 ":1");
}

void register_benches() {
  auto* b = benchmark::RegisterBenchmark("BM_LinkTaper", BM_LinkTaper);
  b->ArgsProduct({index_range(data().size()),
                  benchmark::CreateDenseRange(0, kNumMethods - 1, 1)})
      ->Iterations(1);
}

}  // namespace

int main(int argc, char** argv) {
  benchfig::init(&argc, argv);
  register_benches();
  benchmark::RunSpecifiedBenchmarks();
  const auto& d = data();
  std::printf(
      "\nFat-tree taper sweep (shared-link contention on; times are "
      "simulated seconds; x_std = standard/method of the same family)\n"
      "%-13s %6s %6s | %-16s %-7s %11s %11s %7s\n",
      "pattern", "procs", "taper", "method", "family", "blocking_s",
      "link_busy_s", "x_std");
  for (const Point& pt : d) {
    const Shape& sh = shapes()[pt.shape];
    for (int mi = 0; mi < kNumMethods; ++mi) {
      const harness::PatternMeasurement& m = pt.m[mi];
      const harness::PatternMeasurement& std_m =
          pt.m[mi < kNumSparse ? 0 : kNumSparse];
      double busy = 0.0;
      for (double v : m.link_seconds) busy += v;
      std::printf("%-13s %6d %5d:1 | %-16s %-7s %11.3e %11.3e %7.2f\n",
                  pt.wl.pattern.c_str(), sh.procs,
                  static_cast<int>(pt.taper), method_name(mi),
                  mi < kNumSparse ? "sparse" : "dense", m.blocking_seconds,
                  busy,
                  m.blocking_seconds > 0.0
                      ? std_m.blocking_seconds / m.blocking_seconds
                      : 0.0);
    }
  }
  benchmark::Shutdown();
  return 0;
}
