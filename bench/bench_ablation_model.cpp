/// \file bench_ablation_model.cpp
/// \brief Ablation: which cost-model features drive the paper's result?
///
/// Three machine models, same 524 288-row problem at 2048 ranks:
///  * lassen      — locality-aware tiers + NIC injection queue (default);
///  * no-nic-cap  — locality-aware tiers, infinite injection bandwidth;
///  * flat        — every tier costs the same (locality-blind).
///
/// Finding (also recorded in EXPERIMENTS.md): the aggregation speedup
/// survives without the injection cap (it is latency/count-driven), and it
/// even survives a locality-blind model — three-step aggregation not only
/// exploits cheap local links, it *load balances*: the busiest rank's
/// message count falls from "every destination rank in every remote
/// region" to "one message per assigned region".  The locality tiers
/// decide where the fine-level crossover sits, not whether the coarse
/// levels win.

#include "bench_common.hpp"

namespace {

using namespace benchfig;
using harness::Protocol;

struct Entry {
  const char* name;
  double hypre = 0.0, partial = 0.0;
  double speedup() const { return hypre / partial; }
};

struct Data {
  std::vector<Entry> entries;
};

Entry run(const char* name, simmpi::CostParams params) {
  harness::MeasureConfig cfg = paper_config();
  cfg.cost = params;
  const auto& dh = harness::paper_dist_hierarchy(paper_rows(), paper_ranks());
  Entry e;
  e.name = name;
  auto hyp = harness::measure_protocol(dh, Protocol::hypre, cfg);
  auto par = harness::measure_protocol(dh, Protocol::neighbor_partial, cfg);
  e.hypre = harness::total_time(hyp);
  e.partial = harness::total_time(par, &hyp);
  return e;
}

const Data& data() {
  static const Data d = [] {
    Data out;
    out.entries.push_back(run("lassen", simmpi::CostParams::lassen()));
    simmpi::CostParams nocap = simmpi::CostParams::lassen();
    nocap.use_injection_cap = false;
    out.entries.push_back(run("no-nic-cap", nocap));
    out.entries.push_back(run("flat", simmpi::CostParams::flat()));
    return out;
  }();
  return d;
}

void BM_CostModelAblation(benchmark::State& state) {
  const Data& d = data();
  const auto& e = d.entries[static_cast<std::size_t>(state.range(0))];
  for (auto _ : state) benchmark::DoNotOptimize(e.hypre);
  state.counters["hypre_sim_seconds"] = e.hypre;
  state.counters["partial_sim_seconds"] = e.partial;
  state.counters["speedup"] = e.speedup();
  state.SetLabel(e.name);
}
BENCHMARK(BM_CostModelAblation)->DenseRange(0, 2)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  benchfig::init(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  std::printf("\n=== Ablation: cost-model features (524288 rows, 2048 cores) "
              "===\n%-12s %-14s %-14s %s\n", "model", "hypre (s)",
              "partial (s)", "speedup");
  for (const auto& e : data().entries)
    std::printf("%-12s %-14.4e %-14.4e %.2fx\n", e.name, e.hypre, e.partial,
                e.speedup());
  benchmark::Shutdown();
  return 0;
}
