/// \file bench_fig_dense_crossover.cpp
/// \brief Dense alltoall crossover sweep: the three `mpix::alltoall_init`
/// methods (standard pairwise, node-aggregated, locality-aware Bruck)
/// across message size x machine shape.  Not a paper figure — the paper's
/// evaluation is sparse neighbor exchanges — but the same locality model
/// applied to the dense collective the locality_aware reference repo left
/// as future work.
///
/// Per sweep point the counters expose the method's network footprint
/// (sum/max global messages, value totals, largest single message) next to
/// its simulated init and per-iteration times, plus the crossover iteration
/// count against the standard method.  Expected scaling for P ranks in R
/// regions: standard sends P^2 - sum |region|^2 network messages,
/// node_aggregated R(R-1), bruck R*ceil(log2 R).

#include "bench_common.hpp"

namespace {

using namespace benchfig;
using mpix::AlltoallMethod;

constexpr int kNumMethods = 3;
constexpr std::size_t kElementSize = sizeof(double);

struct Point {
  int procs = 0;
  int ppn = 0;    // ranks per region
  int count = 0;  // values per rank pair
};

const std::vector<Point>& points() {
  static const std::vector<Point> pts = [] {
    std::vector<Point> out;
    std::vector<int> procs{64, 256};
    if (!quick_mode()) procs.push_back(512);
    for (int p : procs)
      for (int ppn : {4, 16}) {
        std::vector<int> counts{1, 32};
        if (!quick_mode() && p <= 256) counts.push_back(256);
        for (int c : counts) out.push_back({p, ppn, c});
      }
    return out;
  }();
  return pts;
}

struct Data {
  // Indexed [point][method].
  std::vector<harness::DenseMeasurement> m[kNumMethods];
  std::vector<int> crossover[kNumMethods];  // vs standard; standard = 0
};

const Data& data() {
  static const Data d = [] {
    Data out;
    for (const Point& pt : points()) {
      harness::MeasureConfig cfg;
      cfg.ranks_per_region = pt.ppn;
      cfg.plans = &plan_cache();
      harness::DenseMeasurement per[kNumMethods];
      for (int mi = 0; mi < kNumMethods; ++mi) {
        per[mi] = harness::measure_dense_alltoall(
            pt.procs, pt.count, kElementSize, mpix::kAllAlltoallMethods[mi],
            cfg);
        out.m[mi].push_back(per[mi]);
      }
      for (int mi = 0; mi < kNumMethods; ++mi)
        out.crossover[mi].push_back(
            mi == 0 ? 0
                    : harness::crossover_iterations(
                          per[0].init_seconds, per[0].start_wait_seconds,
                          per[mi].init_seconds, per[mi].start_wait_seconds));
    }
    return out;
  }();
  return d;
}

void BM_DenseAlltoall(benchmark::State& state) {
  const Data& d = data();
  const int pi = static_cast<int>(state.range(0));
  const int mi = static_cast<int>(state.range(1));
  const Point& pt = points()[pi];
  const harness::DenseMeasurement& m = d.m[mi][pi];
  for (auto _ : state) benchmark::DoNotOptimize(m.init_seconds);
  state.counters["procs"] = pt.procs;
  state.counters["ppn"] = pt.ppn;
  state.counters["msg_count"] = pt.count;
  state.counters["msg_bytes"] =
      static_cast<double>(pt.count) * static_cast<double>(kElementSize);
  state.counters["init_sim_seconds"] = m.init_seconds;
  state.counters["per_iter_sim_seconds"] = m.start_wait_seconds;
  state.counters["sum_local_msgs"] = static_cast<double>(m.sum_local_msgs);
  state.counters["sum_global_msgs"] = static_cast<double>(m.sum_global_msgs);
  state.counters["max_rank_global_msgs"] =
      static_cast<double>(m.max_global_msgs);
  state.counters["sum_global_values"] =
      static_cast<double>(m.sum_global_values);
  state.counters["max_global_msg_values"] =
      static_cast<double>(m.max_global_msg_values);
  state.counters["crossover_iters"] = d.crossover[mi][pi];
  state.SetLabel(std::string(
                     mpix::to_string(mpix::kAllAlltoallMethods[mi])) +
                 " P=" + std::to_string(pt.procs) +
                 " ppn=" + std::to_string(pt.ppn) +
                 " count=" + std::to_string(pt.count));
}

void register_benches() {
  auto* b = benchmark::RegisterBenchmark("BM_DenseAlltoall", BM_DenseAlltoall);
  b->ArgsProduct({index_range(points().size()),
                  benchmark::CreateDenseRange(0, kNumMethods - 1, 1)})
      ->Iterations(1);
}

}  // namespace

int main(int argc, char** argv) {
  benchfig::init(&argc, argv);
  register_benches();
  benchmark::RunSpecifiedBenchmarks();
  const Data& d = data();
  std::printf(
      "\nDense alltoall (element = %zu bytes; times are simulated seconds)\n"
      "%6s %4s %6s | %-16s %12s %14s %12s %12s %10s\n",
      kElementSize, "procs", "ppn", "count", "method", "init_s", "per_iter_s",
      "glob_msgs", "glob_vals", "crossover");
  for (std::size_t pi = 0; pi < points().size(); ++pi) {
    const Point& pt = points()[pi];
    for (int mi = 0; mi < kNumMethods; ++mi) {
      const harness::DenseMeasurement& m = d.m[mi][pi];
      std::printf("%6d %4d %6d | %-16s %12.3e %14.3e %12ld %12ld %10d\n",
                  pt.procs, pt.ppn, pt.count,
                  mpix::to_string(mpix::kAllAlltoallMethods[mi]),
                  m.init_seconds, m.start_wait_seconds, m.sum_global_msgs,
                  m.sum_global_values, d.crossover[mi][pi]);
    }
  }
  benchmark::Shutdown();
  return 0;
}
