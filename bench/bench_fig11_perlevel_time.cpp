/// \file bench_fig11_perlevel_time.cpp
/// \brief Figure 11: Start+Wait time of the SpMV halo exchange on each AMG
/// level, all four protocols (524 288 rows, 2048 cores).  Fine levels favor
/// standard communication (aggregation overhead); coarse middle levels —
/// where irregular communication peaks — favor the locality-aware
/// collectives; the very coarsest levels involve few processes and converge
/// again.

#include "bench_common.hpp"

namespace {

using namespace benchfig;

struct Data {
  std::vector<double> levels;
  std::vector<double> series[4];
};

const Data& data() {
  static const Data d = [] {
    Data out;
    ProtocolSet s = measure_all(paper_rows(), paper_ranks());
    for (std::size_t l = 0; l < s.per[0].size(); ++l) {
      out.levels.push_back(static_cast<double>(l));
      for (int p = 0; p < 4; ++p)
        out.series[p].push_back(s.per[p][l].start_wait_seconds);
    }
    return out;
  }();
  return d;
}

void BM_PerLevelTime(benchmark::State& state) {
  const Data& d = data();
  const std::size_t l = static_cast<std::size_t>(state.range(0));
  const int p = static_cast<int>(state.range(1));
  for (auto _ : state) benchmark::DoNotOptimize(l);
  if (l < d.levels.size()) {
    state.counters["level"] = d.levels[l];
    state.counters["sim_seconds"] = d.series[p][l];
  }
  state.SetLabel(
      harness::to_string(static_cast<harness::Protocol>(p)));
}
BENCHMARK(BM_PerLevelTime)
    ->ArgsProduct({benchmark::CreateDenseRange(0, 11, 1),
                   benchmark::CreateDenseRange(0, 3, 1)})
    ->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  benchfig::init(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  const Data& d = data();
  harness::print_figure(
      std::cout,
      "Figure 11: SpMV Start+Wait time per AMG level "
      "(seconds, 524288 rows, 2048 cores)",
      "AMG level", d.levels,
      {{"Standard Hypre", d.series[0]},
       {"Unoptimized Neighbor", d.series[1]},
       {"Partially Optim. Neighbor", d.series[2]},
       {"Fully Optim. Neighbor", d.series[3]}});
  benchmark::Shutdown();
  return 0;
}
