/// \file bench_fig10_global_sizes.cpp
/// \brief Figure 10: maximum single inter-region message size (in vector
/// values) per process and level, partially vs fully optimized.  The dedup
/// extension removes values bound for several ranks of one region; the
/// paper reports up to a 35 % reduction (level 4 of its hierarchy).

#include "bench_common.hpp"

namespace {

using namespace benchfig;
using harness::Protocol;

struct Data {
  std::vector<double> levels, partial, full;
  double best_reduction = 0.0;
  int best_level = -1;
};

const Data& data() {
  static const Data d = [] {
    Data out;
    const auto& dh = harness::paper_dist_hierarchy(paper_rows(), paper_ranks());
    auto par = harness::measure_protocol(dh, Protocol::neighbor_partial,
                                         paper_config());
    auto ful = harness::measure_protocol(dh, Protocol::neighbor_full,
                                         paper_config());
    for (std::size_t l = 0; l < par.size(); ++l) {
      out.levels.push_back(static_cast<double>(l));
      out.partial.push_back(par[l].max_global_msg_values);
      out.full.push_back(ful[l].max_global_msg_values);
      if (par[l].max_global_msg_values > 0) {
        const double red =
            1.0 - static_cast<double>(ful[l].max_global_msg_values) /
                      par[l].max_global_msg_values;
        if (red > out.best_reduction) {
          out.best_reduction = red;
          out.best_level = static_cast<int>(l);
        }
      }
    }
    return out;
  }();
  return d;
}

void BM_GlobalMessageSize(benchmark::State& state) {
  const Data& d = data();
  const std::size_t l = static_cast<std::size_t>(state.range(0));
  const bool dedup = state.range(1) != 0;
  for (auto _ : state) benchmark::DoNotOptimize(l);
  if (l < d.levels.size()) {
    state.counters["level"] = d.levels[l];
    state.counters["max_global_msg_values"] =
        dedup ? d.full[l] : d.partial[l];
  }
  state.SetLabel(dedup ? "Fully Optimized" : "Partially Optimized");
}
BENCHMARK(BM_GlobalMessageSize)
    ->ArgsProduct({benchmark::CreateDenseRange(0, 11, 1), {0, 1}})
    ->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  benchfig::init(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  const Data& d = data();
  harness::print_figure(std::cout,
                        "Figure 10: max single inter-region message size "
                        "(values), per SpMV level (524288 rows, 2048 cores)",
                        "AMG level", d.levels,
                        {{"Partially Optimized", d.partial},
                         {"Fully Optimized", d.full}});
  std::printf("largest dedup reduction: %.0f%% at level %d "
              "(paper: 35%% at level 4)\n",
              100.0 * d.best_reduction, d.best_level);
  benchmark::Shutdown();
  return 0;
}
