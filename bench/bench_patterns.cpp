/// \file bench_patterns.cpp
/// \brief Workload-generator sweep: every registered pattern of the
/// patterns layer (stencil halos, incast, bursty I/O, random sparse,
/// overlap ring) x machine shape x the three sparse neighbor methods, on
/// the congestion-aware machine model (endpoint ejection cap enabled).
///
/// Not a paper figure: this is the scenario-diversity series from the
/// related MPI-Asynchronous-Communication-Test benchmarks.  Per point the
/// counters expose the three simulated windows (init, blocking,
/// overlapped) plus the sender-side message/value footprint; for patterns
/// with an overlap window, blocking - overlapped is the exploitable
/// communication/computation overlap under the cost model.

#include "bench_common.hpp"

#include "patterns/pattern.hpp"

namespace {

using namespace benchfig;

constexpr int kNumMethods = 3;

struct Shape {
  int procs;
  int rpr;  // ranks per region
  int rpn;  // regions per node
};

const std::vector<Shape>& shapes() {
  static const std::vector<Shape> s = [] {
    std::vector<Shape> out{{64, 8, 1}, {64, 4, 2}};
    if (!quick_mode()) {
      out.push_back({256, 16, 1});
      out.push_back({512, 16, 2});
    }
    return out;
  }();
  return s;
}

/// Per-pattern value scaling: enough bytes that the regimes and the
/// ejection queue matter, small enough that quick mode stays a smoke run.
patterns::PatternParams params_for(const char* name) {
  patterns::PatternParams p;
  p.seed = 1;
  const std::string n = name;
  if (n == "incast") {
    p.values = 256;
    p.fan_in = 0;  // every other rank
  } else if (n == "bursty_io") {
    p.values = 64;  // x burst(8) = 512 values per writer
    p.sinks = 4;
  } else if (n == "random_sparse") {
    p.values = 32;
    p.degree = 6;
  } else if (n == "ring_overlap") {
    p.values = 512;
  } else {
    p.values = 64;  // stencils
  }
  return p;
}

struct PointData {
  patterns::Workload wl;  // kept for labels/counters
  harness::PatternMeasurement m[kNumMethods];
};

const std::vector<PointData>& data() {
  static const std::vector<PointData> d = [] {
    std::vector<PointData> out;
    for (const Shape& sh : shapes()) {
      const simmpi::Machine machine({.num_nodes = sh.procs / (sh.rpr * sh.rpn),
                                     .regions_per_node = sh.rpn,
                                     .ranks_per_region = sh.rpr});
      harness::MeasureConfig cfg;
      cfg.ranks_per_region = sh.rpr;
      cfg.regions_per_node = sh.rpn;
      cfg.cost.use_ejection_cap = true;  // endpoint congestion first-class
      cfg.plans = &plan_cache();
      for (const auto& spec : patterns::registry()) {
        PointData pt;
        pt.wl = spec.make(machine, params_for(spec.name));
        for (int mi = 0; mi < kNumMethods; ++mi)
          pt.m[mi] =
              harness::measure_pattern(pt.wl, mpix::kAllMethods[mi], cfg);
        out.push_back(std::move(pt));
      }
    }
    return out;
  }();
  return d;
}

void BM_Pattern(benchmark::State& state) {
  const int pi = static_cast<int>(state.range(0));
  const int mi = static_cast<int>(state.range(1));
  const PointData& pt = data()[pi];
  const harness::PatternMeasurement& m = pt.m[mi];
  const Shape& sh = shapes()[pi / static_cast<int>(patterns::registry().size())];
  for (auto _ : state) benchmark::DoNotOptimize(m.blocking_seconds);
  state.counters["procs"] = sh.procs;
  state.counters["ppn"] = sh.rpr;
  state.counters["rpn"] = sh.rpn;
  state.counters["init_sim_seconds"] = m.init_seconds;
  state.counters["blocking_sim_seconds"] = m.blocking_seconds;
  state.counters["overlapped_sim_seconds"] = m.overlapped_seconds;
  state.counters["overlap_window_seconds"] = m.overlap_seconds;
  state.counters["sum_local_msgs"] = static_cast<double>(m.sum_local_msgs);
  state.counters["sum_global_msgs"] = static_cast<double>(m.sum_global_msgs);
  state.counters["sum_local_values"] =
      static_cast<double>(m.sum_local_values);
  state.counters["sum_global_values"] =
      static_cast<double>(m.sum_global_values);
  state.counters["max_rank_global_msgs"] =
      static_cast<double>(m.max_global_msgs);
  state.counters["max_global_msg_values"] =
      static_cast<double>(m.max_global_msg_values);
  state.SetLabel(pt.wl.pattern + " " +
                 mpix::to_string(mpix::kAllMethods[mi]) +
                 " P=" + std::to_string(sh.procs) +
                 " ppn=" + std::to_string(sh.rpr) +
                 " rpn=" + std::to_string(sh.rpn));
}

void register_benches() {
  auto* b = benchmark::RegisterBenchmark("BM_Pattern", BM_Pattern);
  b->ArgsProduct({index_range(data().size()),
                  benchmark::CreateDenseRange(0, kNumMethods - 1, 1)})
      ->Iterations(1);
}

}  // namespace

int main(int argc, char** argv) {
  benchfig::init(&argc, argv);
  register_benches();
  benchmark::RunSpecifiedBenchmarks();
  const auto& d = data();
  std::printf(
      "\nPattern sweep (endpoint congestion on; times are simulated "
      "seconds)\n"
      "%-13s %6s %4s %4s | %-16s %10s %11s %11s %10s %10s\n",
      "pattern", "procs", "ppn", "rpn", "method", "init_s", "blocking_s",
      "overlap_s", "glob_msgs", "glob_vals");
  const std::size_t npat = patterns::registry().size();
  for (std::size_t pi = 0; pi < d.size(); ++pi) {
    const Shape& sh = shapes()[pi / npat];
    for (int mi = 0; mi < kNumMethods; ++mi) {
      const harness::PatternMeasurement& m = d[pi].m[mi];
      std::printf(
          "%-13s %6d %4d %4d | %-16s %10.3e %11.3e %11.3e %10ld %10ld\n",
          d[pi].wl.pattern.c_str(), sh.procs, sh.rpr, sh.rpn,
          mpix::to_string(mpix::kAllMethods[mi]), m.init_seconds,
          m.blocking_seconds, m.overlapped_seconds, m.sum_global_msgs,
          m.sum_global_values);
    }
  }
  benchmark::Shutdown();
  return 0;
}
