/// \file bench_fig07_crossover.cpp
/// \brief Figure 7: initialization cost plus k iterations of Start+Wait for
/// every protocol (once per AMG level each), 524 288 rows on 2048 cores.
/// The crossover iteration counts — where an optimized collective's cheaper
/// iterations amortize its costlier init — are the headline numbers
/// (paper: 40 iterations for partially optimized, 22 for fully optimized).

#include "bench_common.hpp"

namespace {

using namespace benchfig;
using harness::Protocol;

struct Data {
  double init[4] = {};  // summed over levels, per protocol
  double iter[4] = {};
  std::vector<double> iterations;      // x axis 0..60
  std::vector<double> series[4];       // init + k * iter
  int crossover_partial = -1, crossover_full = -1;
};

const Data& data() {
  static const Data d = [] {
    Data out;
    ProtocolSet s = measure_all(paper_rows(), paper_ranks());
    for (int p = 0; p < 4; ++p) {
      for (const auto& lm : s.per[p]) {
        out.init[p] += lm.init_seconds;
        out.iter[p] += lm.start_wait_seconds;
      }
    }
    for (int k = 0; k <= 60; k += 5) {
      out.iterations.push_back(k);
      for (int p = 0; p < 4; ++p)
        out.series[p].push_back(out.init[p] + k * out.iter[p]);
    }
    const int base = static_cast<int>(Protocol::hypre);
    out.crossover_partial = harness::crossover_iterations(
        out.init[base], out.iter[base],
        out.init[static_cast<int>(Protocol::neighbor_partial)],
        out.iter[static_cast<int>(Protocol::neighbor_partial)]);
    out.crossover_full = harness::crossover_iterations(
        out.init[base], out.iter[base],
        out.init[static_cast<int>(Protocol::neighbor_full)],
        out.iter[static_cast<int>(Protocol::neighbor_full)]);
    return out;
  }();
  return d;
}

void BM_InitPlusIterations(benchmark::State& state) {
  const Data& d = data();
  const int p = static_cast<int>(state.range(0));
  for (auto _ : state) benchmark::DoNotOptimize(p);
  state.counters["init_sim_seconds"] = d.init[p];
  state.counters["per_iter_sim_seconds"] = d.iter[p];
  state.SetLabel(harness::to_string(static_cast<Protocol>(p)));
}
BENCHMARK(BM_InitPlusIterations)->DenseRange(0, 3)->Iterations(1);

void BM_Crossover(benchmark::State& state) {
  const Data& d = data();
  for (auto _ : state) benchmark::DoNotOptimize(d.init[0]);
  state.counters["crossover_partial_iters"] = d.crossover_partial;
  state.counters["crossover_full_iters"] = d.crossover_full;
}
BENCHMARK(BM_Crossover)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  benchfig::init(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  const Data& d = data();
  harness::print_figure(
      std::cout,
      "Figure 7: init + k iterations (seconds, 524288 rows, 2048 cores)",
      "Iterations", d.iterations,
      {{"Standard Hypre", d.series[0]},
       {"Standard Neighbor", d.series[1]},
       {"Partially Optimized", d.series[2]},
       {"Fully Optimized", d.series[3]}});
  std::printf(
      "crossover vs Standard Hypre: partial at %d iterations (paper: 40), "
      "full at %d iterations (paper: 22)\n",
      d.crossover_partial, d.crossover_full);
  benchmark::Shutdown();
  return 0;
}
