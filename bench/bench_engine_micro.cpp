/// \file bench_engine_micro.cpp
/// \brief Micro benchmarks of the engine's per-message machinery: message
/// rate through the arena-backed journal/mailbox path, mailbox interning
/// and lookup, pooled coroutine-frame churn, and the
/// allocations-per-message counter that pins the steady state to zero heap
/// traffic.  Unlike the figure benches these measure the *simulator's own*
/// hot loop — wall time is the measurement, so host rates live in
/// `items_per_second` (host-dependent, ignored by the series comparator)
/// while everything in `counters` stays deterministic.  The engine width
/// is pinned to 1: these are single-thread hot-path numbers
/// (docs/BENCHMARKS.md).

#include "util/alloc_hook.hpp"

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <span>
#include <vector>

#include "simmpi/coll.hpp"
#include "simmpi/engine.hpp"

namespace {

using namespace simmpi;

bool quick_mode() {
  const char* v = std::getenv("COLLOM_BENCH_QUICK");
  return v != nullptr && *v != '\0' && *v != '0';
}

Machine micro_machine() {
  return Machine({.num_nodes = 2, .regions_per_node = 2, .ranks_per_region = 4});
}

Engine::Options width1() { return Engine::Options{.threads = 1}; }

constexpr int kRingTag = 11;

/// Ring exchange with a fixed tag: the persistent-exchange hot path.
Task<> ring(Context& ctx, int iters, std::size_t payload_doubles) {
  const int p = ctx.world().size();
  const int r = ctx.rank();
  std::vector<double> out(payload_doubles, r + 0.5);
  std::vector<double> in(payload_doubles);
  for (int it = 0; it < iters; ++it) {
    Request reqs[2] = {
        Request::send(ctx.world(), std::as_bytes(std::span<const double>(out)),
                      (r + 1) % p, kRingTag),
        Request::recv(ctx.world(), std::as_writable_bytes(std::span<double>(in)),
                      (r - 1 + p) % p, kRingTag),
    };
    for (auto& q : reqs) q.start(ctx);
    co_await ctx.wait_all(std::span<Request>(reqs));
  }
}

/// Messages per second through post_send → journal → commit → mailbox →
/// complete_recv, one payload size per argument.
void BM_MessageRate(benchmark::State& state) {
  const int iters = quick_mode() ? 64 : 256;
  const auto payload = static_cast<std::size_t>(state.range(0));
  Engine eng(micro_machine(), CostParams::lassen(), width1());
  const int p = eng.machine().num_ranks();
  auto run_once = [&] {
    eng.run([&](Context& ctx) -> Task<> { return ring(ctx, iters, payload); });
  };
  run_once();  // warm arenas, channels, frame pool
  std::uint64_t msgs = 0;
  for (auto _ : state) {
    run_once();
    msgs += static_cast<std::uint64_t>(iters) * p;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(msgs));
  state.SetBytesProcessed(
      static_cast<std::int64_t>(msgs * payload * sizeof(double)));
  state.counters["sim_msgs_per_run"] = static_cast<double>(iters) * p;
  state.counters["sim_seconds"] = eng.max_clock();
}
// Iteration counts are pinned (here and below) so every counter —
// channel totals, pool statistics — is a deterministic function of the
// configuration, as the series comparator requires.
BENCHMARK(BM_MessageRate)
    ->Arg(1)
    ->Arg(128)
    ->Arg(8192)
    ->Iterations(20)
    ->Unit(benchmark::kMillisecond);

/// Mailbox stress: every round mints fresh collective tags, so each
/// message interns a fresh channel into the flat probing table and its
/// receive erases it again (erase-on-drain keeps the table at the
/// in-flight channel count under this churn).
void BM_MailboxChurn(benchmark::State& state) {
  const int rounds = quick_mode() ? 32 : 128;
  Engine eng(micro_machine(), CostParams::lassen(), width1());
  const int p = eng.machine().num_ranks();
  std::uint64_t ops = 0;
  for (auto _ : state) {
    eng.run([&](Context& ctx) -> Task<> {
      for (int k = 0; k < rounds; ++k)
        co_await coll::barrier(ctx, ctx.world());
    });
    // Each barrier: log2(p) rounds of one send + one recv per rank.
    int lg = 0;
    for (int k = 1; k < p; k <<= 1) ++lg;
    ops += static_cast<std::uint64_t>(rounds) * p * lg * 2;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(ops));
  // Queue-slot high-water mark: erase-on-drain keeps the mailbox at the
  // in-flight channel count, not the total tags ever minted.
  state.counters["channel_slots_rank0"] =
      static_cast<double>(eng.channel_slots(0));
}
BENCHMARK(BM_MailboxChurn)->Iterations(10)->Unit(benchmark::kMillisecond);

Task<> noop() { co_return; }

/// Coroutine-frame churn: one pooled frame allocated and destroyed per
/// awaited no-op task.
void BM_FrameRate(benchmark::State& state) {
  const int frames = quick_mode() ? 4096 : 65536;
  Engine eng(micro_machine(), CostParams::lassen(), width1());
  std::uint64_t total = 0;
  for (auto _ : state) {
    eng.run([&](Context& ctx) -> Task<> {
      (void)ctx;
      for (int i = 0; i < frames; ++i) co_await noop();
    });
    total += static_cast<std::uint64_t>(frames) * eng.machine().num_ranks();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(total));
  state.counters["frame_pool_mallocs"] =
      static_cast<double>(util::frame_pool_mallocs());
}
BENCHMARK(BM_FrameRate)->Iterations(20)->Unit(benchmark::kMillisecond);

/// The allocation regression counter: heap allocations per message on a
/// warmed engine.  Deterministic (width 1, fixed iteration count) and
/// expected to be exactly 0 — tests/test_engine_alloc.cpp enforces the
/// same property with hard asserts; this keeps it visible in the bench
/// trajectory.
void BM_AllocsPerMessage(benchmark::State& state) {
  const int iters = 128;
  Engine eng(micro_machine(), CostParams::lassen(), width1());
  const int p = eng.machine().num_ranks();
  auto run_for = [&](int n) {
    eng.run([&](Context& ctx) -> Task<> { return ring(ctx, n, 64); });
  };
  // Warm at the *longest* length so arenas reach their peak population.
  run_for(4 * iters);
  const auto b0 = util::alloc_hook_count();
  run_for(iters);
  // Per-run scaffolding (task vectors, pool setup), independent of the
  // iteration count; subtracting it isolates the per-message cost.
  const std::uint64_t base_allocs = util::alloc_hook_count() - b0;
  const auto before = util::alloc_hook_count();
  run_for(4 * iters);
  const std::uint64_t with_more = util::alloc_hook_count() - before;
  const double extra_msgs = static_cast<double>(3 * iters) * p;
  const double per_msg =
      static_cast<double>(with_more > base_allocs ? with_more - base_allocs
                                                  : 0) /
      extra_msgs;
  for (auto _ : state) benchmark::DoNotOptimize(per_msg);
  state.counters["allocs_per_msg_steady"] = per_msg;
  state.counters["arena_chunks"] =
      static_cast<double>(eng.arena_stats().chunks);
  state.counters["arena_recycles"] =
      static_cast<double>(eng.arena_stats().recycles);
}
BENCHMARK(BM_AllocsPerMessage)->Iterations(1);

}  // namespace

BENCHMARK_MAIN();
