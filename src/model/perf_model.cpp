#include "model/perf_model.hpp"

#include <algorithm>

namespace model {

using simmpi::Locality;

double estimate_rank_time(const simmpi::CostModel& cm,
                          const mpix::NeighborStats& s) {
  double t = 0.0;
  if (s.local_msgs > 0) {
    const double avg =
        8.0 * static_cast<double>(s.local_values) / s.local_msgs;
    t += s.local_msgs *
         (cm.send_overhead() + cm.recv_overhead(0) +
          cm.transfer_time(Locality::region, static_cast<std::size_t>(avg)));
  }
  if (s.global_msgs > 0) {
    const double avg =
        8.0 * static_cast<double>(s.global_values) / s.global_msgs;
    t += s.global_msgs *
         (cm.send_overhead() + cm.recv_overhead(0) +
          cm.transfer_time(Locality::network, static_cast<std::size_t>(avg)));
  }
  return t;
}

double estimate_collective_time(const simmpi::CostModel& cm,
                                std::span<const mpix::NeighborStats> ranks) {
  double best = 0.0;
  for (const auto& s : ranks) best = std::max(best, estimate_rank_time(cm, s));
  return best;
}

int select_protocol(
    const simmpi::CostModel& cm,
    const std::vector<std::vector<mpix::NeighborStats>>& candidates) {
  if (candidates.empty())
    throw simmpi::SimError("select_protocol: no candidates");
  int best = 0;
  double best_t = estimate_collective_time(cm, candidates[0]);
  for (std::size_t i = 1; i < candidates.size(); ++i) {
    const double t = estimate_collective_time(cm, candidates[i]);
    if (t < best_t) {
      best_t = t;
      best = static_cast<int>(i);
    }
  }
  return best;
}

}  // namespace model
