#pragma once
/// \file perf_model.hpp
/// \brief Analytic cost estimates and dynamic protocol selection.
///
/// The paper's conclusions call for "a simple performance measure ...
/// within the neighborhood collective to dynamically select the optimal
/// communication strategy".  This module provides that extension: a
/// locality-aware postal estimate evaluated on the per-rank message
/// statistics of each candidate implementation, and an argmin selector.

#include <span>
#include <string>
#include <vector>

#include "mpix/neighbor.hpp"
#include "simmpi/cost_model.hpp"

namespace model {

/// Estimated Start+Wait time of one collective execution on one rank,
/// from its message statistics: postal model with locality-aware
/// parameters (intra-region traffic priced at the region tier, inter-region
/// at the network tier; both send and receive overheads charged).
double estimate_rank_time(const simmpi::CostModel& cm,
                          const mpix::NeighborStats& s);

/// Estimated collective time = max over ranks.
double estimate_collective_time(const simmpi::CostModel& cm,
                                std::span<const mpix::NeighborStats> ranks);

/// Pick the protocol with the smallest estimated collective time.
/// `candidates[i]` holds the per-rank stats of protocol i.  Returns the
/// winning index.
int select_protocol(
    const simmpi::CostModel& cm,
    const std::vector<std::vector<mpix::NeighborStats>>& candidates);

}  // namespace model
