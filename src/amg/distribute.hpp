#pragma once
/// \file distribute.hpp
/// \brief Rank-aware distribution of an AMG hierarchy (Hypre renumbering).
///
/// Every coarse point inherits the owner rank of its fine point; coarse
/// points are then renumbered so each rank owns a contiguous block, ordered
/// by (owner, fine distributed index) — exactly how BoomerAMG numbers coarse
/// grids.  The result is, per level, a ParCSR operator plus its halo
/// pattern (the irregular communication the paper optimizes), and the
/// distributed transfer operators needed to run a distributed V-cycle.

#include "amg/hierarchy.hpp"
#include "sparse/par_csr.hpp"

namespace amg {

/// One distributed level.
struct DistLevel {
  sparse::ParCsr A;
  sparse::Halo halo;  ///< SpMV halo of A (the measured pattern)

  // Transfer operators to the next-coarser level (empty on coarsest).
  sparse::ParCsr P;
  sparse::Halo halo_P;
  sparse::ParCsr R;
  sparse::Halo halo_R;

  /// canonical id -> distributed id at this level.
  std::vector<int> perm;

  bool has_coarse() const { return P.global_rows != 0; }
  long n() const { return A.global_rows; }

  bool operator==(const DistLevel&) const = default;
};

/// A hierarchy distributed over `nranks` ranks.
struct DistHierarchy {
  std::vector<DistLevel> levels;
  int nranks = 0;

  int num_levels() const { return static_cast<int>(levels.size()); }

  bool operator==(const DistHierarchy&) const = default;
};

/// Distribute a canonical hierarchy over `nranks` ranks (block partition of
/// the fine grid; inherited ownership below).
DistHierarchy distribute_hierarchy(const Hierarchy& h, int nranks);

}  // namespace amg
