#include "amg/hierarchy.hpp"

#include "amg/interp.hpp"
#include "amg/strength.hpp"

namespace amg {

double Hierarchy::grid_complexity() const {
  double total = 0;
  for (const auto& l : levels) total += l.n();
  return total / levels.front().n();
}

double Hierarchy::operator_complexity() const {
  double total = 0;
  for (const auto& l : levels) total += static_cast<double>(l.A.nnz());
  return total / static_cast<double>(levels.front().A.nnz());
}

Hierarchy Hierarchy::build(sparse::Csr A, const Options& opts) {
  if (A.rows() != A.cols())
    throw sparse::Error("Hierarchy::build: matrix must be square");
  Hierarchy h;
  h.options = opts;
  h.levels.push_back(Level{std::move(A), {}, {}, {}, {}});

  const sparse::Threads bt{opts.threads};
  while (h.num_levels() < opts.max_levels &&
         h.levels.back().n() > opts.min_coarse_size) {
    Level& lvl = h.levels.back();
    const sparse::Csr S = strength(lvl.A, opts.strength_theta, bt);
    std::vector<CF> cf = coarsen(S, opts.coarsen_algo);
    std::vector<int> cpts = coarse_points(cf);
    const int nc = static_cast<int>(cpts.size());
    if (nc == 0 || nc == lvl.n()) break;  // coarsening stalled

    sparse::Csr P =
        direct_interpolation(lvl.A, S, cf, opts.interp_max_elements, bt);
    sparse::Csr R = P.transpose(bt);
    sparse::Csr Ac = sparse::galerkin_product(R, lvl.A, P, bt)
                         .pruned(opts.galerkin_prune_tol, bt);

    lvl.P = std::move(P);
    lvl.R = std::move(R);
    lvl.cf = std::move(cf);
    lvl.cpoints = std::move(cpts);
    h.levels.push_back(Level{std::move(Ac), {}, {}, {}, {}});
  }
  return h;
}

}  // namespace amg
