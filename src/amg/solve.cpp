#include "amg/solve.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace amg {

void jacobi(const sparse::Csr& A, std::span<const double> b,
            std::span<double> x, double omega) {
  const int n = A.rows();
  std::vector<double> r(n);
  A.spmv(x, r);
  for (int i = 0; i < n; ++i) r[i] = b[i] - r[i];
  const auto d = A.diagonal();
  for (int i = 0; i < n; ++i) {
    if (d[i] == 0.0) throw sparse::Error("jacobi: zero diagonal");
    x[i] += omega * r[i] / d[i];
  }
}

void dense_solve(const sparse::Csr& A, std::span<const double> b,
                 std::span<double> x) {
  const int n = A.rows();
  std::vector<double> m(static_cast<std::size_t>(n) * n, 0.0);
  for (int r = 0; r < n; ++r) {
    auto c = A.row_cols(r);
    auto v = A.row_vals(r);
    for (std::size_t k = 0; k < c.size(); ++k)
      m[static_cast<std::size_t>(r) * n + c[k]] = v[k];
  }
  std::vector<double> rhs(b.begin(), b.end());
  std::vector<int> piv(n);
  for (int i = 0; i < n; ++i) piv[i] = i;
  for (int col = 0; col < n; ++col) {
    int best = col;
    for (int r = col + 1; r < n; ++r)
      if (std::abs(m[static_cast<std::size_t>(r) * n + col]) >
          std::abs(m[static_cast<std::size_t>(best) * n + col]))
        best = r;
    if (m[static_cast<std::size_t>(best) * n + col] == 0.0)
      throw sparse::Error("dense_solve: singular matrix");
    if (best != col) {
      for (int c = 0; c < n; ++c)
        std::swap(m[static_cast<std::size_t>(best) * n + c],
                  m[static_cast<std::size_t>(col) * n + c]);
      std::swap(rhs[best], rhs[col]);
    }
    const double pivot = m[static_cast<std::size_t>(col) * n + col];
    for (int r = col + 1; r < n; ++r) {
      const double f = m[static_cast<std::size_t>(r) * n + col] / pivot;
      if (f == 0.0) continue;
      for (int c = col; c < n; ++c)
        m[static_cast<std::size_t>(r) * n + c] -=
            f * m[static_cast<std::size_t>(col) * n + c];
      rhs[r] -= f * rhs[col];
    }
  }
  for (int r = n - 1; r >= 0; --r) {
    double acc = rhs[r];
    for (int c = r + 1; c < n; ++c)
      acc -= m[static_cast<std::size_t>(r) * n + c] * x[c];
    x[r] = acc / m[static_cast<std::size_t>(r) * n + r];
  }
}

void vcycle(const Hierarchy& h, int lvl, std::span<const double> b,
            std::span<double> x, const CycleOptions& opts) {
  const Level& level = h.levels[lvl];
  if (lvl == h.num_levels() - 1 || level.is_coarsest()) {
    dense_solve(level.A, b, x);
    return;
  }
  for (int s = 0; s < opts.pre_sweeps; ++s)
    jacobi(level.A, b, x, opts.jacobi_omega);

  // Restrict the residual.
  const int n = level.n();
  std::vector<double> r(n);
  level.A.spmv(x, r);
  for (int i = 0; i < n; ++i) r[i] = b[i] - r[i];
  const int nc = level.P.cols();
  std::vector<double> rc(nc), xc(nc, 0.0);
  level.R.spmv(r, rc);

  vcycle(h, lvl + 1, rc, xc, opts);

  // Prolongate and correct.
  std::vector<double> corr(n);
  level.P.spmv(xc, corr);
  for (int i = 0; i < n; ++i) x[i] += corr[i];

  for (int s = 0; s < opts.post_sweeps; ++s)
    jacobi(level.A, b, x, opts.jacobi_omega);
}

double residual_norm(const sparse::Csr& A, std::span<const double> b,
                     std::span<const double> x) {
  std::vector<double> r(A.rows());
  A.spmv(x, r);
  double acc = 0;
  for (int i = 0; i < A.rows(); ++i) {
    const double d = b[i] - r[i];
    acc += d * d;
  }
  return std::sqrt(acc);
}

namespace {
double norm2(std::span<const double> v) {
  double acc = 0;
  for (double x : v) acc += x * x;
  return std::sqrt(acc);
}
double dot(std::span<const double> a, std::span<const double> b) {
  double acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}
}  // namespace

SolveResult pcg(const sparse::Csr& A, std::span<const double> b,
                std::span<double> x, const Precond& M, double rel_tol,
                int max_iter) {
  const int n = A.rows();
  std::vector<double> r(n), z(n), p(n), ap(n);
  A.spmv(x, r);
  for (int i = 0; i < n; ++i) r[i] = b[i] - r[i];
  const double bnorm = std::max(norm2(b), 1e-300);

  SolveResult res;
  M(r, z);
  p.assign(z.begin(), z.end());
  double rz = dot(r, z);
  for (int it = 0; it < max_iter; ++it) {
    res.final_residual = norm2(r) / bnorm;
    if (res.final_residual < rel_tol) {
      res.converged = true;
      return res;
    }
    A.spmv(p, ap);
    const double alpha = rz / dot(p, ap);
    for (int i = 0; i < n; ++i) {
      x[i] += alpha * p[i];
      r[i] -= alpha * ap[i];
    }
    M(r, z);
    const double rz_new = dot(r, z);
    const double beta = rz_new / rz;
    rz = rz_new;
    for (int i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
    ++res.iterations;
  }
  res.final_residual = norm2(r) / bnorm;
  res.converged = res.final_residual < rel_tol;
  return res;
}

SolveResult amg_solve(const Hierarchy& h, std::span<const double> b,
                      std::span<double> x, double rel_tol, int max_iter,
                      const CycleOptions& opts) {
  const sparse::Csr& A = h.levels.front().A;
  const double bnorm = std::max(norm2(b), 1e-300);
  SolveResult res;
  for (int it = 0; it < max_iter; ++it) {
    res.final_residual = residual_norm(A, b, x) / bnorm;
    if (res.final_residual < rel_tol) {
      res.converged = true;
      return res;
    }
    vcycle(h, 0, b, x, opts);
    ++res.iterations;
  }
  res.final_residual = residual_norm(A, b, x) / bnorm;
  res.converged = res.final_residual < rel_tol;
  return res;
}

SolveResult amg_pcg(const Hierarchy& h, std::span<const double> b,
                    std::span<double> x, double rel_tol, int max_iter,
                    const CycleOptions& opts) {
  Precond M = [&](std::span<const double> r, std::span<double> z) {
    std::fill(z.begin(), z.end(), 0.0);
    vcycle(h, 0, r, z, opts);
  };
  return pcg(h.levels.front().A, b, x, M, rel_tol, max_iter);
}

}  // namespace amg
