#pragma once
/// \file solve.hpp
/// \brief Sequential solve-phase kernels: smoothers, V-cycle, PCG.

#include <functional>
#include <span>

#include "amg/hierarchy.hpp"

namespace amg {

/// x += omega * D^{-1} (b - A x)   (one weighted-Jacobi sweep).
void jacobi(const sparse::Csr& A, std::span<const double> b,
            std::span<double> x, double omega = 2.0 / 3.0);

/// Dense LU solve with partial pivoting (coarsest-level solver).
void dense_solve(const sparse::Csr& A, std::span<const double> b,
                 std::span<double> x);

/// Solve-phase parameters.
struct CycleOptions {
  int pre_sweeps = 1;
  int post_sweeps = 1;
  double jacobi_omega = 2.0 / 3.0;
};

/// One V-cycle on level `lvl` of the hierarchy: x <- V(x, b).
void vcycle(const Hierarchy& h, int lvl, std::span<const double> b,
            std::span<double> x, const CycleOptions& opts = {});

/// Result of an iterative solve.
struct SolveResult {
  int iterations = 0;
  double final_residual = 0.0;  ///< relative two-norm
  bool converged = false;
};

/// Preconditioner interface: z = M^{-1} r.
using Precond =
    std::function<void(std::span<const double>, std::span<double>)>;

/// Preconditioned conjugate gradients on A x = b (x is in/out).
SolveResult pcg(const sparse::Csr& A, std::span<const double> b,
                std::span<double> x, const Precond& M, double rel_tol = 1e-8,
                int max_iter = 500);

/// Stationary AMG iteration (repeated V-cycles) until relative residual
/// drops below rel_tol.
SolveResult amg_solve(const Hierarchy& h, std::span<const double> b,
                      std::span<double> x, double rel_tol = 1e-8,
                      int max_iter = 200, const CycleOptions& opts = {});

/// Convenience: PCG preconditioned with one V-cycle of `h`.
SolveResult amg_pcg(const Hierarchy& h, std::span<const double> b,
                    std::span<double> x, double rel_tol = 1e-8,
                    int max_iter = 500, const CycleOptions& opts = {});

/// Two-norm of b - A x.
double residual_norm(const sparse::Csr& A, std::span<const double> b,
                     std::span<const double> x);

}  // namespace amg
