#pragma once
/// \file interp.hpp
/// \brief Direct interpolation with truncation (BoomerAMG style).

#include <vector>

#include "amg/coarsen.hpp"
#include "sparse/csr.hpp"

namespace amg {

/// Build the direct-interpolation operator P (n_fine x n_coarse).
///
/// C point i interpolates exactly from itself.  F point i interpolates from
/// its strong C neighbors C_i with the classical scaled-injection weights
///   w_ij = -(a_ij / a_ii) * (sum of same-sign off-diagonals of row i)
///                         / (sum of same-sign entries over C_i),
/// computed separately for negative and positive couplings.  When an F row
/// has positive off-diagonals but no positive strong C neighbor, the
/// positive mass is lumped onto the diagonal (Hypre behaviour).
///
/// Rows are then truncated to the `max_elements` largest-magnitude weights
/// and rescaled to preserve the row sum.  F points with no strong C
/// neighbor get an empty row (they rely on smoothing alone).
///
/// Row-parallel two-phase kernel: a symbolic pass computes every row's
/// final entry count, a numeric pass recomputes the weights into the fixed
/// row slices — output is bit-identical for every `threads` width.
sparse::Csr direct_interpolation(const sparse::Csr& A, const sparse::Csr& S,
                                 const std::vector<CF>& cf,
                                 int max_elements = 4,
                                 sparse::Threads threads = {});

}  // namespace amg
