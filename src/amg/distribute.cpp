#include "amg/distribute.hpp"

#include <algorithm>
#include <numeric>

namespace amg {

DistHierarchy distribute_hierarchy(const Hierarchy& h, int nranks) {
  if (nranks < 1)
    throw sparse::Error("distribute_hierarchy: nranks must be >= 1");
  DistHierarchy dh;
  dh.nranks = nranks;
  dh.levels.resize(h.num_levels());

  // Level 0: natural numbering, block partition.
  std::vector<int> perm(h.levels[0].n());
  std::iota(perm.begin(), perm.end(), 0);
  std::vector<long> part = sparse::block_partition(h.levels[0].n(), nranks);

  // Renumbering inherits the hierarchy's construction-thread knob (the
  // permuted outputs are bit-identical for every width).
  const sparse::Threads bt{h.options.threads};

  for (int l = 0; l < h.num_levels(); ++l) {
    const Level& lvl = h.levels[l];
    DistLevel& dl = dh.levels[l];
    dl.perm = perm;

    const sparse::Csr A_dist =
        l == 0 ? lvl.A : lvl.A.permuted(perm, perm, bt);
    dl.A = sparse::ParCsr::distribute(A_dist, part, part);
    dl.halo = sparse::Halo::build(dl.A);

    if (lvl.is_coarsest() || l + 1 >= h.num_levels()) break;

    // Coarse ownership: inherit from the fine point, then renumber so each
    // rank's coarse points are contiguous, ordered by fine distributed id.
    const int nc = static_cast<int>(lvl.cpoints.size());
    std::vector<int> order(nc);
    std::iota(order.begin(), order.end(), 0);
    std::vector<int> owner(nc);
    std::vector<int> fine_dist(nc);
    for (int j = 0; j < nc; ++j) {
      fine_dist[j] = perm[lvl.cpoints[j]];
      owner[j] = sparse::owner_of(part, fine_dist[j]);
    }
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      return owner[a] != owner[b] ? owner[a] < owner[b]
                                  : fine_dist[a] < fine_dist[b];
    });
    std::vector<int> coarse_perm(nc);
    for (int pos = 0; pos < nc; ++pos) coarse_perm[order[pos]] = pos;
    std::vector<int> counts(nranks, 0);
    for (int j = 0; j < nc; ++j) ++counts[owner[j]];
    std::vector<long> coarse_part = sparse::partition_from_counts(counts);

    const sparse::Csr P_dist = lvl.P.permuted(perm, coarse_perm, bt);
    const sparse::Csr R_dist = lvl.R.permuted(coarse_perm, perm, bt);
    dl.P = sparse::ParCsr::distribute(P_dist, part, coarse_part);
    dl.halo_P = sparse::Halo::build(dl.P);
    dl.R = sparse::ParCsr::distribute(R_dist, coarse_part, part);
    dl.halo_R = sparse::Halo::build(dl.R);

    perm = std::move(coarse_perm);
    part = std::move(coarse_part);
  }
  return dh;
}

}  // namespace amg
