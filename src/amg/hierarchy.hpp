#pragma once
/// \file hierarchy.hpp
/// \brief BoomerAMG-style multigrid hierarchy construction.
///
/// The hierarchy is built once in *canonical* numbering (coarse points in
/// ascending fine order).  Rank-dependent "distributed" numbering — where a
/// coarse point inherits its fine point's owner and ranks own contiguous
/// coarse blocks, exactly as Hypre renumbers coarse grids — is applied later
/// by amg::distribute_hierarchy (see distribute.hpp), so one hierarchy can
/// be partitioned for many process counts.

#include <vector>

#include "amg/coarsen.hpp"
#include "sparse/csr.hpp"

namespace amg {

/// Hierarchy construction options (defaults follow the paper's setting:
/// classical strength 0.25, RS coarsening, direct interpolation).
struct Options {
  double strength_theta = 0.25;
  CoarsenAlgo coarsen_algo = CoarsenAlgo::rs;
  int interp_max_elements = 4;
  int max_levels = 30;
  int min_coarse_size = 16;  ///< stop coarsening below this many rows
  double galerkin_prune_tol = 1e-12;  ///< drop numerically-zero RAP entries
  /// Worker threads of the construction kernels (strength, interpolation,
  /// transpose, Galerkin SpGEMM).  <= 0 = auto: COLLOM_BUILD_THREADS, else
  /// COLLOM_SIM_THREADS, else hardware concurrency (sparse::Threads).  The
  /// built hierarchy is bit-identical for every width, so this knob is
  /// wall-time-only and never part of a hierarchy's identity (the
  /// harness::HierarchyCache key and operator== both ignore it).
  int threads = 0;

  /// Identity comparison: every field that shapes the built hierarchy —
  /// deliberately excluding the wall-time-only `threads` knob, so
  /// hierarchies built at different widths compare equal.
  bool operator==(const Options& o) const {
    return strength_theta == o.strength_theta &&
           coarsen_algo == o.coarsen_algo &&
           interp_max_elements == o.interp_max_elements &&
           max_levels == o.max_levels &&
           min_coarse_size == o.min_coarse_size &&
           galerkin_prune_tol == o.galerkin_prune_tol;
  }
};

/// One level: operator plus (except on the coarsest) the transfer operators
/// and splitting that produced the next level.
struct Level {
  sparse::Csr A;
  sparse::Csr P;               ///< n_l x n_{l+1}; empty on coarsest level
  sparse::Csr R;               ///< P^T, cached
  std::vector<CF> cf;          ///< CF split of this level; empty on coarsest
  std::vector<int> cpoints;    ///< fine indices of C points, ascending

  bool is_coarsest() const { return cpoints.empty(); }
  int n() const { return A.rows(); }

  bool operator==(const Level&) const = default;
};

/// A full AMG hierarchy in canonical numbering.
struct Hierarchy {
  std::vector<Level> levels;
  Options options;

  int num_levels() const { return static_cast<int>(levels.size()); }
  /// Total grid points over all levels / fine points (grid complexity).
  double grid_complexity() const;
  /// Total nonzeros over all levels / fine nonzeros (operator complexity).
  double operator_complexity() const;

  /// Build from a (square, SPD-ish) fine operator.  Construction is
  /// threaded per Options::threads; the result is bit-identical for every
  /// width (see docs/ARCHITECTURE.md, "Parallel construction").
  static Hierarchy build(sparse::Csr A, const Options& opts = {});

  bool operator==(const Hierarchy&) const = default;
};

}  // namespace amg
