#pragma once
/// \file hierarchy.hpp
/// \brief BoomerAMG-style multigrid hierarchy construction.
///
/// The hierarchy is built once in *canonical* numbering (coarse points in
/// ascending fine order).  Rank-dependent "distributed" numbering — where a
/// coarse point inherits its fine point's owner and ranks own contiguous
/// coarse blocks, exactly as Hypre renumbers coarse grids — is applied later
/// by amg::distribute_hierarchy (see distribute.hpp), so one hierarchy can
/// be partitioned for many process counts.

#include <vector>

#include "amg/coarsen.hpp"
#include "sparse/csr.hpp"

namespace amg {

/// Hierarchy construction options (defaults follow the paper's setting:
/// classical strength 0.25, RS coarsening, direct interpolation).
struct Options {
  double strength_theta = 0.25;
  CoarsenAlgo coarsen_algo = CoarsenAlgo::rs;
  int interp_max_elements = 4;
  int max_levels = 30;
  int min_coarse_size = 16;  ///< stop coarsening below this many rows
  double galerkin_prune_tol = 1e-12;  ///< drop numerically-zero RAP entries
};

/// One level: operator plus (except on the coarsest) the transfer operators
/// and splitting that produced the next level.
struct Level {
  sparse::Csr A;
  sparse::Csr P;               ///< n_l x n_{l+1}; empty on coarsest level
  sparse::Csr R;               ///< P^T, cached
  std::vector<CF> cf;          ///< CF split of this level; empty on coarsest
  std::vector<int> cpoints;    ///< fine indices of C points, ascending

  bool is_coarsest() const { return cpoints.empty(); }
  int n() const { return A.rows(); }
};

/// A full AMG hierarchy in canonical numbering.
struct Hierarchy {
  std::vector<Level> levels;
  Options options;

  int num_levels() const { return static_cast<int>(levels.size()); }
  /// Total grid points over all levels / fine points (grid complexity).
  double grid_complexity() const;
  /// Total nonzeros over all levels / fine nonzeros (operator complexity).
  double operator_complexity() const;

  /// Build from a (square, SPD-ish) fine operator.
  static Hierarchy build(sparse::Csr A, const Options& opts = {});
};

}  // namespace amg
