#pragma once
/// \file strength.hpp
/// \brief Classical strength-of-connection for algebraic multigrid.

#include "sparse/csr.hpp"

namespace amg {

/// Classical strength matrix: S contains (i, j), j != i, iff
///   -a_ij >= theta * max_{k != i} (-a_ik),
/// i.e. j is a strong influence on i.  Values are 1.0 (pattern matrix).
/// Rows whose off-diagonal entries are all non-negative have no strong
/// connections.  Row-parallel two-phase kernel: output is bit-identical
/// for every `threads` width.
sparse::Csr strength(const sparse::Csr& A, double theta,
                     sparse::Threads threads = {});

}  // namespace amg
