#include "amg/interp.hpp"

#include <algorithm>
#include <cmath>

namespace amg {

sparse::Csr direct_interpolation(const sparse::Csr& A, const sparse::Csr& S,
                                 const std::vector<CF>& cf,
                                 int max_elements) {
  const int n = A.rows();
  if (static_cast<int>(cf.size()) != n)
    throw sparse::Error("direct_interpolation: cf size mismatch");
  if (max_elements < 1)
    throw sparse::Error("direct_interpolation: max_elements must be >= 1");

  // canonical coarse numbering: C points in ascending order.
  std::vector<int> coarse_id(n, -1);
  int nc = 0;
  for (int i = 0; i < n; ++i)
    if (cf[i] == CF::coarse) coarse_id[i] = nc++;

  std::vector<sparse::Triplet> tr;
  std::vector<std::pair<int, double>> row;  // (coarse col, weight)
  for (int i = 0; i < n; ++i) {
    if (cf[i] == CF::coarse) {
      tr.push_back(sparse::Triplet{i, coarse_id[i], 1.0});
      continue;
    }
    // Strong C neighbors of F point i.
    auto scols = S.row_cols(i);
    auto acols = A.row_cols(i);
    auto avals = A.row_vals(i);

    double diag = 0.0;
    double sum_neg = 0.0, sum_pos = 0.0;        // all off-diagonal mass
    double csum_neg = 0.0, csum_pos = 0.0;      // strong-C mass
    row.clear();
    for (std::size_t k = 0; k < acols.size(); ++k) {
      const int j = acols[k];
      const double v = avals[k];
      if (j == i) {
        diag = v;
        continue;
      }
      if (v < 0)
        sum_neg += v;
      else
        sum_pos += v;
      const bool strong =
          std::binary_search(scols.begin(), scols.end(), j);
      if (strong && cf[j] == CF::coarse) {
        row.emplace_back(coarse_id[j], v);
        if (v < 0)
          csum_neg += v;
        else
          csum_pos += v;
      }
    }
    if (row.empty()) continue;  // F point without strong C neighbors
    if (diag == 0.0)
      throw sparse::Error("direct_interpolation: zero diagonal");

    // Positive couplings with no positive strong C: lump onto the diagonal.
    double eff_diag = diag;
    double alpha = csum_neg != 0.0 ? sum_neg / csum_neg : 0.0;
    double beta = 0.0;
    if (sum_pos != 0.0) {
      if (csum_pos != 0.0)
        beta = sum_pos / csum_pos;
      else
        eff_diag += sum_pos;
    }
    for (auto& [c, v] : row)
      v = -(v < 0 ? alpha : beta) * v / eff_diag;

    // Truncate to the largest-|w| entries, preserving the row sum.
    if (static_cast<int>(row.size()) > max_elements) {
      std::partial_sort(row.begin(), row.begin() + max_elements, row.end(),
                        [](const auto& a, const auto& b) {
                          return std::abs(a.second) > std::abs(b.second);
                        });
      double full = 0.0, kept = 0.0;
      for (const auto& [c, v] : row) full += v;
      row.resize(max_elements);
      for (const auto& [c, v] : row) kept += v;
      if (kept != 0.0) {
        const double scale = full / kept;
        for (auto& [c, v] : row) v *= scale;
      }
    }
    for (const auto& [c, v] : row)
      if (v != 0.0) tr.push_back(sparse::Triplet{i, c, v});
  }
  return sparse::Csr::from_triplets(n, nc, std::move(tr));
}

}  // namespace amg
