#include "amg/interp.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/worker_pool.hpp"

namespace amg {

namespace {

/// Per-row interpolation weights of F point i, written into `row` as
/// (coarse col, weight) pairs in ascending column order.  Shared by the
/// count and fill passes so both see the identical result (the determinism
/// and exact-preallocation contracts hinge on that).
void interp_row(const sparse::Csr& A, const sparse::Csr& S,
                const std::vector<CF>& cf, const std::vector<int>& coarse_id,
                int max_elements, int i,
                std::vector<std::pair<int, double>>& row) {
  auto scols = S.row_cols(i);
  auto acols = A.row_cols(i);
  auto avals = A.row_vals(i);

  double diag = 0.0;
  double sum_neg = 0.0, sum_pos = 0.0;    // all off-diagonal mass
  double csum_neg = 0.0, csum_pos = 0.0;  // strong-C mass
  row.clear();
  for (std::size_t k = 0; k < acols.size(); ++k) {
    const int j = acols[k];
    const double v = avals[k];
    if (j == i) {
      diag = v;
      continue;
    }
    if (v < 0)
      sum_neg += v;
    else
      sum_pos += v;
    const bool strong = std::binary_search(scols.begin(), scols.end(), j);
    if (strong && cf[j] == CF::coarse) {
      row.emplace_back(coarse_id[j], v);
      if (v < 0)
        csum_neg += v;
      else
        csum_pos += v;
    }
  }
  if (row.empty()) return;  // F point without strong C neighbors
  if (diag == 0.0)
    throw sparse::Error("direct_interpolation: zero diagonal");

  // Positive couplings with no positive strong C: lump onto the diagonal.
  double eff_diag = diag;
  double alpha = csum_neg != 0.0 ? sum_neg / csum_neg : 0.0;
  double beta = 0.0;
  if (sum_pos != 0.0) {
    if (csum_pos != 0.0)
      beta = sum_pos / csum_pos;
    else
      eff_diag += sum_pos;
  }
  for (auto& [c, v] : row)
    v = -(v < 0 ? alpha : beta) * v / eff_diag;

  // Truncate to the largest-|w| entries, preserving the row sum.
  if (static_cast<int>(row.size()) > max_elements) {
    std::partial_sort(row.begin(), row.begin() + max_elements, row.end(),
                      [](const auto& a, const auto& b) {
                        return std::abs(a.second) > std::abs(b.second);
                      });
    double full = 0.0, kept = 0.0;
    for (const auto& [c, v] : row) full += v;
    row.resize(max_elements);
    for (const auto& [c, v] : row) kept += v;
    if (kept != 0.0) {
      const double scale = full / kept;
      for (auto& [c, v] : row) v *= scale;
    }
  }
  // Drop exact zeros and restore ascending column order (truncation
  // reordered by magnitude).
  std::erase_if(row, [](const auto& cv) { return cv.second == 0.0; });
  std::sort(row.begin(), row.end());
}

}  // namespace

sparse::Csr direct_interpolation(const sparse::Csr& A, const sparse::Csr& S,
                                 const std::vector<CF>& cf, int max_elements,
                                 sparse::Threads threads) {
  const int n = A.rows();
  if (static_cast<int>(cf.size()) != n)
    throw sparse::Error("direct_interpolation: cf size mismatch");
  if (max_elements < 1)
    throw sparse::Error("direct_interpolation: max_elements must be >= 1");

  // canonical coarse numbering: C points in ascending order.
  std::vector<int> coarse_id(n, -1);
  int nc = 0;
  for (int i = 0; i < n; ++i)
    if (cf[i] == CF::coarse) coarse_id[i] = nc++;

  const int nt = std::max(1, std::min(threads.resolved(), n));
  const std::size_t chunk = util::row_chunk(n, nt);
  util::WorkerPool pool(nt);  // shared by the two passes

  // Phase 1 — symbolic: each row's final entry count (C rows inject).
  std::vector<long> rowptr(n + 1, 0);
  std::vector<std::vector<std::pair<int, double>>> scratch(nt);
  pool.run(n, chunk, [&](std::size_t b, std::size_t e, int w) {
    auto& row = scratch[w];
    for (std::size_t i = b; i < e; ++i) {
      if (cf[i] == CF::coarse) {
        rowptr[i + 1] = 1;
        continue;
      }
      interp_row(A, S, cf, coarse_id, max_elements, static_cast<int>(i), row);
      rowptr[i + 1] = static_cast<long>(row.size());
    }
  });
  const long nnz = util::exclusive_scan_counts(rowptr);
  std::vector<int> colind(nnz);
  std::vector<double> vals(nnz);

  // Phase 2 — numeric: recompute each row into its fixed slice.
  pool.run(n, chunk, [&](std::size_t b, std::size_t e, int w) {
    auto& row = scratch[w];
    for (std::size_t i = b; i < e; ++i) {
      long pos = rowptr[i];
      if (cf[i] == CF::coarse) {
        colind[pos] = coarse_id[i];
        vals[pos] = 1.0;
        continue;
      }
      interp_row(A, S, cf, coarse_id, max_elements, static_cast<int>(i), row);
      for (const auto& [c, v] : row) {
        colind[pos] = c;
        vals[pos] = v;
        ++pos;
      }
      assert(pos == rowptr[i + 1]);
    }
  });
  return sparse::Csr::from_raw(n, nc, std::move(rowptr), std::move(colind),
                               std::move(vals));
}

}  // namespace amg
