#pragma once
/// \file coarsen.hpp
/// \brief Coarse/fine splitting algorithms (Ruge-Stueben and PMIS).

#include <vector>

#include "sparse/csr.hpp"

namespace amg {

/// CF marks.
enum class CF : signed char { fine = -1, coarse = 1 };

enum class CoarsenAlgo {
  rs,    ///< classical Ruge-Stueben first pass (deterministic, sequential)
  pmis,  ///< parallel modified independent set (deterministic hash weights)
};

/// Ruge-Stueben first-pass splitting over the strength matrix S.
/// Points with no strong connections in either direction become C points
/// (kept exact on the coarse grid).
std::vector<CF> coarsen_rs(const sparse::Csr& S);

/// PMIS splitting with deterministic pseudo-random weights.
std::vector<CF> coarsen_pmis(const sparse::Csr& S, unsigned seed = 0);

/// Dispatch helper.
std::vector<CF> coarsen(const sparse::Csr& S, CoarsenAlgo algo);

/// Indices of C points, ascending ("canonical" coarse numbering).
std::vector<int> coarse_points(const std::vector<CF>& cf);

}  // namespace amg
