#include "amg/strength.hpp"

#include <algorithm>
#include <cassert>

#include "util/worker_pool.hpp"

namespace amg {

sparse::Csr strength(const sparse::Csr& A, double theta,
                     sparse::Threads threads) {
  if (A.rows() != A.cols()) throw sparse::Error("strength: matrix not square");
  if (theta < 0.0 || theta > 1.0)
    throw sparse::Error("strength: theta must be in [0, 1]");
  const int n = A.rows();
  const int nt = std::max(1, std::min(threads.resolved(), n));
  const std::size_t chunk = util::row_chunk(n, nt);
  util::WorkerPool pool(nt);  // shared by the two passes

  // The strength cut of row i (0 when the row has no negative
  // off-diagonal, i.e. no strong connections).
  const auto row_cut = [&](int i) {
    auto cols = A.row_cols(i);
    auto vals = A.row_vals(i);
    double max_neg = 0.0;
    for (std::size_t k = 0; k < cols.size(); ++k)
      if (cols[k] != i) max_neg = std::max(max_neg, -vals[k]);
    return max_neg > 0.0 ? theta * max_neg : -1.0;
  };

  // Phase 1 — count strong entries per row; phase 2 — fill the fixed
  // slices.  Both apply the same predicate, so they agree exactly.
  std::vector<long> rowptr(n + 1, 0);
  pool.run(n, chunk, [&](std::size_t b, std::size_t e, int) {
    for (std::size_t i = b; i < e; ++i) {
      const double cut = row_cut(static_cast<int>(i));
      if (cut < 0.0) continue;
      auto cols = A.row_cols(static_cast<int>(i));
      auto vals = A.row_vals(static_cast<int>(i));
      long count = 0;
      for (std::size_t k = 0; k < cols.size(); ++k)
        if (cols[k] != static_cast<int>(i) && -vals[k] >= cut) ++count;
      rowptr[i + 1] = count;
    }
  });
  const long nnz = util::exclusive_scan_counts(rowptr);
  std::vector<int> colind(nnz);
  std::vector<double> svals(nnz, 1.0);
  pool.run(n, chunk, [&](std::size_t b, std::size_t e, int) {
    for (std::size_t i = b; i < e; ++i) {
      const double cut = row_cut(static_cast<int>(i));
      if (cut < 0.0) continue;
      auto cols = A.row_cols(static_cast<int>(i));
      auto vals = A.row_vals(static_cast<int>(i));
      long pos = rowptr[i];
      for (std::size_t k = 0; k < cols.size(); ++k)
        if (cols[k] != static_cast<int>(i) && -vals[k] >= cut)
          colind[pos++] = cols[k];
      assert(pos == rowptr[i + 1]);
    }
  });
  return sparse::Csr::from_raw(n, n, std::move(rowptr), std::move(colind),
                               std::move(svals));
}

}  // namespace amg
