#include "amg/strength.hpp"

#include <algorithm>

namespace amg {

sparse::Csr strength(const sparse::Csr& A, double theta) {
  if (A.rows() != A.cols()) throw sparse::Error("strength: matrix not square");
  if (theta < 0.0 || theta > 1.0)
    throw sparse::Error("strength: theta must be in [0, 1]");
  std::vector<sparse::Triplet> tr;
  for (int i = 0; i < A.rows(); ++i) {
    auto cols = A.row_cols(i);
    auto vals = A.row_vals(i);
    double max_neg = 0.0;
    for (std::size_t k = 0; k < cols.size(); ++k)
      if (cols[k] != i) max_neg = std::max(max_neg, -vals[k]);
    if (max_neg <= 0.0) continue;  // no negative off-diagonals
    const double cut = theta * max_neg;
    for (std::size_t k = 0; k < cols.size(); ++k)
      if (cols[k] != i && -vals[k] >= cut)
        tr.push_back(sparse::Triplet{i, cols[k], 1.0});
  }
  return sparse::Csr::from_triplets(A.rows(), A.cols(), std::move(tr));
}

}  // namespace amg
