#include "amg/coarsen.hpp"

#include <algorithm>
#include <cstdint>

namespace amg {

namespace {

constexpr signed char kUnassigned = 0;

/// SplitMix64 hash for deterministic PMIS weights.
double hash_weight(std::uint64_t x, std::uint64_t seed) {
  x += 0x9E3779B97F4A7C15ull + seed * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  x = x ^ (x >> 31);
  return static_cast<double>(x >> 11) / 9007199254740992.0;  // [0, 1)
}

}  // namespace

std::vector<CF> coarsen_rs(const sparse::Csr& S) {
  const int n = S.rows();
  const sparse::Csr St = S.transpose();  // St row i = points i influences
  std::vector<signed char> mark(n, kUnassigned);

  // Measure = number of points this point strongly influences.
  std::vector<int> lambda(n, 0);
  for (int i = 0; i < n; ++i)
    lambda[i] = static_cast<int>(St.row_cols(i).size());

  // Bucket "priority queue" keyed by lambda, supporting increase/decrease.
  const int max_lambda = n + 1;
  std::vector<std::vector<int>> bucket(max_lambda + 2);
  std::vector<int> pos(n), key(n);
  for (int i = 0; i < n; ++i) {
    key[i] = lambda[i];
    pos[i] = static_cast<int>(bucket[key[i]].size());
    bucket[key[i]].push_back(i);
  }
  auto bucket_remove = [&](int i) {
    auto& b = bucket[key[i]];
    b[pos[i]] = b.back();
    pos[b[pos[i]]] = pos[i];
    b.pop_back();
  };
  int cur = max_lambda + 1;
  auto bucket_update = [&](int i, int new_key) {
    bucket_remove(i);
    key[i] = std::min(new_key, max_lambda + 1);
    pos[i] = static_cast<int>(bucket[key[i]].size());
    bucket[key[i]].push_back(i);
    cur = std::max(cur, key[i]);  // scan pointer may need to move back up
  };

  int assigned = 0;
  while (assigned < n) {
    while (cur > 0 && bucket[cur].empty()) --cur;
    if (cur == 0) {
      // Only measure-zero points remain: no strong transpose connections.
      // Make them C points so they stay exact on the coarse grid.
      for (int i = 0; i < n; ++i)
        if (mark[i] == kUnassigned) {
          mark[i] = static_cast<signed char>(CF::coarse);
          ++assigned;
        }
      break;
    }
    const int c = bucket[cur].back();
    bucket[cur].pop_back();
    mark[c] = static_cast<signed char>(CF::coarse);
    ++assigned;

    // Every unassigned point that strongly depends on c becomes F.
    for (int j : St.row_cols(c)) {
      if (mark[j] != kUnassigned) continue;
      mark[j] = static_cast<signed char>(CF::fine);
      ++assigned;
      bucket_remove(j);
      // New F point: boost the measure of the points it depends on, making
      // them attractive C candidates (classical RS heuristic).
      for (int k : S.row_cols(j))
        if (mark[k] == kUnassigned) bucket_update(k, key[k] + 1);
    }
  }

  std::vector<CF> cf(n);
  for (int i = 0; i < n; ++i)
    cf[i] = mark[i] == static_cast<signed char>(CF::coarse) ? CF::coarse
                                                            : CF::fine;
  return cf;
}

std::vector<CF> coarsen_pmis(const sparse::Csr& S, unsigned seed) {
  const int n = S.rows();
  const sparse::Csr St = S.transpose();
  std::vector<signed char> mark(n, kUnassigned);

  // Weight = influence count + deterministic random tie-break in [0,1).
  std::vector<double> w(n);
  std::vector<bool> isolated(n, false);
  for (int i = 0; i < n; ++i) {
    const int infl = static_cast<int>(St.row_cols(i).size());
    w[i] = infl + hash_weight(static_cast<std::uint64_t>(i), seed);
    if (infl == 0 && S.row_cols(i).empty()) isolated[i] = true;
  }
  // Isolated points (no strong connections either way) stay exact as C.
  int assigned = 0;
  for (int i = 0; i < n; ++i)
    if (isolated[i]) {
      mark[i] = static_cast<signed char>(CF::coarse);
      ++assigned;
    }

  auto neighbors_beat = [&](int i) {
    // i joins the independent set iff its weight is a strict maximum over
    // unassigned strong neighbors (in either direction).
    for (int j : S.row_cols(i))
      if (mark[j] == kUnassigned && w[j] >= w[i] && j != i) return true;
    for (int j : St.row_cols(i))
      if (mark[j] == kUnassigned && w[j] >= w[i] && j != i) return true;
    return false;
  };

  while (assigned < n) {
    std::vector<int> new_c;
    for (int i = 0; i < n; ++i)
      if (mark[i] == kUnassigned && !neighbors_beat(i)) new_c.push_back(i);
    if (new_c.empty())
      throw sparse::Error("coarsen_pmis: stalled (weight collision)");
    for (int c : new_c) {
      if (mark[c] != kUnassigned) continue;
      mark[c] = static_cast<signed char>(CF::coarse);
      ++assigned;
    }
    for (int c : new_c) {
      for (int j : St.row_cols(c))
        if (mark[j] == kUnassigned) {
          mark[j] = static_cast<signed char>(CF::fine);
          ++assigned;
        }
      for (int j : S.row_cols(c))
        if (mark[j] == kUnassigned) {
          mark[j] = static_cast<signed char>(CF::fine);
          ++assigned;
        }
    }
  }

  std::vector<CF> cf(n);
  for (int i = 0; i < n; ++i)
    cf[i] = mark[i] == static_cast<signed char>(CF::coarse) ? CF::coarse
                                                            : CF::fine;
  return cf;
}

std::vector<CF> coarsen(const sparse::Csr& S, CoarsenAlgo algo) {
  return algo == CoarsenAlgo::rs ? coarsen_rs(S) : coarsen_pmis(S);
}

std::vector<int> coarse_points(const std::vector<CF>& cf) {
  std::vector<int> c;
  for (std::size_t i = 0; i < cf.size(); ++i)
    if (cf[i] == CF::coarse) c.push_back(static_cast<int>(i));
  return c;
}

}  // namespace amg
