#include "util/arena.hpp"

#include <algorithm>
#include <atomic>
#include <new>

#include "util/thread_annotations.hpp"

namespace util {

Arena::Alloc Arena::allocate_slow(std::size_t n) {
  // The current chunk's bump is exhausted (or no chunk exists).  Recycle
  // the first chunk whose consumers have all released it — starting with
  // the *current* chunk, whose cache lines are the warmest (the steady
  // one-payload-per-chunk pipeline rewinds in place) — and grow only when
  // no chunk is free.  The acquire load pairs with release(): once it
  // reads zero, every consumer's last read of the chunk's bytes
  // happened-before this thread reuses them.
  const std::size_t nchunks = chunks_.size();
  for (std::size_t step = 0; step < nchunks; ++step) {
    const std::size_t i = (cur_ + step) % nchunks;
    Chunk* c = chunks_[i].get();
    if (c->size >= n && c->live.load(std::memory_order_acquire) == 0) {
      cur_ = i;
      used_ = n;
      ++stats_.recycles;
      c->live.fetch_add(1, std::memory_order_relaxed);
      return {c->mem.get(), c};
    }
  }
  const std::size_t size = std::max(chunk_bytes_, n);
  auto chunk = std::make_unique<Chunk>();
  chunk->mem = std::make_unique_for_overwrite<std::byte[]>(size);
  chunk->size = size;
  chunks_.push_back(std::move(chunk));
  cur_ = chunks_.size() - 1;
  used_ = n;
  ++stats_.chunks;
  stats_.capacity_bytes += size;
  Chunk* c = chunks_[cur_].get();
  c->live.fetch_add(1, std::memory_order_relaxed);
  return {c->mem.get(), c};
}

void Arena::reset() {
  for (auto& c : chunks_) c->live.store(0, std::memory_order_relaxed);
  cur_ = 0;
  used_ = 0;
}

bool Arena::clean() const {
  for (const auto& c : chunks_)
    if (c->live.load(std::memory_order_acquire) != 0) return false;
  return true;
}

namespace {

// ---- coroutine frame pool -------------------------------------------------
//
// Size classes: 64-byte steps up to 1 KiB, then powers of two up to 32 KiB.
// Anything larger goes straight to ::operator new (no such frame exists in
// this codebase; the fallback just keeps the pool correct for any input).

constexpr std::size_t kStep = 64;
constexpr std::size_t kLinearMax = 1024;
constexpr std::size_t kPow2Max = 32 * 1024;
constexpr int kLinearBuckets = static_cast<int>(kLinearMax / kStep);  // 16
constexpr int kNumBuckets = kLinearBuckets + 6;  // 2K,4K,8K,16K,32K + spare

/// Bucket index for a request size, or -1 for oversized requests.
int bucket_of(std::size_t n) {
  if (n <= kLinearMax)
    return static_cast<int>((n + kStep - 1) / kStep) - (n == 0 ? 0 : 1);
  if (n > kPow2Max) return -1;
  int b = kLinearBuckets;
  std::size_t cap = 2 * kLinearMax;
  while (n > cap) {
    cap <<= 1;
    ++b;
  }
  return b;
}

/// Allocation size of a bucket (inverse of bucket_of).
std::size_t bucket_bytes(int b) {
  if (b < kLinearBuckets) return static_cast<std::size_t>(b + 1) * kStep;
  return (2 * kLinearMax) << (b - kLinearBuckets);
}

/// Free blocks are chained through their first pointer-sized bytes.
struct FreeNode {
  FreeNode* next;
};

std::atomic<std::uint64_t> g_mallocs{0};
std::atomic<std::uint64_t> g_reuses{0};

/// Process-wide overflow lists.  Leaked intentionally (function-local
/// static pointer): per-thread caches drain here from thread-exit
/// destructors, which may run arbitrarily late.
struct Reservoir {
  Mutex mu;
  FreeNode* head[kNumBuckets] GUARDED_BY(mu) = {};
};

Reservoir& reservoir() {
  // lint:allow(naked-new) intentional leak: thread-exit destructors of
  // ThreadCache drain here arbitrarily late, after any static would die.
  static Reservoir* r = new Reservoir;
  return *r;
}

/// Per-thread cache.  Hot path is a push/pop on a singly-linked list; the
/// reservoir is touched only on a miss, on overflow past kCacheCap (half
/// the list is flushed), and at thread exit (everything is drained, so
/// blocks survive the per-run worker threads of the engine's pool).
struct ThreadCache {
  static constexpr int kCacheCap = 64;
  FreeNode* head[kNumBuckets] = {};
  int count[kNumBuckets] = {};

  ~ThreadCache() {
    Reservoir& r = reservoir();
    MutexLock lk(r.mu);
    for (int b = 0; b < kNumBuckets; ++b) {
      while (head[b]) {
        FreeNode* n = head[b];
        head[b] = n->next;
        n->next = r.head[b];
        r.head[b] = n;
      }
    }
  }

  void* pop(int b) {
    if (head[b]) {
      FreeNode* n = head[b];
      head[b] = n->next;
      --count[b];
      return n;
    }
    // Miss: refill from the reservoir (grab the whole list — blocks drift
    // between threads, the cap below bounds any one cache).
    Reservoir& r = reservoir();
    {
      MutexLock lk(r.mu);
      head[b] = r.head[b];
      r.head[b] = nullptr;
    }
    int got = 0;
    for (FreeNode* n = head[b]; n; n = n->next) ++got;
    count[b] = got;
    if (head[b]) {
      FreeNode* n = head[b];
      head[b] = n->next;
      --count[b];
      return n;
    }
    return nullptr;
  }

  void push(int b, void* p) {
    FreeNode* n = static_cast<FreeNode*>(p);
    n->next = head[b];
    head[b] = n;
    if (++count[b] > kCacheCap) {
      // Flush half to the reservoir so blocks freed here are visible to
      // allocating threads without waiting for thread exit.
      Reservoir& r = reservoir();
      MutexLock lk(r.mu);
      for (int i = 0; i < kCacheCap / 2; ++i) {
        FreeNode* f = head[b];
        head[b] = f->next;
        f->next = r.head[b];
        r.head[b] = f;
        --count[b];
      }
    }
  }
};

ThreadCache& cache() {
  static thread_local ThreadCache c;
  return c;
}

}  // namespace

void* frame_alloc(std::size_t n) {
  const int b = bucket_of(n);
  if (b < 0) {
    g_mallocs.fetch_add(1, std::memory_order_relaxed);
    return ::operator new(n);
  }
  if (void* p = cache().pop(b)) {
    g_reuses.fetch_add(1, std::memory_order_relaxed);
    return p;
  }
  g_mallocs.fetch_add(1, std::memory_order_relaxed);
  return ::operator new(bucket_bytes(b));
}

void frame_free(void* p, std::size_t n) noexcept {
  const int b = bucket_of(n);
  if (b < 0) {
    ::operator delete(p);
    return;
  }
  cache().push(b, p);
}

std::uint64_t frame_pool_mallocs() {
  return g_mallocs.load(std::memory_order_relaxed);
}

std::uint64_t frame_pool_reuses() {
  return g_reuses.load(std::memory_order_relaxed);
}

}  // namespace util
