#pragma once
/// \file hash.hpp
/// \brief Canonical byte-wise FNV-1a, shared by the content-addressed
/// caches and fingerprints.
///
/// One definition of the constants (offset basis 0xcbf29ce484222325,
/// prime 0x100000001b3) so they cannot drift between users.  Callers that
/// persist hash values (cache filenames, plan fingerprints) must keep
/// using the same function forever or version their formats.

#include <cstddef>
#include <cstdint>

namespace util {

inline constexpr std::uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ull;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

/// FNV-1a over a byte buffer, continuing from `h` (chainable).
inline std::uint64_t fnv1a(const unsigned char* data, std::size_t n,
                           std::uint64_t h = kFnvOffsetBasis) {
  for (std::size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace util
