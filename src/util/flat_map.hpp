#pragma once
/// \file flat_map.hpp
/// \brief Sorted-vector map for small, hot, insert-rarely lookup tables.
///
/// `FlatMap` stores (key, value) pairs contiguously, sorted by key, and
/// looks up by binary search: no per-node allocation, no hashing, and the
/// whole table usually fits in a cache line or two.  Insertion is O(n)
/// (memmove), which is the right trade for the engine's tables — channel
/// ids and per-communicator counters are interned once and then looked up
/// millions of times (docs/ARCHITECTURE.md, "Memory management in the
/// engine").  Not thread-safe; the engine confines each instance to one
/// rank's state.

#include <algorithm>
#include <utility>
#include <vector>

namespace util {

template <class K, class V>
class FlatMap {
 public:
  /// Value for `key`, default-constructed and inserted on first use.
  V& operator[](const K& key) {
    auto it = lower_bound(key);
    if (it != v_.end() && it->first == key) return it->second;
    return v_.insert(it, {key, V{}})->second;
  }

  /// Pointer to the value for `key`, or nullptr when absent.  Never
  /// inserts; safe on the read-only hot path.
  V* find(const K& key) {
    auto it = lower_bound(key);
    return (it != v_.end() && it->first == key) ? &it->second : nullptr;
  }
  const V* find(const K& key) const {
    return const_cast<FlatMap*>(this)->find(key);
  }

  std::size_t size() const { return v_.size(); }
  bool empty() const { return v_.empty(); }
  void clear() { v_.clear(); }
  auto begin() const { return v_.begin(); }
  auto end() const { return v_.end(); }

 private:
  typename std::vector<std::pair<K, V>>::iterator lower_bound(const K& key) {
    return std::lower_bound(
        v_.begin(), v_.end(), key,
        [](const std::pair<K, V>& a, const K& b) { return a.first < b; });
  }

  std::vector<std::pair<K, V>> v_;
};

}  // namespace util
