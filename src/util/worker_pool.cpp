#include "util/worker_pool.hpp"

#include <algorithm>
#include <cstdlib>

namespace util {

int resolve_threads(int requested,
                    std::initializer_list<const char*> env_vars) {
  int t = requested;
  if (t <= 0) {
    for (const char* var : env_vars) {
      // Read-only env lookup; nothing in this process calls setenv().
      // NOLINTNEXTLINE(concurrency-mt-unsafe)
      if (const char* env = std::getenv(var)) {
        t = std::atoi(env);
        if (t > 0) break;
      }
    }
  }
  if (t <= 0) t = static_cast<int>(std::thread::hardware_concurrency());
  return std::clamp(t, 1, 512);
}

WorkerPool::WorkerPool(int nthreads) : nthreads_(std::max(1, nthreads)) {}

WorkerPool::~WorkerPool() {
  {
    MutexLock lk(mu_);
    stop_ = true;
    ++gen_;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void WorkerPool::run(std::size_t n, std::size_t chunk, const ChunkFn& fn) {
  if (n == 0) return;
  chunk = std::max<std::size_t>(1, chunk);
  const std::size_t nchunks = (n + chunk - 1) / chunk;
  errs_.assign(nchunks, nullptr);
  fn_ = &fn;
  n_ = n;
  chunk_ = chunk;
  next_.store(0, std::memory_order_relaxed);
  // A single block (or a single worker) isn't worth a pool wakeup; running
  // inline is identical because chunk-owned outputs never depend on which
  // worker runs a chunk.
  if (nthreads_ == 1 || nchunks == 1) {
    run_chunks(0);
  } else {
    if (threads_.empty()) {
      // First multi-chunk run: spawn the workers now (lazily, so pools
      // that only ever see single-chunk inputs cost no OS threads).
      threads_.reserve(nthreads_ - 1);
      for (int i = 0; i < nthreads_ - 1; ++i)
        threads_.emplace_back([this, i] { worker_loop(i + 1); });
    }
    {
      MutexLock lk(mu_);
      pending_ = nthreads_ - 1;
      ++gen_;
    }
    cv_.notify_all();
    run_chunks(0);
    MutexLock lk(mu_);
    while (pending_ != 0) done_cv_.wait(mu_);
  }
  fn_ = nullptr;
  for (auto& e : errs_)
    if (e) std::rethrow_exception(e);
}

void WorkerPool::run_chunks(int worker) {
  for (;;) {
    const std::size_t idx = next_.fetch_add(1, std::memory_order_relaxed);
    const std::size_t begin = idx * chunk_;
    if (begin >= n_) break;
    const std::size_t end = std::min(n_, begin + chunk_);
    try {
      (*fn_)(begin, end, worker);
    } catch (...) {
      errs_[idx] = std::current_exception();
    }
  }
}

void WorkerPool::worker_loop(int worker) {
  std::uint64_t seen = 0;
  for (;;) {
    {
      MutexLock lk(mu_);
      while (!stop_ && gen_ == seen) cv_.wait(mu_);
      if (stop_) return;
      seen = gen_;
    }
    run_chunks(worker);
    {
      MutexLock lk(mu_);
      if (--pending_ == 0) done_cv_.notify_one();
    }
  }
}

std::size_t row_chunk(std::size_t rows, int threads) {
  if (threads <= 1 || rows == 0) return std::max<std::size_t>(rows, 1);
  const std::size_t target = rows / (static_cast<std::size_t>(threads) * 8);
  return std::clamp<std::size_t>(target, 64, 8192);
}

long exclusive_scan_counts(std::vector<long>& counts) {
  for (std::size_t i = 1; i < counts.size(); ++i) counts[i] += counts[i - 1];
  return counts.empty() ? 0 : counts.back();
}

}  // namespace util
