#pragma once
/// \file thread_annotations.hpp
/// \brief Clang thread-safety annotation macros plus the annotated
/// `Mutex`/`MutexLock`/`CondVar` primitives the shared-state layers use.
///
/// Clang's `-Wthread-safety` analysis turns lock-discipline violations —
/// touching a `GUARDED_BY` member without its mutex, releasing a lock the
/// caller never acquired — into *compile errors* (the CI clang job builds
/// with `-Wthread-safety -Werror=thread-safety`).  gcc does not implement
/// the attributes, so every macro expands to nothing there: including this
/// header anywhere is free, and the gcc tier1/TSan builds are unaffected.
///
/// `std::mutex` carries no capability annotations in libstdc++, so the
/// analysis cannot see through `std::lock_guard<std::mutex>`.  The shared
/// caches therefore use the thin wrappers below: `util::Mutex` is an
/// annotated capability over `std::mutex`, `MutexLock` is the annotated
/// scoped lock, and `CondVar` waits directly on a held `Mutex`
/// (`std::condition_variable_any`; wakeup paths here are cold — pool
/// generation changes, cache inserts — never the engine hot path).
///
/// Annotation discipline (see docs/ARCHITECTURE.md, "Thread-safety
/// contract"): every member a mutex protects is declared `GUARDED_BY`
/// that mutex; private helpers that expect the lock held are `REQUIRES`.
/// State published through other mechanisms (the WorkerPool's
/// generation-handshake fields, the Arena's refcounts) is documented at
/// the member instead — annotating it `GUARDED_BY` would misstate the
/// protocol.  ThreadSanitizer (`-DSANITIZE=thread`) checks those dynamic
/// protocols at runtime; the annotations prove the lock-based ones
/// statically.

#include <condition_variable>
#include <mutex>

#if defined(__clang__) && !defined(SWIG)
#define COLLOM_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define COLLOM_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

// clang-format off
#define CAPABILITY(x) COLLOM_THREAD_ANNOTATION(capability(x))
#define SCOPED_CAPABILITY COLLOM_THREAD_ANNOTATION(scoped_lockable)
#define GUARDED_BY(x) COLLOM_THREAD_ANNOTATION(guarded_by(x))
#define PT_GUARDED_BY(x) COLLOM_THREAD_ANNOTATION(pt_guarded_by(x))
#define ACQUIRE(...) COLLOM_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define RELEASE(...) COLLOM_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) \
  COLLOM_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define REQUIRES(...) COLLOM_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define EXCLUDES(...) COLLOM_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define ASSERT_CAPABILITY(x) COLLOM_THREAD_ANNOTATION(assert_capability(x))
#define RETURN_CAPABILITY(x) COLLOM_THREAD_ANNOTATION(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS \
  COLLOM_THREAD_ANNOTATION(no_thread_safety_analysis)
// clang-format on

namespace util {

/// `std::mutex` as an annotated capability.  BasicLockable, so it also
/// works with `std::lock_guard<util::Mutex>` where a standard scoped type
/// is required — but prefer `MutexLock`, which the analysis understands.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// Annotated scoped lock over `Mutex` (the only way the clang analysis
/// tracks RAII acquisition).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable waiting directly on a held `Mutex`.  Callers loop on
/// their predicate around `wait` (spurious wakeups are allowed), which
/// keeps the predicate reads inside the caller's own locked scope — no
/// lambda for the analysis to lose track of.
class CondVar {
 public:
  /// Atomically release `mu`, sleep, and re-acquire `mu` before
  /// returning.  `mu` must be held on entry (enforced by clang).
  void wait(Mutex& mu) REQUIRES(mu) { cv_.wait(mu.mu_); }
  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace util
