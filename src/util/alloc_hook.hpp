#pragma once
/// \file alloc_hook.hpp
/// \brief Global `operator new` replacement that counts heap allocations.
///
/// Include this header in **exactly one translation unit of a binary**
/// (it defines the replaceable global allocation functions — a second
/// inclusion is a duplicate-symbol link error by design).  Used by the
/// allocation-regression test and the engine micro benchmark to prove the
/// steady-state hot path performs zero heap allocations; see
/// docs/ARCHITECTURE.md, "Memory management in the engine".
///
/// The hook is malloc-backed and works under ASan (which intercepts the
/// underlying malloc/free); only the *count* is observed, never the
/// pointers.
///
/// Thread-safety: the hook's only state is one relaxed atomic counter —
/// lock-free by construction, so there is nothing for a clang
/// `GUARDED_BY` annotation to guard (see util/thread_annotations.hpp for
/// the convention).  Concurrent allocating threads are exercised under
/// ThreadSanitizer by the cache-concurrency battery; relaxed ordering is
/// correct because tests only compare counts read from quiescent points
/// (after joins), never mid-flight.

#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <new>

namespace util {

/// Number of global operator new calls since process start.
inline std::atomic<std::uint64_t> g_alloc_hook_count{0};

inline std::uint64_t alloc_hook_count() {
  return g_alloc_hook_count.load(std::memory_order_relaxed);
}

namespace hook_detail {
inline void* counted_alloc(std::size_t n) {
  util::g_alloc_hook_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc{};
}
}  // namespace hook_detail

}  // namespace util

void* operator new(std::size_t n) { return util::hook_detail::counted_alloc(n); }
void* operator new[](std::size_t n) {
  return util::hook_detail::counted_alloc(n);
}
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  util::g_alloc_hook_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n ? n : 1);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  util::g_alloc_hook_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n ? n : 1);
}
void* operator new(std::size_t n, std::align_val_t al) {
  util::g_alloc_hook_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(al),
                                   (n + static_cast<std::size_t>(al) - 1) &
                                       ~(static_cast<std::size_t>(al) - 1)))
    return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t n, std::align_val_t al) {
  return ::operator new(n, al);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
