#pragma once
/// \file arena.hpp
/// \brief Steady-state allocation-free memory: refcounted bump arenas and a
/// pooled coroutine-frame allocator.
///
/// Two building blocks keep the engine's innermost loop off the heap
/// (docs/ARCHITECTURE.md, "Memory management in the engine"):
///
///  * `Arena` — a chunked bump allocator with per-chunk reference counts.
///    Allocation is a pointer bump plus a refcount increment; consumers
///    `release()` their block when done.  A chunk whose outstanding count
///    drops to zero is *recycled* — reused for new allocations instead of
///    growing the arena — so a workload with a stable working set stops
///    touching the heap after warm-up, even when it keeps allocating on
///    one side while consuming on the other (the engine's steady
///    send/receive pipeline).  Chunks never move once allocated: pointers
///    handed out stay valid until their chunk is released back to zero.
///    Payloads larger than the chunk size get a dedicated exact-size chunk
///    that is recycled like any other.
///
///  * `frame_alloc`/`frame_free` — a size-bucketed free-list allocator for
///    coroutine frames (wired into `simmpi::Task`'s promise).  Freed
///    frames go to a per-thread cache (no locks on the hot path); caches
///    overflow into — and refill from — a process-wide reservoir, so
///    blocks survive thread exit and repeated `Engine::run()` / solve
///    iterations stop hitting malloc once the first run warmed the pool.
///
/// Threading contract: one thread bumps an `Arena` at a time (the engine
/// gives each simulated rank its own), while `release()` may be called
/// from any thread — the refcount release/acquire pair orders the
/// consumer's last read before the producer's reuse.  The frame pool is
/// safe from any thread by construction (thread-local caches + internally
/// locked reservoir; the reservoir's lists are `GUARDED_BY` its mutex —
/// see util/thread_annotations.hpp).  Neither protocol is expressible as
/// a clang lock annotation on this header's members (`Chunk::live` is a
/// refcount capability, not a mutex), so the dynamic side is pinned by
/// the TSan battery instead: `tests/test_cache_concurrency.cpp` churns
/// cross-thread release and frame-reservoir traffic under
/// `-DSANITIZE=thread`.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace util {

/// Chunked bump allocator with per-chunk refcounted recycling.
class Arena {
 public:
  /// Default size of one chunk.  Oversized requests get their own chunk.
  static constexpr std::size_t kDefaultChunkBytes = 64 * 1024;

  /// One backing block.  Opaque to callers: obtained via allocate(),
  /// handed back via release().
  struct Chunk {
    std::unique_ptr<std::byte[]> mem;
    std::size_t size = 0;
    std::atomic<std::int64_t> live{0};  ///< outstanding allocations
  };

  /// An allocation: the bytes plus the chunk to release() them to.
  struct Alloc {
    std::byte* data = nullptr;
    Chunk* chunk = nullptr;
  };

  explicit Arena(std::size_t chunk_bytes = kDefaultChunkBytes)
      : chunk_bytes_(chunk_bytes ? chunk_bytes : kDefaultChunkBytes) {}

  Arena(Arena&&) noexcept = default;
  Arena& operator=(Arena&&) noexcept = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Bump-allocate `n` bytes (positive, 8-byte aligned).  Recycles a fully
  /// released chunk when the current one is exhausted; grows by one chunk
  /// only when none is free.  Existing chunks never move.
  Alloc allocate(std::size_t n) {
    ++stats_.allocs;
    used_ = (used_ + 7) & ~std::size_t{7};
    if (cur_ < chunks_.size() && used_ + n <= chunks_[cur_]->size) {
      Chunk* c = chunks_[cur_].get();
      std::byte* p = c->mem.get() + used_;
      used_ += n;
      c->live.fetch_add(1, std::memory_order_relaxed);
      return {p, c};
    }
    return allocate_slow(n);
  }

  /// Consumer side: the block's bytes are no longer needed.  Any thread.
  static void release(Chunk* c) noexcept {
    c->live.fetch_sub(1, std::memory_order_release);
  }

  /// Add a reference to a live block (fault injection delivers duplicate
  /// messages sharing one payload; each copy release()s independently).
  /// Only valid while the caller already holds a reference, so relaxed
  /// ordering suffices — the count cannot hit zero concurrently.
  static void retain(Chunk* c) noexcept {
    c->live.fetch_add(1, std::memory_order_relaxed);
  }

  /// Hard reset: zero every refcount and rewind (error-path cleanup; the
  /// owner must know no consumer still holds a block).  Chunks are kept.
  void reset();

  /// True when no allocation is outstanding in any chunk.
  bool clean() const;

  struct Stats {
    std::uint64_t chunks = 0;          ///< chunks ever allocated (never freed)
    std::uint64_t capacity_bytes = 0;  ///< sum of chunk sizes
    std::uint64_t recycles = 0;        ///< chunk reuses (zero-live rewinds)
    std::uint64_t allocs = 0;          ///< allocate() calls, lifetime
  };
  const Stats& stats() const { return stats_; }

 private:
  Alloc allocate_slow(std::size_t n);

  std::size_t chunk_bytes_;
  std::vector<std::unique_ptr<Chunk>> chunks_;
  std::size_t cur_ = 0;   ///< index of the chunk being bumped
  std::size_t used_ = 0;  ///< bytes used in chunks_[cur_]
  Stats stats_;
};

/// Allocate a coroutine-frame block of `n` bytes from the pool.
void* frame_alloc(std::size_t n);
/// Return a block obtained from frame_alloc (same `n`).
void frame_free(void* p, std::size_t n) noexcept;

/// Process-wide count of frame blocks that had to come from ::operator new
/// (pool misses).  Steady-state engine iterations must not advance this.
std::uint64_t frame_pool_mallocs();
/// Process-wide count of frame allocations served from a free list.
std::uint64_t frame_pool_reuses();

}  // namespace util
