#pragma once
/// \file worker_pool.hpp
/// \brief Fixed pool of OS worker threads running chunked index ranges.
///
/// The pool underlies every multi-threaded phase of the codebase: the
/// simulation engine resumes one phase's rank coroutines on it, and the
/// sparse layer's two-phase kernels run their per-row count and fill passes
/// on it.  Work is handed out as contiguous chunks of an index range
/// [0, n): workers claim chunks through a single atomic cursor, so *which*
/// worker runs a chunk is nondeterministic — callers must therefore write
/// results only to chunk-owned (disjoint, preallocated) destinations, or to
/// per-worker scratch indexed by the `worker` argument.  Under that rule
/// the output bytes are independent of the worker count by construction,
/// which is how both the engine's schedule and the sparse kernels keep
/// their determinism contracts (see docs/ARCHITECTURE.md).
///
/// Coroutine caveat (engine use): handles are resumed on whatever worker
/// grabs their chunk, so a coroutine may migrate threads across suspension
/// points.  Nothing run on the pool may rely on thread-locals across a
/// co_await — and the g++ 12 braced-temporary lifetime bug applies to
/// coroutine code run by this pool exactly as it does single-threaded (see
/// docs/COROUTINE_PITFALLS.md).

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <initializer_list>
#include <thread>
#include <vector>

#include "util/thread_annotations.hpp"

namespace util {

/// Resolve a thread-count knob.  A positive `requested` wins; otherwise the
/// first environment variable in `env_vars` holding a positive integer;
/// otherwise `std::thread::hardware_concurrency()`.  Always in [1, 512].
int resolve_threads(int requested,
                    std::initializer_list<const char*> env_vars);

/// Fixed pool of `nthreads` workers (the caller of run() included).
///
/// run() only executes *between* invocations: it hands out the chunks,
/// every worker claims and runs disjoint chunks until none remain, and
/// run() returns only after all of them finished.  The mutex handoffs
/// around an invocation give the caller (and the next invocation's
/// workers) a view of every byte written during it.
///
/// OS threads are spawned lazily, by the first run() with more than one
/// chunk: a pool constructed for a small input (or destroyed without a
/// multi-chunk run) never pays thread creation, so per-kernel transient
/// pools are cheap on the serial path.
class WorkerPool {
 public:
  /// A unit of work: the half-open index range [begin, end), plus the id
  /// (in [0, threads())) of the worker running it — for per-worker scratch
  /// only; chunk-to-worker assignment is not deterministic.
  using ChunkFn =
      std::function<void(std::size_t begin, std::size_t end, int worker)>;

  explicit WorkerPool(int nthreads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  int threads() const { return nthreads_; }

  /// Run `fn` over [0, n) split into `chunk`-sized blocks; blocks until
  /// every block ran.  The first exception escaping `fn` (in block order)
  /// is rethrown after all blocks completed.  Single-block (or
  /// single-worker) invocations run inline without waking the pool.
  void run(std::size_t n, std::size_t chunk, const ChunkFn& fn);

 private:
  void run_chunks(int worker);
  void worker_loop(int worker);

  const int nthreads_;
  std::vector<std::thread> threads_;
  // Invocation state (fn_, n_, chunk_, errs_, next_) is *not* GUARDED_BY
  // mu_: run() writes it while the pool is quiescent, and the generation
  // handshake below publishes it — workers read it only after observing
  // the gen_ bump under mu_ (acquire), and run() reads errs_ back only
  // after pending_ drained to zero under mu_.  Annotating it GUARDED_BY
  // would claim a stronger (and false) protocol; TSan validates this one.
  const ChunkFn* fn_ = nullptr;
  std::size_t n_ = 0;
  std::size_t chunk_ = 1;
  std::vector<std::exception_ptr> errs_;
  std::atomic<std::size_t> next_{0};
  Mutex mu_;
  CondVar cv_, done_cv_;
  std::uint64_t gen_ GUARDED_BY(mu_) = 0;
  int pending_ GUARDED_BY(mu_) = 0;
  bool stop_ GUARDED_BY(mu_) = false;
};

/// Chunk size of a row-parallel pass over `rows` items on `threads`
/// workers: ~8 chunks per worker to balance irregular rows, clamped to
/// [64, 8192] to amortize the chunk cursor.  Chunk boundaries must never
/// influence output bytes (rows write only their own slices), so this is
/// a pure tuning knob shared by every two-phase kernel.
std::size_t row_chunk(std::size_t rows, int threads);

/// In-place exclusive scan of per-slot counts stored at counts[i + 1]
/// (counts[0] stays 0) into final offsets; returns the total.  Step 2 of
/// every two-phase kernel: count pass → offsets → preallocate → fill.
long exclusive_scan_counts(std::vector<long>& counts);

}  // namespace util
