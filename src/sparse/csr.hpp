#pragma once
/// \file csr.hpp
/// \brief Compressed-sparse-row matrices and two-phase parallel kernels.
///
/// The CSR type underlies both the global problem matrices and the per-rank
/// diag/offd blocks of the distributed ParCSR format.  Kernels: SpMV,
/// transpose, sparse matrix-matrix multiply (SpGEMM) and the Galerkin triple
/// product needed by algebraic multigrid.
///
/// The structural kernels (multiply, transpose, pruned, select_rows,
/// permuted) are *two-phase*: a per-row symbolic count pass fixes every row
/// offset by exclusive scan, then a numeric fill pass writes each row into
/// its preallocated slice.  Both passes are row-parallel over a
/// util::WorkerPool (`Threads` knob); because every output byte lands at an
/// offset that is a function of the matrix alone, results are bit-identical
/// for every thread width — the same determinism contract the simulation
/// engine keeps (docs/ARCHITECTURE.md, "Parallel construction").

#include <span>
#include <vector>

#include "simmpi/types.hpp"  // for SimError reuse

namespace sparse {

using Error = simmpi::SimError;

/// Thread-count knob of the two-phase kernels.  `count >= 1` is an explicit
/// width; `count <= 0` resolves to the `COLLOM_BUILD_THREADS` environment
/// variable, else `COLLOM_SIM_THREADS`, else the hardware concurrency.
/// Every width produces bit-identical kernel output (see the file brief);
/// the default of 1 keeps incidental kernel calls serial.
struct Threads {
  int count = 1;
  /// Auto-detected width (environment, then hardware).
  static Threads auto_detect() { return Threads{0}; }
  /// The resolved worker count, always >= 1.
  int resolved() const;
};

/// Coordinate-format entry used for matrix assembly.
struct Triplet {
  int row;
  int col;
  double val;
};

/// A compressed-sparse-row matrix with int indices and double values.
/// Rows are stored with strictly ascending column indices.
class Csr {
 public:
  Csr() = default;
  /// Construct an empty (all-zero) rows x cols matrix.
  Csr(int rows, int cols);
  /// Assemble from triplets; duplicate (row, col) entries are summed.
  static Csr from_triplets(int rows, int cols, std::vector<Triplet> entries);
  /// Identity matrix.
  static Csr identity(int n);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  long nnz() const { return static_cast<long>(colind_.size()); }

  std::span<const long> rowptr() const { return rowptr_; }
  std::span<const int> colind() const { return colind_; }
  std::span<const double> values() const { return vals_; }
  std::span<double> values() { return vals_; }

  /// Iterate one row: colind/vals slices.
  std::span<const int> row_cols(int r) const {
    return std::span<const int>(colind_).subspan(rowptr_[r],
                                                 rowptr_[r + 1] - rowptr_[r]);
  }
  std::span<const double> row_vals(int r) const {
    return std::span<const double>(vals_).subspan(rowptr_[r],
                                                  rowptr_[r + 1] - rowptr_[r]);
  }

  /// y = A * x
  void spmv(std::span<const double> x, std::span<double> y) const;
  /// y += A * x
  void spmv_add(std::span<const double> x, std::span<double> y) const;
  /// Entry lookup (binary search); 0 if not stored.
  double at(int r, int c) const;
  /// Diagonal entries (0 where the diagonal is not stored).
  std::vector<double> diagonal() const;
  /// A^T
  Csr transpose(Threads threads = {}) const;
  /// this * B (row-parallel Gustavson SpGEMM, two-phase)
  Csr multiply(const Csr& B, Threads threads = {}) const;
  /// Select a subset of rows (new row i = rows[i]); columns unchanged.
  Csr select_rows(std::span<const int> rows, Threads threads = {}) const;
  /// Symmetric permutation helper: B[perm[i]][perm_col[j]] = A[i][j].
  /// `row_perm` maps old row -> new row; `col_perm` maps old col -> new col.
  /// Both must be bijections on their index range; throws sparse::Error
  /// otherwise (a duplicate target would silently merge rows/entries).
  Csr permuted(std::span<const int> row_perm, std::span<const int> col_perm,
               Threads threads = {}) const;
  /// Drop entries with |value| <= tol (never the diagonal).
  Csr pruned(double tol, Threads threads = {}) const;

  /// Build directly from raw arrays (validated).
  static Csr from_raw(int rows, int cols, std::vector<long> rowptr,
                      std::vector<int> colind, std::vector<double> vals);

  bool operator==(const Csr& o) const = default;

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<long> rowptr_{0};
  std::vector<int> colind_{};
  std::vector<double> vals_{};
};

/// Galerkin coarse operator: R * A * P (with R typically = P^T).
Csr galerkin_product(const Csr& R, const Csr& A, const Csr& P,
                     Threads threads = {});

/// Dense reference SpMV used by property tests.
std::vector<double> dense_spmv(const Csr& A, std::span<const double> x);

}  // namespace sparse
