#pragma once
/// \file stencil.hpp
/// \brief Structured-grid problem generators.
///
/// The paper's evaluation problem is a 7-point rotated anisotropic diffusion
/// system (rotation 45 degrees, anisotropy 0.001), i.e. the operator
///   -div( Q(theta) diag(1, eps) Q(theta)^T  grad u )
/// discretized with the classical 7-point stencil on a regular 2D grid with
/// Dirichlet boundaries (the `rotate-7pt` problem of Hypre's ij driver).
/// Additional generators (5-point / 9-point Laplacian, 3D 27-point) feed the
/// test suite and the extra examples.

#include "sparse/csr.hpp"

namespace sparse {

/// Grid row index: x fastest, i.e. idx = y * nx + x (row-major by y).
inline int grid_index(int nx, int x, int y) { return y * nx + x; }

/// 2D 5-point Laplacian on an nx x ny grid, Dirichlet boundary.
Csr laplacian_5pt(int nx, int ny);

/// 2D 9-point Laplacian on an nx x ny grid, Dirichlet boundary.
Csr laplacian_9pt(int nx, int ny);

/// 3D 27-point Laplacian on an nx x ny x nz grid, Dirichlet boundary.
Csr laplacian_27pt(int nx, int ny, int nz);

/// 7-point rotated anisotropic diffusion (theta in radians, eps anisotropy).
///
/// Interior stencil (scaled by 1/h^2, h cancels for our purposes):
///   C:      2 cx + 2 cy - cxy
///   E, W:  -cx + cxy/2
///   N, S:  -cy + cxy/2
///   NE, SW:-cxy/2
/// with cx = cos^2 + eps sin^2, cy = sin^2 + eps cos^2,
/// cxy = 2 (1 - eps) cos sin.  Interior row sums are zero; Dirichlet
/// boundaries drop outside neighbors.
Csr rotated_aniso_7pt(int nx, int ny, double theta, double eps);

/// The paper's exact configuration: theta = 45 degrees, eps = 0.001.
Csr paper_problem(int nx, int ny);

/// Factor `n` into nx x ny with nx the largest power of two <= sqrt(n)
/// (n must factor accordingly); used to size weak-scaling grids.
void factor_grid(long n, int& nx, int& ny);

}  // namespace sparse
