#include "sparse/partition.hpp"

#include <algorithm>

namespace sparse {

std::vector<long> block_partition(long n, int p) {
  if (n < 0 || p < 1) throw Error("block_partition: invalid arguments");
  std::vector<long> part(p + 1, 0);
  const long base = n / p;
  const long extra = n % p;
  for (int r = 0; r < p; ++r)
    part[r + 1] = part[r] + base + (r < extra ? 1 : 0);
  return part;
}

std::vector<long> partition_from_counts(std::span<const int> counts) {
  std::vector<long> part(counts.size() + 1, 0);
  for (std::size_t r = 0; r < counts.size(); ++r) {
    if (counts[r] < 0) throw Error("partition_from_counts: negative count");
    part[r + 1] = part[r] + counts[r];
  }
  return part;
}

int owner_of(std::span<const long> part, long gid) {
  if (gid < 0 || gid >= part.back())
    throw Error("owner_of: global index out of range");
  auto it = std::upper_bound(part.begin(), part.end(), gid);
  return static_cast<int>(it - part.begin()) - 1;
}

}  // namespace sparse
