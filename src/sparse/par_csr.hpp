#pragma once
/// \file par_csr.hpp
/// \brief Hypre-style distributed CSR matrices and halo exchange patterns.
///
/// Each rank owns a contiguous block of rows.  The local block is split into
/// `diag` (columns owned by this rank, local numbering) and `offd` (columns
/// owned by other ranks, compacted and mapped through `col_map_offd`, sorted
/// ascending by global index).  This is exactly Hypre's ParCSR layout; the
/// `HaloPattern` derived from the offd footprint is the irregular
/// communication pattern the paper optimizes.
///
/// Because the simulator runs all ranks in one process, the "distributed"
/// matrix is a host-side container of per-rank slices; each simulated rank's
/// coroutine only touches its own slice.

#include <span>
#include <vector>

#include "sparse/csr.hpp"
#include "sparse/partition.hpp"

namespace sparse {

/// One rank's slice of a distributed matrix.
struct ParCsrRank {
  long first_row = 0;  ///< global index of first owned row
  long first_col = 0;  ///< global index of first owned column
  Csr diag;            ///< local rows x local cols
  Csr offd;            ///< local rows x |col_map_offd|
  std::vector<long> col_map_offd;  ///< compacted offd column -> global column

  int local_rows() const { return diag.rows(); }
  int local_cols() const { return diag.cols(); }

  bool operator==(const ParCsrRank&) const = default;
};

/// A distributed matrix: row/col partitions plus every rank's slice.
struct ParCsr {
  long global_rows = 0;
  long global_cols = 0;
  std::vector<long> row_part;  ///< size P+1
  std::vector<long> col_part;  ///< size P+1
  std::vector<ParCsrRank> ranks;

  int num_ranks() const { return static_cast<int>(ranks.size()); }

  /// Split a global matrix across ranks by the given partitions.
  static ParCsr distribute(const Csr& A, std::vector<long> row_part,
                           std::vector<long> col_part);

  /// Reassemble the global matrix (testing aid).
  Csr gather() const;

  bool operator==(const ParCsr&) const = default;
};

/// The communication pattern of one rank's halo exchange (Hypre "comm pkg").
///
/// Receive side: values arrive ordered exactly as `col_map_offd` (owners of
/// sorted global ids are encountered in ascending rank order), so the
/// concatenated receive buffer doubles as the offd vector segment.
struct RankHalo {
  std::vector<int> recv_ranks;   ///< ranks we receive from (ascending)
  std::vector<int> recv_counts;  ///< values received from each
  std::vector<int> send_ranks;   ///< ranks we send to (ascending)
  std::vector<int> send_counts;  ///< values sent to each
  /// Concatenated local x-indices to gather, per send rank (displs from
  /// send_counts).
  std::vector<int> send_idx;
  /// Global ids of the gathered values (aligned with send_idx) — the
  /// paper's proposed API extension enabling deduplication.
  std::vector<long> send_gids;
  /// Global ids of the received values (= col_map_offd), aligned with the
  /// receive buffer.
  std::vector<long> recv_gids;

  long total_send() const { return static_cast<long>(send_idx.size()); }
  long total_recv() const { return static_cast<long>(recv_gids.size()); }

  bool operator==(const RankHalo&) const = default;
};

/// Halo patterns of all ranks of a ParCsr.
struct Halo {
  std::vector<RankHalo> ranks;
  static Halo build(const ParCsr& A);

  bool operator==(const Halo&) const = default;
};

/// Local compute part of a distributed SpMV:
/// y = diag * x_local + offd * x_ext.
void spmv_local(const ParCsrRank& a, std::span<const double> x_local,
                std::span<const double> x_ext, std::span<double> y);

/// Split a global vector by a partition (one chunk per rank).
std::vector<std::vector<double>> split_vector(std::span<const double> x,
                                              std::span<const long> part);
/// Concatenate per-rank chunks back into a global vector.
std::vector<double> join_vector(
    const std::vector<std::vector<double>>& chunks);

}  // namespace sparse
