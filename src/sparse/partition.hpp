#pragma once
/// \file partition.hpp
/// \brief Contiguous block row partitions (Hypre-style).

#include <span>
#include <vector>

#include "sparse/csr.hpp"

namespace sparse {

/// Block partition of n rows over p ranks: returns offsets of size p+1 with
/// rank r owning rows [part[r], part[r+1]).  Remainder rows go to the
/// lowest ranks, as in Hypre.
std::vector<long> block_partition(long n, int p);

/// Partition from explicit per-rank counts.
std::vector<long> partition_from_counts(std::span<const int> counts);

/// Owner rank of a global row (binary search).
int owner_of(std::span<const long> part, long gid);

/// Number of rows owned by rank r.
inline long local_size(std::span<const long> part, int r) {
  return part[r + 1] - part[r];
}

}  // namespace sparse
