#include "sparse/csr.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace sparse {

Csr::Csr(int rows, int cols) : rows_(rows), cols_(cols), rowptr_(rows + 1, 0) {
  if (rows < 0 || cols < 0) throw Error("Csr: negative dimensions");
}

Csr Csr::from_triplets(int rows, int cols, std::vector<Triplet> entries) {
  for (const auto& t : entries)
    if (t.row < 0 || t.row >= rows || t.col < 0 || t.col >= cols)
      throw Error("Csr::from_triplets: entry out of range");
  std::sort(entries.begin(), entries.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });
  Csr m(rows, cols);
  m.colind_.reserve(entries.size());
  m.vals_.reserve(entries.size());
  std::size_t i = 0;
  for (int r = 0; r < rows; ++r) {
    while (i < entries.size() && entries[i].row == r) {
      double v = entries[i].val;
      const int c = entries[i].col;
      ++i;
      while (i < entries.size() && entries[i].row == r && entries[i].col == c) {
        v += entries[i].val;
        ++i;
      }
      m.colind_.push_back(c);
      m.vals_.push_back(v);
    }
    m.rowptr_[r + 1] = static_cast<long>(m.colind_.size());
  }
  return m;
}

Csr Csr::identity(int n) {
  Csr m(n, n);
  m.colind_.resize(n);
  m.vals_.assign(n, 1.0);
  std::iota(m.colind_.begin(), m.colind_.end(), 0);
  for (int r = 0; r <= n; ++r) m.rowptr_[r] = r;
  return m;
}

Csr Csr::from_raw(int rows, int cols, std::vector<long> rowptr,
                  std::vector<int> colind, std::vector<double> vals) {
  if (static_cast<int>(rowptr.size()) != rows + 1)
    throw Error("Csr::from_raw: rowptr size mismatch");
  if (colind.size() != vals.size())
    throw Error("Csr::from_raw: colind/vals size mismatch");
  if (rowptr.front() != 0 ||
      rowptr.back() != static_cast<long>(colind.size()))
    throw Error("Csr::from_raw: rowptr endpoints invalid");
  for (int r = 0; r < rows; ++r) {
    if (rowptr[r] > rowptr[r + 1]) throw Error("Csr::from_raw: rowptr dips");
    for (long k = rowptr[r]; k < rowptr[r + 1]; ++k) {
      if (colind[k] < 0 || colind[k] >= cols)
        throw Error("Csr::from_raw: column out of range");
      if (k > rowptr[r] && colind[k] <= colind[k - 1])
        throw Error("Csr::from_raw: columns not strictly ascending");
    }
  }
  Csr m(rows, cols);
  m.rowptr_ = std::move(rowptr);
  m.colind_ = std::move(colind);
  m.vals_ = std::move(vals);
  return m;
}

void Csr::spmv(std::span<const double> x, std::span<double> y) const {
  if (static_cast<int>(x.size()) != cols_ ||
      static_cast<int>(y.size()) != rows_)
    throw Error("Csr::spmv: dimension mismatch");
  for (int r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (long k = rowptr_[r]; k < rowptr_[r + 1]; ++k)
      acc += vals_[k] * x[colind_[k]];
    y[r] = acc;
  }
}

void Csr::spmv_add(std::span<const double> x, std::span<double> y) const {
  if (static_cast<int>(x.size()) != cols_ ||
      static_cast<int>(y.size()) != rows_)
    throw Error("Csr::spmv_add: dimension mismatch");
  for (int r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (long k = rowptr_[r]; k < rowptr_[r + 1]; ++k)
      acc += vals_[k] * x[colind_[k]];
    y[r] += acc;
  }
}

double Csr::at(int r, int c) const {
  auto cols = row_cols(r);
  auto it = std::lower_bound(cols.begin(), cols.end(), c);
  if (it == cols.end() || *it != c) return 0.0;
  return vals_[rowptr_[r] + (it - cols.begin())];
}

std::vector<double> Csr::diagonal() const {
  std::vector<double> d(rows_, 0.0);
  for (int r = 0; r < std::min(rows_, cols_); ++r) d[r] = at(r, r);
  return d;
}

Csr Csr::transpose() const {
  Csr t(cols_, rows_);
  std::vector<long> count(cols_ + 1, 0);
  for (int c : colind_) ++count[c + 1];
  for (int c = 0; c < cols_; ++c) count[c + 1] += count[c];
  t.rowptr_ = count;
  t.colind_.resize(colind_.size());
  t.vals_.resize(vals_.size());
  std::vector<long> next(t.rowptr_.begin(), t.rowptr_.end() - 1);
  for (int r = 0; r < rows_; ++r) {
    for (long k = rowptr_[r]; k < rowptr_[r + 1]; ++k) {
      const long pos = next[colind_[k]]++;
      t.colind_[pos] = r;
      t.vals_[pos] = vals_[k];
    }
  }
  return t;  // columns ascend because source rows were scanned in order
}

Csr Csr::multiply(const Csr& B) const {
  if (cols_ != B.rows_) throw Error("Csr::multiply: dimension mismatch");
  Csr C(rows_, B.cols_);
  std::vector<double> acc(B.cols_, 0.0);
  std::vector<int> marker(B.cols_, -1);
  std::vector<int> touched;
  for (int r = 0; r < rows_; ++r) {
    touched.clear();
    for (long ka = rowptr_[r]; ka < rowptr_[r + 1]; ++ka) {
      const int j = colind_[ka];
      const double av = vals_[ka];
      for (long kb = B.rowptr_[j]; kb < B.rowptr_[j + 1]; ++kb) {
        const int c = B.colind_[kb];
        if (marker[c] != r) {
          marker[c] = r;
          acc[c] = 0.0;
          touched.push_back(c);
        }
        acc[c] += av * B.vals_[kb];
      }
    }
    std::sort(touched.begin(), touched.end());
    for (int c : touched) {
      C.colind_.push_back(c);
      C.vals_.push_back(acc[c]);
    }
    C.rowptr_[r + 1] = static_cast<long>(C.colind_.size());
  }
  return C;
}

Csr Csr::select_rows(std::span<const int> rows) const {
  Csr out(static_cast<int>(rows.size()), cols_);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const int r = rows[i];
    if (r < 0 || r >= rows_) throw Error("Csr::select_rows: row out of range");
    for (long k = rowptr_[r]; k < rowptr_[r + 1]; ++k) {
      out.colind_.push_back(colind_[k]);
      out.vals_.push_back(vals_[k]);
    }
    out.rowptr_[i + 1] = static_cast<long>(out.colind_.size());
  }
  return out;
}

Csr Csr::permuted(std::span<const int> row_perm,
                  std::span<const int> col_perm) const {
  if (static_cast<int>(row_perm.size()) != rows_ ||
      static_cast<int>(col_perm.size()) != cols_)
    throw Error("Csr::permuted: permutation size mismatch");
  std::vector<Triplet> tr;
  tr.reserve(colind_.size());
  for (int r = 0; r < rows_; ++r)
    for (long k = rowptr_[r]; k < rowptr_[r + 1]; ++k)
      tr.push_back(Triplet{row_perm[r], col_perm[colind_[k]], vals_[k]});
  return from_triplets(rows_, cols_, std::move(tr));
}

Csr Csr::pruned(double tol) const {
  Csr out(rows_, cols_);
  for (int r = 0; r < rows_; ++r) {
    for (long k = rowptr_[r]; k < rowptr_[r + 1]; ++k) {
      if (colind_[k] == r || std::abs(vals_[k]) > tol) {
        out.colind_.push_back(colind_[k]);
        out.vals_.push_back(vals_[k]);
      }
    }
    out.rowptr_[r + 1] = static_cast<long>(out.colind_.size());
  }
  return out;
}

Csr galerkin_product(const Csr& R, const Csr& A, const Csr& P) {
  return R.multiply(A.multiply(P));
}

std::vector<double> dense_spmv(const Csr& A, std::span<const double> x) {
  std::vector<double> y(A.rows(), 0.0);
  for (int r = 0; r < A.rows(); ++r)
    for (long k = A.rowptr()[r]; k < A.rowptr()[r + 1]; ++k)
      y[r] += A.values()[k] * x[A.colind()[k]];
  return y;
}

}  // namespace sparse
