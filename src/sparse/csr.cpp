#include "sparse/csr.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <string>
#include <utility>

#include "util/worker_pool.hpp"

namespace sparse {

int Threads::resolved() const {
  return util::resolve_threads(count,
                               {"COLLOM_BUILD_THREADS", "COLLOM_SIM_THREADS"});
}

Csr::Csr(int rows, int cols) : rows_(rows), cols_(cols), rowptr_(rows + 1, 0) {
  if (rows < 0 || cols < 0) throw Error("Csr: negative dimensions");
}

Csr Csr::from_triplets(int rows, int cols, std::vector<Triplet> entries) {
  for (const auto& t : entries)
    if (t.row < 0 || t.row >= rows || t.col < 0 || t.col >= cols)
      throw Error("Csr::from_triplets: entry out of range");
  std::sort(entries.begin(), entries.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });
  Csr m(rows, cols);
  m.colind_.reserve(entries.size());
  m.vals_.reserve(entries.size());
  std::size_t i = 0;
  for (int r = 0; r < rows; ++r) {
    while (i < entries.size() && entries[i].row == r) {
      double v = entries[i].val;
      const int c = entries[i].col;
      ++i;
      while (i < entries.size() && entries[i].row == r && entries[i].col == c) {
        v += entries[i].val;
        ++i;
      }
      m.colind_.push_back(c);
      m.vals_.push_back(v);
    }
    m.rowptr_[r + 1] = static_cast<long>(m.colind_.size());
  }
  return m;
}

Csr Csr::identity(int n) {
  Csr m(n, n);
  m.colind_.resize(n);
  m.vals_.assign(n, 1.0);
  std::iota(m.colind_.begin(), m.colind_.end(), 0);
  for (int r = 0; r <= n; ++r) m.rowptr_[r] = r;
  return m;
}

Csr Csr::from_raw(int rows, int cols, std::vector<long> rowptr,
                  std::vector<int> colind, std::vector<double> vals) {
  if (static_cast<int>(rowptr.size()) != rows + 1)
    throw Error("Csr::from_raw: rowptr size mismatch");
  if (colind.size() != vals.size())
    throw Error("Csr::from_raw: colind/vals size mismatch");
  if (rowptr.front() != 0 ||
      rowptr.back() != static_cast<long>(colind.size()))
    throw Error("Csr::from_raw: rowptr endpoints invalid");
  for (int r = 0; r < rows; ++r) {
    if (rowptr[r] > rowptr[r + 1]) throw Error("Csr::from_raw: rowptr dips");
    for (long k = rowptr[r]; k < rowptr[r + 1]; ++k) {
      if (colind[k] < 0 || colind[k] >= cols)
        throw Error("Csr::from_raw: column out of range");
      if (k > rowptr[r] && colind[k] <= colind[k - 1])
        throw Error("Csr::from_raw: columns not strictly ascending");
    }
  }
  Csr m(rows, cols);
  m.rowptr_ = std::move(rowptr);
  m.colind_ = std::move(colind);
  m.vals_ = std::move(vals);
  return m;
}

void Csr::spmv(std::span<const double> x, std::span<double> y) const {
  if (static_cast<int>(x.size()) != cols_ ||
      static_cast<int>(y.size()) != rows_)
    throw Error("Csr::spmv: dimension mismatch");
  for (int r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (long k = rowptr_[r]; k < rowptr_[r + 1]; ++k)
      acc += vals_[k] * x[colind_[k]];
    y[r] = acc;
  }
}

void Csr::spmv_add(std::span<const double> x, std::span<double> y) const {
  if (static_cast<int>(x.size()) != cols_ ||
      static_cast<int>(y.size()) != rows_)
    throw Error("Csr::spmv_add: dimension mismatch");
  for (int r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (long k = rowptr_[r]; k < rowptr_[r + 1]; ++k)
      acc += vals_[k] * x[colind_[k]];
    y[r] += acc;
  }
}

double Csr::at(int r, int c) const {
  auto cols = row_cols(r);
  auto it = std::lower_bound(cols.begin(), cols.end(), c);
  if (it == cols.end() || *it != c) return 0.0;
  return vals_[rowptr_[r] + (it - cols.begin())];
}

std::vector<double> Csr::diagonal() const {
  std::vector<double> d(rows_, 0.0);
  for (int r = 0; r < std::min(rows_, cols_); ++r) d[r] = at(r, r);
  return d;
}

Csr Csr::transpose(Threads threads) const {
  Csr t(cols_, rows_);
  // Blocked two-phase scatter.  Source rows are split into `nb` contiguous
  // blocks; per-block column histograms fix, for every block, where its
  // entries of each output row start.  Entry (r, c) then lands at
  // rowptr[c] + (its rank among column-c entries in ascending source-row
  // order) — a function of the matrix alone, so the output is identical
  // for every block/thread count.  nb is capped to bound the transient
  // histogram memory (nb * cols longs).
  const int nb = std::max(1, std::min({threads.resolved(), 8, rows_}));
  std::vector<long> bounds(nb + 1);
  for (int b = 0; b <= nb; ++b)
    bounds[b] = static_cast<long>(rows_) * b / nb;
  std::vector<std::vector<long>> bcount(nb, std::vector<long>(cols_, 0));
  util::WorkerPool pool(nb);  // one worker per block; both passes reuse it
  pool.run(nb, 1, [&](std::size_t b0, std::size_t b1, int) {
    for (std::size_t b = b0; b < b1; ++b) {
      auto& count = bcount[b];
      for (long k = rowptr_[bounds[b]]; k < rowptr_[bounds[b + 1]]; ++k)
        ++count[colind_[k]];
    }
  });
  long run = 0;
  for (int c = 0; c < cols_; ++c) {
    t.rowptr_[c] = run;
    for (int b = 0; b < nb; ++b) {
      const long n = bcount[b][c];
      bcount[b][c] = run;  // becomes block b's write cursor for column c
      run += n;
    }
  }
  t.rowptr_[cols_] = run;
  t.colind_.resize(colind_.size());
  t.vals_.resize(vals_.size());
  pool.run(nb, 1, [&](std::size_t b0, std::size_t b1, int) {
    for (std::size_t b = b0; b < b1; ++b) {
      auto& next = bcount[b];
      for (long r = bounds[b]; r < bounds[b + 1]; ++r) {
        for (long k = rowptr_[r]; k < rowptr_[r + 1]; ++k) {
          const long pos = next[colind_[k]]++;
          t.colind_[pos] = static_cast<int>(r);
          t.vals_[pos] = vals_[k];
        }
      }
    }
  });
  return t;  // columns ascend because source rows were scanned in order
}

Csr Csr::multiply(const Csr& B, Threads threads) const {
  if (cols_ != B.rows_) throw Error("Csr::multiply: dimension mismatch");
  Csr C(rows_, B.cols_);
  // Gustavson needs dense per-worker scratch (~12 bytes per output
  // column: int marker + double accumulator); cap the width so the total
  // stays within ~256 MiB on many-core auto-width hosts.  Width caps are
  // wall-time-only — output bytes never depend on them.
  const long scratch_per_worker = static_cast<long>(B.cols_) * 12;
  const int max_width =
      scratch_per_worker > 0
          ? static_cast<int>(std::max<long>(
                1, std::min<long>(512, (256L << 20) / scratch_per_worker)))
          : 512;
  const int nt =
      std::max(1, std::min({threads.resolved(), rows_, max_width}));
  const std::size_t chunk = util::row_chunk(rows_, nt);
  util::WorkerPool pool(nt);  // shared by the two passes

  // Phase 1 — symbolic: count each output row's distinct columns.  One
  // marker per worker; output row indices are globally unique, so marking
  // a column with the row that saw it needs no reset between rows.
  std::vector<std::vector<int>> markers(nt, std::vector<int>(B.cols_, -1));
  pool.run(rows_, chunk, [&](std::size_t b, std::size_t e, int w) {
        auto& marker = markers[w];
        for (std::size_t r = b; r < e; ++r) {
          long count = 0;
          for (long ka = rowptr_[r]; ka < rowptr_[r + 1]; ++ka) {
            const int j = colind_[ka];
            for (long kb = B.rowptr_[j]; kb < B.rowptr_[j + 1]; ++kb) {
              const int c = B.colind_[kb];
              if (marker[c] != static_cast<int>(r)) {
                marker[c] = static_cast<int>(r);
                ++count;
              }
            }
          }
          C.rowptr_[r + 1] = count;
        }
      });
  const long nnz = util::exclusive_scan_counts(C.rowptr_);
  C.colind_.resize(nnz);
  C.vals_.resize(nnz);

  // Phase 2 — numeric: Gustavson accumulation per row, written into the
  // row's fixed slice.  Markers carry phase-1 row marks, so reset them.
  for (auto& m : markers) std::fill(m.begin(), m.end(), -1);
  std::vector<std::vector<double>> accs(nt, std::vector<double>(B.cols_, 0.0));
  std::vector<std::vector<int>> touched(nt);
  pool.run(rows_, chunk, [&](std::size_t b, std::size_t e, int w) {
        auto& marker = markers[w];
        auto& acc = accs[w];
        auto& tch = touched[w];
        for (std::size_t r = b; r < e; ++r) {
          tch.clear();
          for (long ka = rowptr_[r]; ka < rowptr_[r + 1]; ++ka) {
            const int j = colind_[ka];
            const double av = vals_[ka];
            for (long kb = B.rowptr_[j]; kb < B.rowptr_[j + 1]; ++kb) {
              const int c = B.colind_[kb];
              if (marker[c] != static_cast<int>(r)) {
                marker[c] = static_cast<int>(r);
                acc[c] = 0.0;
                tch.push_back(c);
              }
              acc[c] += av * B.vals_[kb];
            }
          }
          std::sort(tch.begin(), tch.end());
          long pos = C.rowptr_[r];
          for (int c : tch) {
            C.colind_[pos] = c;
            C.vals_[pos] = acc[c];
            ++pos;
          }
          assert(pos == C.rowptr_[r + 1]);
        }
      });
  // Exact preallocation: the symbolic pass sized the output; any growth
  // here would mean the two phases disagreed.
  assert(C.colind_.capacity() == C.colind_.size());
  assert(C.vals_.capacity() == C.vals_.size());
  return C;
}

Csr Csr::select_rows(std::span<const int> rows, Threads threads) const {
  Csr out(static_cast<int>(rows.size()), cols_);
  const int nt = std::max(
      1, std::min(threads.resolved(), static_cast<int>(rows.size())));
  const std::size_t chunk = util::row_chunk(rows.size(), nt);
  util::WorkerPool pool(nt);
  pool.run(rows.size(), chunk, [&](std::size_t b, std::size_t e, int) {
        for (std::size_t i = b; i < e; ++i) {
          const int r = rows[i];
          if (r < 0 || r >= rows_)
            throw Error("Csr::select_rows: row out of range");
          out.rowptr_[i + 1] = rowptr_[r + 1] - rowptr_[r];
        }
      });
  const long nnz = util::exclusive_scan_counts(out.rowptr_);
  out.colind_.resize(nnz);
  out.vals_.resize(nnz);
  pool.run(rows.size(), chunk, [&](std::size_t b, std::size_t e, int) {
        for (std::size_t i = b; i < e; ++i) {
          const int r = rows[i];
          std::copy(colind_.begin() + rowptr_[r],
                    colind_.begin() + rowptr_[r + 1],
                    out.colind_.begin() + out.rowptr_[i]);
          std::copy(vals_.begin() + rowptr_[r],
                    vals_.begin() + rowptr_[r + 1],
                    out.vals_.begin() + out.rowptr_[i]);
        }
      });
  assert(out.colind_.capacity() == out.colind_.size());
  assert(out.vals_.capacity() == out.vals_.size());
  return out;
}

Csr Csr::permuted(std::span<const int> row_perm,
                  std::span<const int> col_perm, Threads threads) const {
  if (static_cast<int>(row_perm.size()) != rows_ ||
      static_cast<int>(col_perm.size()) != cols_)
    throw Error("Csr::permuted: permutation size mismatch");
  // Both maps must be bijections: a duplicate target would silently merge
  // rows (or sum entries), corrupting the matrix rather than failing.
  const auto check_bijection = [](std::span<const int> p, int n,
                                  const char* what) {
    std::vector<char> seen(n, 0);
    for (int v : p) {
      if (v < 0 || v >= n)
        throw Error(std::string("Csr::permuted: ") + what +
                    " entry out of range");
      if (seen[v])
        throw Error(std::string("Csr::permuted: ") + what +
                    " is not a permutation (duplicate target " +
                    std::to_string(v) + ")");
      seen[v] = 1;
    }
  };
  check_bijection(row_perm, rows_, "row_perm");
  check_bijection(col_perm, cols_, "col_perm");

  std::vector<int> inv(rows_);  // output row i comes from source row inv[i]
  for (int r = 0; r < rows_; ++r) inv[row_perm[r]] = r;

  Csr out(rows_, cols_);
  const int nt = std::max(1, std::min(threads.resolved(), rows_));
  const std::size_t chunk = util::row_chunk(rows_, nt);
  util::WorkerPool pool(nt);
  pool.run(rows_, chunk, [&](std::size_t b, std::size_t e, int) {
        for (std::size_t i = b; i < e; ++i) {
          const int r = inv[i];
          out.rowptr_[i + 1] = rowptr_[r + 1] - rowptr_[r];
        }
      });
  const long nnz = util::exclusive_scan_counts(out.rowptr_);
  out.colind_.resize(nnz);
  out.vals_.resize(nnz);
  std::vector<std::vector<std::pair<int, double>>> scratch(nt);
  pool.run(rows_, chunk, [&](std::size_t b, std::size_t e, int w) {
        auto& row = scratch[w];
        for (std::size_t i = b; i < e; ++i) {
          const int r = inv[i];
          row.clear();
          for (long k = rowptr_[r]; k < rowptr_[r + 1]; ++k)
            row.emplace_back(col_perm[colind_[k]], vals_[k]);
          std::sort(row.begin(), row.end());
          long pos = out.rowptr_[i];
          for (const auto& [c, v] : row) {
            out.colind_[pos] = c;
            out.vals_[pos] = v;
            ++pos;
          }
        }
      });
  assert(out.colind_.capacity() == out.colind_.size());
  assert(out.vals_.capacity() == out.vals_.size());
  return out;
}

Csr Csr::pruned(double tol, Threads threads) const {
  Csr out(rows_, cols_);
  const int nt = std::max(1, std::min(threads.resolved(), rows_));
  const std::size_t chunk = util::row_chunk(rows_, nt);
  util::WorkerPool pool(nt);
  const auto keep = [&](long k, long r) {
    return colind_[k] == r || std::abs(vals_[k]) > tol;
  };
  pool.run(rows_, chunk, [&](std::size_t b, std::size_t e, int) {
        for (std::size_t r = b; r < e; ++r) {
          long count = 0;
          for (long k = rowptr_[r]; k < rowptr_[r + 1]; ++k)
            if (keep(k, static_cast<long>(r))) ++count;
          out.rowptr_[r + 1] = count;
        }
      });
  const long nnz = util::exclusive_scan_counts(out.rowptr_);
  out.colind_.resize(nnz);
  out.vals_.resize(nnz);
  pool.run(rows_, chunk, [&](std::size_t b, std::size_t e, int) {
        for (std::size_t r = b; r < e; ++r) {
          long pos = out.rowptr_[r];
          for (long k = rowptr_[r]; k < rowptr_[r + 1]; ++k) {
            if (keep(k, static_cast<long>(r))) {
              out.colind_[pos] = colind_[k];
              out.vals_[pos] = vals_[k];
              ++pos;
            }
          }
          assert(pos == out.rowptr_[r + 1]);
        }
      });
  assert(out.colind_.capacity() == out.colind_.size());
  assert(out.vals_.capacity() == out.vals_.size());
  return out;
}

Csr galerkin_product(const Csr& R, const Csr& A, const Csr& P,
                     Threads threads) {
  return R.multiply(A.multiply(P, threads), threads);
}

std::vector<double> dense_spmv(const Csr& A, std::span<const double> x) {
  std::vector<double> y(A.rows(), 0.0);
  for (int r = 0; r < A.rows(); ++r)
    for (long k = A.rowptr()[r]; k < A.rowptr()[r + 1]; ++k)
      y[r] += A.values()[k] * x[A.colind()[k]];
  return y;
}

}  // namespace sparse
