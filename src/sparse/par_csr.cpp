#include "sparse/par_csr.hpp"

#include <algorithm>

namespace sparse {

ParCsr ParCsr::distribute(const Csr& A, std::vector<long> row_part,
                          std::vector<long> col_part) {
  if (row_part.size() != col_part.size())
    throw Error("ParCsr::distribute: partition size mismatch");
  if (row_part.back() != A.rows() || col_part.back() != A.cols())
    throw Error("ParCsr::distribute: partition does not cover matrix");
  const int p = static_cast<int>(row_part.size()) - 1;

  ParCsr out;
  out.global_rows = A.rows();
  out.global_cols = A.cols();
  out.row_part = std::move(row_part);
  out.col_part = std::move(col_part);
  out.ranks.resize(p);

  for (int r = 0; r < p; ++r) {
    ParCsrRank& slice = out.ranks[r];
    slice.first_row = out.row_part[r];
    slice.first_col = out.col_part[r];
    const long r0 = out.row_part[r];
    const long r1 = out.row_part[r + 1];
    const long c0 = out.col_part[r];
    const long c1 = out.col_part[r + 1];
    const int nrows = static_cast<int>(r1 - r0);
    const int ncols = static_cast<int>(c1 - c0);

    // Collect the offd column footprint (global ids), sorted ascending.
    std::vector<long> offd_cols;
    for (long row = r0; row < r1; ++row)
      for (int c : A.row_cols(static_cast<int>(row)))
        if (c < c0 || c >= c1) offd_cols.push_back(c);
    std::sort(offd_cols.begin(), offd_cols.end());
    offd_cols.erase(std::unique(offd_cols.begin(), offd_cols.end()),
                    offd_cols.end());
    slice.col_map_offd = offd_cols;
    // offd_cols is sorted unique, so the offd-local index of a global
    // column is just its lower_bound position — no side map needed.
    auto offd_index = [&](long col) {
      return static_cast<int>(
          std::lower_bound(offd_cols.begin(), offd_cols.end(), col) -
          offd_cols.begin());
    };

    std::vector<Triplet> diag_tr, offd_tr;
    for (long row = r0; row < r1; ++row) {
      const int lr = static_cast<int>(row - r0);
      auto cols = A.row_cols(static_cast<int>(row));
      auto vals = A.row_vals(static_cast<int>(row));
      for (std::size_t k = 0; k < cols.size(); ++k) {
        if (cols[k] >= c0 && cols[k] < c1)
          diag_tr.push_back(Triplet{lr, static_cast<int>(cols[k] - c0),
                                    vals[k]});
        else
          offd_tr.push_back(Triplet{lr, offd_index(cols[k]), vals[k]});
      }
    }
    slice.diag = Csr::from_triplets(nrows, ncols, std::move(diag_tr));
    slice.offd = Csr::from_triplets(
        nrows, static_cast<int>(offd_cols.size()), std::move(offd_tr));
  }
  return out;
}

Csr ParCsr::gather() const {
  std::vector<Triplet> tr;
  for (int r = 0; r < num_ranks(); ++r) {
    const ParCsrRank& slice = ranks[r];
    for (int lr = 0; lr < slice.local_rows(); ++lr) {
      const int grow = static_cast<int>(slice.first_row + lr);
      auto dc = slice.diag.row_cols(lr);
      auto dv = slice.diag.row_vals(lr);
      for (std::size_t k = 0; k < dc.size(); ++k)
        tr.push_back(Triplet{grow, static_cast<int>(slice.first_col + dc[k]),
                             dv[k]});
      auto oc = slice.offd.row_cols(lr);
      auto ov = slice.offd.row_vals(lr);
      for (std::size_t k = 0; k < oc.size(); ++k)
        tr.push_back(Triplet{
            grow, static_cast<int>(slice.col_map_offd[oc[k]]), ov[k]});
    }
  }
  return Csr::from_triplets(static_cast<int>(global_rows),
                            static_cast<int>(global_cols), std::move(tr));
}

Halo Halo::build(const ParCsr& A) {
  const int p = A.num_ranks();
  Halo h;
  h.ranks.resize(p);

  // Receive side, straight from each rank's offd footprint.
  for (int q = 0; q < p; ++q) {
    RankHalo& hq = h.ranks[q];
    hq.recv_gids = A.ranks[q].col_map_offd;
    int cur_owner = -1;
    for (long gid : hq.recv_gids) {
      const int owner = owner_of(A.col_part, gid);
      if (owner == q)
        throw Error("Halo::build: offd column owned by the local rank");
      if (owner != cur_owner) {
        hq.recv_ranks.push_back(owner);
        hq.recv_counts.push_back(0);
        cur_owner = owner;
      }
      ++hq.recv_counts.back();
    }
  }
  // Send side: invert.  Iterating receivers in ascending rank order keeps
  // send lists sorted by (destination, global id).
  for (int q = 0; q < p; ++q) {
    const RankHalo& hq = h.ranks[q];
    long pos = 0;
    for (std::size_t i = 0; i < hq.recv_ranks.size(); ++i) {
      const int s = hq.recv_ranks[i];
      RankHalo& hs = h.ranks[s];
      if (hs.send_ranks.empty() || hs.send_ranks.back() != q) {
        hs.send_ranks.push_back(q);
        hs.send_counts.push_back(0);
      }
      for (int k = 0; k < hq.recv_counts[i]; ++k) {
        const long gid = hq.recv_gids[pos++];
        hs.send_idx.push_back(static_cast<int>(gid - A.col_part[s]));
        hs.send_gids.push_back(gid);
        ++hs.send_counts.back();
      }
    }
  }
  return h;
}

void spmv_local(const ParCsrRank& a, std::span<const double> x_local,
                std::span<const double> x_ext, std::span<double> y) {
  a.diag.spmv(x_local, y);
  a.offd.spmv_add(x_ext, y);
}

std::vector<std::vector<double>> split_vector(std::span<const double> x,
                                              std::span<const long> part) {
  if (static_cast<long>(x.size()) != part.back())
    throw Error("split_vector: size mismatch");
  std::vector<std::vector<double>> out(part.size() - 1);
  for (std::size_t r = 0; r + 1 < part.size(); ++r)
    out[r].assign(x.begin() + part[r], x.begin() + part[r + 1]);
  return out;
}

std::vector<double> join_vector(
    const std::vector<std::vector<double>>& chunks) {
  std::vector<double> out;
  for (const auto& c : chunks) out.insert(out.end(), c.begin(), c.end());
  return out;
}

}  // namespace sparse
