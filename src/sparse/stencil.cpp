#include "sparse/stencil.hpp"

#include <cmath>

namespace sparse {

namespace {

/// Generic 2D stencil application: offsets and weights, Dirichlet boundary.
Csr stencil_2d(int nx, int ny, std::span<const int> dx,
               std::span<const int> dy, std::span<const double> w) {
  if (nx < 1 || ny < 1) throw Error("stencil_2d: grid must be at least 1x1");
  const int n = nx * ny;
  std::vector<Triplet> tr;
  tr.reserve(static_cast<std::size_t>(n) * w.size());
  for (int y = 0; y < ny; ++y) {
    for (int x = 0; x < nx; ++x) {
      const int row = grid_index(nx, x, y);
      for (std::size_t s = 0; s < w.size(); ++s) {
        const int xx = x + dx[s];
        const int yy = y + dy[s];
        if (xx < 0 || xx >= nx || yy < 0 || yy >= ny) continue;
        if (w[s] == 0.0) continue;
        tr.push_back(Triplet{row, grid_index(nx, xx, yy), w[s]});
      }
    }
  }
  return Csr::from_triplets(n, n, std::move(tr));
}

}  // namespace

Csr laplacian_5pt(int nx, int ny) {
  const int dx[] = {0, -1, 1, 0, 0};
  const int dy[] = {0, 0, 0, -1, 1};
  const double w[] = {4.0, -1.0, -1.0, -1.0, -1.0};
  return stencil_2d(nx, ny, dx, dy, w);
}

Csr laplacian_9pt(int nx, int ny) {
  const int dx[] = {0, -1, 1, 0, 0, -1, 1, -1, 1};
  const int dy[] = {0, 0, 0, -1, 1, -1, -1, 1, 1};
  const double w[] = {8.0, -1.0, -1.0, -1.0, -1.0, -1.0, -1.0, -1.0, -1.0};
  return stencil_2d(nx, ny, dx, dy, w);
}

Csr laplacian_27pt(int nx, int ny, int nz) {
  if (nx < 1 || ny < 1 || nz < 1)
    throw Error("laplacian_27pt: grid must be at least 1x1x1");
  const long n = static_cast<long>(nx) * ny * nz;
  std::vector<Triplet> tr;
  tr.reserve(static_cast<std::size_t>(n) * 27);
  auto idx = [&](int x, int y, int z) { return (z * ny + y) * nx + x; };
  for (int z = 0; z < nz; ++z)
    for (int y = 0; y < ny; ++y)
      for (int x = 0; x < nx; ++x) {
        const int row = idx(x, y, z);
        for (int dz = -1; dz <= 1; ++dz)
          for (int dy = -1; dy <= 1; ++dy)
            for (int dx = -1; dx <= 1; ++dx) {
              const int xx = x + dx, yy = y + dy, zz = z + dz;
              if (xx < 0 || xx >= nx || yy < 0 || yy >= ny || zz < 0 ||
                  zz >= nz)
                continue;
              const double w =
                  (dx == 0 && dy == 0 && dz == 0) ? 26.0 : -1.0;
              tr.push_back(Triplet{row, idx(xx, yy, zz), w});
            }
      }
  return Csr::from_triplets(static_cast<int>(n), static_cast<int>(n),
                            std::move(tr));
}

Csr rotated_aniso_7pt(int nx, int ny, double theta, double eps) {
  const double cs = std::cos(theta);
  const double sn = std::sin(theta);
  const double cx = cs * cs + eps * sn * sn;
  const double cy = sn * sn + eps * cs * cs;
  const double cxy = 2.0 * (1.0 - eps) * cs * sn;
  //               C            E              W              N
  const int dx[] = {0, 1, -1, 0, 0, 1, -1};
  const int dy[] = {0, 0, 0, 1, -1, 1, -1};
  const double w[] = {
      2 * cx + 2 * cy - cxy,  // C
      -cx + cxy / 2,          // E
      -cx + cxy / 2,          // W
      -cy + cxy / 2,          // N
      -cy + cxy / 2,          // S
      -cxy / 2,               // NE
      -cxy / 2,               // SW
  };
  return stencil_2d(nx, ny, dx, dy, w);
}

Csr paper_problem(int nx, int ny) {
  constexpr double kPi = 3.14159265358979323846;
  return rotated_aniso_7pt(nx, ny, kPi / 4.0, 0.001);
}

void factor_grid(long n, int& nx, int& ny) {
  if (n < 1) throw Error("factor_grid: n must be positive");
  long best = 1;
  while (best * 2 * best * 2 <= n * 2) best *= 2;  // largest pow2 <= sqrt(n)*~
  while (best > 1 && n % best != 0) best /= 2;
  nx = static_cast<int>(best);
  ny = static_cast<int>(n / best);
  if (static_cast<long>(nx) * ny != n)
    throw Error("factor_grid: n has no power-of-two factorization");
  if (nx < ny) std::swap(nx, ny);
}

}  // namespace sparse
