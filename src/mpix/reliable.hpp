#pragma once
/// \file reliable.hpp
/// \brief Internal reliable-delivery channel wrappers (Options::reliability).
///
/// One `RelSend`/`RelRecv` pair replaces one persistent network channel of
/// a collective with a stop-and-wait protocol:
///
///   * every data message carries an 8-byte header (a 32-bit per-channel
///     sequence number) in front of the payload, staged in a buffer owned
///     by the wrapper;
///   * the receiver consumes the expected sequence (discarding stale
///     duplicates and retransmit debris), copies the payload into the
///     bound span, and posts an 8-byte *control* acknowledgement — exempt
///     from drop/duplication under FaultPlan::protect_control, so the
///     protocol terminates;
///   * the sender awaits the ack with a virtual-time timeout
///     (Context::wait_until) and retransmits with exponential backoff,
///     giving up with a SimError after Reliability::max_retries.
///
/// A collective completes its reliable channels with `finish_channels`,
/// which multiplexes every open channel instead of finishing them one by
/// one.  Sequential finishing deadlocks: a rank blocked receiving a
/// dropped message never reaches its own sends' retransmit timers, and
/// such waits can cycle across ranks (A awaits B's retransmit, B awaits
/// C's, C awaits A's).  The driver polls all channels for committed
/// messages, and when nothing is consumable parks on the earliest
/// retransmit deadline this rank owes — so every dropped message's
/// retransmission is armed the moment its sender goes idle, regardless of
/// what else the rank still has open.  For every open receive the matching
/// send on the peer rank is still open too (no ack without consumption),
/// so globally some rank always holds a timer: no deadlock.
///
/// Zero-allocation: stage buffers and requests are sized at construction;
/// start and the driver steps perform no allocation (coroutine frames come
/// from the pooled frame allocator), so the PR 5 steady-state guarantee
/// holds with reliability enabled (EngineAlloc suite).
///
/// Not part of the mpix API.

#include <cstdint>
#include <span>
#include <vector>

#include "mpix/neighbor.hpp"
#include "simmpi/engine.hpp"

namespace mpix::impl {

/// Bytes prepended to every reliable data message (32-bit sequence number
/// padded to preserve 8-byte payload alignment); also the size of an ack.
inline constexpr std::size_t kRelHeaderBytes = 8;

/// Validate reliability knobs, naming field and value in the SimError.
void validate_reliability(const Reliability& rel);

/// Whether a channel to `peer` moving `bytes` payload bytes should be
/// wrapped: reliability on, payload non-empty (zero-byte messages are
/// never dropped), and the pair crosses the network (intra-node messages
/// are never dropped either).  Symmetric in the pair, so both endpoints
/// agree without communicating.
bool wrap_channel(const simmpi::Comm& comm, int peer, std::size_t bytes,
                  const Reliability& rel);

/// Sender half of one reliable channel.  Driven by `finish_channels`.
class RelSend {
 public:
  RelSend() = default;
  /// `payload` is the persistent span the collective would otherwise send
  /// directly; its *current* bytes are staged at each start().
  RelSend(const simmpi::Comm& comm, std::span<const std::byte> payload,
          int peer, int data_tag, int ack_tag);

  /// Stage header + payload and post the data message; arms the ack
  /// receive.  Call once per collective start.
  void start(simmpi::Context& ctx);

  bool done() const { return done_; }
  int peer() const { return data_.peer(); }
  simmpi::ChannelKey ack_key() const { return ack_.key(); }
  double deadline() const { return deadline_; }

  /// Await the initial data transmission's local completion and arm the
  /// first retransmit deadline.  Driver calls it once per collective.
  simmpi::Task<> init(simmpi::Context& ctx, const Reliability& rel);
  /// Consume one committed ack (precondition: Engine::has_message on
  /// ack_key()): expected -> done, stale -> re-arm, future -> SimError.
  simmpi::Task<> poll(simmpi::Context& ctx);
  /// Park until the ack arrives or the retransmit deadline fires; on
  /// timeout retransmit with backoff, giving up after max_retries.
  simmpi::Task<> step_park(simmpi::Context& ctx, const Reliability& rel);

 private:
  std::byte* ack_data() { return stage_.data() + stage_.size() - kRelHeaderBytes; }
  void handle_ack(simmpi::Context& ctx);

  std::span<const std::byte> payload_{};
  /// [header | payload copy | ack slot].  One heap block so the request
  /// spans bound at construction stay valid when the wrapper is moved
  /// (vector storage keeps its address; an inline array would not).
  std::vector<std::byte> stage_;
  simmpi::Request data_{};
  simmpi::Request ack_{};
  std::uint32_t seq_ = 0;
  bool done_ = false;
  int retries_ = 0;
  double timeout_ = 0.0;
  double deadline_ = 0.0;
};

/// Receiver half of one reliable channel.  Driven by `finish_channels`.
class RelRecv {
 public:
  RelRecv() = default;
  /// `out` is the span the collective would otherwise receive into.
  RelRecv(const simmpi::Comm& comm, std::span<std::byte> out, int peer,
          int data_tag, int ack_tag);

  /// Arm the persistent data receive.  Call once per collective start.
  void start(simmpi::Context& ctx);

  bool done() const { return done_; }
  int peer() const { return data_.peer(); }
  simmpi::ChannelKey data_key() const { return data_.key(); }

  /// Consume one data message (parks if none is committed yet): stale
  /// duplicates and retransmit debris are discarded and the receive
  /// re-armed; the expected sequence is copied into the bound span,
  /// acknowledged, and already-committed debris drained.
  simmpi::Task<> pump(simmpi::Context& ctx);

 private:
  std::byte* ack_data() { return stage_.data() + stage_.size() - kRelHeaderBytes; }

  std::span<std::byte> out_{};
  /// [header | payload landing | ack slot]; same move-safety layout as
  /// RelSend::stage_.
  std::vector<std::byte> stage_;
  simmpi::Request data_{};
  simmpi::Request ack_{};
  std::uint32_t expected_ = 1;
  bool done_ = false;
};

/// Complete every channel of one collective wait: multiplex acks, data,
/// retransmit timers and debris draining across all of them (see the file
/// brief for why sequential finishing would deadlock).  Empty spans are
/// fine; plain (unwrapped) requests are the caller's business.
simmpi::Task<> finish_channels(simmpi::Context& ctx, const Reliability& rel,
                               std::span<RelRecv> recvs,
                               std::span<RelSend> sends);

}  // namespace mpix::impl
