/// \file reliable.cpp
/// \brief Stop-and-wait reliable channel wrappers (see reliable.hpp).

#include "mpix/reliable.hpp"

#include <cstring>
#include <string>

namespace mpix::impl {

using simmpi::Context;
using simmpi::Request;
using simmpi::SimError;
using simmpi::Task;

void validate_reliability(const Reliability& rel) {
  if (!(rel.timeout > 0.0))
    throw SimError("Reliability::timeout must be > 0, got " +
                   std::to_string(rel.timeout));
  if (!(rel.backoff >= 1.0))
    throw SimError("Reliability::backoff must be >= 1, got " +
                   std::to_string(rel.backoff));
  if (rel.max_retries < 1)
    throw SimError("Reliability::max_retries must be >= 1, got " +
                   std::to_string(rel.max_retries));
}

bool wrap_channel(const simmpi::Comm& comm, int peer, std::size_t bytes,
                  const Reliability& rel) {
  return rel.enabled && bytes > 0 &&
         comm.locality_of(peer) == simmpi::Locality::network;
}

// ---- RelSend --------------------------------------------------------

RelSend::RelSend(const simmpi::Comm& comm, std::span<const std::byte> payload,
                 int peer, int data_tag, int ack_tag)
    : payload_(payload), stage_(kRelHeaderBytes + payload.size() +
                                kRelHeaderBytes) {
  data_ = Request::send(
      comm, std::span<const std::byte>(stage_.data(), kRelHeaderBytes + payload.size()),
      peer, data_tag);
  ack_ = Request::recv(comm, std::span<std::byte>(ack_data(), kRelHeaderBytes),
                       peer, ack_tag);
}

void RelSend::start(Context& ctx) {
  ++seq_;
  done_ = false;
  retries_ = 0;
  std::memcpy(stage_.data(), &seq_, sizeof(seq_));
  if (!payload_.empty())
    std::memcpy(stage_.data() + kRelHeaderBytes, payload_.data(),
                payload_.size());
  data_.start(ctx);
  ack_.start(ctx);
}

Task<> RelSend::init(Context& ctx, const Reliability& rel) {
  co_await ctx.wait(data_);
  timeout_ = rel.timeout;
  deadline_ = ctx.now() + timeout_;
}

void RelSend::handle_ack(Context& ctx) {
  std::uint32_t acked = 0;
  std::memcpy(&acked, ack_data(), sizeof(acked));
  if (acked == seq_) {
    done_ = true;
    return;
  }
  if (acked > seq_)
    throw SimError("reliable send rank " + std::to_string(ctx.rank()) +
                   ": ack for future seq " + std::to_string(acked) +
                   " (current " + std::to_string(seq_) + ") from peer " +
                   std::to_string(data_.peer()));
  // Stale ack of an already-confirmed sequence (duplicated ack or a late
  // ack overtaken by a retransmit round): keep listening.
  ack_.start(ctx);
}

Task<> RelSend::poll(Context& ctx) {
  co_await ctx.wait(ack_);
  handle_ack(ctx);
}

Task<> RelSend::step_park(Context& ctx, const Reliability& rel) {
  const bool got = co_await ctx.wait_until(ack_, deadline_);
  if (got) {
    handle_ack(ctx);
    co_return;
  }
  if (++retries_ > rel.max_retries)
    throw SimError("reliable send rank " + std::to_string(ctx.rank()) +
                   ": no ack from peer " + std::to_string(data_.peer()) +
                   " tag " + std::to_string(data_.tag()) + " seq " +
                   std::to_string(seq_) + " after " +
                   std::to_string(rel.max_retries) + " retransmits");
  // Timed out: the ack receive stays armed; repost the data message.
  ctx.engine().note_retransmit(ctx.rank());
  data_.start(ctx);
  co_await ctx.wait(data_);
  timeout_ *= rel.backoff;
  deadline_ = ctx.now() + timeout_;
}

// ---- RelRecv --------------------------------------------------------

RelRecv::RelRecv(const simmpi::Comm& comm, std::span<std::byte> out, int peer,
                 int data_tag, int ack_tag)
    : out_(out),
      stage_(kRelHeaderBytes + out.size() + kRelHeaderBytes) {
  data_ = Request::recv(
      comm, std::span<std::byte>(stage_.data(), kRelHeaderBytes + out.size()),
      peer, data_tag);
  ack_ = Request::send(
      comm, std::span<const std::byte>(ack_data(), kRelHeaderBytes), peer,
      ack_tag);
  ack_.set_control(true);
}

void RelRecv::start(Context& ctx) {
  done_ = false;
  data_.start(ctx);
}

Task<> RelRecv::pump(Context& ctx) {
  co_await ctx.wait(data_);
  std::uint32_t seq = 0;
  std::memcpy(&seq, stage_.data(), sizeof(seq));
  if (seq > expected_)
    throw SimError("reliable recv rank " + std::to_string(ctx.rank()) +
                   ": got seq " + std::to_string(seq) + " expecting " +
                   std::to_string(expected_) + " from peer " +
                   std::to_string(data_.peer()) +
                   " (message lost without reliability retransmit?)");
  if (seq < expected_) {
    // Stale duplicate or retransmit of an already-acknowledged sequence.
    data_.start(ctx);
    co_return;
  }
  if (!out_.empty())
    std::memcpy(out_.data(), stage_.data() + kRelHeaderBytes, out_.size());
  std::memcpy(ack_data(), &expected_, sizeof(expected_));
  ack_.start(ctx);
  co_await ctx.wait(ack_);
  ++expected_;
  done_ = true;
  // Drain retransmit/duplicate debris already committed for the sequence
  // just acknowledged: retransmissions fire only under global quiescence,
  // and once our ack commits the sender never goes quiescent on this
  // sequence again, so every copy of it is committed by now.
  while (ctx.engine().has_message(data_.key())) {
    data_.start(ctx);
    co_await ctx.wait(data_);
    std::uint32_t s = 0;
    std::memcpy(&s, stage_.data(), sizeof(s));
    if (s >= expected_)
      throw SimError("reliable recv rank " + std::to_string(ctx.rank()) +
                     ": drained seq " + std::to_string(s) +
                     " >= next expected " + std::to_string(expected_) +
                     " from peer " + std::to_string(data_.peer()));
  }
}

// ---- driver ---------------------------------------------------------

Task<> finish_channels(Context& ctx, const Reliability& rel,
                       std::span<RelRecv> recvs, std::span<RelSend> sends) {
  for (auto& s : sends) co_await s.init(ctx, rel);
  for (;;) {
    // Consume everything already committed, in deterministic (receive
    // order, then send order) sequence — the committed state a resumption
    // observes is a pure function of the schedule, so this sweep is as
    // width-free as the rest of the engine.
    bool open = false;
    bool progress = false;
    for (auto& r : recvs) {
      while (!r.done() && ctx.engine().has_message(r.data_key())) {
        co_await r.pump(ctx);
        progress = true;
      }
      open = open || !r.done();
    }
    for (auto& s : sends) {
      if (!s.done() && ctx.engine().has_message(s.ack_key())) {
        co_await s.poll(ctx);
        progress = true;
      }
      open = open || !s.done();
    }
    if (!open) co_return;
    if (progress) continue;
    // Nothing consumable.  Park on the earliest retransmit deadline this
    // rank owes; with no send open, block on the first open receive — its
    // sender still owes an ack-timer of its own, and the retransmission
    // it fires wakes us.
    RelSend* due = nullptr;
    for (auto& s : sends)
      if (!s.done() && (due == nullptr || s.deadline() < due->deadline()))
        due = &s;
    if (due != nullptr) {
      co_await due->step_park(ctx, rel);
    } else {
      for (auto& r : recvs) {
        if (!r.done()) {
          co_await r.pump(ctx);
          break;
        }
      }
    }
  }
}

}  // namespace mpix::impl
