#pragma once
/// \file detail.hpp
/// \brief Pure (communication-free) helpers behind the locality-aware
/// neighbor collectives: argument validation, traffic metadata
/// serialization, leader load balancing, and the canonical layout of
/// inter-region messages.  Kept separate so the logic is unit-testable
/// without the simulator.

#include <span>
#include <utility>
#include <vector>

#include "mpix/neighbor.hpp"

namespace mpix::detail {

/// Validate counts/displacements against the graph and buffers (in values,
/// scaled by `args.element_size`); with `need_idx`, also require
/// send_idx/recv_idx covering the buffers.
void validate_args(const simmpi::DistGraph& graph, const AlltoallvArgs& args,
                   bool need_idx);

/// Reject duplicate entries in the graph's destination or source lists.
/// The standard method delivers duplicates deterministically (all segments
/// toward one peer share a tag; the engine's phase commit keeps each
/// (src, dst, tag) channel FIFO in program order), but the locality
/// methods key routing tables by peer rank, which would collapse
/// duplicate edges and misroute their segments — so plan construction
/// refuses them up front.  Throws SimError naming the duplicated rank.
void reject_duplicate_edges(const simmpi::DistGraph& graph);

/// Fingerprint of a communicator's membership and the machine's region
/// layout over it — what a LocalityPlan's comm-local peer ranks are only
/// valid against (see LocalityPlan::binding_fingerprint).  Mixes the
/// switch-hierarchy radixes (not the tapers, which only scale costs), so
/// a plan's per-tier link counters cannot be reused on a different tree
/// shape but survive a taper sweep.
std::uint64_t binding_fingerprint(const simmpi::Comm& comm,
                                  const simmpi::Machine& machine);

/// Accumulate `stats.link_msgs` / `link_values` for one network message
/// from global rank `gsrc` to `gdst`: one count per link tier the pair's
/// LCA path crosses.  No-op on flat machines and for pairs under one leaf
/// switch (including same-node pairs), mirroring what the engine charges.
void count_link_crossing(const simmpi::Machine& machine, int gsrc, int gdst,
                         long values, NeighborStats& stats);

/// Validate that `args` carries the exact pattern `plan` was built for
/// (adjacency, counts, displacements, and — for dedup plans — the index
/// annotations the routing depends on), and that the graph's communicator
/// and machine match the plan's binding fingerprint (skipped when the plan
/// carries none).  Throws SimError on any mismatch.
void validate_plan_args(const LocalityPlan& plan,
                        const simmpi::DistGraph& graph,
                        const AlltoallvArgs& args);

/// One directed traffic edge between comm-local ranks, as shared inside a
/// region during setup.
struct Edge {
  int src = -1;
  int dst = -1;
  int count = 0;
  std::vector<gidx> gids;  ///< per-value indices (dedup mode only)

  friend bool operator<(const Edge& a, const Edge& b) {
    return a.src != b.src ? a.src < b.src : a.dst < b.dst;
  }
};

/// Serialize this rank's out/in edges (graph adjacency + counts + indices).
std::vector<long long> serialize_edges(const simmpi::DistGraph& graph,
                                       const AlltoallvArgs& args, bool dedup);

/// Parse concatenated rank blobs back into edge lists.  `out_edges` gets
/// one entry per (publisher, destination), `in_edges` one per (source,
/// publisher).
void parse_edges(std::span<const long long> data, bool dedup,
                 std::vector<Edge>& out_edges, std::vector<Edge>& in_edges);

/// Assign each region (loads given as (region id, total values), sorted by
/// region id) to one of `nlocal` local cores.  Returns core indices aligned
/// with `loads`.  `lpt` = longest-processing-time balancing; otherwise
/// round-robin.  Deterministic, so every region member computes the same
/// assignment.
std::vector<int> assign_leaders(std::span<const std::pair<int, long>> loads,
                                int nlocal, bool lpt);

/// Canonical composition of the single inter-region message of one region
/// pair, derived from the pair's edge set (sorted ascending by (src, dst)).
/// Both the sending and the receiving region compute this independently
/// from their own copy of the metadata and must agree; hence everything is
/// deterministic in the edge set.
struct PairLayout {
  long total = 0;  ///< values crossing the region boundary

  /// Partial (no dedup): one contiguous segment per edge, in edge order.
  struct Segment {
    int edge_index;  ///< into the pair's (sorted) edge vector
    long offset;     ///< value offset within the message
  };
  std::vector<Segment> segments;

  /// Dedup: per source rank, sorted unique gids at a block offset.
  struct SrcBlock {
    int src;
    long offset;
    std::vector<gidx> gids;  ///< sorted ascending, unique
  };
  std::vector<SrcBlock> src_blocks;

  /// Dedup: value offset of `gid` within the message for source `src`.
  long find(int src, gidx gid) const;
};

PairLayout pair_layout(std::span<const Edge* const> edges, bool dedup);

/// Sorted unique gids of one edge's value list.
std::vector<gidx> unique_sorted(std::span<const gidx> gids);

}  // namespace mpix::detail
