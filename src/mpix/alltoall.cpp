/// \file alltoall.cpp
/// \brief Dense persistent alltoall{,v}: method dispatch and the
/// standard / node_aggregated implementations.
///
/// The dense pattern is the complete adjacency, so `standard` and
/// `node_aggregated` are the existing neighbor building blocks applied to
/// an iota graph: `standard` wraps `impl::make_standard` (one message per
/// rank pair), `node_aggregated` runs `impl::build_locality_plan` /
/// `impl::bind_locality` (gather to per-region leaders, one inter-region
/// message per directed region pair, scatter on arrival) — exactly the
/// two-stage PPN-aware aggregation of the dense reference implementation.
/// Only `bruck` needs a new engine (bruck.cpp).

#include "mpix/alltoall.hpp"

#include <numeric>
#include <string>
#include <utility>

#include "mpix/impl.hpp"

namespace mpix {

using simmpi::Context;
using simmpi::SimError;
using simmpi::Task;

const char* to_string(AlltoallMethod m) {
  switch (m) {
    case AlltoallMethod::standard: return "standard";
    case AlltoallMethod::node_aggregated: return "node_aggregated";
    case AlltoallMethod::bruck: return "bruck";
  }
  throw SimError("mpix::to_string: invalid AlltoallMethod");
}

namespace {

/// The dense adjacency: every rank is both source and destination (self
/// included), in comm-rank order — the neighbor machinery then applies
/// unchanged, with counts arrays indexed by comm rank.
simmpi::DistGraph dense_graph(const simmpi::Comm& comm) {
  simmpi::DistGraph g;
  g.comm = comm;
  g.destinations.resize(static_cast<std::size_t>(comm.size()));
  std::iota(g.destinations.begin(), g.destinations.end(), 0);
  g.sources = g.destinations;
  return g;
}

/// Renames an inner collective so stats and measurement report the dense
/// method name instead of the neighbor building block it reuses.
class Renamed final : public NeighborAlltoallv {
 public:
  Renamed(std::unique_ptr<NeighborAlltoallv> inner, const char* name)
      : inner_(std::move(inner)), name_(name) {}

  Task<> start(Context& ctx) override { return inner_->start(ctx); }
  Task<> wait(Context& ctx) override { return inner_->wait(ctx); }
  NeighborStats stats() const override { return inner_->stats(); }
  const char* name() const override { return name_; }
  std::shared_ptr<const LocalityPlan> plan() const override {
    return inner_->plan();
  }
  std::shared_ptr<const PlanBase> plan_base() const override {
    return inner_->plan_base();
  }

 private:
  std::unique_ptr<NeighborAlltoallv> inner_;
  const char* name_;
};

std::shared_ptr<const LocalityPlan> require_locality_plan(const PlanBase* p) {
  auto* lp = dynamic_cast<const LocalityPlan*>(p);
  if (!lp)
    throw SimError(
        "alltoallv_init: Options::plan is not a LocalityPlan (wrong plan "
        "kind for AlltoallMethod::node_aggregated)");
  if (lp->dedup)
    throw SimError(
        "alltoallv_init: node_aggregated does not take a dedup plan");
  return lp->shared_from_this();
}

std::shared_ptr<const BruckPlan> require_bruck_plan(const PlanBase* p) {
  auto* bp = dynamic_cast<const BruckPlan*>(p);
  if (!bp)
    throw SimError(
        "alltoallv_init: Options::plan is not a BruckPlan (wrong plan kind "
        "for AlltoallMethod::bruck)");
  return bp->shared_from_this();
}

/// The dispatch coroutine.  Only invoked through the plain public
/// wrappers below (see impl.hpp on why).
Task<std::unique_ptr<NeighborAlltoallv>> dense_init_impl(
    Context& ctx, simmpi::Comm comm, AlltoallvArgs args, AlltoallMethod method,
    Options opts) {
  const simmpi::DistGraph graph = dense_graph(comm);
  switch (method) {
    case AlltoallMethod::standard: {
      if (opts.plan)
        throw SimError("alltoallv_init: AlltoallMethod::standard takes no plan");
      co_return impl::make_standard(ctx, graph, std::move(args), opts);
    }
    case AlltoallMethod::node_aggregated: {
      std::shared_ptr<const LocalityPlan> plan;
      if (opts.plan) {
        plan = require_locality_plan(opts.plan);
      } else {
        plan = co_await impl::build_locality_plan(ctx, graph, args,
                                                  Method::locality, opts);
      }
      co_return std::make_unique<Renamed>(
          impl::bind_locality(ctx, graph, std::move(args), std::move(plan),
                              opts),
          "node_aggregated");
    }
    case AlltoallMethod::bruck: {
      std::shared_ptr<const BruckPlan> plan;
      if (opts.plan) {
        plan = require_bruck_plan(opts.plan);
      } else {
        plan = co_await impl::build_bruck_plan(ctx, comm, args, opts);
      }
      co_return impl::bind_bruck(ctx, std::move(comm), std::move(args),
                                 std::move(plan), opts);
    }
  }
  throw SimError("alltoallv_init: invalid AlltoallMethod");
}

Task<std::shared_ptr<const PlanBase>> dense_plan_impl(Context& ctx,
                                                      simmpi::Comm comm,
                                                      AlltoallvArgs args,
                                                      AlltoallMethod method,
                                                      Options opts) {
  if (method == AlltoallMethod::node_aggregated) {
    const simmpi::DistGraph graph = dense_graph(comm);
    co_return co_await impl::build_locality_plan(ctx, graph, std::move(args),
                                                 Method::locality,
                                                 std::move(opts));
  }
  if (method == AlltoallMethod::bruck)
    co_return co_await impl::build_bruck_plan(ctx, std::move(comm),
                                              std::move(args),
                                              std::move(opts));
  throw SimError("make_alltoall_plan: AlltoallMethod::standard has no plan");
}

}  // namespace

simmpi::Task<std::unique_ptr<NeighborAlltoallv>> alltoallv_init(
    simmpi::Context& ctx, simmpi::Comm comm, AlltoallvArgs args,
    AlltoallMethod method, Options opts) {
  return dense_init_impl(ctx, std::move(comm), std::move(args), method,
                         std::move(opts));
}

simmpi::Task<std::unique_ptr<NeighborAlltoallv>> alltoall_init(
    simmpi::Context& ctx, simmpi::Comm comm,
    std::span<const std::byte> sendbuf, std::span<std::byte> recvbuf,
    int count, std::size_t element_size, AlltoallMethod method, Options opts) {
  const int p = comm.size();
  if (count < 0) throw SimError("alltoall_init: negative count");
  if (element_size == 0) throw SimError("alltoall_init: element_size is zero");
  const std::size_t need = static_cast<std::size_t>(p) *
                           static_cast<std::size_t>(count) * element_size;
  if (sendbuf.size() != need)
    throw SimError("alltoall_init: sendbuf holds " +
                   std::to_string(sendbuf.size()) + " bytes, expected " +
                   std::to_string(need) + " (nranks * count * element_size)");
  if (recvbuf.size() != need)
    throw SimError("alltoall_init: recvbuf holds " +
                   std::to_string(recvbuf.size()) + " bytes, expected " +
                   std::to_string(need) + " (nranks * count * element_size)");

  AlltoallvArgs args;
  args.sendbuf = sendbuf;
  args.recvbuf = recvbuf;
  args.element_size = element_size;
  args.sendcounts.assign(static_cast<std::size_t>(p), count);
  args.sdispls.resize(static_cast<std::size_t>(p));
  for (int i = 0; i < p; ++i) args.sdispls[i] = i * count;
  args.recvcounts = args.sendcounts;
  args.rdispls = args.sdispls;
  return dense_init_impl(ctx, std::move(comm), std::move(args), method,
                         std::move(opts));
}

simmpi::Task<std::shared_ptr<const PlanBase>> make_alltoall_plan(
    simmpi::Context& ctx, simmpi::Comm comm, const AlltoallvArgs& args,
    AlltoallMethod method, Options opts) {
  return dense_plan_impl(ctx, std::move(comm), args, method, std::move(opts));
}

}  // namespace mpix
