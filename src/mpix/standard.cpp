/// \file standard.cpp
/// \brief Standard persistent neighbor alltoallv: p2p wrap (Algorithms 1-3).

#include "mpix/detail.hpp"
#include "mpix/impl.hpp"
#include "mpix/reliable.hpp"

namespace mpix {

namespace {

using simmpi::Context;
using simmpi::Request;
using simmpi::Task;

class StandardNeighbor final : public NeighborAlltoallv {
 public:
  StandardNeighbor(Context& ctx, const simmpi::DistGraph& graph,
                   AlltoallvArgs args, const Options& opts)
      : args_(std::move(args)), rel_(opts.reliability) {
    detail::validate_args(graph, args_, /*need_idx=*/false);
    if (rel_.enabled) impl::validate_reliability(rel_);
    const simmpi::Comm& comm = graph.comm;
    const std::size_t es = args_.element_size;
    const int tag = ctx.engine().next_coll_tag(comm);
    // Ack traffic gets its own tag, minted unconditionally when the
    // feature is on so every rank's tag sequence stays uniform.
    const int ack_tag =
        rel_.enabled ? ctx.engine().next_coll_tag(comm) : -1;
    const auto& machine = ctx.engine().machine();
    const int my_region = machine.region_of(comm.global(comm.rank()));

    sends_.reserve(graph.destinations.size());
    for (std::size_t i = 0; i < graph.destinations.size(); ++i) {
      const int dst = graph.destinations[i];
      auto seg =
          args_.sendbuf.subspan(args_.sdispls[i] * es, args_.sendcounts[i] * es);
      if (impl::wrap_channel(comm, dst, seg.size(), rel_))
        rel_sends_.push_back(impl::RelSend(comm, seg, dst, tag, ack_tag));
      else
        sends_.push_back(Request::send(comm, seg, dst, tag));
      const bool global = machine.region_of(comm.global(dst)) != my_region;
      if (global) {
        ++stats_.global_msgs;
        stats_.global_values += args_.sendcounts[i];
        stats_.max_global_msg_values = std::max(
            stats_.max_global_msg_values,
            static_cast<long>(args_.sendcounts[i]));
        detail::count_link_crossing(machine, comm.global(comm.rank()),
                                    comm.global(dst), args_.sendcounts[i],
                                    stats_);
      } else {
        ++stats_.local_msgs;
        stats_.local_values += args_.sendcounts[i];
      }
    }
    recvs_.reserve(graph.sources.size());
    for (std::size_t i = 0; i < graph.sources.size(); ++i) {
      const int src = graph.sources[i];
      auto seg =
          args_.recvbuf.subspan(args_.rdispls[i] * es, args_.recvcounts[i] * es);
      if (impl::wrap_channel(comm, src, seg.size(), rel_))
        rel_recvs_.push_back(impl::RelRecv(comm, seg, src, tag, ack_tag));
      else
        recvs_.push_back(Request::recv(comm, seg, src, tag));
    }
  }

  Task<> start(Context& ctx) override {
    for (auto& s : sends_) s.start(ctx);
    for (auto& s : rel_sends_) s.start(ctx);
    for (auto& r : recvs_) r.start(ctx);
    for (auto& r : rel_recvs_) r.start(ctx);
    co_return;
  }

  Task<> wait(Context& ctx) override {
    for (auto& s : sends_) co_await ctx.wait(s);
    for (auto& r : recvs_) co_await ctx.wait(r);
    // Multiplexed: sequential per-channel finishing can deadlock across
    // ranks on dropped messages (see reliable.hpp).
    co_await impl::finish_channels(ctx, rel_, rel_recvs_, rel_sends_);
  }

  NeighborStats stats() const override { return stats_; }
  const char* name() const override { return "standard"; }

 private:
  AlltoallvArgs args_;
  Reliability rel_;
  std::vector<Request> sends_;
  std::vector<Request> recvs_;
  std::vector<impl::RelSend> rel_sends_;
  std::vector<impl::RelRecv> rel_recvs_;
  NeighborStats stats_;
};

}  // namespace

std::unique_ptr<NeighborAlltoallv> impl::make_standard(
    Context& ctx, const simmpi::DistGraph& graph, AlltoallvArgs args,
    const Options& opts) {
  return std::make_unique<StandardNeighbor>(ctx, graph, std::move(args), opts);
}

}  // namespace mpix
