/// \file standard.cpp
/// \brief Standard persistent neighbor alltoallv: p2p wrap (Algorithms 1-3).

#include "mpix/detail.hpp"
#include "mpix/impl.hpp"

namespace mpix {

namespace {

using simmpi::Context;
using simmpi::Request;
using simmpi::Task;

class StandardNeighbor final : public NeighborAlltoallv {
 public:
  StandardNeighbor(Context& ctx, const simmpi::DistGraph& graph,
                   AlltoallvArgs args)
      : args_(std::move(args)) {
    detail::validate_args(graph, args_, /*need_idx=*/false);
    const simmpi::Comm& comm = graph.comm;
    const std::size_t es = args_.element_size;
    const int tag = ctx.engine().next_coll_tag(comm);
    const auto& machine = ctx.engine().machine();
    const int my_region = machine.region_of(comm.global(comm.rank()));

    sends_.reserve(graph.destinations.size());
    for (std::size_t i = 0; i < graph.destinations.size(); ++i) {
      const int dst = graph.destinations[i];
      auto seg =
          args_.sendbuf.subspan(args_.sdispls[i] * es, args_.sendcounts[i] * es);
      sends_.push_back(Request::send(comm, seg, dst, tag));
      const bool global = machine.region_of(comm.global(dst)) != my_region;
      if (global) {
        ++stats_.global_msgs;
        stats_.global_values += args_.sendcounts[i];
        stats_.max_global_msg_values = std::max(
            stats_.max_global_msg_values,
            static_cast<long>(args_.sendcounts[i]));
        detail::count_link_crossing(machine, comm.global(comm.rank()),
                                    comm.global(dst), args_.sendcounts[i],
                                    stats_);
      } else {
        ++stats_.local_msgs;
        stats_.local_values += args_.sendcounts[i];
      }
    }
    recvs_.reserve(graph.sources.size());
    for (std::size_t i = 0; i < graph.sources.size(); ++i) {
      auto seg =
          args_.recvbuf.subspan(args_.rdispls[i] * es, args_.recvcounts[i] * es);
      recvs_.push_back(Request::recv(comm, seg, graph.sources[i], tag));
    }
  }

  Task<> start(Context& ctx) override {
    for (auto& s : sends_) s.start(ctx);
    for (auto& r : recvs_) r.start(ctx);
    co_return;
  }

  Task<> wait(Context& ctx) override {
    for (auto& s : sends_) co_await ctx.wait(s);
    for (auto& r : recvs_) co_await ctx.wait(r);
  }

  NeighborStats stats() const override { return stats_; }
  const char* name() const override { return "standard"; }

 private:
  AlltoallvArgs args_;
  std::vector<Request> sends_;
  std::vector<Request> recvs_;
  NeighborStats stats_;
};

}  // namespace

std::unique_ptr<NeighborAlltoallv> impl::make_standard(
    Context& ctx, const simmpi::DistGraph& graph, AlltoallvArgs args) {
  return std::make_unique<StandardNeighbor>(ctx, graph, std::move(args));
}

}  // namespace mpix
