#pragma once
/// \file alltoall.hpp
/// \brief Dense locality-aware persistent `alltoall{,v}` collectives.
///
/// The paper's aggregation idea applied to the *dense* personalized
/// exchange (`MPI_Alltoall{,v}`), where every rank holds one segment for
/// every other rank.  One entry point, `alltoallv_init`, dispatches over
/// `AlltoallMethod`:
///
///  * `AlltoallMethod::standard` — pairwise persistent point-to-point, one
///    message per (rank, rank) pair: P-1 inter-rank messages per rank,
///    O(P^2) network messages total;
///  * `AlltoallMethod::node_aggregated` — the two-stage PPN-aware scheme
///    of MPI Advance's `PMPI_Alltoallv`: traffic toward each remote region
///    is gathered onto one local leader per destination region, crosses
///    the region boundary as a single message per directed region pair
///    (R·(R-1) network messages), and is scattered locally on arrival;
///  * `AlltoallMethod::bruck` — locality-aware log-P Bruck, the algorithm
///    the reference repository left as a TODO: every rank first funnels
///    its remote-bound data to its region leader (intra-region), then the
///    R region leaders run ⌈log2 R⌉ Bruck rounds in which each region
///    forwards *one* aggregated message per round (R·⌈log2 R⌉ network
///    messages), and finally each leader scatters the arrived data to its
///    region members.  Minimizes message count at the cost of forwarding
///    values through up to ⌈log2 R⌉-1 intermediate regions.
///
/// Arguments reuse the byte-generic `AlltoallvArgs` of the neighbor
/// collectives with one difference: counts/displacements carry one entry
/// per *communicator rank* (the dense adjacency), not per neighbor.  The
/// uniform-count `alltoall_init` convenience wrapper builds them.
///
/// Lifecycle, plan split and statistics mirror the neighbor collectives:
/// init once (collective for the aggregated methods unless a plan is
/// reused through `Options::plan`), then `start`/`wait` per iteration;
/// `NeighborAlltoallv::stats()` counts intra-region ("local") and
/// inter-region ("global") messages on the sender side, so
/// `verify_stats()` and the measurement harness work unchanged.
/// `node_aggregated` reuses the neighbor `LocalityPlan`; `bruck` has its
/// own `BruckPlan`.  Both derive from `PlanBase`, cache like neighbor
/// plans (see harness::PlanCache) and feed back through `Options::plan`.

#include <memory>
#include <span>
#include <vector>

#include "mpix/neighbor.hpp"

namespace mpix {

/// The three dense implementations, selected at init.
enum class AlltoallMethod {
  standard,         ///< pairwise persistent p2p (O(P^2) messages)
  node_aggregated,  ///< two-stage PPN-aware aggregation (R·(R-1))
  bruck,            ///< locality-aware log-P Bruck (R·⌈log2 R⌉)
};

inline constexpr AlltoallMethod kAllAlltoallMethods[] = {
    AlltoallMethod::standard, AlltoallMethod::node_aggregated,
    AlltoallMethod::bruck};

/// Whether the method performs collective setup (and therefore builds /
/// accepts a reusable plan through `Options::plan`).
constexpr bool alltoall_uses_plan(AlltoallMethod m) {
  return m != AlltoallMethod::standard;
}

/// Human-readable method name ("standard", "node_aggregated", "bruck").
const char* to_string(AlltoallMethod m);

/// The reusable, buffer-free half of `AlltoallMethod::bruck` init: the
/// complete rotation schedule of this rank — its region's ⌈log2 R⌉ Bruck
/// rounds resolved into per-round peers, message sizes and value-run copy
/// lists — plus the intra-region fill/deliver routing.  Built
/// collectively (region metadata allgather + one comm-wide exchange of
/// per-region traffic totals); binding buffers to it is purely local.
/// All offsets are in *values*; binding scales by `element_size`.  Like
/// LocalityPlan, instances are immutable and shared-ptr-owned.
struct BruckPlan : PlanBase, std::enable_shared_from_this<BruckPlan> {
  double setup_compute_per_word = 1.5e-9;  ///< from the Options at build

  /// See LocalityPlan::binding_fingerprint (0 = unchecked).
  std::uint64_t binding_fingerprint = 0;

  /// The dense pattern the plan was built for (one entry per comm rank).
  std::vector<int> sendcounts, sdispls, recvcounts, rdispls;

  int regions = 0;  ///< R: regions spanned by the communicator

  /// A contiguous value copy: `len` values from position `src` of the
  /// source array to position `dst` of the destination array.
  struct Run {
    long src = 0;
    long dst = 0;
    long len = 0;
  };

  /// Intra-region traffic: direct user-buffer p2p, as in the neighbor
  /// locality plan.
  std::vector<LocalityPlan::DirectMsg> l_sends, l_recvs;

  int leader = -1;        ///< comm-local rank of my region's leader
  bool is_leader = false;

  // -- member side (every rank of a multi-rank region, incl. the leader
  //    for its self-copies) --------------------------------------------
  std::vector<Run> fill_gather;  ///< sendbuf -> fill message (to leader)
  long fill_values = 0;
  std::vector<Run> from_leader;  ///< deliver message -> recvbuf
  long from_leader_values = 0;

  // -- leader side ------------------------------------------------------
  /// One intra-region staged message: `runs` place (fill) or gather
  /// (deliver) `values` message values against the resident buffer.
  struct Place {
    int peer = -1;  ///< comm-local member rank
    long values = 0;
    std::vector<Run> runs;
  };
  std::vector<Place> fill_recvs;  ///< per non-leader member: msg -> resident
  std::vector<Run> fill_self;     ///< own sendbuf -> resident

  /// One Bruck round of my region: ship `gather`ed resident values to the
  /// next region, retain `keep`, splice the incoming message via `merge`.
  /// gather/keep read the current resident buffer; keep/merge write the
  /// next one (ping-pong).
  struct Round {
    int send_peer = -1, recv_peer = -1;  ///< comm-local leader ranks
    long send_values = 0, recv_values = 0;
    std::vector<Run> gather;  ///< resident(cur) -> round message
    std::vector<Run> keep;    ///< resident(cur) -> resident(next)
    std::vector<Run> merge;   ///< round recv message -> resident(next)
  };
  std::vector<Round> rounds;

  std::vector<Place> delivers;    ///< per non-leader member: resident -> msg
  std::vector<Run> deliver_self;  ///< resident -> own recvbuf

  long resident_values = 0;  ///< resident buffer size (max over epochs)
  long round_send_max = 0;   ///< largest per-round outgoing message
  long round_recv_max = 0;   ///< largest per-round incoming message

  NeighborStats stats;  ///< fixed at plan time (independent of payload)
};

/// Create a persistent dense all-to-all-v (the dense analogue of
/// `neighbor_alltoallv_init`).  Counts/displacements must carry one entry
/// per rank of `comm`, in comm-rank order; self traffic (entry
/// `comm.rank()`) is delivered like any other segment.  Collective over
/// `comm` for the aggregated methods unless `opts.plan` is given
/// (`node_aggregated` takes a LocalityPlan, `bruck` a BruckPlan — feed
/// back `NeighborAlltoallv::plan_base()`); `standard` never communicates
/// during init.
simmpi::Task<std::unique_ptr<NeighborAlltoallv>> alltoallv_init(
    simmpi::Context& ctx, simmpi::Comm comm, AlltoallvArgs args,
    AlltoallMethod method = AlltoallMethod::standard, Options opts = {});

/// Uniform-count convenience wrapper (MPI_Alltoall): every rank exchanges
/// `count` values of `element_size` bytes with every rank.  `sendbuf` /
/// `recvbuf` must hold exactly `comm.size() * count` values; segment i
/// (for rank i) starts at value `i * count`.
simmpi::Task<std::unique_ptr<NeighborAlltoallv>> alltoall_init(
    simmpi::Context& ctx, simmpi::Comm comm,
    std::span<const std::byte> sendbuf, std::span<std::byte> recvbuf,
    int count, std::size_t element_size,
    AlltoallMethod method = AlltoallMethod::standard, Options opts = {});

/// Build just the reusable plan for a dense pattern (collective; all
/// setup communication happens here).  Returns a LocalityPlan for
/// `node_aggregated`, a BruckPlan for `bruck`; throws for `standard`,
/// which has no plan.  `args` payload spans are never read.
simmpi::Task<std::shared_ptr<const PlanBase>> make_alltoall_plan(
    simmpi::Context& ctx, simmpi::Comm comm, const AlltoallvArgs& args,
    AlltoallMethod method, Options opts = {});

/// Typed-argument overloads, normalizing the wrapper to the byte-based
/// core inside a plain (non-coroutine) function (see the g++ 12 warning
/// on the neighbor typed overloads; the same idiom applies here).
template <class T>
simmpi::Task<std::unique_ptr<NeighborAlltoallv>> alltoallv_init(
    simmpi::Context& ctx, simmpi::Comm comm, const AlltoallvArgsT<T>& args,
    AlltoallMethod method = AlltoallMethod::standard, Options opts = {}) {
  AlltoallvArgs bytes = args;
  return alltoallv_init(ctx, std::move(comm), std::move(bytes), method,
                        std::move(opts));
}

template <class T>
simmpi::Task<std::unique_ptr<NeighborAlltoallv>> alltoall_init(
    simmpi::Context& ctx, simmpi::Comm comm, std::span<const T> sendbuf,
    std::span<T> recvbuf, int count,
    AlltoallMethod method = AlltoallMethod::standard, Options opts = {}) {
  return alltoall_init(ctx, std::move(comm), std::as_bytes(sendbuf),
                       std::as_writable_bytes(recvbuf), count, sizeof(T),
                       method, std::move(opts));
}

}  // namespace mpix
