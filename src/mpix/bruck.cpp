/// \file bruck.cpp
/// \brief Locality-aware log-P Bruck dense alltoallv
/// (`AlltoallMethod::bruck`) — the algorithm the reference repository
/// left as a TODO.
///
/// Regions take the role Bruck's algorithm gives to ranks.  Intra-region
/// traffic never enters the rotation (direct p2p, like the neighbor
/// locality method's l phase).  Remote-bound traffic of the whole region
/// is aggregated on one leader and rotated region-by-region:
///
///   fill    — each member ships all its remote-bound values to the
///             region leader in one message; the leader assembles them
///             into a "resident" buffer ordered by distance d = 1..R-1
///             toward destination region (g + d) mod R;
///   rounds  — ⌈log2 R⌉ Bruck rounds: in round k each leader forwards,
///             in one message to the leader of region (g + 2^k) mod R,
///             every resident chunk whose remaining distance has bit k
///             set.  Chunks are never split; arriving chunks either join
///             the resident set at distance d - 2^k or, at distance 0,
///             the final set.  Each region therefore sends exactly one
///             inter-region message per round: R·⌈log2 R⌉ total, versus
///             R·(R-1) for node_aggregated and O(P^2) for standard;
///   deliver — the leader scatters the R-1 arrived chunks to its members
///             (one message each) and into its own recvbuf.
///
/// Everything is precomputed into a `BruckPlan` of value-run copy lists.
/// Determinism: the rotation schedule is a pure function of the
/// region-level traffic matrix T (exchanged collectively, identical on
/// every rank), chunks are enumerated in fixed (distance, arrival) order,
/// and all four channels use collective tags minted in the same order on
/// every rank — so payload movement is identical at every simulator
/// width.  Every rank replays the full R-region rotation symbolically
/// during plan construction; only its own region's gather/keep/merge runs
/// are recorded.

#include <algorithm>
#include <cstring>
#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include "mpix/detail.hpp"
#include "mpix/impl.hpp"
#include "mpix/reliable.hpp"

namespace mpix {

namespace coll = simmpi::coll;

namespace {

using simmpi::Comm;
using simmpi::Context;
using simmpi::Request;
using simmpi::SimError;
using simmpi::Task;

simmpi::DistGraph dense_graph_of(const Comm& comm) {
  simmpi::DistGraph g;
  g.comm = comm;
  g.destinations.resize(static_cast<std::size_t>(comm.size()));
  std::iota(g.destinations.begin(), g.destinations.end(), 0);
  g.sources = g.destinations;
  return g;
}

/// Apply value-run copies, scaling by the element size.
void copy_runs(std::span<const std::byte> from, std::span<std::byte> to,
               std::span<const BruckPlan::Run> runs, std::size_t es) {
  for (const auto& r : runs)
    std::memcpy(to.data() + static_cast<std::size_t>(r.dst) * es,
                from.data() + static_cast<std::size_t>(r.src) * es,
                static_cast<std::size_t>(r.len) * es);
}

/// Append a run, coalescing with the previous one when contiguous.
void push_run(std::vector<BruckPlan::Run>& v, long long src, long long dst,
              long long len) {
  if (len <= 0) return;
  if (!v.empty() && v.back().src + v.back().len == src &&
      v.back().dst + v.back().len == dst) {
    v.back().len += len;
    return;
  }
  v.push_back({static_cast<long>(src), static_cast<long>(dst),
               static_cast<long>(len)});
}

struct BruckAlltoallv final : NeighborAlltoallv {
  AlltoallvArgs args;
  std::shared_ptr<const BruckPlan> routing;
  Reliability rel;

  std::vector<Request> l_sends, l_recvs;  // direct user-buffer p2p

  // member side (non-leader of a multi-rank region, R > 1)
  bool has_fill = false, has_deliver = false;
  std::vector<std::byte> fill_buf, deliver_buf;
  Request fill_req, deliver_req;

  // leader side
  struct Staged {
    std::span<const BruckPlan::Run> runs;
    std::vector<std::byte> buf;
    Request req;
  };
  std::vector<Staged> fill_recvs;     // per member: msg -> resident
  std::vector<Staged> deliver_sends;  // per member: resident -> msg
  std::vector<std::byte> resident_a, resident_b;
  std::vector<std::byte> round_send, round_recv;
  // Rotation messages cross region (usually network) boundaries, so each
  // direction of a round gets the reliable wrap independently when
  // Options::reliability is on (leaders of adjacent regions can share a
  // node, in which case that direction stays plain).
  struct RoundChan {
    bool send_wrapped = false, recv_wrapped = false;
    Request send, recv;
    impl::RelSend rel_send;
    impl::RelRecv rel_recv;
  };
  std::vector<RoundChan> round_chans;

  Task<> start(Context& ctx) override {
    const std::size_t es = args.element_size;
    // Intra-region traffic goes out immediately.
    for (auto& r : l_sends) r.start(ctx);
    for (auto& r : l_recvs) r.start(ctx);
    if (has_fill) {
      copy_runs(args.sendbuf, fill_buf, routing->fill_gather, es);
      fill_req.start(ctx);
    }
    if (has_deliver) deliver_req.start(ctx);
    if (routing->is_leader && routing->regions > 1) {
      // Assemble the resident buffer: members' remote-bound values plus
      // our own, ordered by distance toward their destination region.
      for (auto& f : fill_recvs) f.req.start(ctx);
      for (auto& f : fill_recvs) {
        co_await ctx.wait(f.req);
        copy_runs(f.buf, resident_a, f.runs, es);
      }
      copy_runs(args.sendbuf, resident_a, routing->fill_self, es);
    }
    co_return;
  }

  Task<> wait(Context& ctx) override {
    const std::size_t es = args.element_size;
    for (auto& r : l_sends) co_await ctx.wait(r);
    for (auto& r : l_recvs) co_await ctx.wait(r);
    if (has_fill) co_await ctx.wait(fill_req);
    if (routing->is_leader && routing->regions > 1) {
      // The rotation.  Rounds are sequential; the resident buffer
      // ping-pongs so keep/merge never overlap their sources.
      std::span<std::byte> cur = resident_a, nxt = resident_b;
      for (std::size_t k = 0; k < round_chans.size(); ++k) {
        const auto& r = routing->rounds[k];
        auto& ch = round_chans[k];
        copy_runs(cur, round_send, r.gather, es);
        if (ch.send_wrapped)
          ch.rel_send.start(ctx);
        else
          ch.send.start(ctx);
        if (ch.recv_wrapped)
          ch.rel_recv.start(ctx);
        else
          ch.recv.start(ctx);
        if (!ch.send_wrapped) co_await ctx.wait(ch.send);
        if (!ch.recv_wrapped) co_await ctx.wait(ch.recv);
        // Multiplexed even for a single pair: the recv peer's lost data
        // may need a retransmit this leader can only trigger by arming
        // its own ack timer (see reliable.hpp).
        co_await impl::finish_channels(
            ctx, rel, {&ch.rel_recv, ch.recv_wrapped ? 1u : 0u},
            {&ch.rel_send, ch.send_wrapped ? 1u : 0u});
        copy_runs(cur, nxt, r.keep, es);
        copy_runs(round_recv, nxt, r.merge, es);
        std::swap(cur, nxt);
      }
      for (auto& d : deliver_sends) {
        copy_runs(cur, d.buf, d.runs, es);
        d.req.start(ctx);
      }
      copy_runs(cur, args.recvbuf, routing->deliver_self, es);
      for (auto& d : deliver_sends) co_await ctx.wait(d.req);
    }
    if (has_deliver) {
      co_await ctx.wait(deliver_req);
      copy_runs(deliver_buf, args.recvbuf, routing->from_leader, es);
    }
  }

  NeighborStats stats() const override { return routing->stats; }
  const char* name() const override { return "bruck"; }
  std::shared_ptr<const PlanBase> plan_base() const override {
    return routing;
  }
};

/// Validate that `args` carries the exact dense pattern `plan` was built
/// for and that the communicator matches the plan's binding fingerprint.
void validate_bruck_args(const BruckPlan& plan, const Comm& comm,
                         const AlltoallvArgs& args) {
  const std::size_t p = static_cast<std::size_t>(comm.size());
  if (plan.sendcounts.size() != p)
    throw SimError("alltoallv bruck: plan was built for " +
                   std::to_string(plan.sendcounts.size()) +
                   " ranks, communicator has " + std::to_string(p));
  if (args.sendcounts != plan.sendcounts || args.sdispls != plan.sdispls ||
      args.recvcounts != plan.recvcounts || args.rdispls != plan.rdispls)
    throw SimError(
        "alltoallv bruck: arguments do not match the pattern the plan was "
        "built for");
}

}  // namespace

Task<std::shared_ptr<const BruckPlan>> impl::build_bruck_plan(
    Context& ctx, Comm comm, AlltoallvArgs args, Options opts) {
  {
    const simmpi::DistGraph graph = dense_graph_of(comm);
    detail::validate_args(graph, args, /*need_idx=*/false);
  }
  const auto& machine = ctx.engine().machine();
  const int p = comm.size();
  const int me = comm.rank();

  auto plan = std::make_shared<BruckPlan>();
  plan->setup_compute_per_word = opts.setup_compute_per_word;
  plan->binding_fingerprint = detail::binding_fingerprint(comm, machine);
  plan->sendcounts = args.sendcounts;
  plan->sdispls = args.sdispls;
  plan->recvcounts = args.recvcounts;
  plan->rdispls = args.rdispls;

  // ---- region table --------------------------------------------------------
  auto region_of = [&](int local) {
    return machine.region_of(comm.global(local));
  };
  std::vector<int> region_ids(static_cast<std::size_t>(p));
  for (int i = 0; i < p; ++i) region_ids[i] = region_of(i);
  std::sort(region_ids.begin(), region_ids.end());
  region_ids.erase(std::unique(region_ids.begin(), region_ids.end()),
                   region_ids.end());
  const int nregions = static_cast<int>(region_ids.size());
  plan->regions = nregions;
  auto region_index = [&](int rid) {
    return static_cast<int>(
        std::lower_bound(region_ids.begin(), region_ids.end(), rid) -
        region_ids.begin());
  };
  std::vector<std::vector<int>> members(region_ids.size());
  for (int i = 0; i < p; ++i)
    members[region_index(region_of(i))].push_back(i);  // comm-rank order
  const int gi = region_index(region_of(me));
  const auto& mem = members[gi];
  const int nlocal = static_cast<int>(mem.size());
  const int my_core = static_cast<int>(
      std::lower_bound(mem.begin(), mem.end(), me) - mem.begin());
  plan->leader = mem[0];
  plan->is_leader = my_core == 0;

  // ---- l phase: intra-region traffic straight from the arguments ----------
  for (int j : mem) {
    plan->l_sends.push_back({j, args.sdispls[j], args.sendcounts[j]});
    ++plan->stats.local_msgs;
    plan->stats.local_values += args.sendcounts[j];
    plan->l_recvs.push_back({j, args.rdispls[j], args.recvcounts[j]});
  }

  // ---- region-internal metadata: every member's counts ---------------------
  Comm rc = co_await coll::split_by_region(ctx, comm);
  {
    // split_by_region orders members by comm rank; the layouts below
    // depend on that, so fail loudly if it ever changes.
    auto cmembers = comm.members();
    std::vector<int> g2l(static_cast<std::size_t>(machine.num_ranks()), -1);
    for (int i = 0; i < p; ++i) g2l[cmembers[i]] = i;
    if (rc.size() != nlocal)
      throw SimError("alltoallv bruck: region communicator size mismatch");
    for (int m = 0; m < nlocal; ++m)
      if (g2l[rc.global(m)] != mem[m])
        throw SimError("alltoallv bruck: region communicator order mismatch");
  }
  std::vector<int> meta_mine(2 * static_cast<std::size_t>(p));
  std::copy(args.sendcounts.begin(), args.sendcounts.begin() + p,
            meta_mine.begin());
  std::copy(args.recvcounts.begin(), args.recvcounts.begin() + p,
            meta_mine.begin() + p);
  auto meta = co_await coll::allgatherv<int>(ctx, rc, std::move(meta_mine));
  ctx.compute(opts.setup_compute_per_word * static_cast<double>(meta.size()));
  // scount(m, j): values member m of my region sends to comm rank j.
  // rcount(k, m): values member m of my region receives from comm rank k.
  auto scount = [&](int m, int j) -> long long {
    return meta[static_cast<std::size_t>(m) * 2 * p + j];
  };
  auto rcount = [&](int k, int m) -> long long {
    return meta[static_cast<std::size_t>(m) * 2 * p + p + k];
  };

  // ---- region traffic matrix T (identical on every rank) -------------------
  // Each rank publishes its per-destination-region totals; summing rows by
  // the sender's region gives T[g][q], the basis of the shared symbolic
  // rotation below.
  std::vector<long long> row(static_cast<std::size_t>(nregions), 0);
  for (int j = 0; j < p; ++j)
    row[region_index(region_of(j))] += args.sendcounts[j];
  auto all_rows = co_await coll::allgatherv<long long>(ctx, comm,
                                                       std::move(row));
  ctx.compute(opts.setup_compute_per_word *
              static_cast<double>(all_rows.size()));
  std::vector<long long> T(static_cast<std::size_t>(nregions) * nregions, 0);
  for (int i = 0; i < p; ++i) {
    const int g = region_index(region_of(i));
    for (int q = 0; q < nregions; ++q)
      T[static_cast<std::size_t>(g) * nregions + q] +=
          all_rows[static_cast<std::size_t>(i) * nregions + q];
  }
  auto traffic = [&](int g, int q) -> long long {
    return T[static_cast<std::size_t>(g) * nregions + q];
  };

  // Cross-check sender-declared totals against what my region's members
  // expect to receive: inconsistent count arrays would otherwise corrupt
  // the rotation layout silently.
  for (int s = 0; s < nregions; ++s) {
    if (s == gi) continue;
    long long expected = 0;
    for (int k : members[s])
      for (int m = 0; m < nlocal; ++m) expected += rcount(k, m);
    if (expected != traffic(s, gi))
      throw SimError(
          "alltoallv bruck: send/recv counts are inconsistent (region " +
          std::to_string(s) + " declares " +
          std::to_string(traffic(s, gi)) + " values toward this region, "
          "receivers expect " + std::to_string(expected) + ")");
  }

  if (nregions == 1) co_return plan;  // everything is intra-region

  // ---- symbolic rotation (identical replay on every rank) ------------------
  int nrounds = 0;
  while ((1 << nrounds) < nregions) ++nrounds;

  struct SimChunk {
    int origin;         // region whose data this is
    long long size;     // values
    long long off;      // offset in the holder's resident buffer (-1: in flight)
    long long msg_off;  // offset in the current round's message
  };
  std::vector<std::vector<SimChunk>> fin(region_ids.size());  // arrival order
  std::vector<std::vector<std::vector<SimChunk>>> blocks(region_ids.size());
  for (int g = 0; g < nregions; ++g) {
    blocks[g].resize(region_ids.size());
    for (int d = 1; d < nregions; ++d)
      blocks[g][d].push_back({g, traffic(g, (g + d) % nregions), -1, -1});
  }
  // Resident layout of a region: final chunks in arrival order, then the
  // pending blocks by ascending remaining distance, chunks in list order.
  auto layout_region = [&](int g) -> long long {
    long long off = 0;
    for (auto& c : fin[g]) {
      c.off = off;
      off += c.size;
    }
    for (int d = 1; d < nregions; ++d)
      for (auto& c : blocks[g][d]) {
        c.off = off;
        off += c.size;
      }
    return off;
  };
  long long resident_max = 0;
  for (int g = 0; g < nregions; ++g) {
    const long long tot = layout_region(g);
    if (g == gi) resident_max = tot;
  }
  std::vector<long long> chunk_off0(region_ids.size(), 0);  // epoch-0, my region
  for (int d = 1; d < nregions; ++d) chunk_off0[d] = blocks[gi][d][0].off;

  for (int k = 0; k < nrounds; ++k) {
    const int step = 1 << k;
    BruckPlan::Round round;
    round.send_peer = members[(gi + step) % nregions][0];
    round.recv_peer = members[(gi - step + nregions) % nregions][0];

    // Message layout: moving chunks by ascending distance, list order.
    std::vector<long long> msg_size(region_ids.size(), 0);
    for (int g = 0; g < nregions; ++g) {
      long long mo = 0;
      for (int d = 1; d < nregions; ++d) {
        if (!((d >> k) & 1)) continue;
        for (auto& c : blocks[g][d]) {
          c.msg_off = mo;
          mo += c.size;
        }
      }
      msg_size[g] = mo;
    }
    round.send_values = msg_size[gi];
    round.recv_values = msg_size[(gi - step + nregions) % nregions];
    plan->round_send_max = std::max(plan->round_send_max,
                                    static_cast<long>(round.send_values));
    plan->round_recv_max = std::max(plan->round_recv_max,
                                    static_cast<long>(round.recv_values));
    for (int d = 1; d < nregions; ++d) {
      if (!((d >> k) & 1)) continue;
      for (const auto& c : blocks[gi][d])
        push_run(round.gather, c.off, c.msg_off, c.size);
    }

    // Move the chunks: one hop of 2^k, remaining distance d - 2^k.
    std::vector<std::vector<std::pair<int, SimChunk>>> moved(
        region_ids.size());
    for (int g = 0; g < nregions; ++g) {
      const int dst = (g + step) % nregions;
      for (int d = 1; d < nregions; ++d) {
        if (!((d >> k) & 1)) continue;
        for (auto& c : blocks[g][d]) {
          SimChunk arriving = c;
          arriving.off = -1;
          moved[dst].emplace_back(d - step, arriving);
        }
        blocks[g][d].clear();
      }
    }
    for (int g = 0; g < nregions; ++g)
      for (auto& [dn, c] : moved[g]) {
        if (dn == 0)
          fin[g].push_back(c);
        else
          blocks[g][dn].push_back(c);
      }

    // Re-pack: record my region's keep (still resident) and merge
    // (arriving) runs against the new layout.
    for (int g = 0; g < nregions; ++g) {
      if (g != gi) {
        layout_region(g);
        continue;
      }
      long long off = 0;
      auto place = [&](SimChunk& c) {
        if (c.off >= 0)
          push_run(round.keep, c.off, off, c.size);
        else
          push_run(round.merge, c.msg_off, off, c.size);
        c.off = off;
        off += c.size;
      };
      for (auto& c : fin[gi]) place(c);
      for (int d = 1; d < nregions; ++d)
        for (auto& c : blocks[gi][d]) place(c);
      resident_max = std::max(resident_max, off);
    }

    if (plan->is_leader) {
      ++plan->stats.global_msgs;
      plan->stats.global_values += round.send_values;
      plan->stats.max_global_msg_values =
          std::max(plan->stats.max_global_msg_values,
                   static_cast<long>(round.send_values));
      detail::count_link_crossing(machine, comm.global(comm.rank()),
                                  comm.global(round.send_peer),
                                  static_cast<long>(round.send_values),
                                  plan->stats);
      plan->rounds.push_back(std::move(round));
    }
  }
  plan->resident_values = static_cast<long>(resident_max);
  if (static_cast<int>(fin[gi].size()) != nregions - 1)
    throw SimError("alltoallv bruck: internal rotation error");

  // ---- fill: members -> leader resident buffer -----------------------------
  // Chunk (distance d) interior: member-major rows [k in g ascending], each
  // row the member's segments toward members of (g + d) mod R, j ascending —
  // the member's natural gather order, so each fill message is one
  // contiguous slice per chunk on both sides.
  std::vector<long long> row_out(static_cast<std::size_t>(nlocal) * nregions,
                                 0);
  for (int m = 0; m < nlocal; ++m)
    for (int q = 0; q < nregions; ++q) {
      if (q == gi) continue;
      long long t = 0;
      for (int j : members[q]) t += scount(m, j);
      row_out[static_cast<std::size_t>(m) * nregions + q] = t;
    }
  auto row_out_of = [&](int m, int q) {
    return row_out[static_cast<std::size_t>(m) * nregions + q];
  };

  if (plan->is_leader) {
    for (int d = 1; d < nregions; ++d) {
      const int q = (gi + d) % nregions;
      long long col = 0;
      for (int j : members[q]) {
        push_run(plan->fill_self, args.sdispls[j], chunk_off0[d] + col,
                 scount(0, j));
        col += scount(0, j);
      }
    }
    for (int m = 1; m < nlocal; ++m) {
      BruckPlan::Place f;
      f.peer = mem[m];
      long long pos = 0;
      for (int d = 1; d < nregions; ++d) {
        const int q = (gi + d) % nregions;
        long long rowoff = 0;
        for (int mm = 0; mm < m; ++mm) rowoff += row_out_of(mm, q);
        push_run(f.runs, pos, chunk_off0[d] + rowoff, row_out_of(m, q));
        pos += row_out_of(m, q);
      }
      f.values = pos;
      plan->fill_recvs.push_back(std::move(f));
    }
  } else {
    long long pos = 0;
    for (int d = 1; d < nregions; ++d) {
      const int q = (gi + d) % nregions;
      for (int j : members[q]) {
        push_run(plan->fill_gather, args.sdispls[j], pos, args.sendcounts[j]);
        pos += args.sendcounts[j];
      }
    }
    plan->fill_values = pos;
    ++plan->stats.local_msgs;
    plan->stats.local_values += pos;
  }

  // ---- deliver: leader resident buffer -> members' recvbufs ----------------
  // A final chunk from origin s keeps its epoch-0 interior, so member m's
  // share is one slice per sender rank k in s: row offset sum over earlier
  // senders, column offset sum over earlier members.
  auto row_in = [&](int k) {
    long long t = 0;
    for (int m = 0; m < nlocal; ++m) t += rcount(k, m);
    return t;
  };
  auto col_in = [&](int k, int m) {
    long long t = 0;
    for (int mm = 0; mm < m; ++mm) t += rcount(k, mm);
    return t;
  };
  if (plan->is_leader) {
    for (const auto& c : fin[gi]) {
      long long rowoff = 0;
      for (int k : members[c.origin]) {
        push_run(plan->deliver_self, c.off + rowoff + col_in(k, 0),
                 args.rdispls[k], rcount(k, 0));
        rowoff += row_in(k);
      }
    }
    for (int m = 1; m < nlocal; ++m) {
      BruckPlan::Place d;
      d.peer = mem[m];
      long long pos = 0;
      for (const auto& c : fin[gi]) {
        long long rowoff = 0;
        for (int k : members[c.origin]) {
          push_run(d.runs, c.off + rowoff + col_in(k, m), pos, rcount(k, m));
          pos += rcount(k, m);
          rowoff += row_in(k);
        }
      }
      d.values = pos;
      ++plan->stats.local_msgs;
      plan->stats.local_values += pos;
      plan->delivers.push_back(std::move(d));
    }
  } else {
    long long pos = 0;
    for (const auto& c : fin[gi]) {
      for (int k : members[c.origin]) {
        push_run(plan->from_leader, pos, args.rdispls[k], args.recvcounts[k]);
        pos += args.recvcounts[k];
      }
    }
    plan->from_leader_values = pos;
  }

  // Charge the symbolic rotation and layout computation to this rank.
  ctx.compute(opts.setup_compute_per_word *
              static_cast<double>(static_cast<long long>(nregions) * nregions *
                                      (nrounds + 1) +
                                  2 * p));
  co_return plan;
}

std::unique_ptr<NeighborAlltoallv> impl::bind_bruck(
    Context& ctx, Comm comm, AlltoallvArgs args,
    std::shared_ptr<const BruckPlan> plan, const Options& opts) {
  {
    const simmpi::DistGraph graph = dense_graph_of(comm);
    detail::validate_args(graph, args, /*need_idx=*/false);
  }
  if (opts.reliability.enabled) impl::validate_reliability(opts.reliability);
  if (plan->binding_fingerprint != 0 &&
      plan->binding_fingerprint !=
          detail::binding_fingerprint(comm, ctx.engine().machine()))
    throw SimError(
        "alltoallv bruck: plan was built for a different communicator or "
        "machine layout");
  validate_bruck_args(*plan, comm, args);

  const std::size_t es = args.element_size;
  const BruckPlan& p = *plan;
  const int me = comm.rank();

  auto obj = std::make_unique<BruckAlltoallv>();
  obj->args = std::move(args);
  obj->routing = plan;
  obj->rel = opts.reliability;

  const int tag_l = ctx.engine().next_coll_tag(comm);
  const int tag_f = ctx.engine().next_coll_tag(comm);
  const int tag_b = ctx.engine().next_coll_tag(comm);
  const int tag_d = ctx.engine().next_coll_tag(comm);
  // Minted unconditionally when reliability is on so every rank's tag
  // sequence stays uniform, leaders or not.
  const int tag_back =
      opts.reliability.enabled ? ctx.engine().next_coll_tag(comm) : -1;

  for (const auto& m : p.l_sends)
    obj->l_sends.push_back(Request::send(
        comm, obj->args.sendbuf.subspan(m.displ * es, m.count * es), m.peer,
        tag_l));
  for (const auto& m : p.l_recvs)
    obj->l_recvs.push_back(Request::recv(
        comm, obj->args.recvbuf.subspan(m.displ * es, m.count * es), m.peer,
        tag_l));

  if (me != p.leader && p.regions > 1) {
    obj->fill_buf.resize(static_cast<std::size_t>(p.fill_values) * es);
    obj->fill_req = Request::send(
        comm, std::span<const std::byte>(obj->fill_buf), p.leader, tag_f);
    obj->has_fill = true;
    obj->deliver_buf.resize(static_cast<std::size_t>(p.from_leader_values) *
                            es);
    obj->deliver_req = Request::recv(
        comm, std::span<std::byte>(obj->deliver_buf), p.leader, tag_d);
    obj->has_deliver = true;
  }
  if (p.is_leader && p.regions > 1) {
    obj->resident_a.resize(static_cast<std::size_t>(p.resident_values) * es);
    obj->resident_b.resize(static_cast<std::size_t>(p.resident_values) * es);
    obj->round_send.resize(static_cast<std::size_t>(p.round_send_max) * es);
    obj->round_recv.resize(static_cast<std::size_t>(p.round_recv_max) * es);
    for (const auto& r : p.rounds) {
      BruckAlltoallv::RoundChan ch;
      auto sseg = std::span<const std::byte>(obj->round_send)
                      .first(static_cast<std::size_t>(r.send_values) * es);
      auto rseg = std::span<std::byte>(obj->round_recv)
                      .first(static_cast<std::size_t>(r.recv_values) * es);
      ch.send_wrapped =
          impl::wrap_channel(comm, r.send_peer, sseg.size(), obj->rel);
      ch.recv_wrapped =
          impl::wrap_channel(comm, r.recv_peer, rseg.size(), obj->rel);
      if (ch.send_wrapped)
        ch.rel_send = impl::RelSend(comm, sseg, r.send_peer, tag_b, tag_back);
      else
        ch.send = Request::send(comm, sseg, r.send_peer, tag_b);
      if (ch.recv_wrapped)
        ch.rel_recv = impl::RelRecv(comm, rseg, r.recv_peer, tag_b, tag_back);
      else
        ch.recv = Request::recv(comm, rseg, r.recv_peer, tag_b);
      obj->round_chans.push_back(std::move(ch));
    }
    for (const auto& f : p.fill_recvs) {
      BruckAlltoallv::Staged s;
      s.runs = f.runs;
      s.buf.resize(static_cast<std::size_t>(f.values) * es);
      s.req = Request::recv(comm, std::span<std::byte>(s.buf), f.peer, tag_f);
      obj->fill_recvs.push_back(std::move(s));
    }
    for (const auto& d : p.delivers) {
      BruckAlltoallv::Staged s;
      s.runs = d.runs;
      s.buf.resize(static_cast<std::size_t>(d.values) * es);
      s.req = Request::send(comm, std::span<const std::byte>(s.buf), d.peer,
                            tag_d);
      obj->deliver_sends.push_back(std::move(s));
    }
  }

  // Charge the buffer binding work (staging allocation + channel setup).
  ctx.compute(p.setup_compute_per_word *
              static_cast<double>(2 * p.resident_values + p.fill_values +
                                  p.from_leader_values));
  return obj;
}

}  // namespace mpix
