#include "mpix/detail.hpp"

#include <algorithm>
#include <cassert>
#include <string>

namespace mpix::detail {

using simmpi::SimError;

void validate_args(const simmpi::DistGraph& graph, const AlltoallvArgs& args,
                   bool need_idx) {
  const std::size_t nd = graph.destinations.size();
  const std::size_t ns = graph.sources.size();
  if (args.element_size == 0)
    throw SimError("neighbor_alltoallv: element_size must be positive");
  // Ragged payload buffers: send_values()/recv_values() divide by
  // element_size, so a trailing partial value would silently be dropped.
  if (args.sendbuf.size() % args.element_size != 0)
    throw SimError(
        "neighbor_alltoallv: sendbuf holds " +
        std::to_string(args.sendbuf.size()) +
        " bytes, not a multiple of element_size " +
        std::to_string(args.element_size) + " (remainder " +
        std::to_string(args.sendbuf.size() % args.element_size) +
        " bytes would be silently dropped)");
  if (args.recvbuf.size() % args.element_size != 0)
    throw SimError(
        "neighbor_alltoallv: recvbuf holds " +
        std::to_string(args.recvbuf.size()) +
        " bytes, not a multiple of element_size " +
        std::to_string(args.element_size) + " (remainder " +
        std::to_string(args.recvbuf.size() % args.element_size) +
        " bytes would be silently dropped)");
  if (args.sendcounts.size() != nd || args.sdispls.size() != nd)
    throw SimError("neighbor_alltoallv: send counts/displs size mismatch");
  if (args.recvcounts.size() != ns || args.rdispls.size() != ns)
    throw SimError("neighbor_alltoallv: recv counts/displs size mismatch");
  for (std::size_t i = 0; i < nd; ++i) {
    if (args.sendcounts[i] < 0 || args.sdispls[i] < 0)
      throw SimError("neighbor_alltoallv: negative send count/displ");
    if ((static_cast<std::size_t>(args.sdispls[i]) + args.sendcounts[i]) *
            args.element_size >
        args.sendbuf.size())
      throw SimError(
          "neighbor_alltoallv: send segment exceeds sendbuf (check counts "
          "and element_size)");
  }
  for (std::size_t i = 0; i < ns; ++i) {
    if (args.recvcounts[i] < 0 || args.rdispls[i] < 0)
      throw SimError("neighbor_alltoallv: negative recv count/displ");
    if ((static_cast<std::size_t>(args.rdispls[i]) + args.recvcounts[i]) *
            args.element_size >
        args.recvbuf.size())
      throw SimError(
          "neighbor_alltoallv: recv segment exceeds recvbuf (check counts "
          "and element_size)");
  }
  if (need_idx) {
    if (args.send_idx.size() < args.send_values() ||
        args.recv_idx.size() < args.recv_values())
      throw SimError(
          "neighbor_alltoallv: dedup requires send_idx/recv_idx covering "
          "the send/recv buffers");
  }
}

void reject_duplicate_edges(const simmpi::DistGraph& graph) {
  auto check = [](std::span<const int> ranks, const char* what) {
    std::vector<int> sorted(ranks.begin(), ranks.end());
    std::sort(sorted.begin(), sorted.end());
    auto it = std::adjacent_find(sorted.begin(), sorted.end());
    if (it != sorted.end())
      throw SimError(
          "neighbor_alltoallv: locality methods require unique " +
          std::string(what) + " (rank " + std::to_string(*it) +
          " appears more than once; merge the segments or use "
          "Method::standard)");
  };
  check(graph.destinations, "destinations");
  check(graph.sources, "sources");
}

namespace {

bool same_ints(std::span<const int> a, std::span<const int> b) {
  return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
}

bool same_gids(std::span<const gidx> a, std::span<const gidx> b) {
  return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
}

std::uint64_t fnv_mix(std::uint64_t h, std::uint64_t v) {
  h ^= v;
  h *= 0x100000001b3ull;
  h ^= h >> 29;
  return h;
}

}  // namespace

std::uint64_t binding_fingerprint(const simmpi::Comm& comm,
                                  const simmpi::Machine& machine) {
  std::uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a offset basis
  h = fnv_mix(h, static_cast<std::uint64_t>(comm.size()));
  h = fnv_mix(h, static_cast<std::uint64_t>(machine.ranks_per_region()));
  h = fnv_mix(h, static_cast<std::uint64_t>(machine.num_ranks()));
  // The switch-hierarchy shape, not its tapers: tapers only scale link
  // costs, never routing or the per-tier crossing counts baked into a
  // plan, so plans stay reusable across a taper sweep.
  h = fnv_mix(h, static_cast<std::uint64_t>(machine.num_switch_levels()));
  for (const simmpi::SwitchLevel& lvl : machine.config().switch_levels)
    h = fnv_mix(h, static_cast<std::uint64_t>(lvl.radix));
  for (int m : comm.members()) {
    h = fnv_mix(h, static_cast<std::uint64_t>(m));
    h = fnv_mix(h, static_cast<std::uint64_t>(machine.region_of(m)));
  }
  return h;
}

void count_link_crossing(const simmpi::Machine& machine, int gsrc, int gdst,
                         long values, NeighborStats& stats) {
  const int lca = machine.lca_level(gsrc, gdst);
  if (lca <= 0) return;
  if (stats.link_msgs.empty()) {
    const auto tiers = static_cast<std::size_t>(machine.num_link_tiers());
    stats.link_msgs.assign(tiers, 0);
    stats.link_values.assign(tiers, 0);
  }
  for (int t = 0; t < lca; ++t) {
    ++stats.link_msgs[static_cast<std::size_t>(t)];
    stats.link_values[static_cast<std::size_t>(t)] += values;
  }
}

void validate_plan_args(const LocalityPlan& plan,
                        const simmpi::DistGraph& graph,
                        const AlltoallvArgs& args) {
  validate_args(graph, args, plan.dedup);
  if (plan.binding_fingerprint != 0 &&
      plan.binding_fingerprint !=
          binding_fingerprint(graph.comm,
                              graph.comm.engine().machine()))
    throw SimError(
        "neighbor_alltoallv: plan was built for a different communicator or "
        "machine shape");
  if (!same_ints(graph.destinations, plan.destinations) ||
      !same_ints(graph.sources, plan.sources))
    throw SimError(
        "neighbor_alltoallv: plan was built for a different graph adjacency");
  if (!same_ints(args.sendcounts, plan.sendcounts) ||
      !same_ints(args.sdispls, plan.sdispls) ||
      !same_ints(args.recvcounts, plan.recvcounts) ||
      !same_ints(args.rdispls, plan.rdispls))
    throw SimError(
        "neighbor_alltoallv: plan was built for different counts/displs");
  if (plan.dedup &&
      (!same_gids(args.send_idx.first(args.send_values()), plan.send_idx) ||
       !same_gids(args.recv_idx.first(args.recv_values()), plan.recv_idx)))
    throw SimError(
        "neighbor_alltoallv: dedup plan was built for different "
        "send_idx/recv_idx annotations");
}

std::vector<long long> serialize_edges(const simmpi::DistGraph& graph,
                                       const AlltoallvArgs& args, bool dedup) {
  // Exact single reservation (the blob is rebuilt once per plan build, but
  // doubling growth on multi-thousand-entry metadata showed up in staging
  // profiles): 1 rank word + per-direction [count word + 2 words per edge +
  // optional gid words].
  std::size_t words = 3;
  words += 2 * graph.destinations.size() + 2 * graph.sources.size();
  if (dedup) {
    for (std::size_t i = 0; i < graph.destinations.size(); ++i)
      words += static_cast<std::size_t>(args.sendcounts[i]);
    for (std::size_t i = 0; i < graph.sources.size(); ++i)
      words += static_cast<std::size_t>(args.recvcounts[i]);
  }
  std::vector<long long> blob;
  blob.reserve(words);
  blob.push_back(graph.comm.rank());
  blob.push_back(static_cast<long long>(graph.destinations.size()));
  for (std::size_t i = 0; i < graph.destinations.size(); ++i) {
    blob.push_back(graph.destinations[i]);
    blob.push_back(args.sendcounts[i]);
    if (dedup)
      for (int k = 0; k < args.sendcounts[i]; ++k)
        blob.push_back(args.send_idx[args.sdispls[i] + k]);
  }
  blob.push_back(static_cast<long long>(graph.sources.size()));
  for (std::size_t i = 0; i < graph.sources.size(); ++i) {
    blob.push_back(graph.sources[i]);
    blob.push_back(args.recvcounts[i]);
    if (dedup)
      for (int k = 0; k < args.recvcounts[i]; ++k)
        blob.push_back(args.recv_idx[args.rdispls[i] + k]);
  }
  assert(blob.capacity() == words);  // the reservation above was exact
  return blob;
}

void parse_edges(std::span<const long long> data, bool dedup,
                 std::vector<Edge>& out_edges, std::vector<Edge>& in_edges) {
  // Pre-scan for the edge totals so the output vectors are reserved once
  // (a region's combined metadata blob holds thousands of edges; doubling
  // growth re-copied Edge objects — and their gid vectors — repeatedly).
  // Truncation is ignored here; the parse below reports it.
  {
    std::size_t nout = 0, nin = 0, pos = 0;
    while (pos + 1 < data.size()) {
      ++pos;  // rank
      for (int dir = 0; dir < 2; ++dir) {
        if (pos >= data.size()) break;
        const long long n = data[pos++];
        for (long long e = 0; e < n && pos + 1 < data.size(); ++e) {
          const long long count = data[pos + 1];
          if (count < 0) break;  // corrupt; the parse below throws
          pos += 2 + (dedup ? static_cast<std::size_t>(count) : 0);
          (dir == 0 ? nout : nin) += 1;
        }
      }
    }
    out_edges.reserve(out_edges.size() + nout);
    in_edges.reserve(in_edges.size() + nin);
  }
  std::size_t pos = 0;
  auto next = [&]() {
    if (pos >= data.size())
      throw SimError("parse_edges: truncated metadata blob");
    return data[pos++];
  };
  while (pos < data.size()) {
    const int rank = static_cast<int>(next());
    const long long nout = next();
    for (long long e = 0; e < nout; ++e) {
      Edge edge;
      edge.src = rank;
      edge.dst = static_cast<int>(next());
      edge.count = static_cast<int>(next());
      if (dedup) {
        edge.gids.resize(edge.count);
        for (int k = 0; k < edge.count; ++k) edge.gids[k] = next();
      }
      out_edges.push_back(std::move(edge));
    }
    const long long nin = next();
    for (long long e = 0; e < nin; ++e) {
      Edge edge;
      edge.dst = rank;
      edge.src = static_cast<int>(next());
      edge.count = static_cast<int>(next());
      if (dedup) {
        edge.gids.resize(edge.count);
        for (int k = 0; k < edge.count; ++k) edge.gids[k] = next();
      }
      in_edges.push_back(std::move(edge));
    }
  }
  std::sort(out_edges.begin(), out_edges.end());
  std::sort(in_edges.begin(), in_edges.end());
}

std::vector<int> assign_leaders(std::span<const std::pair<int, long>> loads,
                                int nlocal, bool lpt) {
  if (nlocal < 1) throw SimError("assign_leaders: nlocal must be >= 1");
  std::vector<int> assignment(loads.size(), 0);
  if (!lpt) {
    for (std::size_t i = 0; i < loads.size(); ++i)
      assignment[i] = static_cast<int>(i) % nlocal;
    return assignment;
  }
  // Longest-processing-time: heaviest region first onto the least-loaded
  // core; ties broken by region id / core id for determinism.
  std::vector<int> order(loads.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    if (loads[a].second != loads[b].second)
      return loads[a].second > loads[b].second;
    return loads[a].first < loads[b].first;
  });
  std::vector<long> core_load(nlocal, 0);
  for (int i : order) {
    int best = 0;
    for (int c = 1; c < nlocal; ++c)
      if (core_load[c] < core_load[best]) best = c;
    assignment[i] = best;
    core_load[best] += loads[i].second;
  }
  return assignment;
}

std::vector<gidx> unique_sorted(std::span<const gidx> gids) {
  std::vector<gidx> u(gids.begin(), gids.end());
  std::sort(u.begin(), u.end());
  u.erase(std::unique(u.begin(), u.end()), u.end());
  return u;
}

long PairLayout::find(int src, gidx gid) const {
  for (const auto& blk : src_blocks) {
    if (blk.src != src) continue;
    auto it = std::lower_bound(blk.gids.begin(), blk.gids.end(), gid);
    if (it == blk.gids.end() || *it != gid)
      throw SimError("PairLayout::find: gid not in source block");
    return blk.offset + (it - blk.gids.begin());
  }
  throw SimError("PairLayout::find: source not in pair");
}

PairLayout pair_layout(std::span<const Edge* const> edges, bool dedup) {
  PairLayout lay;
  if (!dedup) {
    for (std::size_t e = 0; e < edges.size(); ++e) {
      lay.segments.push_back({static_cast<int>(e), lay.total});
      lay.total += edges[e]->count;
    }
    return lay;
  }
  // Dedup: group edges by source (already sorted by (src, dst)) and take
  // the union of their gids.
  std::size_t e = 0;
  while (e < edges.size()) {
    const int src = edges[e]->src;
    std::vector<gidx> all;
    while (e < edges.size() && edges[e]->src == src) {
      all.insert(all.end(), edges[e]->gids.begin(), edges[e]->gids.end());
      ++e;
    }
    PairLayout::SrcBlock blk;
    blk.src = src;
    blk.offset = lay.total;
    blk.gids = unique_sorted(all);
    lay.total += static_cast<long>(blk.gids.size());
    lay.src_blocks.push_back(std::move(blk));
  }
  return lay;
}

}  // namespace mpix::detail
