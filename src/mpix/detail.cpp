#include "mpix/detail.hpp"

#include <algorithm>

namespace mpix::detail {

using simmpi::SimError;

void validate_args(const simmpi::DistGraph& graph, const AlltoallvArgs& args,
                   bool need_idx) {
  const std::size_t nd = graph.destinations.size();
  const std::size_t ns = graph.sources.size();
  if (args.sendcounts.size() != nd || args.sdispls.size() != nd)
    throw SimError("neighbor_alltoallv: send counts/displs size mismatch");
  if (args.recvcounts.size() != ns || args.rdispls.size() != ns)
    throw SimError("neighbor_alltoallv: recv counts/displs size mismatch");
  for (std::size_t i = 0; i < nd; ++i) {
    if (args.sendcounts[i] < 0 || args.sdispls[i] < 0)
      throw SimError("neighbor_alltoallv: negative send count/displ");
    if (static_cast<std::size_t>(args.sdispls[i]) + args.sendcounts[i] >
        args.sendbuf.size())
      throw SimError("neighbor_alltoallv: send segment exceeds sendbuf");
  }
  for (std::size_t i = 0; i < ns; ++i) {
    if (args.recvcounts[i] < 0 || args.rdispls[i] < 0)
      throw SimError("neighbor_alltoallv: negative recv count/displ");
    if (static_cast<std::size_t>(args.rdispls[i]) + args.recvcounts[i] >
        args.recvbuf.size())
      throw SimError("neighbor_alltoallv: recv segment exceeds recvbuf");
  }
  if (need_idx) {
    if (args.send_idx.size() < args.sendbuf.size() ||
        args.recv_idx.size() < args.recvbuf.size())
      throw SimError(
          "neighbor_alltoallv: dedup requires send_idx/recv_idx covering "
          "the send/recv buffers");
  }
}

std::vector<long long> serialize_edges(const simmpi::DistGraph& graph,
                                       const AlltoallvArgs& args, bool dedup) {
  std::vector<long long> blob;
  blob.push_back(graph.comm.rank());
  blob.push_back(static_cast<long long>(graph.destinations.size()));
  for (std::size_t i = 0; i < graph.destinations.size(); ++i) {
    blob.push_back(graph.destinations[i]);
    blob.push_back(args.sendcounts[i]);
    if (dedup)
      for (int k = 0; k < args.sendcounts[i]; ++k)
        blob.push_back(args.send_idx[args.sdispls[i] + k]);
  }
  blob.push_back(static_cast<long long>(graph.sources.size()));
  for (std::size_t i = 0; i < graph.sources.size(); ++i) {
    blob.push_back(graph.sources[i]);
    blob.push_back(args.recvcounts[i]);
    if (dedup)
      for (int k = 0; k < args.recvcounts[i]; ++k)
        blob.push_back(args.recv_idx[args.rdispls[i] + k]);
  }
  return blob;
}

void parse_edges(std::span<const long long> data, bool dedup,
                 std::vector<Edge>& out_edges, std::vector<Edge>& in_edges) {
  std::size_t pos = 0;
  auto next = [&]() {
    if (pos >= data.size())
      throw SimError("parse_edges: truncated metadata blob");
    return data[pos++];
  };
  while (pos < data.size()) {
    const int rank = static_cast<int>(next());
    const long long nout = next();
    for (long long e = 0; e < nout; ++e) {
      Edge edge;
      edge.src = rank;
      edge.dst = static_cast<int>(next());
      edge.count = static_cast<int>(next());
      if (dedup) {
        edge.gids.resize(edge.count);
        for (int k = 0; k < edge.count; ++k) edge.gids[k] = next();
      }
      out_edges.push_back(std::move(edge));
    }
    const long long nin = next();
    for (long long e = 0; e < nin; ++e) {
      Edge edge;
      edge.dst = rank;
      edge.src = static_cast<int>(next());
      edge.count = static_cast<int>(next());
      if (dedup) {
        edge.gids.resize(edge.count);
        for (int k = 0; k < edge.count; ++k) edge.gids[k] = next();
      }
      in_edges.push_back(std::move(edge));
    }
  }
  std::sort(out_edges.begin(), out_edges.end());
  std::sort(in_edges.begin(), in_edges.end());
}

std::vector<int> assign_leaders(std::span<const std::pair<int, long>> loads,
                                int nlocal, bool lpt) {
  if (nlocal < 1) throw SimError("assign_leaders: nlocal must be >= 1");
  std::vector<int> assignment(loads.size(), 0);
  if (!lpt) {
    for (std::size_t i = 0; i < loads.size(); ++i)
      assignment[i] = static_cast<int>(i) % nlocal;
    return assignment;
  }
  // Longest-processing-time: heaviest region first onto the least-loaded
  // core; ties broken by region id / core id for determinism.
  std::vector<int> order(loads.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    if (loads[a].second != loads[b].second)
      return loads[a].second > loads[b].second;
    return loads[a].first < loads[b].first;
  });
  std::vector<long> core_load(nlocal, 0);
  for (int i : order) {
    int best = 0;
    for (int c = 1; c < nlocal; ++c)
      if (core_load[c] < core_load[best]) best = c;
    assignment[i] = best;
    core_load[best] += loads[i].second;
  }
  return assignment;
}

std::vector<gidx> unique_sorted(std::span<const gidx> gids) {
  std::vector<gidx> u(gids.begin(), gids.end());
  std::sort(u.begin(), u.end());
  u.erase(std::unique(u.begin(), u.end()), u.end());
  return u;
}

long PairLayout::find(int src, gidx gid) const {
  for (const auto& blk : src_blocks) {
    if (blk.src != src) continue;
    auto it = std::lower_bound(blk.gids.begin(), blk.gids.end(), gid);
    if (it == blk.gids.end() || *it != gid)
      throw SimError("PairLayout::find: gid not in source block");
    return blk.offset + (it - blk.gids.begin());
  }
  throw SimError("PairLayout::find: source not in pair");
}

PairLayout pair_layout(std::span<const Edge* const> edges, bool dedup) {
  PairLayout lay;
  if (!dedup) {
    for (std::size_t e = 0; e < edges.size(); ++e) {
      lay.segments.push_back({static_cast<int>(e), lay.total});
      lay.total += edges[e]->count;
    }
    return lay;
  }
  // Dedup: group edges by source (already sorted by (src, dst)) and take
  // the union of their gids.
  std::size_t e = 0;
  while (e < edges.size()) {
    const int src = edges[e]->src;
    std::vector<gidx> all;
    while (e < edges.size() && edges[e]->src == src) {
      all.insert(all.end(), edges[e]->gids.begin(), edges[e]->gids.end());
      ++e;
    }
    PairLayout::SrcBlock blk;
    blk.src = src;
    blk.offset = lay.total;
    blk.gids = unique_sorted(all);
    lay.total += static_cast<long>(blk.gids.size());
    lay.src_blocks.push_back(std::move(blk));
  }
  return lay;
}

}  // namespace mpix::detail
