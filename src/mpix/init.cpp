/// \file init.cpp
/// \brief The unified persistent-collective entry point: one
/// `neighbor_alltoallv_init` dispatching over `Method`, mirroring how MPI
/// Advance exposes a single MPIX_Neighbor_alltoallv_init whose behavior is
/// selected at initialization time.

#include "mpix/impl.hpp"
#include "mpix/neighbor.hpp"

namespace mpix {

using simmpi::SimError;

const char* to_string(Method m) {
  switch (m) {
    case Method::standard: return "standard";
    case Method::locality: return "locality";
    case Method::locality_dedup: return "locality+dedup";
  }
  throw SimError("mpix::to_string: invalid Method");
}

namespace {

/// The dispatch coroutine.  Only ever invoked with arguments already
/// normalized by the public wrappers below (see impl.hpp on why the
/// public entry points must not be coroutines themselves).
simmpi::Task<std::unique_ptr<NeighborAlltoallv>> init_impl(
    simmpi::Context& ctx, const simmpi::DistGraph& graph, AlltoallvArgs args,
    Method method, Options opts) {
  if (method == Method::standard) {
    if (opts.plan)
      throw SimError(
          "neighbor_alltoallv_init: Method::standard takes no locality plan");
    co_return impl::make_standard(ctx, graph, std::move(args), opts);
  }
  std::shared_ptr<const LocalityPlan> plan;
  if (opts.plan) {
    auto* lp = dynamic_cast<const LocalityPlan*>(opts.plan);
    if (!lp)
      throw SimError(
          "neighbor_alltoallv_init: Options::plan is not a LocalityPlan "
          "(wrong plan kind for a neighbor method)");
    if (lp->dedup != needs_idx(method))
      throw SimError(
          "neighbor_alltoallv_init: plan's dedup mode does not match the "
          "requested Method");
    plan = lp->shared_from_this();
  } else {
    plan = co_await impl::build_locality_plan(ctx, graph, args, method, opts);
  }
  co_return impl::bind_locality(ctx, graph, std::move(args), std::move(plan),
                                opts);
}

}  // namespace

simmpi::Task<std::shared_ptr<const LocalityPlan>> make_locality_plan(
    simmpi::Context& ctx, const simmpi::DistGraph& graph,
    const AlltoallvArgs& args, Method method, Options opts) {
  // Copy the pattern into the builder's frame: the returned (lazy) task
  // then has no reference into caller-owned argument storage.
  return impl::build_locality_plan(ctx, graph, args, method, std::move(opts));
}

simmpi::Task<std::unique_ptr<NeighborAlltoallv>> neighbor_alltoallv_init(
    simmpi::Context& ctx, const simmpi::DistGraph& graph, AlltoallvArgs args,
    Method method, Options opts) {
  return init_impl(ctx, graph, std::move(args), method, std::move(opts));
}

}  // namespace mpix
