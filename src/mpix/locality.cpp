/// \file locality.cpp
/// \brief Locality-aware persistent neighbor alltoallv (Algorithms 4-6).
///
/// Communication is split into four phases (paper Section 3.2):
///   l — fully local: source and destination share a region (direct p2p);
///   s — initial redistribution: each source forwards its remote-bound
///       values to the region's designated leader per destination region;
///   g — one inter-region message per (source region, destination region)
///       pair, from the sending leader to the receiving leader;
///   r — final redistribution from the receiving leader to destinations.
///
/// All routing (gather/scatter index maps, staging layouts, leader
/// assignments) is computed once at init from metadata shared inside each
/// region plus a root-to-root handshake, then start/wait only move payload.
/// With `LocalityOptions::dedup`, values carrying the same user-supplied
/// index cross each region boundary once (Section 3.3).

#include <map>
#include <numeric>

#include "mpix/detail.hpp"
#include "mpix/neighbor.hpp"

namespace mpix {

namespace coll = simmpi::coll;

namespace {

using detail::Edge;
using detail::PairLayout;
using simmpi::Comm;
using simmpi::Context;
using simmpi::Request;
using simmpi::Task;

/// A planned message with persistent staging buffer and index maps.
struct PlanMsg {
  int peer = -1;  ///< comm-local rank
  std::vector<int> gather;  ///< sends: source-array position per value
  std::vector<int> scatter_src;  ///< recvs: payload position
  std::vector<int> scatter_dst;  ///< recvs: destination-array position
  std::vector<double> buf;
  Request req;
};

/// Direct copy plan for data whose "leader" is this rank itself.
struct SelfCopy {
  std::vector<int> src;
  std::vector<int> dst;
};

void gather_into(std::span<const double> src, PlanMsg& m) {
  for (std::size_t i = 0; i < m.gather.size(); ++i) m.buf[i] = src[m.gather[i]];
}

void scatter_from(const PlanMsg& m, std::span<double> dst) {
  for (std::size_t k = 0; k < m.scatter_dst.size(); ++k)
    dst[m.scatter_dst[k]] = m.buf[m.scatter_src[k]];
}

struct LocalityNeighbor final : NeighborAlltoallv {
  AlltoallvArgs args;
  bool dedup = false;
  std::vector<double> s_stage, g_stage;
  std::vector<Request> l_sends, l_recvs;  // direct user-buffer p2p
  std::vector<Request> g_sends, g_recvs;  // direct stage-buffer p2p
  std::vector<PlanMsg> s_sends, s_recvs, r_sends, r_recvs;
  SelfCopy s_self, r_self;
  NeighborStats stat;

  Task<> start(Context& ctx) override {
    // Fully local traffic goes out immediately (Algorithm 5).
    for (auto& r : l_sends) r.start(ctx);
    for (auto& r : l_recvs) r.start(ctx);
    // Initial redistribution: start AND complete before inter-region.
    for (auto& m : s_sends) {
      gather_into(args.sendbuf, m);
      m.req.start(ctx);
    }
    for (std::size_t k = 0; k < s_self.src.size(); ++k)
      s_stage[s_self.dst[k]] = args.sendbuf[s_self.src[k]];
    for (auto& m : s_recvs) m.req.start(ctx);
    for (auto& m : s_recvs) {
      co_await ctx.wait(m.req);
      scatter_from(m, s_stage);
    }
    for (auto& m : s_sends) co_await ctx.wait(m.req);
    // Inter-region messages.
    for (auto& r : g_sends) r.start(ctx);
    for (auto& r : g_recvs) r.start(ctx);
    co_return;
  }

  Task<> wait(Context& ctx) override {
    // Complete fully local and inter-region traffic (Algorithm 6).
    for (auto& r : l_sends) co_await ctx.wait(r);
    for (auto& r : l_recvs) co_await ctx.wait(r);
    for (auto& r : g_recvs) co_await ctx.wait(r);
    for (auto& r : g_sends) co_await ctx.wait(r);
    // Final redistribution.
    for (auto& m : r_sends) {
      gather_into(g_stage, m);
      m.req.start(ctx);
    }
    for (std::size_t k = 0; k < r_self.src.size(); ++k)
      args.recvbuf[r_self.dst[k]] = g_stage[r_self.src[k]];
    for (auto& m : r_recvs) m.req.start(ctx);
    for (auto& m : r_recvs) {
      co_await ctx.wait(m.req);
      scatter_from(m, args.recvbuf);
    }
    for (auto& m : r_sends) co_await ctx.wait(m.req);
  }

  NeighborStats stats() const override { return stat; }
  const char* name() const override {
    return dedup ? "locality+dedup" : "locality";
  }
};

/// Within-pair value offsets (in canonical enumeration order) of `src`'s
/// contribution to a region pair.
std::vector<long> src_item_offsets(const PairLayout& lay,
                                   const std::vector<const Edge*>& pair,
                                   int src, bool dedup) {
  std::vector<long> out;
  if (!dedup) {
    for (std::size_t e = 0; e < pair.size(); ++e)
      if (pair[e]->src == src)
        for (int k = 0; k < pair[e]->count; ++k)
          out.push_back(lay.segments[e].offset + k);
  } else {
    for (const auto& blk : lay.src_blocks)
      if (blk.src == src)
        for (std::size_t k = 0; k < blk.gids.size(); ++k)
          out.push_back(blk.offset + static_cast<long>(k));
  }
  return out;
}

}  // namespace

Task<std::unique_ptr<NeighborAlltoallv>> neighbor_alltoallv_init_locality(
    Context& ctx, const simmpi::DistGraph& graph, AlltoallvArgs args,
    LocalityOptions opts) {
  const bool dedup = opts.dedup;
  detail::validate_args(graph, args, dedup);
  const Comm& comm = graph.comm;
  const auto& machine = ctx.engine().machine();

  auto obj = std::make_unique<LocalityNeighbor>();
  obj->args = args;
  obj->dedup = dedup;

  const int me = comm.rank();
  auto region_of = [&](int local) {
    return machine.region_of(comm.global(local));
  };
  const int my_region = region_of(me);

  const int tag_l = ctx.engine().next_coll_tag(comm);
  const int tag_s = ctx.engine().next_coll_tag(comm);
  const int tag_g = ctx.engine().next_coll_tag(comm);
  const int tag_r = ctx.engine().next_coll_tag(comm);
  const int tag_hs = ctx.engine().next_coll_tag(comm);

  // ---- l phase: straight from this rank's own arguments ------------------
  std::map<int, int> dst_index, src_index;
  for (std::size_t i = 0; i < graph.destinations.size(); ++i)
    dst_index[graph.destinations[i]] = static_cast<int>(i);
  for (std::size_t i = 0; i < graph.sources.size(); ++i)
    src_index[graph.sources[i]] = static_cast<int>(i);

  for (std::size_t i = 0; i < graph.destinations.size(); ++i) {
    const int d = graph.destinations[i];
    if (region_of(d) != my_region) continue;
    auto seg = args.sendbuf.subspan(args.sdispls[i], args.sendcounts[i]);
    obj->l_sends.push_back(Request::send(comm, std::as_bytes(seg), d, tag_l));
    ++obj->stat.local_msgs;
    obj->stat.local_values += args.sendcounts[i];
  }
  for (std::size_t i = 0; i < graph.sources.size(); ++i) {
    const int s = graph.sources[i];
    if (region_of(s) != my_region) continue;
    auto seg = args.recvbuf.subspan(args.rdispls[i], args.recvcounts[i]);
    obj->l_recvs.push_back(
        Request::recv(comm, std::as_writable_bytes(seg), s, tag_l));
  }

  // ---- metadata exchange within the region --------------------------------
  Comm rc = co_await coll::split_by_region(ctx, comm);
  const int nlocal = rc.size();
  const int my_core = rc.rank();
  auto blob = detail::serialize_edges(graph, args, dedup);
  auto all_md = co_await coll::allgatherv<long long>(ctx, rc, std::move(blob));
  ctx.compute(opts.setup_compute_per_word *
              static_cast<double>(all_md.size()));
  std::vector<Edge> out_edges, in_edges;
  detail::parse_edges(all_md, dedup, out_edges, in_edges);

  // Group remote traffic by peer region (std::map => ascending region ids,
  // identical on every member since the metadata is identical).
  std::map<int, std::vector<const Edge*>> out_pairs, in_pairs;
  for (const auto& e : out_edges) {
    const int q = region_of(e.dst);
    if (q != my_region) out_pairs[q].push_back(&e);
  }
  for (const auto& e : in_edges) {
    const int rr = region_of(e.src);
    if (rr != my_region) in_pairs[rr].push_back(&e);
  }

  // ---- leader assignment ---------------------------------------------------
  std::vector<std::pair<int, long>> out_loads, in_loads;
  for (const auto& [q, v] : out_pairs) {
    long t = 0;
    for (const Edge* e : v) t += e->count;
    out_loads.emplace_back(q, t);
  }
  for (const auto& [rr, v] : in_pairs) {
    long t = 0;
    for (const Edge* e : v) t += e->count;
    in_loads.emplace_back(rr, t);
  }
  const auto out_assign =
      detail::assign_leaders(out_loads, nlocal, opts.lpt_balance);
  const auto in_assign =
      detail::assign_leaders(in_loads, nlocal, opts.lpt_balance);
  std::map<int, int> out_leader_core, in_leader_core;
  for (std::size_t i = 0; i < out_loads.size(); ++i)
    out_leader_core[out_loads[i].first] = out_assign[i];
  for (std::size_t i = 0; i < in_loads.size(); ++i)
    in_leader_core[in_loads[i].first] = in_assign[i];

  // ---- rank translation tables --------------------------------------------
  auto members = comm.members();
  std::vector<int> g2l(machine.num_ranks(), -1);
  for (int i = 0; i < comm.size(); ++i) g2l[members[i]] = i;
  std::map<int, int> region_root;  // region -> smallest comm-local member
  for (int i = 0; i < comm.size(); ++i) {
    const int reg = machine.region_of(members[i]);
    auto [it, fresh] = region_root.emplace(reg, i);
    if (!fresh) it->second = std::min(it->second, i);
  }
  auto core_to_local = [&](int core) { return g2l[rc.global(core)]; };
  ctx.compute(opts.setup_compute_per_word * comm.size());

  // ---- root handshake: learn peer-region leaders ---------------------------
  // For pair (A -> B): A's root tells B's root A's send leader; B's root
  // tells A's root B's receive leader.  Message ordering per root channel is
  // deterministic (outbound loop before inbound loop on both ends).
  std::map<int, int> g_dst_leader;  // Q  -> comm-local recv leader in Q
  std::map<int, int> g_src_leader;  // R' -> comm-local send leader in R'
  std::vector<long long> hs_blob;
  if (me == region_root.at(my_region)) {
    for (const auto& [q, core] : out_leader_core)
      co_await coll::send_val<long long>(
          ctx, comm, region_root.at(q), core_to_local(core), tag_hs);
    for (const auto& [rr, core] : in_leader_core)
      co_await coll::send_val<long long>(
          ctx, comm, region_root.at(rr), core_to_local(core), tag_hs);
    for (const auto& [rr, v] : in_pairs)
      g_src_leader[rr] = static_cast<int>(co_await coll::recv_val<long long>(
          ctx, comm, region_root.at(rr), tag_hs));
    for (const auto& [q, v] : out_pairs)
      g_dst_leader[q] = static_cast<int>(co_await coll::recv_val<long long>(
          ctx, comm, region_root.at(q), tag_hs));
    hs_blob.push_back(static_cast<long long>(g_src_leader.size()));
    for (const auto& [rr, l] : g_src_leader) {
      hs_blob.push_back(rr);
      hs_blob.push_back(l);
    }
    hs_blob.push_back(static_cast<long long>(g_dst_leader.size()));
    for (const auto& [q, l] : g_dst_leader) {
      hs_blob.push_back(q);
      hs_blob.push_back(l);
    }
  }
  co_await coll::bcast(ctx, rc, hs_blob, 0);
  if (me != region_root.at(my_region)) {
    std::size_t pos = 0;
    const long long nin = hs_blob[pos++];
    for (long long i = 0; i < nin; ++i) {
      const int rr = static_cast<int>(hs_blob[pos++]);
      g_src_leader[rr] = static_cast<int>(hs_blob[pos++]);
    }
    const long long nout = hs_blob[pos++];
    for (long long i = 0; i < nout; ++i) {
      const int q = static_cast<int>(hs_blob[pos++]);
      g_dst_leader[q] = static_cast<int>(hs_blob[pos++]);
    }
  }

  // ---- pair layouts and staging buffers ------------------------------------
  std::map<int, PairLayout> out_layout, in_layout;
  for (const auto& [q, v] : out_pairs)
    out_layout[q] = detail::pair_layout(v, dedup);
  for (const auto& [rr, v] : in_pairs)
    in_layout[rr] = detail::pair_layout(v, dedup);

  std::vector<int> my_out_qs, my_in_rs;
  for (const auto& [q, core] : out_leader_core)
    if (core == my_core) my_out_qs.push_back(q);
  for (const auto& [rr, core] : in_leader_core)
    if (core == my_core) my_in_rs.push_back(rr);

  std::map<int, long> s_block_off, g_block_off;
  long s_total = 0, g_total = 0;
  for (int q : my_out_qs) {
    s_block_off[q] = s_total;
    s_total += out_layout[q].total;
  }
  for (int rr : my_in_rs) {
    g_block_off[rr] = g_total;
    g_total += in_layout[rr].total;
  }
  obj->s_stage.resize(s_total);
  obj->g_stage.resize(g_total);

  // ---- g phase --------------------------------------------------------------
  for (int q : my_out_qs) {
    auto seg = std::span<double>(obj->s_stage)
                   .subspan(s_block_off[q], out_layout[q].total);
    obj->g_sends.push_back(Request::send(
        comm, std::as_bytes(std::span<const double>(seg)), g_dst_leader.at(q),
        tag_g));
    ++obj->stat.global_msgs;
    obj->stat.global_values += out_layout[q].total;
    obj->stat.max_global_msg_values =
        std::max(obj->stat.max_global_msg_values, out_layout[q].total);
  }
  for (int rr : my_in_rs) {
    auto seg = std::span<double>(obj->g_stage)
                   .subspan(g_block_off[rr], in_layout[rr].total);
    obj->g_recvs.push_back(Request::recv(comm, std::as_writable_bytes(seg),
                                         g_src_leader.at(rr), tag_g));
  }

  // ---- s phase: source side --------------------------------------------------
  for (int L = 0; L < nlocal; ++L) {
    std::vector<int> gather;
    std::vector<int> self_dst;
    for (const auto& [q, core] : out_leader_core) {
      if (core != L) continue;
      if (!dedup) {
        for (const Edge* e : out_pairs.at(q)) {
          if (e->src != me) continue;
          const int i = dst_index.at(e->dst);
          for (int k = 0; k < e->count; ++k)
            gather.push_back(args.sdispls[i] + k);
        }
      } else {
        // Unique gids this rank contributes to Q, each gathered from its
        // first occurrence in the send buffer.
        std::map<gidx, int> first;
        for (const Edge* e : out_pairs.at(q)) {
          if (e->src != me) continue;
          const int i = dst_index.at(e->dst);
          for (int k = 0; k < e->count; ++k)
            first.emplace(args.send_idx[args.sdispls[i] + k],
                          args.sdispls[i] + k);
        }
        for (const auto& [gid, pos] : first) gather.push_back(pos);
      }
      if (L == my_core) {
        for (long off :
             src_item_offsets(out_layout.at(q), out_pairs.at(q), me, dedup))
          self_dst.push_back(static_cast<int>(s_block_off.at(q) + off));
      }
    }
    if (gather.empty()) continue;
    if (L == my_core) {
      obj->s_self.src = std::move(gather);
      obj->s_self.dst = std::move(self_dst);
    } else {
      PlanMsg m;
      m.peer = core_to_local(L);
      m.gather = std::move(gather);
      m.buf.resize(m.gather.size());
      m.req = Request::send(
          comm,
          std::as_bytes(std::span<const double>(m.buf.data(), m.buf.size())),
          m.peer, tag_s);
      ++obj->stat.local_msgs;
      obj->stat.local_values += static_cast<long>(m.gather.size());
      obj->s_sends.push_back(std::move(m));
    }
  }

  // ---- s phase: leader side ---------------------------------------------------
  if (!my_out_qs.empty()) {
    for (int core = 0; core < nlocal; ++core) {
      const int src = core_to_local(core);
      if (src == me) continue;
      std::vector<int> sc_dst;
      for (int q : my_out_qs)
        for (long off :
             src_item_offsets(out_layout.at(q), out_pairs.at(q), src, dedup))
          sc_dst.push_back(static_cast<int>(s_block_off.at(q) + off));
      if (sc_dst.empty()) continue;
      PlanMsg m;
      m.peer = src;
      m.scatter_dst = std::move(sc_dst);
      m.scatter_src.resize(m.scatter_dst.size());
      std::iota(m.scatter_src.begin(), m.scatter_src.end(), 0);
      m.buf.resize(m.scatter_dst.size());
      m.req = Request::recv(
          comm, std::as_writable_bytes(std::span<double>(m.buf)), m.peer,
          tag_s);
      obj->s_recvs.push_back(std::move(m));
    }
  }

  // ---- r phase: leader side -----------------------------------------------------
  std::vector<int> self_vals;  // value gather list when I am my own dest
  if (!my_in_rs.empty()) {
    for (int core = 0; core < nlocal; ++core) {
      const int d = core_to_local(core);
      std::vector<int> gather;
      for (int rr : my_in_rs) {
        const auto& pair = in_pairs.at(rr);
        const auto& lay = in_layout.at(rr);
        for (std::size_t e = 0; e < pair.size(); ++e) {
          if (pair[e]->dst != d) continue;
          if (!dedup) {
            for (int k = 0; k < pair[e]->count; ++k)
              gather.push_back(static_cast<int>(
                  g_block_off.at(rr) + lay.segments[e].offset + k));
          } else {
            for (gidx gid : detail::unique_sorted(pair[e]->gids))
              gather.push_back(static_cast<int>(
                  g_block_off.at(rr) + lay.find(pair[e]->src, gid)));
          }
        }
      }
      if (gather.empty()) continue;
      if (d == me) {
        self_vals = std::move(gather);
      } else {
        PlanMsg m;
        m.peer = d;
        m.gather = std::move(gather);
        m.buf.resize(m.gather.size());
        m.req = Request::send(
            comm,
            std::as_bytes(std::span<const double>(m.buf.data(), m.buf.size())),
            m.peer, tag_r);
        ++obj->stat.local_msgs;
        obj->stat.local_values += static_cast<long>(m.gather.size());
        obj->r_sends.push_back(std::move(m));
      }
    }
  }

  // ---- r phase: destination side ---------------------------------------------
  for (int core = 0; core < nlocal; ++core) {
    std::vector<int> sc_src, sc_dst;
    int value_pos = 0;
    for (const auto& [rr, lcore] : in_leader_core) {
      if (lcore != core) continue;
      for (const Edge* e : in_pairs.at(rr)) {
        if (e->dst != me) continue;
        const int i = src_index.at(e->src);
        if (!dedup) {
          for (int k = 0; k < e->count; ++k) {
            sc_src.push_back(value_pos++);
            sc_dst.push_back(args.rdispls[i] + k);
          }
        } else {
          const auto u = detail::unique_sorted(e->gids);
          for (std::size_t ui = 0; ui < u.size(); ++ui)
            for (int k = 0; k < e->count; ++k)
              if (args.recv_idx[args.rdispls[i] + k] == u[ui]) {
                sc_src.push_back(value_pos + static_cast<int>(ui));
                sc_dst.push_back(args.rdispls[i] + k);
              }
          value_pos += static_cast<int>(u.size());
        }
      }
    }
    if (sc_dst.empty()) continue;
    if (core == my_core) {
      // I am my own in-leader: resolve through the value list computed on
      // the leader side.
      obj->r_self.src.resize(sc_dst.size());
      obj->r_self.dst = sc_dst;
      for (std::size_t k = 0; k < sc_dst.size(); ++k)
        obj->r_self.src[k] = self_vals[sc_src[k]];
    } else {
      PlanMsg m;
      m.peer = core_to_local(core);
      m.scatter_src = std::move(sc_src);
      m.scatter_dst = std::move(sc_dst);
      m.buf.resize(value_pos);
      m.req = Request::recv(
          comm, std::as_writable_bytes(std::span<double>(m.buf)), m.peer,
          tag_r);
      obj->r_recvs.push_back(std::move(m));
    }
  }

  // Charge the plan-construction work (index map building) to this rank.
  ctx.compute(opts.setup_compute_per_word *
              static_cast<double>(s_total + g_total + out_edges.size() +
                                  in_edges.size() + nlocal));
  (void)tag_l;
  co_return std::unique_ptr<NeighborAlltoallv>(std::move(obj));
}

}  // namespace mpix
