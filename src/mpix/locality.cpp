/// \file locality.cpp
/// \brief Locality-aware persistent neighbor alltoallv (Algorithms 4-6).
///
/// Communication is split into four phases (paper Section 3.2):
///   l — fully local: source and destination share a region (direct p2p);
///   s — initial redistribution: each source forwards its remote-bound
///       values to the region's designated leader per destination region;
///   g — one inter-region message per (source region, destination region)
///       pair, from the sending leader to the receiving leader;
///   r — final redistribution from the receiving leader to destinations.
///
/// The implementation is split in two halves matching the public API:
///
///  * `make_locality_plan` (collective) computes every routing decision —
///    gather/scatter index maps, staging layouts, leader assignments — from
///    metadata shared inside each region plus a root-to-root handshake, and
///    stores them in a buffer-free `LocalityPlan`;
///  * `impl::bind_locality` (purely local) attaches payload buffers and
///    fresh message channels to a plan, scaling all value offsets by the
///    arguments' `element_size`.
///
/// start/wait only move payload.  With `Method::locality_dedup`, values
/// carrying the same user-supplied index cross each region boundary once
/// (Section 3.3).

#include <cstring>
#include <numeric>

#include "mpix/detail.hpp"
#include "mpix/impl.hpp"
#include "mpix/reliable.hpp"
#include "util/flat_map.hpp"

namespace mpix {

namespace coll = simmpi::coll;

namespace {

using detail::Edge;
using detail::PairLayout;
using simmpi::Comm;
using simmpi::Context;
using simmpi::Request;
using simmpi::Task;

/// A staged message bound to its persistent buffer and channel.  The index
/// maps live in the (shared) plan; `buf` holds `element_size`-sized values.
struct BoundGather {
  std::span<const int> gather;  ///< source-array value position per value
  std::vector<std::byte> buf;
  Request req;
};
struct BoundScatter {
  std::span<const int> scatter_src;  ///< payload value position
  std::span<const int> scatter_dst;  ///< destination-array value position
  std::vector<std::byte> buf;
  Request req;
};

void gather_into(std::span<const std::byte> src, std::size_t es,
                 std::span<const int> idx, std::span<std::byte> out) {
  for (std::size_t k = 0; k < idx.size(); ++k)
    std::memcpy(out.data() + k * es, src.data() + idx[k] * es, es);
}

void scatter_from(std::span<const std::byte> buf, std::size_t es,
                  std::span<const int> src, std::span<const int> dst,
                  std::span<std::byte> out) {
  for (std::size_t k = 0; k < dst.size(); ++k)
    std::memcpy(out.data() + dst[k] * es, buf.data() + src[k] * es, es);
}

void copy_values(std::span<const std::byte> from, std::span<const int> src,
                 std::span<std::byte> to, std::span<const int> dst,
                 std::size_t es) {
  for (std::size_t k = 0; k < src.size(); ++k)
    std::memcpy(to.data() + dst[k] * es, from.data() + src[k] * es, es);
}

struct LocalityNeighbor final : NeighborAlltoallv {
  AlltoallvArgs args;
  std::shared_ptr<const LocalityPlan> routing;
  Reliability rel;
  std::vector<std::byte> s_stage, g_stage;
  std::vector<Request> l_sends, l_recvs;  // direct user-buffer p2p
  std::vector<Request> g_sends, g_recvs;  // direct stage-buffer p2p
  // Inter-region channels under Options::reliability (only the g phase
  // crosses the network; l/s/r traffic is intra-node and never dropped).
  std::vector<impl::RelSend> rel_g_sends;
  std::vector<impl::RelRecv> rel_g_recvs;
  std::vector<BoundGather> s_sends, r_sends;
  std::vector<BoundScatter> s_recvs, r_recvs;

  Task<> start(Context& ctx) override {
    const std::size_t es = args.element_size;
    // Fully local traffic goes out immediately (Algorithm 5).
    for (auto& r : l_sends) r.start(ctx);
    for (auto& r : l_recvs) r.start(ctx);
    // Initial redistribution: start AND complete before inter-region.
    for (auto& m : s_sends) {
      gather_into(args.sendbuf, es, m.gather, m.buf);
      m.req.start(ctx);
    }
    copy_values(args.sendbuf, routing->s_self.src, s_stage,
                routing->s_self.dst, es);
    for (auto& m : s_recvs) m.req.start(ctx);
    for (auto& m : s_recvs) {
      co_await ctx.wait(m.req);
      scatter_from(m.buf, es, m.scatter_src, m.scatter_dst, s_stage);
    }
    for (auto& m : s_sends) co_await ctx.wait(m.req);
    // Inter-region messages.
    for (auto& r : g_sends) r.start(ctx);
    for (auto& r : rel_g_sends) r.start(ctx);
    for (auto& r : g_recvs) r.start(ctx);
    for (auto& r : rel_g_recvs) r.start(ctx);
    co_return;
  }

  Task<> wait(Context& ctx) override {
    const std::size_t es = args.element_size;
    // Complete fully local and inter-region traffic (Algorithm 6).
    for (auto& r : l_sends) co_await ctx.wait(r);
    for (auto& r : l_recvs) co_await ctx.wait(r);
    for (auto& r : g_recvs) co_await ctx.wait(r);
    for (auto& r : g_sends) co_await ctx.wait(r);
    // Multiplexed: sequential per-channel finishing can deadlock across
    // leaders on dropped messages (see reliable.hpp).
    co_await impl::finish_channels(ctx, rel, rel_g_recvs, rel_g_sends);
    // Final redistribution.
    for (auto& m : r_sends) {
      gather_into(g_stage, es, m.gather, m.buf);
      m.req.start(ctx);
    }
    copy_values(g_stage, routing->r_self.src, args.recvbuf,
                routing->r_self.dst, es);
    for (auto& m : r_recvs) m.req.start(ctx);
    for (auto& m : r_recvs) {
      co_await ctx.wait(m.req);
      scatter_from(m.buf, es, m.scatter_src, m.scatter_dst, args.recvbuf);
    }
    for (auto& m : r_sends) co_await ctx.wait(m.req);
  }

  NeighborStats stats() const override { return routing->stats; }
  const char* name() const override {
    return routing->dedup ? "locality+dedup" : "locality";
  }
  std::shared_ptr<const LocalityPlan> plan() const override { return routing; }
};

/// Within-pair value offsets (in canonical enumeration order) of `src`'s
/// contribution to a region pair.
std::vector<long> src_item_offsets(const PairLayout& lay,
                                   const std::vector<const Edge*>& pair,
                                   int src, bool dedup) {
  std::vector<long> out;
  if (!dedup) {
    for (std::size_t e = 0; e < pair.size(); ++e)
      if (pair[e]->src == src)
        for (int k = 0; k < pair[e]->count; ++k)
          out.push_back(lay.segments[e].offset + k);
  } else {
    for (const auto& blk : lay.src_blocks)
      if (blk.src == src)
        for (std::size_t k = 0; k < blk.gids.size(); ++k)
          out.push_back(blk.offset + static_cast<long>(k));
  }
  return out;
}

}  // namespace

Task<std::shared_ptr<const LocalityPlan>> impl::build_locality_plan(
    Context& ctx, const simmpi::DistGraph& graph, AlltoallvArgs args,
    Method method, Options opts) {
  if (!uses_locality(method))
    throw simmpi::SimError(
        "make_locality_plan: Method::standard has no locality plan");
  const bool dedup = needs_idx(method);
  detail::validate_args(graph, args, dedup);
  detail::reject_duplicate_edges(graph);
  const Comm& comm = graph.comm;
  const auto& machine = ctx.engine().machine();

  auto plan = std::make_shared<LocalityPlan>();
  plan->dedup = dedup;
  plan->lpt_balance = opts.lpt_balance;
  plan->setup_compute_per_word = opts.setup_compute_per_word;
  plan->binding_fingerprint = detail::binding_fingerprint(comm, machine);
  plan->destinations = graph.destinations;
  plan->sources = graph.sources;
  plan->sendcounts = args.sendcounts;
  plan->sdispls = args.sdispls;
  plan->recvcounts = args.recvcounts;
  plan->rdispls = args.rdispls;
  if (dedup) {
    auto si = args.send_idx.first(args.send_values());
    auto ri = args.recv_idx.first(args.recv_values());
    plan->send_idx.assign(si.begin(), si.end());
    plan->recv_idx.assign(ri.begin(), ri.end());
  }

  const int me = comm.rank();
  auto region_of = [&](int local) {
    return machine.region_of(comm.global(local));
  };
  const int my_region = region_of(me);

  const int tag_hs = ctx.engine().next_coll_tag(comm);

  // ---- l phase: straight from this rank's own arguments ------------------
  util::FlatMap<int, int> dst_index, src_index;
  for (std::size_t i = 0; i < graph.destinations.size(); ++i)
    dst_index[graph.destinations[i]] = static_cast<int>(i);
  for (std::size_t i = 0; i < graph.sources.size(); ++i)
    src_index[graph.sources[i]] = static_cast<int>(i);

  for (std::size_t i = 0; i < graph.destinations.size(); ++i) {
    const int d = graph.destinations[i];
    if (region_of(d) != my_region) continue;
    plan->l_sends.push_back({d, args.sdispls[i], args.sendcounts[i]});
    ++plan->stats.local_msgs;
    plan->stats.local_values += args.sendcounts[i];
  }
  for (std::size_t i = 0; i < graph.sources.size(); ++i) {
    const int s = graph.sources[i];
    if (region_of(s) != my_region) continue;
    plan->l_recvs.push_back({s, args.rdispls[i], args.recvcounts[i]});
  }

  // ---- metadata exchange within the region --------------------------------
  Comm rc = co_await coll::split_by_region(ctx, comm);
  const int nlocal = rc.size();
  const int my_core = rc.rank();
  auto blob = detail::serialize_edges(graph, args, dedup);
  auto all_md = co_await coll::allgatherv<long long>(ctx, rc, std::move(blob));
  ctx.compute(opts.setup_compute_per_word *
              static_cast<double>(all_md.size()));
  std::vector<Edge> out_edges, in_edges;
  detail::parse_edges(all_md, dedup, out_edges, in_edges);

  // Group remote traffic by peer region (sorted FlatMap => ascending region
  // ids, identical on every member since the metadata is identical).
  util::FlatMap<int, std::vector<const Edge*>> out_pairs, in_pairs;
  for (const auto& e : out_edges) {
    const int q = region_of(e.dst);
    if (q != my_region) out_pairs[q].push_back(&e);
  }
  for (const auto& e : in_edges) {
    const int rr = region_of(e.src);
    if (rr != my_region) in_pairs[rr].push_back(&e);
  }

  // ---- leader assignment ---------------------------------------------------
  std::vector<std::pair<int, long>> out_loads, in_loads;
  for (const auto& [q, v] : out_pairs) {
    long t = 0;
    for (const Edge* e : v) t += e->count;
    out_loads.emplace_back(q, t);
  }
  for (const auto& [rr, v] : in_pairs) {
    long t = 0;
    for (const Edge* e : v) t += e->count;
    in_loads.emplace_back(rr, t);
  }
  const auto out_assign =
      detail::assign_leaders(out_loads, nlocal, opts.lpt_balance);
  const auto in_assign =
      detail::assign_leaders(in_loads, nlocal, opts.lpt_balance);
  util::FlatMap<int, int> out_leader_core, in_leader_core;
  for (std::size_t i = 0; i < out_loads.size(); ++i)
    out_leader_core[out_loads[i].first] = out_assign[i];
  for (std::size_t i = 0; i < in_loads.size(); ++i)
    in_leader_core[in_loads[i].first] = in_assign[i];

  // ---- rank translation tables --------------------------------------------
  auto members = comm.members();
  std::vector<int> g2l(machine.num_ranks(), -1);
  for (int i = 0; i < comm.size(); ++i) g2l[members[i]] = i;
  util::FlatMap<int, int> region_root;  // region -> smallest comm-local member
  for (int i = 0; i < comm.size(); ++i) {
    const int reg = machine.region_of(members[i]);
    if (int* root = region_root.find(reg))
      *root = std::min(*root, i);
    else
      region_root[reg] = i;
  }
  auto core_to_local = [&](int core) { return g2l[rc.global(core)]; };
  ctx.compute(opts.setup_compute_per_word * comm.size());

  // ---- root handshake: learn peer-region leaders ---------------------------
  // For pair (A -> B): A's root tells B's root A's send leader; B's root
  // tells A's root B's receive leader.  Message ordering per root channel is
  // deterministic (outbound loop before inbound loop on both ends).
  util::FlatMap<int, int> g_dst_leader;  // Q  -> comm-local recv leader in Q
  util::FlatMap<int, int> g_src_leader;  // R' -> comm-local send leader in R'
  std::vector<long long> hs_blob;
  if (me == *region_root.find(my_region)) {
    for (const auto& [q, core] : out_leader_core)
      co_await coll::send_val<long long>(
          ctx, comm, *region_root.find(q), core_to_local(core), tag_hs);
    for (const auto& [rr, core] : in_leader_core)
      co_await coll::send_val<long long>(
          ctx, comm, *region_root.find(rr), core_to_local(core), tag_hs);
    for (const auto& [rr, v] : in_pairs)
      g_src_leader[rr] = static_cast<int>(co_await coll::recv_val<long long>(
          ctx, comm, *region_root.find(rr), tag_hs));
    for (const auto& [q, v] : out_pairs)
      g_dst_leader[q] = static_cast<int>(co_await coll::recv_val<long long>(
          ctx, comm, *region_root.find(q), tag_hs));
    hs_blob.push_back(static_cast<long long>(g_src_leader.size()));
    for (const auto& [rr, l] : g_src_leader) {
      hs_blob.push_back(rr);
      hs_blob.push_back(l);
    }
    hs_blob.push_back(static_cast<long long>(g_dst_leader.size()));
    for (const auto& [q, l] : g_dst_leader) {
      hs_blob.push_back(q);
      hs_blob.push_back(l);
    }
  }
  co_await coll::bcast(ctx, rc, hs_blob, 0);
  if (me != *region_root.find(my_region)) {
    std::size_t pos = 0;
    const long long nin = hs_blob[pos++];
    for (long long i = 0; i < nin; ++i) {
      const int rr = static_cast<int>(hs_blob[pos++]);
      g_src_leader[rr] = static_cast<int>(hs_blob[pos++]);
    }
    const long long nout = hs_blob[pos++];
    for (long long i = 0; i < nout; ++i) {
      const int q = static_cast<int>(hs_blob[pos++]);
      g_dst_leader[q] = static_cast<int>(hs_blob[pos++]);
    }
  }

  // ---- pair layouts and staging buffers ------------------------------------
  util::FlatMap<int, PairLayout> out_layout, in_layout;
  for (const auto& [q, v] : out_pairs)
    out_layout[q] = detail::pair_layout(v, dedup);
  for (const auto& [rr, v] : in_pairs)
    in_layout[rr] = detail::pair_layout(v, dedup);

  std::vector<int> my_out_qs, my_in_rs;
  for (const auto& [q, core] : out_leader_core)
    if (core == my_core) my_out_qs.push_back(q);
  for (const auto& [rr, core] : in_leader_core)
    if (core == my_core) my_in_rs.push_back(rr);

  util::FlatMap<int, long> s_block_off, g_block_off;
  long s_total = 0, g_total = 0;
  for (int q : my_out_qs) {
    s_block_off[q] = s_total;
    s_total += out_layout.find(q)->total;
  }
  for (int rr : my_in_rs) {
    g_block_off[rr] = g_total;
    g_total += in_layout.find(rr)->total;
  }
  plan->s_stage_values = s_total;
  plan->g_stage_values = g_total;

  // ---- g phase --------------------------------------------------------------
  for (int q : my_out_qs) {
    const long total = out_layout.find(q)->total;
    plan->g_sends.push_back({*g_dst_leader.find(q), *s_block_off.find(q), total});
    ++plan->stats.global_msgs;
    plan->stats.global_values += total;
    plan->stats.max_global_msg_values =
        std::max(plan->stats.max_global_msg_values, total);
    detail::count_link_crossing(machine, comm.global(me),
                                comm.global(*g_dst_leader.find(q)), total,
                                plan->stats);
  }
  for (int rr : my_in_rs)
    plan->g_recvs.push_back({*g_src_leader.find(rr), *g_block_off.find(rr),
                             in_layout.find(rr)->total});

  // ---- s phase: source side --------------------------------------------------
  for (int L = 0; L < nlocal; ++L) {
    std::vector<int> gather;
    std::vector<int> self_dst;
    for (const auto& [q, core] : out_leader_core) {
      if (core != L) continue;
      if (!dedup) {
        for (const Edge* e : *out_pairs.find(q)) {
          if (e->src != me) continue;
          const int i = *dst_index.find(e->dst);
          for (int k = 0; k < e->count; ++k)
            gather.push_back(args.sdispls[i] + k);
        }
      } else {
        // Unique gids this rank contributes to Q, each gathered from its
        // first occurrence in the send buffer (keep-first, gid-ascending).
        util::FlatMap<gidx, int> first;
        for (const Edge* e : *out_pairs.find(q)) {
          if (e->src != me) continue;
          const int i = *dst_index.find(e->dst);
          for (int k = 0; k < e->count; ++k) {
            const gidx gid = args.send_idx[args.sdispls[i] + k];
            if (!first.find(gid)) first[gid] = args.sdispls[i] + k;
          }
        }
        for (const auto& [gid, pos] : first) gather.push_back(pos);
      }
      if (L == my_core) {
        for (long off :
             src_item_offsets(*out_layout.find(q), *out_pairs.find(q), me,
                              dedup))
          self_dst.push_back(static_cast<int>(*s_block_off.find(q) + off));
      }
    }
    if (gather.empty()) continue;
    if (L == my_core) {
      plan->s_self.src = std::move(gather);
      plan->s_self.dst = std::move(self_dst);
    } else {
      ++plan->stats.local_msgs;
      plan->stats.local_values += static_cast<long>(gather.size());
      plan->s_sends.push_back({core_to_local(L), std::move(gather)});
    }
  }

  // ---- s phase: leader side ---------------------------------------------------
  if (!my_out_qs.empty()) {
    for (int core = 0; core < nlocal; ++core) {
      const int src = core_to_local(core);
      if (src == me) continue;
      std::vector<int> sc_dst;
      for (int q : my_out_qs)
        for (long off : src_item_offsets(*out_layout.find(q),
                                         *out_pairs.find(q), src, dedup))
          sc_dst.push_back(static_cast<int>(*s_block_off.find(q) + off));
      if (sc_dst.empty()) continue;
      LocalityPlan::ScatterMsg m;
      m.peer = src;
      m.values = static_cast<int>(sc_dst.size());
      m.scatter_dst = std::move(sc_dst);
      m.scatter_src.resize(m.scatter_dst.size());
      std::iota(m.scatter_src.begin(), m.scatter_src.end(), 0);
      plan->s_recvs.push_back(std::move(m));
    }
  }

  // ---- r phase: leader side -----------------------------------------------------
  std::vector<int> self_vals;  // value gather list when I am my own dest
  if (!my_in_rs.empty()) {
    for (int core = 0; core < nlocal; ++core) {
      const int d = core_to_local(core);
      std::vector<int> gather;
      for (int rr : my_in_rs) {
        const auto& pair = *in_pairs.find(rr);
        const auto& lay = *in_layout.find(rr);
        const long block = *g_block_off.find(rr);
        for (std::size_t e = 0; e < pair.size(); ++e) {
          if (pair[e]->dst != d) continue;
          if (!dedup) {
            for (int k = 0; k < pair[e]->count; ++k)
              gather.push_back(
                  static_cast<int>(block + lay.segments[e].offset + k));
          } else {
            for (gidx gid : detail::unique_sorted(pair[e]->gids))
              gather.push_back(
                  static_cast<int>(block + lay.find(pair[e]->src, gid)));
          }
        }
      }
      if (gather.empty()) continue;
      if (d == me) {
        self_vals = std::move(gather);
      } else {
        ++plan->stats.local_msgs;
        plan->stats.local_values += static_cast<long>(gather.size());
        plan->r_sends.push_back({d, std::move(gather)});
      }
    }
  }

  // ---- r phase: destination side ---------------------------------------------
  for (int core = 0; core < nlocal; ++core) {
    std::vector<int> sc_src, sc_dst;
    int value_pos = 0;
    for (const auto& [rr, lcore] : in_leader_core) {
      if (lcore != core) continue;
      for (const Edge* e : *in_pairs.find(rr)) {
        if (e->dst != me) continue;
        const int i = *src_index.find(e->src);
        if (!dedup) {
          for (int k = 0; k < e->count; ++k) {
            sc_src.push_back(value_pos++);
            sc_dst.push_back(args.rdispls[i] + k);
          }
        } else {
          const auto u = detail::unique_sorted(e->gids);
          for (std::size_t ui = 0; ui < u.size(); ++ui)
            for (int k = 0; k < e->count; ++k)
              if (args.recv_idx[args.rdispls[i] + k] == u[ui]) {
                sc_src.push_back(value_pos + static_cast<int>(ui));
                sc_dst.push_back(args.rdispls[i] + k);
              }
          value_pos += static_cast<int>(u.size());
        }
      }
    }
    if (sc_dst.empty()) continue;
    if (core == my_core) {
      // I am my own in-leader: resolve through the value list computed on
      // the leader side.
      plan->r_self.src.resize(sc_dst.size());
      plan->r_self.dst = sc_dst;
      for (std::size_t k = 0; k < sc_dst.size(); ++k)
        plan->r_self.src[k] = self_vals[sc_src[k]];
    } else {
      LocalityPlan::ScatterMsg m;
      m.peer = core_to_local(core);
      m.values = value_pos;
      m.scatter_src = std::move(sc_src);
      m.scatter_dst = std::move(sc_dst);
      plan->r_recvs.push_back(std::move(m));
    }
  }

  // Charge the routing computation (index map building) to this rank.
  ctx.compute(opts.setup_compute_per_word *
              static_cast<double>(s_total + g_total + out_edges.size() +
                                  in_edges.size() + nlocal));
  co_return plan;
}

std::unique_ptr<NeighborAlltoallv> impl::bind_locality(
    Context& ctx, const simmpi::DistGraph& graph, AlltoallvArgs args,
    std::shared_ptr<const LocalityPlan> plan, const Options& opts) {
  detail::validate_plan_args(*plan, graph, args);
  if (opts.reliability.enabled) impl::validate_reliability(opts.reliability);
  const Comm& comm = graph.comm;
  const std::size_t es = args.element_size;
  const LocalityPlan& p = *plan;

  auto obj = std::make_unique<LocalityNeighbor>();
  obj->args = std::move(args);
  obj->routing = plan;
  obj->rel = opts.reliability;
  obj->s_stage.resize(p.s_stage_values * es);
  obj->g_stage.resize(p.g_stage_values * es);

  const int tag_l = ctx.engine().next_coll_tag(comm);
  const int tag_s = ctx.engine().next_coll_tag(comm);
  const int tag_g = ctx.engine().next_coll_tag(comm);
  const int tag_r = ctx.engine().next_coll_tag(comm);
  // Minted unconditionally when reliability is on so every rank's tag
  // sequence stays uniform, leaders or not.
  const int tag_gack =
      opts.reliability.enabled ? ctx.engine().next_coll_tag(comm) : -1;

  for (const auto& m : p.l_sends)
    obj->l_sends.push_back(Request::send(
        comm, obj->args.sendbuf.subspan(m.displ * es, m.count * es), m.peer,
        tag_l));
  for (const auto& m : p.l_recvs)
    obj->l_recvs.push_back(Request::recv(
        comm, obj->args.recvbuf.subspan(m.displ * es, m.count * es), m.peer,
        tag_l));

  for (const auto& m : p.g_sends) {
    auto seg = std::span<const std::byte>(obj->s_stage)
                   .subspan(m.offset * es, m.count * es);
    if (impl::wrap_channel(comm, m.peer, seg.size(), obj->rel))
      obj->rel_g_sends.push_back(
          impl::RelSend(comm, seg, m.peer, tag_g, tag_gack));
    else
      obj->g_sends.push_back(Request::send(comm, seg, m.peer, tag_g));
  }
  for (const auto& m : p.g_recvs) {
    auto seg = std::span<std::byte>(obj->g_stage)
                   .subspan(m.offset * es, m.count * es);
    if (impl::wrap_channel(comm, m.peer, seg.size(), obj->rel))
      obj->rel_g_recvs.push_back(
          impl::RelRecv(comm, seg, m.peer, tag_g, tag_gack));
    else
      obj->g_recvs.push_back(Request::recv(comm, seg, m.peer, tag_g));
  }

  auto bind_gather = [&](const LocalityPlan::GatherMsg& m, int tag) {
    BoundGather b;
    b.gather = m.gather;
    b.buf.resize(m.gather.size() * es);
    b.req = Request::send(comm, std::span<const std::byte>(b.buf), m.peer, tag);
    return b;
  };
  auto bind_scatter = [&](const LocalityPlan::ScatterMsg& m, int tag) {
    BoundScatter b;
    b.scatter_src = m.scatter_src;
    b.scatter_dst = m.scatter_dst;
    b.buf.resize(static_cast<std::size_t>(m.values) * es);
    b.req = Request::recv(comm, std::span<std::byte>(b.buf), m.peer, tag);
    return b;
  };
  for (const auto& m : p.s_sends) obj->s_sends.push_back(bind_gather(m, tag_s));
  for (const auto& m : p.s_recvs)
    obj->s_recvs.push_back(bind_scatter(m, tag_s));
  for (const auto& m : p.r_sends) obj->r_sends.push_back(bind_gather(m, tag_r));
  for (const auto& m : p.r_recvs)
    obj->r_recvs.push_back(bind_scatter(m, tag_r));

  // Charge the buffer binding work (staging allocation + channel setup).
  ctx.compute(p.setup_compute_per_word *
              static_cast<double>(p.s_stage_values + p.g_stage_values));
  return obj;
}

}  // namespace mpix
