#pragma once
/// \file impl.hpp
/// \brief Internal factories behind the public `neighbor_alltoallv_init`
/// dispatcher (init.cpp).  Not part of the mpix API.

#include <memory>

#include "mpix/alltoall.hpp"
#include "mpix/neighbor.hpp"

namespace mpix::impl {

/// Coroutine behind the public `make_locality_plan` wrapper.  Takes the
/// pattern by value so the frame owns it for the plan build's lifetime.
///
/// The public entry points are deliberately *plain* functions delegating
/// to internal coroutines: g++ 12 miscompiles by-value coroutine
/// parameters initialized from a user-defined conversion at the call site
/// (the `AlltoallvArgsT<T>` -> `AlltoallvArgs` conversion every typed
/// caller performs), double-destroying the converted temporary.  A regular
/// call boundary sidesteps the bug for every caller.
simmpi::Task<std::shared_ptr<const LocalityPlan>> build_locality_plan(
    simmpi::Context& ctx, const simmpi::DistGraph& graph, AlltoallvArgs args,
    Method method, Options opts);

/// Standard method: persistent point-to-point wrap.  Purely local setup
/// (with `opts.reliability.enabled`, network channels get the reliable
/// stop-and-wait wrap — see reliable.hpp).
std::unique_ptr<NeighborAlltoallv> make_standard(simmpi::Context& ctx,
                                                 const simmpi::DistGraph& graph,
                                                 AlltoallvArgs args,
                                                 const Options& opts);

/// Locality methods: bind buffers and channels to a finished plan.  Purely
/// local — all setup communication already happened in make_locality_plan.
std::unique_ptr<NeighborAlltoallv> bind_locality(
    simmpi::Context& ctx, const simmpi::DistGraph& graph, AlltoallvArgs args,
    std::shared_ptr<const LocalityPlan> plan, const Options& opts);

/// Dense `AlltoallMethod::bruck`: collectively build the rotation
/// schedule (bruck.cpp).  Counts/displacements carry one entry per comm
/// rank; payload spans are never read.  Same plain-wrapper caveat as
/// build_locality_plan.
simmpi::Task<std::shared_ptr<const BruckPlan>> build_bruck_plan(
    simmpi::Context& ctx, simmpi::Comm comm, AlltoallvArgs args, Options opts);

/// Dense `AlltoallMethod::bruck`: bind buffers and channels to a finished
/// BruckPlan.  Purely local.
std::unique_ptr<NeighborAlltoallv> bind_bruck(
    simmpi::Context& ctx, simmpi::Comm comm, AlltoallvArgs args,
    std::shared_ptr<const BruckPlan> plan, const Options& opts);

}  // namespace mpix::impl
