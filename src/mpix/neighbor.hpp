#pragma once
/// \file neighbor.hpp
/// \brief Persistent neighborhood all-to-all-v collectives (the paper's core).
///
/// This is the reproduction of MPI Advance's persistent
/// `MPIX_Neighbor_alltoallv_init`.  One entry point,
/// `neighbor_alltoallv_init`, dispatches over `Method`:
///
///  * `Method::standard` — wraps persistent point-to-point messages, one per
///    neighbor (paper Algorithms 1-3, Section 3.1);
///  * `Method::locality` ("partially optimized") — three-step aggregation:
///    traffic toward each remote region is funneled through one local
///    leader per destination region, crossing the region boundary as a
///    single message (Algorithms 4-6, Section 3.2);
///  * `Method::locality_dedup` ("fully optimized") — an API extension
///    passes a unique index per value (`send_idx`/`recv_idx`); values bound
///    for several ranks of the same remote region then cross the boundary
///    once (Section 3.3).
///
/// Payloads are datatype-generic, mirroring `MPI_Datatype` extents: the core
/// `AlltoallvArgs` carries raw bytes plus an `element_size`, and the typed
/// wrapper `AlltoallvArgsT<T>` converts any trivially copyable value type.
/// Counts and displacements are always in *values*, as in MPI.
///
/// Lifecycle mirrors the MPI 4 persistent API: init once (all setup and
/// load balancing is paid here and amortized), then `start`/`wait` per
/// iteration.  Buffers are bound at init and must outlive the collective;
/// `start` reads the current `sendbuf`, `wait` fills `recvbuf`.
///
/// The locality-aware methods split init into two halves: a buffer-free
/// `LocalityPlan` (all setup *communication* — region metadata gather,
/// leader load balancing, root handshake — and all routing computation),
/// and a purely local binding step that attaches buffers and channels.
/// `neighbor_alltoallv_init` builds the plan on demand; passing a
/// previously built plan through `Options::plan` makes init entirely
/// communication-free, so a hierarchy (or a benchmark loop) that re-inits
/// the same halo pattern pays the setup cost once.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

#include "simmpi/dist_graph.hpp"
#include "simmpi/engine.hpp"

namespace mpix {

using gidx = long long;  ///< global value index (paper's API extension)

/// Datatype-generic MPI_Neighbor_alltoallv_init arguments.  The payload is
/// a byte span holding `sendbuf.size() / element_size` values of
/// `element_size` bytes each (the simulated `MPI_Datatype` extent).
/// Counts/displacements are in *values*; `sdispls[i]` locates the segment
/// of `sendbuf` bound for `graph.destinations[i]`, `rdispls[i]` the segment
/// of `recvbuf` arriving from `graph.sources[i]`.  Prefer building through
/// `AlltoallvArgsT<T>` unless the element size is only known at runtime.
struct AlltoallvArgs {
  std::span<const std::byte> sendbuf;
  std::vector<int> sendcounts;
  std::vector<int> sdispls;
  std::span<std::byte> recvbuf;
  std::vector<int> recvcounts;
  std::vector<int> rdispls;
  std::size_t element_size = sizeof(double);  ///< bytes per value

  /// Optional unique indices (required for the dedup variant): send_idx[k]
  /// identifies the value at position k of `sendbuf`; recv_idx[k] the value
  /// expected at position k of `recvbuf`.  Two sendbuf positions with equal
  /// send_idx must hold equal values, and the k-th value of a (src, dst)
  /// segment must carry the same index on both sides.
  std::span<const gidx> send_idx{};
  std::span<const gidx> recv_idx{};

  /// Number of values in the send / receive buffer.
  std::size_t send_values() const { return sendbuf.size() / element_size; }
  std::size_t recv_values() const { return recvbuf.size() / element_size; }
};

/// Typed convenience wrapper: the same arguments over `T` payloads.
/// Converts implicitly to the byte-based `AlltoallvArgs`, so it can be
/// passed directly to `neighbor_alltoallv_init`.
template <class T>
struct AlltoallvArgsT {
  static_assert(std::is_trivially_copyable_v<T>,
                "neighbor collectives move raw bytes");

  std::span<const T> sendbuf;
  std::vector<int> sendcounts;
  std::vector<int> sdispls;
  std::span<T> recvbuf;
  std::vector<int> recvcounts;
  std::vector<int> rdispls;
  std::span<const gidx> send_idx{};
  std::span<const gidx> recv_idx{};

  /// Byte view with `element_size = sizeof(T)`.
  operator AlltoallvArgs() const& {
    return AlltoallvArgs{.sendbuf = std::as_bytes(sendbuf),
                         .sendcounts = sendcounts,
                         .sdispls = sdispls,
                         .recvbuf = std::as_writable_bytes(recvbuf),
                         .recvcounts = recvcounts,
                         .rdispls = rdispls,
                         .element_size = sizeof(T),
                         .send_idx = send_idx,
                         .recv_idx = recv_idx};
  }
  operator AlltoallvArgs() && {
    return AlltoallvArgs{.sendbuf = std::as_bytes(sendbuf),
                         .sendcounts = std::move(sendcounts),
                         .sdispls = std::move(sdispls),
                         .recvbuf = std::as_writable_bytes(recvbuf),
                         .recvcounts = std::move(recvcounts),
                         .rdispls = std::move(rdispls),
                         .element_size = sizeof(T),
                         .send_idx = send_idx,
                         .recv_idx = recv_idx};
  }
};

/// The three implementations of the paper, selected at init.
enum class Method {
  standard,        ///< persistent point-to-point wrap (Section 3.1)
  locality,        ///< locality-aware aggregation (Section 3.2)
  locality_dedup,  ///< aggregation + duplicate removal (Section 3.3)
};

inline constexpr Method kAllMethods[] = {Method::standard, Method::locality,
                                         Method::locality_dedup};

/// Whether the method routes traffic through region leaders (and therefore
/// performs collective setup / uses a LocalityPlan).
constexpr bool uses_locality(Method m) { return m != Method::standard; }

/// Whether the method requires `send_idx`/`recv_idx` annotations.
constexpr bool needs_idx(Method m) { return m == Method::locality_dedup; }

/// Human-readable method name ("standard", "locality", "locality+dedup").
const char* to_string(Method m);

/// Per-rank message statistics of one collective instance (sender side),
/// feeding Figures 8-10.  "local" = intra-region tiers, "global" =
/// inter-region (network) messages.  Point-to-point sends a rank posts to
/// itself go through the simulated MPI layer and count as local messages;
/// the locality plan's staging self-copies (when a rank is its own leader)
/// are plain memcpys and are not counted.
struct NeighborStats {
  long local_msgs = 0;
  long global_msgs = 0;
  long local_values = 0;
  long global_values = 0;
  long max_global_msg_values = 0;
  /// Per switch-link tier (tier 0 = leaf up/down links; see
  /// simmpi::Machine::num_link_tiers): network messages / values this
  /// rank sends whose destination subtree first joins its own *above*
  /// that tier, i.e. the static crossing counts of the plan.  Sized
  /// lazily by the first counted crossing, so both stay empty on flat
  /// machines and for ranks whose traffic never leaves the leaf subtree.
  std::vector<long> link_msgs = {};
  std::vector<long> link_values = {};
};

/// Common polymorphic base of every reusable collective plan (the
/// neighbor methods' LocalityPlan, the dense methods' BruckPlan in
/// alltoall.hpp).  Exists so plan-agnostic plumbing — Options::plan, the
/// harness PlanCache — can hold any plan kind behind one pointer type;
/// each init entry point dynamic_casts to the kind its method needs and
/// throws on mismatch.
struct PlanBase {
  virtual ~PlanBase() = default;
};

/// The reusable, buffer-free half of locality-aware init: every routing
/// decision for one (pattern, machine, method) combination — leader
/// assignments resolved into per-message peers, gather/scatter index maps,
/// staging layouts, message statistics.  Building it is collective (region
/// metadata allgather, root handshake); binding buffers to it is purely
/// local, so a plan built once can be reused by every later init on the
/// same pattern — across element sizes, buffer instances, and even engine
/// runs, as long as the communicator membership and machine shape match.
///
/// All offsets are in *values*; binding scales them by
/// `AlltoallvArgs::element_size`.  Treat instances as immutable
/// (`neighbor_alltoallv_init` holds them by shared_ptr-to-const; plans fed
/// back through `Options::plan` must originate from `make_locality_plan`
/// or `NeighborAlltoallv::plan`, which always own them that way).
struct LocalityPlan : PlanBase,
                      std::enable_shared_from_this<LocalityPlan> {
  bool dedup = false;
  bool lpt_balance = true;
  double setup_compute_per_word = 1.5e-9;  ///< from the Options at build time

  /// Fingerprint of the (communicator membership, machine region layout)
  /// the plan's comm-local peers were resolved against.  Binding validates
  /// it, so a plan cannot silently be reused on a different communicator
  /// or machine shape whose adjacency happens to match.  0 = unchecked
  /// (hand-built plans in unit tests).
  std::uint64_t binding_fingerprint = 0;

  /// The pattern the plan was built for, kept so init can reject
  /// incompatible arguments.  For dedup plans the routing depends on the
  /// index annotations, so those are part of the pattern.
  std::vector<int> destinations, sources;
  std::vector<int> sendcounts, sdispls, recvcounts, rdispls;
  std::vector<gidx> send_idx, recv_idx;

  /// Fully local traffic: direct user-buffer p2p (value displ/count).
  struct DirectMsg {
    int peer = -1;  ///< comm-local rank
    int displ = 0;
    int count = 0;
  };
  std::vector<DirectMsg> l_sends, l_recvs;

  /// Staged send: gather[k] is the source-buffer value position of the
  /// k-th value of the message.
  struct GatherMsg {
    int peer = -1;
    std::vector<int> gather;
  };
  /// Staged receive: value `scatter_src[k]` of the `values`-sized payload
  /// lands at destination-array position `scatter_dst[k]`.
  struct ScatterMsg {
    int peer = -1;
    int values = 0;
    std::vector<int> scatter_src, scatter_dst;
  };
  /// Direct copy for data whose "leader" is the rank itself.
  struct SelfCopy {
    std::vector<int> src, dst;
  };

  std::vector<GatherMsg> s_sends;   ///< initial redistribution, source side
  std::vector<ScatterMsg> s_recvs;  ///< initial redistribution, leader side
  SelfCopy s_self;                  ///< sendbuf -> own s_stage
  std::vector<GatherMsg> r_sends;   ///< final redistribution, leader side
  std::vector<ScatterMsg> r_recvs;  ///< final redistribution, dest side
  SelfCopy r_self;                  ///< own g_stage -> recvbuf

  /// One inter-region message per (region pair, direction), over the
  /// staging buffers (value offset/count).
  struct StageMsg {
    int peer = -1;
    long offset = 0;
    long count = 0;
  };
  std::vector<StageMsg> g_sends, g_recvs;
  long s_stage_values = 0;  ///< send-side staging buffer size, in values
  long g_stage_values = 0;  ///< recv-side staging buffer size, in values

  NeighborStats stats;  ///< fixed at plan time (independent of payload)
};

/// A persistent neighborhood collective (abstract).
class NeighborAlltoallv {
 public:
  virtual ~NeighborAlltoallv() = default;
  /// Begin one exchange (MPI_Start): reads the bound sendbuf.
  virtual simmpi::Task<> start(simmpi::Context& ctx) = 0;
  /// Complete the exchange (MPI_Wait): fills the bound recvbuf.
  virtual simmpi::Task<> wait(simmpi::Context& ctx) = 0;
  /// Message statistics for this rank (fixed at init).
  virtual NeighborStats stats() const = 0;
  virtual const char* name() const = 0;
  /// The locality plan behind this instance (null for Method::standard).
  /// Feed it back through Options::plan to re-init on the same pattern
  /// without any setup communication.
  virtual std::shared_ptr<const LocalityPlan> plan() const { return nullptr; }
  /// The plan behind this instance as the kind-agnostic base (covers plan
  /// kinds that are not a LocalityPlan, e.g. the dense Bruck method's).
  /// Null only for planless methods.
  virtual std::shared_ptr<const PlanBase> plan_base() const { return plan(); }
};

/// Opt-in reliable delivery for the persistent collectives: every
/// *network* data channel carries a per-channel sequence number, the
/// receiver acknowledges each payload with a control message, and the
/// sender retransmits on a virtual-time timeout with exponential backoff
/// (built on simmpi::Context::wait_until).  With a FaultPlan dropping or
/// duplicating messages, recvbufs stay byte-identical to the fault-free
/// run — up to the configured retry budget.  Intra-node channels are
/// never wrapped: the fault model only drops network messages.
/// Must be set uniformly across the ranks of a collective (like every
/// option that shapes the message schedule).
struct Reliability {
  bool enabled = false;
  /// Virtual seconds from posting a send until the first retransmit.
  /// Choose comfortably above the expected network round trip, or the
  /// protocol retransmits spuriously (correct, but noisy and slow).
  double timeout = 1e-3;
  /// Timeout multiplier per successive retransmit (>= 1).
  double backoff = 2.0;
  /// Retransmits per message before giving up with a SimError (>= 1).
  int max_retries = 16;
};

/// Tunable knobs of `neighbor_alltoallv_init`.
struct Options {
  /// Leader assignment strategy of the locality methods: true =
  /// longest-processing-time load balancing over per-region value counts
  /// (default); false = round-robin (ablation baseline).
  bool lpt_balance = true;
  /// Modeled CPU cost per metadata word during setup parsing/plan build.
  double setup_compute_per_word = 1.5e-9;
  /// Reuse a previously built plan: init then performs no communication.
  /// Non-owning — the caller keeps the plan alive until init returns (the
  /// created collective then takes shared ownership).  The plan must come
  /// from make_locality_plan / NeighborAlltoallv::plan{,_base} (or the
  /// dense builders in alltoall.hpp) and match the method — including the
  /// plan *kind*: a neighbor method needs a LocalityPlan, dense bruck a
  /// BruckPlan — the argument pattern, and the graph adjacency, or init
  /// throws.  `lpt_balance`/`setup_compute_per_word` are ignored on reuse
  /// (the plan keeps the values it was built with).
  const PlanBase* plan = nullptr;
  /// Reliable delivery over network channels (see Reliability).  Purely a
  /// binding-time property — plans are reliability-agnostic and reusable
  /// either way.
  Reliability reliability{};
};

// Options is frequently written as a braced temporary inside co_await'd
// init calls; g++ 12 double-destroys such temporaries (see the warning on
// the typed overloads below and docs/COROUTINE_PITFALLS.md), which is only
// harmless while Options stays trivially destructible.  Do not add owning
// members.
static_assert(std::is_trivially_destructible_v<Options>);

/// Build just the locality plan for a pattern (collective over the graph's
/// communicator; all setup communication happens here).  `args` supplies
/// the pattern — counts, displacements and index annotations; its payload
/// spans are never read.  Throws for Method::standard, which has no plan.
simmpi::Task<std::shared_ptr<const LocalityPlan>> make_locality_plan(
    simmpi::Context& ctx, const simmpi::DistGraph& graph,
    const AlltoallvArgs& args, Method method, Options opts = {});

/// Create a persistent neighborhood collective (the paper's
/// MPIX_Neighbor_alltoallv_init).  Collective over the graph's
/// communicator for the locality methods unless `opts.plan` is given, in
/// which case no communication is performed; Method::standard never
/// communicates during init.
simmpi::Task<std::unique_ptr<NeighborAlltoallv>> neighbor_alltoallv_init(
    simmpi::Context& ctx, const simmpi::DistGraph& graph, AlltoallvArgs args,
    Method method = Method::standard, Options opts = {});

/// Typed-argument overloads, normalizing the wrapper to the byte-based
/// core inside a plain (non-coroutine) function.
///
/// \warning GCC 12 miscompiles a braced-init-list temporary materialized
/// inside a `co_await` full-expression (its buffers are double-destroyed,
/// however the callee takes it).  Build the arguments as a *named local*
/// or return them from a helper function — both are safe and are the
/// idiom used throughout this repository — instead of writing
/// `co_await neighbor_alltoallv_init(ctx, g, AlltoallvArgsT<T>{...}, m)`.
/// Minimal repro, idiom and guard checklist: docs/COROUTINE_PITFALLS.md.
template <class T>
simmpi::Task<std::unique_ptr<NeighborAlltoallv>> neighbor_alltoallv_init(
    simmpi::Context& ctx, const simmpi::DistGraph& graph,
    const AlltoallvArgsT<T>& args, Method method = Method::standard,
    Options opts = {}) {
  AlltoallvArgs bytes = args;
  return neighbor_alltoallv_init(ctx, graph, std::move(bytes), method,
                                 std::move(opts));
}

template <class T>
simmpi::Task<std::shared_ptr<const LocalityPlan>> make_locality_plan(
    simmpi::Context& ctx, const simmpi::DistGraph& graph,
    const AlltoallvArgsT<T>& args, Method method, Options opts = {}) {
  const AlltoallvArgs bytes = args;
  return make_locality_plan(ctx, graph, bytes, method, std::move(opts));
}

}  // namespace mpix
