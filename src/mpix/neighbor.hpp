#pragma once
/// \file neighbor.hpp
/// \brief Persistent neighborhood all-to-all-v collectives (the paper's core).
///
/// This is the reproduction of MPI Advance's persistent
/// `MPIX_Neighbor_alltoallv_init` in three flavours:
///
///  * **standard** — wraps persistent point-to-point messages, one per
///    neighbor (paper Algorithms 1-3, Section 3.1);
///  * **locality-aware** ("partially optimized") — three-step aggregation:
///    traffic toward each remote region is funneled through one local
///    leader per destination region, crossing the region boundary as a
///    single message (Algorithms 4-6, Section 3.2);
///  * **locality-aware + dedup** ("fully optimized") — an API extension
///    passes a unique index per value (`send_idx`/`recv_idx`); values bound
///    for several ranks of the same remote region then cross the boundary
///    once (Section 3.3).
///
/// Lifecycle mirrors the MPI 4 persistent API: `*_init` once (all setup and
/// load balancing is paid here and amortized), then `start`/`wait` per
/// iteration.  Buffers are bound at init and must outlive the collective;
/// `start` reads the current `sendbuf`, `wait` fills `recvbuf`.

#include <memory>
#include <span>
#include <vector>

#include "simmpi/dist_graph.hpp"
#include "simmpi/engine.hpp"

namespace mpix {

using gidx = long long;  ///< global value index (paper's API extension)

/// Standard MPI_Neighbor_alltoallv_init arguments (doubles payload).
/// Counts/displacements are in *values*; `sdispls[i]` locates the segment
/// of `sendbuf` bound for `graph.destinations[i]`, `rdispls[i]` the segment
/// of `recvbuf` arriving from `graph.sources[i]`.
struct AlltoallvArgs {
  std::span<const double> sendbuf;
  std::vector<int> sendcounts;
  std::vector<int> sdispls;
  std::span<double> recvbuf;
  std::vector<int> recvcounts;
  std::vector<int> rdispls;

  /// Optional unique indices (required for the dedup variant): send_idx[k]
  /// identifies the value at sendbuf[k]; recv_idx[k] the value expected at
  /// recvbuf[k].  Two sendbuf positions with equal send_idx must hold equal
  /// values, and the k-th value of a (src, dst) segment must carry the same
  /// index on both sides.
  std::span<const gidx> send_idx{};
  std::span<const gidx> recv_idx{};
};

/// Per-rank message statistics of one collective instance (sender side),
/// feeding Figures 8-10.  "local" = intra-region tiers, "global" =
/// inter-region (network) messages.  Point-to-point sends a rank posts to
/// itself go through the simulated MPI layer and count as local messages;
/// the locality plan's staging self-copies (when a rank is its own leader)
/// are plain memcpys and are not counted.
struct NeighborStats {
  long local_msgs = 0;
  long global_msgs = 0;
  long local_values = 0;
  long global_values = 0;
  long max_global_msg_values = 0;
};

/// A persistent neighborhood collective (abstract).
class NeighborAlltoallv {
 public:
  virtual ~NeighborAlltoallv() = default;
  /// Begin one exchange (MPI_Start): reads the bound sendbuf.
  virtual simmpi::Task<> start(simmpi::Context& ctx) = 0;
  /// Complete the exchange (MPI_Wait): fills the bound recvbuf.
  virtual simmpi::Task<> wait(simmpi::Context& ctx) = 0;
  /// Message statistics for this rank (fixed at init).
  virtual NeighborStats stats() const = 0;
  virtual const char* name() const = 0;
};

/// Standard implementation: persistent point-to-point wrap (Section 3.1).
/// Setup is purely local, hence no Task.
std::unique_ptr<NeighborAlltoallv> neighbor_alltoallv_init_standard(
    simmpi::Context& ctx, const simmpi::DistGraph& graph, AlltoallvArgs args);

/// Tunable knobs of the locality-aware implementations.
struct LocalityOptions {
  bool dedup = false;  ///< remove duplicate inter-region values (Section 3.3)
  /// Leader assignment strategy: true = longest-processing-time load
  /// balancing over per-region value counts (default); false = round-robin
  /// (ablation baseline).
  bool lpt_balance = true;
  /// Modeled CPU cost per metadata word during setup parsing/plan build.
  double setup_compute_per_word = 1.5e-9;
};

/// Locality-aware implementation (Sections 3.2/3.3).  Collective over the
/// graph's communicator; performs setup communication (region gather, root
/// handshake), all costs paid once here.
simmpi::Task<std::unique_ptr<NeighborAlltoallv>>
neighbor_alltoallv_init_locality(simmpi::Context& ctx,
                                 const simmpi::DistGraph& graph,
                                 AlltoallvArgs args,
                                 LocalityOptions opts = {});

}  // namespace mpix
