#include "simmpi/dist_graph.hpp"

#include <algorithm>

namespace simmpi {

namespace {

/// Duplicate the communicator for topology use (deterministic, no traffic
/// beyond the split's allgather, mirroring MPI_Comm_dup cost behaviour).
Task<Comm> dup_for_topology(Context& ctx, Comm comm) {
  co_return co_await coll::comm_split(ctx, comm, /*color=*/0, comm.rank());
}

}  // namespace

Task<DistGraph> dist_graph_create_adjacent(Context& ctx, Comm comm,
                                           std::vector<int> sources,
                                           std::vector<int> destinations,
                                           GraphAlgo algo, GraphCosts costs) {
  for (int s : sources)
    if (s < 0 || s >= comm.size())
      throw SimError("dist_graph_create_adjacent: source out of range");
  for (int d : destinations)
    if (d < 0 || d >= comm.size())
      throw SimError("dist_graph_create_adjacent: destination out of range");

  Comm topo = co_await dup_for_topology(ctx, comm);
  ctx.compute(costs.dup_per_rank * static_cast<double>(comm.size()));

  if (algo == GraphAlgo::allgather) {
    // Heavyweight construction: every rank gathers the entire global edge
    // list, scans it to (re)derive and validate its own adjacency, and pays
    // O(P) communicator bookkeeping.
    std::vector<int> local;
    local.reserve(2 + sources.size() + destinations.size());
    local.push_back(static_cast<int>(destinations.size()));
    local.insert(local.end(), destinations.begin(), destinations.end());
    local.push_back(static_cast<int>(sources.size()));
    local.insert(local.end(), sources.begin(), sources.end());

    std::vector<int> counts;
    std::vector<int> global =
        co_await coll::allgatherv<int>(ctx, topo, std::move(local), &counts);

    // Re-derive my sources from everyone's destination lists (validating the
    // user-declared adjacency), scanning the full list as heavyweight
    // implementations do.
    ctx.compute(costs.scan_per_int * static_cast<double>(global.size()));
    ctx.compute(costs.setup_per_rank * static_cast<double>(comm.size()));

    std::vector<int> derived_sources;
    long pos = 0;
    for (int rank = 0; rank < topo.size(); ++rank) {
      const int ndest = global[pos++];
      for (int i = 0; i < ndest; ++i)
        if (global[pos + i] == topo.rank()) derived_sources.push_back(rank);
      pos += ndest;
      const int nsrc = global[pos++];
      pos += nsrc;
    }
    std::vector<int> declared = sources;
    std::sort(declared.begin(), declared.end());
    if (derived_sources != declared)
      throw SimError(
          "dist_graph_create_adjacent: declared sources do not match "
          "destinations declared by peers");
    co_await coll::barrier(ctx, topo);
    co_return DistGraph{topo, std::move(sources), std::move(destinations)};
  }

  // Lightweight construction: zero-byte handshake with declared neighbors,
  // O(degree) bookkeeping, and a global degree checksum.
  const int tag = ctx.engine().next_coll_tag(topo);
  std::vector<Request> reqs;
  reqs.reserve(sources.size() + destinations.size());
  for (int d : destinations) reqs.push_back(Request::send(topo, {}, d, tag));
  for (int s : sources) reqs.push_back(Request::recv(topo, {}, s, tag));
  for (auto& r : reqs) r.start(ctx);
  co_await ctx.wait_all(std::span<Request>(reqs));

  ctx.compute(costs.setup_per_neighbor *
              static_cast<double>(sources.size() + destinations.size()));
  const long out = static_cast<long>(destinations.size());
  const long in = static_cast<long>(sources.size());
  const long delta =
      co_await coll::allreduce<long>(ctx, topo, out - in,
                                     [](long a, long b) { return a + b; });
  if (delta != 0)
    throw SimError(
        "dist_graph_create_adjacent: global in/out degree mismatch");
  co_return DistGraph{topo, std::move(sources), std::move(destinations)};
}

}  // namespace simmpi
