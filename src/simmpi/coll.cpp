#include "simmpi/coll.hpp"

namespace simmpi::coll {

namespace {
struct SplitEntry {
  int color;
  int key;
  int rank;  // local rank in parent
};
}  // namespace

Task<Comm> comm_split(Context& ctx, Comm comm, int color, int key) {
  if (color < 0) throw SimError("comm_split: color must be >= 0");
  const int round = ctx.engine().next_split_round(comm);
  auto entries = co_await allgather<SplitEntry>(
      ctx, comm, SplitEntry{color, key, comm.rank()});

  std::vector<SplitEntry> mine;
  for (const auto& e : entries)
    if (e.color == color) mine.push_back(e);
  std::stable_sort(mine.begin(), mine.end(),
                   [](const SplitEntry& a, const SplitEntry& b) {
                     return a.key != b.key ? a.key < b.key : a.rank < b.rank;
                   });
  std::vector<int> members;
  members.reserve(mine.size());
  int my_local = -1;
  for (std::size_t i = 0; i < mine.size(); ++i) {
    members.push_back(comm.global(mine[i].rank));
    if (mine[i].rank == comm.rank()) my_local = static_cast<int>(i);
  }
  auto data =
      ctx.engine().get_or_create_comm(comm.id(), round, color, members);
  co_return Comm(&ctx.engine(), data, my_local);
}

Task<Comm> split_by_region(Context& ctx, Comm comm) {
  const auto& machine = ctx.engine().machine();
  const int region = machine.region_of(comm.global(comm.rank()));
  co_return co_await comm_split(ctx, comm, region, comm.rank());
}

}  // namespace simmpi::coll
