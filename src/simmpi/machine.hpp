#pragma once
/// \file machine.hpp
/// \brief Description of the simulated machine hierarchy.
///
/// A machine is a set of nodes; each node holds one or more NUMA *regions*
/// (CPU sockets); each region holds a fixed number of ranks (cores).  Ranks
/// are numbered consecutively: node-major, then region, then core — matching
/// the block rank placement used by the paper (16 consecutive ranks share a
/// CPU on Lassen).

#include "simmpi/types.hpp"

namespace simmpi {

/// Shape of the simulated machine.
struct MachineConfig {
  int num_nodes = 1;        ///< number of nodes
  int regions_per_node = 1; ///< NUMA regions (CPU sockets) per node
  int ranks_per_region = 16;///< MPI ranks placed in each region

  /// Ranks in the whole machine.
  int num_ranks() const {
    return num_nodes * regions_per_node * ranks_per_region;
  }
};

/// Immutable topology map: rank -> (node, region, core) and locality
/// classification between rank pairs.
class Machine {
 public:
  explicit Machine(MachineConfig cfg);

  /// Convenience: smallest machine with `ranks_per_region`-sized regions
  /// (one region per node, as in the paper's Lassen runs) that holds
  /// `nranks` ranks.  `nranks` must be a multiple of `ranks_per_region`,
  /// except when `nranks < ranks_per_region`, in which case a single
  /// partially-filled region is created.
  static Machine with_region_size(int nranks, int ranks_per_region);

  const MachineConfig& config() const { return cfg_; }
  int num_ranks() const { return num_ranks_; }
  int num_nodes() const { return cfg_.num_nodes; }
  int num_regions() const { return cfg_.num_nodes * cfg_.regions_per_node; }
  int ranks_per_region() const { return cfg_.ranks_per_region; }
  int ranks_per_node() const {
    return cfg_.regions_per_node * cfg_.ranks_per_region;
  }

  /// Node index of a rank.
  int node_of(int rank) const { return rank / ranks_per_node(); }
  /// Global region index of a rank.
  int region_of(int rank) const { return rank / cfg_.ranks_per_region; }
  /// Index of a rank within its region (0 .. ranks_per_region-1).
  int core_of(int rank) const { return rank % cfg_.ranks_per_region; }
  /// First (lowest) rank of a region.
  int region_root(int region) const { return region * cfg_.ranks_per_region; }

  /// Classify the locality tier of a message from `a` to `b`.
  Locality classify(int a, int b) const;

 private:
  MachineConfig cfg_;
  int num_ranks_;
};

}  // namespace simmpi
