#pragma once
/// \file machine.hpp
/// \brief Description of the simulated machine hierarchy.
///
/// A machine is a set of nodes; each node holds one or more NUMA *regions*
/// (CPU sockets); each region holds a fixed number of ranks (cores).  Ranks
/// are numbered consecutively: node-major, then region, then core — matching
/// the block rank placement used by the paper (16 consecutive ranks share a
/// CPU on Lassen).

#include <vector>

#include "simmpi/types.hpp"

namespace simmpi {

/// One level of the switch hierarchy, bottom-up (element i of
/// MachineConfig::switch_levels).  `radix` children — nodes for level 0,
/// level-(i-1) switches above — hang off each switch of the level.
/// `taper` divides CostParams::link_rate for the level's *up-links* (the
/// links toward the level above): a 2:1-tapered fat tree sets taper = 2.
/// The top level has no up-links, so its taper is ignored.
struct SwitchLevel {
  int radix = 2;
  double taper = 1.0;
};

/// Shape of the simulated machine.
struct MachineConfig {
  int num_nodes = 1;        ///< number of nodes
  int regions_per_node = 1; ///< NUMA regions (CPU sockets) per node
  int ranks_per_region = 16;///< MPI ranks placed in each region

  /// Switch hierarchy above the nodes (fat-tree core), bottom-up:
  /// node -> switch_levels[0] (leaf) -> ... -> switch_levels.back()
  /// (root).  Radixes must cascade evenly (level 0 divides num_nodes,
  /// each level the switch count below it) and close the tree at exactly
  /// one root switch.  Empty (the default) keeps the flat all-to-all core
  /// of the earlier model: every pair of nodes is equidistant and no
  /// shared link exists to contend on.  (The explicit `= {}` keeps
  /// -Wmissing-field-initializers quiet at the many designated-init
  /// construction sites that predate this field.)
  std::vector<SwitchLevel> switch_levels = {};

  /// Ranks in the whole machine.
  int num_ranks() const {
    return num_nodes * regions_per_node * ranks_per_region;
  }
};

/// Immutable topology map: rank -> (node, region, core) and locality
/// classification between rank pairs.
class Machine {
 public:
  explicit Machine(MachineConfig cfg);

  /// Convenience: smallest machine with `ranks_per_region`-sized regions
  /// (one region per node, as in the paper's Lassen runs) that holds
  /// `nranks` ranks.  `nranks` must be a multiple of `ranks_per_region`,
  /// except when `nranks < ranks_per_region`, in which case a single
  /// partially-filled region is created.
  static Machine with_region_size(int nranks, int ranks_per_region);

  const MachineConfig& config() const { return cfg_; }
  int num_ranks() const { return num_ranks_; }
  int num_nodes() const { return cfg_.num_nodes; }
  int num_regions() const { return cfg_.num_nodes * cfg_.regions_per_node; }
  int ranks_per_region() const { return cfg_.ranks_per_region; }
  int ranks_per_node() const {
    return cfg_.regions_per_node * cfg_.ranks_per_region;
  }

  /// Node index of a rank.
  int node_of(int rank) const { return rank / ranks_per_node(); }
  /// Global region index of a rank.
  int region_of(int rank) const { return rank / cfg_.ranks_per_region; }
  /// Index of a rank within its region (0 .. ranks_per_region-1).
  int core_of(int rank) const { return rank % cfg_.ranks_per_region; }
  /// First (lowest) rank of a region.
  int region_root(int region) const { return region * cfg_.ranks_per_region; }

  /// Classify the locality tier of a message from `a` to `b`.
  Locality classify(int a, int b) const;

  // --- switch hierarchy (empty on flat machines) ---------------------

  /// Levels of the switch hierarchy (0 = flat core).
  int num_switch_levels() const {
    return static_cast<int>(cfg_.switch_levels.size());
  }
  /// Shared up/down link tiers: tier i connects level-i switches to their
  /// level-(i+1) parents.  The node<->leaf-switch links are *not* a tier —
  /// they are the NIC, modeled by the injection/ejection caps.
  int num_link_tiers() const {
    const int lv = num_switch_levels();
    return lv > 0 ? lv - 1 : 0;
  }
  /// Switches at `level` (level < num_switch_levels()).
  int switches_at(int level) const { return switches_at_[level]; }
  /// Switch of `node` at `level` (the subtree path entry).
  int switch_of(int node, int level) const {
    return node / nodes_per_switch_[level];
  }
  /// Up-link taper of `level` (see SwitchLevel::taper).
  double level_taper(int level) const {
    return cfg_.switch_levels[level].taper;
  }

  /// Lowest switch level where the subtrees of two nodes join: -1 for the
  /// same node, 0 for distinct nodes under one leaf switch (also the flat
  /// answer when no hierarchy is configured), k for a pair whose path
  /// crosses the up/down links of tiers 0..k-1.  Never exceeds
  /// num_switch_levels()-1: the tree closes at a single root.
  int node_lca_level(int node_a, int node_b) const;
  /// node_lca_level of two ranks' nodes.
  int lca_level(int a, int b) const {
    return node_lca_level(node_of(a), node_of(b));
  }

 private:
  MachineConfig cfg_;
  int num_ranks_;
  std::vector<int> switches_at_;      ///< per level: switch count
  std::vector<int> nodes_per_switch_; ///< per level: subtree width in nodes
};

}  // namespace simmpi
