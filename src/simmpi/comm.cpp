#include "simmpi/comm.hpp"

#include "simmpi/engine.hpp"

namespace simmpi {

Locality Comm::locality_of(int peer) const {
  return eng_->machine().classify(global(rank_), global(peer));
}

Request Request::send(const Comm& comm, std::span<const std::byte> buf,
                      int dst, int tag) {
  if (dst < 0 || dst >= comm.size())
    throw SimError("Request::send: destination out of range");
  Request r;
  r.comm_ = comm;
  r.sbuf_ = buf;
  r.peer_ = dst;
  r.tag_ = tag;
  r.is_send_ = true;
  return r;
}

Request Request::recv(const Comm& comm, std::span<std::byte> buf, int src,
                      int tag) {
  if (src < 0 || src >= comm.size())
    throw SimError("Request::recv: source out of range");
  Request r;
  r.comm_ = comm;
  r.rbuf_ = buf;
  r.peer_ = src;
  r.tag_ = tag;
  r.is_send_ = false;
  return r;
}

Request Request::recv_dyn(const Comm& comm, int src, int tag) {
  Request r = recv(comm, {}, src, tag);
  r.dyn_ = true;
  return r;
}

void Request::start(Context& ctx) {
  if (started_) throw SimError("Request::start: request already active");
  if (!comm_.valid()) throw SimError("Request::start: invalid request");
  started_ = true;
  if (is_send_) {
    ctx.engine().post_send(comm_, comm_.rank(), peer_, tag_, sbuf_, control_);
  }
}

ChannelKey Request::key() const {
  const int me = comm_.global(comm_.rank());
  const int other = comm_.global(peer_);
  if (is_send_) return ChannelKey{comm_.id(), me, other, tag_};
  return ChannelKey{comm_.id(), other, me, tag_};
}

}  // namespace simmpi
