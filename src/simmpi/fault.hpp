#pragma once
/// \file fault.hpp
/// \brief Deterministic fault injection: declarative schedules of link
/// brownouts, NIC slowdowns, message drop/duplication and compute stalls.
///
/// A `FaultPlan` is a *seeded, declarative* schedule: a list of
/// `FaultSpec` events, each a time window plus a target (link tier, node,
/// or rank) and a magnitude.  Nothing about a plan is sampled at run time
/// from mutable state — probabilistic events (drop/duplication) are keyed
/// by counter-mode splitmix64 over (plan seed, channel key, per-channel
/// sequence number), so every fault decision is a pure function of the
/// schedule itself.  Combined with the engine rule that faults are charged
/// only in the single-threaded commit step (see Engine::deliver), the
/// faulted schedule is bit-identical at every sim width, exactly like the
/// fault-free one.
///
/// Everything is off by default: an engine without a plan (or with an
/// empty one) is byte-inert — it executes the identical instruction
/// sequence on the hot path and produces byte-identical series
/// (`tests/test_faults.cpp`, inertness proof).

#include <cstdint>
#include <limits>
#include <vector>

#include "simmpi/comm.hpp"
#include "simmpi/types.hpp"

namespace simmpi {

class Machine;

/// One fault event: a time window, a target, and a magnitude.  Windows are
/// half-open `[t_begin, t_end)` in *rank-local virtual time* — the clock
/// that `Engine::sync_reset` rewinds to zero, so a window re-applies to
/// every measurement epoch.  Which of `tier`/`node`/`rank` and
/// `severity`/`rate` is read depends on `kind`; the rest are ignored
/// (validation still range-checks whatever is set).
struct FaultSpec {
  enum class Kind {
    /// Scale the effective bandwidth of a shared switch link tier by
    /// `severity` for messages entering the link queue inside the window.
    /// Requires `CostParams::use_link_cap` and a switch hierarchy
    /// (`MachineConfig::switch_levels`); targets `tier` (-1 = every tier).
    link_brownout,
    /// Scale a node's NIC injection rate by `severity`: occupancy of
    /// messages injected inside the window divides by `severity`.
    /// Requires `CostParams::use_injection_cap`; targets `node`
    /// (-1 = every node).
    nic_slowdown,
    /// Drop network messages departing inside the window with
    /// probability `rate`, decided per message by the counter-mode hash.
    /// Targets the *source* `rank` (-1 = every rank).
    msg_drop,
    /// Deliver a duplicate copy of network messages departing inside the
    /// window with probability `rate`.  Targets the source `rank`
    /// (-1 = every rank).
    msg_dup,
    /// Stretch simulated local computation (Context::compute) charged
    /// inside the window by 1/severity.  Targets `rank` (-1 = every
    /// rank).
    compute_stall,
  };

  Kind kind = Kind::msg_drop;
  double t_begin = 0.0;
  double t_end = std::numeric_limits<double>::infinity();
  int tier = -1;  ///< link_brownout: link tier index, -1 = all tiers
  int node = -1;  ///< nic_slowdown: node index, -1 = all nodes
  int rank = -1;  ///< msg_drop/msg_dup/compute_stall: rank, -1 = all ranks
  /// Surviving fraction in (0, 1]: bandwidth multiplier for
  /// link_brownout / nic_slowdown, speed multiplier for compute_stall.
  double severity = 1.0;
  /// Per-message probability in [0, 1] for msg_drop / msg_dup.
  double rate = 0.0;
};

/// \return short human-readable name for a fault kind.
const char* to_string(FaultSpec::Kind k);

/// A seeded fault schedule.  Attach to an engine with
/// `Engine::set_fault_plan`; validation runs there against the engine's
/// machine.
struct FaultPlan {
  /// Seed of the counter-mode hash deciding drop/duplication.  Two plans
  /// differing only in seed drop *different* messages at the same rates.
  std::uint64_t seed = 0;
  /// Exempt control messages (the reliability layer's acks, see
  /// mpix::Reliability) from drop/duplication so retransmission
  /// terminates.  Disabling this can livelock a reliable collective into
  /// its retry limit; see docs/ARCHITECTURE.md.
  bool protect_control = true;
  std::vector<FaultSpec> events;

  bool empty() const { return events.empty(); }
};

/// Validate a plan against a machine, mirroring MachineConfig validation:
/// out-of-range rates/severities/targets and inverted or overlapping
/// same-kind-same-target windows throw SimError naming field and value.
void validate_fault_plan(const FaultPlan& plan, const Machine& machine);

/// Counter-mode uniform draw in [0, 1): splitmix64 over (seed, channel
/// key, sequence number).  A pure function — the foundation of the
/// width-determinism of probabilistic faults.
double fault_uniform(std::uint64_t seed, const ChannelKey& key,
                     std::uint64_t seq);

}  // namespace simmpi
