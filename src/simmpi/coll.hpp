#pragma once
/// \file coll.hpp
/// \brief Collective operations built on the simulated point-to-point layer.
///
/// The algorithms are the textbook logarithmic ones (dissemination barrier,
/// binomial broadcast, recursive-doubling allreduce, Bruck allgather), so
/// collective *costs* in the simulator scale the way real MPI libraries do.
/// All operations are collective over the communicator: every member must
/// call them in the same order.  Reduction operators must be associative and
/// commutative.
///
/// Values of type `T` must be trivially copyable.
///
/// Every payload-bearing send here is marked *control* traffic
/// (Request::set_control): these primitives carry setup metadata and
/// synchronization, not workload payload, and losing one would deadlock
/// the collective.  Under a FaultPlan with the default
/// `protect_control`, drop/duplication therefore applies to the data
/// channels of the persistent collectives — the layer that can opt into
/// reliable delivery — and never to the scaffolding underneath it.

#include <algorithm>
#include <cstring>
#include <numeric>
#include <type_traits>
#include <vector>

#include "simmpi/engine.hpp"

namespace simmpi::coll {

namespace detail {

template <class T>
std::span<const std::byte> one_as_bytes(const T& v) {
  return std::as_bytes(std::span<const T>(&v, 1));
}
template <class T>
std::span<std::byte> one_as_writable(T& v) {
  return std::as_writable_bytes(std::span<T>(&v, 1));
}
template <class T>
std::span<const std::byte> vec_as_bytes(const std::vector<T>& v) {
  return std::as_bytes(std::span<const T>(v.data(), v.size()));
}
template <class T>
std::span<std::byte> vec_as_writable(std::vector<T>& v) {
  return std::as_writable_bytes(std::span<T>(v.data(), v.size()));
}

}  // namespace detail

/// Send a single value to `peer` and wait for local completion.
template <class T>
Task<> send_val(Context& ctx, Comm comm, int peer, T v, int tag) {
  static_assert(std::is_trivially_copyable_v<T>);
  auto s = Request::send(comm, detail::one_as_bytes(v), peer, tag);
  s.set_control(true);
  s.start(ctx);
  co_await ctx.wait(s);
}

/// Receive a single value from `peer`.
template <class T>
Task<T> recv_val(Context& ctx, Comm comm, int peer, int tag) {
  static_assert(std::is_trivially_copyable_v<T>);
  T v{};
  auto r = Request::recv(comm, detail::one_as_writable(v), peer, tag);
  r.start(ctx);
  co_await ctx.wait(r);
  co_return v;
}

/// Simultaneously exchange one value with `peer`.
template <class T>
Task<T> sendrecv_val(Context& ctx, Comm comm, int peer, T v, int tag) {
  static_assert(std::is_trivially_copyable_v<T>);
  T in{};
  auto s = Request::send(comm, detail::one_as_bytes(v), peer, tag);
  s.set_control(true);
  auto r = Request::recv(comm, detail::one_as_writable(in), peer, tag);
  s.start(ctx);
  r.start(ctx);
  co_await ctx.wait(s);
  co_await ctx.wait(r);
  co_return in;
}

/// Dissemination barrier: log2(P) rounds of zero-byte messages.  No rank
/// leaves before every rank has entered.
inline Task<> barrier(Context& ctx, Comm comm) {
  const int p = comm.size();
  if (p == 1) co_return;
  const int tag = ctx.engine().next_coll_tag(comm);
  const int r = comm.rank();
  for (int k = 1; k < p; k <<= 1) {
    const int dst = (r + k) % p;
    const int src = (r - k + p) % p;
    auto s = Request::send(comm, {}, dst, tag);
    auto rr = Request::recv(comm, {}, src, tag);
    s.start(ctx);
    rr.start(ctx);
    co_await ctx.wait(s);
    co_await ctx.wait(rr);
  }
}

/// Binomial-tree broadcast of a variable-size vector.  Non-root vectors are
/// resized to the incoming payload.
template <class T>
Task<> bcast(Context& ctx, Comm comm, std::vector<T>& data, int root) {
  static_assert(std::is_trivially_copyable_v<T>);
  const int p = comm.size();
  if (p == 1) co_return;
  const int tag = ctx.engine().next_coll_tag(comm);
  const int r = comm.rank();
  const int vr = (r - root + p) % p;

  if (vr != 0) {
    const int lowbit = vr & (-vr);
    const int parent = ((vr ^ lowbit) + root) % p;
    auto rr = Request::recv_dyn(comm, parent, tag);
    rr.start(ctx);
    co_await ctx.wait(rr);
    auto payload = rr.take_payload();
    data.resize(payload.size() / sizeof(T));
    if (!payload.empty())
      std::memcpy(data.data(), payload.data(), payload.size());
  }
  int maxmask = 1;
  while (maxmask < p) maxmask <<= 1;
  const int start = (vr == 0) ? (maxmask >> 1) : ((vr & (-vr)) >> 1);
  for (int mask = start; mask >= 1; mask >>= 1) {
    const int child = vr | mask;
    if (child != vr && child < p) {
      auto s = Request::send(comm, detail::vec_as_bytes(data),
                             (child + root) % p, tag);
      s.set_control(true);
      s.start(ctx);
      co_await ctx.wait(s);
    }
  }
}

/// Recursive-doubling allreduce with pre/post folding for non-power-of-two
/// communicator sizes.  `op(T,T)` must be associative and commutative.
template <class T, class F>
Task<T> allreduce(Context& ctx, Comm comm, T val, F op) {
  static_assert(std::is_trivially_copyable_v<T>);
  const int p = comm.size();
  if (p == 1) co_return val;
  const int tag = ctx.engine().next_coll_tag(comm);
  const int r = comm.rank();
  int m = 1;
  while (m * 2 <= p) m *= 2;
  const int extras = p - m;

  if (r >= m) {
    co_await send_val(ctx, comm, r - m, val, tag);
  } else if (r < extras) {
    T other = co_await recv_val<T>(ctx, comm, r + m, tag);
    val = op(val, other);
  }
  if (r < m) {
    for (int k = 1; k < m; k <<= 1) {
      T other = co_await sendrecv_val(ctx, comm, r ^ k, val, tag);
      val = op(val, other);
    }
  }
  if (r < extras) {
    co_await send_val(ctx, comm, r + m, val, tag);
  } else if (r >= m) {
    val = co_await recv_val<T>(ctx, comm, r - m, tag);
  }
  co_return val;
}

/// Bruck allgather of one `T` per rank; result[i] is rank i's contribution.
template <class T>
Task<std::vector<T>> allgather(Context& ctx, Comm comm, T mine) {
  static_assert(std::is_trivially_copyable_v<T>);
  const int p = comm.size();
  const int r = comm.rank();
  std::vector<T> acc;
  acc.reserve(p);
  acc.push_back(mine);
  if (p > 1) {
    const int tag = ctx.engine().next_coll_tag(comm);
    while (static_cast<int>(acc.size()) < p) {
      const int c = static_cast<int>(acc.size());
      const int nblk = std::min(c, p - c);
      const int dst = (r - c + p + p) % p;
      const int src = (r + c) % p;
      std::vector<T> in(nblk);
      auto s = Request::send(
          comm, std::as_bytes(std::span<const T>(acc.data(), nblk)), dst, tag);
      s.set_control(true);
      auto rr = Request::recv(comm, detail::vec_as_writable(in), src, tag);
      s.start(ctx);
      rr.start(ctx);
      co_await ctx.wait(s);
      co_await ctx.wait(rr);
      acc.insert(acc.end(), in.begin(), in.end());
    }
  }
  // acc[i] is the block of rank (r+i) mod p; undo the rotation.
  std::vector<T> res(p);
  for (int i = 0; i < p; ++i) res[(r + i) % p] = acc[i];
  co_return res;
}

/// Bruck allgatherv: gathers every rank's vector, concatenated in rank
/// order.  If `counts_out` is non-null it receives the per-rank element
/// counts.  Two phases: an allgather of sizes, then the Bruck exchange with
/// fully predictable message sizes (as MPI_Allgatherv requires).
template <class T>
Task<std::vector<T>> allgatherv(Context& ctx, Comm comm, std::vector<T> mine,
                                std::vector<int>* counts_out = nullptr) {
  static_assert(std::is_trivially_copyable_v<T>);
  const int p = comm.size();
  const int r = comm.rank();
  std::vector<int> counts =
      co_await allgather<int>(ctx, comm, static_cast<int>(mine.size()));
  if (counts_out) *counts_out = counts;

  // acc holds the payloads of ranks (r+i)%p for i in [0, nblocks).
  std::vector<T> acc = std::move(mine);
  int nblocks = 1;
  if (p > 1) {
    const int tag = ctx.engine().next_coll_tag(comm);
    auto block_count = [&](int first, int n) {
      long total = 0;
      for (int i = 0; i < n; ++i) total += counts[(first + i) % p];
      return total;
    };
    while (nblocks < p) {
      const int c = nblocks;
      const int nblk = std::min(c, p - c);
      const int dst = (r - c + p + p) % p;
      const int src = (r + c) % p;
      const long send_elems = block_count(r, nblk);
      const long recv_elems = block_count(src, nblk);
      std::vector<T> in(recv_elems);
      auto s = Request::send(
          comm, std::as_bytes(std::span<const T>(acc.data(), send_elems)), dst,
          tag);
      s.set_control(true);
      auto rr = Request::recv(comm, detail::vec_as_writable(in), src, tag);
      s.start(ctx);
      rr.start(ctx);
      co_await ctx.wait(s);
      co_await ctx.wait(rr);
      acc.insert(acc.end(), in.begin(), in.end());
      nblocks += nblk;
    }
  }
  // Undo rotation: block i of acc belongs to rank (r+i)%p.
  std::vector<long> offsets(p + 1, 0);
  for (int i = 0; i < p; ++i) offsets[i + 1] = offsets[i] + counts[i];
  std::vector<T> res(offsets[p]);
  long pos = 0;
  for (int i = 0; i < p; ++i) {
    const int owner = (r + i) % p;
    std::copy_n(acc.begin() + pos, counts[owner],
                res.begin() + offsets[owner]);
    pos += counts[owner];
  }
  co_return res;
}

/// Exclusive scan (MPI_Exscan).  Rank 0 receives `init`.
/// Hillis–Steele with a one-rank shift; O(log P) rounds.
template <class T, class F>
Task<T> exscan(Context& ctx, Comm comm, T val, F op, T init) {
  static_assert(std::is_trivially_copyable_v<T>);
  const int p = comm.size();
  const int r = comm.rank();
  if (p == 1) co_return init;
  const int tag = ctx.engine().next_coll_tag(comm);

  struct Partial {
    T value;
    bool valid;
  };
  // Shift contributions up by one rank.
  Partial cur{init, false};
  {
    Request s, rr;
    if (r + 1 < p) {
      s = Request::send(comm, detail::one_as_bytes(val), r + 1, tag);
      s.set_control(true);
      s.start(ctx);
    }
    if (r > 0) {
      rr = Request::recv(comm, detail::one_as_writable(cur.value), r - 1, tag);
      rr.start(ctx);
    }
    if (r + 1 < p) co_await ctx.wait(s);
    if (r > 0) {
      co_await ctx.wait(rr);
      cur.valid = true;
    }
  }
  // Inclusive Hillis–Steele scan over the shifted values.
  for (int k = 1; k < p; k <<= 1) {
    Request s, rr;
    Partial in{};
    if (r + k < p) {
      s = Request::send(comm, detail::one_as_bytes(cur), r + k, tag + 1);
      s.set_control(true);
      s.start(ctx);
    }
    if (r - k >= 0) {
      rr = Request::recv(comm, detail::one_as_writable(in), r - k, tag + 1);
      rr.start(ctx);
    }
    if (r + k < p) co_await ctx.wait(s);
    if (r - k >= 0) {
      co_await ctx.wait(rr);
      if (in.valid)
        cur = Partial{cur.valid ? op(in.value, cur.value) : in.value, true};
    }
  }
  co_return cur.valid ? cur.value : init;
}

/// Personalized all-to-all of variable-size vectors: `sendto[i]` goes to
/// local rank i; returns what each rank sent to us.  Pairwise exchange,
/// P-1 rounds (plus a local copy for the self block).
template <class T>
Task<std::vector<std::vector<T>>> alltoallv(
    Context& ctx, Comm comm, const std::vector<std::vector<T>>& sendto) {
  static_assert(std::is_trivially_copyable_v<T>);
  const int p = comm.size();
  const int r = comm.rank();
  if (static_cast<int>(sendto.size()) != p)
    throw SimError("alltoallv: sendto must have one entry per rank");
  const int tag = ctx.engine().next_coll_tag(comm);
  std::vector<std::vector<T>> recvfrom(p);
  recvfrom[r] = sendto[r];
  for (int k = 1; k < p; ++k) {
    const int dst = (r + k) % p;
    const int src = (r - k + p) % p;
    auto s = Request::send(comm, detail::vec_as_bytes(sendto[dst]), dst, tag);
    s.set_control(true);
    auto rr = Request::recv_dyn(comm, src, tag);
    s.start(ctx);
    rr.start(ctx);
    co_await ctx.wait(s);
    co_await ctx.wait(rr);
    auto payload = rr.take_payload();
    recvfrom[src].resize(payload.size() / sizeof(T));
    if (!payload.empty())
      std::memcpy(recvfrom[src].data(), payload.data(), payload.size());
  }
  co_return recvfrom;
}

/// Split a communicator (MPI_Comm_split).  All members call collectively
/// with a non-negative color; members of the same color form a new
/// communicator ordered by (key, rank).
Task<Comm> comm_split(Context& ctx, Comm comm, int color, int key);

/// Split by machine region (the paper's aggregation domain): every rank
/// lands in the communicator of its NUMA region / CPU socket.
Task<Comm> split_by_region(Context& ctx, Comm comm);

}  // namespace simmpi::coll
