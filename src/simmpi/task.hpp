#pragma once
/// \file task.hpp
/// \brief Minimal coroutine task type used to express SPMD rank programs.
///
/// Every simulated rank runs as a C++20 coroutine.  Communication primitives
/// return awaitables; when a rank blocks (e.g. waiting for a message that has
/// not been sent yet) control returns to the engine scheduler, which resumes
/// another rank.  `Task<T>` supports composition: a coroutine may
/// `co_await` another `Task<T>`, with completion propagated through
/// continuation handles and symmetric transfer (no stack growth, no busy
/// waiting).

#include <coroutine>
#include <cstddef>
#include <exception>
#include <optional>
#include <utility>

#include "util/arena.hpp"

namespace simmpi {

template <class T = void>
class Task;

namespace detail {

/// Common promise functionality: continuation chaining, exception capture,
/// and pooled frame allocation.  Coroutine frames are the highest-frequency
/// allocation of the engine (every awaited sub-task creates one), so they
/// come from util's size-bucketed frame pool: repeated run()/solve
/// iterations recycle frames instead of hitting malloc (see
/// docs/ARCHITECTURE.md, "Memory management in the engine").
struct PromiseBase {
  std::coroutine_handle<> continuation{};
  std::exception_ptr exception{};

  static void* operator new(std::size_t n) { return util::frame_alloc(n); }
  static void operator delete(void* p, std::size_t n) noexcept {
    util::frame_free(p, n);
  }

  /// Final awaiter: transfers control to the awaiting coroutine, if any.
  struct FinalAwaiter {
    bool await_ready() const noexcept { return false; }
    template <class P>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<P> h) const noexcept {
      auto cont = h.promise().continuation;
      return cont ? cont : std::noop_coroutine();
    }
    void await_resume() const noexcept {}
  };

  std::suspend_always initial_suspend() noexcept { return {}; }
  FinalAwaiter final_suspend() noexcept { return {}; }
  void unhandled_exception() noexcept { exception = std::current_exception(); }
};

}  // namespace detail

/// A lazily-started coroutine returning a value of type `T`.
///
/// Tasks are move-only owners of their coroutine frame.  They are started
/// either by the engine (top-level rank programs) or by being awaited from
/// another task.
template <class T>
class [[nodiscard]] Task {
 public:
  struct promise_type : detail::PromiseBase {
    std::optional<T> value{};
    Task get_return_object() {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    template <class U>
    void return_value(U&& v) {
      value.emplace(std::forward<U>(v));
    }
  };

  Task() = default;
  Task(Task&& o) noexcept : h_(std::exchange(o.h_, {})) {}
  Task& operator=(Task&& o) noexcept {
    if (this != &o) {
      destroy();
      h_ = std::exchange(o.h_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  /// Awaiting a task starts it (symmetric transfer) and resumes the awaiter
  /// once the task completes, yielding the task's value.
  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> h;
      bool await_ready() const noexcept { return !h || h.done(); }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<> cont) const noexcept {
        h.promise().continuation = cont;
        return h;
      }
      T await_resume() {
        if (h.promise().exception) std::rethrow_exception(h.promise().exception);
        return std::move(*h.promise().value);
      }
    };
    return Awaiter{h_};
  }

  /// \return the underlying coroutine handle (engine use only).
  std::coroutine_handle<> handle() const noexcept { return h_; }
  bool done() const noexcept { return !h_ || h_.done(); }

  /// Rethrow any exception captured during execution and return the value.
  /// Only valid after the task completed.
  T result() {
    if (h_.promise().exception) std::rethrow_exception(h_.promise().exception);
    return std::move(*h_.promise().value);
  }

 private:
  explicit Task(std::coroutine_handle<promise_type> h) : h_(h) {}
  void destroy() {
    if (h_) {
      h_.destroy();
      h_ = {};
    }
  }
  std::coroutine_handle<promise_type> h_{};
};

/// Specialization for tasks that produce no value.
template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type : detail::PromiseBase {
    Task get_return_object() {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    void return_void() noexcept {}
  };

  Task() = default;
  Task(Task&& o) noexcept : h_(std::exchange(o.h_, {})) {}
  Task& operator=(Task&& o) noexcept {
    if (this != &o) {
      destroy();
      h_ = std::exchange(o.h_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> h;
      bool await_ready() const noexcept { return !h || h.done(); }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<> cont) const noexcept {
        h.promise().continuation = cont;
        return h;
      }
      void await_resume() const {
        if (h.promise().exception) std::rethrow_exception(h.promise().exception);
      }
    };
    return Awaiter{h_};
  }

  std::coroutine_handle<> handle() const noexcept { return h_; }
  bool done() const noexcept { return !h_ || h_.done(); }

  /// Rethrow any exception captured during execution.
  void result() const {
    if (h_ && h_.promise().exception)
      std::rethrow_exception(h_.promise().exception);
  }

 private:
  explicit Task(std::coroutine_handle<promise_type> h) : h_(h) {}
  void destroy() {
    if (h_) {
      h_.destroy();
      h_ = {};
    }
  }
  std::coroutine_handle<promise_type> h_{};
};

}  // namespace simmpi
