#pragma once
/// \file types.hpp
/// \brief Fundamental types shared across the simulated-MPI substrate.

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>

namespace simmpi {

/// Locality tier of a message, ordered from cheapest to most expensive.
///
/// The tiers mirror the machine hierarchy of the paper (Fig. 1): two ranks
/// may share a core (self), a NUMA region / CPU socket (region), a node
/// (node), or only the interconnect (network).
enum class Locality : int {
  self = 0,     ///< source == destination rank
  region = 1,   ///< same NUMA region / CPU socket (shared cache)
  node = 2,     ///< same node, different region (through main memory)
  network = 3,  ///< different nodes (through the interconnect)
};

/// Number of distinct locality tiers.
inline constexpr int kNumLocalities = 4;

/// \return short human-readable name for a locality tier.
inline const char* to_string(Locality l) {
  switch (l) {
    case Locality::self: return "self";
    case Locality::region: return "region";
    case Locality::node: return "node";
    case Locality::network: return "network";
  }
  return "?";
}

/// Error thrown by the simulator on misuse (deadlock, bad arguments,
/// mismatched message sizes, ...).  The simulator is a correctness tool, so
/// it fails loudly instead of corrupting a run.
class SimError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Reinterpret a typed span as const bytes (for message payloads).
template <class T>
std::span<const std::byte> as_bytes_of(std::span<const T> s) {
  return std::as_bytes(s);
}

/// Reinterpret a typed span as writable bytes (for receive buffers).
template <class T>
std::span<std::byte> as_writable_bytes_of(std::span<T> s) {
  return std::as_writable_bytes(s);
}

}  // namespace simmpi
