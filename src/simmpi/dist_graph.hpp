#pragma once
/// \file dist_graph.hpp
/// \brief Distributed graph topology creation (MPI_Dist_graph_create_adjacent).
///
/// Two algorithm variants reproduce the implementation gap measured by the
/// paper in Figure 6:
///  * `GraphAlgo::allgather` ("spectrum-like"): gathers the full global edge
///    list on every rank and performs O(P) communicator bookkeeping — the
///    heavyweight pattern behind Spectrum MPI's poor strong scaling.
///  * `GraphAlgo::handshake` ("mvapich-like"): purely local adjacency copy
///    plus a sparse zero-byte handshake with the declared neighbors and a
///    small allreduce for consistency — the lightweight pattern that scales.

#include <vector>

#include "simmpi/coll.hpp"
#include "simmpi/engine.hpp"

namespace simmpi {

/// Which construction algorithm to simulate (see file comment).
enum class GraphAlgo {
  allgather,  ///< heavy, O(P) per rank ("spectrum-like")
  handshake,  ///< light, O(degree) per rank ("mvapich-like")
};

/// A neighborhood topology: the communicator plus adjacency, as returned by
/// MPI_Dist_graph_create_adjacent.  `sources`/`destinations` hold *local*
/// ranks of the attached communicator.
struct DistGraph {
  Comm comm;                      ///< dedicated topology communicator
  std::vector<int> sources;       ///< ranks this rank receives from
  std::vector<int> destinations;  ///< ranks this rank sends to
};

/// Modeled CPU costs of graph construction (tunable for ablations).
struct GraphCosts {
  /// per-int cost of scanning the gathered global edge list (allgather algo)
  double scan_per_int = 2.0e-9;
  /// per-member communicator bookkeeping cost (allgather algo)
  double setup_per_rank = 2.0e-6;
  /// per-neighbor bookkeeping cost (handshake algo)
  double setup_per_neighbor = 3.0e-7;
  /// per-member communicator *duplication* bookkeeping, paid by both
  /// algorithms (every MPI_Dist_graph_create_adjacent dups the base comm)
  double dup_per_rank = 3.0e-7;
};

/// Create an adjacent distributed-graph topology.  Collective over `comm`;
/// `sources` and `destinations` are local ranks.  The returned DistGraph
/// uses a fresh communicator so topology traffic cannot collide with the
/// parent's.
Task<DistGraph> dist_graph_create_adjacent(Context& ctx, Comm comm,
                                           std::vector<int> sources,
                                           std::vector<int> destinations,
                                           GraphAlgo algo,
                                           GraphCosts costs = {});

}  // namespace simmpi
