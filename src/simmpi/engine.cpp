#include "simmpi/engine.hpp"

#include <algorithm>
#include <cstring>
#include <sstream>

#include "simmpi/coll.hpp"

namespace simmpi {

Context::Context(Engine& eng, int rank)
    : eng_(&eng), rank_(rank), world_(&eng, eng.world_data(), rank) {}

Task<> Context::wait_all(std::span<Request> reqs) {
  for (auto& r : reqs) co_await wait(r);
}

Task<> Context::wait_all(std::span<Request* const> reqs) {
  for (auto* r : reqs) co_await wait(*r);
}

Engine::Engine(Machine machine, CostParams params)
    : machine_(std::move(machine)),
      model_(params),
      clocks_(machine_.num_ranks(), 0.0),
      nic_free_(machine_.num_nodes(), 0.0),
      stats_(machine_.num_ranks()),
      inbox_count_(machine_.num_ranks(), 0) {
  auto world = std::make_shared<CommData>();
  world->ctx_id = 0;
  world->members.resize(machine_.num_ranks());
  for (int r = 0; r < machine_.num_ranks(); ++r) world->members[r] = r;
  world_data_ = std::move(world);
}

void Engine::run(const RankProgram& program) {
  if (running_) throw SimError("Engine::run: already running");
  running_ = true;
  const int nranks = machine_.num_ranks();

  std::vector<std::unique_ptr<Context>> ctxs;
  ctxs.reserve(nranks);
  std::vector<Task<>> tasks;
  tasks.reserve(nranks);
  for (int r = 0; r < nranks; ++r)
    ctxs.push_back(std::make_unique<Context>(*this, r));
  for (int r = 0; r < nranks; ++r) tasks.push_back(program(*ctxs[r]));
  for (int r = 0; r < nranks; ++r) ready_.push_back(tasks[r].handle());

  while (!ready_.empty()) {
    auto h = ready_.front();
    ready_.pop_front();
    h.resume();
  }
  running_ = false;

  // Surface rank exceptions first: they are the usual root cause of an
  // apparent deadlock (a failed rank stops sending).
  for (auto& t : tasks) {
    if (t.done()) t.result();
  }
  bool all_done = true;
  for (auto& t : tasks) all_done = all_done && t.done();
  if (!all_done) {
    std::ostringstream os;
    os << "Engine::run: deadlock; ranks blocked on channels:";
    int shown = 0;
    for (auto& [key, h] : waiters_) {
      if (shown++ == 8) {
        os << " ...";
        break;
      }
      os << " [ctx=" << key.ctx << " " << key.src << "->" << key.dst
         << " tag=" << key.tag << "]";
    }
    waiters_.clear();
    mailbox_.clear();
    pending_messages_ = 0;
    std::fill(inbox_count_.begin(), inbox_count_.end(), 0);
    throw SimError(os.str());
  }
  if (pending_messages_ != 0) {
    std::size_t n = pending_messages_;
    mailbox_.clear();
    pending_messages_ = 0;
    std::fill(inbox_count_.begin(), inbox_count_.end(), 0);
    throw SimError("Engine::run: " + std::to_string(n) +
                   " message(s) posted but never received");
  }
}

double Engine::max_clock() const {
  return *std::max_element(clocks_.begin(), clocks_.end());
}

std::uint64_t Engine::max_msgs(std::initializer_list<Locality> tiers) const {
  std::uint64_t best = 0;
  for (const auto& rs : stats_) {
    std::uint64_t n = 0;
    for (Locality t : tiers) n += rs.tier[static_cast<int>(t)].msgs;
    best = std::max(best, n);
  }
  return best;
}

std::uint64_t Engine::max_bytes(std::initializer_list<Locality> tiers) const {
  std::uint64_t best = 0;
  for (const auto& rs : stats_) {
    std::uint64_t n = 0;
    for (Locality t : tiers) n += rs.tier[static_cast<int>(t)].bytes;
    best = std::max(best, n);
  }
  return best;
}

void Engine::reset_stats() {
  for (auto& s : stats_) s = RankStats{};
}

Task<> Engine::sync_reset(Context& ctx, bool clear_stats) {
  co_await coll::barrier(ctx, ctx.world());
  // The dissemination barrier guarantees every rank has entered before any
  // rank leaves, so the first leaver resets shared (quiescent) state.
  if (sync_arrivals_ == 0) std::fill(nic_free_.begin(), nic_free_.end(), 0.0);
  if (++sync_arrivals_ == machine_.num_ranks()) sync_arrivals_ = 0;
  clocks_[ctx.rank()] = 0.0;
  if (clear_stats) stats_[ctx.rank()] = RankStats{};
}

void Engine::post_send(const Comm& comm, int src_local, int dst_local, int tag,
                       std::span<const std::byte> payload) {
  const int gsrc = comm.global(src_local);
  const int gdst = comm.global(dst_local);
  const Locality loc = machine_.classify(gsrc, gdst);
  const std::size_t bytes = payload.size();

  double& clk = clocks_[gsrc];
  clk += model_.send_overhead();
  const double depart = clk;
  double arrival;
  if (loc == Locality::network && model_.params().use_injection_cap) {
    const int node = machine_.node_of(gsrc);
    const double inject = std::max(depart, nic_free_[node]);
    // Zero-byte messages (barriers, handshakes) occupy no injection
    // bandwidth and must not extend the NIC busy window: a late-departing
    // empty message would otherwise re-contaminate the queue across a
    // sync_reset measurement boundary.
    if (bytes > 0) nic_free_[node] = inject + model_.nic_occupancy(bytes);
    arrival = inject + model_.transfer_time(loc, bytes);
  } else {
    arrival = depart + model_.transfer_time(loc, bytes);
  }

  const ChannelKey key{comm.id(), gsrc, gdst, tag};
  mailbox_[key].push_back(
      Message{std::vector<std::byte>(payload.begin(), payload.end()), arrival});
  ++inbox_count_[gdst];
  ++pending_messages_;

  auto& ts = stats_[gsrc].tier[static_cast<int>(loc)];
  ++ts.msgs;
  ts.bytes += bytes;

  wake(key);
}

bool Engine::has_message(const ChannelKey& key) const {
  auto it = mailbox_.find(key);
  return it != mailbox_.end() && !it->second.empty();
}

void Engine::park(const ChannelKey& key, std::coroutine_handle<> h) {
  auto [it, inserted] = waiters_.emplace(key, h);
  if (!inserted)
    throw SimError("Engine::park: second waiter on one channel (rank issued "
                   "overlapping receives on the same (src,tag))");
}

void Engine::wake(const ChannelKey& key) {
  auto it = waiters_.find(key);
  if (it != waiters_.end()) {
    ready_.push_back(it->second);
    waiters_.erase(it);
  }
}

void Engine::complete_recv(Request& req) {
  const ChannelKey key = req.key();
  auto it = mailbox_.find(key);
  if (it == mailbox_.end() || it->second.empty())
    throw SimError("Engine::complete_recv: no matching message");
  Message msg = std::move(it->second.front());
  it->second.pop_front();
  if (it->second.empty()) mailbox_.erase(it);

  const int gdst = key.dst;
  --inbox_count_[gdst];
  --pending_messages_;

  if (req.dyn_) {
    req.payload_ = std::move(msg.payload);
    req.received_ = req.payload_.size();
  } else {
    if (msg.payload.size() > req.rbuf_.size())
      throw SimError("Engine::complete_recv: message truncated (payload " +
                     std::to_string(msg.payload.size()) + "B > buffer " +
                     std::to_string(req.rbuf_.size()) + "B)");
    if (!msg.payload.empty())
      std::memcpy(req.rbuf_.data(), msg.payload.data(), msg.payload.size());
    req.received_ = msg.payload.size();
  }

  double& clk = clocks_[gdst];
  clk = std::max(clk, msg.arrival) + model_.recv_overhead(inbox_count_[gdst]);
  req.started_ = false;
}

int Engine::next_coll_tag(const Comm& comm) {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(comm.id()) << 32) |
      static_cast<std::uint32_t>(comm.rank());
  // Reserve a high tag range for internal collective traffic; user tags
  // must stay below kCollTagBase.
  constexpr int kCollTagBase = 1 << 28;
  constexpr int kCollTagRange = 1 << 27;
  const int seq = coll_tag_counter_[key]++;
  return kCollTagBase + (seq % kCollTagRange);
}

int Engine::next_split_round(const Comm& comm) {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(comm.id()) << 32) |
      static_cast<std::uint32_t>(comm.rank());
  return split_round_counter_[key]++;
}

std::shared_ptr<const CommData> Engine::get_or_create_comm(
    std::uint32_t parent_ctx, int round, int color,
    const std::vector<int>& members_global) {
  if (color < 0) throw SimError("get_or_create_comm: color must be >= 0");
  const std::uint64_t key = (static_cast<std::uint64_t>(parent_ctx) << 48) |
                            ((static_cast<std::uint64_t>(round) & 0xFFFFFF)
                             << 24) |
                            (static_cast<std::uint64_t>(color) & 0xFFFFFF);
  auto it = comm_cache_.find(key);
  if (it != comm_cache_.end()) {
    if (it->second->members != members_global)
      throw SimError("get_or_create_comm: member mismatch across ranks");
    return it->second;
  }
  auto data = std::make_shared<CommData>();
  data->ctx_id = next_ctx_id_++;
  data->members = members_global;
  comm_cache_.emplace(key, data);
  return data;
}

}  // namespace simmpi
