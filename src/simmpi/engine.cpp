#include "simmpi/engine.hpp"

#include <algorithm>
#include <cstring>
#include <exception>
#include <sstream>
#include <string>

#include "simmpi/coll.hpp"
#include "util/worker_pool.hpp"

namespace simmpi {

namespace {

/// The link-cap parameters are only read when the cap is on, so they are
/// only validated then — a default CostParams with stale link_rates must
/// not fail construction of a flat-core engine.
void validate_link_params(const CostParams& p, int tiers) {
  if (!(p.link_rate > 0.0))
    throw SimError("CostParams: link_rate must be > 0 (got " +
                   std::to_string(p.link_rate) + ")");
  if (!p.link_rates.empty()) {
    if (static_cast<int>(p.link_rates.size()) != tiers)
      throw SimError("CostParams: link_rates must carry one entry per link "
                     "tier (" +
                     std::to_string(tiers) + "), got " +
                     std::to_string(p.link_rates.size()));
    for (std::size_t i = 0; i < p.link_rates.size(); ++i)
      if (!(p.link_rates[i] > 0.0))
        throw SimError("CostParams: link_rates[" + std::to_string(i) +
                       "] must be > 0 (got " +
                       std::to_string(p.link_rates[i]) + ")");
  }
  if (!(p.link_msg_bytes >= 0.0))
    throw SimError("CostParams: link_msg_bytes must be >= 0 (got " +
                   std::to_string(p.link_msg_bytes) + ")");
}

}  // namespace

Context::Context(Engine& eng, int rank)
    : eng_(&eng), rank_(rank), world_(&eng, eng.world_data(), rank) {}

Task<> Context::wait_all(std::span<Request> reqs) {
  for (auto& r : reqs) co_await wait(r);
}

Task<> Context::wait_all(std::span<Request* const> reqs) {
  for (auto* r : reqs) co_await wait(*r);
}

Engine::Engine(Machine machine, CostParams params)
    : Engine(std::move(machine), params, Options{}) {}

Engine::Engine(Machine machine, CostParams params, Options opts)
    : machine_(std::move(machine)),
      model_(params),
      threads_(util::resolve_threads(opts.threads, {"COLLOM_SIM_THREADS"})),
      clocks_(machine_.num_ranks(), 0.0),
      nic_free_(machine_.num_nodes(), 0.0),
      eject_free_(machine_.num_nodes(), 0.0),
      stats_(machine_.num_ranks()),
      rank_(machine_.num_ranks()) {
  auto world = std::make_shared<CommData>();
  world->ctx_id = 0;
  world->members.resize(machine_.num_ranks());
  for (int r = 0; r < machine_.num_ranks(); ++r) world->members[r] = r;
  world_data_ = std::move(world);

  if (model_.params().use_link_cap) {
    const int tiers = machine_.num_link_tiers();
    validate_link_params(model_.params(), tiers);
    link_tier_off_.assign(tiers + 1, 0);
    for (int t = 0; t < tiers; ++t)
      link_tier_off_[t + 1] = link_tier_off_[t] + machine_.switches_at(t);
    link_up_free_.assign(link_tier_off_[tiers], 0.0);
    link_down_free_.assign(link_tier_off_[tiers], 0.0);
    link_rate_eff_.resize(tiers);
    for (int t = 0; t < tiers; ++t)
      link_rate_eff_[t] = model_.link_rate(t, machine_.level_taper(t));
  }
}

void Engine::run(const RankProgram& program) {
  if (running_) throw SimError("Engine::run: already running");
  running_ = true;
  struct Guard {
    Engine& eng;
    ~Guard() {
      // Clear in-flight state on *every* exit — in particular the
      // exception paths (phase error, rank exception), where parked
      // coroutine handles are about to dangle once the tasks vector
      // unwinds.  A later run() must never deliver into a stale mailbox
      // or wake a destroyed coroutine.
      eng.check_quiescent();
      eng.running_ = false;
    }
  } guard{*this};

  // Per-run channel accounting (sequence numbers restart per run so the
  // drop/dup schedule is a function of the run alone, not of engine
  // history).  clear() keeps the map's storage.
  if (fault_msgs_) fault_chan_.clear();

  const int nranks = machine_.num_ranks();
  std::vector<Context> ctxs;
  ctxs.reserve(nranks);  // reserved once: coroutines hold Context&
  std::vector<Task<>> tasks;
  tasks.reserve(nranks);
  for (int r = 0; r < nranks; ++r) ctxs.emplace_back(*this, r);
  for (int r = 0; r < nranks; ++r) tasks.push_back(program(ctxs[r]));
  ready_.clear();
  for (int r = 0; r < nranks; ++r) ready_.push_back(tasks[r].handle());

  {
    // One phase's rank coroutines are resumed on the shared WorkerPool
    // (util/worker_pool.hpp).  All engine state a resumed coroutine touches
    // is per-rank (see Engine::RankState), so workers never contend, and
    // the pool's handoffs give the commit step a view of every coroutine
    // frame written this phase.  Blocked handout (chunks of 8) keeps
    // consecutive ranks on one worker — their clocks and stats are
    // adjacent in memory.
    util::WorkerPool pool(std::min(threads_, nranks));
    std::vector<std::coroutine_handle<>> phase;
    std::vector<std::exception_ptr> errs;
    // One std::function for every phase: constructing it per pool.run call
    // would allocate each phase (the capture list exceeds the small-buffer
    // optimization of common std::function implementations).
    const util::WorkerPool::ChunkFn resume_chunk = [&](std::size_t b,
                                                       std::size_t e, int) {
      for (std::size_t i = b; i < e; ++i) {
        try {
          phase[i].resume();
        } catch (...) {
          errs[i] = std::current_exception();
        }
      }
    };
    for (;;) {
      // Global quiescence (no rank runnable) is the only point where a
      // timed park may fire: any message that could still complete the
      // wait has been committed by now, so "timeout vs arrival" is a pure
      // function of the schedule.  Earliest (deadline, rank) first, one
      // per phase, keeps the firing order width-independent too.
      if (ready_.empty() && !fire_earliest_timeout()) break;
      phase.clear();
      phase.swap(ready_);
      errs.assign(phase.size(), nullptr);
      pool.run(phase.size(), 8, resume_chunk);
      // First exception in handle order wins (matching the pre-pool
      // behaviour); every handle of the phase has been resumed regardless.
      for (auto& ep : errs)
        if (ep) std::rethrow_exception(ep);
      commit_phase();
    }
  }

  // Surface rank exceptions first: they are the usual root cause of an
  // apparent deadlock (a failed rank stops sending).
  for (auto& t : tasks) {
    if (t.done()) t.result();
  }
  bool all_done = true;
  for (auto& t : tasks) all_done = all_done && t.done();
  if (!all_done) {
    // Quiescence watchdog: no rank can progress, yet messages are owed.
    // Dump who is blocked where, with per-channel sent-vs-delivered
    // accounting when fault injection recorded any — a protocol bug or a
    // swallowed message becomes an actionable error instead of a hang.
    std::ostringstream os;
    long unconsumed = 0;
    for (const auto& rs : rank_) unconsumed += rs.inbox_count;
    std::uint64_t dropped = 0;
    for (const auto& [key, cf] : fault_chan_) dropped += cf.dropped;
    os << "Engine::run: deadlock; no rank can progress and messages are "
          "owed ("
       << unconsumed << " committed but unconsumed, " << dropped
       << " dropped in flight); blocked ranks:";
    int shown = 0;
    for (int r = 0; r < nranks; ++r) {
      const auto& rs = rank_[r];
      if (!rs.parked) continue;
      if (shown++ == 8) {
        os << " ...";
        break;
      }
      const ChannelKey& key = rs.parked_key;
      os << " [rank " << r << " waiting on ctx=" << key.ctx << " "
         << key.src << "->" << key.dst << " tag=" << key.tag;
      if (const ChanFaultCounts* cf = fault_chan_.find(key)) {
        os << ": sent=" << cf->sent << " dropped=" << cf->dropped
           << " duplicated=" << cf->duped
           << " delivered=" << cf->sent - cf->dropped + cf->duped;
      }
      os << "]";
    }
    throw SimError(os.str());  // Guard clears the in-flight state
  }
  long pending = 0;
  for (const auto& rs : rank_) pending += rs.inbox_count;
  if (pending != 0) {
    throw SimError("Engine::run: " + std::to_string(pending) +
                   " message(s) posted but never received");
  }
}

/// Clear in-flight state so a failed run leaves the engine inspectable.
/// Interned channel tables and all retained capacity (queues, journals,
/// arena chunks) survive: a follow-up run() on the same engine reuses them
/// without re-warming the allocator.
void Engine::check_quiescent() {
  for (auto& rs : rank_) {
    // A successful run left every queue drained (and therefore erased);
    // only the error paths pay for a mailbox walk.
    if (rs.inbox_count > 0) rs.reset_mailbox();
    rs.parked = {};
    rs.parked_deadline = RankState::kNoDeadline;
    rs.timed_out = false;
    rs.inbox_count = 0;
    rs.journal.clear();
    rs.arena.reset();
  }
}

namespace {

/// SplitMix-style avalanche of the channel identity (same recipe as the
/// old unordered_map hasher; only slot placement reads it).
std::size_t channel_hash(const ChannelKey& k) {
  std::uint64_t h = k.ctx;
  h = h * 0x9E3779B97F4A7C15ull + static_cast<std::uint32_t>(k.src);
  h = h * 0x9E3779B97F4A7C15ull + static_cast<std::uint32_t>(k.dst);
  h = h * 0x9E3779B97F4A7C15ull + static_cast<std::uint32_t>(k.tag);
  h ^= h >> 29;
  h *= 0xBF58476D1CE4E5B9ull;
  h ^= h >> 32;
  return static_cast<std::size_t>(h);
}

}  // namespace

bool Engine::RankState::has_channel(const ChannelKey& key) const {
  const std::size_t n = chan_slots.size();
  if (n == 0) return false;
  for (std::size_t i = channel_hash(key) & (n - 1);; i = (i + 1) & (n - 1)) {
    const auto& slot = chan_slots[i];
    if (slot.second == kEmptySlot) return false;
    if (slot.first == key) return true;
  }
}

bool Engine::RankState::pop_message(const ChannelKey& key, Message& out) {
  const std::size_t n = chan_slots.size();
  if (n == 0) return false;
  const std::size_t mask = n - 1;
  std::size_t i = channel_hash(key) & mask;
  for (;; i = (i + 1) & mask) {
    if (chan_slots[i].second == kEmptySlot) return false;
    if (chan_slots[i].first == key) break;
  }
  const std::uint32_t qi = chan_slots[i].second;
  ChannelQueue& ch = channels[qi];
  out = ch.pop();
  if (!ch.empty()) return true;

  // Drained: erase the slot (backward shift, so probe chains stay intact
  // without tombstones) and park the queue for reuse.
  free_channels.push_back(qi);
  --chan_count;
  std::size_t j = i;
  for (;;) {
    chan_slots[i].second = kEmptySlot;
    for (;;) {
      j = (j + 1) & mask;
      if (chan_slots[j].second == kEmptySlot) return true;
      const std::size_t home = channel_hash(chan_slots[j].first) & mask;
      // Move j into the hole iff the hole lies on j's probe path, i.e.
      // home..j (cyclically) passes through i.
      if (((i - home) & mask) <= ((j - home) & mask)) break;
    }
    chan_slots[i] = chan_slots[j];
    i = j;
  }
}

Engine::ChannelQueue& Engine::RankState::intern_channel(const ChannelKey& key) {
  // Grow at 1/2 load (also handles the empty table): absent-key probes —
  // every receive checks its channel before parking — must stay short.
  // Rehashing is the only allocation here, amortized over the working
  // set's high-water mark; erase-on-drain keeps the table at the number
  // of channels holding messages *right now*, so a steady workload stops
  // rehashing (and allocating queues) after warm-up.
  if ((chan_count + 1) * 2 >= chan_slots.size()) {
    const std::size_t cap = std::max<std::size_t>(64, chan_slots.size() * 2);
    std::vector<std::pair<ChannelKey, std::uint32_t>> fresh(
        cap, {ChannelKey{}, kEmptySlot});
    for (const auto& slot : chan_slots) {
      if (slot.second == kEmptySlot) continue;
      std::size_t i = channel_hash(slot.first) & (cap - 1);
      while (fresh[i].second != kEmptySlot) i = (i + 1) & (cap - 1);
      fresh[i] = slot;
    }
    chan_slots.swap(fresh);
  }
  const std::size_t n = chan_slots.size();
  for (std::size_t i = channel_hash(key) & (n - 1);; i = (i + 1) & (n - 1)) {
    auto& slot = chan_slots[i];
    if (slot.second == kEmptySlot) {
      std::uint32_t qi;
      if (!free_channels.empty()) {
        qi = free_channels.back();
        free_channels.pop_back();
      } else {
        qi = static_cast<std::uint32_t>(channels.size());
        channels.emplace_back();
      }
      slot = {key, qi};
      ++chan_count;
      return channels[qi];
    }
    if (slot.first == key) return channels[slot.second];
  }
}

void Engine::RankState::reset_mailbox() {
  chan_slots.assign(chan_slots.size(), {ChannelKey{}, kEmptySlot});
  chan_count = 0;
  free_channels.clear();
  free_channels.reserve(channels.size());
  for (std::uint32_t i = 0; i < channels.size(); ++i) {
    channels[i].drop_all();
    free_channels.push_back(i);
  }
}

util::Arena::Stats Engine::arena_stats() const {
  util::Arena::Stats total;
  for (const auto& rs : rank_) {
    const auto& s = rs.arena.stats();
    total.chunks += s.chunks;
    total.capacity_bytes += s.capacity_bytes;
    total.recycles += s.recycles;
    total.allocs += s.allocs;
  }
  return total;
}

void Engine::commit_phase() {
  const int nranks = machine_.num_ranks();
  // Pass 1 — NIC epoch reset.  All sync_reset leavers of one generation
  // flag their commit(s) strictly after every pre-barrier send committed;
  // the first such commit drains the queues exactly once, before any
  // post-barrier send of pass 2 is charged.
  int newly = 0;
  for (auto& rs : rank_) {
    newly += rs.nic_reset_request ? 1 : 0;
    rs.nic_reset_request = false;
  }
  if (newly > 0) {
    if (sync_arrivals_ == 0) {
      std::fill(nic_free_.begin(), nic_free_.end(), 0.0);
      std::fill(eject_free_.begin(), eject_free_.end(), 0.0);
      std::fill(link_up_free_.begin(), link_up_free_.end(), 0.0);
      std::fill(link_down_free_.begin(), link_down_free_.end(), 0.0);
    }
    sync_arrivals_ += newly;
    if (sync_arrivals_ == nranks) sync_arrivals_ = 0;
  }
  // Pass 2 — deliver journaled sends in (rank, program) order.  This order
  // is a function of the phase structure alone, never of the worker count
  // or the within-phase interleaving: the NIC queue arithmetic below is
  // bit-identical for any Options::threads.
  for (int r = 0; r < nranks; ++r) {
    auto& journal = rank_[r].journal;
    for (const PendingSend& ps : journal) deliver(ps);
    journal.clear();
  }
}

namespace {

/// Whether a fault window covers a message's departure (all fault kinds
/// key their window on the sender-side departure time: a value fixed
/// before the commit step, so window membership can never depend on
/// queue state).
bool in_window(const FaultSpec& e, double when) {
  return when >= e.t_begin && when < e.t_end;
}

}  // namespace

void Engine::set_fault_plan(FaultPlan plan) {
  if (running_) throw SimError("Engine::set_fault_plan: engine is running");
  validate_fault_plan(plan, machine_);
  // Effects the cost model would silently ignore are configuration
  // errors: a brownout needs the link cap (and a switch hierarchy with
  // link tiers), a NIC slowdown the injection cap.
  for (const auto& e : plan.events) {
    if (e.kind == FaultSpec::Kind::link_brownout && e.severity < 1.0 &&
        (!model_.params().use_link_cap || machine_.num_link_tiers() == 0))
      throw SimError(
          "FaultPlan: link_brownout requires CostParams::use_link_cap and "
          "MachineConfig::switch_levels with at least one link tier");
    if (e.kind == FaultSpec::Kind::nic_slowdown && e.severity < 1.0 &&
        !model_.params().use_injection_cap)
      throw SimError(
          "FaultPlan: nic_slowdown requires CostParams::use_injection_cap");
  }
  faults_ = std::move(plan);
  fault_msgs_ = fault_stalls_ = fault_brownout_ = fault_nic_ = false;
  for (const auto& e : faults_.events) {
    switch (e.kind) {
      case FaultSpec::Kind::msg_drop:
      case FaultSpec::Kind::msg_dup:
        fault_msgs_ = fault_msgs_ || e.rate > 0.0;
        break;
      case FaultSpec::Kind::link_brownout:
        fault_brownout_ = fault_brownout_ || e.severity < 1.0;
        break;
      case FaultSpec::Kind::nic_slowdown:
        fault_nic_ = fault_nic_ || e.severity < 1.0;
        break;
      case FaultSpec::Kind::compute_stall:
        fault_stalls_ = fault_stalls_ || e.severity < 1.0;
        break;
    }
  }
}

double Engine::stall_stretch(int rank, double when) const {
  double stretch = 1.0;
  for (const auto& e : faults_.events)
    if (e.kind == FaultSpec::Kind::compute_stall &&
        (e.rank < 0 || e.rank == rank) && in_window(e, when))
      stretch /= e.severity;
  return stretch;
}

void Engine::deliver(const PendingSend& ps) {
  // Fault gate: only payload-bearing network messages are candidates;
  // control traffic (reliability acks) is exempt under protect_control so
  // retransmission terminates.  One uniform draw per message decides
  // drop vs duplicate vs clean delivery — a pure function of (plan seed,
  // channel, per-channel sequence number), evaluated only here in the
  // single-threaded commit step.
  if (fault_msgs_ && ps.loc == Locality::network && ps.size > 0 &&
      !(ps.control && faults_.protect_control)) {
    ChanFaultCounts& cf = fault_chan_[ps.key];
    const std::uint64_t seq = ++cf.sent;
    double drop_rate = 0.0;
    double dup_rate = 0.0;
    for (const auto& e : faults_.events) {
      if (e.kind != FaultSpec::Kind::msg_drop &&
          e.kind != FaultSpec::Kind::msg_dup)
        continue;
      if (e.rank >= 0 && e.rank != ps.key.src) continue;
      if (!in_window(e, ps.depart)) continue;
      (e.kind == FaultSpec::Kind::msg_drop ? drop_rate : dup_rate) += e.rate;
    }
    if (drop_rate > 0.0 || dup_rate > 0.0) {
      const double u = fault_uniform(faults_.seed, ps.key, seq);
      if (u < drop_rate) {
        // Lost at injection: no queue is charged, the payload chunk is
        // released, the receiver sees nothing.
        ++stats_[ps.key.src].faults.drops;
        ++cf.dropped;
        if (ps.chunk != nullptr) util::Arena::release(ps.chunk);
        return;
      }
      if (u < drop_rate + dup_rate) {
        // Duplicate: a second copy of the same payload bytes traverses —
        // and is charged by — the network independently.  Both copies
        // share one arena chunk; each delivery releases one reference.
        ++stats_[ps.key.src].faults.dups;
        ++cf.duped;
        util::Arena::retain(ps.chunk);
        deliver_one(ps);
      }
    }
  }
  deliver_one(ps);
}

void Engine::deliver_one(const PendingSend& ps) {
  const std::size_t bytes = ps.size;
  double arrival;
  if (ps.loc == Locality::network && model_.params().use_injection_cap) {
    const int node = machine_.node_of(ps.key.src);
    const double inject = std::max(ps.depart, nic_free_[node]);
    // Zero-byte messages (barriers, handshakes) occupy no injection
    // bandwidth and must not extend the NIC busy window: a late-departing
    // empty message would otherwise re-contaminate the queue across a
    // sync_reset measurement boundary.
    if (bytes > 0) {
      double occ = model_.nic_occupancy(bytes);
      if (fault_nic_) {
        for (const auto& e : faults_.events)
          if (e.kind == FaultSpec::Kind::nic_slowdown &&
              (e.node < 0 || e.node == node) && in_window(e, ps.depart))
            occ /= e.severity;
      }
      nic_free_[node] = inject + occ;
    }
    arrival = inject + model_.transfer_time(ps.loc, bytes);
  } else {
    arrival = ps.depart + model_.transfer_time(ps.loc, bytes);
  }

  // Shared-link contention: the message store-and-forwards through every
  // up/down link between its source and destination subtrees, each link a
  // FIFO queue like the NICs.  lca == 0 means the pair meets at the leaf
  // switch — the node<->leaf links are the NIC, charged above — so only
  // deeper crossings pay; zero-byte messages pass for the same reason
  // they skip the NIC queues.  The queue arithmetic runs only here, in
  // the single-threaded commit step, in (rank, program) order:
  // bit-identical for any Options::threads.
  if (ps.loc == Locality::network && bytes > 0 &&
      model_.params().use_link_cap) {
    const int snode = machine_.node_of(ps.key.src);
    const int dnode = machine_.node_of(ps.key.dst);
    const int lca = machine_.node_lca_level(snode, dnode);
    if (lca > 0) {
      RankStats& st = stats_[ps.key.src];
      if (st.link.empty())
        st.link.resize(static_cast<std::size_t>(machine_.num_link_tiers()));
      auto charge = [&](int tier, double& free_at) {
        LinkStats& ls = st.link[static_cast<std::size_t>(tier)];
        ls.max_backlog_seconds =
            std::max(ls.max_backlog_seconds, free_at - arrival);
        double rate = link_rate_eff_[tier];
        if (fault_brownout_) {
          for (const auto& e : faults_.events)
            if (e.kind == FaultSpec::Kind::link_brownout &&
                (e.tier < 0 || e.tier == tier) && in_window(e, ps.depart))
              rate *= e.severity;
        }
        const double occ = model_.link_occupancy(bytes, rate);
        ls.busy_seconds += occ;
        arrival = std::max(arrival, free_at) + occ;
        free_at = arrival;
      };
      for (int t = 0; t < lca; ++t)  // up the source subtree
        charge(t, link_up_free_[link_tier_off_[t] +
                                machine_.switch_of(snode, t)]);
      for (int t = lca - 1; t >= 0; --t)  // down the destination subtree
        charge(t, link_down_free_[link_tier_off_[t] +
                                  machine_.switch_of(dnode, t)]);
    }
  }

  // Receiver-side endpoint congestion: network payloads drain through the
  // destination node's NIC at nic_eject_rate, store-and-forward, so N-to-1
  // incast queues at the receiver.  Zero-byte messages pass through for the
  // same reason they skip injection occupancy above.  The queue arithmetic
  // runs only here, in the single-threaded commit step, in (rank, program)
  // order — width-independent like the injection queue.
  if (ps.loc == Locality::network && bytes > 0 &&
      model_.params().use_ejection_cap) {
    const int dnode = machine_.node_of(ps.key.dst);
    const double done =
        std::max(arrival, eject_free_[dnode]) + model_.eject_occupancy(bytes);
    eject_free_[dnode] = done;
    arrival = done;
  }

  RankState& dst = rank_[ps.key.dst];
  dst.intern_channel(ps.key).push(Message{ps.data, ps.size, ps.chunk, arrival});
  ++dst.inbox_count;
  if (dst.parked && dst.parked_key == ps.key) {
    ready_.push_back(dst.parked);
    dst.parked = {};
    dst.parked_deadline = RankState::kNoDeadline;
  }
}

bool Engine::fire_earliest_timeout() {
  int best = -1;
  for (int r = 0; r < static_cast<int>(rank_.size()); ++r) {
    const RankState& rs = rank_[r];
    if (!rs.parked || rs.parked_deadline == RankState::kNoDeadline) continue;
    if (best < 0 || rs.parked_deadline < rank_[best].parked_deadline)
      best = r;
  }
  if (best < 0) return false;
  RankState& rs = rank_[best];
  // The rank waited until its deadline: advance its clock there (the
  // deadline is now() + timeout at park time, so this never rewinds).
  clocks_[best] = std::max(clocks_[best], rs.parked_deadline);
  ++stats_[best].faults.timeouts;
  rs.timed_out = true;
  ready_.push_back(rs.parked);
  rs.parked = {};
  rs.parked_deadline = RankState::kNoDeadline;
  return true;
}

void Engine::park_until(const ChannelKey& key, std::coroutine_handle<> h,
                        double deadline) {
  park(key, h);
  rank_[key.dst].parked_deadline = deadline;
}

bool Engine::finish_timed_wait(Request& req) {
  RankState& rs = rank_[req.key().dst];
  if (rs.timed_out) {
    rs.timed_out = false;
    return false;
  }
  complete_recv(req);
  return true;
}

double Engine::max_clock() const {
  return *std::max_element(clocks_.begin(), clocks_.end());
}

std::uint64_t Engine::max_msgs(std::initializer_list<Locality> tiers) const {
  std::uint64_t best = 0;
  for (const auto& rs : stats_) {
    std::uint64_t n = 0;
    for (Locality t : tiers) n += rs.tier[static_cast<int>(t)].msgs;
    best = std::max(best, n);
  }
  return best;
}

std::uint64_t Engine::max_bytes(std::initializer_list<Locality> tiers) const {
  std::uint64_t best = 0;
  for (const auto& rs : stats_) {
    std::uint64_t n = 0;
    for (Locality t : tiers) n += rs.tier[static_cast<int>(t)].bytes;
    best = std::max(best, n);
  }
  return best;
}

double Engine::total_link_seconds(int tier) const {
  double sum = 0.0;
  for (const auto& rs : stats_)
    if (static_cast<std::size_t>(tier) < rs.link.size())
      sum += rs.link[static_cast<std::size_t>(tier)].busy_seconds;
  return sum;
}

double Engine::max_link_backlog_seconds(int tier) const {
  double best = 0.0;
  for (const auto& rs : stats_)
    if (static_cast<std::size_t>(tier) < rs.link.size())
      best = std::max(
          best, rs.link[static_cast<std::size_t>(tier)].max_backlog_seconds);
  return best;
}

void Engine::reset_stats() {
  for (auto& s : stats_) s.clear();
}

Task<> Engine::sync_reset(Context& ctx, bool clear_stats) {
  co_await coll::barrier(ctx, ctx.world());
  // The dissemination barrier guarantees every rank has entered before any
  // rank leaves, so every send journaled from here on is post-barrier.  The
  // per-rank flag defers the shared NIC-queue drain to the commit step,
  // which folds one reset generation into a single drain (see
  // commit_phase): leavers race-free even though they resume concurrently.
  rank_[ctx.rank()].nic_reset_request = true;
  clocks_[ctx.rank()] = 0.0;
  if (clear_stats) stats_[ctx.rank()].clear();
}

void Engine::post_send(const Comm& comm, int src_local, int dst_local, int tag,
                       std::span<const std::byte> payload, bool control) {
  const int gsrc = comm.global(src_local);
  const int gdst = comm.global(dst_local);
  const Locality loc = machine_.classify(gsrc, gdst);

  double& clk = clocks_[gsrc];
  clk += model_.send_overhead();

  auto& ts = stats_[gsrc].tier[static_cast<int>(loc)];
  ++ts.msgs;
  ts.bytes += payload.size();

  // Copy the payload into this rank's bump arena: a pointer bump plus a
  // memcpy, no heap traffic in steady state.  The bytes stay put until the
  // receive completes and releases the chunk back to the arena.
  RankState& rs = rank_[gsrc];
  util::Arena::Alloc alloc;
  if (!payload.empty()) {
    alloc = rs.arena.allocate(payload.size());
    std::memcpy(alloc.data, payload.data(), payload.size());
  }

  // Arrival time and NIC occupancy depend on shared per-node state; they
  // are computed at the phase commit (deliver), not here.
  rs.journal.push_back(PendingSend{ChannelKey{comm.id(), gsrc, gdst, tag},
                                   alloc.data, payload.size(), alloc.chunk,
                                   clk, loc, control});
}

bool Engine::has_message(const ChannelKey& key) const {
  return rank_[key.dst].has_channel(key);
}

void Engine::park(const ChannelKey& key, std::coroutine_handle<> h) {
  RankState& rs = rank_[key.dst];
  if (rs.parked)
    throw SimError("Engine::park: rank already parked (overlapping waits on "
                   "one rank cannot happen with one coroutine per rank)");
  rs.parked = h;
  rs.parked_key = key;
}

void Engine::complete_recv(Request& req) {
  const ChannelKey key = req.key();
  RankState& rs = rank_[key.dst];
  Message msg;
  if (!rs.pop_message(key, msg))
    throw SimError("Engine::complete_recv: no matching message");

  --rs.inbox_count;

  if (req.dyn_) {
    req.payload_.assign(msg.data, msg.data + msg.size);
    req.received_ = msg.size;
  } else {
    if (msg.size > req.rbuf_.size()) {
      // The message is consumed either way: release its chunk before
      // surfacing the error, or the sender's arena pins it forever.
      if (msg.chunk != nullptr) util::Arena::release(msg.chunk);
      throw SimError("Engine::complete_recv: message truncated (payload " +
                     std::to_string(msg.size) + "B > buffer " +
                     std::to_string(req.rbuf_.size()) + "B)");
    }
    if (msg.size > 0) std::memcpy(req.rbuf_.data(), msg.data, msg.size);
    req.received_ = msg.size;
  }
  // Payload consumed: release the sender's arena chunk so it can recycle.
  if (msg.chunk != nullptr) util::Arena::release(msg.chunk);

  double& clk = clocks_[key.dst];
  clk = std::max(clk, msg.arrival) + model_.recv_overhead(rs.inbox_count);
  req.started_ = false;
}

int Engine::next_coll_tag(const Comm& comm) {
  // Reserve a high tag range for internal collective traffic; user tags
  // must stay below kCollTagBase.
  constexpr int kCollTagBase = 1 << 28;
  constexpr int kCollTagRange = 1 << 27;
  auto& tags = rank_[comm.global(comm.rank())].coll_tags;
  const int seq = tags[comm.id()]++;
  return kCollTagBase + (seq % kCollTagRange);
}

int Engine::next_split_round(const Comm& comm) {
  auto& rounds = rank_[comm.global(comm.rank())].split_rounds;
  return rounds[comm.id()]++;
}

std::shared_ptr<const CommData> Engine::get_or_create_comm(
    std::uint32_t parent_ctx, int round, int color,
    const std::vector<int>& members_global) {
  if (color < 0) throw SimError("get_or_create_comm: color must be >= 0");
  const std::uint64_t key = (static_cast<std::uint64_t>(parent_ctx) << 48) |
                            ((static_cast<std::uint64_t>(round) & 0xFFFFFF)
                             << 24) |
                            (static_cast<std::uint64_t>(color) & 0xFFFFFF);
  // Ranks of one phase may create the same communicator concurrently; the
  // winner under the lock assigns the ctx_id.  ctx_ids are identities only
  // — no simulated cost or schedule decision reads their numeric value —
  // so the winner's thread-dependence cannot break determinism.
  util::MutexLock lk(comm_mu_);
  auto it = comm_cache_.find(key);
  if (it != comm_cache_.end()) {
    if (it->second->members != members_global)
      throw SimError("get_or_create_comm: member mismatch across ranks");
    return it->second;
  }
  auto data = std::make_shared<CommData>();
  data->ctx_id = next_ctx_id_++;
  data->members = members_global;
  comm_cache_.emplace(key, data);
  return data;
}

}  // namespace simmpi
