#include "simmpi/fault.hpp"

#include <string>

#include "simmpi/machine.hpp"

namespace simmpi {

const char* to_string(FaultSpec::Kind k) {
  switch (k) {
    case FaultSpec::Kind::link_brownout: return "link_brownout";
    case FaultSpec::Kind::nic_slowdown: return "nic_slowdown";
    case FaultSpec::Kind::msg_drop: return "msg_drop";
    case FaultSpec::Kind::msg_dup: return "msg_dup";
    case FaultSpec::Kind::compute_stall: return "compute_stall";
  }
  return "?";
}

namespace {

std::string field(std::size_t i, const char* name) {
  return "FaultPlan: events[" + std::to_string(i) + "]." + name;
}

[[noreturn]] void fail_range(std::size_t i, const char* name,
                             const std::string& constraint, double got) {
  throw SimError(field(i, name) + " must be " + constraint + " (got " +
                 std::to_string(got) + ")");
}

[[noreturn]] void fail_target(std::size_t i, const char* name, int got,
                              int limit) {
  throw SimError(field(i, name) + " must be -1 (all) or in [0, " +
                 std::to_string(limit) + ") (got " + std::to_string(got) +
                 ")");
}

/// The target index an event applies to, for the overlap check: two events
/// of the same kind collide when their targets are equal or either is the
/// -1 wildcard.
int target_of(const FaultSpec& e) {
  switch (e.kind) {
    case FaultSpec::Kind::link_brownout: return e.tier;
    case FaultSpec::Kind::nic_slowdown: return e.node;
    case FaultSpec::Kind::msg_drop:
    case FaultSpec::Kind::msg_dup:
    case FaultSpec::Kind::compute_stall: return e.rank;
  }
  return -1;
}

}  // namespace

void validate_fault_plan(const FaultPlan& plan, const Machine& machine) {
  for (std::size_t i = 0; i < plan.events.size(); ++i) {
    const FaultSpec& e = plan.events[i];
    if (!(e.t_begin >= 0.0))
      fail_range(i, "t_begin", ">= 0", e.t_begin);
    if (!(e.t_end > e.t_begin))
      throw SimError(field(i, "t_end") + " must be > t_begin (window [" +
                     std::to_string(e.t_begin) + ", " +
                     std::to_string(e.t_end) + ") is inverted or empty)");
    switch (e.kind) {
      case FaultSpec::Kind::link_brownout:
        if (!(e.severity > 0.0 && e.severity <= 1.0))
          fail_range(i, "severity", "in (0, 1]", e.severity);
        if (e.tier < -1 || e.tier >= machine.num_link_tiers())
          fail_target(i, "tier", e.tier, machine.num_link_tiers());
        break;
      case FaultSpec::Kind::nic_slowdown:
        if (!(e.severity > 0.0 && e.severity <= 1.0))
          fail_range(i, "severity", "in (0, 1]", e.severity);
        if (e.node < -1 || e.node >= machine.num_nodes())
          fail_target(i, "node", e.node, machine.num_nodes());
        break;
      case FaultSpec::Kind::msg_drop:
      case FaultSpec::Kind::msg_dup:
        if (!(e.rate >= 0.0 && e.rate <= 1.0))
          fail_range(i, "rate", "in [0, 1]", e.rate);
        if (e.rank < -1 || e.rank >= machine.num_ranks())
          fail_target(i, "rank", e.rank, machine.num_ranks());
        break;
      case FaultSpec::Kind::compute_stall:
        if (!(e.severity > 0.0 && e.severity <= 1.0))
          fail_range(i, "severity", "in (0, 1]", e.severity);
        if (e.rank < -1 || e.rank >= machine.num_ranks())
          fail_target(i, "rank", e.rank, machine.num_ranks());
        break;
    }
    // Overlapping same-kind windows on a colliding target would stack
    // ambiguously (which severity applies?  do rates add?) — reject, like
    // MachineConfig rejects shapes it would have to guess about.
    for (std::size_t j = 0; j < i; ++j) {
      const FaultSpec& p = plan.events[j];
      if (p.kind != e.kind) continue;
      const int ta = target_of(p), tb = target_of(e);
      if (ta != tb && ta != -1 && tb != -1) continue;
      if (e.t_begin < p.t_end && p.t_begin < e.t_end)
        throw SimError("FaultPlan: events[" + std::to_string(j) + "] and "
                       "events[" + std::to_string(i) + "] are overlapping " +
                       to_string(e.kind) + " windows on the same target ([" +
                       std::to_string(p.t_begin) + ", " +
                       std::to_string(p.t_end) + ") vs [" +
                       std::to_string(e.t_begin) + ", " +
                       std::to_string(e.t_end) + "))");
    }
  }
}

namespace {

/// SplitMix64 finalizer: the standard avalanche, applied counter-mode.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

double fault_uniform(std::uint64_t seed, const ChannelKey& key,
                     std::uint64_t seq) {
  std::uint64_t h = splitmix64(seed);
  h = splitmix64(h ^ ((static_cast<std::uint64_t>(key.ctx) << 32) |
                      static_cast<std::uint32_t>(key.tag)));
  h = splitmix64(
      h ^ ((static_cast<std::uint64_t>(static_cast<std::uint32_t>(key.src))
            << 32) |
           static_cast<std::uint32_t>(key.dst)));
  h = splitmix64(h ^ seq);
  // 53 high bits -> [0, 1): every double in the range is reachable and
  // the map is exact (no rounding), so thresholds compare reproducibly.
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace simmpi
