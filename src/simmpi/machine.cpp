#include "simmpi/machine.hpp"

#include <climits>
#include <string>
#include <utility>

namespace simmpi {

namespace {

/// Validate before any member uses the config: num_ranks_ is computed in
/// the constructor's init list, so the `int` product must be proven safe
/// here — a zero dimension would otherwise yield a 0-rank machine and
/// div-by-zero in ranks_per_node() callers, and a huge one silent overflow.
MachineConfig validated(MachineConfig cfg) {
  auto require_positive = [](int v, const char* name) {
    if (v < 1)
      throw SimError("MachineConfig: " + std::string(name) + " must be >= 1 (got " +
                     std::to_string(v) + ")");
  };
  require_positive(cfg.num_nodes, "num_nodes");
  require_positive(cfg.regions_per_node, "regions_per_node");
  require_positive(cfg.ranks_per_region, "ranks_per_region");
  const long long ranks = static_cast<long long>(cfg.num_nodes) *
                          cfg.regions_per_node * cfg.ranks_per_region;
  if (ranks > INT_MAX)
    throw SimError("MachineConfig: " + std::to_string(cfg.num_nodes) + " x " +
                   std::to_string(cfg.regions_per_node) + " x " +
                   std::to_string(cfg.ranks_per_region) + " = " +
                   std::to_string(ranks) + " ranks overflows int");

  // Switch hierarchy: radixes must cascade evenly from the node count and
  // close the tree at a single root, or switch_of()/node_lca_level()
  // would map nodes to fractional subtrees.
  int below = cfg.num_nodes;
  for (std::size_t i = 0; i < cfg.switch_levels.size(); ++i) {
    const SwitchLevel& lvl = cfg.switch_levels[i];
    const std::string name = "switch_levels[" + std::to_string(i) + "]";
    if (lvl.radix < 1)
      throw SimError("MachineConfig: " + name + ".radix must be >= 1 (got " +
                     std::to_string(lvl.radix) + ")");
    if (!(lvl.taper > 0.0))
      throw SimError("MachineConfig: " + name + ".taper must be > 0 (got " +
                     std::to_string(lvl.taper) + ")");
    if (below % lvl.radix != 0)
      throw SimError("MachineConfig: " + name + ".radix (" +
                     std::to_string(lvl.radix) + ") must divide the " +
                     std::to_string(below) +
                     (i == 0 ? " nodes" : " level-" + std::to_string(i - 1) +
                                              " switches") +
                     " below it");
    below /= lvl.radix;
  }
  if (!cfg.switch_levels.empty() && below != 1)
    throw SimError(
        "MachineConfig: switch_levels must close the tree at one root "
        "switch (top level leaves " +
        std::to_string(below) + ")");
  return cfg;
}

}  // namespace

Machine::Machine(MachineConfig cfg)
    : cfg_(validated(std::move(cfg))), num_ranks_(cfg_.num_ranks()) {
  int per = 1;
  int count = cfg_.num_nodes;
  for (const SwitchLevel& lvl : cfg_.switch_levels) {
    per *= lvl.radix;
    count /= lvl.radix;
    nodes_per_switch_.push_back(per);
    switches_at_.push_back(count);
  }
}

Machine Machine::with_region_size(int nranks, int ranks_per_region) {
  if (nranks < 1 || ranks_per_region < 1)
    throw SimError("Machine::with_region_size: sizes must be >= 1");
  if (nranks <= ranks_per_region)
    return Machine({.num_nodes = 1, .regions_per_node = 1,
                    .ranks_per_region = nranks});
  if (nranks % ranks_per_region != 0)
    throw SimError(
        "Machine::with_region_size: nranks must be a multiple of "
        "ranks_per_region");
  return Machine({.num_nodes = nranks / ranks_per_region,
                  .regions_per_node = 1,
                  .ranks_per_region = ranks_per_region});
}

Locality Machine::classify(int a, int b) const {
  if (a == b) return Locality::self;
  if (region_of(a) == region_of(b)) return Locality::region;
  if (node_of(a) == node_of(b)) return Locality::node;
  return Locality::network;
}

int Machine::node_lca_level(int node_a, int node_b) const {
  if (node_a == node_b) return -1;
  const int lv = num_switch_levels();
  for (int l = 0; l < lv; ++l)
    if (switch_of(node_a, l) == switch_of(node_b, l)) return l;
  // Only reachable with no hierarchy configured (the validated tree
  // always closes at one root switch): the flat core joins everything.
  return 0;
}

}  // namespace simmpi
