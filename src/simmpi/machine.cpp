#include "simmpi/machine.hpp"

#include <climits>
#include <string>

namespace simmpi {

namespace {

/// Validate before any member uses the config: num_ranks_ is computed in
/// the constructor's init list, so the `int` product must be proven safe
/// here — a zero dimension would otherwise yield a 0-rank machine and
/// div-by-zero in ranks_per_node() callers, and a huge one silent overflow.
MachineConfig validated(MachineConfig cfg) {
  auto require_positive = [](int v, const char* name) {
    if (v < 1)
      throw SimError("MachineConfig: " + std::string(name) + " must be >= 1 (got " +
                     std::to_string(v) + ")");
  };
  require_positive(cfg.num_nodes, "num_nodes");
  require_positive(cfg.regions_per_node, "regions_per_node");
  require_positive(cfg.ranks_per_region, "ranks_per_region");
  const long long ranks = static_cast<long long>(cfg.num_nodes) *
                          cfg.regions_per_node * cfg.ranks_per_region;
  if (ranks > INT_MAX)
    throw SimError("MachineConfig: " + std::to_string(cfg.num_nodes) + " x " +
                   std::to_string(cfg.regions_per_node) + " x " +
                   std::to_string(cfg.ranks_per_region) + " = " +
                   std::to_string(ranks) + " ranks overflows int");
  return cfg;
}

}  // namespace

Machine::Machine(MachineConfig cfg)
    : cfg_(validated(cfg)), num_ranks_(cfg_.num_ranks()) {}

Machine Machine::with_region_size(int nranks, int ranks_per_region) {
  if (nranks < 1 || ranks_per_region < 1)
    throw SimError("Machine::with_region_size: sizes must be >= 1");
  if (nranks <= ranks_per_region)
    return Machine({.num_nodes = 1, .regions_per_node = 1,
                    .ranks_per_region = nranks});
  if (nranks % ranks_per_region != 0)
    throw SimError(
        "Machine::with_region_size: nranks must be a multiple of "
        "ranks_per_region");
  return Machine({.num_nodes = nranks / ranks_per_region,
                  .regions_per_node = 1,
                  .ranks_per_region = ranks_per_region});
}

Locality Machine::classify(int a, int b) const {
  if (a == b) return Locality::self;
  if (region_of(a) == region_of(b)) return Locality::region;
  if (node_of(a) == node_of(b)) return Locality::node;
  return Locality::network;
}

}  // namespace simmpi
