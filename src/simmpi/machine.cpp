#include "simmpi/machine.hpp"

namespace simmpi {

Machine::Machine(MachineConfig cfg) : cfg_(cfg), num_ranks_(cfg.num_ranks()) {
  if (cfg.num_nodes < 1 || cfg.regions_per_node < 1 || cfg.ranks_per_region < 1)
    throw SimError("MachineConfig: all dimensions must be >= 1");
}

Machine Machine::with_region_size(int nranks, int ranks_per_region) {
  if (nranks < 1 || ranks_per_region < 1)
    throw SimError("Machine::with_region_size: sizes must be >= 1");
  if (nranks <= ranks_per_region)
    return Machine({.num_nodes = 1, .regions_per_node = 1,
                    .ranks_per_region = nranks});
  if (nranks % ranks_per_region != 0)
    throw SimError(
        "Machine::with_region_size: nranks must be a multiple of "
        "ranks_per_region");
  return Machine({.num_nodes = nranks / ranks_per_region,
                  .regions_per_node = 1,
                  .ranks_per_region = ranks_per_region});
}

Locality Machine::classify(int a, int b) const {
  if (a == b) return Locality::self;
  if (region_of(a) == region_of(b)) return Locality::region;
  if (node_of(a) == node_of(b)) return Locality::node;
  return Locality::network;
}

}  // namespace simmpi
