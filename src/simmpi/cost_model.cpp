#include "simmpi/cost_model.hpp"

namespace simmpi {

CostParams CostParams::lassen() {
  CostParams p;
  // self: a rank "sending" to itself is a memcpy through L2.
  p.tier[static_cast<int>(Locality::self)] = {
      .short_ = {.alpha = 1.0e-7, .beta = 1.0 / 50.0e9},
      .eager = {.alpha = 1.5e-7, .beta = 1.0 / 40.0e9},
      .rend = {.alpha = 3.0e-7, .beta = 1.0 / 30.0e9},
  };
  // region: same CPU socket, through shared L3 / memory controller.
  p.tier[static_cast<int>(Locality::region)] = {
      .short_ = {.alpha = 5.0e-7, .beta = 1.0 / 30.0e9},
      .eager = {.alpha = 7.0e-7, .beta = 1.0 / 20.0e9},
      .rend = {.alpha = 1.2e-6, .beta = 1.0 / 16.0e9},
  };
  // node: cross-NUMA through main memory.  Published Lassen data shows this
  // path costs over twice the network per byte for large messages.
  p.tier[static_cast<int>(Locality::node)] = {
      .short_ = {.alpha = 7.0e-7, .beta = 1.0 / 12.0e9},
      .eager = {.alpha = 9.0e-7, .beta = 1.0 / 8.0e9},
      .rend = {.alpha = 1.8e-6, .beta = 1.0 / 5.0e9},
  };
  // network: EDR InfiniBand.
  p.tier[static_cast<int>(Locality::network)] = {
      .short_ = {.alpha = 7.5e-7, .beta = 4.0e-10},
      .eager = {.alpha = 1.6e-6, .beta = 1.0e-10},
      .rend = {.alpha = 4.5e-6, .beta = 8.0e-11},
  };
  p.send_overhead = 1.2e-7;
  p.recv_overhead = 1.2e-7;
  p.queue_search = 1.2e-8;
  return p;
}

CostParams CostParams::flat(double alpha, double beta) {
  CostParams p;
  for (int t = 0; t < kNumLocalities; ++t) {
    p.tier[t] = {
        .short_ = {.alpha = alpha, .beta = beta},
        .eager = {.alpha = alpha, .beta = beta},
        .rend = {.alpha = alpha, .beta = beta},
    };
  }
  p.use_injection_cap = false;
  return p;
}

}  // namespace simmpi
