#pragma once
/// \file engine.hpp
/// \brief The SPMD simulation engine: scheduler, mailboxes, virtual clocks.
///
/// The engine runs one C++20 coroutine per simulated rank.  Data movement is
/// real (payload bytes are copied between rank buffers), so algorithms can be
/// verified end-to-end; *time* is virtual, advanced per message by a
/// locality-aware cost model (see cost_model.hpp).
///
/// Execution is *phase-based*: every runnable rank coroutine of a phase is
/// resumed — concurrently, on a worker pool of `Options::threads` OS threads
/// — until it blocks on a receive or finishes.  Sends posted during a phase
/// are journaled per rank, and committed at the phase barrier in (rank,
/// program) order: only then are NIC queues charged, arrival times fixed,
/// messages delivered and parked receivers woken.  Because ranks never touch
/// shared simulator state inside a phase and the commit order is independent
/// of the worker count, the schedule — virtual clocks, message statistics,
/// delivered payload bytes — is **deterministic and bit-identical for every
/// value of `Options::threads`** (the determinism contract; see
/// docs/ARCHITECTURE.md and the `EngineThreads` test suite).
///
/// Rank programs therefore run concurrently: host-side state shared across
/// ranks (result tables, caches) must be per-rank slots or synchronized.
/// Engine-mediated communication needs no user synchronization.

#include <atomic>
#include <coroutine>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <unordered_map>  // lint:allow(unordered-container) comm_cache_ below
#include <vector>

#include "simmpi/comm.hpp"
#include "simmpi/cost_model.hpp"
#include "simmpi/fault.hpp"
#include "simmpi/machine.hpp"
#include "simmpi/task.hpp"
#include "simmpi/types.hpp"
#include "util/arena.hpp"
#include "util/flat_map.hpp"
#include "util/thread_annotations.hpp"

namespace simmpi {

class Engine;

/// Per-rank execution context handed to every rank program.
class Context {
 public:
  Context(Engine& eng, int rank);

  /// Global (world) rank of this context.
  int rank() const { return rank_; }
  Engine& engine() { return *eng_; }
  /// The world communicator, containing every rank of the machine.
  Comm& world() { return world_; }
  /// Current virtual time of this rank, seconds.
  double now() const;
  /// Model `seconds` of local computation (advances this rank's clock).
  void compute(double seconds);

  /// Awaitable completing the given started request (MPI_Wait).
  /// Send requests complete locally; receive requests block until the
  /// matching message has been posted.
  auto wait(Request& req);
  /// Awaitable completing a started *receive* request, or timing out: the
  /// result is true when the message was received, false when virtual
  /// time reached `deadline` first (the request stays armed — a later
  /// wait can still complete it).  Timeouts fire only under global
  /// quiescence (no rank runnable), earliest deadline first, so they are
  /// as deterministic as everything else; the timing-out rank's clock
  /// advances to the deadline.  Foundation of the reliability layer's
  /// timeout-retransmit (mpix::Reliability).
  auto wait_until(Request& req, double deadline);
  /// Complete a set of requests (MPI_Waitall).  Requests are completed in
  /// the order given; clocks advance monotonically regardless of order.
  Task<> wait_all(std::span<Request> reqs);
  Task<> wait_all(std::span<Request* const> reqs);

 private:
  Engine* eng_;
  int rank_;
  Comm world_;
};

/// Simulation engine.  Owns topology, cost model, mailboxes and clocks.
class Engine {
 public:
  /// Engine execution knobs.
  struct Options {
    /// Worker threads of the phase scheduler.  0 = auto: the
    /// `COLLOM_SIM_THREADS` environment variable if set and positive, else
    /// `std::thread::hardware_concurrency()`.  Any value yields the same
    /// simulated schedule (see the determinism contract in the file brief).
    int threads = 0;
  };

  /// Per-rank, per-locality-tier message statistics (sender side).
  struct TierStats {
    std::uint64_t msgs = 0;
    std::uint64_t bytes = 0;
    bool operator==(const TierStats&) const = default;
  };
  /// Shared-link contention charged to one rank's network sends at one
  /// link tier (tier 0 = leaf-switch up/down links; see
  /// Machine::num_link_tiers).  The whole LCA path of a message — up the
  /// source subtree, down the destination subtree — is attributed to the
  /// sender.
  struct LinkStats {
    double busy_seconds = 0.0;  ///< occupancy this rank's sends added
    double max_backlog_seconds = 0.0;  ///< worst queue wait encountered
    bool operator==(const LinkStats&) const = default;
  };
  /// Fault-injection and reliability counters of one rank (all zero
  /// without a FaultPlan).  Drops/duplications are attributed to the
  /// *sender* of the affected message; retransmits and timeout fires to
  /// the rank running the reliable sender protocol.
  struct FaultStats {
    std::uint64_t drops = 0;        ///< messages dropped in flight
    std::uint64_t dups = 0;         ///< duplicate deliveries injected
    std::uint64_t retransmits = 0;  ///< reliability-layer resends
    std::uint64_t timeouts = 0;     ///< wait_until deadlines that fired
    bool operator==(const FaultStats&) const = default;
  };
  struct RankStats {
    TierStats tier[kNumLocalities];
    /// Simulated local computation charged via Context::compute (overlap
    /// windows etc.), seconds.  Cleared with the message stats.
    double compute_seconds = 0.0;
    /// Per link tier; sized lazily to Machine::num_link_tiers() by the
    /// first charged send, so it stays empty while
    /// CostParams::use_link_cap is off or this rank never crossed a
    /// switch boundary.
    std::vector<LinkStats> link;
    FaultStats faults;
    std::uint64_t total_msgs() const {
      std::uint64_t n = 0;
      for (const auto& t : tier) n += t.msgs;
      return n;
    }
    /// Zero every counter in place.  Unlike assigning a fresh RankStats
    /// this keeps `link`'s storage, so steady-state resets stay
    /// allocation-free (the EngineAlloc suite's guarantee).
    void clear() {
      for (auto& t : tier) t = TierStats{};
      compute_seconds = 0.0;
      for (auto& l : link) l = LinkStats{};
      faults = FaultStats{};
    }
    bool operator==(const RankStats&) const = default;
  };

  Engine(Machine machine, CostParams params, Options opts);
  Engine(Machine machine, CostParams params);

  /// A rank program: the same function body is executed by every rank
  /// (SPMD), distinguished through `Context::rank()`.
  using RankProgram = std::function<Task<>(Context&)>;

  /// Run `program` on every rank to completion.
  /// Throws SimError on deadlock and rethrows the first rank exception.
  void run(const RankProgram& program);

  const Machine& machine() const { return machine_; }
  const CostModel& model() const { return model_; }
  /// Resolved scheduler width (>= 1; see Options::threads).
  int threads() const { return threads_; }

  /// Virtual clock of a rank, seconds.
  double clock(int rank) const { return clocks_[rank]; }
  /// Maximum clock across ranks (completion time of the last rank).
  double max_clock() const;

  /// Attach (replacing any previous) a fault schedule.  Validates against
  /// this engine's machine and cost model; pass a default-constructed
  /// plan to clear.  Without a plan — or with one whose events are all
  /// no-ops (rate 0 / severity 1) — the engine is byte-inert: it takes
  /// the identical hot path and produces byte-identical schedules.
  void set_fault_plan(FaultPlan plan);
  const FaultPlan& fault_plan() const { return faults_; }

  /// Per-channel delivery accounting, maintained only while a fault plan
  /// with drop/duplication events is attached (commit-step-only writes).
  struct ChanFaultCounts {
    std::uint64_t sent = 0;     ///< messages committed on the channel
    std::uint64_t dropped = 0;  ///< of those, dropped in flight
    std::uint64_t duped = 0;    ///< duplicate copies injected
  };
  /// Accounting for one channel; nullptr when nothing was recorded.
  const ChanFaultCounts* channel_faults(const ChannelKey& key) const {
    return fault_chan_.find(key);
  }

  const RankStats& stats(int rank) const { return stats_[rank]; }
  /// Max over ranks of messages sent in the given tiers.
  std::uint64_t max_msgs(std::initializer_list<Locality> tiers) const;
  /// Max over ranks of bytes sent in the given tiers.
  std::uint64_t max_bytes(std::initializer_list<Locality> tiers) const;
  /// Sum over ranks of shared-link occupancy charged at `tier` (0.0 when
  /// the link cap is off or nothing crossed the tier).
  double total_link_seconds(int tier) const;
  /// Max over ranks of the worst link-queue backlog encountered at `tier`.
  double max_link_backlog_seconds(int tier) const;
  void reset_stats();

  /// Collective clock reset: barrier-equivalent synchronization point after
  /// which every rank's clock restarts at zero, NIC queues are drained and
  /// (optionally) statistics cleared.  Must be called by every rank.
  Task<> sync_reset(Context& ctx, bool clear_stats = true);

  // --- internal API used by Comm/Request/collectives -----------------

  /// Post a message: advances the sender clock, counts statistics, and
  /// journals the send for delivery at the next phase commit (arrival times
  /// and NIC occupancy are computed there, in deterministic rank order).
  /// `control` marks protocol traffic exempt from drop/duplication under
  /// FaultPlan::protect_control.
  void post_send(const Comm& comm, int src_local, int dst_local, int tag,
                 std::span<const std::byte> payload, bool control = false);
  /// Whether a *committed* message is available on `key` (messages of the
  /// current phase only become visible at its commit).
  bool has_message(const ChannelKey& key) const;
  /// Park the current coroutine until a message for `key` is committed.
  void park(const ChannelKey& key, std::coroutine_handle<> h);
  /// Park like park(), but additionally eligible for a timeout wake at
  /// `deadline` (fired only under global quiescence; see
  /// Context::wait_until).
  void park_until(const ChannelKey& key, std::coroutine_handle<> h,
                  double deadline);
  /// Resolve a timed wait after resumption: false when the park timed
  /// out (request stays armed), true after completing the receive.
  bool finish_timed_wait(Request& req);
  /// Count one reliability-layer retransmission against `rank`.
  void note_retransmit(int rank) { ++stats_[rank].faults.retransmits; }
  /// Take the front message of a channel and charge receive overheads.
  void complete_recv(Request& req);
  /// Next internal (collective) tag for this (comm, rank); identical call
  /// sequences on all ranks of a communicator yield matching tags.
  int next_coll_tag(const Comm& comm);
  /// Deterministically get-or-create a sub-communicator.  All members must
  /// call with the same (parent, round, color, members) tuple.  Safe to
  /// call from concurrently executing ranks.
  std::shared_ptr<const CommData> get_or_create_comm(
      std::uint32_t parent_ctx, int round, int color,
      const std::vector<int>& members_global);
  /// Per-(comm,rank) counter of communicator-creating calls.
  int next_split_round(const Comm& comm);
  std::shared_ptr<const CommData> world_data() const { return world_data_; }

  double& clock_ref(int rank) { return clocks_[rank]; }

  /// Charge `seconds` of simulated local computation to `rank`: advances
  /// its virtual clock and accumulates RankStats::compute_seconds.  Purely
  /// per-rank state, so calls from concurrently executing rank coroutines
  /// are race-free and the schedule stays width-independent.  Compute
  /// stalls (FaultSpec::Kind::compute_stall) stretch the charge here: the
  /// stretch reads only this rank's clock and the immutable fault plan,
  /// so it is in the same width-safety class as the charge itself.
  void add_compute(int rank, double seconds) {
    if (fault_stalls_) seconds *= stall_stretch(rank, clocks_[rank]);
    clocks_[rank] += seconds;
    stats_[rank].compute_seconds += seconds;
  }

  /// Aggregate payload-arena statistics over all ranks (allocation-
  /// regression tests and the engine micro benchmarks read these; steady
  /// state must not grow `chunks`).
  util::Arena::Stats arena_stats() const;
  /// Channels currently holding messages at rank `rank`'s mailbox (a
  /// channel lives only from delivery until its last message is received).
  std::size_t channel_count(int rank) const {
    return rank_[rank].chan_count;
  }
  /// Queue slots ever created at rank `rank` (the mailbox working-set
  /// high-water mark; steady workloads stop growing this).
  std::size_t channel_slots(int rank) const {
    return rank_[rank].channels.size();
  }

 private:
  /// A send journaled during a phase, awaiting delivery at the commit.
  /// The payload bytes live in the sending rank's arena; `chunk` is
  /// released once the receive consumed them.
  struct PendingSend {
    ChannelKey key;
    const std::byte* data = nullptr;
    std::size_t size = 0;
    util::Arena::Chunk* chunk = nullptr;
    double depart = 0.0;  ///< sender clock after the send overhead
    Locality loc = Locality::self;
    bool control = false;  ///< protocol ack (see FaultPlan::protect_control)
  };

  /// FIFO of committed, undelivered messages on one channel.  A plain
  /// vector with a head cursor: push_back at the tail, pop at the head,
  /// storage rewound (capacity kept) whenever the queue drains.
  struct ChannelQueue {
    std::vector<Message> q;
    std::size_t head = 0;
    bool empty() const { return head == q.size(); }
    void push(const Message& m) { q.push_back(m); }
    Message pop() {
      Message m = q[head++];
      if (head == q.size()) {
        q.clear();
        head = 0;
      }
      return m;
    }
    void drop_all() {
      q.clear();
      head = 0;
    }
  };

  /// State owned by one rank.  During a phase it is touched only by that
  /// rank's coroutine (on whichever worker runs it); the commit step — and
  /// only it — crosses rank boundaries, single-threaded.  Exception: the
  /// per-chunk refcounts of a sender's arena are decremented by receivers
  /// as they consume its payload bytes (Arena::release is thread-safe).
  struct RankState {
    static constexpr std::uint32_t kEmptySlot = 0xFFFFFFFFu;
    /// Mailbox: a flat open-addressing table (linear probing, power-of-two
    /// size, backward-shift deletion) over FIFO queues stored separately.
    /// A channel exists only while it holds messages: it is interned at
    /// delivery and erased when its last message is received, with the
    /// drained queue (capacity retained) parked on a free list for the
    /// next channel.  Collectives mint fresh tags per call, so without
    /// the erase the table — and with it absent-key probe lengths,
    /// end-of-run cleanup and resident memory — would grow for the
    /// engine's whole lifetime.  Invariant: an interned channel is
    /// never empty.
    std::vector<std::pair<ChannelKey, std::uint32_t>> chan_slots;
    std::size_t chan_count = 0;
    std::vector<ChannelQueue> channels;
    std::vector<std::uint32_t> free_channels;  ///< drained queue indices
    static constexpr double kNoDeadline =
        std::numeric_limits<double>::infinity();
    std::coroutine_handle<> parked{};  ///< this rank's blocked coroutine
    ChannelKey parked_key{};
    /// Timeout of a wait_until park (kNoDeadline for plain parks).
    double parked_deadline = kNoDeadline;
    /// Set by fire_earliest_timeout, consumed by finish_timed_wait.
    bool timed_out = false;
    int inbox_count = 0;  ///< committed, unreceived messages
    std::vector<PendingSend> journal;
    bool nic_reset_request = false;  ///< set by sync_reset, folded at commit
    util::FlatMap<std::uint32_t, int> coll_tags;     ///< per comm ctx
    util::FlatMap<std::uint32_t, int> split_rounds;  ///< per comm ctx
    /// Payload bytes of this rank's sends.  Bumped only by this rank's
    /// coroutine; chunks recycle as receivers release them.
    util::Arena arena;

    /// Whether `key` currently holds a message (interned => non-empty).
    bool has_channel(const ChannelKey& key) const;
    /// Pop the front message of `key` into `out`; erases the channel when
    /// that drained it.  False when no message is pending.
    bool pop_message(const ChannelKey& key, Message& out);
    /// The queue for `key`, interning it on first use (commit step only).
    ChannelQueue& intern_channel(const ChannelKey& key);
    /// Error-path cleanup: drop all messages, empty the table, park every
    /// queue on the free list (capacity retained).
    void reset_mailbox();
  };

  void commit_phase();
  /// Fault gate: decides drop/duplication for one journaled send, then
  /// forwards surviving copies to deliver_one.  Commit step only.
  void deliver(const PendingSend& ps);
  /// Charge NIC/link/ejection queues and enqueue into the destination
  /// mailbox (the pre-fault deliver body).  Commit step only.
  void deliver_one(const PendingSend& ps);
  /// Wake the timed park with the earliest (deadline, rank); false when
  /// none exists.  Called only under global quiescence (ready_ empty), so
  /// firing order is a pure function of the schedule.
  bool fire_earliest_timeout();
  /// Time multiplier (>= 1) faults apply to compute charged to `rank` at
  /// virtual time `when`.
  double stall_stretch(int rank, double when) const;
  void check_quiescent();

  Machine machine_;
  CostModel model_;
  int threads_ = 1;

  std::vector<double> clocks_;
  std::vector<double> nic_free_;  // per node: time the NIC becomes free
  // Per node: time the receive side of the NIC becomes free (endpoint
  // congestion; only charged when CostParams::use_ejection_cap is set).
  std::vector<double> eject_free_;
  // Shared switch up/down link queues (fat-tree core): one free-time per
  // link, all tiers flattened with link_tier_off_ as the per-tier base.
  // Sized only when CostParams::use_link_cap is on and the machine has
  // link tiers; charged exclusively in the single-threaded commit step.
  std::vector<double> link_up_free_;
  std::vector<double> link_down_free_;
  std::vector<int> link_tier_off_;
  std::vector<double> link_rate_eff_;  // per tier: effective bytes/s
  std::vector<RankStats> stats_;
  std::vector<RankState> rank_;

  /// Coroutines runnable in the next phase (filled by the commit step in
  /// deterministic delivery order).
  std::vector<std::coroutine_handle<>> ready_;

  std::shared_ptr<const CommData> world_data_;
  util::Mutex comm_mu_;
  std::uint32_t next_ctx_id_ GUARDED_BY(comm_mu_) = 1;
  // Never iterated: keyed get-or-create only, so its nondeterministic
  // bucket order can never leak into the schedule.
  // lint:allow(unordered-container)
  std::unordered_map<std::uint64_t, std::shared_ptr<const CommData>>
      comm_cache_ GUARDED_BY(comm_mu_);

  // sync_reset generation state (commit-side; see sync_reset)
  int sync_arrivals_ = 0;

  // Fault injection (see fault.hpp).  The plan is immutable while running;
  // the booleans cache which fault classes have any effective event, so
  // the fault-free hot path stays branch-only (byte-inert contract).
  FaultPlan faults_;
  bool fault_msgs_ = false;      // any msg_drop / msg_dup with rate > 0
  bool fault_stalls_ = false;    // any compute_stall with severity < 1
  bool fault_brownout_ = false;  // any link_brownout with severity < 1
  bool fault_nic_ = false;       // any nic_slowdown with severity < 1
  /// Per-channel sequence + delivery accounting; written only in the
  /// commit step, only while fault_msgs_ (steady workloads on persistent
  /// channels stop growing it after the first iteration).
  util::FlatMap<ChannelKey, ChanFaultCounts> fault_chan_;

  bool running_ = false;
};

// ---- inline bits ----------------------------------------------------

inline double Context::now() const { return eng_->clock(rank_); }
inline void Context::compute(double seconds) {
  eng_->add_compute(rank_, seconds);
}

/// Awaiter for completing a single request.
struct WaitAwaiter {
  Context& ctx;
  Request& req;
  bool await_ready() const {
    if (!req.started()) throw SimError("wait on inactive request");
    if (req.is_send()) return true;
    return ctx.engine().has_message(req.key());
  }
  void await_suspend(std::coroutine_handle<> h) const {
    ctx.engine().park(req.key(), h);
  }
  void await_resume() const {
    if (req.is_send()) {
      req.started_ = false;
      return;
    }
    ctx.engine().complete_recv(req);
  }
};

inline auto Context::wait(Request& req) { return WaitAwaiter{*this, req}; }

/// Awaiter for a receive-with-timeout (Context::wait_until).  Resumes with
/// true when the message arrived, false when the deadline fired first.
struct TimedWaitAwaiter {
  Context& ctx;
  Request& req;
  double deadline;
  bool await_ready() const {
    if (!req.started()) throw SimError("wait_until on inactive request");
    if (req.is_send())
      throw SimError("wait_until: send requests complete locally; "
                     "timeouts apply to receives only");
    return ctx.engine().has_message(req.key());
  }
  void await_suspend(std::coroutine_handle<> h) const {
    ctx.engine().park_until(req.key(), h, deadline);
  }
  bool await_resume() const { return ctx.engine().finish_timed_wait(req); }
};

inline auto Context::wait_until(Request& req, double deadline) {
  return TimedWaitAwaiter{*this, req, deadline};
}

}  // namespace simmpi
