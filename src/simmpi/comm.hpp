#pragma once
/// \file comm.hpp
/// \brief Communicators, channels and (persistent) point-to-point requests.
///
/// The API deliberately mirrors MPI semantics (LLNL MPI tutorial / MPI 4.0):
/// nonblocking `isend`/`irecv`, persistent `send_init`/`recv_init` +
/// `start`/`wait`, FIFO matching per (communicator, source, destination,
/// tag) channel.  Wildcards (`MPI_ANY_SOURCE`/`MPI_ANY_TAG`) are not
/// supported — the neighborhood collective implementations never need them.

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "simmpi/types.hpp"
#include "util/arena.hpp"

namespace simmpi {

class Engine;
class Context;

/// Identifies one ordered message channel.
struct ChannelKey {
  std::uint32_t ctx = 0;  ///< communicator context id
  std::int32_t src = -1;  ///< global source rank
  std::int32_t dst = -1;  ///< global destination rank
  std::int32_t tag = -1;
  bool operator==(const ChannelKey&) const = default;
  /// Total order for diagnostics and containers (the order itself carries
  /// no meaning; only identity does).
  auto operator<=>(const ChannelKey&) const = default;
};

/// A message in flight: a view of payload bytes in the *sender's* rank
/// arena (see Engine::RankState), plus the modeled arrival time.  The
/// bytes stay valid until the receive completes and releases `chunk` back
/// to the arena (zero-size messages carry no bytes and no chunk).
struct Message {
  const std::byte* data = nullptr;
  std::size_t size = 0;
  util::Arena::Chunk* chunk = nullptr;
  double arrival = 0.0;
};

/// Shared, immutable membership data of a communicator.
struct CommData {
  std::uint32_t ctx_id = 0;
  std::vector<int> members;  ///< global rank of each local rank
};

/// Lightweight per-rank communicator handle (cheap to copy).
///
/// A `Comm` combines shared membership data with the calling rank's local
/// rank.  All peer arguments of its methods are *local* ranks within the
/// communicator, as in MPI.
class Comm {
 public:
  Comm() = default;
  Comm(Engine* eng, std::shared_ptr<const CommData> data, int local_rank)
      : eng_(eng), data_(std::move(data)), rank_(local_rank) {}

  bool valid() const { return data_ != nullptr; }
  int rank() const { return rank_; }
  int size() const { return static_cast<int>(data_->members.size()); }
  std::uint32_t id() const { return data_->ctx_id; }
  /// Translate a local rank to the global (world) rank.
  int global(int local) const { return data_->members[local]; }
  std::span<const int> members() const { return data_->members; }
  Engine& engine() const { return *eng_; }

  /// Locality tier between this rank and local rank `peer`.
  Locality locality_of(int peer) const;

 private:
  Engine* eng_ = nullptr;
  std::shared_ptr<const CommData> data_{};
  int rank_ = -1;
};

/// A point-to-point request (persistent or one-shot).
///
/// Lifecycle mirrors MPI persistent requests: build with `Request::send` /
/// `Request::recv` (equivalents of `MPI_Send_init` / `MPI_Recv_init`),
/// then repeatedly `start()` and `co_await ctx.wait(req)`.
/// The buffer span must stay valid for the lifetime of the request.
class Request {
 public:
  Request() = default;

  /// Persistent-send request to local rank `dst` with message tag `tag`.
  static Request send(const Comm& comm, std::span<const std::byte> buf,
                      int dst, int tag);
  /// Persistent-receive request from local rank `src` with tag `tag`.
  static Request recv(const Comm& comm, std::span<std::byte> buf, int src,
                      int tag);
  /// Receive request with no pre-sized buffer: the payload is captured into
  /// an internal vector, retrievable with `take_payload()`.  Used where the
  /// receiver cannot know the message size up front.
  static Request recv_dyn(const Comm& comm, int src, int tag);

  /// Begin the communication: posts the message (send) or arms the
  /// matching slot (recv).  Equivalent of `MPI_Start`.
  void start(Context& ctx);

  bool is_send() const { return is_send_; }
  bool started() const { return started_; }
  /// Mark a send request as *control* traffic (protocol acknowledgements,
  /// not payload).  With `FaultPlan::protect_control` (the default),
  /// control messages are exempt from drop/duplication so reliable
  /// delivery terminates.  No effect on receives or on fault-free runs.
  void set_control(bool c) { control_ = c; }
  bool is_control() const { return control_; }
  const Comm& comm() const { return comm_; }
  int peer() const { return peer_; }
  int tag() const { return tag_; }
  /// Channel key this request matches on.
  ChannelKey key() const;
  /// Bytes actually received by the last completed receive.
  std::size_t received_bytes() const { return received_; }
  /// Move out the payload captured by a completed `recv_dyn` request.
  std::vector<std::byte> take_payload() { return std::move(payload_); }

 private:
  friend class Engine;
  friend class Context;
  friend struct WaitAwaiter;
  Comm comm_{};
  std::span<const std::byte> sbuf_{};
  std::span<std::byte> rbuf_{};
  std::vector<std::byte> payload_{};
  int peer_ = -1;
  int tag_ = -1;
  bool is_send_ = false;
  bool dyn_ = false;
  bool started_ = false;
  bool control_ = false;
  std::size_t received_ = 0;
};

}  // namespace simmpi
