#pragma once
/// \file cost_model.hpp
/// \brief Locality-aware communication cost model for the simulator.
///
/// The model follows the lineage of models cited by the paper:
///  * the *postal* model (alpha + beta * bytes) per message,
///  * the three-regime extension (short / eager / rendezvous protocols have
///    distinct latency and bandwidth terms),
///  * *locality awareness*: each tier (self / region / node / network) has
///    its own regime parameters (Bienz, Gropp, Olson, EuroMPI'18),
///  * the *max-rate* injection limit: each node's NIC injects at a finite
///    rate, so many simultaneous senders on one node queue behind each other
///    (Gropp, Olson, Samfass, EuroMPI'16),
///  * a receiver-side *queue search* term proportional to the number of
///    pending unexpected messages, which dominates the coarse AMG levels.
///
/// Default parameters are calibrated to published Lassen (IBM Power9 +
/// EDR InfiniBand, Spectrum MPI) measurements: intra-CPU messages are
/// cheapest; inter-CPU (cross-NUMA) messages are *more* expensive per byte
/// than the network for large sizes; network messages pay the highest
/// latency.  Absolute values are order-of-magnitude; the reproduction
/// compares shapes, not machine-exact seconds.

#include <cstddef>
#include <vector>

#include "simmpi/types.hpp"

namespace simmpi {

/// Postal parameters of one protocol regime in one locality tier.
struct Regime {
  double alpha = 0.0;  ///< latency, seconds
  double beta = 0.0;   ///< inverse bandwidth, seconds per byte
};

/// Parameters for a single locality tier with three protocol regimes.
struct TierParams {
  Regime short_;           ///< very small messages (fits in packet)
  Regime eager;            ///< eager protocol
  Regime rend;             ///< rendezvous protocol (extra handshake latency)
  std::size_t short_max = 512;   ///< largest "short" payload, bytes
  std::size_t eager_max = 8192;  ///< largest eager payload, bytes

  /// \return regime applicable to a payload of `bytes`.
  const Regime& regime(std::size_t bytes) const {
    if (bytes <= short_max) return short_;
    if (bytes <= eager_max) return eager;
    return rend;
  }
};

/// Full cost-model parameter set.
struct CostParams {
  TierParams tier[kNumLocalities];

  double send_overhead = 2.0e-7;  ///< CPU time to post one send, seconds
  double recv_overhead = 2.0e-7;  ///< CPU time to complete one receive
  double queue_search = 3.0e-8;   ///< per pending message scanned at match

  double nic_rate = 12.5e9;       ///< per-node injection bandwidth, bytes/s
  bool use_injection_cap = true;  ///< model the NIC as a queued resource

  /// Per-node *ejection* (receive-side) bandwidth, bytes/s.  With
  /// `use_ejection_cap` set, every network message bound for a node queues
  /// behind the node's NIC on arrival, so N-to-1 incast serializes at the
  /// destination even when the senders sit on N distinct nodes.  Off by
  /// default: symmetric workloads bottleneck identically at either end, so
  /// the paper-figure sweeps are unchanged unless a scenario opts in.
  double nic_eject_rate = 12.5e9;
  bool use_ejection_cap = false;  ///< model receiver-side endpoint congestion

  /// Shared switch-link contention (fat-tree core; the tree shape lives
  /// in MachineConfig::switch_levels).  `link_rate` is the full-bisection
  /// bandwidth of one up/down link; tier i — the links between level-i
  /// switches and their parents — serves at link_rate /
  /// switch_levels[i].taper, or at link_rates[i] verbatim when that
  /// per-tier override is non-empty (then it must carry exactly one entry
  /// per link tier).  Every message additionally occupies each crossed
  /// link for `link_msg_bytes` of framing (packet headers, rendezvous
  /// control), so many small messages waste a tapered link faster than
  /// few aggregated ones.  Off by default: flat-core sweeps are unchanged
  /// unless a scenario opts in.
  double link_rate = 12.5e9;       ///< up/down link bandwidth, bytes/s
  std::vector<double> link_rates;  ///< optional per-tier override, bytes/s
  double link_msg_bytes = 128.0;   ///< per-message framing charged per link
  bool use_link_cap = false;       ///< model shared up/down links as queues

  /// \return Lassen-like defaults (see file comment).
  static CostParams lassen();
  /// \return a flat model where every tier costs the same (for ablation:
  /// shows that locality-aware aggregation only pays off when tiers differ).
  static CostParams flat(double alpha = 2.0e-6, double beta = 8.0e-11);
};

/// Evaluates message costs.  Stateless; the engine owns the queued NIC state.
class CostModel {
 public:
  explicit CostModel(CostParams p) : p_(p) {}

  const CostParams& params() const { return p_; }

  /// Wire time (latency + serialization) for one message.
  double transfer_time(Locality loc, std::size_t bytes) const {
    const Regime& r = p_.tier[static_cast<int>(loc)].regime(bytes);
    return r.alpha + static_cast<double>(bytes) * r.beta;
  }

  /// Time the message occupies the sending node's NIC (network tier only).
  double nic_occupancy(std::size_t bytes) const {
    return p_.use_injection_cap ? static_cast<double>(bytes) / p_.nic_rate
                                : 0.0;
  }

  /// Time the message occupies the *receiving* node's NIC (network tier
  /// only).  Zero unless endpoint congestion is enabled.
  double eject_occupancy(std::size_t bytes) const {
    return p_.use_ejection_cap ? static_cast<double>(bytes) / p_.nic_eject_rate
                               : 0.0;
  }

  /// Effective bandwidth of one tier-`tier` up/down link whose level
  /// taper is `taper`, bytes/s (see CostParams::link_rate).
  double link_rate(int tier, double taper) const {
    if (!p_.link_rates.empty())
      return p_.link_rates[static_cast<std::size_t>(tier)];
    return p_.link_rate / taper;
  }

  /// Time one message occupies one crossed up/down link serving at
  /// `rate` (store-and-forward, framing included).
  double link_occupancy(std::size_t bytes, double rate) const {
    return (static_cast<double>(bytes) + p_.link_msg_bytes) / rate;
  }

  double send_overhead() const { return p_.send_overhead; }
  double recv_overhead(int pending_msgs) const {
    return p_.recv_overhead + p_.queue_search * pending_msgs;
  }

 private:
  CostParams p_;
};

}  // namespace simmpi
