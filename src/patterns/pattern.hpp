#pragma once
/// \file pattern.hpp
/// \brief Deterministic, seedable communication-workload generators.
///
/// The paper's sweeps exercise exactly one traffic shape — AMG halo
/// exchanges.  This layer turns the repo into a general communication
/// laboratory: a registry of `PatternSpec` generators (stencil halos,
/// N-to-1 incast, checkpoint-style bursty I/O, random sparse graphs with
/// locality skew, overlap windows) each emitting the same adjacency +
/// counts shapes the `mpix` persistent collectives consume, so every
/// generated pattern runs through every existing method unchanged.
///
/// Everything here is a pure function of (machine shape, PatternParams):
/// no global RNG, no host-dependent state.  Payload values are derived
/// from per-value global indices (`gid`s), so the dedup method's
/// precondition — equal index implies equal value — holds by construction
/// and received buffers can be verified byte-for-byte against a local
/// recomputation on any rank.  The determinism contract extends to the
/// generators: a workload is bit-identical for every sim/build width.

#include <cstddef>
#include <cstdint>
#include <numeric>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "mpix/neighbor.hpp"
#include "simmpi/machine.hpp"

namespace patterns {

/// One rank's side of a generated workload: ascending neighbor lists plus
/// per-neighbor value counts and the usual exclusive-prefix displacements,
/// exactly the shape `mpix::AlltoallvArgs` and
/// `simmpi::dist_graph_create_adjacent` consume.
struct RankExchange {
  std::vector<int> destinations;
  std::vector<int> sendcounts;
  std::vector<int> sdispls;
  std::vector<int> sources;
  std::vector<int> recvcounts;
  std::vector<int> rdispls;

  long send_values() const {
    return std::accumulate(sendcounts.begin(), sendcounts.end(), 0L);
  }
  long recv_values() const {
    return std::accumulate(recvcounts.begin(), recvcounts.end(), 0L);
  }
};

/// Generator knobs.  Each pattern reads the subset that applies to it and
/// ignores the rest; defaults give a small but non-trivial workload on any
/// machine.
struct PatternParams {
  int values = 8;        ///< base values per edge (pattern-scaled)
  unsigned seed = 1;     ///< decorrelates random patterns and payloads
  int fan_in = 0;        ///< incast: senders per sink; 0 = every other rank
  int sinks = 1;         ///< incast sinks / bursty-I/O aggregator count
  int degree = 4;        ///< random_sparse: destinations per rank
  double locality_skew = 0.5;  ///< random_sparse: P(dest in own region)
  int burst = 8;         ///< bursty_io: per-rank burst multiplier
  double overlap_seconds = 0.0;  ///< simulated compute inside the window;
                                 ///< 0 = the pattern's own default
};

/// A fully materialized workload: per-rank exchanges plus the resolved
/// overlap-window length.  Generation is global (every rank's view in one
/// structure) so tests and the harness can check cross-rank consistency
/// and replay the same workload at several simulation widths.
struct Workload {
  std::string pattern;
  PatternParams params;
  int nranks = 0;
  double overlap_seconds = 0.0;  ///< simulated compute between start and wait
  std::vector<RankExchange> ranks;

  /// Content fingerprint (canonical FNV-1a over name, seed, adjacency and
  /// counts) for plan-cache keys and cross-width identity checks.
  std::uint64_t fingerprint() const;
};

/// A pattern generator: pure function of machine shape and params.
using Generator = Workload (*)(const simmpi::Machine&, const PatternParams&);

/// Registry entry.
struct PatternSpec {
  const char* name;
  const char* description;
  Generator make;
};

/// All registered patterns, in a fixed deterministic order.
std::span<const PatternSpec> registry();

/// Lookup by name; nullptr when unknown.
const PatternSpec* find(std::string_view name);

/// Generate by name; throws simmpi::SimError on unknown names.
Workload generate(std::string_view name, const simmpi::Machine& machine,
                  const PatternParams& params = {});

// ---- payload construction and verification --------------------------

/// Global value index of the j-th value of edge (src -> dst).  A pure
/// function of the edge and the seed, so sender and receiver compute
/// matching `send_idx`/`recv_idx` annotations without communicating.
/// Indices are drawn from a small per-source pool, so a source sending to
/// several destinations repeats indices — exercising the dedup method.
mpix::gidx value_gid(int src, int dst, int j, unsigned seed);

/// The i-th payload byte of the value with global index `gid`.  Values
/// with equal gids hold equal bytes (the dedup precondition).
std::byte payload_byte(mpix::gidx gid, std::size_t i);

/// One rank's owning buffers for a workload: payload bytes plus the gid
/// annotations, ready to bind through `args_view`.
struct RankBuffers {
  std::vector<std::byte> sendbuf;
  std::vector<std::byte> recvbuf;
  std::vector<mpix::gidx> send_gids;
  std::vector<mpix::gidx> recv_gids;
};

/// Build rank `rank`'s buffers: sendbuf filled from the gid scheme,
/// recvbuf sized and cleared to the sentinel.
RankBuffers make_buffers(const Workload& wl, int rank,
                         std::size_t element_size = sizeof(double));

/// Reset recvbuf to the sentinel between iterations.
void clear_recv(RankBuffers& buf);

/// Byte view over `buf` for the sparse neighbor path (counts indexed by
/// neighbor position).  `buf` must outlive the returned args.
mpix::AlltoallvArgs args_view(const Workload& wl, int rank, RankBuffers& buf,
                              std::size_t element_size = sizeof(double));

/// Byte view for the dense `alltoallv_init` path: counts/displacements
/// carry one entry per communicator rank (zero for non-neighbors) but bind
/// the same compact buffers — neighbor lists are ascending, so the layouts
/// coincide.
mpix::AlltoallvArgs dense_args_view(const Workload& wl, int rank,
                                    RankBuffers& buf,
                                    std::size_t element_size = sizeof(double));

/// Number of mismatched bytes between recvbuf and the locally recomputed
/// expectation (0 = payload delivered correctly).
long verify_recv(const Workload& wl, int rank, const RankBuffers& buf,
                 std::size_t element_size = sizeof(double));

}  // namespace patterns
