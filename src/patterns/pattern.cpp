#include "patterns/pattern.hpp"

#include <algorithm>
#include <array>

#include "simmpi/types.hpp"
#include "util/hash.hpp"

namespace patterns {

namespace {

/// A directed traffic demand before per-rank assembly.
struct Edge {
  int src;
  int dst;
  int count;  ///< values
};

/// SplitMix64 finalizer: the repo's stock bit mixer (same recipe as the
/// engine's channel hash), used for both payload bytes and random-pattern
/// draws.  Stateless — determinism is inherited, not arranged.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Counter-mode RNG over (seed, stream, counter): every draw is addressed,
/// so generation order cannot leak into the result.
std::uint64_t draw(unsigned seed, std::uint64_t stream, std::uint64_t ctr) {
  return mix64((static_cast<std::uint64_t>(seed) << 32) ^ mix64(stream) ^
               (ctr * 0xD1342543DE82EF95ull));
}

/// Assemble the global edge list into per-rank exchanges: sort by
/// (src, dst), merge duplicate directed pairs (the locality methods reject
/// duplicate adjacency entries), drop empties, then two passes build the
/// ascending destination and source lists with prefix displacements.
Workload finalize(const char* name, const simmpi::Machine& machine,
                  const PatternParams& params, std::vector<Edge> edges,
                  double default_overlap = 0.0) {
  const int nranks = machine.num_ranks();
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    return a.src != b.src ? a.src < b.src : a.dst < b.dst;
  });
  std::vector<Edge> merged;
  merged.reserve(edges.size());
  for (const Edge& e : edges) {
    if (e.count <= 0) continue;
    if (!merged.empty() && merged.back().src == e.src &&
        merged.back().dst == e.dst) {
      merged.back().count += e.count;
    } else {
      merged.push_back(e);
    }
  }

  Workload wl;
  wl.pattern = name;
  wl.params = params;
  wl.nranks = nranks;
  wl.overlap_seconds = params.overlap_seconds > 0.0 ? params.overlap_seconds
                                                    : default_overlap;
  wl.ranks.resize(nranks);
  for (const Edge& e : merged) {
    RankExchange& s = wl.ranks[e.src];
    s.destinations.push_back(e.dst);
    s.sdispls.push_back(static_cast<int>(
        std::accumulate(s.sendcounts.begin(), s.sendcounts.end(), 0)));
    s.sendcounts.push_back(e.count);
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const Edge& a, const Edge& b) { return a.dst < b.dst; });
  for (const Edge& e : merged) {
    RankExchange& r = wl.ranks[e.dst];
    r.sources.push_back(e.src);
    r.rdispls.push_back(static_cast<int>(
        std::accumulate(r.recvcounts.begin(), r.recvcounts.end(), 0)));
    r.recvcounts.push_back(e.count);
  }
  return wl;
}

/// Most-square factorization n = a * b with a <= b.
std::pair<int, int> factor2(int n) {
  int a = 1;
  for (int d = 1; static_cast<long long>(d) * d <= n; ++d)
    if (n % d == 0) a = d;
  return {a, n / a};
}

/// Roughly cubic factorization n = a * b * c with a <= b <= c.
std::array<int, 3> factor3(int n) {
  int a = 1;
  for (int d = 1; static_cast<long long>(d) * d * d <= n; ++d)
    if (n % d == 0) a = d;
  auto [b, c] = factor2(n / a);
  return {a, b, c};
}

int wrap(int x, int n) { return ((x % n) + n) % n; }

/// Periodic 2D stencil halo on the most-square rank grid.  Face neighbors
/// carry `values` values; with `diagonals`, corner neighbors carry
/// max(1, values/4) — matching the surface-to-edge ratio of a real halo.
Workload stencil2d(const char* name, const simmpi::Machine& machine,
                   const PatternParams& p, bool diagonals) {
  const int n = machine.num_ranks();
  const auto [nx, ny] = factor2(n);
  const int face = std::max(1, p.values);
  const int corner = std::max(1, p.values / 4);
  std::vector<Edge> edges;
  for (int r = 0; r < n; ++r) {
    const int x = r % nx, y = r / nx;
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dx = -1; dx <= 1; ++dx) {
        if (dx == 0 && dy == 0) continue;
        const bool diag = dx != 0 && dy != 0;
        if (diag && !diagonals) continue;
        const int dst = wrap(x + dx, nx) + nx * wrap(y + dy, ny);
        if (dst == r) continue;  // degenerate dimension wrapped onto self
        edges.push_back({r, dst, diag ? corner : face});
      }
    }
  }
  return finalize(name, machine, p, std::move(edges));
}

/// Periodic 3D stencil halo.  Counts scale with the touching surface:
/// faces `values`, edges values/4, corners values/8 (all at least 1).
Workload stencil3d(const char* name, const simmpi::Machine& machine,
                   const PatternParams& p, bool full27) {
  const int n = machine.num_ranks();
  const auto [nx, ny, nz] = factor3(n);
  const int face = std::max(1, p.values);
  const int edge_c = std::max(1, p.values / 4);
  const int corner = std::max(1, p.values / 8);
  std::vector<Edge> edges;
  for (int r = 0; r < n; ++r) {
    const int x = r % nx, y = (r / nx) % ny, z = r / (nx * ny);
    for (int dz = -1; dz <= 1; ++dz) {
      for (int dy = -1; dy <= 1; ++dy) {
        for (int dx = -1; dx <= 1; ++dx) {
          const int nonzero = (dx != 0) + (dy != 0) + (dz != 0);
          if (nonzero == 0) continue;
          if (!full27 && nonzero > 1) continue;
          const int dst = wrap(x + dx, nx) + nx * wrap(y + dy, ny) +
                          nx * ny * wrap(z + dz, nz);
          if (dst == r) continue;
          const int cnt = nonzero == 1 ? face : (nonzero == 2 ? edge_c : corner);
          edges.push_back({r, dst, cnt});
        }
      }
    }
  }
  return finalize(name, machine, p, std::move(edges));
}

Workload make_stencil2d5(const simmpi::Machine& m, const PatternParams& p) {
  return stencil2d("stencil2d5", m, p, false);
}
Workload make_stencil2d9(const simmpi::Machine& m, const PatternParams& p) {
  return stencil2d("stencil2d9", m, p, true);
}
Workload make_stencil3d7(const simmpi::Machine& m, const PatternParams& p) {
  return stencil3d("stencil3d7", m, p, false);
}
Workload make_stencil3d27(const simmpi::Machine& m, const PatternParams& p) {
  return stencil3d("stencil3d27", m, p, true);
}

/// The sink ranks of the incast / bursty-I/O patterns: `sinks` ranks
/// spread evenly across the machine (so each lands on a different node
/// when there are enough nodes).
std::vector<int> spread_ranks(int nranks, int sinks) {
  const int s = std::clamp(sinks, 1, nranks);
  std::vector<int> out(s);
  for (int i = 0; i < s; ++i) out[i] = i * (nranks / s);
  return out;
}

/// N-to-1 incast: `fan_in` senders per sink (0 = every other rank), walked
/// cyclically from the sink so growing the fan-in recruits senders from
/// ever more remote regions and nodes.  The workload whose completion time
/// the endpoint-congestion term must order by fan-in.
Workload make_incast(const simmpi::Machine& m, const PatternParams& p) {
  const int n = m.num_ranks();
  const std::vector<int> sinks = spread_ranks(n, p.sinks);
  const int want = p.fan_in <= 0 ? n - 1 : std::min(p.fan_in, n - 1);
  std::vector<Edge> edges;
  for (const int sink : sinks) {
    for (int j = 1, taken = 0; taken < want && j < n; ++j) {
      const int src = (sink + j) % n;
      edges.push_back({src, sink, std::max(1, p.values)});
      ++taken;
    }
  }
  return finalize("incast", m, p, std::move(edges));
}

/// Checkpoint-style bursty writes: every rank flushes values*burst values
/// to its assigned I/O aggregator (`sinks` aggregators, round-robin
/// assignment).  Aggregators write to themselves — a self-tier memcpy.
Workload make_bursty_io(const simmpi::Machine& m, const PatternParams& p) {
  const int n = m.num_ranks();
  const std::vector<int> aggs = spread_ranks(n, p.sinks);
  const long burst = static_cast<long>(std::max(1, p.values)) *
                     std::max(1, p.burst);
  const int cnt = static_cast<int>(std::min<long>(burst, 1 << 20));
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r)
    edges.push_back({r, aggs[r % static_cast<int>(aggs.size())], cnt});
  return finalize("bursty_io", m, p, std::move(edges));
}

/// Random sparse graph with locality skew: each rank picks `degree`
/// distinct destinations, each in its own region with probability
/// `locality_skew`, with ragged per-edge counts.  Counter-mode draws keyed
/// by (seed, src) make the graph a pure function of the params.
Workload make_random_sparse(const simmpi::Machine& m, const PatternParams& p) {
  const int n = m.num_ranks();
  const int rpr = m.ranks_per_region();
  const int want = std::clamp(p.degree, 0, n - 1);
  const auto skew =
      static_cast<std::uint64_t>(std::clamp(p.locality_skew, 0.0, 1.0) * 4096);
  std::vector<Edge> edges;
  std::vector<int> picked;
  for (int src = 0; src < n; ++src) {
    picked.clear();
    const int reg_base = (src / rpr) * rpr;
    const int reg_size = std::min(rpr, n - reg_base);
    std::uint64_t ctr = 0;
    for (int t = 0; t < want && ctr < 8u * want + 64u; ) {
      const std::uint64_t u = draw(p.seed, src, ctr++);
      int dst;
      if ((u & 4095) < skew && reg_size > 1) {
        dst = reg_base + static_cast<int>((u >> 12) % reg_size);
      } else {
        dst = static_cast<int>((u >> 12) % n);
      }
      if (dst == src ||
          std::find(picked.begin(), picked.end(), dst) != picked.end())
        continue;
      picked.push_back(dst);
      const int cnt =
          1 + static_cast<int>(draw(p.seed, src, 1000 + ctr) %
                               (2u * std::max(1, p.values)));
      edges.push_back({src, dst, cnt});
      ++t;
    }
  }
  return finalize("random_sparse", m, p, std::move(edges));
}

/// Pairwise ring shifted by one region: rank r exchanges with
/// r +- ranks_per_region, so every message crosses a region (and usually a
/// node) boundary.  Default overlap window of 20 us of simulated compute —
/// the mpi_sendrecv_test-style pattern for overlapped vs. blocking runs.
Workload make_ring_overlap(const simmpi::Machine& m, const PatternParams& p) {
  const int n = m.num_ranks();
  const int stride = m.ranks_per_region() % n;
  std::vector<Edge> edges;
  if (stride != 0) {
    for (int r = 0; r < n; ++r)
      edges.push_back({r, (r + stride) % n, std::max(1, p.values)});
  }
  return finalize("ring_overlap", m, p, std::move(edges), 2.0e-5);
}

constexpr PatternSpec kRegistry[] = {
    {"stencil2d5", "periodic 2D 5-point stencil halo", make_stencil2d5},
    {"stencil2d9", "periodic 2D 9-point stencil halo (diagonals)",
     make_stencil2d9},
    {"stencil3d7", "periodic 3D 7-point stencil halo", make_stencil3d7},
    {"stencil3d27", "periodic 3D 27-point stencil halo (edges+corners)",
     make_stencil3d27},
    {"incast", "N-to-1 incast / all-to-many with configurable fan-in",
     make_incast},
    {"bursty_io", "checkpoint-style bursty writes to I/O aggregator ranks",
     make_bursty_io},
    {"random_sparse", "random sparse graph with degree and locality skew",
     make_random_sparse},
    {"ring_overlap", "region-crossing pairwise ring with an overlap window",
     make_ring_overlap},
};

void hash_int(std::uint64_t& h, long long v) {
  unsigned char b[8];
  for (int i = 0; i < 8; ++i)
    b[i] = static_cast<unsigned char>((static_cast<unsigned long long>(v) >>
                                       (8 * i)) & 0xFF);
  h = util::fnv1a(b, 8, h);
}

}  // namespace

std::span<const PatternSpec> registry() { return kRegistry; }

const PatternSpec* find(std::string_view name) {
  for (const PatternSpec& s : kRegistry)
    if (name == s.name) return &s;
  return nullptr;
}

Workload generate(std::string_view name, const simmpi::Machine& machine,
                  const PatternParams& params) {
  const PatternSpec* spec = find(name);
  if (spec == nullptr)
    throw simmpi::SimError("patterns::generate: unknown pattern '" +
                           std::string(name) + "'");
  return spec->make(machine, params);
}

std::uint64_t Workload::fingerprint() const {
  std::uint64_t h = util::fnv1a(
      reinterpret_cast<const unsigned char*>(pattern.data()), pattern.size());
  hash_int(h, params.seed);
  hash_int(h, nranks);
  for (const RankExchange& r : ranks) {
    hash_int(h, static_cast<long long>(r.destinations.size()));
    for (std::size_t i = 0; i < r.destinations.size(); ++i) {
      hash_int(h, r.destinations[i]);
      hash_int(h, r.sendcounts[i]);
    }
  }
  return h;
}

mpix::gidx value_gid(int src, int dst, int j, unsigned seed) {
  // Indices live in per-source blocks of kStride and are drawn from a
  // per-source pool of kPool < kStride slots, so distinct sources never
  // collide while one source's segments to different destinations do —
  // which is what gives the dedup method something to remove.
  constexpr mpix::gidx kStride = 1024;
  constexpr std::uint64_t kPool = 512;
  const std::uint64_t off = draw(seed, (static_cast<std::uint64_t>(src) << 21) ^
                                           static_cast<std::uint64_t>(dst),
                                 0) +
                            static_cast<std::uint64_t>(j);
  return static_cast<mpix::gidx>(src) * kStride +
         static_cast<mpix::gidx>(off % kPool);
}

std::byte payload_byte(mpix::gidx gid, std::size_t i) {
  return static_cast<std::byte>(
      mix64(static_cast<std::uint64_t>(gid) * 0x100000001B3ull + i) & 0xFF);
}

RankBuffers make_buffers(const Workload& wl, int rank,
                         std::size_t element_size) {
  const RankExchange& ex = wl.ranks[rank];
  RankBuffers buf;
  buf.send_gids.reserve(static_cast<std::size_t>(ex.send_values()));
  for (std::size_t d = 0; d < ex.destinations.size(); ++d)
    for (int j = 0; j < ex.sendcounts[d]; ++j)
      buf.send_gids.push_back(
          value_gid(rank, ex.destinations[d], j, wl.params.seed));
  buf.recv_gids.reserve(static_cast<std::size_t>(ex.recv_values()));
  for (std::size_t s = 0; s < ex.sources.size(); ++s)
    for (int j = 0; j < ex.recvcounts[s]; ++j)
      buf.recv_gids.push_back(value_gid(ex.sources[s], rank, j, wl.params.seed));

  buf.sendbuf.resize(buf.send_gids.size() * element_size);
  for (std::size_t k = 0; k < buf.send_gids.size(); ++k)
    for (std::size_t i = 0; i < element_size; ++i)
      buf.sendbuf[k * element_size + i] = payload_byte(buf.send_gids[k], i);
  buf.recvbuf.resize(buf.recv_gids.size() * element_size);
  clear_recv(buf);
  return buf;
}

void clear_recv(RankBuffers& buf) {
  std::fill(buf.recvbuf.begin(), buf.recvbuf.end(), std::byte{0xEE});
}

mpix::AlltoallvArgs args_view(const Workload& wl, int rank, RankBuffers& buf,
                              std::size_t element_size) {
  const RankExchange& ex = wl.ranks[rank];
  return mpix::AlltoallvArgs{.sendbuf = buf.sendbuf,
                             .sendcounts = ex.sendcounts,
                             .sdispls = ex.sdispls,
                             .recvbuf = buf.recvbuf,
                             .recvcounts = ex.recvcounts,
                             .rdispls = ex.rdispls,
                             .element_size = element_size,
                             .send_idx = buf.send_gids,
                             .recv_idx = buf.recv_gids};
}

mpix::AlltoallvArgs dense_args_view(const Workload& wl, int rank,
                                    RankBuffers& buf,
                                    std::size_t element_size) {
  const RankExchange& ex = wl.ranks[rank];
  // Expand the compact neighbor counts to one entry per communicator rank.
  // Neighbor lists ascend, so the compact buffer layout *is* the expanded
  // layout — the displacements just repeat across non-neighbors.
  std::vector<int> sendcounts(wl.nranks, 0), sdispls(wl.nranks, 0);
  std::vector<int> recvcounts(wl.nranks, 0), rdispls(wl.nranks, 0);
  for (std::size_t d = 0; d < ex.destinations.size(); ++d)
    sendcounts[ex.destinations[d]] = ex.sendcounts[d];
  for (std::size_t s = 0; s < ex.sources.size(); ++s)
    recvcounts[ex.sources[s]] = ex.recvcounts[s];
  for (int r = 1; r < wl.nranks; ++r) {
    sdispls[r] = sdispls[r - 1] + sendcounts[r - 1];
    rdispls[r] = rdispls[r - 1] + recvcounts[r - 1];
  }
  return mpix::AlltoallvArgs{.sendbuf = buf.sendbuf,
                             .sendcounts = std::move(sendcounts),
                             .sdispls = std::move(sdispls),
                             .recvbuf = buf.recvbuf,
                             .recvcounts = std::move(recvcounts),
                             .rdispls = std::move(rdispls),
                             .element_size = element_size,
                             .send_idx = buf.send_gids,
                             .recv_idx = buf.recv_gids};
}

long verify_recv(const Workload& wl, int rank, const RankBuffers& buf,
                 std::size_t element_size) {
  (void)wl;
  (void)rank;
  long bad = 0;
  for (std::size_t k = 0; k < buf.recv_gids.size(); ++k)
    for (std::size_t i = 0; i < element_size; ++i)
      if (buf.recvbuf[k * element_size + i] !=
          payload_byte(buf.recv_gids[k], i))
        ++bad;
  return bad;
}

}  // namespace patterns
