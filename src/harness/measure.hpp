#pragma once
/// \file measure.hpp
/// \brief Experiment runner: reproduces the measurements behind Figures
/// 6-13 on the simulated machine.
///
/// Timing methodology (paper Section 4): the paper times 1000 Start/Wait
/// calls and averages, min over 3 runs, to suppress machine noise.  The
/// simulator is deterministic — for every `MeasureConfig::threads` width —
/// so a single simulated execution is exact; reported times are the
/// maximum rank-local elapsed virtual time.
///
/// Two caches amortize repeated runs: `MeasureConfig::plans` (locality
/// setup per halo pattern, see harness::PlanCache) and the process/disk
/// `paper_dist_hierarchy` memoization backed by harness::HierarchyCache,
/// which spares every bench binary after the first from re-running the
/// paper problem's coarsening.

#include <vector>

#include "amg/distribute.hpp"
#include "amg/hierarchy.hpp"
#include "harness/exchange.hpp"
#include "mpix/alltoall.hpp"
#include "patterns/pattern.hpp"
#include "simmpi/engine.hpp"

namespace harness {

/// Measurements of one protocol on one AMG level.
struct LevelMeasurement {
  int level = 0;
  long rows = 0;
  double init_seconds = 0.0;        ///< topology + collective init (max rank)
  double start_wait_seconds = 0.0;  ///< one Start+Wait (max rank)
  long max_local_msgs = 0;          ///< max per process (Figure 8)
  long max_global_msgs = 0;         ///< max per process (Figure 9)
  long max_global_msg_values = 0;   ///< max single message (Figure 10)
  long max_local_values = 0;        ///< max per-process local value total
  long max_global_values = 0;       ///< max per-process global value total
};

/// Configuration of a measurement run.
struct MeasureConfig {
  int ranks_per_region = 16;  ///< the paper's Lassen setting
  /// NUMA regions per node of the simulated machine.  1 (the default)
  /// keeps the paper's one-region-per-node layout and allows a single
  /// partially filled region; >1 requires nranks to be a multiple of
  /// regions_per_node * ranks_per_region.
  int regions_per_node = 1;
  /// Switch hierarchy of the simulated machine (fat-tree core),
  /// bottom-up; see simmpi::MachineConfig::switch_levels.  Empty (the
  /// default) keeps the flat core.  Pair with `cost.use_link_cap` to
  /// charge shared up/down links; the shape alone changes nothing.
  std::vector<simmpi::SwitchLevel> switch_levels;
  simmpi::CostParams cost = simmpi::CostParams::lassen();
  /// Scheduler width of the simulation engine (simmpi::Engine::Options
  /// ::threads: 0 = auto via COLLOM_SIM_THREADS / hardware concurrency).
  /// Any value produces the same measured virtual times.
  int threads = 0;
  /// Worker threads of hierarchy *construction* (amg::Options::threads:
  /// 0 = auto via COLLOM_BUILD_THREADS, else COLLOM_SIM_THREADS, else
  /// hardware).  The measure/solve runners never build hierarchies
  /// themselves — callers that do (e.g. benchfig::measure_all) forward
  /// this to paper_dist_hierarchy.  Wall-time-only: built hierarchies are
  /// bit-identical for every width, so measured results never depend on
  /// it.
  int build_threads = 0;
  simmpi::GraphAlgo graph_algo = simmpi::GraphAlgo::handshake;
  bool verify_payload = true;  ///< check delivered halos against truth
  bool lpt_balance = true;     ///< leader assignment (ablation knob)
  /// Optional locality-plan reuse (see harness::PlanCache): the runners
  /// key each level's exchanges by the global halo fingerprint, so a solve
  /// or measurement repeated on the same hierarchy re-binds cached plans
  /// instead of redoing the aggregation setup communication.
  PlanCache* plans = nullptr;
  /// Optional fault schedule attached to the engine before the run (see
  /// simmpi::FaultPlan).  nullptr — the default — keeps the engine's
  /// byte-inert fault-free hot path, so series without a plan are
  /// bit-identical to builds that predate fault injection.  The pattern
  /// runners' sync_reset brackets rewind rank clocks, so time windows in
  /// the plan apply within each measured window.
  const simmpi::FaultPlan* faults = nullptr;
  /// Reliable-delivery knobs forwarded to every collective the runners
  /// initialize (mpix::Options::reliability).  Off by default; required
  /// for completion when `faults` drops messages.
  mpix::Reliability reliability{};
};

/// Measure one protocol across every level of a distributed hierarchy.
/// Runs the full simulated machine; returns one entry per level.
std::vector<LevelMeasurement> measure_protocol(const amg::DistHierarchy& dh,
                                               Protocol protocol,
                                               const MeasureConfig& cfg = {});

/// Measurements of one dense alltoall method on one configuration
/// (uniform counts; aggregated over all ranks of the simulated machine).
struct DenseMeasurement {
  double init_seconds = 0.0;        ///< collective init (max rank)
  double start_wait_seconds = 0.0;  ///< one Start+Wait (max rank)
  long sum_local_msgs = 0;          ///< intra-region messages, all ranks
  long sum_global_msgs = 0;         ///< network message total, all ranks
  long sum_global_values = 0;       ///< network value total, all ranks
  long max_global_msgs = 0;         ///< max per rank
  long max_global_msg_values = 0;   ///< largest single network message
};

/// Run one uniform dense alltoall (`mpix::alltoall_init`) of `count`
/// values x `element_size` bytes per rank pair over the full simulated
/// machine, and collect timings plus sender-side message counters.  With
/// `cfg.verify_payload`, every delivered byte is checked against the
/// deterministic pattern.  `cfg.plans` caches node_aggregated / bruck
/// plans across calls keyed by (method, count, machine shape).
DenseMeasurement measure_dense_alltoall(int nranks, int count,
                                        std::size_t element_size,
                                        mpix::AlltoallMethod method,
                                        const MeasureConfig& cfg = {});

/// Measurements of one generated workload (patterns layer) under one
/// method.  Three simulated windows, each bracketed by `Engine::sync_reset`
/// and reported as the max rank-local elapsed virtual time:
///  * init — topology + collective init (plan-cache-aware),
///  * blocking — start; wait; then the workload's overlap window of
///    simulated compute (communication and compute serialize),
///  * overlapped — start; compute; wait (compute hides transfer time).
/// With a non-zero overlap window, overlapped <= blocking always, and the
/// gap is the pattern's exploitable overlap.
struct PatternMeasurement {
  double init_seconds = 0.0;
  double blocking_seconds = 0.0;
  double overlapped_seconds = 0.0;
  double overlap_seconds = 0.0;  ///< simulated compute charged per window
  long sum_local_msgs = 0;       ///< intra-region messages, all ranks
  long sum_global_msgs = 0;      ///< network messages, all ranks
  long sum_local_values = 0;
  long sum_global_values = 0;
  long max_global_msgs = 0;          ///< max per rank
  long max_global_msg_values = 0;    ///< largest single network message
  /// Shared-link contention of the blocking window, one entry per link
  /// tier (empty on flat machines): occupancy summed over all ranks, and
  /// the worst per-rank queue backlog.  All zeros while
  /// `MeasureConfig::cost.use_link_cap` is off.
  std::vector<double> link_seconds;
  std::vector<double> max_link_backlog_seconds;
  /// Network messages crossing each link tier — a static property of the
  /// method's plan (mpix::NeighborStats::link_msgs summed over ranks),
  /// counted whether or not the link cap charges for them.
  std::vector<long> sum_link_msgs;
  /// Fault-injection and reliability activity of the two measured windows
  /// (blocking + overlapped), summed over ranks
  /// (simmpi::Engine::FaultStats).  All zeros without
  /// MeasureConfig::faults.
  long drops = 0;
  long dups = 0;
  long retransmits = 0;
  long timeouts = 0;
};

/// Run one generated workload through a sparse neighbor method
/// (`mpix::neighbor_alltoallv_init` over the pattern's adjacency).  With
/// `cfg.verify_payload`, both windows' delivered bytes are checked against
/// the pattern's gid scheme.  `cfg.plans` caches locality plans keyed by
/// (workload fingerprint, method, machine shape).
PatternMeasurement measure_pattern(const patterns::Workload& wl,
                                   mpix::Method method,
                                   const MeasureConfig& cfg = {},
                                   std::size_t element_size = sizeof(double));

/// Run one generated workload through a dense alltoallv method (counts
/// expanded to one entry per rank, zero for non-neighbors).
PatternMeasurement measure_pattern_dense(
    const patterns::Workload& wl, mpix::AlltoallMethod method,
    const MeasureConfig& cfg = {}, std::size_t element_size = sizeof(double));

/// Figure 6: cost of creating the per-level topology communicators
/// (dist_graph_create_adjacent once per level), for one graph algorithm.
double measure_graph_creation(const amg::DistHierarchy& dh,
                              simmpi::GraphAlgo algo,
                              const MeasureConfig& cfg = {});

/// Sum of per-level Start+Wait times (Figures 12/13), optionally taking the
/// cheaper of `self` and `baseline` per level ("maximum possible
/// improvement" selection of Section 4.2).
double total_time(const std::vector<LevelMeasurement>& self,
                  const std::vector<LevelMeasurement>* baseline = nullptr);

/// Smallest iteration count at which `opt` (init + k * iter) beats `base`;
/// -1 if never within `max_iters` (Figure 7 crossovers).
int crossover_iterations(double base_init, double base_iter, double opt_init,
                         double opt_iter, int max_iters = 100000);

/// Build (and memoize per (rows, options)) the canonical hierarchy of the
/// paper's rotated anisotropic diffusion problem with `rows` unknowns.
/// `build_threads` sets the construction width (0 = auto, see
/// MeasureConfig::build_threads); it never changes the built hierarchy.
const amg::Hierarchy& paper_hierarchy(long rows, int build_threads = 0);

/// Memoized distribution of the paper hierarchy over `nranks`.
const amg::DistHierarchy& paper_dist_hierarchy(long rows, int nranks,
                                               int build_threads = 0);

}  // namespace harness
