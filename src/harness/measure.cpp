#include "harness/measure.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <optional>

#include "harness/hierarchy_cache.hpp"
#include "sparse/stencil.hpp"

namespace harness {

using simmpi::Context;
using simmpi::Engine;
using simmpi::Machine;
using simmpi::Task;

namespace {

/// Deterministic test value for global row id `g`.
double x_value(long g) { return 0.5 * static_cast<double>(g) + 1.0; }

Machine machine_for(int nranks, const MeasureConfig& cfg) {
  if (cfg.regions_per_node <= 1) {
    Machine m = Machine::with_region_size(nranks, cfg.ranks_per_region);
    if (cfg.switch_levels.empty()) return m;
    simmpi::MachineConfig mc = m.config();
    mc.switch_levels = cfg.switch_levels;
    return Machine(mc);
  }
  const int per_node = cfg.regions_per_node * cfg.ranks_per_region;
  if (nranks % per_node != 0)
    throw simmpi::SimError(
        "MeasureConfig: nranks must be a multiple of regions_per_node * "
        "ranks_per_region (" +
        std::to_string(nranks) + " % " + std::to_string(per_node) + " != 0)");
  return Machine({.num_nodes = nranks / per_node,
                  .regions_per_node = cfg.regions_per_node,
                  .ranks_per_region = cfg.ranks_per_region,
                  .switch_levels = cfg.switch_levels});
}

Engine::Options engine_opts(const MeasureConfig& cfg) {
  return Engine::Options{.threads = cfg.threads};
}

/// Deterministic payload byte for the dense alltoall: byte `b` of value
/// `k` of the (src -> dst) segment.
std::byte dense_byte(int src, int dst, long k, std::size_t b) {
  return static_cast<std::byte>(
      (src * 131 + dst * 31 + k * 7 + static_cast<long>(b) * 13) & 0xff);
}

std::uint64_t dense_mix(std::uint64_t h, std::uint64_t v) {
  return (h ^ (v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2)));
}

/// Mix the switch-hierarchy *radixes* into a plan-cache key.  Tapers are
/// deliberately excluded — they only scale link costs, never the plan —
/// so a taper sweep re-binds cached plans instead of rebuilding them;
/// cross-shape reuse is additionally rejected by the plan's own binding
/// fingerprint.
std::uint64_t mix_switch_shape(std::uint64_t h, const MeasureConfig& cfg) {
  h = dense_mix(h, static_cast<std::uint64_t>(cfg.switch_levels.size()));
  for (const simmpi::SwitchLevel& lvl : cfg.switch_levels)
    h = dense_mix(h, static_cast<std::uint64_t>(lvl.radix));
  return h;
}

/// Plan-cache key of a uniform dense pattern.  Plans are independent of
/// the element size (all offsets are in values), so it is excluded; the
/// machine shape and method are what binding validates against.
std::uint64_t dense_cache_key(int nranks, int count,
                              mpix::AlltoallMethod method,
                              const MeasureConfig& cfg) {
  std::uint64_t h = 0xd05eA77A11ull;  // dense-alltoall salt
  h = dense_mix(h, static_cast<std::uint64_t>(nranks));
  h = dense_mix(h, static_cast<std::uint64_t>(count));
  h = dense_mix(h, static_cast<std::uint64_t>(method));
  h = dense_mix(h, static_cast<std::uint64_t>(cfg.ranks_per_region));
  h = dense_mix(h, cfg.lpt_balance ? 1 : 0);
  h = mix_switch_shape(h, cfg);
  return h;
}

/// Plan-cache key of a generated workload.  The workload fingerprint
/// already covers adjacency, counts and the gid seed; the method, machine
/// shape and leader strategy are mixed in because they change the plan.
/// Element size is excluded (plan offsets are in values).  The dense and
/// sparse paths use distinct salts so their keys cannot collide.
std::uint64_t pattern_cache_key(const patterns::Workload& wl,
                                std::uint64_t salt, std::uint64_t method,
                                const MeasureConfig& cfg) {
  std::uint64_t h = salt;
  h = dense_mix(h, wl.fingerprint());
  h = dense_mix(h, method);
  h = dense_mix(h, static_cast<std::uint64_t>(cfg.ranks_per_region));
  h = dense_mix(h, static_cast<std::uint64_t>(cfg.regions_per_node));
  h = dense_mix(h, cfg.lpt_balance ? 1 : 0);
  h = mix_switch_shape(h, cfg);
  return h;
}

/// Shared engine body of measure_pattern / measure_pattern_dense: `init`
/// builds the collective (charging its setup against the clock), then the
/// blocking and overlapped windows run and verify.  `Init` is a callable
/// `(Context&, AlltoallvArgs, Options) -> Task<unique_ptr<...>>`.
template <class Init>
PatternMeasurement run_pattern(const patterns::Workload& wl,
                               const MeasureConfig& cfg,
                               std::size_t element_size, bool cacheable,
                               std::uint64_t key, const char* what,
                               bool dense, Init init) {
  const int p = wl.nranks;
  Engine eng(machine_for(p, cfg), cfg.cost, engine_opts(cfg));
  if (cfg.faults) eng.set_fault_plan(*cfg.faults);
  std::vector<double> init_elapsed(p, 0.0), block_elapsed(p, 0.0),
      overlap_elapsed(p, 0.0);
  std::vector<mpix::NeighborStats> stats(p);
  std::vector<std::vector<Engine::LinkStats>> link_stats(p);
  std::vector<Engine::FaultStats> fault_block(p), fault_overlap(p);

  eng.run([&](Context& ctx) -> Task<> {
    const int r = ctx.rank();
    patterns::RankBuffers buf = patterns::make_buffers(wl, r, element_size);
    mpix::AlltoallvArgs args =
        dense ? patterns::dense_args_view(wl, r, buf, element_size)
              : patterns::args_view(wl, r, buf, element_size);

    mpix::Options mopts;
    mopts.lpt_balance = cfg.lpt_balance;
    mopts.reliability = cfg.reliability;
    std::shared_ptr<const mpix::PlanBase> cached;  // keeps the plan alive
    if (cacheable) {
      cached = cfg.plans->find_base(key, r);
      mopts.plan = cached.get();
    }

    co_await ctx.engine().sync_reset(ctx);
    auto coll = co_await init(ctx, std::move(args), mopts);
    init_elapsed[r] = ctx.now();
    stats[r] = coll->stats();
    if (cacheable && !cached) cfg.plans->put(key, r, coll->plan_base());

    auto check = [&](const char* window) {
      if (!cfg.verify_payload) return;
      const long bad = patterns::verify_recv(wl, r, buf, element_size);
      if (bad != 0)
        throw simmpi::SimError(std::string(what) + ": " + wl.pattern + " " +
                               window + " window delivered " +
                               std::to_string(bad) +
                               " bad byte(s) on rank " + std::to_string(r));
    };

    // Blocking window: communication completes before the compute runs.
    co_await ctx.engine().sync_reset(ctx);
    co_await coll->start(ctx);
    co_await coll->wait(ctx);
    ctx.compute(wl.overlap_seconds);
    block_elapsed[r] = ctx.now();
    check("blocking");
    // Blocking-window link footprint: the barrier guarantees this rank's
    // journaled sends are committed (and their link charges recorded)
    // before the next sync_reset clears the stats.  The window's elapsed
    // time was captured above, but the extra barrier still shifts phase
    // alignment entering the *next* window (and with it the NIC delivery
    // interleaving), so it runs only when the link cap — and therefore a
    // link footprint worth capturing — is on: cap-off runs keep the
    // pre-contention program, and their series, bit for bit.  A fault
    // plan needs the same barrier to snapshot the window's fault
    // counters before the reset clears them; plan-free runs keep the
    // original program either way (byte-inertness).
    if (cfg.cost.use_link_cap || cfg.faults) {
      co_await simmpi::coll::barrier(ctx, ctx.world());
      const auto& rs = ctx.engine().stats(r);
      if (cfg.cost.use_link_cap)
        link_stats[r].assign(rs.link.begin(), rs.link.end());
      fault_block[r] = rs.faults;
    }
    patterns::clear_recv(buf);

    // Overlapped window: the same compute is charged between start and
    // wait, hiding transfer time behind it.
    co_await ctx.engine().sync_reset(ctx);
    co_await coll->start(ctx);
    ctx.compute(wl.overlap_seconds);
    co_await coll->wait(ctx);
    overlap_elapsed[r] = ctx.now();
    check("overlapped");

    co_await simmpi::coll::barrier(ctx, ctx.world());
    // Own counters only: this rank's sends were committed before its
    // waits completed, so the post-barrier read is settled.
    fault_overlap[r] = ctx.engine().stats(r).faults;
    co_return;
  });

  PatternMeasurement out;
  out.init_seconds =
      *std::max_element(init_elapsed.begin(), init_elapsed.end());
  out.blocking_seconds =
      *std::max_element(block_elapsed.begin(), block_elapsed.end());
  out.overlapped_seconds =
      *std::max_element(overlap_elapsed.begin(), overlap_elapsed.end());
  out.overlap_seconds = wl.overlap_seconds;
  for (const auto& s : stats) {
    out.sum_local_msgs += s.local_msgs;
    out.sum_global_msgs += s.global_msgs;
    out.sum_local_values += s.local_values;
    out.sum_global_values += s.global_values;
    out.max_global_msgs = std::max(out.max_global_msgs, s.global_msgs);
    out.max_global_msg_values =
        std::max(out.max_global_msg_values, s.max_global_msg_values);
  }
  const auto tiers =
      static_cast<std::size_t>(eng.machine().num_link_tiers());
  out.link_seconds.assign(tiers, 0.0);
  out.max_link_backlog_seconds.assign(tiers, 0.0);
  out.sum_link_msgs.assign(tiers, 0);
  for (const auto& ls : link_stats)
    for (std::size_t t = 0; t < ls.size(); ++t) {
      out.link_seconds[t] += ls[t].busy_seconds;
      out.max_link_backlog_seconds[t] =
          std::max(out.max_link_backlog_seconds[t], ls[t].max_backlog_seconds);
    }
  for (const auto& s : stats)
    for (std::size_t t = 0; t < s.link_msgs.size(); ++t)
      out.sum_link_msgs[t] += s.link_msgs[t];
  for (int r = 0; r < p; ++r) {
    out.drops += static_cast<long>(fault_block[r].drops) +
                 static_cast<long>(fault_overlap[r].drops);
    out.dups += static_cast<long>(fault_block[r].dups) +
                static_cast<long>(fault_overlap[r].dups);
    out.retransmits += static_cast<long>(fault_block[r].retransmits) +
                       static_cast<long>(fault_overlap[r].retransmits);
    out.timeouts += static_cast<long>(fault_block[r].timeouts) +
                    static_cast<long>(fault_overlap[r].timeouts);
  }
  return out;
}

}  // namespace

PatternMeasurement measure_pattern(const patterns::Workload& wl,
                                   mpix::Method method,
                                   const MeasureConfig& cfg,
                                   std::size_t element_size) {
  const bool cacheable = cfg.plans != nullptr && mpix::uses_locality(method);
  const std::uint64_t key =
      cacheable ? pattern_cache_key(wl, 0x9a77e481ull,
                                    static_cast<std::uint64_t>(method), cfg)
                : 0;
  return run_pattern(
      wl, cfg, element_size, cacheable, key, "measure_pattern",
      /*dense=*/false,
      [&wl, method, algo = cfg.graph_algo](Context& ctx,
                                           mpix::AlltoallvArgs args,
                                           mpix::Options mopts)
          -> Task<std::unique_ptr<mpix::NeighborAlltoallv>> {
        const patterns::RankExchange& ex = wl.ranks[ctx.rank()];
        simmpi::DistGraph g = co_await simmpi::dist_graph_create_adjacent(
            ctx, ctx.world(), ex.sources, ex.destinations, algo);
        auto coll = co_await mpix::neighbor_alltoallv_init(
            ctx, g, std::move(args), method, std::move(mopts));
        co_return coll;
      });
}

PatternMeasurement measure_pattern_dense(const patterns::Workload& wl,
                                         mpix::AlltoallMethod method,
                                         const MeasureConfig& cfg,
                                         std::size_t element_size) {
  const bool cacheable =
      cfg.plans != nullptr && mpix::alltoall_uses_plan(method);
  const std::uint64_t key =
      cacheable ? pattern_cache_key(wl, 0xde45e481ull,
                                    static_cast<std::uint64_t>(method), cfg)
                : 0;
  return run_pattern(
      wl, cfg, element_size, cacheable, key, "measure_pattern_dense",
      /*dense=*/true,
      [method](Context& ctx, mpix::AlltoallvArgs args, mpix::Options mopts)
          -> Task<std::unique_ptr<mpix::NeighborAlltoallv>> {
        auto coll = co_await mpix::alltoallv_init(
            ctx, ctx.world(), std::move(args), method, std::move(mopts));
        co_return coll;
      });
}

DenseMeasurement measure_dense_alltoall(int nranks, int count,
                                        std::size_t element_size,
                                        mpix::AlltoallMethod method,
                                        const MeasureConfig& cfg) {
  const int p = nranks;
  Engine eng(machine_for(p, cfg), cfg.cost, engine_opts(cfg));
  std::vector<double> init_elapsed(p, 0.0), iter_elapsed(p, 0.0);
  std::vector<mpix::NeighborStats> stats(p);

  const bool cacheable = cfg.plans && mpix::alltoall_uses_plan(method);
  const std::uint64_t key =
      cacheable ? dense_cache_key(p, count, method, cfg) : 0;

  eng.run([&](Context& ctx) -> Task<> {
    const int r = ctx.rank();
    const std::size_t es = element_size;
    const std::size_t bytes = static_cast<std::size_t>(p) *
                              static_cast<std::size_t>(count) * es;
    std::vector<std::byte> sendbuf(bytes), recvbuf(bytes);
    for (int dst = 0; dst < p; ++dst)
      for (long k = 0; k < count; ++k)
        for (std::size_t b = 0; b < es; ++b)
          sendbuf[(static_cast<std::size_t>(dst) * count + k) * es + b] =
              dense_byte(r, dst, k, b);

    mpix::Options mopts;
    mopts.lpt_balance = cfg.lpt_balance;
    std::shared_ptr<const mpix::PlanBase> cached;  // keeps the plan alive
    if (cacheable) {
      cached = cfg.plans->find_base(key, r);
      mopts.plan = cached.get();
    }

    co_await ctx.engine().sync_reset(ctx);
    auto coll = co_await mpix::alltoall_init(
        ctx, ctx.world(), std::span<const std::byte>(sendbuf),
        std::span<std::byte>(recvbuf), count, es, method, mopts);
    init_elapsed[r] = ctx.now();
    stats[r] = coll->stats();
    if (cacheable && !cached) cfg.plans->put(key, r, coll->plan_base());

    co_await ctx.engine().sync_reset(ctx);
    co_await coll->start(ctx);
    co_await coll->wait(ctx);
    iter_elapsed[r] = ctx.now();

    if (cfg.verify_payload) {
      for (int src = 0; src < p; ++src)
        for (long k = 0; k < count; ++k)
          for (std::size_t b = 0; b < es; ++b)
            if (recvbuf[(static_cast<std::size_t>(src) * count + k) * es + b] !=
                dense_byte(src, r, k, b))
              throw simmpi::SimError(
                  "measure_dense_alltoall: payload verification failed "
                  "(method " +
                  std::string(mpix::to_string(method)) + ", rank " +
                  std::to_string(r) + ")");
    }
    co_await simmpi::coll::barrier(ctx, ctx.world());
    co_return;
  });

  DenseMeasurement out;
  out.init_seconds =
      *std::max_element(init_elapsed.begin(), init_elapsed.end());
  out.start_wait_seconds =
      *std::max_element(iter_elapsed.begin(), iter_elapsed.end());
  for (const auto& s : stats) {
    out.sum_local_msgs += s.local_msgs;
    out.sum_global_msgs += s.global_msgs;
    out.sum_global_values += s.global_values;
    out.max_global_msgs = std::max(out.max_global_msgs, s.global_msgs);
    out.max_global_msg_values =
        std::max(out.max_global_msg_values, s.max_global_msg_values);
  }
  return out;
}

std::vector<LevelMeasurement> measure_protocol(const amg::DistHierarchy& dh,
                                               Protocol protocol,
                                               const MeasureConfig& cfg) {
  const int p = dh.nranks;
  const int nlevels = dh.num_levels();
  Engine eng(machine_for(p, cfg), cfg.cost, engine_opts(cfg));

  std::vector<std::vector<double>> init_elapsed(nlevels,
                                                std::vector<double>(p, 0.0));
  std::vector<std::vector<double>> iter_elapsed(nlevels,
                                                std::vector<double>(p, 0.0));
  std::vector<std::vector<mpix::NeighborStats>> stats(
      nlevels, std::vector<mpix::NeighborStats>(p));

  // Global pattern keys for the optional plan cache, one per level
  // (host-side, identical for every rank by construction).  Only the
  // locality-aware protocols consult the cache, so skip the fingerprint
  // walk for the others.
  std::vector<std::uint64_t> level_keys(nlevels, 0);
  if (cfg.plans && uses_locality(protocol))
    for (int l = 0; l < nlevels; ++l)
      level_keys[l] = pattern_fingerprint(dh.levels[l].halo);

  eng.run([&](Context& ctx) -> Task<> {
    const int r = ctx.rank();
    // One test vector reused across levels: level 0 is the largest, so the
    // first resize fixes the capacity and the per-level loop stays off the
    // heap (same buffer-hoisting rule as the engine hot path).
    std::vector<double> x;
#ifndef NDEBUG
    std::size_t x_cap = 0;
#endif
    for (int l = 0; l < nlevels; ++l) {
      const auto& lvl = dh.levels[l];
      const auto& halo = lvl.halo.ranks[r];
      const long first = lvl.A.row_part[r];
      const long nloc = lvl.A.row_part[r + 1] - first;
      x.resize(nloc);
#ifndef NDEBUG
      if (l == 0) x_cap = x.capacity();
      assert(x.capacity() == x_cap);  // levels shrink; no regrowth
#endif
      for (long i = 0; i < nloc; ++i) x[i] = x_value(first + i);

      // Init cost: topology creation + collective initialization.
      co_await ctx.engine().sync_reset(ctx);
      auto ex = co_await make_halo_exchange(
          ctx, ctx.world(), protocol, halo,
          {.graph_algo = cfg.graph_algo,
           .lpt_balance = cfg.lpt_balance,
           .plans = cfg.plans,
           .pattern_key = level_keys[l]});
      init_elapsed[l][r] = ctx.now();
      stats[l][r] = ex->stats();

      // One Start+Wait (deterministic, so one execution is exact).
      co_await ctx.engine().sync_reset(ctx);
      co_await ex->start(ctx, x);
      co_await ex->wait(ctx);
      iter_elapsed[l][r] = ctx.now();

      if (cfg.verify_payload) {
        auto xe = ex->x_ext();
        for (std::size_t k = 0; k < xe.size(); ++k)
          if (xe[k] != x_value(halo.recv_gids[k]))
            throw simmpi::SimError(
                "measure_protocol: halo verification failed (protocol " +
                std::string(to_string(protocol)) + ", level " +
                std::to_string(l) + ")");
      }
      // Drain any asymmetric completion before the next level's reset.
      co_await simmpi::coll::barrier(ctx, ctx.world());
    }
    co_return;
  });

  std::vector<LevelMeasurement> out(nlevels);
  for (int l = 0; l < nlevels; ++l) {
    out[l].level = l;
    out[l].rows = dh.levels[l].n();
    out[l].init_seconds =
        *std::max_element(init_elapsed[l].begin(), init_elapsed[l].end());
    out[l].start_wait_seconds =
        *std::max_element(iter_elapsed[l].begin(), iter_elapsed[l].end());
    for (const auto& s : stats[l]) {
      out[l].max_local_msgs = std::max(out[l].max_local_msgs, s.local_msgs);
      out[l].max_global_msgs = std::max(out[l].max_global_msgs, s.global_msgs);
      out[l].max_global_msg_values =
          std::max(out[l].max_global_msg_values, s.max_global_msg_values);
      out[l].max_local_values =
          std::max(out[l].max_local_values, s.local_values);
      out[l].max_global_values =
          std::max(out[l].max_global_values, s.global_values);
    }
  }
  return out;
}

double measure_graph_creation(const amg::DistHierarchy& dh,
                              simmpi::GraphAlgo algo,
                              const MeasureConfig& cfg) {
  const int p = dh.nranks;
  Engine eng(machine_for(p, cfg), cfg.cost, engine_opts(cfg));
  std::vector<double> elapsed(p, 0.0);
  eng.run([&](Context& ctx) -> Task<> {
    const int r = ctx.rank();
    double total = 0.0;
    for (int l = 0; l < dh.num_levels(); ++l) {
      const auto& halo = dh.levels[l].halo.ranks[r];
      co_await ctx.engine().sync_reset(ctx);
      auto g = co_await simmpi::dist_graph_create_adjacent(
          ctx, ctx.world(), halo.recv_ranks, halo.send_ranks, algo);
      total += ctx.now();
      (void)g;
      co_await simmpi::coll::barrier(ctx, ctx.world());
    }
    elapsed[r] = total;
    co_return;
  });
  return *std::max_element(elapsed.begin(), elapsed.end());
}

double total_time(const std::vector<LevelMeasurement>& self,
                  const std::vector<LevelMeasurement>* baseline) {
  double t = 0.0;
  for (std::size_t l = 0; l < self.size(); ++l) {
    double v = self[l].start_wait_seconds;
    if (baseline) v = std::min(v, (*baseline)[l].start_wait_seconds);
    t += v;
  }
  return t;
}

int crossover_iterations(double base_init, double base_iter, double opt_init,
                         double opt_iter, int max_iters) {
  for (int k = 0; k <= max_iters; ++k) {
    if (opt_init + k * opt_iter < base_init + k * base_iter) return k;
  }
  return -1;
}

const amg::Hierarchy& paper_hierarchy(long rows, int build_threads) {
  // Single-entry cache: benches sweep sizes sequentially and the largest
  // hierarchy is hundreds of MB.  build_threads is wall-time-only (the
  // built hierarchy is width-independent), so it is not part of the key.
  static long cached_rows = -1;
  static std::optional<amg::Hierarchy> cached;
  if (cached_rows != rows) {
    int nx = 0, ny = 0;
    sparse::factor_grid(rows, nx, ny);
    amg::Options opts;
    opts.threads = build_threads;
    cached.emplace(amg::Hierarchy::build(sparse::paper_problem(nx, ny), opts));
    cached_rows = rows;
  }
  return *cached;
}

const amg::DistHierarchy& paper_dist_hierarchy(long rows, int nranks,
                                               int build_threads) {
  static long cached_rows = -1;
  static int cached_ranks = -1;
  static std::optional<amg::DistHierarchy> cached;
  if (cached_rows != rows || cached_ranks != nranks) {
    // Thin lookup: the process memo misses, so consult the cross-process
    // disk cache before paying for coarsening + distribution.  A disk hit
    // skips the canonical paper_hierarchy build entirely.  The key ignores
    // Options::threads: every width builds identical bytes.
    const HierarchyCache::Key key{rows, nranks, amg::Options{}};
    HierarchyCache* disk = HierarchyCache::global();
    std::optional<amg::DistHierarchy> loaded;
    if (disk) loaded = disk->load(key);
    if (loaded) {
      cached = std::move(loaded);
    } else {
      cached.emplace(amg::distribute_hierarchy(
          paper_hierarchy(rows, build_threads), nranks));
      if (disk) disk->store(key, *cached);
    }
    cached_rows = rows;
    cached_ranks = nranks;
  }
  return *cached;
}

}  // namespace harness
