#include "harness/dist_solve.hpp"

#include <cmath>

#include "amg/solve.hpp"

namespace harness {

using simmpi::Context;
using simmpi::Engine;
using simmpi::Machine;
using simmpi::Task;
namespace coll = simmpi::coll;

namespace {

/// Per-rank solver state for one level.
struct LevelState {
  std::span<const sparse::ParCsrRank> a_slice;  // single-element span
  std::unique_ptr<HaloExchange> ex_a, ex_r, ex_p;
  std::vector<double> x, b, tmp, diag;
  long nloc = 0;
};

constexpr double kJacobiOmega = 2.0 / 3.0;

/// y = A x on this rank (exchange + local compute).
Task<> dist_spmv(Context& ctx, const sparse::ParCsrRank& a, HaloExchange& ex,
                 std::span<const double> x, std::span<double> y) {
  co_await ex.start(ctx, x);
  co_await ex.wait(ctx);
  sparse::spmv_local(a, x, ex.x_ext(), y);
}

Task<double> dist_norm2(Context& ctx, simmpi::Comm comm,
                        std::span<const double> v) {
  double local = 0.0;
  for (double x : v) local += x * x;
  double global = co_await coll::allreduce<double>(
      ctx, comm, local, [](double a, double b) { return a + b; });
  co_return std::sqrt(global);
}

}  // namespace

DistSolveResult run_distributed_amg(const amg::DistHierarchy& dh,
                                    Protocol protocol,
                                    std::span<const double> b_global,
                                    double rel_tol, int max_iters,
                                    const MeasureConfig& cfg) {
  const int p = dh.nranks;
  const int nlevels = dh.num_levels();
  if (static_cast<long>(b_global.size()) != dh.levels[0].n())
    throw simmpi::SimError("run_distributed_amg: rhs size mismatch");

  Engine eng(Machine::with_region_size(p, cfg.ranks_per_region), cfg.cost,
             Engine::Options{.threads = cfg.threads});
  DistSolveResult result;
  std::vector<std::vector<double>> x_parts(p);
  std::vector<double> elapsed(p, 0.0);

  // Global pattern keys for the optional plan cache (host-side, identical
  // for every rank): each level contributes up to three exchange patterns
  // (operator, restriction, prolongation).  With a cache that persists
  // across solves of the same hierarchy, every locality-aware setup after
  // the first re-binds its cached LocalityPlan without communication.
  struct LevelKeys {
    std::uint64_t a = 0, r = 0, p = 0;
  };
  std::vector<LevelKeys> keys(nlevels);
  if (cfg.plans && uses_locality(protocol))
    for (int l = 0; l < nlevels; ++l) {
      keys[l].a = pattern_fingerprint(dh.levels[l].halo);
      if (dh.levels[l].has_coarse()) {
        keys[l].r = pattern_fingerprint(dh.levels[l].halo_R);
        keys[l].p = pattern_fingerprint(dh.levels[l].halo_P);
      }
    }
  auto ex_opts = [&](std::uint64_t key) {
    return ExchangeOptions{.graph_algo = cfg.graph_algo,
                           .lpt_balance = cfg.lpt_balance,
                           .plans = cfg.plans,
                           .pattern_key = key};
  };

  eng.run([&](Context& ctx) -> Task<> {
    const int r = ctx.rank();
    auto comm = ctx.world();

    // ---- setup: per-level state + persistent exchanges -------------------
    std::vector<LevelState> st(nlevels);
    for (int l = 0; l < nlevels; ++l) {
      const auto& lvl = dh.levels[l];
      LevelState& s = st[l];
      s.nloc = lvl.A.row_part[r + 1] - lvl.A.row_part[r];
      s.x.assign(s.nloc, 0.0);
      s.b.assign(s.nloc, 0.0);
      s.tmp.assign(s.nloc, 0.0);
      s.diag = lvl.A.ranks[r].diag.diagonal();
      for (long i = 0; i < s.nloc; ++i)
        if (s.diag[i] == 0.0)
          throw simmpi::SimError("run_distributed_amg: zero diagonal");
      s.ex_a = co_await make_halo_exchange(ctx, comm, protocol,
                                           lvl.halo.ranks[r],
                                           ex_opts(keys[l].a));
      if (lvl.has_coarse()) {
        s.ex_r = co_await make_halo_exchange(
            ctx, comm, protocol, lvl.halo_R.ranks[r], ex_opts(keys[l].r));
        s.ex_p = co_await make_halo_exchange(
            ctx, comm, protocol, lvl.halo_P.ranks[r], ex_opts(keys[l].p));
      }
    }
    const long first0 = dh.levels[0].A.row_part[r];
    for (long i = 0; i < st[0].nloc; ++i) st[0].b[i] = b_global[first0 + i];
    std::vector<double> x_fine(st[0].nloc, 0.0);

    const double bnorm =
        std::max(co_await dist_norm2(ctx, comm, st[0].b), 1e-300);

    // ---- one V-cycle, iterative over levels (down then up) ---------------
    auto jacobi_sweep = [&](Context& c, int l) -> Task<> {
      LevelState& s = st[l];
      co_await dist_spmv(c, dh.levels[l].A.ranks[r], *s.ex_a, s.x, s.tmp);
      for (long i = 0; i < s.nloc; ++i)
        s.x[i] += kJacobiOmega * (s.b[i] - s.tmp[i]) / s.diag[i];
    };
    auto coarse_solve = [&](Context& c) -> Task<> {
      // Gather the coarsest rhs everywhere and solve redundantly.
      LevelState& s = st[nlevels - 1];
      const auto& lvl = dh.levels[nlevels - 1];
      auto all_b = co_await coll::allgatherv<double>(c, comm, s.b);
      std::vector<double> xg(all_b.size(), 0.0);
      amg::dense_solve(lvl.A.gather(), all_b, xg);
      const long first = lvl.A.row_part[r];
      for (long i = 0; i < s.nloc; ++i) s.x[i] = xg[first + i];
    };
    auto vcycle = [&](Context& c) -> Task<> {
      st[0].x = x_fine;
      for (int l = 0; l < nlevels - 1; ++l) {
        LevelState& s = st[l];
        if (l > 0) std::fill(s.x.begin(), s.x.end(), 0.0);
        co_await jacobi_sweep(c, l);
        // residual
        co_await dist_spmv(c, dh.levels[l].A.ranks[r], *s.ex_a, s.x, s.tmp);
        for (long i = 0; i < s.nloc; ++i) s.tmp[i] = s.b[i] - s.tmp[i];
        // restrict into level l+1 rhs
        co_await s.ex_r->start(c, s.tmp);
        co_await s.ex_r->wait(c);
        sparse::spmv_local(dh.levels[l].R.ranks[r], s.tmp, s.ex_r->x_ext(),
                           st[l + 1].b);
      }
      co_await coarse_solve(c);
      for (int l = nlevels - 2; l >= 0; --l) {
        LevelState& s = st[l];
        co_await s.ex_p->start(c, st[l + 1].x);
        co_await s.ex_p->wait(c);
        sparse::spmv_local(dh.levels[l].P.ranks[r], st[l + 1].x,
                           s.ex_p->x_ext(), s.tmp);
        for (long i = 0; i < s.nloc; ++i) s.x[i] += s.tmp[i];
        co_await jacobi_sweep(c, l);
      }
      x_fine = st[0].x;
    };

    // ---- stationary iteration --------------------------------------------
    co_await ctx.engine().sync_reset(ctx);
    for (int it = 0; it < max_iters; ++it) {
      // relative residual
      co_await dist_spmv(ctx, dh.levels[0].A.ranks[r], *st[0].ex_a, x_fine,
                         st[0].tmp);
      for (long i = 0; i < st[0].nloc; ++i)
        st[0].tmp[i] = st[0].b[i] - st[0].tmp[i];
      const double res =
          (co_await dist_norm2(ctx, comm, st[0].tmp)) / bnorm;
      if (r == 0) result.residual_history.push_back(res);
      if (res < rel_tol) {
        if (r == 0) result.converged = true;
        break;
      }
      co_await vcycle(ctx);
    }
    elapsed[r] = ctx.now();
    x_parts[r] = x_fine;
    co_return;
  });

  result.solve_seconds = *std::max_element(elapsed.begin(), elapsed.end());
  for (const auto& part : x_parts)
    result.solution.insert(result.solution.end(), part.begin(), part.end());
  return result;
}

}  // namespace harness
