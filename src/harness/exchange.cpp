#include "harness/exchange.hpp"

#include <numeric>

#include "simmpi/dist_graph.hpp"

namespace harness {

// The Protocol <-> Method mapping must round-trip for every neighbor
// protocol (and every method): the harness dispatch relies on it.
static_assert(protocol_of(method_of(Protocol::neighbor_standard)) ==
              Protocol::neighbor_standard);
static_assert(protocol_of(method_of(Protocol::neighbor_partial)) ==
              Protocol::neighbor_partial);
static_assert(protocol_of(method_of(Protocol::neighbor_full)) ==
              Protocol::neighbor_full);
static_assert(method_of(protocol_of(mpix::Method::standard)) ==
              mpix::Method::standard);
static_assert(method_of(protocol_of(mpix::Method::locality)) ==
              mpix::Method::locality);
static_assert(method_of(protocol_of(mpix::Method::locality_dedup)) ==
              mpix::Method::locality_dedup);

namespace {

using simmpi::Comm;
using simmpi::Context;
using simmpi::Request;
using simmpi::Task;

/// Shared bookkeeping: owned buffers + gather list.
struct Buffers {
  std::vector<int> send_gather;   ///< local x index per sendbuf slot
  std::vector<double> sendbuf;
  std::vector<double> xext;
  std::vector<int> sendcounts, sdispls, recvcounts, rdispls;
  std::vector<mpix::gidx> send_idx, recv_idx;
  std::vector<int> destinations, sources;

  explicit Buffers(const sparse::RankHalo& halo) {
    destinations = halo.send_ranks;
    sources = halo.recv_ranks;
    sendcounts = halo.send_counts;
    recvcounts = halo.recv_counts;
    sdispls.resize(sendcounts.size());
    rdispls.resize(recvcounts.size());
    int acc = 0;
    for (std::size_t i = 0; i < sendcounts.size(); ++i) {
      sdispls[i] = acc;
      acc += sendcounts[i];
    }
    acc = 0;
    for (std::size_t i = 0; i < recvcounts.size(); ++i) {
      rdispls[i] = acc;
      acc += recvcounts[i];
    }
    send_gather = halo.send_idx;
    send_idx.assign(halo.send_gids.begin(), halo.send_gids.end());
    recv_idx.assign(halo.recv_gids.begin(), halo.recv_gids.end());
    sendbuf.resize(send_gather.size());
    xext.resize(recv_idx.size());
  }

  mpix::AlltoallvArgs args() {
    return mpix::AlltoallvArgsT<double>{
        .sendbuf = sendbuf,
        .sendcounts = sendcounts,
        .sdispls = sdispls,
        .recvbuf = xext,
        .recvcounts = recvcounts,
        .rdispls = rdispls,
        .send_idx = send_idx,
        .recv_idx = recv_idx,
    };
  }

  void gather(std::span<const double> x_local) {
    for (std::size_t k = 0; k < send_gather.size(); ++k)
      sendbuf[k] = x_local[send_gather[k]];
  }
};

/// Hypre-style persistent point-to-point exchange (no topology object).
class HypreExchange final : public HaloExchange {
 public:
  HypreExchange(Context& ctx, Comm comm, const sparse::RankHalo& halo)
      : buf_(halo) {
    const int tag = ctx.engine().next_coll_tag(comm);
    const auto& machine = ctx.engine().machine();
    const int my_region = machine.region_of(comm.global(comm.rank()));
    for (std::size_t i = 0; i < buf_.destinations.size(); ++i) {
      auto seg = std::span<const double>(buf_.sendbuf)
                     .subspan(buf_.sdispls[i], buf_.sendcounts[i]);
      sends_.push_back(Request::send(comm, std::as_bytes(seg),
                                     buf_.destinations[i], tag));
      const bool global =
          machine.region_of(comm.global(buf_.destinations[i])) != my_region;
      if (global) {
        ++stats_.global_msgs;
        stats_.global_values += buf_.sendcounts[i];
        stats_.max_global_msg_values =
            std::max(stats_.max_global_msg_values,
                     static_cast<long>(buf_.sendcounts[i]));
      } else {
        ++stats_.local_msgs;
        stats_.local_values += buf_.sendcounts[i];
      }
    }
    for (std::size_t i = 0; i < buf_.sources.size(); ++i) {
      auto seg = std::span<double>(buf_.xext).subspan(buf_.rdispls[i],
                                                      buf_.recvcounts[i]);
      recvs_.push_back(Request::recv(comm, std::as_writable_bytes(seg),
                                     buf_.sources[i], tag));
    }
  }

  Task<> start(Context& ctx, std::span<const double> x_local) override {
    buf_.gather(x_local);
    for (auto& s : sends_) s.start(ctx);
    for (auto& r : recvs_) r.start(ctx);
    co_return;
  }
  Task<> wait(Context& ctx) override {
    for (auto& s : sends_) co_await ctx.wait(s);
    for (auto& r : recvs_) co_await ctx.wait(r);
  }
  std::span<const double> x_ext() const override { return buf_.xext; }
  mpix::NeighborStats stats() const override { return stats_; }

 private:
  Buffers buf_;
  std::vector<Request> sends_, recvs_;
  mpix::NeighborStats stats_;
};

/// Any mpix neighbor collective behind the same interface.
class NeighborExchange final : public HaloExchange {
 public:
  NeighborExchange(Buffers buf, simmpi::DistGraph graph,
                   std::unique_ptr<mpix::NeighborAlltoallv> coll)
      : buf_(std::move(buf)),
        graph_(std::move(graph)),
        coll_(std::move(coll)) {}

  Task<> start(Context& ctx, std::span<const double> x_local) override {
    buf_.gather(x_local);
    co_await coll_->start(ctx);
  }
  Task<> wait(Context& ctx) override { co_await coll_->wait(ctx); }
  std::span<const double> x_ext() const override { return buf_.xext; }
  mpix::NeighborStats stats() const override { return coll_->stats(); }

 private:
  Buffers buf_;
  simmpi::DistGraph graph_;
  std::unique_ptr<mpix::NeighborAlltoallv> coll_;
};

std::uint64_t fnv_mix(std::uint64_t h, std::uint64_t v) {
  for (int b = 0; b < 8; ++b) {
    h ^= (v >> (8 * b)) & 0xffu;
    h *= 0x100000001b3ull;
  }
  return h;
}

template <class T>
std::uint64_t fnv_mix_vec(std::uint64_t h, const std::vector<T>& v) {
  h = fnv_mix(h, v.size());
  for (const T& x : v) h = fnv_mix(h, static_cast<std::uint64_t>(x));
  return h;
}

/// Full cache key: global pattern fingerprint + method + leader strategy +
/// machine/communicator shape.  Only O(1) scalars are mixed in here (this
/// runs on every locality init); a key collision across communicators with
/// different membership cannot misroute, because binding a plan validates
/// the full membership fingerprint baked into it and throws on mismatch.
std::uint64_t cache_key(std::uint64_t pattern_key, mpix::Method method,
                        bool lpt, const simmpi::Comm& comm) {
  std::uint64_t h = fnv_mix(pattern_key, static_cast<std::uint64_t>(method));
  h = fnv_mix(h, lpt ? 1 : 0);
  const auto& machine = comm.engine().machine();
  h = fnv_mix(h, static_cast<std::uint64_t>(machine.num_ranks()));
  h = fnv_mix(h, static_cast<std::uint64_t>(machine.ranks_per_region()));
  h = fnv_mix(h, static_cast<std::uint64_t>(machine.ranks_per_node()));
  h = fnv_mix(h, static_cast<std::uint64_t>(comm.size()));
  // Switch-hierarchy radixes (not tapers: those never change a plan), so
  // plans built on different tree shapes get distinct keys.
  h = fnv_mix(h, static_cast<std::uint64_t>(machine.num_switch_levels()));
  for (const simmpi::SwitchLevel& lvl : machine.config().switch_levels)
    h = fnv_mix(h, static_cast<std::uint64_t>(lvl.radix));
  return h;
}

}  // namespace

std::shared_ptr<const mpix::PlanBase> PlanCache::find_base(std::uint64_t key,
                                                           int rank) {
  util::MutexLock lk(mu_);
  auto* entry = plans_.find({key, rank});
  if (!entry) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  return *entry;
}

void PlanCache::put(std::uint64_t key, int rank,
                    std::shared_ptr<const mpix::PlanBase> plan) {
  util::MutexLock lk(mu_);
  if (plan) plans_[{key, rank}] = std::move(plan);
}

std::uint64_t pattern_fingerprint(const sparse::Halo& halo) {
  std::uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a offset basis
  h = fnv_mix(h, halo.ranks.size());
  for (const sparse::RankHalo& r : halo.ranks) {
    h = fnv_mix_vec(h, r.recv_ranks);
    h = fnv_mix_vec(h, r.recv_counts);
    h = fnv_mix_vec(h, r.send_ranks);
    h = fnv_mix_vec(h, r.send_counts);
    h = fnv_mix_vec(h, r.send_idx);
    h = fnv_mix_vec(h, r.send_gids);
    h = fnv_mix_vec(h, r.recv_gids);
  }
  return h;
}

Task<std::unique_ptr<HaloExchange>> make_halo_exchange(
    Context& ctx, Comm comm, Protocol protocol, const sparse::RankHalo& halo,
    const ExchangeOptions& opts) {
  if (protocol == Protocol::hypre)
    co_return std::make_unique<HypreExchange>(ctx, comm, halo);

  // Neighbor collectives bind spans into the Buffers vectors at init.
  // Moving `Buffers` afterwards is safe: vector moves transfer the heap
  // storage the spans point into.
  auto buf = std::make_unique<Buffers>(halo);
  const mpix::Method method = method_of(protocol);
  mpix::Options mopts{.lpt_balance = opts.lpt_balance};

  const bool cacheable = opts.plans && mpix::uses_locality(method);
  std::uint64_t key = 0;
  std::shared_ptr<const mpix::LocalityPlan> cached;  // keeps the plan alive
  if (cacheable) {
    key = cache_key(opts.pattern_key, method, opts.lpt_balance, comm);
    cached = opts.plans->find(key, comm.rank());
    mopts.plan = cached.get();
  }

  simmpi::DistGraph graph = co_await simmpi::dist_graph_create_adjacent(
      ctx, comm, buf->sources, buf->destinations, opts.graph_algo);
  std::unique_ptr<mpix::NeighborAlltoallv> coll =
      co_await mpix::neighbor_alltoallv_init(ctx, graph, buf->args(), method,
                                             mopts);
  if (cacheable && !cached) opts.plans->put(key, comm.rank(), coll->plan());
  co_return std::make_unique<NeighborExchange>(std::move(*buf),
                                               std::move(graph),
                                               std::move(coll));
}

}  // namespace harness
