#pragma once
/// \file exchange.hpp
/// \brief Halo-exchange backends for the distributed SpMV, one per protocol
/// of the paper's evaluation (Section 4):
///   * `hypre`            — persistent point-to-point, as in Hypre 2.28;
///   * `neighbor_standard`— unoptimized persistent neighbor collective;
///   * `neighbor_partial` — locality-aware aggregation;
///   * `neighbor_full`    — aggregation + duplicate removal.
///
/// Every backend owns its gathered send buffer and its external-vector
/// receive buffer (`x_ext`, laid out as col_map_offd), so the SpMV code is
/// protocol-agnostic: start(x_local) gathers and launches, wait() completes
/// and exposes x_ext.

#include <memory>

#include "mpix/neighbor.hpp"
#include "sparse/par_csr.hpp"

namespace harness {

/// Protocols evaluated by the paper (Figure legends).
enum class Protocol {
  hypre,
  neighbor_standard,
  neighbor_partial,
  neighbor_full,
};

inline const char* to_string(Protocol p) {
  switch (p) {
    case Protocol::hypre: return "Standard Hypre";
    case Protocol::neighbor_standard: return "Unoptimized Neighbor";
    case Protocol::neighbor_partial: return "Partially Optimized Neighbor";
    case Protocol::neighbor_full: return "Fully Optimized Neighbor";
  }
  return "?";
}

inline constexpr Protocol kAllProtocols[] = {
    Protocol::hypre, Protocol::neighbor_standard, Protocol::neighbor_partial,
    Protocol::neighbor_full};

/// A persistent halo exchange bound to one rank's pattern.
class HaloExchange {
 public:
  virtual ~HaloExchange() = default;
  /// Gather x values and launch the exchange.
  virtual simmpi::Task<> start(simmpi::Context& ctx,
                               std::span<const double> x_local) = 0;
  /// Complete the exchange; afterwards x_ext() holds the halo values in
  /// col_map_offd order.
  virtual simmpi::Task<> wait(simmpi::Context& ctx) = 0;
  virtual std::span<const double> x_ext() const = 0;
  virtual mpix::NeighborStats stats() const = 0;
};

/// Build the exchange for `rank`'s halo pattern.  Collective over `comm`
/// (neighbor protocols create topologies and perform aggregation setup).
/// The exchange does not keep references to `halo` after init.
/// `lpt_balance` selects the leader-assignment strategy of the
/// locality-aware protocols (see mpix::LocalityOptions; ablation knob).
simmpi::Task<std::unique_ptr<HaloExchange>> make_halo_exchange(
    simmpi::Context& ctx, simmpi::Comm comm, Protocol protocol,
    const sparse::RankHalo& halo,
    simmpi::GraphAlgo graph_algo = simmpi::GraphAlgo::handshake,
    bool lpt_balance = true);

}  // namespace harness
