#pragma once
/// \file exchange.hpp
/// \brief Halo-exchange backends for the distributed SpMV, one per protocol
/// of the paper's evaluation (Section 4):
///   * `hypre`            — persistent point-to-point, as in Hypre 2.28;
///   * `neighbor_standard`— unoptimized persistent neighbor collective;
///   * `neighbor_partial` — locality-aware aggregation;
///   * `neighbor_full`    — aggregation + duplicate removal.
///
/// The three neighbor protocols map 1:1 onto `mpix::Method`
/// (`method_of`/`protocol_of`); the dispatch lives entirely in
/// `mpix::neighbor_alltoallv_init`.
///
/// Every backend owns its gathered send buffer and its external-vector
/// receive buffer (`x_ext`, laid out as col_map_offd), so the SpMV code is
/// protocol-agnostic: start(x_local) gathers and launches, wait() completes
/// and exposes x_ext.
///
/// A `PlanCache` amortizes locality-aware setup across exchanges: the
/// first init of a pattern stores its `mpix::LocalityPlan`; later inits of
/// the same (pattern, method, machine) bind the cached plan without any
/// setup communication.

#include <cstdint>
#include <memory>
#include <type_traits>
#include <utility>

#include "mpix/neighbor.hpp"
#include "sparse/par_csr.hpp"
#include "util/flat_map.hpp"
#include "util/thread_annotations.hpp"

namespace harness {

/// Protocols evaluated by the paper (Figure legends).
enum class Protocol {
  hypre,
  neighbor_standard,
  neighbor_partial,
  neighbor_full,
};

inline constexpr Protocol kAllProtocols[] = {
    Protocol::hypre, Protocol::neighbor_standard, Protocol::neighbor_partial,
    Protocol::neighbor_full};

/// The mpix method behind a neighbor protocol (1:1).  Throws for
/// `Protocol::hypre`, which is not a neighborhood collective.
constexpr mpix::Method method_of(Protocol p) {
  switch (p) {
    case Protocol::neighbor_standard: return mpix::Method::standard;
    case Protocol::neighbor_partial: return mpix::Method::locality;
    case Protocol::neighbor_full: return mpix::Method::locality_dedup;
    case Protocol::hypre: break;
  }
  throw simmpi::SimError("method_of: Protocol::hypre has no mpix::Method");
}

/// Inverse of `method_of` (total: every method has a protocol).
constexpr Protocol protocol_of(mpix::Method m) {
  switch (m) {
    case mpix::Method::standard: return Protocol::neighbor_standard;
    case mpix::Method::locality: return Protocol::neighbor_partial;
    case mpix::Method::locality_dedup: return Protocol::neighbor_full;
  }
  throw simmpi::SimError("protocol_of: invalid mpix::Method");
}

/// Whether the protocol performs locality-aware aggregation setup (and can
/// therefore benefit from a PlanCache).
constexpr bool uses_locality(Protocol p) {
  return p == Protocol::neighbor_partial || p == Protocol::neighbor_full;
}

inline const char* to_string(Protocol p) {
  switch (p) {
    case Protocol::hypre: return "Standard Hypre";
    case Protocol::neighbor_standard: return "Unoptimized Neighbor";
    case Protocol::neighbor_partial: return "Partially Optimized Neighbor";
    case Protocol::neighbor_full: return "Fully Optimized Neighbor";
  }
  throw simmpi::SimError("to_string: invalid Protocol");
}

/// Host-side cache of collective plans, shared by all simulated ranks.
/// Stores any `mpix::PlanBase` kind — neighbor `LocalityPlan`s and dense
/// `BruckPlan`s share one cache; the typed `find<P>` accessor resolves the
/// kind on lookup (a key caching the wrong kind reads as a miss-with-hit
/// accounting, so key construction should mix in the method).
///
/// Keys identify the *global* exchange pattern (use `pattern_fingerprint`
/// on the full `sparse::Halo`), so on any given exchange either every rank
/// hits or every rank misses — plan construction stays collectively safe.
/// Plans are engine-free, so a cache may outlive engine runs (benchmark
/// repetitions) as long as machine shape and communicator membership are
/// unchanged; `make_halo_exchange` mixes both into the lookup key.
///
/// Thread-safe: the engine resumes rank coroutines on a worker pool, so
/// concurrent find/put from ranks of one phase are expected.  Entries are
/// keyed per rank, hence hit/miss totals stay deterministic regardless of
/// the interleaving.  Storage is a sorted-vector map (util::FlatMap):
/// lookups during setup-heavy sweeps stay cache-friendly, and inserts
/// happen only on the cold first exchange of a pattern.
class PlanCache {
 public:
  /// Cached plan of `rank` under `key`, or null.  Counts a hit or a miss.
  std::shared_ptr<const mpix::PlanBase> find_base(std::uint64_t key, int rank);

  /// `find_base` downcast to the expected plan kind (null when the entry
  /// is absent or of another kind).  Defaults to the neighbor plan so
  /// existing callers read naturally.
  template <class P = mpix::LocalityPlan>
  std::shared_ptr<const P> find(std::uint64_t key, int rank) {
    return std::dynamic_pointer_cast<const P>(find_base(key, rank));
  }

  void put(std::uint64_t key, int rank,
           std::shared_ptr<const mpix::PlanBase> plan);

  long hits() const {
    util::MutexLock lk(mu_);
    return hits_;
  }
  long misses() const {
    util::MutexLock lk(mu_);
    return misses_;
  }
  std::size_t size() const {
    util::MutexLock lk(mu_);
    return plans_.size();
  }
  void clear() {
    util::MutexLock lk(mu_);
    plans_.clear();
  }

 private:
  mutable util::Mutex mu_;
  util::FlatMap<std::pair<std::uint64_t, int>,
                std::shared_ptr<const mpix::PlanBase>>
      plans_ GUARDED_BY(mu_);
  long hits_ GUARDED_BY(mu_) = 0;
  long misses_ GUARDED_BY(mu_) = 0;
};

/// Order-sensitive fingerprint of a *global* halo pattern (all ranks'
/// send/recv lists, counts, gather indices and gids).  Identical on every
/// rank by construction; equal patterns yield equal keys.
std::uint64_t pattern_fingerprint(const sparse::Halo& halo);

/// Knobs of `make_halo_exchange`.
struct ExchangeOptions {
  simmpi::GraphAlgo graph_algo = simmpi::GraphAlgo::handshake;
  /// Leader-assignment strategy of the locality-aware protocols (see
  /// mpix::Options; ablation knob).
  bool lpt_balance = true;
  /// Optional plan reuse: with `plans` set, locality-aware setup is paid
  /// once per (pattern_key, protocol, machine) and reused afterwards.
  /// `pattern_key` must fingerprint the *global* pattern — same value on
  /// every rank of the exchange (see pattern_fingerprint).
  PlanCache* plans = nullptr;
  std::uint64_t pattern_key = 0;
};

// ExchangeOptions is written as a braced temporary inside co_await'd
// make_halo_exchange calls; g++ 12 double-destroys such temporaries (see
// the warning in mpix/neighbor.hpp and docs/COROUTINE_PITFALLS.md), which
// is only harmless while this stays trivially destructible.  Do not add
// owning members.
static_assert(std::is_trivially_destructible_v<ExchangeOptions>);

/// A persistent halo exchange bound to one rank's pattern.
class HaloExchange {
 public:
  virtual ~HaloExchange() = default;
  /// Gather x values and launch the exchange.
  virtual simmpi::Task<> start(simmpi::Context& ctx,
                               std::span<const double> x_local) = 0;
  /// Complete the exchange; afterwards x_ext() holds the halo values in
  /// col_map_offd order.
  virtual simmpi::Task<> wait(simmpi::Context& ctx) = 0;
  virtual std::span<const double> x_ext() const = 0;
  virtual mpix::NeighborStats stats() const = 0;
};

/// Build the exchange for `rank`'s halo pattern.  Collective over `comm`
/// (neighbor protocols create topologies and perform aggregation setup).
/// The exchange does not keep references to `halo` after init.
simmpi::Task<std::unique_ptr<HaloExchange>> make_halo_exchange(
    simmpi::Context& ctx, simmpi::Comm comm, Protocol protocol,
    const sparse::RankHalo& halo, const ExchangeOptions& opts = {});

}  // namespace harness
