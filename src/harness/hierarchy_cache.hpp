#pragma once
/// \file hierarchy_cache.hpp
/// \brief Process-external cache of distributed AMG hierarchies.
///
/// Building the paper problem's hierarchy (strength → coarsen → interpolate
/// → Galerkin, then rank distribution) dominates bench start-up, and every
/// one of the figure benchmark binaries used to redo it from scratch.  The
/// cache serializes a complete `amg::DistHierarchy` to a content-addressed
/// file keyed by (rows, nranks, coarsening options, format version), so the
/// first binary of a sweep pays the coarsening cost and every later binary
/// — or later run — loads the levels back in seconds.
///
/// Files live under `$COLLOM_HIER_CACHE_DIR` (default `hier-cache/` in the
/// working directory: `build/hier-cache/` for the bench targets; set
/// `COLLOM_HIER_CACHE=0` to disable).  `$COLLOM_HIER_CACHE_MAX_BYTES`
/// bounds the directory's total size: every store evicts oldest-mtime
/// entries over the cap — never the entry just written — so a full sweep
/// cannot grow the cache without bound.  The format is host-local (native
/// endianness, raw IEEE doubles — exactly what the build would recompute)
/// and versioned: loads reject files with a wrong magic, format version or
/// key, a size mismatch, or a failing payload checksum, and the caller
/// silently rebuilds.  Bump `kFormatVersion` whenever serialized layouts or
/// the hierarchy construction itself change meaning, and wipe stale caches
/// with `rm -rf build/hier-cache` (see docs/BENCHMARKS.md).

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <optional>

#include "amg/distribute.hpp"
#include "amg/hierarchy.hpp"
#include "util/thread_annotations.hpp"

namespace harness {

/// Disk cache of `amg::DistHierarchy` instances (see file brief).
///
/// Lookups and stores are host-side (bench/test setup code, outside engine
/// runs).  Concurrent *threads* sharing one instance — the batch-driver
/// scenario — are safe: each store writes a unique temporary file
/// (pid + store sequence number) and atomically renames it into place, so
/// same-key writers cannot interleave bytes in one temp file, and the
/// hit/miss counters are mutex-guarded.  Concurrent *processes* are safe
/// for the same reason, and a torn or half-written read fails the checksum
/// and falls back to a rebuild.  Eviction only ever considers completed
/// `.chc` entries — in-flight `.tmp-*` files are skipped, and a stale temp
/// left by a crashed process is inert (never loaded, never renamed).
class HierarchyCache {
 public:
  /// Serialization format version (mix into the content address AND the
  /// header, so both the filename and the payload pin the layout).
  static constexpr std::uint32_t kFormatVersion = 1;

  /// Identity of a cached hierarchy: the paper problem is fully determined
  /// by its size, the rank count and the coarsening options.
  struct Key {
    long rows = 0;
    int nranks = 0;
    amg::Options opts{};
  };

  /// `max_bytes` caps the total size of `.chc` files under `dir` (0 = no
  /// cap): store() evicts oldest-mtime entries above the cap, never the
  /// entry it just wrote.
  explicit HierarchyCache(std::filesystem::path dir,
                          std::uintmax_t max_bytes = 0);

  /// Process-wide instance honoring COLLOM_HIER_CACHE[_DIR] and
  /// COLLOM_HIER_CACHE_MAX_BYTES; null when the cache is disabled.
  static HierarchyCache* global();

  const std::filesystem::path& dir() const { return dir_; }
  std::uintmax_t max_bytes() const { return max_bytes_; }

  /// Content-addressed file path of `key` (existence not implied).
  std::filesystem::path path_of(const Key& key) const;

  /// Load the hierarchy cached under `key`.  Returns nullopt on a missing,
  /// corrupt, truncated, version- or key-mismatched file — the caller
  /// rebuilds; this never throws on bad cache contents.  Thread-safe.
  std::optional<amg::DistHierarchy> load(const Key& key);

  /// Best-effort store (unique temp file + atomic rename); returns false
  /// (without throwing) when the cache directory is not writable.
  /// Thread-safe: concurrent stores — even of the same key — each write
  /// their own temp file, and the last rename wins whole.
  bool store(const Key& key, const amg::DistHierarchy& dh);

  long hits() const {
    util::MutexLock lk(mu_);
    return hits_;
  }
  long misses() const {
    util::MutexLock lk(mu_);
    return misses_;
  }

 private:
  /// The load logic without counter accounting (see load()).
  std::optional<amg::DistHierarchy> load_file(const Key& key) const;
  /// Enforce max_bytes_ over the `.chc` files of dir_, oldest mtime first,
  /// never removing `keep` (the entry the caller just wrote) and never a
  /// `.tmp-*` file another thread or process is still writing.
  void evict_over_cap(const std::filesystem::path& keep);

  std::filesystem::path dir_;
  std::uintmax_t max_bytes_ = 0;
  /// Per-instance store sequence; combined with the pid it makes every
  /// temp filename unique across threads and processes.
  std::atomic<std::uint64_t> store_seq_{0};
  mutable util::Mutex mu_;
  long hits_ GUARDED_BY(mu_) = 0;
  long misses_ GUARDED_BY(mu_) = 0;
};

}  // namespace harness
