#include "harness/hierarchy_cache.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

#include "simmpi/types.hpp"
#include "util/hash.hpp"

namespace harness {

namespace {

using simmpi::SimError;
using util::fnv1a;

constexpr std::uint64_t kMagic = 0x434F4C4C48495231ull;  // "COLLHIR1"

/// Integrity checksum of a payload: FNV-1a over 8-byte chunks (plus a
/// byte-wise tail), ~8x faster than byte-wise FNV on the multi-hundred-MB
/// payloads of full-scale hierarchies.
std::uint64_t payload_checksum(const unsigned char* data, std::size_t n) {
  std::uint64_t h = util::kFnvOffsetBasis;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    std::uint64_t w;
    std::memcpy(&w, data + i, 8);
    h ^= w;
    h *= util::kFnvPrime;
    h ^= h >> 32;
  }
  return fnv1a(data + i, n - i, h);
}

/// Append-only native-endian buffer writer.
class Writer {
 public:
  void raw(const void* p, std::size_t n) {
    const auto* b = static_cast<const unsigned char*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }
  template <class T>
  void scalar(T v) {
    static_assert(std::is_trivially_copyable_v<T>);
    raw(&v, sizeof v);
  }
  template <class T>
  void vec(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    scalar(static_cast<std::uint64_t>(v.size()));
    raw(v.data(), v.size() * sizeof(T));
  }
  void span_as_vec(const auto& s) {  // std::span of trivially copyable
    scalar(static_cast<std::uint64_t>(s.size()));
    raw(s.data(), s.size_bytes());
  }
  const std::vector<unsigned char>& bytes() const { return buf_; }

 private:
  std::vector<unsigned char> buf_;
};

/// Bounds-checked reader over a loaded payload; throws on truncation (the
/// caller converts any throw into a cache miss).
class Reader {
 public:
  Reader(const unsigned char* data, std::size_t n) : p_(data), end_(data + n) {}
  void raw(void* out, std::size_t n) {
    if (static_cast<std::size_t>(end_ - p_) < n)
      throw SimError("HierarchyCache: truncated payload");
    std::memcpy(out, p_, n);
    p_ += n;
  }
  template <class T>
  T scalar() {
    T v;
    raw(&v, sizeof v);
    return v;
  }
  template <class T>
  std::vector<T> vec() {
    const std::uint64_t n = scalar<std::uint64_t>();
    if (n > static_cast<std::uint64_t>(end_ - p_) / sizeof(T))
      throw SimError("HierarchyCache: oversized vector length");
    std::vector<T> v(n);
    raw(v.data(), n * sizeof(T));
    return v;
  }
  bool exhausted() const { return p_ == end_; }

 private:
  const unsigned char* p_;
  const unsigned char* end_;
};

// --- matrix / halo serialization ------------------------------------

void put(Writer& w, const sparse::Csr& m) {
  w.scalar<std::int32_t>(m.rows());
  w.scalar<std::int32_t>(m.cols());
  w.span_as_vec(m.rowptr());
  w.span_as_vec(m.colind());
  w.span_as_vec(std::span<const double>(m.values()));
}

sparse::Csr get_csr(Reader& r) {
  const int rows = r.scalar<std::int32_t>();
  const int cols = r.scalar<std::int32_t>();
  auto rowptr = r.vec<long>();
  auto colind = r.vec<int>();
  auto vals = r.vec<double>();
  // from_raw re-validates the structure, so a corrupted-but-checksummed
  // file (format version drift) still cannot produce a malformed matrix.
  return sparse::Csr::from_raw(rows, cols, std::move(rowptr),
                               std::move(colind), std::move(vals));
}

void put(Writer& w, const sparse::ParCsr& m) {
  w.scalar<std::int64_t>(m.global_rows);
  w.scalar<std::int64_t>(m.global_cols);
  w.vec(m.row_part);
  w.vec(m.col_part);
  w.scalar<std::uint64_t>(m.ranks.size());
  for (const sparse::ParCsrRank& rk : m.ranks) {
    w.scalar<std::int64_t>(rk.first_row);
    w.scalar<std::int64_t>(rk.first_col);
    put(w, rk.diag);
    put(w, rk.offd);
    w.vec(rk.col_map_offd);
  }
}

sparse::ParCsr get_par_csr(Reader& r) {
  sparse::ParCsr m;
  m.global_rows = r.scalar<std::int64_t>();
  m.global_cols = r.scalar<std::int64_t>();
  m.row_part = r.vec<long>();
  m.col_part = r.vec<long>();
  const std::uint64_t nranks = r.scalar<std::uint64_t>();
  m.ranks.reserve(nranks);
  for (std::uint64_t i = 0; i < nranks; ++i) {
    sparse::ParCsrRank rk;
    rk.first_row = r.scalar<std::int64_t>();
    rk.first_col = r.scalar<std::int64_t>();
    rk.diag = get_csr(r);
    rk.offd = get_csr(r);
    rk.col_map_offd = r.vec<long>();
    m.ranks.push_back(std::move(rk));
  }
  return m;
}

void put(Writer& w, const sparse::Halo& h) {
  w.scalar<std::uint64_t>(h.ranks.size());
  for (const sparse::RankHalo& rk : h.ranks) {
    w.vec(rk.recv_ranks);
    w.vec(rk.recv_counts);
    w.vec(rk.send_ranks);
    w.vec(rk.send_counts);
    w.vec(rk.send_idx);
    w.vec(rk.send_gids);
    w.vec(rk.recv_gids);
  }
}

sparse::Halo get_halo(Reader& r) {
  sparse::Halo h;
  const std::uint64_t n = r.scalar<std::uint64_t>();
  h.ranks.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    sparse::RankHalo rk;
    rk.recv_ranks = r.vec<int>();
    rk.recv_counts = r.vec<int>();
    rk.send_ranks = r.vec<int>();
    rk.send_counts = r.vec<int>();
    rk.send_idx = r.vec<int>();
    rk.send_gids = r.vec<long>();
    rk.recv_gids = r.vec<long>();
    h.ranks.push_back(std::move(rk));
  }
  return h;
}

void put(Writer& w, const amg::DistHierarchy& dh) {
  w.scalar<std::int32_t>(dh.nranks);
  w.scalar<std::uint64_t>(dh.levels.size());
  for (const amg::DistLevel& l : dh.levels) {
    put(w, l.A);
    put(w, l.halo);
    put(w, l.P);
    put(w, l.halo_P);
    put(w, l.R);
    put(w, l.halo_R);
    w.vec(l.perm);
  }
}

amg::DistHierarchy get_hierarchy(Reader& r) {
  amg::DistHierarchy dh;
  dh.nranks = r.scalar<std::int32_t>();
  const std::uint64_t n = r.scalar<std::uint64_t>();
  dh.levels.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    amg::DistLevel l;
    l.A = get_par_csr(r);
    l.halo = get_halo(r);
    l.P = get_par_csr(r);
    l.halo_P = get_halo(r);
    l.R = get_par_csr(r);
    l.halo_R = get_halo(r);
    l.perm = r.vec<int>();
    dh.levels.push_back(std::move(l));
  }
  if (!r.exhausted()) throw SimError("HierarchyCache: trailing bytes");
  return dh;
}

void put_key(Writer& w, const HierarchyCache::Key& key) {
  w.scalar<std::int64_t>(key.rows);
  w.scalar<std::int32_t>(key.nranks);
  w.scalar<double>(key.opts.strength_theta);
  w.scalar<std::int32_t>(static_cast<int>(key.opts.coarsen_algo));
  w.scalar<std::int32_t>(key.opts.interp_max_elements);
  w.scalar<std::int32_t>(key.opts.max_levels);
  w.scalar<std::int32_t>(key.opts.min_coarse_size);
  w.scalar<double>(key.opts.galerkin_prune_tol);
}

}  // namespace

HierarchyCache::HierarchyCache(std::filesystem::path dir,
                               std::uintmax_t max_bytes)
    : dir_(std::move(dir)), max_bytes_(max_bytes) {}

HierarchyCache* HierarchyCache::global() {
  // The mutex and sequence-counter members make the class immovable, so the
  // instance is emplaced in place inside the once-guarded initializer.
  static HierarchyCache* inst = []() -> HierarchyCache* {
    // Read-only env lookups; nothing in this process calls setenv().
    // NOLINTNEXTLINE(concurrency-mt-unsafe)
    if (const char* v = std::getenv("COLLOM_HIER_CACHE"))
      if (std::string_view(v) == "0" || std::string_view(v) == "off")
        return nullptr;
    // NOLINTNEXTLINE(concurrency-mt-unsafe)
    const char* dir = std::getenv("COLLOM_HIER_CACHE_DIR");
    std::uintmax_t max_bytes = 0;
    // NOLINTNEXTLINE(concurrency-mt-unsafe)
    if (const char* m = std::getenv("COLLOM_HIER_CACHE_MAX_BYTES"))
      max_bytes = std::strtoull(m, nullptr, 10);
    static std::optional<HierarchyCache> cache;
    cache.emplace(dir && *dir ? dir : "hier-cache", max_bytes);
    return &*cache;
  }();
  return inst;
}

std::filesystem::path HierarchyCache::path_of(const Key& key) const {
  Writer w;
  w.scalar<std::uint32_t>(kFormatVersion);
  put_key(w, key);
  const std::uint64_t h = fnv1a(w.bytes().data(), w.bytes().size());
  char name[96];
  std::snprintf(name, sizeof name, "dist-r%ld-p%d-%016llx.chc", key.rows,
                key.nranks, static_cast<unsigned long long>(h));
  return dir_ / name;
}

std::optional<amg::DistHierarchy> HierarchyCache::load(const Key& key) {
  std::optional<amg::DistHierarchy> dh = load_file(key);
  util::MutexLock lk(mu_);
  if (dh)
    ++hits_;
  else
    ++misses_;
  return dh;
}

std::optional<amg::DistHierarchy> HierarchyCache::load_file(
    const Key& key) const {
  std::ifstream in(path_of(key), std::ios::binary);
  if (!in) return std::nullopt;

  try {
    // Fixed-size header first, then the payload in one bulk read (these
    // files reach hundreds of MB at paper scale — no byte iterators).
    Writer expect;
    put_key(expect, key);
    const std::size_t header_size =
        sizeof(std::uint64_t) + sizeof(std::uint32_t) + expect.bytes().size() +
        2 * sizeof(std::uint64_t);
    std::vector<unsigned char> head(header_size);
    in.read(reinterpret_cast<char*>(head.data()),
            static_cast<std::streamsize>(head.size()));
    if (in.gcount() != static_cast<std::streamsize>(head.size()))
      return std::nullopt;

    Reader r(head.data(), head.size());
    if (r.scalar<std::uint64_t>() != kMagic) return std::nullopt;
    if (r.scalar<std::uint32_t>() != kFormatVersion) return std::nullopt;
    // The content address already encodes the key; re-checking the header
    // copy guards against a hash collision or a renamed file.
    std::vector<unsigned char> header(expect.bytes().size());
    r.raw(header.data(), header.size());
    if (header != expect.bytes()) return std::nullopt;

    const std::uint64_t payload_size = r.scalar<std::uint64_t>();
    const std::uint64_t checksum = r.scalar<std::uint64_t>();
    if (payload_size >
        static_cast<std::uint64_t>(std::numeric_limits<std::int64_t>::max()))
      return std::nullopt;
    std::vector<unsigned char> payload(payload_size);
    in.read(reinterpret_cast<char*>(payload.data()),
            static_cast<std::streamsize>(payload.size()));
    if (in.gcount() != static_cast<std::streamsize>(payload.size()))
      return std::nullopt;
    if (in.peek() != std::ifstream::traits_type::eof())
      return std::nullopt;  // trailing bytes
    if (payload_checksum(payload.data(), payload.size()) != checksum)
      return std::nullopt;

    Reader body(payload.data(), payload.size());
    amg::DistHierarchy dh = get_hierarchy(body);
    if (dh.nranks != key.nranks ||
        (dh.num_levels() > 0 && dh.levels[0].n() != key.rows))
      return std::nullopt;
    return dh;
  } catch (const std::exception&) {
    return std::nullopt;  // corrupt / truncated / malformed: rebuild
  }
}

bool HierarchyCache::store(const Key& key, const amg::DistHierarchy& dh) {
  Writer body;
  put(body, dh);

  // Header and payload are written separately: re-buffering the payload
  // (hundreds of MB at paper scale) would double peak memory for nothing.
  Writer header;
  header.scalar<std::uint64_t>(kMagic);
  header.scalar<std::uint32_t>(kFormatVersion);
  put_key(header, key);
  header.scalar<std::uint64_t>(body.bytes().size());
  header.scalar<std::uint64_t>(
      payload_checksum(body.bytes().data(), body.bytes().size()));

  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  const std::filesystem::path dst = path_of(key);
  // The temp name must be unique per *writer*, not just per process: two
  // threads storing the same key from one pid used to share a temp path
  // and interleave their writes in it.  pid + per-instance sequence makes
  // every in-flight temp file distinct; the rename then publishes each
  // candidate whole, last writer winning.
  const std::uint64_t seq = store_seq_.fetch_add(1, std::memory_order_relaxed);
  const std::filesystem::path tmp = dst.string() + ".tmp-" +
                                    std::to_string(::getpid()) + "-" +
                                    std::to_string(seq);
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out.write(reinterpret_cast<const char*>(header.bytes().data()),
              static_cast<std::streamsize>(header.bytes().size()));
    out.write(reinterpret_cast<const char*>(body.bytes().data()),
              static_cast<std::streamsize>(body.bytes().size()));
    if (!out.good()) {
      out.close();
      std::filesystem::remove(tmp, ec);
      return false;
    }
  }
  std::filesystem::rename(tmp, dst, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return false;
  }
  evict_over_cap(dst);
  return true;
}

void HierarchyCache::evict_over_cap(const std::filesystem::path& keep) {
  if (max_bytes_ == 0) return;
  struct Entry {
    std::filesystem::path path;
    std::uintmax_t size;
    std::filesystem::file_time_type mtime;
  };
  std::vector<Entry> entries;
  std::uintmax_t total = 0;
  std::error_code ec;
  for (const auto& de : std::filesystem::directory_iterator(dir_, ec)) {
    // Only completed entries are eviction candidates: the ".chc" filter
    // skips in-flight ".tmp-*" files (their extension is the temp suffix),
    // so eviction can never delete a file another writer is mid-write on.
    if (!de.is_regular_file(ec) || de.path().extension() != ".chc") continue;
    const std::uintmax_t size = de.file_size(ec);
    if (ec) continue;
    const auto mtime = de.last_write_time(ec);
    if (ec) continue;
    entries.push_back(Entry{de.path(), size, mtime});
    total += size;
  }
  if (total <= max_bytes_) return;
  // Oldest mtime first; the just-written entry is exempt even when it
  // alone exceeds the cap (evicting it would make the store a no-op and
  // the next run would rebuild and re-store it, thrashing forever).
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.mtime < b.mtime; });
  for (const Entry& e : entries) {
    if (total <= max_bytes_) break;
    if (e.path == keep) continue;
    if (std::filesystem::remove(e.path, ec)) total -= e.size;
  }
}

}  // namespace harness
