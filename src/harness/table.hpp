#pragma once
/// \file table.hpp
/// \brief Small console table/CSV emitter for the figure benches.

#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

namespace harness {

/// A named data series over a shared x axis.
struct Series {
  std::string name;
  std::vector<double> y;
};

/// Print a paper-style figure table: one row per x value, one column per
/// series.  Doubles are printed in scientific notation.
inline void print_figure(std::ostream& os, const std::string& title,
                         const std::string& x_label,
                         const std::vector<double>& xs,
                         const std::vector<Series>& series) {
  os << "\n=== " << title << " ===\n";
  os << std::left << std::setw(14) << x_label;
  for (const auto& s : series) os << std::setw(26) << s.name;
  os << "\n";
  for (std::size_t i = 0; i < xs.size(); ++i) {
    os << std::left << std::setw(14) << xs[i];
    for (const auto& s : series) {
      if (i < s.y.size())
        os << std::setw(26) << std::scientific << std::setprecision(4)
           << s.y[i];
      else
        os << std::setw(26) << "-";
      os << std::defaultfloat;
    }
    os << "\n";
  }
  os.flush();
}

}  // namespace harness
