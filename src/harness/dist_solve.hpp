#pragma once
/// \file dist_solve.hpp
/// \brief Distributed AMG solve phase running on the simulator, with every
/// halo exchange routed through a chosen protocol — the paper's end-to-end
/// scenario (neighborhood collectives inside BoomerAMG's SpMVs).

#include <vector>

#include "amg/distribute.hpp"
#include "harness/exchange.hpp"
#include "harness/measure.hpp"

namespace harness {

/// Result of a distributed stationary AMG solve.
struct DistSolveResult {
  std::vector<double> residual_history;  ///< relative ||b-Ax|| per iteration
  std::vector<double> solution;          ///< gathered global solution
  double solve_seconds = 0.0;            ///< simulated time (max over ranks)
  bool converged = false;
};

/// Run `max_iters` V-cycles (or stop at rel_tol) on the distributed
/// hierarchy, using `protocol` for every SpMV halo exchange (fine and
/// coarse operators, restriction, prolongation).  The coarsest system is
/// solved redundantly on every rank after an allgather.
DistSolveResult run_distributed_amg(const amg::DistHierarchy& dh,
                                    Protocol protocol,
                                    std::span<const double> b_global,
                                    double rel_tol = 1e-8, int max_iters = 60,
                                    const MeasureConfig& cfg = {});

}  // namespace harness
